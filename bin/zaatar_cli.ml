(* The zaatar command-line interface.

     zaatar compile FILE.zl              constraint/proof encoding statistics
     zaatar lint FILE.zl|SYS.r1cs ...    Zlint soundness analysis (DESIGN.md §11)
     zaatar run FILE.zl -i 1,2,3 ...     compile, prove and verify a batch
     zaatar run ... --connect H:P        same, against a remote prover
     zaatar profile FILE.zl              per-phase op ledger vs the Figure-3 model
     zaatar serve FILE.zl --listen H:P   networked prover service
     zaatar stats H:P                    scrape a prover's metrics endpoint
     zaatar trace-merge A B -o OUT       one Perfetto view of a split run
     zaatar bench NAME [--scale N]       one built-in benchmark, end to end
     zaatar selftest                     differential checks of all benchmarks
     zaatar check SYS.r1cs WITNESS       check a serialized witness
     zaatar exec SYS.r1cs -i 1,2,3       solve a witness from inputs alone (Zexec)
     zaatar fuzz --seed N --count M      differential-fuzz the compiler
     zaatar micro [--field-bits N]       the section-5.1 microbenchmark row

   Exit-code contract (README "Linting"): 0 success, 1 operational failure
   (unreadable file, network error, REJECTED proof, ...), 2 lint errors —
   the program is well-formed enough to analyze but the analysis found
   error-severity findings. *)

open Fieldlib
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let field_of_bits = function
  | 61 -> Primes.p61
  | 89 -> Primes.p89
  | 127 -> Primes.p127
  | 128 -> Primes.p128 ()
  | 192 -> Primes.p192 ()
  | 220 -> Primes.p220 ()
  | bits -> Primes.first_prime_with_bits bits

(* The default 127-bit field is the Mersenne prime: 2-adicity 1, so it
   cannot host an NTT domain. When the NTT backend is forced at that
   width, substitute the NTT-friendly 127-bit prime instead of failing
   the viability check at session setup. *)
let field_for_config bits (config : Argsys.Argument.config) =
  if bits = 127 && config.Argsys.Argument.qap_backend = Qapb.Ntt then Primes.p127_ntt
  else field_of_bits bits

let field_bits_arg =
  let doc = "Field modulus size in bits (61, 127, 128, 192, 220, ...)." in
  Arg.(value & opt int 127 & info [ "field-bits" ] ~doc)

(* Argument validation: bad values are rejected by cmdliner with a usage
   error instead of surfacing later as a crash mid-protocol. *)
let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%d is not a positive integer" n))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let addr_conv =
  let parse s =
    match Znet.parse_addr s with
    | _ -> Ok s
    | exception Znet.Net_error e -> Error (`Msg (Znet.error_to_string e))
  in
  Arg.conv ~docv:"HOST:PORT" (parse, Format.pp_print_string)

let backend_conv =
  let parse s =
    match Qapb.backend_of_string s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "%S is not a QAP backend (auto|ntt|lagrange)" s))
  in
  Arg.conv ~docv:"BACKEND"
    (parse, fun ppf b -> Format.pp_print_string ppf (Qapb.backend_to_string b))

let timeout_arg =
  Arg.(
    value
    & opt pos_int_conv 30000
    & info [ "timeout-ms" ]
        ~doc:"Socket connect/read/write timeout in milliseconds (with --listen/--connect).")

let print_stats (c : Zlang.Compile.compiled) =
  let s = Zlang.Compile.stats c in
  Printf.printf "computation %S: %d input(s), %d output(s)\n" c.Zlang.Compile.name
    c.Zlang.Compile.num_inputs c.Zlang.Compile.num_outputs;
  Printf.printf "  %-28s %10s %10s\n" "" "Ginger" "Zaatar";
  Printf.printf "  %-28s %10d %10d\n" "variables |Z|" s.Zlang.Compile.z_ginger s.Zlang.Compile.z_zaatar;
  Printf.printf "  %-28s %10d %10d\n" "constraints |C|" s.Zlang.Compile.c_ginger s.Zlang.Compile.c_zaatar;
  Printf.printf "  %-28s %10d %10d\n" "proof vector |u|" s.Zlang.Compile.u_ginger s.Zlang.Compile.u_zaatar;
  Printf.printf "  %-28s %10d %10d\n" "additive terms K / K2" s.Zlang.Compile.k s.Zlang.Compile.k2

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.zl") in
  let emit =
    Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"OUT.r1cs" ~doc:"Write the quadratic-form constraint system to a file.")
  in
  let run file bits emit =
    let ctx = Fp.create (field_of_bits bits) in
    let compiled = Zlang.Compile.compile ~ctx (read_file file) in
    print_stats compiled;
    match emit with
    | None -> ()
    | Some out ->
      let oc = open_out out in
      output_string oc (Constr.Serialize.system_to_string (Zlang.Compile.zaatar_r1cs compiled));
      close_out oc;
      Printf.printf "wrote %s\n" out
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a ZL program and print encoding statistics")
    Term.(const run $ file $ field_bits_arg $ emit)

(* ---- zaatar lint ---- *)

let lint_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"Targets: .zl sources get both lint layers (AST checks, then the compiled \
                system); anything else is read as a serialized .r1cs and gets the backend \
                layer only.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,text) or $(b,json).")
  in
  let unroll_budget =
    Arg.(
      value
      & opt pos_int_conv Zlint.Frontend.default_cfg.Zlint.Frontend.unroll_budget
      & info [ "unroll-budget" ] ~docv:"N"
          ~doc:"Flag loop nests that would unroll into more than N statements (ZL004).")
  in
  let limit =
    Arg.(
      value
      & opt pos_int_conv 20
      & info [ "limit" ] ~docv:"N" ~doc:"Report at most N findings per diagnostic code.")
  in
  let run files format unroll_budget limit bits =
    let ctx = Fp.create (field_of_bits bits) in
    let cfg = { Zlint.Frontend.unroll_budget } in
    let lint_one file =
      if Filename.check_suffix file ".zl" then
        { Zlint.file; findings = Zlint.lint_zl ~cfg ~ctx (read_file file) }
      else
        { Zlint.file; findings = Zlint.lint_system (Constr.Serialize.system_of_string (read_file file)) }
    in
    match List.map lint_one files with
    | reports ->
      (match format with
      | `Text -> print_string (Zlint.render_text ~limit reports)
      | `Json -> print_endline (Zobs.Json.to_string (Zlint.render_json ~limit reports)));
      exit (Zlint.exit_code reports)
    | exception Constr.Serialize.Parse_error m ->
      Printf.eprintf "lint: %s\n" m;
      exit 1
    | exception Sys_error m ->
      Printf.eprintf "lint: %s\n" m;
      exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Analyze ZL programs and constraint systems for soundness bugs (exit 2 on errors)")
    Term.(const run $ files $ format $ unroll_budget $ limit $ field_bits_arg)

let parse_inputs s =
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x -> int_of_string (String.trim x))
  |> Array.of_list

(* Observability: --trace enables Zobs and writes a Chrome-trace-event JSON
   (load in chrome://tracing or https://ui.perfetto.dev); --metrics prints
   the span/counter table. ZAATAR_TRACE=out.json does the same without
   flags. *)
let obs_args =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json"
          ~doc:"Enable tracing and write a Chrome-trace-event JSON file (Perfetto-loadable).")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Enable tracing and print the Zobs span/counter table.")
  in
  Term.(const (fun trace metrics -> (trace, metrics)) $ trace $ metrics)

(* [process] names this side of a split run in the exported trace
   ("verifier"/"prover"); merged files keep the two distinguishable. *)
let with_obs ?(process = "zaatar") (trace, metrics) f =
  if trace <> None || metrics then Zobs.enable ();
  let code = f () in
  (match trace with
  | Some path ->
    Zobs.write_chrome_trace ~process_name:process path;
    Printf.printf "wrote %s (chrome trace; load in chrome://tracing or ui.perfetto.dev)\n" path
  | None -> ());
  if metrics then Format.printf "@.== telemetry ==@.%a" Zobs.report ();
  exit code

(* --profile rides on run/bench: enable the Zledger (which needs Zobs on)
   and print the per-phase op/GC table after the batch report. *)
let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Enable the op ledger and print per-phase Figure-3 op counts and GC deltas \
              after the run (see `zaatar profile` for the model audit).")

let protocol_args =
  let rho = Arg.(value & opt pos_int_conv 2 & info [ "rho" ] ~doc:"PCP repetitions (paper: 8).") in
  let rho_lin = Arg.(value & opt pos_int_conv 5 & info [ "rho-lin" ] ~doc:"Linearity-test iterations (paper: 20).") in
  let pbits = Arg.(value & opt pos_int_conv 256 & info [ "pbits" ] ~doc:"ElGamal group size in bits (paper: 1024).") in
  let domains =
    Arg.(value & opt pos_int_conv 1 & info [ "domains" ] ~doc:"Domains for the parallel commitment pipeline (transcripts are domain-count independent).")
  in
  let qap_backend =
    Arg.(
      value
      & opt backend_conv Qapb.Auto
      & info [ "qap-backend" ]
          ~doc:"QAP prover backend: $(b,auto) picks the NTT pipeline when the field's \
                2-adicity covers the constraint count and falls back to the paper's \
                Lagrange pipeline otherwise; $(b,ntt) and $(b,lagrange) force one. \
                Prover and verifier must agree (the backends are distinct proof \
                systems). Forcing ntt at --field-bits 127 substitutes the NTT-friendly \
                127-bit prime for the default Mersenne field.")
  in
  Term.(
    const (fun rho rho_lin pbits domains qap_backend ->
        {
          Argsys.Argument.params = { Pcp.Pcp_zaatar.rho; rho_lin };
          p_bits = pbits;
          strategy = Argsys.Argument.Honest;
          domains;
          qap_backend;
        })
    $ rho $ rho_lin $ pbits $ domains $ qap_backend)

let report_batch ctx (result : Argsys.Argument.batch_result) =
  Array.iteri
    (fun i (inst : Argsys.Argument.instance_result) ->
      let outs =
        Array.to_list inst.Argsys.Argument.claimed_output
        |> List.map (fun e ->
               match Fp.to_signed_int ctx e with Some n -> string_of_int n | None -> Fp.to_string e)
        |> String.concat ","
      in
      Printf.printf "instance %d: outputs [%s]  %s\n" i outs
        (if inst.Argsys.Argument.accepted then "verified" else "REJECTED"))
    result.Argsys.Argument.instances;
  Printf.printf "\nprover phases:\n%s" (Format.asprintf "%a" Argsys.Metrics.pp result.Argsys.Argument.prover);
  Printf.printf "verifier setup: %.3fs, per-instance total: %.3fs\n"
    result.Argsys.Argument.verifier_setup_s result.Argsys.Argument.verifier_per_instance_s;
  if Argsys.Argument.all_accepted result then 0 else 1

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.zl") in
  let inputs =
    Arg.(non_empty & opt_all string [] & info [ "i"; "input" ] ~doc:"Comma-separated input vector (one per batch instance).")
  in
  let emit_witness =
    Arg.(value & opt (some string) None
         & info [ "emit-witness" ] ~docv:"PREFIX"
             ~doc:"Also write each instance's satisfying assignment to PREFIX.<i> (checkable with `zaatar check`).")
  in
  let connect =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Verify against a remote prover (`zaatar serve`) instead of the in-process \
                prover. Both sides must use the same program and --field-bits.")
  in
  let no_lint =
    Arg.(
      value & flag
      & info [ "no-lint" ]
          ~doc:"Skip the pre-flight front-end lint gate (which exits 2 on error-severity \
                findings such as reads of uninitialized variables).")
  in
  let run file bits inputs emit_witness connect no_lint timeout_ms config profile obs =
    with_obs ~process:(if connect = None then "zaatar" else "verifier") obs @@ fun () ->
    if profile then Zobs.enable ();
    let ctx = Fp.create (field_for_config bits config) in
    let source = read_file file in
    (* Pre-flight gate: a program that reads uninitialized variables (or
       worse) still compiles to *some* constraint system; proving it
       verifies the wrong computation. Error findings stop the run with
       exit 2 before any proving work happens. *)
    if not no_lint then begin
      let findings = Zlint.lint_source source in
      if Zlint.Diagnostic.has_errors findings then begin
        print_string (Zlint.render_text [ { Zlint.file; findings } ]);
        Printf.eprintf "run: lint errors in %s (use --no-lint to override)\n" file;
        exit 2
      end
    end;
    let compiled = Zlang.Compile.compile ~ctx source in
    print_stats compiled;
    print_newline ();
    let comp = Apps.Glue.computation_of compiled in
    let batch =
      Array.of_list (List.map (fun s -> Apps.Glue.field_inputs ctx (parse_inputs s)) inputs)
    in
    (match emit_witness with
    | None -> ()
    | Some prefix ->
      Array.iteri
        (fun i x ->
          let w = compiled.Zlang.Compile.solve_zaatar x in
          let path = Printf.sprintf "%s.%d" prefix i in
          let oc = open_out path in
          output_string oc (Constr.Serialize.assignment_to_string ctx w);
          close_out oc;
          Printf.printf "wrote %s\n" path)
        batch);
    let prg = Chacha.Prg.create ~seed:"zaatar cli" () in
    let result =
      match connect with
      | None -> Argsys.Argument.run_batch ~config comp ~prg ~inputs:batch
      | Some addr ->
        Printf.printf "remote prover at %s (computation %s)\n%!" addr (Argsys.Argument.digest comp);
        (* Only mint a distributed trace id when tracing is on: an untraced
           run keeps its v2 Hello bit-identical across invocations. *)
        let trace_id =
          if Zobs.enabled () then begin
            let id = Zobs.mint_trace_id () in
            Printf.printf "trace id %s\n%!" id;
            Some id
          end
          else None
        in
        Argsys.Remote.run_connect ~config ?trace_id ~timeout_ms ~addr comp ~prg ~inputs:batch
    in
    let code = report_batch ctx result in
    if profile then Format.printf "@.%a" Zobs.Ledger.pp_table ();
    code
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile a ZL program, prove and verify a batch of instances")
    Term.(
      const run $ file $ field_bits_arg $ inputs $ emit_witness $ connect $ no_lint
      $ timeout_arg $ protocol_args $ profile_flag $ obs_args)

(* ---- zaatar profile ---- *)

let print_audit rows =
  let open Costmodel.Model in
  Printf.printf "\nop audit (Figure 3 predicted vs ledgered; DESIGN.md \xc2\xa712 bands):\n";
  Printf.printf "  %-22s %-8s %14s %14s %8s %-13s %-6s %s\n" "phase" "op" "predicted" "ledgered"
    "ratio" "band" "status" "note";
  List.iter
    (fun r ->
      Printf.printf "  %-22s %-8s %14.0f %14d %8.3f [%4.2f,%4.2f] %-6s %s\n" r.phase r.op
        r.predicted r.ledgered r.ratio r.lo r.hi
        (if not r.gated then "info" else if r.pass then "ok" else "FAIL")
        r.note)
    rows

let profile_cmd =
  let file =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE.zl" ~doc:"Program to prove and audit (omit with --live).")
  in
  let live =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "live" ] ~docv:"HOST:PORT"
          ~doc:"Scrape a running prover's sampling profiler instead of proving locally: \
                fetch /profile from a `zaatar serve --metrics-listen` endpoint and print \
                the folded stacks (--folded writes them to a file instead).")
  in
  let inputs =
    Arg.(
      value & opt_all string []
      & info [ "i"; "input" ]
          ~doc:"Comma-separated input vector (one per batch instance). Omitted: $(b,--batch) \
                deterministic pseudorandom vectors are generated (profiling needs valid \
                inputs, not meaningful ones).")
  in
  let batch =
    Arg.(
      value & opt pos_int_conv 1
      & info [ "batch" ] ~doc:"Instances to prove when no -i inputs are given.")
  in
  let folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"OUT.folded"
          ~doc:"Also write folded stacks (semicolon-joined span path + exclusive \
                microseconds per line), the input format of Brendan Gregg's flamegraph.pl.")
  in
  let run_live addr folded =
    match Znet.Metrics_http.get addr "/profile" with
    | exception Failure m ->
      Printf.eprintf "profile: %s\n" m;
      1
    | code, _ when code <> 200 ->
      Printf.eprintf "profile: %s answered HTTP %d\n" addr code;
      1
    | _, body -> (
      match folded with
      | None ->
        print_string body;
        if body = "" then print_endline "(no samples yet)";
        0
      | Some path ->
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        Printf.printf "wrote %s (folded stacks; flamegraph.pl %s > flame.svg)\n" path path;
        0)
  in
  let run file bits inputs batch folded live config obs =
    match (live, file) with
    | Some addr, _ -> exit (run_live addr folded)
    | None, None ->
      Printf.eprintf "profile: FILE.zl or --live HOST:PORT required\n";
      exit 1
    | None, Some file ->
    with_obs ~process:"profile" obs @@ fun () ->
    Zobs.enable ();
    let ctx = Fp.create (field_for_config bits config) in
    let compiled = Zlang.Compile.compile ~ctx (read_file file) in
    print_stats compiled;
    print_newline ();
    let comp = Apps.Glue.computation_of compiled in
    let instances =
      if inputs <> [] then
        Array.of_list (List.map (fun s -> Apps.Glue.field_inputs ctx (parse_inputs s)) inputs)
      else begin
        let iprg = Chacha.Prg.create ~seed:"zaatar profile inputs" () in
        Array.init batch (fun _ ->
            Apps.Glue.field_inputs ctx
              (Array.init compiled.Zlang.Compile.num_inputs (fun _ ->
                   Chacha.Prg.int_below iprg 1000)))
      end
    in
    let prg = Chacha.Prg.create ~seed:"zaatar cli" () in
    let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs:instances in
    Format.printf "%a" Zobs.Ledger.pp_table ();
    let st = Zlang.Compile.stats compiled in
    let sizes =
      Costmodel.Model.sizes_of_stats st ~n_x:compiled.Zlang.Compile.num_inputs
        ~n_y:compiled.Zlang.Compile.num_outputs ~t_local:0.0
    in
    let pp =
      {
        Costmodel.Model.rho = config.Argsys.Argument.params.Pcp.Pcp_zaatar.rho;
        rho_lin = config.Argsys.Argument.params.Pcp.Pcp_zaatar.rho_lin;
      }
    in
    let rows =
      (* Mirror Qapb.of_r1cs's backend selection so the audit prices the
         pipeline the run actually took. *)
      let nc = sizes.Costmodel.Model.c_zaatar in
      let ntt_domain =
        let pick =
          match config.Argsys.Argument.qap_backend with
          | Qapb.Lagrange -> false
          | Qapb.Ntt -> true
          | Qapb.Auto -> nc > 0 && Qapb.ntt_viable ctx nc
        in
        if pick then Some (Polylib.Ntt.next_pow2 nc) else None
      in
      Costmodel.Model.zaatar_op_audit ?ntt_domain pp sizes ~beta:(Array.length instances)
        ~ledger:Zobs.Ledger.phase
    in
    print_audit rows;
    (match folded with
    | None -> ()
    | Some path ->
      Zobs.write_folded path;
      Printf.printf "wrote %s (folded stacks; flamegraph.pl %s > flame.svg)\n" path path);
    let gated = List.filter (fun r -> r.Costmodel.Model.gated) rows in
    let in_band = List.filter (fun r -> r.Costmodel.Model.pass) gated in
    if not (Argsys.Argument.all_accepted result) then begin
      Printf.eprintf "profile: batch REJECTED\n";
      1
    end
    else begin
      Printf.printf "\nop audit %s: %d/%d gated rows in band\n"
        (if Costmodel.Model.audit_pass rows then "OK" else "FAILED")
        (List.length in_band) (List.length gated);
      if Costmodel.Model.audit_pass rows then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Prove a batch with the op ledger on and audit per-phase op counts against the \
             Figure-3 cost model (exit 1 if any gated row leaves its band), or scrape a \
             live prover's sampling profiler with --live")
    Term.(
      const run $ file $ field_bits_arg $ inputs $ batch $ folded $ live $ protocol_args
      $ obs_args)

let serve_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.zl" ~doc:"ZL programs this prover serves.")
  in
  let listen =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:"Address to listen on; port 0 picks an ephemeral port (printed at startup).")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Serve a single connection, then exit (CI smoke).")
  in
  let metrics_listen =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "metrics-listen" ] ~docv:"HOST:PORT"
          ~doc:"Expose live metrics over HTTP: Prometheus text at /metrics, a JSON snapshot \
                at /json (scrape with `zaatar stats`). Port 0 picks an ephemeral port \
                (printed at startup).")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:"Write one Chrome-trace sidecar per connection (prover_connN.json), mergeable \
                with `zaatar trace-merge`. The farm's flight recorder feeds these (plus \
                forensic_connN.jsonl bundles on error/slow sessions); the --sequential loop \
                needs tracing enabled (--trace/--metrics/ZAATAR_TRACE).")
  in
  let log_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-json" ] ~docv:"SINK"
          ~doc:"Emit structured JSONL logs (per-connection peer/digest/phase fields) to \
                'stderr', 'stdout' or a file path.")
  in
  let max_sessions =
    Arg.(
      value
      & opt pos_int_conv Zfarm.Farm.default.Zfarm.Farm.max_sessions
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Concurrent in-flight session cap; connections beyond it park in the accept \
                queue, and beyond that are shed with a busy/retry-after reply.")
  in
  let accept_queue =
    Arg.(
      value
      & opt pos_int_conv Zfarm.Farm.default.Zfarm.Farm.accept_queue
      & info [ "accept-queue" ] ~docv:"N"
          ~doc:"Connections parked beyond --max-sessions before load shedding begins.")
  in
  let session_timeout_ms =
    Arg.(
      value
      & opt pos_int_conv Zfarm.Farm.default.Zfarm.Farm.session_timeout_ms
      & info [ "session-timeout-ms" ] ~docv:"MS"
          ~doc:"Per-session inactivity deadline: sessions (and parked connections) idle \
                longer than this are closed and accounted as timeouts.")
  in
  let setup_cache_mb =
    Arg.(
      value
      & opt int (Zfarm.Farm.default.Zfarm.Farm.setup_cache_bytes / (1024 * 1024))
      & info [ "setup-cache-mb" ] ~docv:"MB"
          ~doc:"Byte bound of the per-digest setup cache (compiled QAP, subproduct trees, \
                twiddle plans, LRU-evicted). 0 disables the cache.")
  in
  let sequential =
    Arg.(
      value & flag
      & info [ "sequential" ]
          ~doc:"Use the one-connection-at-a-time reference loop instead of the concurrent \
                farm.")
  in
  let slow_session_ms =
    Arg.(
      value
      & opt int Zfarm.Farm.default.Zfarm.Farm.slow_session_ms
      & info [ "slow-session-ms" ] ~docv:"MS"
          ~doc:"Farm sessions lasting at least this long dump a JSONL forensic bundle to \
                --trace-dir (0, the default, disables the slow-session trigger; errored \
                sessions always dump).")
  in
  let recent_cap =
    Arg.(
      value
      & opt pos_int_conv Znet.Svcstats.default_recent_cap
      & info [ "recent-cap" ] ~docv:"N"
          ~doc:"Completed connections kept in the stats ring backing /json and the \
                session-latency percentiles.")
  in
  let flight_cap =
    Arg.(
      value
      & opt int Zfarm.Farm.default.Zfarm.Farm.flight_cap
      & info [ "flight-cap" ] ~docv:"N"
          ~doc:"Per-session flight-recorder ring capacity, in events (0 disables the \
                recorder).")
  in
  let profile_hz =
    Arg.(
      value
      & opt int Zfarm.Farm.default.Zfarm.Farm.profile_hz
      & info [ "profile-hz" ] ~docv:"HZ"
          ~doc:"Sampling wall-clock profiler tick rate backing /profile and `zaatar profile \
                --live` (0 disables the sampler).")
  in
  let run files listen once metrics_listen trace_dir log_json max_sessions accept_queue
      session_timeout_ms setup_cache_mb sequential slow_session_ms recent_cap flight_cap
      profile_hz timeout_ms bits config obs =
    with_obs ~process:"prover" obs @@ fun () ->
    (match log_json with
    | Some "stderr" -> Zobs.Log.set_sink (`Channel stderr)
    | Some "stdout" -> Zobs.Log.set_sink (`Channel stdout)
    | Some path -> Zobs.Log.set_sink (`File path)
    | None -> ());
    let ctx = Fp.create (field_for_config bits config) in
    let table = Hashtbl.create 8 in
    List.iter
      (fun f ->
        let compiled = Zlang.Compile.compile ~ctx (read_file f) in
        let comp = Apps.Glue.computation_of compiled in
        let d = Argsys.Argument.digest comp in
        Printf.printf "serving %s as computation %s\n%!" f d;
        Hashtbl.replace table d comp)
      files;
    let log s = Printf.printf "%s\n%!" s in
    Znet.Svcstats.set_recent_cap recent_cap;
    if sequential then
      Argsys.Remote.serve ~config ~lookup:(Hashtbl.find_opt table) ~once ~timeout_ms
        ?metrics_listen ?trace_dir ~log listen
    else begin
      let fconfig =
        {
          Zfarm.Farm.arg_config = config;
          max_sessions;
          accept_queue;
          session_timeout_ms;
          setup_cache_bytes = setup_cache_mb * 1024 * 1024;
          busy_retry_ms = Zfarm.Farm.default.Zfarm.Farm.busy_retry_ms;
          trace_dir;
          slow_session_ms;
          flight_cap;
          profile_hz;
        }
      in
      Zfarm.Farm.serve ~config:fconfig ~lookup:(Hashtbl.find_opt table)
        ?max_conns:(if once then Some 1 else None)
        ?metrics_listen ~log listen
    end;
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a networked prover: accept verifier connections concurrently and prove \
             batches on demand (see --sequential for the reference loop)")
    Term.(
      const run $ files $ listen $ once $ metrics_listen $ trace_dir $ log_json $ max_sessions
      $ accept_queue $ session_timeout_ms $ setup_cache_mb $ sequential $ slow_session_ms
      $ recent_cap $ flight_cap $ profile_hz $ timeout_arg $ field_bits_arg $ protocol_args
      $ obs_args)

(* JSON field accessors shared by `zaatar stats` and `zaatar top`. *)
let jnum j k =
  match Option.bind (Zobs.Json.member k j) Zobs.Json.to_num with Some v -> v | None -> 0.0

let jstr j k =
  match Option.bind (Zobs.Json.member k j) Zobs.Json.to_str with Some s -> s | None -> ""

let stats_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some addr_conv) None
      & info [] ~docv:"HOST:PORT" ~doc:"A `zaatar serve --metrics-listen` endpoint.")
  in
  let raw =
    Arg.(value & flag & info [ "raw" ] ~doc:"Dump the raw Prometheus text exposition (/metrics).")
  in
  let run addr raw =
    exit
    @@
    match Znet.Metrics_http.get addr (if raw then "/metrics" else "/json") with
    | exception Failure m ->
      Printf.eprintf "stats: %s\n" m;
      1
    | code, _ when code <> 200 ->
      Printf.eprintf "stats: %s answered HTTP %d\n" addr code;
      1
    | _, body when raw ->
      print_string body;
      0
    | _, body ->
      let j = Zobs.Json.parse body in
      let server = Option.value (Zobs.Json.member "server" j) ~default:(Zobs.Json.Obj []) in
      Printf.printf "server %s:\n" addr;
      List.iter
        (fun k -> Printf.printf "  %-16s %10.0f\n" k (jnum server k))
        [
          "accepted"; "active"; "completed"; "failed"; "decode_errors"; "timeouts"; "shed";
          "cache_hits"; "cache_misses"; "queue_depth";
        ];
      let hits = jnum server "cache_hits" and misses = jnum server "cache_misses" in
      if hits +. misses > 0.0 then
        Printf.printf "  %-16s %9.0f%%\n" "cache_hit_rate" (100.0 *. hits /. (hits +. misses));
      (match Zobs.Json.member "latency_ms" server with
      | Some lat ->
        Printf.printf "  %-16s p50 %.1f  p95 %.1f  p99 %.1f\n" "latency_ms" (jnum lat "p50")
          (jnum lat "p95") (jnum lat "p99")
      | None -> ());
      let conns =
        Option.value (Option.bind (Zobs.Json.member "connections" j) Zobs.Json.to_arr)
          ~default:[]
      in
      if conns <> [] then begin
        Printf.printf "connections:\n";
        Printf.printf "  %4s %-21s %-16s %-7s %9s %10s %10s %6s\n" "id" "peer" "digest"
          "status" "secs" "sent B" "recv B" "msgs";
        List.iter
          (fun c ->
            Printf.printf "  %4.0f %-21s %-16s %-7s %9.3f %10.0f %10.0f %6.0f\n" (jnum c "id")
              (jstr c "peer") (jstr c "digest") (jstr c "status") (jnum c "duration_s")
              (jnum c "bytes_sent") (jnum c "bytes_recv") (jnum c "msgs"))
          conns
      end;
      0
  in
  Cmd.v (Cmd.info "stats" ~doc:"Scrape and pretty-print a prover's live metrics endpoint")
    Term.(const run $ addr $ raw)

let top_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some addr_conv) None
      & info [] ~docv:"HOST:PORT" ~doc:"A `zaatar serve --metrics-listen` endpoint.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Render a single frame and exit (scripting/CI; no screen clear).")
  in
  let interval_ms =
    Arg.(
      value & opt pos_int_conv 1000
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Refresh period between frames.")
  in
  (* One frame of the live view: farm gauges, latency percentiles, loop
     health, then a per-session table (active first — the /json connection
     list is active @ recent). *)
  let render addr j =
    let server = Option.value (Zobs.Json.member "server" j) ~default:(Zobs.Json.Obj []) in
    let loop = Option.value (Zobs.Json.member "loop" j) ~default:(Zobs.Json.Obj []) in
    let accepted = jnum server "accepted" in
    let shed = jnum server "shed" in
    let hits = jnum server "cache_hits" and misses = jnum server "cache_misses" in
    let rate a b = if a +. b > 0.0 then 100.0 *. a /. (a +. b) else 0.0 in
    Printf.printf "zaatar top — %s\n" addr;
    Printf.printf
      "sessions: %.0f active  %.0f queued  %.0f done  %.0f failed  %.0f timeout  %.0f shed \
       (%.1f%%)\n"
      (jnum server "active") (jnum server "queue_depth") (jnum server "completed")
      (jnum server "failed") (jnum server "timeouts") shed
      (rate shed accepted);
    (match Zobs.Json.member "latency_ms" server with
    | Some lat ->
      Printf.printf "latency ms: p50 %.1f  p95 %.1f  p99 %.1f" (jnum lat "p50") (jnum lat "p95")
        (jnum lat "p99")
    | None -> Printf.printf "latency ms: -");
    Printf.printf "   cache hit: %.1f%% (%.0f/%.0f)\n" (rate hits misses) hits (hits +. misses);
    let iter_us = Option.value (Zobs.Json.member "iter_us" loop) ~default:(Zobs.Json.Obj []) in
    Printf.printf
      "loop: %.0f iters  util %.1f%%  ready/iter %.2f  iter_us p50 %.0f p95 %.0f p99 %.0f\n"
      (jnum loop "iterations")
      (100.0 *. jnum loop "utilization")
      (jnum loop "ready_avg") (jnum iter_us "p50") (jnum iter_us "p95") (jnum iter_us "p99");
    let conns =
      Option.value (Option.bind (Zobs.Json.member "connections" j) Zobs.Json.to_arr) ~default:[]
    in
    Printf.printf "\n%4s %-16s %-8s %-7s %8s %10s %10s\n" "id" "digest" "phase" "status"
      "age s" "sent B" "recv B";
    List.iter
      (fun c ->
        Printf.printf "%4.0f %-16s %-8s %-7s %8.3f %10.0f %10.0f\n" (jnum c "id")
          (jstr c "digest") (jstr c "phase") (jstr c "status") (jnum c "duration_s")
          (jnum c "bytes_sent") (jnum c "bytes_recv"))
      conns;
    if conns = [] then Printf.printf "(no sessions yet)\n"
  in
  let run addr once interval_ms =
    exit
    @@
    let frame () =
      match Znet.Metrics_http.get addr "/json" with
      | exception Failure m ->
        Printf.eprintf "top: %s\n" m;
        Some 1
      | code, _ when code <> 200 ->
        Printf.eprintf "top: %s answered HTTP %d\n" addr code;
        Some 1
      | _, body ->
        render addr (Zobs.Json.parse body);
        None
    in
    if once then match frame () with Some c -> c | None -> 0
    else begin
      let rc = ref None in
      while !rc = None do
        (* Home + clear-to-end leaves less flicker than a full clear. *)
        print_string "\027[H\027[J";
        rc := frame ();
        flush stdout;
        if !rc = None then Unix.sleepf (float_of_int interval_ms /. 1000.0)
      done;
      Option.value !rc ~default:0
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live farm operations view: poll a prover's /json endpoint and render \
             per-session state, latency percentiles, cache and shed rates, and event-loop \
             health (--once for a single scriptable frame)")
    Term.(const run $ addr $ once $ interval_ms)

let trace_merge_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE.json"
          ~doc:"Chrome-trace files from one distributed run (e.g. the verifier's --trace \
                output and the prover's --trace-dir sidecar).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"OUT.json" ~doc:"Merged Chrome-trace output file.")
  in
  let run files out =
    exit
    @@
    match Zobs.Sink.merge_chrome_trace_files ~out files with
    | () ->
      Printf.printf "wrote %s (merged %d trace file(s); load in ui.perfetto.dev)\n" out
        (List.length files);
      0
    | exception Invalid_argument m ->
      Printf.eprintf "trace-merge: %s\n" m;
      1
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:"Merge per-process Chrome traces (one pid each) into a single Perfetto view")
    Term.(const run $ files $ out)

let bench_cmd =
  let bname = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"pam | bisection | apsp | fannkuch | lcs") in
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Input-size multiplier.") in
  let batch = Arg.(value & opt int 2 & info [ "batch" ] ~doc:"Batch size.") in
  let run name scale batch bits config profile obs =
    with_obs obs @@ fun () ->
    if profile then Zobs.enable ();
    let ctx = Fp.create (field_for_config bits config) in
    let app = Apps.Registry.by_name name ~scale in
    Printf.printf "benchmark %s (%s)\n" app.Apps.App_def.display app.Apps.App_def.params_desc;
    let compiled = Apps.Glue.compile ctx app in
    print_stats compiled;
    print_newline ();
    let comp = Apps.Glue.computation_of compiled in
    let prg = Chacha.Prg.create ~seed:("cli bench " ^ name) () in
    let inputs =
      Array.init batch (fun _ -> Apps.Glue.field_inputs ctx (app.Apps.App_def.gen_inputs prg))
    in
    let code = report_batch ctx (Argsys.Argument.run_batch ~config comp ~prg ~inputs) in
    if profile then Format.printf "@.%a" Zobs.Ledger.pp_table ();
    code
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run one built-in benchmark end to end")
    Term.(const run $ bname $ scale $ batch $ field_bits_arg $ protocol_args $ profile_flag $ obs_args)

let selftest_cmd =
  let run bits =
    let ctx = Fp.create (field_of_bits bits) in
    let prg = Chacha.Prg.create ~seed:"selftest" () in
    List.iter
      (fun (app : Apps.App_def.t) ->
        Printf.printf "%-28s (%s) ... %!" app.Apps.App_def.display app.Apps.App_def.params_desc;
        ignore (Apps.Glue.differential_check ~trials:3 ctx app prg);
        print_endline "ok")
      (Apps.Registry.suite ());
    print_endline "all benchmarks match their native references"
  in
  Cmd.v (Cmd.info "selftest" ~doc:"Differential-check every benchmark against its native reference")
    Term.(const run $ field_bits_arg)

let check_cmd =
  let sys_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"SYSTEM.r1cs") in
  let wit_file = Arg.(required & pos 1 (some file) None & info [] ~docv:"WITNESS") in
  let run sys_file wit_file =
    let sys = Constr.Serialize.system_of_string (read_file sys_file) in
    let _wctx, w = Constr.Serialize.assignment_of_string (read_file wit_file) in
    let ctx = sys.Constr.R1cs.field in
    match Constr.R1cs.first_violation ctx sys w with
    | None ->
      Printf.printf "OK: %d constraints over %d variables satisfied\n"
        (Constr.R1cs.num_constraints sys) sys.Constr.R1cs.num_vars
    | Some j ->
      Printf.printf "FAIL: constraint %d violated\n" j;
      exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a serialized assignment against a serialized constraint system")
    Term.(const run $ sys_file $ wit_file)

(* zaatar exec: the Zexec witness-solving interpreter (DESIGN.md §16).
   Solves a serialized system from inputs alone — no ZL source, no
   compiler solver — or, with --check, cross-validates interpreter vs
   compiler vs native reference over the whole benchmark suite. *)
let exec_cmd =
  let sys_file = Arg.(value & pos 0 (some file) None & info [] ~docv:"SYSTEM.r1cs") in
  let inputs =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "inputs" ] ~docv:"V1,V2,.." ~doc:"Input values (signed integers).")
  in
  let emit_witness =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-witness" ] ~docv:"OUT" ~doc:"Write the solved assignment to a file.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Differential mode: for every benchmark app, compare the interpreter's witness \
             against the compiler's solver and the app's native reference.")
  in
  let trials = Arg.(value & opt pos_int_conv 3 & info [ "trials" ] ~doc:"Random trials per app with --check.") in
  let scale =
    Arg.(value & opt (some pos_int_conv) None & info [ "scale" ] ~docv:"N" ~doc:"Problem size for --check (apps' default otherwise).")
  in
  let run_check bits trials scale =
    let ctx = Fp.create (field_of_bits bits) in
    let prg = Chacha.Prg.create ~seed:"exec-check" () in
    let failed = ref false in
    List.iter
      (fun (app : Apps.App_def.t) ->
        Printf.printf "%-28s (%s) ... %!" app.Apps.App_def.display app.Apps.App_def.params_desc;
        let c = Zlang.Compile.compile ~ctx app.Apps.App_def.source in
        let sys = Zlang.Compile.zaatar_r1cs c in
        let ok = ref true in
        let stats = ref None in
        for _ = 1 to trials do
          let ints = app.Apps.App_def.gen_inputs prg in
          let finputs = Apps.Glue.field_inputs ctx ints in
          let w1 = c.Zlang.Compile.solve_zaatar finputs in
          match Zexec.Exec.solve sys ~inputs:finputs with
          | Error e ->
            ok := false;
            Printf.printf "\n  %s" (Zexec.Exec.error_to_text e)
          | Ok (w2, st) ->
            stats := Some st;
            Array.iteri
              (fun v x ->
                if not (Fp.equal x w2.(v)) then begin
                  ok := false;
                  Printf.printf "\n  witness differs at w%d" v
                end)
              w1;
            let outs = Apps.Glue.int_outputs ctx (Zlang.Compile.outputs_zaatar c w2) in
            if outs <> app.Apps.App_def.native ints then begin
              ok := false;
              Printf.printf "\n  outputs differ from the native reference"
            end
        done;
        if !ok then begin
          (match !stats with
          | Some st ->
            Printf.printf "ok (%d pinned, %d defaulted, %d row visits)\n" st.Zexec.Exec.pinned
              st.Zexec.Exec.defaulted st.Zexec.Exec.row_visits
          | None -> print_endline "ok")
        end
        else begin
          failed := true;
          print_newline ()
        end)
      (Apps.Registry.suite ?scale ());
    if !failed then exit 1;
    print_endline "interpreter, compiler and native references all agree"
  in
  let run bits sys_file inputs emit_witness check trials scale =
    if check then run_check bits trials scale
    else
      match sys_file with
      | None ->
        prerr_endline "zaatar exec: SYSTEM.r1cs required (or use --check)";
        exit 1
      | Some f -> (
        let sys = Constr.Serialize.system_of_string (read_file f) in
        let ctx = sys.Constr.R1cs.field in
        let ints = match inputs with Some s -> parse_inputs s | None -> [||] in
        let finputs = Array.map (Fp.of_int ctx) ints in
        match Zexec.Exec.solve sys ~inputs:finputs with
        | Error e ->
          prerr_endline (Zexec.Exec.error_to_text ~file:f e);
          exit 1
        | Ok (w, st) ->
          Printf.printf
            "solved %d constraints over %d variables: %d pinned, %d defaulted, %d ambiguous \
             row(s), %d row visits\n"
            (Constr.R1cs.num_constraints sys) sys.Constr.R1cs.num_vars st.Zexec.Exec.pinned
            st.Zexec.Exec.defaulted st.Zexec.Exec.ambiguous_rows st.Zexec.Exec.row_visits;
          let outs = Zexec.Exec.outputs sys ~num_inputs:(Array.length ints) w in
          if Array.length outs > 0 then
            Printf.printf "outputs: %s\n"
              (String.concat ", "
                 (Array.to_list
                    (Array.map
                       (fun e ->
                         match Fp.to_signed_int ctx e with
                         | Some n -> string_of_int n
                         | None -> Fp.to_string e)
                       outs)));
          (match emit_witness with
          | Some out ->
            let oc = open_out_bin out in
            output_string oc (Constr.Serialize.assignment_to_string ctx w);
            close_out oc;
            Printf.printf "wrote %s\n" out
          | None -> ()))
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Solve a constraint system's witness from inputs alone (the Zexec interpreter)")
    Term.(const run $ field_bits_arg $ sys_file $ inputs $ emit_witness $ check $ trials $ scale)

(* zaatar fuzz: the differential fuzzing campaign. Exit 0 when every
   program agrees across the oracle, 1 when a discrepancy (or an
   undetectable transform mutation) survives. *)
let fuzz_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.") in
  let count = Arg.(value & opt pos_int_conv 100 & info [ "count" ] ~docv:"M" ~doc:"Programs to generate.") in
  let shrink =
    Arg.(value & flag & info [ "shrink" ] ~doc:"Minimize each discrepancy before reporting it.")
  in
  let break_transform =
    Arg.(
      value & flag
      & info [ "break-transform" ]
          ~doc:
            "Adversarial mode: delete a product-definition row from a compiled system and \
             verify the toolchain (Zlint ZR002, Zexec) catches it; shrink to a minimal \
             reproducer.")
  in
  let fixture =
    Arg.(
      value
      & opt (some string) None
      & info [ "fixture" ] ~docv:"OUT.r1cs"
          ~doc:"With --break-transform: write the minimal broken system to a file.")
  in
  let verdict_every =
    Arg.(
      value & opt int 16
      & info [ "verdict-every" ] ~docv:"K"
          ~doc:"Run every K-th program through the full argument pipeline (0 disables).")
  in
  let run bits seed count shrink break_transform fixture verdict_every =
    let ctx = Fp.create (field_of_bits bits) in
    if break_transform then begin
      match Zfuzz.Fuzz.break_transform ~ctx ~seed ~count () with
      | None ->
        Printf.printf
          "break-transform: no generated program yielded a lint-detectable mutation in %d \
           tries\n"
          count;
        exit 1
      | Some bc ->
        Printf.printf "break-transform: campaign index %d, minimized to:\n%s" bc.Zfuzz.Fuzz.bt_index
          bc.Zfuzz.Fuzz.bt_source;
        List.iter
          (fun (d : Zlint.Diagnostic.t) ->
            if d.Zlint.Diagnostic.code = "ZR002" then
              Printf.printf "  detected: %s %s\n" d.Zlint.Diagnostic.code d.Zlint.Diagnostic.message)
          bc.Zfuzz.Fuzz.bt_findings;
        (match fixture with
        | Some out ->
          let oc = open_out_bin out in
          output_string oc (Constr.Serialize.system_to_string bc.Zfuzz.Fuzz.bt_system);
          close_out oc;
          Printf.printf "wrote %s\n" out
        | None -> ())
    end
    else begin
      Printf.printf "fuzz: seed=%d count=%d (three-way oracle%s)\n%!" seed count
        (if verdict_every > 0 then Printf.sprintf ", argument verdict every %d" verdict_every
         else "");
      let r = Zfuzz.Fuzz.campaign ~verdict_every ~ctx ~seed ~count () in
      List.iter
        (fun (d : Zfuzz.Fuzz.discrepancy) ->
          Printf.printf "DISCREPANCY at index %d, stage %s: %s\n  inputs: %s\n"
            d.Zfuzz.Fuzz.index d.Zfuzz.Fuzz.stage d.Zfuzz.Fuzz.detail
            (String.concat "," (Array.to_list (Array.map string_of_int d.Zfuzz.Fuzz.inputs)));
          let src =
            if shrink then begin
              let prog, ints = Zfuzz.Fuzz.case ~seed d.Zfuzz.Fuzz.index in
              Zlang.Printer.to_source
                (Zfuzz.Fuzz.shrink_discrepancy ~ctx ~stage:d.Zfuzz.Fuzz.stage prog ints)
            end
            else d.Zfuzz.Fuzz.source
          in
          print_string src)
        r.Zfuzz.Fuzz.discrepancies;
      Printf.printf "%d program(s), %d through the argument pipeline, %d discrepancy(ies)\n"
        r.Zfuzz.Fuzz.programs r.Zfuzz.Fuzz.verdicts
        (List.length r.Zfuzz.Fuzz.discrepancies);
      if r.Zfuzz.Fuzz.discrepancies <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential-fuzz the ZL compiler against the native evaluator and Zexec")
    Term.(
      const run $ field_bits_arg $ seed $ count $ shrink $ break_transform $ fixture
      $ verdict_every)

let micro_cmd =
  let pbits = Arg.(value & opt int 512 & info [ "pbits" ] ~doc:"ElGamal group size in bits.") in
  let iters = Arg.(value & opt int 1000 & info [ "iters" ] ~doc:"Iterations per operation.") in
  let run bits pbits iters =
    let field = field_of_bits bits in
    let ctx = Fp.create field in
    let grp = Zcrypto.Group.cached ~field_order:field ~p_bits:pbits () in
    let m = Costmodel.Params.measure ~iters ctx grp in
    Format.printf "%a@." Costmodel.Params.pp_row m
  in
  Cmd.v (Cmd.info "micro" ~doc:"Measure the section-5.1 microbenchmark parameters")
    Term.(const run $ field_bits_arg $ pbits $ iters)

let () =
  let info = Cmd.info "zaatar" ~doc:"Verified computation with QAP-based linear PCPs (EuroSys'13)" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            compile_cmd; lint_cmd; run_cmd; profile_cmd; serve_cmd; stats_cmd; top_cmd;
            trace_merge_cmd; bench_cmd; selftest_cmd; check_cmd; exec_cmd; fuzz_cmd; micro_cmd;
          ]))
