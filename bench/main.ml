(* The evaluation harness: regenerates every table and figure of the
   paper's §5 and Appendix A.2. See DESIGN.md §3 for the experiment index
   and EXPERIMENTS.md for recorded paper-vs-measured results.

     dune exec bench/main.exe                 -- everything, scaled-down sizes
     dune exec bench/main.exe -- fig4         -- one experiment
     dune exec bench/main.exe -- all --scale 2 --paper-params

   Experiments: micro bechamel model fig4 fig5 fig6 fig7 fig8 fig9
   soundness ablation.

   Ginger's costs are *estimated from its cost model* (Figure 3's left
   column, parameterized by our measured microbenchmarks), exactly as the
   paper does: "we use estimates, rather than empirics, because the
   computations would be too expensive under Ginger" (§5.1). Zaatar numbers
   are measured end to end. *)

open Fieldlib

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type cfg = {
  field : Nat.t;
  scale : int;
  rho : int;
  rho_lin : int;
  p_bits : int;
  batch : int;
  quick : bool;
  domains : int; (* Pool domains for the commitment pipeline (--domains) *)
  qap_backend : Qapb.backend; (* --qap-backend auto|ntt|lagrange *)
}

let default_cfg =
  {
    (* The NTT-friendly 127-bit prime (2-adicity 62): same width as the
       paper's Mersenne p127, but able to host the production NTT prover
       path, so the default bench exercises it. Force the Mersenne field's
       pipeline with --qap-backend lagrange (identical over either prime:
       the Lagrange path never uses the 2-adic structure). *)
    field = Primes.p127_ntt;
    scale = 1;
    rho = 3;
    rho_lin = 10;
    p_bits = 512;
    batch = 2;
    quick = false;
    domains = 1;
    qap_backend = Qapb.Auto;
  }

let ctx_of cfg = Fp.create cfg.field

(* The padded NTT domain the configured backend resolves to for a system
   of [nc] constraints, mirroring Qapb.of_r1cs's selection rule; None =
   the Lagrange pipeline. Drives the backend-aware cost model. *)
let ntt_domain_of cfg ctx ~nc =
  let pick =
    match cfg.qap_backend with
    | Qapb.Lagrange -> false
    | Qapb.Ntt -> true
    | Qapb.Auto -> nc > 0 && Qapb.ntt_viable ctx nc
  in
  if pick then Some (Polylib.Ntt.next_pow2 nc) else None

let protocol cfg = { Pcp.Pcp_zaatar.rho = cfg.rho; rho_lin = cfg.rho_lin }
let model_protocol cfg = { Costmodel.Model.rho = cfg.rho; rho_lin = cfg.rho_lin }

let banner title =
  Printf.printf "\n=======================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=======================================================================\n%!"

(* ------------------------------------------------------------------ *)
(* Shared measurement helpers                                          *)
(* ------------------------------------------------------------------ *)

let time_thunk f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Local (native) per-instance execution time: the baseline of Figures 5
   and 7. *)
let measure_local (app : Apps.App_def.t) prg =
  let inputs = Array.init 8 (fun _ -> app.Apps.App_def.gen_inputs prg) in
  (* warm up + calibrate iteration count *)
  let _, once = time_thunk (fun () -> ignore (app.Apps.App_def.native inputs.(0))) in
  let iters = max 20 (min 50_000 (int_of_float (0.2 /. (once +. 1e-9)))) in
  let _, total =
    time_thunk (fun () ->
        for i = 1 to iters do
          ignore (app.Apps.App_def.native inputs.(i land 7))
        done)
  in
  total /. float_of_int iters

let microbench_cache : (string, Costmodel.Params.t) Hashtbl.t = Hashtbl.create 4

let measured_params cfg =
  let key = Printf.sprintf "%s/%d" (Nat.to_hex cfg.field) cfg.p_bits in
  match Hashtbl.find_opt microbench_cache key with
  | Some p -> p
  | None ->
    let ctx = ctx_of cfg in
    let grp = Zcrypto.Group.cached ~field_order:cfg.field ~p_bits:cfg.p_bits () in
    let p = Costmodel.Params.measure ~iters:(if cfg.quick then 200 else 1000) ctx grp in
    Hashtbl.add microbench_cache key p;
    p

(* One full measured Zaatar run per benchmark, cached and reused across
   figures. *)
type bench_run = {
  app : Apps.App_def.t;
  compiled : Zlang.Compile.compiled;
  stats : Zlang.Compile.stats;
  t_local : float;
  result : Argsys.Argument.batch_result;
  prover_per_instance : float;
  batch : int;
}

let run_cache : (string, bench_run) Hashtbl.t = Hashtbl.create 8

let bench_run cfg (app : Apps.App_def.t) : bench_run =
  let key =
    app.Apps.App_def.name ^ "/" ^ app.Apps.App_def.params_desc ^ "/"
    ^ Qapb.backend_to_string cfg.qap_backend
  in
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
    let ctx = ctx_of cfg in
    let prg = Chacha.Prg.create ~seed:("bench " ^ key) () in
    let compiled = Apps.Glue.compile ctx app in
    let stats = Zlang.Compile.stats compiled in
    let t_local = measure_local app prg in
    let comp = Apps.Glue.computation_of compiled in
    let inputs =
      Array.init cfg.batch (fun _ ->
          Apps.Glue.field_inputs ctx (app.Apps.App_def.gen_inputs prg))
    in
    let config =
      {
        Argsys.Argument.params = protocol cfg;
        p_bits = cfg.p_bits;
        strategy = Argsys.Argument.Honest;
        domains = cfg.domains;
        qap_backend = cfg.qap_backend;
      }
    in
    let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
    if not (Argsys.Argument.all_accepted result) then
      failwith (key ^ ": verification unexpectedly failed");
    let prover_per_instance = Argsys.Metrics.total result.Argsys.Argument.prover /. float_of_int cfg.batch in
    let r = { app; compiled; stats; t_local; result; prover_per_instance; batch = cfg.batch } in
    Hashtbl.add run_cache key r;
    r

(* Compile-only cache: Figure 9 needs encoding statistics, not measured
   runs. *)
let stats_cache : (string, Zlang.Compile.stats) Hashtbl.t = Hashtbl.create 8

let compiled_stats cfg (app : Apps.App_def.t) : Zlang.Compile.stats =
  let key = app.Apps.App_def.name ^ "/" ^ app.Apps.App_def.params_desc in
  match Hashtbl.find_opt stats_cache key with
  | Some s -> s
  | None ->
    let s =
      match Hashtbl.find_opt run_cache key with
      | Some r -> r.stats
      | None -> Zlang.Compile.stats (Apps.Glue.compile (ctx_of cfg) app)
    in
    Hashtbl.add stats_cache key s;
    s

let sizes_of_run (r : bench_run) : Costmodel.Model.sizes =
  Costmodel.Model.sizes_of_stats r.stats ~n_x:r.compiled.Zlang.Compile.num_inputs
    ~n_y:r.compiled.Zlang.Compile.num_outputs ~t_local:r.t_local

let ginger_prover_estimate cfg (r : bench_run) =
  let p = measured_params cfg in
  (Costmodel.Model.ginger_prover p (model_protocol cfg) (sizes_of_run r)).Costmodel.Model.total_p

let orders_of_magnitude a b = log10 (a /. b)

let fmt_s v =
  if v >= 3600.0 then Printf.sprintf "%.1f h" (v /. 3600.0)
  else if v >= 60.0 then Printf.sprintf "%.1f min" (v /. 60.0)
  else if v >= 1.0 then Printf.sprintf "%.2f s" v
  else if v >= 1e-3 then Printf.sprintf "%.2f ms" (v *. 1e3)
  else Printf.sprintf "%.1f us" (v *. 1e6)

(* ------------------------------------------------------------------ *)
(* T-micro: §5.1 microbenchmark table                                  *)
(* ------------------------------------------------------------------ *)

let run_micro cfg =
  banner "Microbenchmarks (section 5.1 table): per-operation CPU costs";
  Printf.printf
    "(paper, GMP + 1024-bit ElGamal on a 2.53GHz Xeon: 128-bit row was\n\
    \ e=65us d=170us h=91us f_lazy=68ns f=210ns f_div=2us c=160ns)\n\n";
  let fields = [ ("128-bit (2^127-1)", Primes.p127); ("220-bit", Primes.p220 ()) ] in
  List.iter
    (fun (label, field) ->
      let c = { cfg with field } in
      let p = measured_params c in
      Printf.printf "%-18s %s\n%!" label (Format.asprintf "%a" Costmodel.Params.pp_row p))
    fields

(* Bechamel-based version of the same table: one Test.make per operation,
   grouped per field size. *)
let run_bechamel cfg =
  banner "Microbenchmarks via bechamel (OLS estimates, ns/op)";
  let open Bechamel in
  let make_group label field =
    let ctx = Fp.create field in
    let grp = Zcrypto.Group.cached ~field_order:field ~p_bits:cfg.p_bits () in
    let prg = Chacha.Prg.create ~seed:"bechamel" () in
    let sk, pk = Zcrypto.Elgamal.keygen grp prg in
    let a = Chacha.Prg.field_nonzero ctx prg and b = Chacha.Prg.field_nonzero ctx prg in
    let ct = Zcrypto.Elgamal.encrypt pk prg a in
    ignore sk;
    Test.make_grouped ~name:label ~fmt:"%s %s"
      [
        Test.make ~name:"f (field mul)" (Staged.stage (fun () -> ignore (Fp.mul ctx a b)));
        Test.make ~name:"f_lazy" (Staged.stage (fun () -> ignore (Fp.mul_lazy ctx a b)));
        Test.make ~name:"f_div" (Staged.stage (fun () -> ignore (Fp.div ctx a b)));
        Test.make ~name:"c (prg field)" (Staged.stage (fun () -> ignore (Chacha.Prg.field ctx prg)));
        Test.make ~name:"h (hom add+mul)"
          (Staged.stage (fun () -> ignore (Zcrypto.Elgamal.hom_add pk ct (Zcrypto.Elgamal.hom_scale pk ct a))));
      ]
  in
  let test =
    Test.make_grouped ~name:"micro" ~fmt:"%s/%s"
      [ make_group "128bit" Primes.p127 ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg' = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~stabilize:false () in
    let raw = Benchmark.all cfg' instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/op\n" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    results;
  flush stdout

(* ------------------------------------------------------------------ *)
(* F3: cost-model validation (Figure 3)                                *)
(* ------------------------------------------------------------------ *)

(* Filled by run_model and folded into BENCH_run.json under "model":
   per-application predicted vs. measured prover seconds and their ratio
   (delta), per phase. `--check-model` turns a delta outside the tolerance
   band into a non-zero exit; `--baseline` compares deltas against a
   committed BENCH_baseline.json. [model_rows] keeps the raw numbers so the
   gates need not re-parse their own JSON. *)
let model_section : Zobs.Json.t ref = ref Zobs.Json.Null
let model_rows : (string * (string * float * float) list) list ref = ref []

(* The model's two phases against the prover's four measured spans:
   construct_u covers solving the constraints and building the proof
   vector; issue_responses covers the commitment crypto and answering the
   PCP queries. *)
let model_phases cfg (r : bench_run) =
  let p = measured_params cfg in
  let sizes = sizes_of_run r in
  let ctx = ctx_of cfg in
  let ntt_domain = ntt_domain_of cfg ctx ~nc:sizes.Costmodel.Model.c_zaatar in
  let zp =
    Costmodel.Model.zaatar_prover ?ntt_domain ~exp_bits:(Fp.bits ctx) p (model_protocol cfg)
      sizes
  in
  let m = r.result.Argsys.Argument.prover in
  let per name = Argsys.Metrics.get m name /. float_of_int r.batch in
  [
    ( "construct_u",
      zp.Costmodel.Model.construct_u,
      per "solve_constraints" +. per "construct_u" );
    ( "issue_responses",
      zp.Costmodel.Model.issue_responses,
      per "crypto_ops" +. per "answer_queries" );
    ("total", zp.Costmodel.Model.total_p, r.prover_per_instance);
  ]

let run_model cfg =
  banner "Figure 3: cost model vs. measured Zaatar prover";
  Printf.printf "(paper: empirical CPU costs are 5-15%% larger than the model's predictions)\n\n";
  Printf.printf "%-28s %-16s %12s %12s %8s\n" "computation" "phase" "model" "measured" "ratio";
  let rows =
    List.map
      (fun (app : Apps.App_def.t) ->
        let r = bench_run cfg app in
        let phases = model_phases cfg r in
        List.iteri
          (fun i (ph, predicted, measured) ->
            Printf.printf "%-28s %-16s %12s %12s %7.2fx\n%!"
              (if i = 0 then app.Apps.App_def.display else "")
              ph (fmt_s predicted) (fmt_s measured) (measured /. predicted))
          phases;
        (app.Apps.App_def.name, phases))
      (Apps.Registry.suite ~scale:cfg.scale ())
  in
  model_rows := rows;
  let num x = Zobs.Json.Num x in
  model_section :=
    Zobs.Json.Obj
      [
        ( "apps",
          Zobs.Json.Arr
            (List.map
               (fun (name, phases) ->
                 Zobs.Json.Obj
                   [
                     ("name", Zobs.Json.Str name);
                     ( "phases",
                       Zobs.Json.Obj
                         (List.map
                            (fun (ph, predicted, measured) ->
                              ( ph,
                                Zobs.Json.Obj
                                  [
                                    ("predicted_s", num predicted);
                                    ("measured_s", num measured);
                                    ("delta", num (measured /. predicted));
                                  ] ))
                            phases) );
                   ])
               rows) );
      ]

(* --check-model gate: every application's total measured/predicted ratio
   must land inside the band. Only the total is gated — the per-phase
   split disagrees by construction (crypto_ops runs under a parallel
   Dompool map where the model prices sequential work, and at small scales
   constant factors swamp the model's asymptotic terms) and the paper only
   validates totals. Per-phase deltas are still recorded in the JSON and
   held to the committed baseline by --baseline. The default band is
   deliberately wide: it catches an order-of-magnitude regression (a
   broken kernel, a mis-costed phase), not scheduler jitter. *)
let check_model (lo, hi) =
  if !model_rows = [] then begin
    Printf.eprintf "--check-model: the model experiment did not run\n";
    exit 1
  end;
  let breaches =
    List.concat_map
      (fun (name, phases) ->
        List.filter_map
          (fun (ph, predicted, measured) ->
            let delta = measured /. predicted in
            if ph = "total" && (delta < lo || delta > hi || Float.is_nan delta) then
              Some (name, ph, delta)
            else None)
          phases)
      !model_rows
  in
  if breaches = [] then
    Printf.printf "\ncost model check OK: all deltas within [%.2f, %.2f]\n%!" lo hi
  else begin
    List.iter
      (fun (name, ph, delta) ->
        Printf.eprintf "cost model breach: %s/%s measured/predicted = %.2fx outside [%.2f, %.2f]\n"
          name ph delta lo hi)
      breaches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* F4: prover per-instance running time, Zaatar vs Ginger              *)
(* ------------------------------------------------------------------ *)

let run_fig4 cfg =
  banner "Figure 4: per-instance prover running time (Zaatar measured, Ginger modeled)";
  Printf.printf "(paper: improvements of 1-6 orders of magnitude; root finding the smallest)\n\n";
  Printf.printf "%-28s %12s %14s %22s\n" "computation" "Zaatar" "Ginger (est.)" "improvement";
  List.iter
    (fun app ->
      let r = bench_run cfg app in
      let ginger = ginger_prover_estimate cfg r in
      Printf.printf "%-28s %12s %14s %18.1f orders\n%!" app.Apps.App_def.display
        (fmt_s r.prover_per_instance) (fmt_s ginger)
        (orders_of_magnitude ginger r.prover_per_instance))
    (Apps.Registry.suite ~scale:cfg.scale ())

(* ------------------------------------------------------------------ *)
(* F5: prover cost decomposition                                       *)
(* ------------------------------------------------------------------ *)

let run_fig5 cfg =
  banner "Figure 5: per-instance cost of the Zaatar prover vs local execution";
  Printf.printf "%-28s %10s | %10s %12s %10s %10s %12s\n" "computation (Psi)" "local"
    "solve" "construct u" "crypto" "answer" "e2e CPU";
  List.iter
    (fun app ->
      let r = bench_run cfg app in
      let m = r.result.Argsys.Argument.prover in
      let per name = Argsys.Metrics.get m name /. float_of_int r.batch in
      Printf.printf "%-28s %10s | %10s %12s %10s %10s %12s\n%!" app.Apps.App_def.display
        (fmt_s r.t_local)
        (fmt_s (per "solve_constraints"))
        (fmt_s (per "construct_u"))
        (fmt_s (per "crypto_ops"))
        (fmt_s (per "answer_queries"))
        (fmt_s r.prover_per_instance))
    (Apps.Registry.suite ~scale:cfg.scale ());
  Printf.printf
    "\n(paper at full scale: ~40%% constructing u, ~35%% crypto, remainder answering;\n\
    \ e2e minutes against milliseconds of local time)\n"

(* ------------------------------------------------------------------ *)
(* F6: parallelizing and distributing the prover                       *)
(* ------------------------------------------------------------------ *)

(* Prover-only batch with separate compute and crypto parallelism; the
   "GPU" configurations give the crypto phase extra domains (see DESIGN.md
   substitutions). *)
let prover_batch_wall cfg ~compute_domains ~crypto_domains (comp : Argsys.Argument.computation)
    (qap : Qapb.t) queries req_z req_h inputs =
  (* Force lazy QAP structures before entering domains. *)
  Qapb.prewarm qap;
  ignore cfg;
  let num_z = comp.Argsys.Argument.r1cs.Constr.R1cs.num_z in
  let ctx = comp.Argsys.Argument.r1cs.Constr.R1cs.field in
  let parts, t_compute =
    Dompool.Pool.timed_map ~domains:compute_domains
      (fun x ->
        let w = comp.Argsys.Argument.solve x in
        let h = Qapb.prover_h qap w in
        (Array.sub w 1 num_z, h))
      inputs
  in
  let _, t_crypto =
    Dompool.Pool.timed_map ~domains:crypto_domains
      (fun (z, h) ->
        (Commitment.Commit.prover_commit req_z z, Commitment.Commit.prover_commit req_h h))
      parts
  in
  let _, t_answer =
    Dompool.Pool.timed_map ~domains:compute_domains
      (fun (z, h) -> Pcp.Pcp_zaatar.answer (Pcp.Oracle.honest ctx z h) queries)
      parts
  in
  t_compute +. t_crypto +. t_answer

(* Single-domain prover batch, returning the three phase times. *)
let prover_batch_phases cfg (comp : Argsys.Argument.computation) (qap : Qapb.t) queries req_z req_h
    inputs =
  ignore cfg;
  Qapb.prewarm qap;
  let num_z = comp.Argsys.Argument.r1cs.Constr.R1cs.num_z in
  let ctx = comp.Argsys.Argument.r1cs.Constr.R1cs.field in
  let parts, t_compute =
    Dompool.Pool.timed_map ~domains:1
      (fun x ->
        let w = comp.Argsys.Argument.solve x in
        let h = Qapb.prover_h qap w in
        (Array.sub w 1 num_z, h))
      inputs
  in
  let _, t_crypto =
    Dompool.Pool.timed_map ~domains:1
      (fun (z, h) ->
        (Commitment.Commit.prover_commit req_z z, Commitment.Commit.prover_commit req_h h))
      parts
  in
  let _, t_answer =
    Dompool.Pool.timed_map ~domains:1
      (fun (z, h) -> Pcp.Pcp_zaatar.answer (Pcp.Oracle.honest ctx z h) queries)
      parts
  in
  (t_compute, t_crypto, t_answer)

let run_fig6 cfg =
  banner "Figure 6: speedups from parallelizing and distributing the prover";
  Printf.printf
    "(paper: near-linear speedup with more hardware; GPU crypto offload ~20%%.\n\
    \ Substitution: cores = domains, GPUs = extra domains for the crypto phase.)\n\n";
  let cores = Dompool.Pool.num_cores () in
  Printf.printf "host has %d available cores\n\n" cores;
  let beta = if cfg.quick then 4 else 8 in
  let apps = [ Apps.Registry.pam ~scale:cfg.scale; Apps.Registry.apsp ~scale:cfg.scale ] in
  List.iter
    (fun (app : Apps.App_def.t) ->
      let ctx = ctx_of cfg in
      let prg = Chacha.Prg.create ~seed:("fig6 " ^ app.Apps.App_def.name) () in
      let compiled = Apps.Glue.compile ctx app in
      let comp = Apps.Glue.computation_of compiled in
      let qap = Qapb.of_r1cs ~backend:cfg.qap_backend comp.Argsys.Argument.r1cs in
      let queries = Pcp.Pcp_zaatar.gen_queries ~params:(protocol cfg) qap prg in
      let grp = Zcrypto.Group.cached ~field_order:cfg.field ~p_bits:cfg.p_bits () in
      let num_z = comp.Argsys.Argument.r1cs.Constr.R1cs.num_z in
      let req_z, _ = Commitment.Commit.commit_request ctx grp prg ~len:num_z in
      let req_h, _ = Commitment.Commit.commit_request ctx grp prg ~len:(Qapb.h_len qap) in
      let inputs =
        Array.init beta (fun _ -> Apps.Glue.field_inputs ctx (app.Apps.App_def.gen_inputs prg))
      in
      let wall ~c ~g =
        prover_batch_wall cfg ~compute_domains:c ~crypto_domains:(c + g) comp qap queries req_z
          req_h inputs
      in
      (* Single-domain run with per-phase times, for the ideal projections
         (the paper's own "(ideal)" bars). *)
      let t_compute, t_crypto, t_answer = prover_batch_phases cfg comp qap queries req_z req_h inputs in
      let base = t_compute +. t_crypto +. t_answer in
      Printf.printf "%s (batch = %d, 1C latency %s: compute %s, crypto %s, answer %s):\n"
        app.Apps.App_def.display beta (fmt_s base) (fmt_s t_compute) (fmt_s t_crypto) (fmt_s t_answer);
      Printf.printf "  %-12s %12s %9s\n" "config" "latency" "speedup";
      List.iter
        (fun (label, c, g) ->
          if c = 1 || (cores > 1 && c + g <= cores) then begin
            let t = if c = 1 && g = 0 then base else wall ~c ~g in
            Printf.printf "  %-12s %12s %8.2fx\n%!" label (fmt_s t) (base /. t)
          end
          else begin
            (* Ideal projection: each phase parallelizes over min(domains,
               batch) independent instances. *)
            let ideal =
              (t_compute /. float_of_int (min c beta))
              +. (t_crypto /. float_of_int (min (c + g) beta))
              +. (t_answer /. float_of_int (min c beta))
            in
            Printf.printf "  %-12s %12s %8.2fx\n%!" (label ^ " (ideal)") (fmt_s ideal) (base /. ideal)
          end)
        [ ("1C", 1, 0); ("2C", 2, 0); ("4C", 4, 0); ("2C+2G", 2, 2); ("4C+4G", 4, 4); ("8C+8G", 8, 8) ];
      if cores = 1 then
        Printf.printf
          "  (single-core host: multi-domain rows are ideal projections from the\n\
          \   measured phase times; the domain pool itself is exercised by the tests)\n")
    apps

(* ------------------------------------------------------------------ *)
(* F7: break-even batch sizes                                          *)
(* ------------------------------------------------------------------ *)

let run_fig7 cfg =
  banner "Figure 7: break-even batch sizes (Zaatar measured+model, Ginger modeled)";
  Printf.printf
    "(paper: Zaatar's break-even batch sizes are several orders of magnitude\n\
    \ smaller than Ginger's)\n\n";
  let p = measured_params cfg in
  Printf.printf "%-28s %16s %16s %14s\n" "computation" "Zaatar (model)" "Ginger (model)" "improvement";
  List.iter
    (fun app ->
      let r = bench_run cfg app in
      let s = sizes_of_run r in
      let pz = Costmodel.Model.zaatar_breakeven p (model_protocol cfg) s in
      let pg = Costmodel.Model.ginger_breakeven p (model_protocol cfg) s in
      let show = function None -> "never" | Some b -> Printf.sprintf "%d" b in
      let improvement =
        match (pz, pg) with
        | Some bz, Some bg -> Printf.sprintf "%8.1f orders" (log10 (float_of_int bg /. float_of_int bz))
        | _ -> "-"
      in
      Printf.printf "%-28s %16s %16s %14s\n%!" app.Apps.App_def.display (show pz) (show pg) improvement)
    (Apps.Registry.suite ~scale:cfg.scale ());
  Printf.printf
    "\nNote: with native-int local execution and toy input sizes, verification\n\
     rarely breaks even at all (the paper's baseline executes multiprecision\n\
     GMP programs at m=20..300). The table below therefore re-evaluates the\n\
     model at the PAPER'S input sizes, deriving |Z|, |C|, K2 from Figure 9's\n\
     closed forms and taking the paper's measured local times — with OUR\n\
     measured operation costs. This is the shape Figure 7 reports.\n\n";
  let paper_cases =
    (* name, |Z|g, |C|g, |Z|z, |C|z, |x|, |y|, local seconds (paper Fig. 5/9) *)
    let pam =
      let m = 20 and d = 128 in
      ( "PAM clustering (m=20 d=128)", 20 * m * m * d, 20 * m * m * d, 60 * m * m * d,
        60 * m * m * d, m * d, m + 2, 51.6e-3 )
    in
    let bisect =
      let m = 256 and l = 8 in
      ( "root finding (m=256 L=8)", 2 * m * l, 2 * m * l, m * m * l, m * m * l,
        (m * m) + (2 * m) + 1, 1, 0.8 )
    in
    let apsp =
      let m = 25 in
      ( "all-pairs s.p. (m=25)", 84 * m * m * m, 89 * m * m * m, 84 * m * m * m, 89 * m * m * m,
        m * m, m * m, 8.1e-3 )
    in
    let fk =
      let m = 100 and n = 13 in
      ("Fannkuch (m=100)", 2200 * m, 2200 * m, 2200 * m, 2200 * m, m * n, m + 1, 0.8e-3)
    in
    let lcs =
      let m = 300 in
      ("LCS (m=300)", 43 * m * m, 43 * m * m, 43 * m * m, 43 * m * m, 2 * m, 1, 1.4e-3)
    in
    [ pam; bisect; apsp; fk; lcs ]
  in
  let print_paper_table params protocol_p label =
    Printf.printf "\n-- %s --\n" label;
    Printf.printf "%-28s %16s %16s %14s\n" "computation (paper size)" "Zaatar" "Ginger" "improvement";
    List.iter
      (fun (name, zg, cg, zz, cz, n_x, n_y, t_local) ->
        let s =
          {
            Costmodel.Model.z_ginger = zg;
            c_ginger = cg;
            z_zaatar = zz;
            c_zaatar = cz;
            k = 3 * cg;
            k2 = zz - zg;
            n_x;
            n_y;
            t_local;
          }
        in
        let pz = Costmodel.Model.zaatar_breakeven params protocol_p s in
        let pg = Costmodel.Model.ginger_breakeven params protocol_p s in
        let show = function None -> "never" | Some b -> Printf.sprintf "%.1e" (float_of_int b) in
        let improvement =
          match (pz, pg) with
          | Some bz, Some bg ->
            Printf.sprintf "%8.1f orders" (log10 (float_of_int bg /. float_of_int bz))
          | _ -> "-"
        in
        Printf.printf "%-28s %16s %16s %14s\n%!" name (show pz) (show pg) improvement)
      paper_cases
  in
  print_paper_table p (model_protocol cfg) "with OUR measured operation costs";
  (* The paper's own §5.1 microbenchmark constants, at its rho = 8,
     rho_lin = 20. *)
  let paper_constants =
    {
      Costmodel.Params.e = 65e-6;
      d = 170e-6;
      h = 91e-6;
      f_lazy = 68e-9;
      f = 210e-9;
      f_div = 2e-6;
      c = 160e-9;
      field_bits = 128;
      group_bits = 1024;
    }
  in
  print_paper_table paper_constants { Costmodel.Model.rho = 8; rho_lin = 20 }
    "with the PAPER'S published operation costs (GMP + 1024-bit ElGamal)"

(* ------------------------------------------------------------------ *)
(* F8: scalability sweep                                               *)
(* ------------------------------------------------------------------ *)

let run_fig8 cfg =
  banner "Figure 8: prover running time, three input sizes per computation";
  Printf.printf "(paper: Zaatar's prover scales linearly; Ginger's quadratically)\n\n";
  List.iter
    (fun (label, sized_apps) ->
      Printf.printf "%s:\n" label;
      Printf.printf "  %-16s %10s %12s %14s %12s\n" "size" "|C|zaatar" "Zaatar" "Ginger (est.)" "|u|ginger";
      List.iter
        (fun app ->
          let r = bench_run cfg app in
          let ginger = ginger_prover_estimate cfg r in
          Printf.printf "  %-16s %10d %12s %14s %12d\n%!" app.Apps.App_def.params_desc
            r.stats.Zlang.Compile.c_zaatar (fmt_s r.prover_per_instance) (fmt_s ginger)
            r.stats.Zlang.Compile.u_ginger)
        sized_apps;
      print_newline ())
    (Apps.Registry.sweep ~scale:cfg.scale ())

(* ------------------------------------------------------------------ *)
(* F9: computation encodings                                           *)
(* ------------------------------------------------------------------ *)

let run_fig9 cfg =
  banner "Figure 9: computation encodings and proof-vector sizes";
  Printf.printf "%-28s %-12s %9s %9s %9s %9s %12s %12s %8s\n" "computation" "O(.)" "|Z|ging"
    "|Z|zaat" "|C|ging" "|C|zaat" "|u|ginger" "|u|zaatar" "K2";
  List.iter
    (fun (_, sized_apps) ->
      List.iter
        (fun (app : Apps.App_def.t) ->
          let s = compiled_stats cfg app in
          Printf.printf "%-16s %-11s %-12s %9d %9d %9d %9d %12d %12d %8d\n%!"
            app.Apps.App_def.display app.Apps.App_def.params_desc app.Apps.App_def.big_o
            s.Zlang.Compile.z_ginger s.Zlang.Compile.z_zaatar s.Zlang.Compile.c_ginger
            s.Zlang.Compile.c_zaatar s.Zlang.Compile.u_ginger s.Zlang.Compile.u_zaatar
            s.Zlang.Compile.k2)
        sized_apps)
    (Apps.Registry.sweep ~scale:cfg.scale ());
  Printf.printf "\n(for all computations, Zaatar's proof vector is far shorter than Ginger's;\n\
                 bisection has the densest K2, its Ginger encoding being unusually concise)\n"

(* ------------------------------------------------------------------ *)
(* Baseline validation: Ginger measured end-to-end at tiny scale        *)
(* ------------------------------------------------------------------ *)

(* The paper can only *estimate* Ginger at evaluation sizes. At tiny sizes
   we can actually run it (quadratic proof vector and all), giving a
   measured-vs-measured Zaatar/Ginger point and an empirical check of the
   Ginger column of Figure 3. *)
let run_baseline cfg =
  banner "Baseline validation: Ginger argument measured end-to-end (tiny sizes)";
  let ctx = ctx_of cfg in
  (* Chosen so that the witness holds near-full-width field values (the
     homomorphic-op cost is exponent-size dependent) and so that Ginger
     really has unbound variables: iterated squaring forces
     materialization. *)
  let sources =
    [
      ("iterated squaring (8 lanes)",
       "computation qmap(input int24 x[8], output int64 y) {\n\
        \  var int64 s = 0;\n\
        \  for i in 0..8 {\n\
        \    var int64 t = x[i] + 1;\n\
        \    t = t * t;\n\
        \    t = t * t;\n\
        \    s = s + t;\n\
        \  }\n\
        \  y = s;\n\
        }",
       Array.init 8 (fun i -> (1 lsl 19) + (7919 * (i + 1))));
      ("polynomial eval (deg 8, Horner)",
       "computation horner(input int12 c[9], input int12 x, output int64 y) {\n\
        \  var int64 acc = 0;\n\
        \  for i in 0..9 { acc = acc * x + c[i]; }\n\
        \  y = acc;\n\
        }",
       Array.append (Array.init 9 (fun i -> 1000 + (17 * i))) [| 2019 |]);
    ]
  in
  let p = measured_params cfg in
  Printf.printf "%-32s %12s %14s %14s %12s\n" "computation" "|u|ginger" "Ginger meas."
    "Ginger model" "Zaatar meas.";
  List.iter
    (fun (label, src, raw_inputs) ->
      let compiled = Zlang.Compile.compile ~ctx src in
      let stats = Zlang.Compile.stats compiled in
      let prg = Chacha.Prg.create ~seed:("baseline " ^ label) () in
      let x = Array.map (Fp.of_int ctx) raw_inputs in
      (* Ginger, measured. *)
      let gcomp =
        {
          Argsys.Argument_ginger.ginger = compiled.Zlang.Compile.ginger;
          num_inputs = compiled.Zlang.Compile.num_inputs;
          num_outputs = compiled.Zlang.Compile.num_outputs;
          solve = compiled.Zlang.Compile.solve_ginger;
        }
      in
      let gconfig =
        {
          Argsys.Argument_ginger.params = { Pcp.Pcp_ginger.rho = cfg.rho; rho_lin = cfg.rho_lin };
          p_bits = cfg.p_bits;
          cheat = false;
          domains = cfg.domains;
        }
      in
      let gres = Argsys.Argument_ginger.run_instance ~config:gconfig gcomp ~prg ~x in
      if not gres.Argsys.Argument_ginger.accepted then failwith (label ^ ": ginger run rejected");
      let ginger_measured = Argsys.Metrics.total gres.Argsys.Argument_ginger.prover in
      (* Ginger, modeled at the same sizes. *)
      let sizes =
        Costmodel.Model.sizes_of_stats stats ~n_x:compiled.Zlang.Compile.num_inputs
          ~n_y:compiled.Zlang.Compile.num_outputs ~t_local:1e-6
      in
      let ginger_model = (Costmodel.Model.ginger_prover p (model_protocol cfg) sizes).Costmodel.Model.total_p in
      (* Zaatar, measured on the same computation. *)
      let zcomp = Apps.Glue.computation_of compiled in
      let zconfig =
        {
          Argsys.Argument.params = protocol cfg;
          p_bits = cfg.p_bits;
          strategy = Argsys.Argument.Honest;
          domains = cfg.domains;
          qap_backend = cfg.qap_backend;
        }
      in
      let zres = Argsys.Argument.run_batch ~config:zconfig zcomp ~prg ~inputs:[| x |] in
      if not (Argsys.Argument.all_accepted zres) then failwith (label ^ ": zaatar run rejected");
      let zaatar_measured = Argsys.Metrics.total zres.Argsys.Argument.prover in
      Printf.printf "%-32s %12d %14s %14s %12s\n%!" label stats.Zlang.Compile.u_ginger
        (fmt_s ginger_measured) (fmt_s ginger_model) (fmt_s zaatar_measured))
    sources;
  Printf.printf
    "\n(the measured Ginger cost lands within a small factor of the Figure 3\n\
     Ginger model at identical sizes — the empirical anchor for every\n\
     estimated comparison; even at |Z| of a few dozen the quadratic proof\n\
     vector already puts Ginger a few-fold behind Zaatar, a gap that grows\n\
     linearly in |Z| from here)\n"

(* ------------------------------------------------------------------ *)
(* Soundness (Appendix A.2)                                            *)
(* ------------------------------------------------------------------ *)

let run_soundness cfg =
  banner "Appendix A.2: soundness parameters and empirical rejection rates";
  Printf.printf "paper parameters: delta = 0.0294, rho_lin = 20, kappa = 0.177, rho = 8\n";
  Printf.printf "soundness error bound: kappa^rho = 0.177^8 = %.2e  (< 9.6e-7)\n\n" (0.177 ** 8.0);
  let trials = if cfg.quick then 50 else 200 in
  let ctx = ctx_of cfg in
  (* A deliberately small computation: the per-repetition rejection
     probability of the algebraic tests is 1 - O(|C|/|F|) regardless of
     circuit size, and a tiny circuit lets us afford many independent
     protocol runs. Single-repetition PCP so that the *per-repetition*
     rate is what is measured. *)
  let compiled =
    Zlang.Compile.compile ~ctx
      "computation sq3(input int32 x, input int32 w, output int32 y) { y = x*x + w*w + 3; }"
  in
  let comp = Apps.Glue.computation_of compiled in
  let app_inputs prg = [| Chacha.Prg.int_below prg 10000; Chacha.Prg.int_below prg 10000 |] in
  let strategies =
    [
      (Argsys.Argument.Wrong_output, "wrong output");
      (Argsys.Argument.Corrupt_witness, "corrupt witness");
      (Argsys.Argument.Corrupt_h, "corrupt H");
      (Argsys.Argument.Equivocate, "equivocation");
      (Argsys.Argument.Nonlinear, "non-linear oracle");
    ]
  in
  Printf.printf "empirical rejection at rho = 1, rho_lin = 2 (%d trials each):\n" trials;
  List.iter
    (fun (strategy, label) ->
      let rejected = ref 0 in
      for i = 1 to trials do
        let prg = Chacha.Prg.create ~seed:(Printf.sprintf "sound %s %d" label i) () in
        let inputs = [| Apps.Glue.field_inputs ctx (app_inputs prg) |] in
        let config =
          { Argsys.Argument.params = Pcp.Pcp_zaatar.test_params; p_bits = 192; strategy; domains = 1; qap_backend = cfg.qap_backend }
        in
        let r = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
        if Argsys.Argument.none_accepted r then incr rejected
      done;
      Printf.printf "  %-22s %4d/%d rejected (%.1f%%)\n%!" label !rejected trials
        (100.0 *. float_of_int !rejected /. float_of_int trials))
    strategies;
  (* Honest completeness at the same parameters. *)
  let accepted = ref 0 in
  let honest_trials = max 10 (trials / 10) in
  for i = 1 to honest_trials do
    let prg = Chacha.Prg.create ~seed:(Printf.sprintf "sound honest %d" i) () in
    let inputs = [| Apps.Glue.field_inputs ctx (app_inputs prg) |] in
    let config =
      {
        Argsys.Argument.params = Pcp.Pcp_zaatar.test_params;
        p_bits = 192;
        strategy = Argsys.Argument.Honest;
        domains = 1;
        qap_backend = cfg.qap_backend;
      }
    in
    let r = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
    if Argsys.Argument.all_accepted r then incr accepted
  done;
  Printf.printf "  %-22s %4d/%d accepted (completeness must be 100%%)\n" "honest prover" !accepted honest_trials

(* ------------------------------------------------------------------ *)
(* NTT vs Lagrange: the prover hot path head to head                   *)
(* ------------------------------------------------------------------ *)

(* The tentpole experiment: run every benchmark app end to end under both
   QAP backends and compare (1) prover_h wall time via the split span
   names (qap_ntt.prover_h vs qap.prover_h — prover_h_forced emits its
   own spans and cannot pollute these), (2) construct_u minor-word
   allocation via the ledger's per-phase GC deltas, (3) verdicts, which
   must agree exactly, and (4) the packed NTT H against the boxed
   subproduct-tree reference over the same domain, which must match
   bit for bit. Correctness disagreement exits 1; the speed and
   allocation ratios land in BENCH_run.json under "ntt_vs_lagrange". *)
let ntt_section : Zobs.Json.t ref = ref Zobs.Json.Null

let run_ntt_vs_lagrange cfg =
  banner "NTT vs Lagrange: prover_h wall, construct_u allocation, verdict agreement";
  let ctx = ctx_of cfg in
  let ok = ref true in
  let span_total name =
    match List.assoc_opt name (Zobs.Span.totals ()) with
    | Some st -> st.Zobs.Span.total
    | None -> 0.0
  in
  let apps =
    let l = Apps.Registry.suite ~scale:cfg.scale () in
    if cfg.quick then [ List.hd l ] else l
  in
  if not (Qapb.ntt_viable ctx 2) then begin
    Printf.printf "field has no 2-adic structure: NTT arm not viable, skipping\n";
    ntt_section := Zobs.Json.Obj [ ("skipped", Zobs.Json.Bool true) ]
  end
  else begin
    let rows =
      List.map
        (fun (app : Apps.App_def.t) ->
          let iprg = Chacha.Prg.create ~seed:("nvl inputs " ^ app.Apps.App_def.name) () in
          let compiled = Apps.Glue.compile ctx app in
          let comp = Apps.Glue.computation_of compiled in
          let inputs =
            Array.init cfg.batch (fun _ ->
                Apps.Glue.field_inputs ctx (app.Apps.App_def.gen_inputs iprg))
          in
          let arm backend span_name =
            (* Fresh ledger so the construct_u GC delta belongs to this
               arm alone; same protocol seed so both arms face identical
               queries. *)
            Zobs.Ledger.reset ();
            let s0 = span_total span_name in
            let config =
              {
                Argsys.Argument.params = protocol cfg;
                p_bits = cfg.p_bits;
                strategy = Argsys.Argument.Honest;
                domains = cfg.domains;
                qap_backend = backend;
              }
            in
            let prg = Chacha.Prg.create ~seed:("nvl run " ^ app.Apps.App_def.name) () in
            let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
            let wall = span_total span_name -. s0 in
            let minor =
              match Zobs.Ledger.phase "construct_u" with
              | Some ph -> ph.Zobs.Ledger.gc.Zobs.Span.minor_words
              | None -> 0.0
            in
            let verdicts =
              Array.map
                (fun (i : Argsys.Argument.instance_result) -> i.Argsys.Argument.accepted)
                result.Argsys.Argument.instances
            in
            (verdicts, wall, minor)
          in
          let v_ntt, w_ntt, m_ntt = arm Qapb.Ntt "qap_ntt.prover_h" in
          let v_lag, w_lag, m_lag = arm Qapb.Lagrange "qap.prover_h" in
          let verdicts_agree = v_ntt = v_lag in
          let all_accepted = Array.for_all Fun.id v_ntt in
          (* Differential H: packed fast path vs boxed subproduct-tree
             reference over the same roots-of-unity domain. *)
          let h_ok =
            let qntt = Qap_ntt.of_r1cs comp.Argsys.Argument.r1cs in
            let w = comp.Argsys.Argument.solve inputs.(0) in
            let h = Qap_ntt.prover_h qntt w in
            let hr = Qap_ntt.prover_h_reference qntt w in
            Array.length h = Array.length hr && Array.for_all2 Fp.equal h hr
          in
          if not (verdicts_agree && all_accepted && h_ok) then ok := false;
          let wall_ratio = w_lag /. w_ntt and alloc_ratio = m_lag /. Float.max 1.0 m_ntt in
          Printf.printf
            "%-28s prover_h %s -> %s (%5.1fx)  construct_u minor words %12.0f -> %10.0f (%5.1fx)  %s%s\n%!"
            app.Apps.App_def.display (fmt_s w_lag) (fmt_s w_ntt) wall_ratio m_lag m_ntt
            alloc_ratio
            (if verdicts_agree && all_accepted then "verdicts ok" else "VERDICTS DIVERGE")
            (if h_ok then ", H ok" else ", H MISMATCH");
          let num x = Zobs.Json.Num x in
          ( app.Apps.App_def.name,
            Zobs.Json.Obj
              [
                ("lagrange", Zobs.Json.Obj [ ("prover_h_s", num w_lag); ("construct_u_minor_words", num m_lag) ]);
                ("ntt", Zobs.Json.Obj [ ("prover_h_s", num w_ntt); ("construct_u_minor_words", num m_ntt) ]);
                ("wall_ratio", num wall_ratio);
                ("alloc_ratio", num alloc_ratio);
                ("verdicts_agree", Zobs.Json.Bool (verdicts_agree && all_accepted));
                ("h_matches_reference", Zobs.Json.Bool h_ok);
              ] ))
        apps
    in
    ntt_section := Zobs.Json.Obj rows;
    if not !ok then begin
      Printf.eprintf "ntt-vs-lagrange: backend disagreement (see above)\n";
      exit 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md)                  *)
(* ------------------------------------------------------------------ *)

let rec run_ablation cfg =
  banner "Ablations: substrate algorithm choices";
  let ctx = ctx_of cfg in
  let prg = Chacha.Prg.create ~seed:"ablation" () in
  let reps = if cfg.quick then 3 else 10 in
  let bench label f =
    let _, t = time_thunk (fun () -> for _ = 1 to reps do ignore (f ()) done) in
    Printf.printf "  %-46s %10s\n%!" label (fmt_s (t /. float_of_int reps))
  in
  Printf.printf "polynomial multiplication (degree 1023, 127-bit field):\n";
  let a = Polylib.Poly.random ctx prg 1023 and b = Polylib.Poly.random ctx prg 1023 in
  bench "schoolbook" (fun () -> Polylib.Poly.mul_schoolbook ctx a b);
  bench "karatsuba (production path)" (fun () -> Polylib.Poly.mul ctx a b);
  let fr = Fp.create Primes.bls12_381_fr in
  let ntt = Polylib.Ntt.create fr in
  let a' = Polylib.Poly.random fr prg 1023 and b' = Polylib.Poly.random fr prg 1023 in
  bench "karatsuba (255-bit NTT-friendly field)" (fun () -> Polylib.Poly.mul fr a' b');
  bench "NTT (roots of unity, modern sigma choice)" (fun () -> Polylib.Ntt.mul ntt a' b');
  Printf.printf "\npolynomial division (degree 2046 by degree 1023):\n";
  let big = Polylib.Poly.mul ctx a b in
  bench "schoolbook long division" (fun () -> Polylib.Poly.div_rem ctx big a);
  bench "Newton iteration (production path)" (fun () -> Polylib.Poly.div_rem_fast ctx big a);
  Printf.printf "\nfield inversion (127-bit field):\n";
  let xs = Array.init 256 (fun _ -> Chacha.Prg.field_nonzero ctx prg) in
  bench "extended Euclid x256 (production path)" (fun () -> Array.map (Fp.inv ctx) xs);
  bench "Fermat exponentiation x256" (fun () -> Array.map (Fp.inv_fermat ctx) xs);
  bench "batch inversion x256 (query weights path)" (fun () -> Fp.batch_inv ctx xs);
  Printf.printf "\ngroup exponentiation (%d-bit modulus, 127-bit exponents):\n" cfg.p_bits;
  let grp = Zcrypto.Group.cached ~field_order:cfg.field ~p_bits:cfg.p_bits () in
  let exps = Array.init 16 (fun _ -> Fp.to_nat (Chacha.Prg.field ctx prg)) in
  bench "windowed Montgomery ladder (generic path)" (fun () ->
      Array.map (Zcrypto.Group.pow grp grp.Zcrypto.Group.g) exps);
  bench "Barrett ladder" (fun () ->
      Array.map (Zcrypto.Group.pow_barrett grp grp.Zcrypto.Group.g) exps);
  bench "fixed-base window table (commit path)" (fun () ->
      Array.map (Zcrypto.Group.fb_pow grp (Zcrypto.Group.fb_g grp)) exps);
  let bases = Array.map (Zcrypto.Group.pow grp grp.Zcrypto.Group.g) exps in
  bench "Pippenger multi-exp, 16 terms (hom_dot path)" (fun () ->
      Zcrypto.Group.multi_pow grp bases exps);
  Printf.printf "\nprover H(t) pipeline at |C| = 511 (interpolate, multiply, divide):\n";
  (* Over the NTT-friendly field so the two sigma_j choices are compared
     like for like: the paper's arithmetic progression + subproduct trees
     vs. roots of unity + NTT. *)
  let sys, w = random_r1cs_for_h fr 511 in
  let qap = Qap.of_r1cs sys in
  ignore (Lazy.force qap.Qap.divisor);
  ignore (Lazy.force qap.Qap.interp);
  bench "sigma_j = j, subproduct trees (paper, §A.3)" (fun () -> Qap.prover_h qap w);
  let qntt = Qap_ntt.of_r1cs sys in
  bench "sigma_j = roots of unity, NTT (modern)" (fun () -> Qap_ntt.prover_h qntt w);
  (* Nat.karatsuba_threshold sweep: the cutover only matters above field
     width (127-bit elements are 5 limbs), i.e. for the group arithmetic,
     so sweep at commitment-group widths. The tuned default is recorded
     in EXPERIMENTS.md and set in lib/fieldlib/nat.ml. *)
  Printf.printf "\nNat.karatsuba_threshold sweep (Nat.mul x1000; 31-bit limbs):\n";
  let rand_nat limbs =
    Nat.of_limbs
      (Array.init limbs (fun i ->
           let v = Chacha.Prg.int_below prg (1 lsl 30) in
           if i = limbs - 1 then v lor (1 lsl 29) else v))
  in
  let saved = Nat.get_karatsuba_threshold () in
  List.iter
    (fun (label, limbs) ->
      let x = rand_nat limbs and y = rand_nat limbs in
      List.iter
        (fun t ->
          Nat.set_karatsuba_threshold t;
          bench
            (Printf.sprintf "Nat.mul %s, threshold %d" label t)
            (fun () ->
              for _ = 1 to 1000 do
                ignore (Nat.mul x y)
              done))
        [ 8; 16; 24; 32; 48; 64 ])
    [ ("512-bit (17 limbs)", 17); ("1024-bit (34 limbs)", 34); ("2048-bit (67 limbs)", 67) ];
  Nat.set_karatsuba_threshold saved

and random_r1cs_for_h ctx nc =
  let prg = Chacha.Prg.create ~seed:"hbench" () in
  let n = nc in
  let w = Array.init (n + 1) (fun i -> if i = 0 then Fp.one else Chacha.Prg.field ctx prg) in
  let constraints =
    Array.init nc (fun _ ->
        let rand_row () =
          let t = ref Constr.Lincomb.zero in
          for _ = 0 to 2 do
            t :=
              Constr.Lincomb.add_term ctx !t
                (Chacha.Prg.int_below prg (n + 1))
                (Chacha.Prg.field ctx prg)
          done;
          !t
        in
        let a = rand_row () and b = rand_row () and c0 = rand_row () in
        let target = Fp.mul ctx (Constr.Lincomb.eval ctx a w) (Constr.Lincomb.eval ctx b w) in
        let fix = Fp.sub ctx target (Constr.Lincomb.eval ctx c0 w) in
        { Constr.R1cs.a; b; c = Constr.Lincomb.add_term ctx c0 0 fix })
  in
  ({ Constr.R1cs.field = ctx; num_vars = n; num_z = n / 2; constraints }, w)

(* ------------------------------------------------------------------ *)
(* Multiexp: exponentiation-kernel ablation (DESIGN.md §8)             *)
(* ------------------------------------------------------------------ *)

(* Filled by run_multiexp and folded into BENCH_run.json under "multiexp".
   scripts/ci.sh runs this experiment in smoke mode and fails the build if
   any kernel result diverges from the naive ladder. *)
let multiexp_section : Zobs.Json.t ref = ref Zobs.Json.Null

let run_multiexp cfg =
  banner "Multiexp ablation: naive ladder vs fixed-base window vs Pippenger";
  let open Zcrypto in
  let ctx = ctx_of cfg in
  let prg = Chacha.Prg.create ~seed:"multiexp" () in
  let agree = ref true in
  let check label ok =
    if not ok then begin
      agree := false;
      Printf.printf "  DIVERGENCE: %s\n%!" label
    end
  in
  let num x = Zobs.Json.Num x and int n = Zobs.Json.Num (float_of_int n) in
  (* -- single fixed base: g^e for many e, at the configured group size -- *)
  let grp = Group.cached ~field_order:cfg.field ~p_bits:cfg.p_bits () in
  let fb_lengths = if cfg.quick then [ 32; 128 ] else [ 64; 256; 1024 ] in
  let _, t_table = time_thunk (fun () -> ignore (Group.fb_g grp)) in
  Printf.printf "fixed-base g-table build (%d-bit group): %s (one-time, cached on the group)\n"
    cfg.p_bits (fmt_s t_table);
  Printf.printf "%-10s %12s %14s %9s\n" "exps" "naive" "fixed-base" "speedup";
  let fixed_rows =
    List.map
      (fun len ->
        let exps = Array.init len (fun _ -> Fp.to_nat (Chacha.Prg.field ctx prg)) in
        let naive, t_naive =
          time_thunk (fun () -> Array.map (Group.pow grp grp.Group.g) exps)
        in
        let fixed, t_fixed =
          time_thunk (fun () -> Array.map (Group.fb_pow grp (Group.fb_g grp)) exps)
        in
        check (Printf.sprintf "fixed-base len=%d" len)
          (Array.for_all2 Group.equal naive fixed);
        Printf.printf "%-10d %12s %14s %8.2fx\n%!" len (fmt_s t_naive) (fmt_s t_fixed)
          (t_naive /. t_fixed);
        Zobs.Json.Obj
          [ ("len", int len); ("naive_s", num t_naive); ("fixed_base_s", num t_fixed) ])
      fb_lengths
  in
  (* -- Pippenger multi-exponentiation over random bases -- *)
  Printf.printf "\n%-10s %12s %14s %9s\n" "terms" "naive" "Pippenger" "speedup";
  let naive_multi bases exps =
    let acc = ref Group.one in
    Array.iteri (fun i b -> acc := Group.mul grp !acc (Group.pow grp b exps.(i))) bases;
    !acc
  in
  let pip_rows =
    List.map
      (fun len ->
        let bases =
          Array.init len (fun _ -> Group.fb_pow grp (Group.fb_g grp) (Fp.to_nat (Chacha.Prg.field ctx prg)))
        in
        let exps = Array.init len (fun _ -> Fp.to_nat (Chacha.Prg.field ctx prg)) in
        let naive, t_naive = time_thunk (fun () -> naive_multi bases exps) in
        let pip, t_pip = time_thunk (fun () -> Group.multi_pow grp bases exps) in
        check (Printf.sprintf "pippenger len=%d" len) (Group.equal naive pip);
        Printf.printf "%-10d %12s %14s %8.2fx\n%!" len (fmt_s t_naive) (fmt_s t_pip)
          (t_naive /. t_pip);
        Zobs.Json.Obj [ ("len", int len); ("naive_s", num t_naive); ("pippenger_s", num t_pip) ])
      fb_lengths
  in
  (* -- the commit phase end to end, at the paper's 1024-bit keys --
     Kernel arm: commit_request (fixed-base tables + parallel Enc(r)) and
     prover_commit (Pippenger hom_dot). Naive arm: the pre-kernel path —
     generic ladders per encryption, hom_scale/hom_add fold per commitment
     — replayed from the same transcript so the ciphertexts must match
     bit for bit. *)
  let len = if cfg.quick then 96 else 512 in
  let domains = min (Dompool.Pool.num_cores ()) 8 in
  let grp1024 = Group.cached ~field_order:cfg.field ~p_bits:1024 () in
  Printf.printf "\ncommit phase at 1024-bit keys, |r| = %d (Enc(r) over %d domain(s)):\n" len domains;
  let (req, _vs), t_enc_kernel =
    time_thunk (fun () ->
        Commitment.Commit.commit_request ~domains ctx grp1024
          (Chacha.Prg.create ~seed:"multiexp commit" ())
          ~len)
  in
  (* Replay the identical transcript for the naive arm. *)
  let replay = Chacha.Prg.create ~seed:"multiexp commit" () in
  let _, pk = Elgamal.keygen grp1024 replay in
  let r = Array.init len (fun _ -> Chacha.Prg.field ctx replay) in
  let ks = Array.init len (fun _ -> Fp.to_nat (Chacha.Prg.field_nonzero grp1024.Group.modq replay)) in
  let enc_naive i =
    let m = r.(i) and k = ks.(i) in
    let gm = Group.pow grp1024 grp1024.Group.g (Fp.to_nat m) in
    {
      Elgamal.c1 = Group.pow grp1024 grp1024.Group.g k;
      c2 = Group.mul grp1024 gm (Group.pow grp1024 pk.Elgamal.y k);
    }
  in
  let enc_r_naive, t_enc_naive = time_thunk (fun () -> Array.init len enc_naive) in
  check "commit Enc(r)"
    (Array.for_all2
       (fun (a : Elgamal.ciphertext) (b : Elgamal.ciphertext) ->
         Group.equal a.Elgamal.c1 b.Elgamal.c1 && Group.equal a.Elgamal.c2 b.Elgamal.c2)
       req.Commitment.Commit.enc_r enc_r_naive);
  let u =
    Array.init len (fun i ->
        if i mod 7 = 0 then Fp.zero
        else if i mod 5 = 0 then Fp.one
        else Chacha.Prg.field ctx prg)
  in
  let com_kernel, t_com_kernel = time_thunk (fun () -> Commitment.Commit.prover_commit req u) in
  let com_naive, t_com_naive =
    time_thunk (fun () -> Elgamal.hom_dot_naive req.Commitment.Commit.pk req.Commitment.Commit.enc_r u)
  in
  check "prover_commit"
    (Group.equal com_kernel.Elgamal.c1 com_naive.Elgamal.c1
    && Group.equal com_kernel.Elgamal.c2 com_naive.Elgamal.c2);
  let t_naive = t_enc_naive +. t_com_naive and t_kernel = t_enc_kernel +. t_com_kernel in
  Printf.printf "  %-24s %12s %12s %9s\n" "" "naive" "kernels" "speedup";
  Printf.printf "  %-24s %12s %12s %8.2fx\n" "Enc(r)" (fmt_s t_enc_naive) (fmt_s t_enc_kernel)
    (t_enc_naive /. t_enc_kernel);
  Printf.printf "  %-24s %12s %12s %8.2fx\n" "prover_commit" (fmt_s t_com_naive)
    (fmt_s t_com_kernel) (t_com_naive /. t_com_kernel);
  Printf.printf "  %-24s %12s %12s %8.2fx\n%!" "commit phase total" (fmt_s t_naive)
    (fmt_s t_kernel) (t_naive /. t_kernel);
  multiexp_section :=
    Zobs.Json.Obj
      [
        ("p_bits", int cfg.p_bits);
        ("fixed_base", Zobs.Json.Arr fixed_rows);
        ("pippenger", Zobs.Json.Arr pip_rows);
        ( "commit_phase",
          Zobs.Json.Obj
            [
              ("p_bits", int 1024);
              ("len", int len);
              ("domains", int domains);
              ("enc_naive_s", num t_enc_naive);
              ("enc_kernel_s", num t_enc_kernel);
              ("commit_naive_s", num t_com_naive);
              ("commit_kernel_s", num t_com_kernel);
              ("naive_s", num t_naive);
              ("kernel_s", num t_kernel);
              ("speedup", num (t_naive /. t_kernel));
            ] );
        ("kernels_agree", Zobs.Json.Bool !agree);
      ];
  if !agree then Printf.printf "\nmultiexp kernels agree with the naive ladder\n%!"
  else begin
    Printf.eprintf "multiexp: kernel results diverge from the naive ladder\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Wire: network accounting for the split V/P protocol (Figure 9 vein) *)
(* ------------------------------------------------------------------ *)

(* Filled by run_wire and folded into BENCH_run.json under "network". The
   loopback driver encodes and decodes every protocol message, so the
   wire.* counters measure exactly what `zaatar serve` would move over a
   socket; sent and received must balance or the run fails. *)
let wire_section : Zobs.Json.t ref = ref Zobs.Json.Null

let wire_phases = [ "hello"; "commit"; "query"; "answer"; "verdict" ]

let run_wire cfg =
  banner "Wire protocol: bytes moved per phase of the split verifier/prover argument";
  let ctx = ctx_of cfg in
  let compiled =
    Zlang.Compile.compile ~ctx
      "computation sq3(input int32 x, input int32 w, output int32 y) { y = x*x + w*w + 3; }"
  in
  let comp = Apps.Glue.computation_of compiled in
  let prg = Chacha.Prg.create ~seed:"bench wire" () in
  let batch = max 2 cfg.batch in
  let inputs =
    Array.init batch (fun _ ->
        Apps.Glue.field_inputs ctx
          [| Chacha.Prg.int_below prg 10000; Chacha.Prg.int_below prg 10000 |])
  in
  let config =
    {
      Argsys.Argument.params = protocol cfg;
      p_bits = cfg.p_bits;
      strategy = Argsys.Argument.Honest;
      domains = cfg.domains;
      qap_backend = cfg.qap_backend;
    }
  in
  let snapshot () =
    let vals = Zobs.Registry.counter_values () in
    fun name -> match List.assoc_opt name vals with Some v -> v | None -> 0
  in
  let before = snapshot () in
  let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
  if not (Argsys.Argument.all_accepted result) then failwith "wire: verification failed";
  let after = snapshot () in
  let delta name = after name - before name in
  let sent = delta "wire.bytes.sent" and recv = delta "wire.bytes.recv" in
  let msgs = delta "wire.msgs" in
  Printf.printf "batch of %d instance(s), field %d bits, group %d bits\n\n" batch
    (Nat.num_bits cfg.field) cfg.p_bits;
  Printf.printf "%-10s %12s %12s %8s\n" "phase" "sent B" "recv B" "msgs";
  let per_phase =
    List.map
      (fun ph ->
        let s = delta ("wire.bytes.sent." ^ ph)
        and r = delta ("wire.bytes.recv." ^ ph)
        and m = delta ("wire.msgs." ^ ph) in
        Printf.printf "%-10s %12d %12d %8d\n" ph s r m;
        (ph, s, r, m))
      wire_phases
  in
  Printf.printf "%-10s %12d %12d %8d\n%!" "total" sent recv msgs;
  let num n = Zobs.Json.Num (float_of_int n) in
  wire_section :=
    Zobs.Json.Obj
      [
        ("batch", num batch);
        ("bytes_sent", num sent);
        ("bytes_recv", num recv);
        ("msgs", num msgs);
        ("balanced", Zobs.Json.Bool (sent = recv));
        ( "per_phase",
          Zobs.Json.Obj
            (List.map
               (fun (ph, s, r, m) ->
                 (ph, Zobs.Json.Obj [ ("sent", num s); ("recv", num r); ("msgs", num m) ]))
               per_phase) );
      ];
  (* Cross-check: the loopback driver decodes every byte it encodes, so an
     imbalance means a codec phase is unaccounted. *)
  if sent <> recv || sent = 0 then begin
    Printf.eprintf "wire: sent (%d) and received (%d) bytes do not balance\n" sent recv;
    exit 1
  end;
  Printf.printf "\nsent and received bytes balance (%d B over %d message(s))\n%!" sent msgs

(* ------------------------------------------------------------------ *)
(* Farm: concurrent prover farm vs the sequential accept loop          *)
(* ------------------------------------------------------------------ *)

(* Filled by run_farm and folded into BENCH_run.json under "farm".
   Sessions/sec and latency percentiles at N concurrent verifier clients
   against (a) the pre-farm sequential accept loop, (b) the farm event
   loop with the setup cache, (c) the farm with the cache disabled.

   The clients are *replay* clients: one real verifier session is
   recorded (frames sent, replies received, verdict checked), then every
   client replays the same byte stream, sleeping [think_ms] before each
   frame to emulate off-box verifier compute, and asserts the prover's
   replies are byte-identical (the honest prover draws nothing from its
   PRG, so replies are a deterministic function of the received frames).
   Identical clients hit both arms, so the comparison isolates the
   server: the sequential loop is held hostage by each client's think
   time, the event loop overlaps them. *)
let farm_section : Zobs.Json.t ref = ref Zobs.Json.Null

let record_session ~config comp ~prg ~inputs addr =
  let conn = Znet.connect addr in
  Fun.protect ~finally:(fun () -> Znet.close conn) @@ fun () ->
  let vs = Argsys.Argument.Verifier_session.create ~config comp ~prg ~inputs in
  let codec = Argsys.Argument.Verifier_session.codec vs in
  let transcript = ref [] in
  let exchange m =
    let b = Zwire.encode ~codec m in
    Znet.send conn b;
    let r = Znet.recv conn in
    transcript := (b, Some r) :: !transcript;
    Zwire.decode ~codec r
  in
  let rec go m =
    match Argsys.Argument.Verifier_session.on_msg vs m with
    | `Send m' -> go (exchange m')
    | `Finished (Some m') ->
      let b = Zwire.encode ~codec m' in
      Znet.send conn b;
      transcript := (b, None) :: !transcript
    | `Finished None -> ()
  in
  go (exchange (Argsys.Argument.Verifier_session.initial vs));
  if not (Argsys.Argument.all_accepted (Argsys.Argument.Verifier_session.result vs)) then
    failwith "farm: recorded session did not verify";
  List.rev !transcript

let replay_session ~think_s ~addr transcript =
  let conn = Znet.connect addr in
  Fun.protect ~finally:(fun () -> Znet.close conn) @@ fun () ->
  List.for_all
    (fun (sent, expect) ->
      Unix.sleepf think_s;
      Znet.send conn sent;
      match expect with
      | None -> true
      | Some r -> Bytes.equal r (Znet.recv conn))
    transcript

let run_farm cfg =
  banner "Farm: sessions/sec at concurrent verifier clients (event loop vs sequential accept)";
  let ctx = ctx_of cfg in
  let compiled =
    Zlang.Compile.compile ~ctx
      "computation sq3(input int32 x, input int32 w, output int32 y) { y = x*x + w*w + 3; }"
  in
  let comp = Apps.Glue.computation_of compiled in
  let config =
    {
      Argsys.Argument.params = protocol cfg;
      p_bits = cfg.p_bits;
      strategy = Argsys.Argument.Honest;
      domains = cfg.domains;
      qap_backend = cfg.qap_backend;
    }
  in
  let lookup =
    let d = Argsys.Argument.digest comp in
    fun d' -> if String.equal d' d then Some comp else None
  in
  let clients = 8 in
  let think_ms = if cfg.quick then 25 else 60 in
  let think_s = float_of_int think_ms /. 1000.0 in
  let inputs = [| Apps.Glue.field_inputs ctx [| 7; 11 |] |] in
  (* Record the reference session against a throwaway one-shot server. *)
  let transcript =
    let srv = Znet.listen "127.0.0.1:0" in
    let addr = Znet.bound_addr srv in
    let server =
      Domain.spawn (fun () ->
          let c = Znet.accept srv in
          (try
             Argsys.Remote.handle_conn ~config ~lookup
               ~prg:(Chacha.Prg.create ~seed:"bench farm record prover" ())
               c
           with _ -> ());
          try Znet.close c with _ -> ())
    in
    let t =
      record_session ~config comp
        ~prg:(Chacha.Prg.create ~seed:"bench farm verifier" ())
        ~inputs addr
    in
    Domain.join server;
    Znet.close_server srv;
    t
  in
  let frames = List.length transcript in
  Printf.printf
    "%d concurrent same-digest clients, %d frame(s)/session, %d ms think before each frame\n\n"
    clients frames think_ms;
  let run_clients addr =
    let t0 = Unix.gettimeofday () in
    let doms =
      Array.init clients (fun _ -> Domain.spawn (fun () -> replay_session ~think_s ~addr transcript))
    in
    let ok = Array.for_all (fun d -> Domain.join d) doms in
    (Unix.gettimeofday () -. t0, ok)
  in
  (* Arm 1: the pre-farm behavior — accept, serve to completion, repeat. *)
  let seq_wall, seq_ok =
    let srv = Znet.listen ~backlog:(clients + 4) "127.0.0.1:0" in
    let addr = Znet.bound_addr srv in
    let server =
      Domain.spawn (fun () ->
          for i = 1 to clients do
            let c = Znet.accept srv in
            (try
               Argsys.Remote.handle_conn ~config ~lookup
                 ~prg:(Chacha.Prg.create ~seed:(Printf.sprintf "bench farm seq %d" i) ())
                 c
             with _ -> ());
            try Znet.close c with _ -> ()
          done)
    in
    let r = run_clients addr in
    Domain.join server;
    Znet.close_server srv;
    r
  in
  (* Arms 2 and 3: the farm event loop, with and without the setup cache. *)
  let farm_arm ~cache_bytes =
    Znet.Svcstats.reset ();
    let fc =
      {
        Zfarm.Farm.default with
        arg_config = config;
        max_sessions = clients + 2;
        setup_cache_bytes = cache_bytes;
      }
    in
    let mu = Mutex.create () in
    let lines = ref [] in
    let log s =
      Mutex.lock mu;
      lines := s :: !lines;
      Mutex.unlock mu
    in
    let server =
      Domain.spawn (fun () ->
          Zfarm.Farm.serve ~config:fc ~lookup ~max_conns:clients ~log "127.0.0.1:0")
    in
    let addr =
      let prefix = "listening on " in
      let k = String.length prefix in
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec poll () =
        let hit =
          Mutex.lock mu;
          let r =
            List.find_map
              (fun l ->
                if String.length l > k && String.sub l 0 k = prefix then
                  Some (String.sub l k (String.length l - k))
                else None)
              !lines
          in
          Mutex.unlock mu;
          r
        in
        match hit with
        | Some a -> a
        | None ->
          if Unix.gettimeofday () > deadline then failwith "farm: serve never bound";
          Unix.sleepf 0.005;
          poll ()
      in
      poll ()
    in
    let wall, ok = run_clients addr in
    Domain.join server;
    let _, hits, misses, _ = Znet.Svcstats.farm_totals () in
    let lat = Znet.Svcstats.latency_ms () in
    (wall, ok, hits, misses, lat)
  in
  let built_before = Zobs.Registry.counter_value "farm.setup.built" in
  let farm_wall, farm_ok, hits, misses, (p50, p95, p99) =
    farm_arm ~cache_bytes:Zfarm.Farm.default.Zfarm.Farm.setup_cache_bytes
  in
  let warm_builds = Zobs.Registry.counter_value "farm.setup.built" - built_before - 1 in
  let nocache_wall, nocache_ok, _, _, _ = farm_arm ~cache_bytes:0 in
  let per_s w = float_of_int clients /. w in
  let speedup = seq_wall /. farm_wall in
  Printf.printf "%-28s %10s %14s\n" "server" "wall s" "sessions/s";
  Printf.printf "%-28s %10.3f %14.2f\n" "sequential accept loop" seq_wall (per_s seq_wall);
  Printf.printf "%-28s %10.3f %14.2f\n" "farm (setup cache)" farm_wall (per_s farm_wall);
  Printf.printf "%-28s %10.3f %14.2f\n\n" "farm (cache disabled)" nocache_wall (per_s nocache_wall);
  Printf.printf "speedup vs sequential: %.2fx (acceptance floor 4x)\n" speedup;
  Printf.printf "setup cache: %d hit(s), %d miss(es); warm-session QAP constructions: %d\n" hits
    misses warm_builds;
  Printf.printf "session latency ms (farm, cached): p50 %.1f  p95 %.1f  p99 %.1f\n%!" p50 p95 p99;
  let ok = seq_ok && farm_ok && nocache_ok in
  if not ok then begin
    Printf.eprintf "farm: a replayed session saw a reply that differs from the recorded bytes\n";
    exit 1
  end;
  if warm_builds <> 0 then begin
    Printf.eprintf "farm: %d QAP construction(s) on warm sessions (cache should serve them)\n"
      warm_builds;
    exit 1
  end;
  let num n = Zobs.Json.Num (float_of_int n) and fnum x = Zobs.Json.Num x in
  farm_section :=
    Zobs.Json.Obj
      [
        ("clients", num clients);
        ("think_ms", num think_ms);
        ("frames_per_session", num frames);
        ("seq_wall_s", fnum seq_wall);
        ("farm_wall_s", fnum farm_wall);
        ("farm_nocache_wall_s", fnum nocache_wall);
        ("seq_sessions_per_s", fnum (per_s seq_wall));
        ("farm_sessions_per_s", fnum (per_s farm_wall));
        ("speedup", fnum speedup);
        ("cache_hits", num hits);
        ("cache_misses", num misses);
        ("warm_qap_constructions", num warm_builds);
        ( "latency_ms",
          Zobs.Json.Obj [ ("p50", fnum p50); ("p95", fnum p95); ("p99", fnum p99) ] );
        ("transcripts_identical", Zobs.Json.Bool ok);
      ]

(* ------------------------------------------------------------------ *)
(* Zscope overhead: flight recorder + sampling profiler cost           *)
(* ------------------------------------------------------------------ *)

(* Filled by run_obs_overhead and folded into BENCH_run.json under
   "obs_overhead". Two farm arms serve the same replayed client fleet:
   one with the Zscope instrumentation on (per-session flight recorder at
   its default capacity plus the sampling profiler at its default rate),
   one with both disabled (--flight-cap 0 --profile-hz 0). The acceptance
   band holds the on-arm to within 3% of the off-arm's sessions/sec
   (DESIGN.md §15's overhead budget); --baseline enforces it. *)
let obs_section : Zobs.Json.t ref = ref Zobs.Json.Null

let obs_overhead_band = 1.03

let run_obs_overhead cfg =
  banner "Zscope overhead: farm sessions/sec, flight recorder + sampler on vs off";
  let ctx = ctx_of cfg in
  let compiled =
    Zlang.Compile.compile ~ctx
      "computation sq3(input int32 x, input int32 w, output int32 y) { y = x*x + w*w + 3; }"
  in
  let comp = Apps.Glue.computation_of compiled in
  let config =
    {
      Argsys.Argument.params = protocol cfg;
      p_bits = cfg.p_bits;
      strategy = Argsys.Argument.Honest;
      domains = cfg.domains;
      qap_backend = cfg.qap_backend;
    }
  in
  let lookup =
    let d = Argsys.Argument.digest comp in
    fun d' -> if String.equal d' d then Some comp else None
  in
  let clients = 8 in
  let rounds = if cfg.quick then 2 else 3 in
  let inputs = [| Apps.Glue.field_inputs ctx [| 7; 11 |] |] in
  let transcript =
    let srv = Znet.listen "127.0.0.1:0" in
    let addr = Znet.bound_addr srv in
    let server =
      Domain.spawn (fun () ->
          let c = Znet.accept srv in
          (try
             Argsys.Remote.handle_conn ~config ~lookup
               ~prg:(Chacha.Prg.create ~seed:"bench obs record prover" ())
               c
           with _ -> ());
          try Znet.close c with _ -> ())
    in
    let t =
      record_session ~config comp
        ~prg:(Chacha.Prg.create ~seed:"bench obs verifier" ())
        ~inputs addr
    in
    Domain.join server;
    Znet.close_server srv;
    t
  in
  (* No think time: the comparison is server-bound on purpose, so any
     recorder/sampler cost lands squarely in the measured wall. One arm
     run = [clients] replayed sessions; best-of-[rounds] walls filter
     scheduler noise. *)
  let run_clients addr =
    let t0 = Unix.gettimeofday () in
    let doms =
      Array.init clients (fun _ ->
          Domain.spawn (fun () -> replay_session ~think_s:0.0 ~addr transcript))
    in
    let ok = Array.for_all (fun d -> Domain.join d) doms in
    (Unix.gettimeofday () -. t0, ok)
  in
  let arm ~flight_cap ~profile_hz =
    let best = ref infinity and all_ok = ref true in
    for _ = 1 to rounds do
      Znet.Svcstats.reset ();
      let fc =
        {
          Zfarm.Farm.default with
          arg_config = config;
          max_sessions = clients + 2;
          flight_cap;
          profile_hz;
        }
      in
      let mu = Mutex.create () in
      let lines = ref [] in
      let log s =
        Mutex.lock mu;
        lines := s :: !lines;
        Mutex.unlock mu
      in
      let server =
        Domain.spawn (fun () ->
            Zfarm.Farm.serve ~config:fc ~lookup ~max_conns:clients ~log "127.0.0.1:0")
      in
      let addr =
        let prefix = "listening on " in
        let k = String.length prefix in
        let deadline = Unix.gettimeofday () +. 10.0 in
        let rec poll () =
          let hit =
            Mutex.lock mu;
            let r =
              List.find_map
                (fun l ->
                  if String.length l > k && String.sub l 0 k = prefix then
                    Some (String.sub l k (String.length l - k))
                  else None)
                !lines
            in
            Mutex.unlock mu;
            r
          in
          match hit with
          | Some a -> a
          | None ->
            if Unix.gettimeofday () > deadline then failwith "obs-overhead: serve never bound";
            Unix.sleepf 0.005;
            poll ()
        in
        poll ()
      in
      let wall, ok = run_clients addr in
      Domain.join server;
      all_ok := !all_ok && ok;
      if wall < !best then best := wall
    done;
    (!best, !all_ok)
  in
  let on_wall, on_ok =
    arm ~flight_cap:Zfarm.Farm.default.Zfarm.Farm.flight_cap
      ~profile_hz:Zfarm.Farm.default.Zfarm.Farm.profile_hz
  in
  let off_wall, off_ok = arm ~flight_cap:0 ~profile_hz:0 in
  let per_s w = float_of_int clients /. w in
  (* >1 means the instrumented arm was slower; <1 is measurement noise in
     the on-arm's favor. *)
  let ratio = on_wall /. off_wall in
  Printf.printf "%-36s %10s %14s\n" "farm arm" "wall s" "sessions/s";
  Printf.printf "%-36s %10.3f %14.2f\n" "recorder + sampler on (defaults)" on_wall (per_s on_wall);
  Printf.printf "%-36s %10.3f %14.2f\n\n" "recorder + sampler off" off_wall (per_s off_wall);
  Printf.printf "overhead: %.2f%% (band: <= %.0f%%; best of %d round(s) per arm)\n%!"
    ((ratio -. 1.0) *. 100.0)
    ((obs_overhead_band -. 1.0) *. 100.0)
    rounds;
  if not (on_ok && off_ok) then begin
    Printf.eprintf "obs-overhead: a replayed session saw a reply that differs from the record\n";
    exit 1
  end;
  let num n = Zobs.Json.Num (float_of_int n) and fnum x = Zobs.Json.Num x in
  obs_section :=
    Zobs.Json.Obj
      [
        ("clients", num clients);
        ("rounds", num rounds);
        ("on_wall_s", fnum on_wall);
        ("off_wall_s", fnum off_wall);
        ("on_sessions_per_s", fnum (per_s on_wall));
        ("off_sessions_per_s", fnum (per_s off_wall));
        ("overhead_ratio", fnum ratio);
        ("band", fnum obs_overhead_band);
        ("transcripts_identical", Zobs.Json.Bool (on_ok && off_ok));
      ]

(* ------------------------------------------------------------------ *)
(* Lint: Zlint analyzer timing and finding counts over the suite       *)
(* ------------------------------------------------------------------ *)

(* Filled by run_lint and folded into BENCH_run.json under "lint". The
   benchmark computations are the largest systems we compile, so timing
   the backend analyzer over them is the regression canary for Zlint
   itself; finding counts are deterministic for a fixed configuration and
   must stay at zero (the suite ships clean). *)
let lint_section : Zobs.Json.t ref = ref Zobs.Json.Null

let run_lint cfg =
  banner "Zlint: analyzer wall-clock and finding counts over the benchmark suite";
  let ctx = ctx_of cfg in
  let apps = Apps.Registry.suite ~scale:cfg.scale () in
  let apps = if cfg.quick then [ List.hd apps ] else apps in
  Printf.printf "%-28s %8s %8s %10s %10s %7s\n" "computation" "rows" "vars" "frontend s"
    "backend s" "finds";
  let rows =
    List.map
      (fun (app : Apps.App_def.t) ->
        let front, t_front =
          time_thunk (fun () -> Zlint.Frontend.check_source app.Apps.App_def.source)
        in
        let compiled = Apps.Glue.compile ctx app in
        let sys = Zlang.Compile.zaatar_r1cs compiled in
        let back, t_back = time_thunk (fun () -> Zlint.lint_compiled compiled) in
        let findings = front @ back in
        Printf.printf "%-28s %8d %8d %10.4f %10.4f %7d\n" app.Apps.App_def.name
          (Constr.R1cs.num_constraints sys)
          sys.Constr.R1cs.num_vars t_front t_back (List.length findings);
        (app.Apps.App_def.name, Constr.R1cs.num_constraints sys, t_front, t_back, findings))
      apps
  in
  let total_findings = List.concat_map (fun (_, _, _, _, f) -> f) rows in
  let count sev = Zlint.Diagnostic.count_severity sev total_findings in
  let errors = count Zlint.Diagnostic.Error
  and warns = count Zlint.Diagnostic.Warn
  and infos = count Zlint.Diagnostic.Info in
  let num x = Zobs.Json.Num x and int n = Zobs.Json.Num (float_of_int n) in
  lint_section :=
    Zobs.Json.Obj
      [
        ( "apps",
          Zobs.Json.Arr
            (List.map
               (fun (name, nc, t_front, t_back, findings) ->
                 Zobs.Json.Obj
                   [
                     ("name", Zobs.Json.Str name);
                     ("rows", int nc);
                     ("frontend_s", num t_front);
                     ("backend_s", num t_back);
                     ("findings", int (List.length findings));
                   ])
               rows) );
        ("errors", int errors);
        ("warnings", int warns);
        ("info", int infos);
      ];
  Printf.printf "\nlint totals: %d error(s), %d warning(s), %d info\n%!" errors warns infos;
  (* The shipped suite linting dirty is itself a regression. *)
  if errors > 0 then begin
    Printf.eprintf "lint: benchmark suite has error-severity findings\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Exec: Zexec interpreter throughput and fuzz campaign rate           *)
(* ------------------------------------------------------------------ *)

(* The witness-solving interpreter (DESIGN.md §16) re-derives each app's
   witness from inputs alone; its constraint-propagation throughput is
   compared against the compiler's gadget-replay solver on the same
   systems, and the differential fuzz campaign's program rate rides
   along. Pinned/defaulted counts and fuzz discrepancies are
   seed-deterministic, so --baseline compares them exactly; seconds get
   the usual drift band. *)
let exec_section : Zobs.Json.t ref = ref Zobs.Json.Null

let run_exec cfg =
  banner "Zexec: interpreter solve throughput vs. the compiler's solver, fuzz program rate";
  let ctx = ctx_of cfg in
  let apps = Apps.Registry.suite ~scale:cfg.scale () in
  let apps = if cfg.quick then [ List.hd apps ] else apps in
  let prg = Chacha.Prg.create ~seed:"bench exec" () in
  Printf.printf "%-28s %8s %10s %10s %10s %7s %7s\n" "computation" "rows" "compile_s"
    "interp_s" "rows/s" "pinned" "free";
  let rows =
    List.map
      (fun (app : Apps.App_def.t) ->
        let compiled = Apps.Glue.compile ctx app in
        let sys = Zlang.Compile.zaatar_r1cs compiled in
        let nc = Constr.R1cs.num_constraints sys in
        let ints = app.Apps.App_def.gen_inputs prg in
        let finputs = Apps.Glue.field_inputs ctx ints in
        let w_compiler, t_compiler =
          time_thunk (fun () -> compiled.Zlang.Compile.solve_zaatar finputs)
        in
        let r, t_interp = time_thunk (fun () -> Zexec.Exec.solve sys ~inputs:finputs) in
        match r with
        | Error e ->
          Printf.eprintf "exec: %s: %s\n" app.Apps.App_def.name (Zexec.Exec.error_to_text e);
          exit 1
        | Ok (w, st) ->
          Array.iteri
            (fun v x ->
              if not (Fp.equal x w.(v)) then begin
                Printf.eprintf "exec: %s: witness differs from the compiler at w%d\n"
                  app.Apps.App_def.name v;
                exit 1
              end)
            w_compiler;
          Printf.printf "%-28s %8d %10.4f %10.4f %10.0f %7d %7d\n" app.Apps.App_def.name nc
            t_compiler t_interp
            (float_of_int nc /. t_interp)
            st.Zexec.Exec.pinned st.Zexec.Exec.defaulted;
          (app.Apps.App_def.name, nc, t_compiler, t_interp, st))
      apps
  in
  let fuzz_count = if cfg.quick then 20 else 60 in
  let report, t_fuzz =
    time_thunk (fun () ->
        Zfuzz.Fuzz.campaign ~verdict_every:0 ~ctx ~seed:42 ~count:fuzz_count ())
  in
  let bad = List.length report.Zfuzz.Fuzz.discrepancies in
  Printf.printf "\nfuzz campaign: %d program(s) in %.2fs (%.1f prog/s), %d discrepancy(ies)\n%!"
    report.Zfuzz.Fuzz.programs t_fuzz
    (float_of_int report.Zfuzz.Fuzz.programs /. t_fuzz)
    bad;
  let num x = Zobs.Json.Num x and int n = Zobs.Json.Num (float_of_int n) in
  exec_section :=
    Zobs.Json.Obj
      [
        ( "apps",
          Zobs.Json.Arr
            (List.map
               (fun (name, nc, t_compiler, t_interp, (st : Zexec.Exec.stats)) ->
                 Zobs.Json.Obj
                   [
                     ("name", Zobs.Json.Str name);
                     ("rows", int nc);
                     ("compiler_s", num t_compiler);
                     ("interp_s", num t_interp);
                     ("rows_per_s", num (float_of_int nc /. t_interp));
                     ("pinned", int st.Zexec.Exec.pinned);
                     ("defaulted", int st.Zexec.Exec.defaulted);
                   ])
               rows) );
        ( "fuzz",
          Zobs.Json.Obj
            [
              ("programs", int report.Zfuzz.Fuzz.programs);
              ("seconds", num t_fuzz);
              ("programs_per_s", num (float_of_int report.Zfuzz.Fuzz.programs /. t_fuzz));
              ("discrepancies", int bad);
            ] );
      ];
  (* A discrepancy in the bench seed is a real compiler/interpreter bug. *)
  if bad > 0 then begin
    Printf.eprintf "exec: the fuzz campaign found %d discrepancy(ies)\n" bad;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Alloc: words allocated per primitive op (Zledger GC profiling)      *)
(* ------------------------------------------------------------------ *)

(* [Gc.minor_words] is an exact allocation counter (not a sample), so
   delta/iters is the precise per-op allocation footprint. Folded into
   BENCH_run.json under "alloc" and into BENCH_history.jsonl. *)
let alloc_section : Zobs.Json.t ref = ref Zobs.Json.Null

(* words/op per kernel, kept for the --check-ledger allocation gate. *)
let alloc_rows : (string * float) list ref = ref []

let run_alloc cfg =
  banner "Allocation profile: minor words per primitive operation";
  let ctx = ctx_of cfg in
  let prg = Chacha.Prg.create ~seed:"alloc bench" () in
  let grp = Zcrypto.Group.cached ~field_order:cfg.field ~p_bits:cfg.p_bits () in
  let _sk, pk = Zcrypto.Elgamal.keygen grp prg in
  let a = Chacha.Prg.field_nonzero ctx prg and b = Chacha.Prg.field_nonzero ctx prg in
  let m = Chacha.Prg.field ctx prg in
  let fast = if cfg.quick then 20_000 else 200_000 in
  let slow = if cfg.quick then 50 else 300 in
  let kernels =
    [
      ("fp.mul", fast, fun () -> ignore (Fp.mul ctx a b));
      ("fp.mul_lazy", fast, fun () -> ignore (Fp.mul_lazy ctx a b));
      ("fp.inv", fast / 10, fun () -> ignore (Fp.inv ctx a));
      ("prg.field", fast / 10, fun () -> ignore (Chacha.Prg.field ctx prg));
      ("elgamal.encrypt", slow, fun () -> ignore (Zcrypto.Elgamal.encrypt pk prg m));
      ( "ntt.butterfly",
        fast,
        (* the packed hot-path butterfly: must be allocation-free *)
        let vb = Fp.Vec.of_array ctx [| a; b |] in
        let twb = Fp.Vec.of_array ctx [| m |] in
        let scb = Fp.scratch_for ctx in
        fun () -> Fp.Vec.butterfly ctx scb vb 0 1 twb 0 );
    ]
  in
  Printf.printf "  %-18s %10s %14s %12s\n" "kernel" "iters" "words/op" "us/op";
  let rows =
    List.map
      (fun (name, iters, f) ->
        f ();
        (* warm-up: one-time setup allocations land outside the window *)
        let w0 = Gc.minor_words () in
        let (), t = time_thunk (fun () -> for _ = 1 to iters do f () done) in
        let words = (Gc.minor_words () -. w0) /. float_of_int iters in
        let us = 1e6 *. t /. float_of_int iters in
        Printf.printf "  %-18s %10d %14.1f %12.3f\n" name iters words us;
        (name, iters, words, us))
      kernels
  in
  alloc_rows := List.map (fun (name, _, words, _) -> (name, words)) rows;
  alloc_section :=
    Zobs.Json.Obj
      (List.map
         (fun (name, iters, words, us) ->
           ( name,
             Zobs.Json.Obj
               [
                 ("iters", Zobs.Json.Num (float_of_int iters));
                 ("words_per_op", Zobs.Json.Num words);
                 ("us_per_op", Zobs.Json.Num us);
               ] ))
         rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Profile: ledger overhead + the Figure-3 op audit (DESIGN.md §12)    *)
(* ------------------------------------------------------------------ *)

let profile_section : Zobs.Json.t ref = ref Zobs.Json.Null
let ledger_section : Zobs.Json.t ref = ref Zobs.Json.Null
let ledger_audit_rows : Costmodel.Model.audit_row list ref = ref []

let run_profile cfg =
  banner "Zledger: instrumentation overhead and the op audit";
  let ctx = ctx_of cfg in
  (* (1) Overhead: the multiexp commit arm with ledger counters off vs on.
     Arms alternate and each side keeps its minimum over [reps], so
     scheduler noise doesn't masquerade as instrumentation cost; the
     sharded counters are a DLS read + unsynchronized int bump per op, so
     the budget is < 3% (acceptance criterion). *)
  let len = if cfg.quick then 96 else 512 in
  let domains = min (Dompool.Pool.num_cores ()) 8 in
  let grp = Zcrypto.Group.cached ~field_order:cfg.field ~p_bits:cfg.p_bits () in
  let commit_once () =
    let prg = Chacha.Prg.create ~seed:"ledger overhead" () in
    let req, _vs = Commitment.Commit.commit_request ~domains ctx grp prg ~len in
    let u =
      Array.init len (fun i -> if i mod 7 = 0 then Fp.zero else Chacha.Prg.field ctx prg)
    in
    ignore (Commitment.Commit.prover_commit req u)
  in
  commit_once ();
  let reps = if cfg.quick then 2 else 3 in
  let t_off = ref infinity and t_on = ref infinity in
  let was_on = Zobs.enabled () in
  for _ = 1 to reps do
    Zobs.disable ();
    let (), t = time_thunk commit_once in
    t_off := min !t_off t;
    Zobs.enable ();
    let (), t = time_thunk commit_once in
    t_on := min !t_on t
  done;
  if not was_on then Zobs.disable ();
  let overhead_ratio = !t_on /. !t_off in
  Printf.printf
    "commit arm (|u| = %d, %d domain(s)): ledger off %s, on %s — overhead %+.2f%%\n\n" len
    domains (fmt_s !t_off) (fmt_s !t_on)
    (100.0 *. (overhead_ratio -. 1.0));
  (* (2) Op audit: a dedicated argument run, ledgered from a clean slate,
     audited against the Figure-3 op-count model. Seeds are fixed, so the
     per-phase op vector is deterministic and baseline-comparable. *)
  Zobs.Ledger.reset ();
  let app = Apps.Registry.pam ~scale:cfg.scale in
  let compiled = Apps.Glue.compile ctx app in
  let comp = Apps.Glue.computation_of compiled in
  let prg = Chacha.Prg.create ~seed:"ledger audit" () in
  let inputs =
    Array.init cfg.batch (fun _ ->
        Apps.Glue.field_inputs ctx (app.Apps.App_def.gen_inputs prg))
  in
  let config =
    {
      Argsys.Argument.params = protocol cfg;
      p_bits = cfg.p_bits;
      strategy = Argsys.Argument.Honest;
      domains = cfg.domains;
      qap_backend = cfg.qap_backend;
    }
  in
  let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
  if not (Argsys.Argument.all_accepted result) then begin
    Printf.eprintf "profile: the audit batch was REJECTED\n";
    exit 1
  end;
  let stats = Zlang.Compile.stats compiled in
  let sizes =
    Costmodel.Model.sizes_of_stats stats ~n_x:compiled.Zlang.Compile.num_inputs
      ~n_y:compiled.Zlang.Compile.num_outputs ~t_local:0.0
  in
  let rows =
    let ntt_domain = ntt_domain_of cfg ctx ~nc:sizes.Costmodel.Model.c_zaatar in
    Costmodel.Model.zaatar_op_audit ?ntt_domain (model_protocol cfg) sizes ~beta:cfg.batch
      ~ledger:Zobs.Ledger.phase
  in
  ledger_audit_rows := rows;
  ledger_section := Zobs.Ledger.phases_json ();
  let gated = List.filter (fun r -> r.Costmodel.Model.gated) rows in
  let in_band = List.filter (fun (r : Costmodel.Model.audit_row) -> r.pass) gated in
  Printf.printf "  %-22s %-8s %12s %12s %8s %s\n" "phase" "op" "predicted" "ledgered" "ratio"
    "status";
  List.iter
    (fun (r : Costmodel.Model.audit_row) ->
      Printf.printf "  %-22s %-8s %12.0f %12d %8.3f %s\n" r.phase r.op r.predicted r.ledgered
        r.ratio
        (if not r.gated then "info" else if r.pass then "ok" else "FAIL"))
    rows;
  Printf.printf "op audit (%s, batch %d): %d/%d gated rows in band\n%!" app.Apps.App_def.name
    cfg.batch (List.length in_band) (List.length gated);
  let num x = Zobs.Json.Num x and int n = Zobs.Json.Num (float_of_int n) in
  let row_json (r : Costmodel.Model.audit_row) =
    Zobs.Json.Obj
      [
        ("phase", Zobs.Json.Str r.phase);
        ("op", Zobs.Json.Str r.op);
        ("predicted", num r.predicted);
        ("ledgered", int r.ledgered);
        ("ratio", num r.ratio);
        ("lo", num r.lo);
        ("hi", num r.hi);
        ("gated", Zobs.Json.Bool r.gated);
        ("pass", Zobs.Json.Bool r.pass);
      ]
  in
  profile_section :=
    Zobs.Json.Obj
      [
        ( "overhead",
          Zobs.Json.Obj
            [
              ("len", int len);
              ("domains", int domains);
              ("off_s", num !t_off);
              ("on_s", num !t_on);
              ("overhead_ratio", num overhead_ratio);
            ] );
        ("audit", Zobs.Json.Arr (List.map row_json rows));
      ]

(* --check-ledger gate: every gated audit row must sit inside its
   documented band (the bands live in Costmodel.Model.zaatar_op_audit and
   are documented in DESIGN.md §12). Informational rows never fail it. *)
let check_ledger () =
  match !ledger_audit_rows with
  | [] ->
    Printf.eprintf "--check-ledger: the profile experiment did not run\n";
    exit 1
  | rows ->
    let breaches =
      List.filter (fun (r : Costmodel.Model.audit_row) -> r.gated && not r.pass) rows
    in
    if breaches <> [] then begin
      List.iter
        (fun (r : Costmodel.Model.audit_row) ->
          Printf.eprintf "--check-ledger: %s/%s ratio %.3f outside [%.2f, %.2f] (%s)\n" r.phase
            r.op r.ratio r.lo r.hi r.note)
        breaches;
      exit 1
    end;
    (* Allocation gate: ceilings on words/op for the hot-path kernels (from
       the alloc experiment). The packed butterfly must stay allocation
       free; the boxed field mults allocate their result nat and nothing
       else, with headroom for GC accounting noise. *)
    let alloc_bands = [ ("fp.mul", 120.0); ("fp.mul_lazy", 120.0); ("ntt.butterfly", 2.0) ] in
    List.iter
      (fun (kernel, ceiling) ->
        match List.assoc_opt kernel !alloc_rows with
        | None ->
          Printf.eprintf "--check-ledger: the alloc experiment has no %s row\n" kernel;
          exit 1
        | Some words ->
          if words > ceiling then begin
            Printf.eprintf "--check-ledger: %s allocates %.1f words/op (ceiling %.1f)\n" kernel
              words ceiling;
            exit 1
          end)
      alloc_bands;
    Printf.printf
      "--check-ledger OK: every gated op ratio inside its band; hot-path words/op under ceilings\n"

(* --baseline gate: diff this run against a committed BENCH_baseline.json
   (refresh with `dune exec bench/main.exe -- model wire lint profile
   --json BENCH_baseline.json`). Wire bytes are deterministic for a fixed
   configuration, so the network section must match exactly; lint finding
   counts are deterministic too, while analyzer seconds and model deltas
   are wall-clock and may drift by at most [drift]x either way. *)
let baseline_diff ~drift path cfg =
  let failed = ref false in
  let err fmt =
    Printf.ksprintf
      (fun s ->
        failed := true;
        Printf.eprintf "baseline: %s\n" s)
      fmt
  in
  let base =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    try Zobs.Json.parse s
    with _ ->
      Printf.eprintf "baseline: %s does not parse as JSON\n" path;
      exit 1
  in
  let jnum j k = Option.bind (Zobs.Json.member k j) Zobs.Json.to_num in
  (* The configuration must match, or byte-exact comparison is
     meaningless. *)
  (match Zobs.Json.member "config" base with
  | None -> err "%s has no config section" path
  | Some bc ->
    List.iter
      (fun (k, v) ->
        match jnum bc k with
        | Some b when int_of_float b = v -> ()
        | Some b -> err "config mismatch: %s = %d here, %d in baseline" k v (int_of_float b)
        | None -> err "config key %s missing from baseline" k)
      [
        ("field_bits", Nat.num_bits cfg.field);
        ("rho", cfg.rho);
        ("rho_lin", cfg.rho_lin);
        ("p_bits", cfg.p_bits);
        ("batch", cfg.batch);
        ("scale", cfg.scale);
      ];
    (match Zobs.Json.member "quick" bc with
    | Some (Zobs.Json.Bool b) when b = cfg.quick -> ()
    | Some (Zobs.Json.Bool b) -> err "config mismatch: quick = %b here, %b in baseline" cfg.quick b
    | _ -> err "config key quick missing from baseline"));
  (* Network: deterministic, compared exactly. *)
  (match (Zobs.Json.member "network" base, !wire_section) with
  | None, Zobs.Json.Null -> err "neither run has a network section (run the wire experiment)"
  | None, _ -> err "%s has no network section — refresh the baseline" path
  | Some _, Zobs.Json.Null -> err "this run has no network section (wire experiment did not run)"
  | Some bn, cn ->
    let check_counts ctx b c =
      List.iter
        (fun k ->
          match (jnum b k, jnum c k) with
          | Some bv, Some cv when bv = cv -> ()
          | Some bv, Some cv ->
            err "network%s.%s: %d here, %d in baseline" ctx k (int_of_float cv) (int_of_float bv)
          | _ -> err "network%s.%s missing" ctx k)
    in
    check_counts "" bn cn [ "bytes_sent"; "bytes_recv"; "msgs" ];
    (match (Zobs.Json.member "per_phase" bn, Zobs.Json.member "per_phase" cn) with
    | Some bp, Some cp ->
      List.iter
        (fun ph ->
          match (Zobs.Json.member ph bp, Zobs.Json.member ph cp) with
          | Some b, Some c -> check_counts ("." ^ ph) b c [ "sent"; "recv"; "msgs" ]
          | _ -> err "network.per_phase.%s missing" ph)
        wire_phases
    | _ -> err "network.per_phase missing"));
  (* Farm: client count, frames/session, cache hit/miss counts, the
     warm-session construction count (must stay 0) and transcript
     identity are deterministic and compared exactly; the speedup over
     the sequential loop is wall-clock and held to the drift band. *)
  (match (Zobs.Json.member "farm" base, !farm_section) with
  | None, Zobs.Json.Null -> err "neither run has a farm section (run the farm experiment)"
  | None, _ -> err "%s has no farm section — refresh the baseline" path
  | Some _, Zobs.Json.Null -> err "this run has no farm section (farm experiment did not run)"
  | Some bf, cf ->
    List.iter
      (fun k ->
        match (jnum bf k, jnum cf k) with
        | Some bv, Some cv when bv = cv -> ()
        | Some bv, Some cv ->
          err "farm.%s: %d here, %d in baseline" k (int_of_float cv) (int_of_float bv)
        | _ -> err "farm.%s missing" k)
      [ "clients"; "frames_per_session"; "cache_hits"; "cache_misses"; "warm_qap_constructions" ];
    (match Zobs.Json.member "transcripts_identical" cf with
    | Some (Zobs.Json.Bool true) -> ()
    | _ -> err "farm.transcripts_identical is not true");
    (match (jnum bf "speedup", jnum cf "speedup") with
    | Some b, Some c ->
      let d = c /. b in
      if d > drift || d < 1.0 /. drift || Float.is_nan d then
        err "farm.speedup: %.2fx vs. baseline %.2fx drifts beyond %gx" c b drift
    | _ -> err "farm.speedup missing"));
  (* Zscope overhead: an absolute band, not a drift band — the recorder
     and sampler must cost at most (band-1) of the uninstrumented farm's
     sessions/sec on every gated run. *)
  (match (Zobs.Json.member "obs_overhead" base, !obs_section) with
  | None, Zobs.Json.Null ->
    err "neither run has an obs_overhead section (run the obs-overhead experiment)"
  | None, _ -> err "%s has no obs_overhead section — refresh the baseline" path
  | Some _, Zobs.Json.Null ->
    err "this run has no obs_overhead section (obs-overhead experiment did not run)"
  | Some _, cf -> (
    match jnum cf "overhead_ratio" with
    | Some r ->
      if r > obs_overhead_band || Float.is_nan r then
        err "obs_overhead: recorder+sampler cost %.1f%% of sessions/sec (band %.0f%%)"
          ((r -. 1.0) *. 100.0)
          ((obs_overhead_band -. 1.0) *. 100.0)
    | None -> err "obs_overhead.overhead_ratio missing"));
  (* Model: wall-clock, so each phase's measured/predicted delta may move,
     but only within [1/drift, drift] of the committed delta. *)
  (match Zobs.Json.member "model" base with
  | None -> if !model_rows <> [] then err "%s has no model section — refresh the baseline" path
  | Some bm ->
    if !model_rows = [] then err "this run has no model section (model experiment did not run)"
    else begin
      let bapps =
        match Option.bind (Zobs.Json.member "apps" bm) Zobs.Json.to_arr with
        | Some l -> l
        | None -> []
      in
      let baseline_delta name ph =
        List.find_map
          (fun app ->
            match Option.bind (Zobs.Json.member "name" app) Zobs.Json.to_str with
            | Some n when n = name ->
              Option.bind (Zobs.Json.member "phases" app) (fun phs ->
                  Option.bind (Zobs.Json.member ph phs) (fun p -> jnum p "delta"))
            | _ -> None)
          bapps
      in
      List.iter
        (fun (name, phases) ->
          List.iter
            (fun (ph, predicted, measured) ->
              let cur = measured /. predicted in
              match baseline_delta name ph with
              | None -> err "model %s/%s missing from baseline" name ph
              | Some b ->
                let d = cur /. b in
                if d > drift || d < 1.0 /. drift || Float.is_nan d then
                  err "model %s/%s: delta %.2fx vs. baseline %.2fx drifts beyond %gx" name ph
                    cur b drift)
            phases)
        !model_rows
    end);
  (* Lint: finding counts are deterministic (compared exactly); analyzer
     seconds are wall-clock and gated by the same drift band as the model. *)
  (match (Zobs.Json.member "lint" base, !lint_section) with
  | None, Zobs.Json.Null -> err "neither run has a lint section (run the lint experiment)"
  | None, _ -> err "%s has no lint section — refresh the baseline" path
  | Some _, Zobs.Json.Null -> err "this run has no lint section (lint experiment did not run)"
  | Some bl, cl ->
    List.iter
      (fun k ->
        match (jnum bl k, jnum cl k) with
        | Some bv, Some cv when bv = cv -> ()
        | Some bv, Some cv ->
          err "lint.%s: %d here, %d in baseline" k (int_of_float cv) (int_of_float bv)
        | _ -> err "lint.%s missing" k)
      [ "errors"; "warnings"; "info" ];
    let apps_of j =
      match Option.bind (Zobs.Json.member "apps" j) Zobs.Json.to_arr with
      | Some l ->
        List.filter_map
          (fun a ->
            match Option.bind (Zobs.Json.member "name" a) Zobs.Json.to_str with
            | Some n -> Some (n, a)
            | None -> None)
          l
      | None -> []
    in
    let bapps = apps_of bl in
    List.iter
      (fun (name, capp) ->
        match List.assoc_opt name bapps with
        | None -> err "lint app %s missing from baseline" name
        | Some bapp ->
          (match (jnum bapp "findings", jnum capp "findings") with
          | Some bv, Some cv when bv = cv -> ()
          | Some bv, Some cv ->
            err "lint %s: %d finding(s) here, %d in baseline" name (int_of_float cv)
              (int_of_float bv)
          | _ -> err "lint %s finding count missing" name);
          (match (jnum bapp "rows", jnum capp "rows") with
          | Some bv, Some cv when bv = cv -> ()
          | Some bv, Some cv ->
            err "lint %s: %d row(s) here, %d in baseline" name (int_of_float cv)
              (int_of_float bv)
          | _ -> err "lint %s row count missing" name);
          (match (jnum bapp "backend_s", jnum capp "backend_s") with
          | Some b, Some c ->
            let d = c /. b in
            if d > drift || Float.is_nan d then
              err "lint %s: analyzer %.4fs vs. baseline %.4fs drifts beyond %gx" name c b drift
          | _ -> err "lint %s backend_s missing" name))
      (apps_of cl));
  (* Exec: the interpreter's pinned/defaulted counts and the fuzz
     campaign's discrepancy count are seed-deterministic (compared
     exactly); interpreter seconds get the drift band. *)
  (match (Zobs.Json.member "exec" base, !exec_section) with
  | None, Zobs.Json.Null -> err "neither run has an exec section (run the exec experiment)"
  | None, _ -> err "%s has no exec section — refresh the baseline" path
  | Some _, Zobs.Json.Null -> err "this run has no exec section (exec experiment did not run)"
  | Some bx, cx ->
    (match
       ( Option.bind (Zobs.Json.member "fuzz" bx) (fun f -> jnum f "discrepancies"),
         Option.bind (Zobs.Json.member "fuzz" cx) (fun f -> jnum f "discrepancies") )
     with
    | Some bv, Some cv when bv = cv -> ()
    | Some bv, Some cv ->
      err "exec fuzz: %d discrepancy(ies) here, %d in baseline" (int_of_float cv)
        (int_of_float bv)
    | _ -> err "exec fuzz discrepancy count missing");
    let apps_of j =
      match Option.bind (Zobs.Json.member "apps" j) Zobs.Json.to_arr with
      | Some l ->
        List.filter_map
          (fun a ->
            match Option.bind (Zobs.Json.member "name" a) Zobs.Json.to_str with
            | Some n -> Some (n, a)
            | None -> None)
          l
      | None -> []
    in
    let bapps = apps_of bx in
    List.iter
      (fun (name, capp) ->
        match List.assoc_opt name bapps with
        | None -> err "exec app %s missing from baseline" name
        | Some bapp ->
          List.iter
            (fun k ->
              match (jnum bapp k, jnum capp k) with
              | Some bv, Some cv when bv = cv -> ()
              | Some bv, Some cv ->
                err "exec %s: %s = %d here, %d in baseline" name k (int_of_float cv)
                  (int_of_float bv)
              | _ -> err "exec %s: %s missing" name k)
            [ "rows"; "pinned"; "defaulted" ];
          (match (jnum bapp "interp_s", jnum capp "interp_s") with
          | Some b, Some c ->
            let d = c /. b in
            if d > drift || Float.is_nan d then
              err "exec %s: interpreter %.4fs vs. baseline %.4fs drifts beyond %gx" name c b
                drift
          | _ -> err "exec %s: interp_s missing" name))
      (apps_of cx));
  (* Ledger: the audit run's per-phase op vector is seed-deterministic, so
     every op count must match the baseline exactly. Seconds and GC words
     are wall-clock/runtime-version dependent and are not compared. *)
  (match (Zobs.Json.member "ledger" base, !ledger_section) with
  | None, Zobs.Json.Null -> err "neither run has a ledger section (run the profile experiment)"
  | None, _ -> err "%s has no ledger section — refresh the baseline" path
  | Some _, Zobs.Json.Null -> err "this run has no ledger section (profile experiment did not run)"
  | Some bl, cur ->
    let phases_of = function
      | Zobs.Json.Obj fields -> fields
      | _ -> []
    in
    List.iter
      (fun (phase, cph) ->
        match Zobs.Json.member phase bl with
        | None -> err "ledger phase %s missing from baseline" phase
        | Some bph -> (
          match (Zobs.Json.member "ops" bph, Zobs.Json.member "ops" cph) with
          | Some (Zobs.Json.Obj bops), Some (Zobs.Json.Obj cops) ->
            List.iter
              (fun (op, cv) ->
                match (List.assoc_opt op bops, cv) with
                | Some (Zobs.Json.Num bv), Zobs.Json.Num cv when bv = cv -> ()
                | Some (Zobs.Json.Num bv), Zobs.Json.Num cv ->
                  err "ledger %s.%s: %d op(s) here, %d in baseline" phase op (int_of_float cv)
                    (int_of_float bv)
                | _ -> err "ledger %s.%s missing from baseline" phase op)
              cops
          | _ -> err "ledger phase %s has no ops" phase))
      (phases_of cur));
  if !failed then exit 1
  else
    Printf.printf
      "baseline check OK against %s: network bytes and ledger ops identical, lint and exec \
       counts identical, model/lint/exec timings within %gx\n%!"
      path drift

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: bench [all|micro|bechamel|model|baseline|fig4|fig5|fig6|fig7|fig8|fig9|soundness|ablation|ntt-vs-lagrange|multiexp|wire|farm|obs-overhead|lint|exec|alloc|profile]\n\
    \       [--scale N] [--batch N] [--pbits N] [--paper-params] [--quick] [--domains N]\n\
    \       [--qap-backend auto|ntt|lagrange]\n\
    \       [--trace OUT.json] [--metrics] [--json OUT.json]\n\
    \       [--check-model] [--model-band LO:HI] [--check-ledger] [--baseline FILE] [--drift X]\n\
    \       [--history FILE.jsonl] [--trend N]";
  exit 2

(* "all" in paper-figure order (micro first: later figures reuse its
   measured constants). *)
let all_experiments =
  [ "micro"; "bechamel"; "fig9"; "model"; "fig4"; "fig5"; "fig7"; "fig8"; "fig6"; "baseline";
    "soundness"; "ablation"; "ntt-vs-lagrange"; "multiexp"; "wire"; "farm"; "obs-overhead";
    "lint"; "exec"; "alloc"; "profile" ]

(* Machine-readable run summary (BENCH_run.json): configuration,
   per-experiment wall times, and the Zobs counter/histogram/span totals
   accumulated across the run. Written with the in-house Zobs.Json writer
   and parsed back with its parser as a self-check — scripts/ci.sh greps
   for the "parsed back OK" line. *)
let summary_json cfg (experiments : (string * float) list) : Zobs.Json.t =
  let open Zobs.Json in
  let num x = Num x and int n = Num (float_of_int n) in
  let config =
    Obj
      [
        ("field_bits", int (Nat.num_bits cfg.field));
        ("rho", int cfg.rho);
        ("rho_lin", int cfg.rho_lin);
        ("p_bits", int cfg.p_bits);
        ("batch", int cfg.batch);
        ("scale", int cfg.scale);
        ("quick", Bool cfg.quick);
        ("qap_backend", Str (Qapb.backend_to_string cfg.qap_backend));
      ]
  in
  let experiments =
    Arr
      (List.map
         (fun (name, wall) -> Obj [ ("name", Str name); ("wall_s", num wall) ])
         experiments)
  in
  let counters = Obj (List.map (fun (n, v) -> (n, int v)) (Zobs.Registry.counter_values ())) in
  (* Histograms that never recorded a sample render as noise (an empty
     array per registered name, backend-dependent); omit them, matching
     the Prometheus and JSONL sinks. *)
  let histograms =
    Obj
      (List.filter_map
         (fun (n, buckets) ->
           if List.for_all (fun (_, c) -> c = 0) buckets then None
           else
             Some
               (n, Arr (List.map (fun (lo, c) -> Obj [ ("ge", int lo); ("count", int c) ]) buckets)))
         (Zobs.Registry.histogram_values ()))
  in
  let spans =
    Arr
      (List.map
         (fun (name, (s : Zobs.Span.stat)) ->
           Obj
             [
               ("name", Str name);
               ("count", int s.Zobs.Span.count);
               ("total_s", num s.Zobs.Span.total);
               ("exclusive_s", num s.Zobs.Span.exclusive);
             ])
         (Zobs.Span.totals ()))
  in
  let multiexp =
    match !multiexp_section with Null -> [] | m -> [ ("multiexp", m) ]
  in
  let ntt_vs_lagrange =
    match !ntt_section with Null -> [] | m -> [ ("ntt_vs_lagrange", m) ]
  in
  let network = match !wire_section with Null -> [] | m -> [ ("network", m) ] in
  let farm = match !farm_section with Null -> [] | m -> [ ("farm", m) ] in
  let obs = match !obs_section with Null -> [] | m -> [ ("obs_overhead", m) ] in
  let model = match !model_section with Null -> [] | m -> [ ("model", m) ] in
  let lint = match !lint_section with Null -> [] | m -> [ ("lint", m) ] in
  let exec = match !exec_section with Null -> [] | m -> [ ("exec", m) ] in
  let alloc = match !alloc_section with Null -> [] | m -> [ ("alloc", m) ] in
  let profile = match !profile_section with Null -> [] | m -> [ ("profile", m) ] in
  let ledger = match !ledger_section with Null -> [] | m -> [ ("ledger", m) ] in
  Obj
    ([
       ("schema", Str "zaatar-bench-run/1");
       ("config", config);
       ("experiments", experiments);
     ]
    @ multiexp @ ntt_vs_lagrange @ network @ farm @ obs @ model @ lint @ exec @ alloc @ profile
    @ ledger
    @ [ ("counters", counters); ("histograms", histograms); ("spans", spans) ])

let write_summary cfg path experiments =
  let oc = open_out path in
  output_string oc (Zobs.Json.to_string (summary_json cfg experiments));
  output_char oc '\n';
  close_out oc;
  (* Round-trip self-check through our own parser. *)
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Zobs.Json.(member "experiments" (parse s)) with
  | Some (Zobs.Json.Arr l) ->
    Printf.printf "\nBENCH summary: wrote %s (%d experiment(s); parsed back OK)\n" path (List.length l)
  | _ ->
    Printf.eprintf "BENCH summary: %s failed to parse back\n" path;
    exit 1

(* BENCH_history.jsonl: one line per gated run (--check-model,
   --check-ledger or --baseline), appended before the gates execute so a
   breach still leaves its evidence behind. scripts/ci.sh prints the
   last-N trend with --trend. *)

let deep j keys =
  List.fold_left (fun acc k -> Option.bind acc (Zobs.Json.member k)) (Some j) keys

let dnum j keys = Option.bind (deep j keys) Zobs.Json.to_num

let append_history cfg path (experiments : (string * float) list) =
  let open Zobs.Json in
  let num x = Num x and int n = Num (float_of_int n) in
  let line =
    Obj
      ([
         ("ts", num (Unix.time ()));
         ( "config",
           Obj
             [
               ("field_bits", int (Nat.num_bits cfg.field));
               ("rho", int cfg.rho);
               ("rho_lin", int cfg.rho_lin);
               ("p_bits", int cfg.p_bits);
               ("batch", int cfg.batch);
               ("scale", int cfg.scale);
               ("quick", Bool cfg.quick);
             ] );
         ("experiments", Obj (List.map (fun (n, w) -> (n, num w)) experiments));
       ]
      @ (match !ledger_section with Null -> [] | l -> [ ("ledger", l) ])
      @ (match !alloc_section with Null -> [] | a -> [ ("alloc", a) ])
      @
      match
        match !profile_section with Null -> None | p -> dnum p [ "overhead"; "overhead_ratio" ]
      with
      | None -> []
      | Some r -> [ ("overhead_ratio", num r) ])
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (to_string line);
  output_char oc '\n';
  close_out oc;
  Printf.printf "appended this gated run to %s\n" path

let print_trend path n =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "--trend: %s does not exist (run a gated bench first)\n" path;
    exit 1
  end;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := l :: !lines
     done
   with End_of_file -> close_in ic);
  (* [lines] is newest-first; show the last [n] oldest-first. *)
  let last = List.filteri (fun i _ -> i < n) !lines |> List.rev in
  Printf.printf "last %d gated run(s) in %s:\n" (List.length last) path;
  Printf.printf "  %-17s %6s %10s %10s %13s %9s\n" "when" "batch" "commit_s" "setup_s"
    "construct_f" "overhead";
  List.iter
    (fun l ->
      match Zobs.Json.parse l with
      | exception _ -> Printf.printf "  (unparseable line)\n"
      | j ->
        let when_ =
          match dnum j [ "ts" ] with
          | None -> "-"
          | Some ts ->
            let tm = Unix.localtime ts in
            Printf.sprintf "%04d-%02d-%02d %02d:%02d" (tm.Unix.tm_year + 1900)
              (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
        in
        let show fmt = function None -> "-" | Some v -> Printf.sprintf fmt v in
        Printf.printf "  %-17s %6s %10s %10s %13s %9s\n" when_
          (show "%.0f" (dnum j [ "config"; "batch" ]))
          (show "%.4f" (dnum j [ "ledger"; "crypto_ops"; "seconds" ]))
          (show "%.4f" (dnum j [ "ledger"; "verifier_setup"; "seconds" ]))
          (show "%.0f" (dnum j [ "ledger"; "construct_u"; "ops"; "f" ]))
          (show "%.3fx" (dnum j [ "overhead_ratio" ])))
    last

let () =
  let cfg = ref default_cfg in
  let targets = ref [] in
  let trace = ref None and metrics = ref false and json = ref "BENCH_run.json" in
  let check = ref false and band = ref (0.2, 5.0) in
  let baseline = ref None and drift = ref 4.0 in
  let check_ledger_flag = ref false in
  let history = ref "BENCH_history.jsonl" and trend = ref None in
  let args = Array.to_list Sys.argv |> List.tl in
  (* Flag validation: a typo'd value dies with a clear message instead of
     an int_of_string backtrace mid-run. *)
  let pos_int flag v =
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "%s expects a positive integer, got %S\n" flag v;
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      cfg := { !cfg with scale = pos_int "--scale" v };
      parse rest
    | "--batch" :: v :: rest ->
      cfg := { !cfg with batch = pos_int "--batch" v };
      parse rest
    | "--pbits" :: v :: rest ->
      cfg := { !cfg with p_bits = pos_int "--pbits" v };
      parse rest
    | "--paper-params" :: rest ->
      cfg := { !cfg with rho = 8; rho_lin = 20; p_bits = 1024 };
      parse rest
    | "--quick" :: rest ->
      cfg := { !cfg with quick = true };
      parse rest
    | "--domains" :: v :: rest ->
      cfg := { !cfg with domains = pos_int "--domains" v };
      parse rest
    | "--qap-backend" :: v :: rest ->
      (match Qapb.backend_of_string v with
      | Some b -> cfg := { !cfg with qap_backend = b }
      | None ->
        Printf.eprintf "--qap-backend expects auto|ntt|lagrange, got %S\n" v;
        exit 2);
      parse rest
    | "--trace" :: v :: rest ->
      trace := Some v;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--json" :: v :: rest ->
      json := v;
      parse rest
    | "--check-model" :: rest ->
      check := true;
      parse rest
    | "--model-band" :: v :: rest ->
      (match String.split_on_char ':' v with
      | [ lo; hi ] -> (
        match (float_of_string_opt lo, float_of_string_opt hi) with
        | Some lo, Some hi when lo > 0.0 && hi > lo -> band := (lo, hi)
        | _ ->
          Printf.eprintf "--model-band expects LO:HI with 0 < LO < HI, got %S\n" v;
          exit 2)
      | _ ->
        Printf.eprintf "--model-band expects LO:HI, got %S\n" v;
        exit 2);
      parse rest
    | "--check-ledger" :: rest ->
      check_ledger_flag := true;
      parse rest
    | "--history" :: v :: rest ->
      history := v;
      parse rest
    | "--trend" :: v :: rest ->
      trend := Some (pos_int "--trend" v);
      parse rest
    | "--baseline" :: v :: rest ->
      baseline := Some v;
      parse rest
    | "--drift" :: v :: rest ->
      (match float_of_string_opt v with
      | Some d when d > 1.0 -> drift := d
      | _ ->
        Printf.eprintf "--drift expects a factor > 1, got %S\n" v;
        exit 2);
      parse rest
    | t :: rest when String.length t > 0 && t.[0] <> '-' ->
      targets := t :: !targets;
      parse rest
    | _ -> usage ()
  in
  parse args;
  (* --trend is a read-only mode: print the history tail and exit. *)
  (match !trend with
  | Some n ->
    print_trend !history n;
    exit 0
  | None -> ());
  let targets = if !targets = [] then [ "all" ] else List.rev !targets in
  let targets = List.concat_map (fun t -> if t = "all" then all_experiments else [ t ]) targets in
  (* The gates need their experiments to have run: --check-model and
     --baseline pull in model, --baseline also pulls in wire and lint,
     --check-ledger and --baseline pull in profile. *)
  let targets =
    let need =
      (if !check || !baseline <> None then [ "model" ] else [])
      @ (if !baseline <> None then [ "wire" ] else [])
      @ (if !baseline <> None then [ "farm" ] else [])
      @ (if !baseline <> None then [ "obs-overhead" ] else [])
      @ (if !baseline <> None then [ "lint" ] else [])
      @ (if !baseline <> None then [ "exec" ] else [])
      @ (if !check_ledger_flag || !baseline <> None then [ "profile" ] else [])
      @ if !check_ledger_flag then [ "alloc" ] else []
    in
    targets @ List.filter (fun t -> not (List.mem t targets)) need
  in
  let cfg = !cfg in
  (* The bench always traces: the JSON summary reports counter and span
     totals, and --trace/--metrics only choose extra output forms. *)
  Zobs.enable ();
  Printf.printf
    "zaatar bench: field = %d bits, rho = %d, rho_lin = %d, group = %d bits, batch = %d, scale = %d, qap = %s\n"
    (Nat.num_bits cfg.field) cfg.rho cfg.rho_lin cfg.p_bits cfg.batch cfg.scale
    (Qapb.backend_to_string cfg.qap_backend);
  let run = function
    | "micro" -> run_micro cfg
    | "bechamel" -> run_bechamel cfg
    | "model" -> run_model cfg
    | "fig4" -> run_fig4 cfg
    | "fig5" -> run_fig5 cfg
    | "fig6" -> run_fig6 cfg
    | "fig7" -> run_fig7 cfg
    | "fig8" -> run_fig8 cfg
    | "fig9" -> run_fig9 cfg
    | "baseline" -> run_baseline cfg
    | "soundness" -> run_soundness cfg
    | "ablation" -> run_ablation cfg
    | "ntt-vs-lagrange" -> run_ntt_vs_lagrange cfg
    | "multiexp" -> run_multiexp cfg
    | "wire" -> run_wire cfg
    | "farm" -> run_farm cfg
    | "obs-overhead" -> run_obs_overhead cfg
    | "lint" -> run_lint cfg
    | "exec" -> run_exec cfg
    | "alloc" -> run_alloc cfg
    | "profile" -> run_profile cfg
    | t ->
      Printf.eprintf "unknown experiment %S\n" t;
      usage ()
  in
  let timed_experiments =
    List.map
      (fun name ->
        let (), wall = time_thunk (fun () -> run name) in
        (name, wall))
      targets
  in
  write_summary cfg !json timed_experiments;
  (* Gated runs leave a history line (config, per-phase seconds, op ledger,
     alloc counts) even when a gate then fails. *)
  if !check || !check_ledger_flag || !baseline <> None then
    append_history cfg !history timed_experiments;
  (match !trace with
  | Some path ->
    Zobs.write_chrome_trace path;
    Printf.printf "wrote %s (chrome trace; load in chrome://tracing or ui.perfetto.dev)\n" path
  | None -> ());
  if !metrics then Format.printf "@.== telemetry ==@.%a" Zobs.report ();
  (* Gates last: the summary, trace and telemetry are already on disk for
     diagnosis when a gate exits non-zero. *)
  if !check then check_model !band;
  if !check_ledger_flag then check_ledger ();
  (match !baseline with Some p -> baseline_diff ~drift:!drift p cfg | None -> ());
  print_newline ()
