(** The linear proof oracle pi = (pi_z, pi_h) (Zaatar, §3/§A.1) — or
    pi = (pi_1, pi_2) for the Ginger baseline (§2.2): a pair of linear
    functions determined by vectors, queried with vectors of matching
    length.

    In the full argument system the verifier never talks to an oracle
    directly — the commitment protocol (lib/commit) forces the prover to
    simulate one. The dishonest constructors below feed the soundness
    test-suite. *)

open Fieldlib

type t = {
  z_len : int;
  h_len : int;
  query_z : Fp.el array -> Fp.el;
  query_h : Fp.el array -> Fp.el;
}

val honest : Fp.ctx -> Fp.el array -> Fp.el array -> t
(** [honest ctx u_z u_h]: the linear functions [<., u_z>] and [<., u_h>]. *)

val wrong_vector : Fp.ctx -> Fp.el array -> Fp.el array -> t
(** A linear oracle for the wrong vector — still linear, caught by the
    divisibility test, not the linearity tests. *)

val nonlinear : Fp.ctx -> t -> t
(** Adds a query-dependent non-linear perturbation to [query_z]; caught by
    the linearity tests (and the commitment's consistency check). *)

val flaky : Fp.ctx -> t -> Chacha.Prg.t -> flake_prob_percent:int -> t
(** Garbles each answer independently with the given probability —
    failure-injection for the argument layer. *)
