(* The linear proof oracle pi = (pi_z, pi_h) (Zaatar, §3/§A.1) or
   pi = (pi_1, pi_2) (Ginger, §2.2): a pair of linear functions determined
   by vectors, queried with vectors of matching length.

   In the full argument system the verifier never talks to an oracle
   directly — the commitment protocol (lib/commit) forces the prover to
   simulate one. This module is the abstraction both layers share, plus the
   dishonest-oracle constructors used by the soundness test suite. *)

open Fieldlib

type t = {
  z_len : int;
  h_len : int;
  query_z : Fp.el array -> Fp.el;
  query_h : Fp.el array -> Fp.el;
}

let check_len name expected (q : Fp.el array) =
  if Array.length q <> expected then
    invalid_arg (Printf.sprintf "Oracle.%s: query length %d, expected %d" name (Array.length q) expected)

(* The honest oracle for a proof vector (u_z, u_h). *)
let honest ctx (u_z : Fp.el array) (u_h : Fp.el array) =
  {
    z_len = Array.length u_z;
    h_len = Array.length u_h;
    query_z =
      (fun q ->
        check_len "query_z" (Array.length u_z) q;
        Fp.dot ctx q u_z);
    query_h =
      (fun q ->
        check_len "query_h" (Array.length u_h) q;
        Fp.dot ctx q u_h);
  }

(* A linear oracle whose z part encodes the wrong vector: commits to
   (z', h) — caught by the divisibility test. *)
let wrong_vector ctx (u_z : Fp.el array) (u_h : Fp.el array) = honest ctx u_z u_h

(* A non-linear oracle: behaves like [inner] except that it adds a
   query-dependent perturbation. Caught by the linearity tests. *)
let nonlinear ctx (inner : t) =
  let poison q =
    (* A deterministic non-linear function of the query: sum of squares. *)
    Array.fold_left (fun acc x -> Fp.add ctx acc (Fp.sqr ctx x)) Fp.zero q
  in
  {
    inner with
    query_z = (fun q -> Fp.add ctx (inner.query_z q) (poison q));
  }

(* An oracle that answers a fixed fraction of queries with garbage. *)
let flaky ctx (inner : t) prg ~flake_prob_percent =
  let maybe_garble v =
    if Chacha.Prg.int_below prg 100 < flake_prob_percent then
      Fp.add ctx v (Chacha.Prg.field_nonzero ctx prg)
    else v
  in
  {
    inner with
    query_z = (fun q -> maybe_garble (inner.query_z q));
    query_h = (fun q -> maybe_garble (inner.query_h q));
  }
