(** The baseline linear PCP of Ginger (§2.2), following Arora et al.: the
    proof vector is u = (z, z (x) z), so |u| = |Z| + |Z|^2 — the quadratic
    blow-up Zaatar removes.

    The verifier draws v in F^{|C|}, forms Q(v, Z) = sum_j v_j g_j(Z) over
    the *bound* constraints of C(X=x, Y=y), writes it as
    <gamma2, Z(x)Z> + <gamma1, Z> + gamma0, and checks
    pi2(gamma2) + pi1(gamma1) + gamma0 = 0 alongside linearity tests and
    the quadratic-correction test pi2(a (x) b) = pi1(a) pi1(b). All
    evaluation queries are self-corrected against blinds.

    This is Figure 3's left column and the baseline of the benches; it is
    run end-to-end only at small scales (the paper itself only estimates it
    at evaluation sizes). *)

open Fieldlib
open Constr

type params = { rho : int; rho_lin : int }

val paper_params : params
val test_params : params

val proof_vector : Fp.ctx -> Fp.el array -> Fp.el array * Fp.el array
(** [(z, z (x) z)], the outer product stored row-major. *)

val outer : Fp.ctx -> Fp.el array -> Fp.el array -> Fp.el array

val circuit_coeffs : Fp.ctx -> Quad.system -> Fp.el array -> Fp.el * Fp.el array * Fp.el array
(** [(gamma0, gamma1, gamma2)] of Q(v, Z) for a bound system. *)

type repetition = {
  lin_1 : (int * int * int) array;
  lin_2 : (int * int * int) array;
  iqa : int;
  iqb : int;
  iqab : int;
  iblind1 : int;
  iblind1' : int;
  iblind2 : int;
  ig1 : int;
  ig2 : int;
  iblind1c : int;
  iblind2c : int;
  gamma0 : Fp.el;
}

type queries = {
  q1 : Fp.el array array; (** to pi1, length |Z| each *)
  q2 : Fp.el array array; (** to pi2, length |Z|^2 each *)
  reps : repetition array;
}

val gen_queries : ?params:params -> Fp.ctx -> Quad.system -> Chacha.Prg.t -> queries
(** The system must be bound (no IO variables); requires rho_lin >= 2 (two
    independent blinds). *)

type responses = { r1 : Fp.el array; r2 : Fp.el array }

val answer : Oracle.t -> queries -> responses
(** The oracle's [query_z]/[query_h] serve as pi1/pi2. *)

type verdict = Accept | Reject_linearity of int | Reject_quad_correction of int | Reject_circuit of int

val decide : Fp.ctx -> queries -> responses -> verdict
val accepts : verdict -> bool

val run : ?params:params -> Fp.ctx -> Quad.system -> Chacha.Prg.t -> Oracle.t -> verdict
