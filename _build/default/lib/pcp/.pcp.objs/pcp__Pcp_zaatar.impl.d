lib/pcp/pcp_zaatar.ml: Array Chacha Constr Fieldlib Fp List Oracle Qap R1cs
