lib/pcp/pcp_zaatar.mli: Chacha Fieldlib Fp Oracle Qap
