lib/pcp/pcp_ginger.mli: Chacha Constr Fieldlib Fp Oracle Quad
