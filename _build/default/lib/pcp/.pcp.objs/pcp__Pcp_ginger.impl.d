lib/pcp/pcp_ginger.ml: Array Chacha Constr Fieldlib Fp Lincomb List Oracle Quad
