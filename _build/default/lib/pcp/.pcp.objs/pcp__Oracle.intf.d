lib/pcp/oracle.mli: Chacha Fieldlib Fp
