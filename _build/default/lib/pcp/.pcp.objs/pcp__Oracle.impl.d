lib/pcp/oracle.ml: Array Chacha Fieldlib Fp Printf
