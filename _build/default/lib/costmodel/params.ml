(* The microbenchmark parameters of Figure 3 / §5.1: per-operation CPU
   costs, measured on *our* substrate exactly as the paper measures them on
   GMP + ElGamal ("we run a program that executes each operation 1000 times
   and report the average").

     e      encrypt a field element (ElGamal, exponent encoding)
     d      decrypt (to the group encoding)
     h      ciphertext add plus multiply (one homomorphic accumulate step)
     f_lazy field multiplication without the final reduction
     f      field multiplication
     f_div  field division (inverse + multiply)
     c      pseudorandomly generate a field element (ChaCha + rejection)

   All values in seconds. *)

open Fieldlib
open Zcrypto

type t = {
  e : float;
  d : float;
  h : float;
  f_lazy : float;
  f : float;
  f_div : float;
  c : float;
  field_bits : int;
  group_bits : int;
}

let time_per iters thunk =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    thunk ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters

let measure ?(iters = 1000) ctx (grp : Group.t) : t =
  let prg = Chacha.Prg.create ~seed:"microbench" () in
  let sk, pk = Elgamal.keygen grp prg in
  let xs = Array.init 64 (fun _ -> Chacha.Prg.field_nonzero ctx prg) in
  let pick =
    let i = ref 0 in
    fun () ->
      i := (!i + 1) land 63;
      xs.(!i)
  in
  let sink = ref Fp.zero in
  let f = time_per iters (fun () -> sink := Fp.mul ctx (pick ()) (pick ())) in
  let f_lazy = time_per iters (fun () -> ignore (Fp.mul_lazy ctx (pick ()) (pick ()))) in
  let f_div = time_per (max 100 (iters / 10)) (fun () -> sink := Fp.div ctx (pick ()) (pick ())) in
  let c = time_per iters (fun () -> sink := Chacha.Prg.field ctx prg) in
  let crypto_iters = max 20 (iters / 50) in
  let e = time_per crypto_iters (fun () -> ignore (Elgamal.encrypt pk prg (pick ()))) in
  let ct = Elgamal.encrypt pk prg (pick ()) in
  let d = time_per crypto_iters (fun () -> ignore (Elgamal.decrypt_to_group sk ct)) in
  let h =
    time_per crypto_iters (fun () -> ignore (Elgamal.hom_add pk ct (Elgamal.hom_scale pk ct (pick ()))))
  in
  ignore !sink;
  {
    e;
    d;
    h;
    f_lazy;
    f;
    f_div;
    c;
    field_bits = Fp.bits ctx;
    group_bits = Nat.num_bits grp.Group.p;
  }

let pp_row fmt (p : t) =
  Format.fprintf fmt "%4d bits | e=%.1fus d=%.1fus h=%.1fus f_lazy=%.0fns f=%.0fns f_div=%.1fus c=%.0fns"
    p.field_bits (p.e *. 1e6) (p.d *. 1e6) (p.h *. 1e6) (p.f_lazy *. 1e9) (p.f *. 1e9)
    (p.f_div *. 1e6) (p.c *. 1e9)
