(** The microbenchmark parameters of Figure 3 / §5.1: per-operation CPU
    costs, measured on this substrate the way the paper measures them on
    GMP + ElGamal ("a program that executes each operation 1000 times").
    All values in seconds. *)

open Fieldlib
open Zcrypto

type t = {
  e : float; (** encrypt a field element *)
  d : float; (** decrypt (to the group encoding) *)
  h : float; (** ciphertext add plus multiply (homomorphic accumulate) *)
  f_lazy : float; (** field multiplication without the final reduction *)
  f : float; (** field multiplication *)
  f_div : float; (** field division *)
  c : float; (** pseudorandom field element (ChaCha + rejection) *)
  field_bits : int;
  group_bits : int;
}

val measure : ?iters:int -> Fp.ctx -> Group.t -> t
val time_per : int -> (unit -> unit) -> float
val pp_row : Format.formatter -> t -> unit
