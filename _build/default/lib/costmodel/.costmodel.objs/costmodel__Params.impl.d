lib/costmodel/params.ml: Array Chacha Elgamal Fieldlib Format Fp Group Nat Unix Zcrypto
