lib/costmodel/model.mli: Params Zlang
