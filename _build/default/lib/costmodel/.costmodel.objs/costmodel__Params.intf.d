lib/costmodel/params.mli: Fieldlib Format Fp Group Zcrypto
