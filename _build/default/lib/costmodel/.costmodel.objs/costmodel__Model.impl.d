lib/costmodel/model.ml: Params Zlang
