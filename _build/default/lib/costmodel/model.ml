(* Figure 3, executable: the closed-form CPU cost model for both Zaatar and
   Ginger, parameterized by the measured microbenchmarks (Params.t) and the
   encoding statistics produced by the compiler.

   The paper uses this model two ways, and so do we:
   (1) to *estimate* Ginger's costs at scales where running it is
       infeasible (|u_ginger| is quadratic; §5.1: "we use estimates, rather
       than empirics, because the computations would be too expensive under
       Ginger");
   (2) to validate Zaatar empirics ("the empirical CPU costs are 5-15%
       larger than the model's predictions").  *)

type sizes = {
  z_ginger : int; (* |Z_ginger| *)
  c_ginger : int; (* |C_ginger| *)
  z_zaatar : int;
  c_zaatar : int;
  k : int; (* additive terms in C_ginger *)
  k2 : int; (* distinct degree-2 terms *)
  n_x : int; (* |x| *)
  n_y : int; (* |y| *)
  t_local : float; (* T: running time of Psi, seconds *)
}

type protocol_params = { rho : int; rho_lin : int }

let log2 x = log (float_of_int (max 2 x)) /. log 2.0

let fi = float_of_int

(* ---- proof vector sizes (first rows of Figure 3) ---- *)

let u_ginger s = s.z_ginger + (s.z_ginger * s.z_ginger)
let u_zaatar s = s.z_zaatar + s.c_zaatar + 1

(* ---- prover ---- *)

type prover_costs = { construct_u : float; issue_responses : float; total_p : float }

let zaatar_prover (p : Params.t) (pp : protocol_params) s =
  let ell' = (6 * pp.rho_lin) + 4 in
  let construct_u =
    s.t_local +. (3.0 *. p.Params.f *. fi s.c_zaatar *. (log2 s.c_zaatar ** 2.0))
  in
  let issue_responses =
    (p.Params.h +. ((fi (pp.rho * ell') +. 1.0) *. p.Params.f)) *. fi (u_zaatar s)
  in
  { construct_u; issue_responses; total_p = construct_u +. issue_responses }

let ginger_prover (p : Params.t) (pp : protocol_params) s =
  let ell = (3 * pp.rho_lin) + 2 in
  let construct_u = s.t_local +. (p.Params.f *. fi (s.z_ginger * s.z_ginger)) in
  let issue_responses =
    (p.Params.h +. ((fi (pp.rho * ell) +. 1.0) *. p.Params.f)) *. fi (u_ginger s)
  in
  { construct_u; issue_responses; total_p = construct_u +. issue_responses }

(* ---- verifier ---- *)

type verifier_costs = {
  specific_per_batch : float; (* computation-specific query construction *)
  oblivious_per_batch : float; (* computation-oblivious query construction *)
  process_per_instance : float;
}

let zaatar_verifier (p : Params.t) (pp : protocol_params) s =
  let ell' = (6 * pp.rho_lin) + 4 in
  let specific =
    fi pp.rho
    *. (p.Params.c
       +. ((p.Params.f_div +. (5.0 *. p.Params.f)) *. fi s.c_zaatar)
       +. (p.Params.f *. fi s.k)
       +. (3.0 *. p.Params.f *. fi s.k2))
  in
  let oblivious =
    (p.Params.e +. (2.0 *. p.Params.c)
    +. (fi pp.rho *. ((2.0 *. fi pp.rho_lin *. p.Params.c) +. (fi ell' *. p.Params.f))))
    *. fi (u_zaatar s)
  in
  let process =
    p.Params.d +. (fi pp.rho *. fi (ell' + (3 * s.n_x) + (3 * s.n_y)) *. p.Params.f)
  in
  { specific_per_batch = specific; oblivious_per_batch = oblivious; process_per_instance = process }

let ginger_verifier (p : Params.t) (pp : protocol_params) s =
  let ell = (3 * pp.rho_lin) + 2 in
  let specific =
    fi pp.rho *. ((p.Params.c *. fi s.c_ginger) +. (p.Params.f *. fi s.k))
  in
  let oblivious =
    (p.Params.e +. (2.0 *. p.Params.c)
    +. (fi pp.rho *. ((2.0 *. fi pp.rho_lin *. p.Params.c) +. (fi (ell + 1) *. p.Params.f))))
    *. fi (u_ginger s)
  in
  let process =
    p.Params.d +. (fi pp.rho *. fi ((2 * ell) + s.n_x + s.n_y) *. p.Params.f)
  in
  { specific_per_batch = specific; oblivious_per_batch = oblivious; process_per_instance = process }

(* ---- break-even batch size (§2.2): the smallest beta at which verifying
   the batch beats executing it locally. ---- *)

let breakeven (v : verifier_costs) ~t_local : int option =
  let setup = v.specific_per_batch +. v.oblivious_per_batch in
  let margin = t_local -. v.process_per_instance in
  if margin <= 0.0 then None else Some (max 1 (int_of_float (ceil (setup /. margin))))

let zaatar_breakeven p pp s = breakeven (zaatar_verifier p pp s) ~t_local:s.t_local
let ginger_breakeven p pp s = breakeven (ginger_verifier p pp s) ~t_local:s.t_local

(* Sizes from a compiled computation plus a measured local time. *)
let sizes_of_stats (st : Zlang.Compile.stats) ~n_x ~n_y ~t_local =
  {
    z_ginger = st.Zlang.Compile.z_ginger;
    c_ginger = st.Zlang.Compile.c_ginger;
    z_zaatar = st.Zlang.Compile.z_zaatar;
    c_zaatar = st.Zlang.Compile.c_zaatar;
    k = st.Zlang.Compile.k;
    k2 = st.Zlang.Compile.k2;
    n_x;
    n_y;
    t_local;
  }
