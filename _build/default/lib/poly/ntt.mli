(** Number-theoretic transform over fields whose multiplicative group has
    high 2-adicity. The paper's field is chosen only for size, so its
    prover uses arbitrary-point algorithms ({!Subproduct}); this module
    implements the modern alternative (roots of unity as interpolation
    points) used by the ablation bench and {!Qap_ntt}. *)

open Fieldlib

type ctx

val create : Fp.ctx -> ctx
(** The field's 2-adicity bounds the largest transform size. *)

val root_of_order : ctx -> int -> Fp.el
(** A primitive 2^log_n-th root of unity; raises [Invalid_argument] beyond
    the field's 2-adicity. *)

val forward : ctx -> Fp.el array -> Fp.el array
(** In natural order; length must be a power of two. *)

val inverse : ctx -> Fp.el array -> Fp.el array

val mul : ctx -> Poly.t -> Poly.t -> Poly.t
(** Polynomial product by pointwise multiplication in the evaluation
    domain. *)

val next_pow2 : int -> int
