(** Dense univariate polynomials over a prime field.

    The QAP prover needs interpolation, multiplication and exact division of
    degree-|C| polynomials (paper §A.3, "operations based on the FFT":
    interpolation [35], polynomial multiplication [21], polynomial
    division). Our M(n) is Karatsuba; division is by Newton iteration on the
    reversed divisor, giving the O(M(n) log n) profile the cost model's
    [3 f |C| log^2 |C|] term abstracts.

    Representation: arrays of coefficients, lowest degree first, canonical
    (no trailing zero coefficients); the zero polynomial is the empty
    array. *)

open Fieldlib

type t = private Fp.el array

val zero : t
val one : t
val of_coeffs : Fp.el array -> t
(** Copies and trims. *)

val coeffs : t -> Fp.el array
(** Fresh copy of the canonical coefficients. *)

val coeff : t -> int -> Fp.el
(** Zero beyond the degree. *)

val constant : Fp.el -> t
val monomial : Fp.el -> int -> t
(** [monomial c k] is [c * x^k]. *)

val x_minus : Fp.ctx -> Fp.el -> t
val degree : t -> int
(** [-1] for the zero polynomial. *)

val is_zero : t -> bool
val equal : t -> t -> bool

val add : Fp.ctx -> t -> t -> t
val sub : Fp.ctx -> t -> t -> t
val neg : Fp.ctx -> t -> t
val scale : Fp.ctx -> Fp.el -> t -> t
val shift : t -> int -> t
(** Multiply by [x^k]. *)

val mul : Fp.ctx -> t -> t -> t
(** Karatsuba above a threshold, schoolbook below. *)

val mul_schoolbook : Fp.ctx -> t -> t -> t
(** Exposed for cross-checking and the ablation bench. *)

val eval : Fp.ctx -> t -> Fp.el -> Fp.el

val derivative : Fp.ctx -> t -> t

val div_rem : Fp.ctx -> t -> t -> t * t
(** Schoolbook long division; raises [Division_by_zero] on zero divisor. *)

val div_rem_fast : Fp.ctx -> t -> t -> t * t
(** Newton-iteration division (reverse, invert mod x^k, multiply). *)

val divide_exact : Fp.ctx -> t -> t -> t
(** Raises [Failure] if the remainder is non-zero — the prover-side guard
    that z really satisfies the constraints (Claim A.1). *)

val inv_mod_xk : Fp.ctx -> t -> int -> t
(** Power-series inverse mod [x^k]; constant term must be non-zero. *)

val random : Fp.ctx -> Chacha.Prg.t -> int -> t
(** Random polynomial of degree at most the given bound. *)

val pp : Fp.ctx -> Format.formatter -> t -> unit
