(* Subproduct trees: fast multipoint evaluation and interpolation over
   arbitrary evaluation points (von zur Gathen & Gerhard, ch. 10). The QAP
   prover interpolates A(t), B(t), C(t) from their values at sigma_0..sigma_n
   (paper §A.3 step 1), and the divisor D(t) is the root of the tree built
   over sigma_1..sigma_n. *)

open Fieldlib

type tree =
  | Leaf of Fp.el (* the point s; polynomial is (x - s) *)
  | Node of Poly.t * tree * tree (* cached product of the leaves below *)

let poly_of ctx = function
  | Leaf s -> Poly.x_minus ctx s
  | Node (p, _, _) -> p

let rec build_range ctx (points : Fp.el array) lo hi =
  (* [lo, hi) non-empty *)
  if hi - lo = 1 then Leaf points.(lo)
  else begin
    let mid = (lo + hi) / 2 in
    let l = build_range ctx points lo mid and r = build_range ctx points mid hi in
    Node (Poly.mul ctx (poly_of ctx l) (poly_of ctx r), l, r)
  end

let build ctx points =
  if Array.length points = 0 then invalid_arg "Subproduct.build: no points";
  build_range ctx points 0 (Array.length points)

let root_poly ctx t = poly_of ctx t

(* Remainder-tree multipoint evaluation. *)
let eval_all ctx (f : Poly.t) tree =
  let out = ref [] in
  let rec go f tree =
    match tree with
    | Leaf s -> out := Poly.eval ctx f s :: !out
    | Node (p, l, r) ->
      let f = if Poly.degree f >= Poly.degree p then snd (Poly.div_rem_fast ctx f p) else f in
      go f l;
      go f r
  in
  go f tree;
  Array.of_list (List.rev !out)

(* Lagrange interpolation through the tree:
   L(x) = sum_i c_i * M(x)/(x - s_i) with c_i = y_i / M'(s_i). *)
let interpolate ctx tree (values : Fp.el array) =
  let m = root_poly ctx tree in
  let m' = Poly.derivative ctx m in
  let denom = eval_all ctx m' tree in
  let denom_inv = Fp.batch_inv ctx denom in
  let n = Array.length values in
  if Array.length denom <> n then invalid_arg "Subproduct.interpolate: arity mismatch";
  let cs = Array.init n (fun i -> Fp.mul ctx values.(i) denom_inv.(i)) in
  let idx = ref 0 in
  let rec combine tree =
    match tree with
    | Leaf _ ->
      let c = cs.(!idx) in
      incr idx;
      Poly.constant c
    | Node (_, l, r) ->
      let pl = poly_of ctx l and pr = poly_of ctx r in
      let cl = combine l in
      let cr = combine r in
      Poly.add ctx (Poly.mul ctx cl pr) (Poly.mul ctx cr pl)
  in
  combine tree

(* Convenience: interpolate the unique polynomial of degree < n through
   (points_i, values_i). *)
let interpolate_points ctx points values =
  interpolate ctx (build ctx points) values

(* Reusable interpolator: the QAP prover interpolates A, B and C over the
   same sigma_0..sigma_|C|, so the tree and the 1/M'(sigma_i) weights are
   computed once. *)
type interpolator = { tree : tree; denom_inv : Fieldlib.Fp.el array }

let prepare ctx points =
  let tree = build ctx points in
  let m' = Poly.derivative ctx (root_poly ctx tree) in
  let denom = eval_all ctx m' tree in
  { tree; denom_inv = Fp.batch_inv ctx denom }

let interpolate_with ctx ip (values : Fp.el array) =
  let n = Array.length values in
  if Array.length ip.denom_inv <> n then invalid_arg "Subproduct.interpolate_with: arity mismatch";
  let cs = Array.init n (fun i -> Fp.mul ctx values.(i) ip.denom_inv.(i)) in
  let idx = ref 0 in
  let rec combine tree =
    match tree with
    | Leaf _ ->
      let c = cs.(!idx) in
      incr idx;
      Poly.constant c
    | Node (_, l, r) ->
      let pl = poly_of ctx l and pr = poly_of ctx r in
      let cl = combine l in
      let cr = combine r in
      Poly.add ctx (Poly.mul ctx cl pr) (Poly.mul ctx cr pl)
  in
  combine ip.tree
