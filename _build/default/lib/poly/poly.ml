open Fieldlib

type t = Fp.el array

let karatsuba_threshold = 32

let trim (a : Fp.el array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && Fp.is_zero a.(!n - 1) do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero : t = [||]
let one : t = [| Fp.one |]
let of_coeffs a = trim (Array.copy a)
let coeffs (p : t) = Array.copy p
let coeff (p : t) i = if i < Array.length p then p.(i) else Fp.zero
let constant c = trim [| c |]

let monomial c k =
  if Fp.is_zero c then zero
  else begin
    let a = Array.make (k + 1) Fp.zero in
    a.(k) <- c;
    a
  end

let x_minus ctx s = trim [| Fp.neg ctx s; Fp.one |]
let degree (p : t) = Array.length p - 1
let is_zero (p : t) = Array.length p = 0

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> Fp.equal x y) a b

let add ctx (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb in
  trim
    (Array.init l (fun i ->
         let x = if i < la then a.(i) else Fp.zero in
         let y = if i < lb then b.(i) else Fp.zero in
         Fp.add ctx x y))

let neg ctx (a : t) : t = Array.map (Fp.neg ctx) a

let sub ctx (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb in
  trim
    (Array.init l (fun i ->
         let x = if i < la then a.(i) else Fp.zero in
         let y = if i < lb then b.(i) else Fp.zero in
         Fp.sub ctx x y))

let scale ctx c (a : t) : t =
  if Fp.is_zero c then zero else trim (Array.map (Fp.mul ctx c) a)

let shift (a : t) k : t =
  if is_zero a then zero
  else begin
    let r = Array.make (Array.length a + k) Fp.zero in
    Array.blit a 0 r k (Array.length a);
    r
  end

let mul_schoolbook ctx (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    (* Accumulate lazily: reduce once per output coefficient. *)
    let r = Array.make (la + lb - 1) Fp.zero in
    for i = 0 to la + lb - 2 do
      let acc = ref Nat.zero in
      let jmin = max 0 (i - lb + 1) and jmax = min (la - 1) i in
      let pending = ref 0 in
      for j = jmin to jmax do
        if not (Fp.is_zero a.(j) || Fp.is_zero b.(i - j)) then begin
          if !pending >= 512 then begin
            acc := Fp.reduce ctx !acc;
            pending := 0
          end;
          acc := Nat.add !acc (Fp.mul_lazy ctx a.(j) b.(i - j));
          incr pending
        end
      done;
      r.(i) <- Fp.reduce ctx !acc
    done;
    trim r
  end

let split (a : t) k : t * t =
  let la = Array.length a in
  if la <= k then (zero, a) else (trim (Array.sub a k (la - k)), trim (Array.sub a 0 k))

let rec mul ctx (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook ctx a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a1, a0 = split a k and b1, b0 = split b k in
    let z2 = mul ctx a1 b1 in
    let z0 = mul ctx a0 b0 in
    let z1 = sub ctx (mul ctx (add ctx a1 a0) (add ctx b1 b0)) (add ctx z2 z0) in
    add ctx (add ctx (shift z2 (2 * k)) (shift z1 k)) z0
  end

let eval ctx (p : t) x =
  let acc = ref Fp.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Fp.add ctx (Fp.mul ctx !acc x) p.(i)
  done;
  !acc

let derivative ctx (p : t) : t =
  if Array.length p <= 1 then zero
  else trim (Array.init (Array.length p - 1) (fun i -> Fp.mul ctx (Fp.of_int ctx (i + 1)) p.(i + 1)))

let div_rem ctx (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  let db = degree b in
  if degree a < db then (zero, a)
  else begin
    let rem = Array.copy (a : t :> Fp.el array) in
    let q = Array.make (degree a - db + 1) Fp.zero in
    let lead_inv = Fp.inv ctx b.(db) in
    for i = degree a - db downto 0 do
      let c = Fp.mul ctx rem.(i + db) lead_inv in
      if not (Fp.is_zero c) then begin
        q.(i) <- c;
        for j = 0 to db do
          rem.(i + j) <- Fp.sub ctx rem.(i + j) (Fp.mul ctx c b.(j))
        done
      end
    done;
    (trim q, trim rem)
  end

let reverse (p : t) n =
  (* Coefficient reversal treating p as having degree exactly n. *)
  trim (Array.init (n + 1) (fun i -> coeff p (n - i)))

let truncate (p : t) k = if Array.length p <= k then p else trim (Array.sub p 0 k)

let inv_mod_xk ctx (f : t) k =
  if is_zero f || Fp.is_zero f.(0) then invalid_arg "Poly.inv_mod_xk: constant term is zero";
  (* Newton iteration: g <- g * (2 - f g) mod x^(2^i). *)
  let g = ref (constant (Fp.inv ctx f.(0))) in
  let prec = ref 1 in
  while !prec < k do
    prec := min (2 * !prec) k;
    let fg = truncate (mul ctx (truncate f !prec) !g) !prec in
    let two_minus = sub ctx (constant (Fp.of_int ctx 2)) fg in
    g := truncate (mul ctx !g two_minus) !prec
  done;
  truncate !g k

let div_rem_fast ctx (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  let da = degree a and db = degree b in
  if da < db then (zero, a)
  else if db = 0 then (scale ctx (Fp.inv ctx b.(0)) a, zero)
  else begin
    let k = da - db + 1 in
    let rev_b = reverse b db in
    let rev_a = reverse a da in
    let inv_rb = inv_mod_xk ctx rev_b k in
    let rev_q = truncate (mul ctx rev_a inv_rb) k in
    let q = reverse rev_q (k - 1) in
    let r = sub ctx a (mul ctx b q) in
    (q, r)
  end

let divide_exact ctx a b =
  let q, r = div_rem_fast ctx a b in
  if not (is_zero r) then failwith "Poly.divide_exact: non-zero remainder";
  q

let random ctx prg deg_bound =
  trim (Array.init (deg_bound + 1) (fun _ -> Chacha.Prg.field ctx prg))

let pp ctx fmt (p : t) =
  ignore ctx;
  if is_zero p then Format.pp_print_string fmt "0"
  else
    Array.iteri
      (fun i c ->
        if not (Fp.is_zero c) then
          Format.fprintf fmt "%s%a*x^%d" (if i > 0 then " + " else "") Fp.pp c i)
      p
