(** Subproduct trees: fast multipoint evaluation and interpolation over
    arbitrary points (von zur Gathen & Gerhard ch. 10) — the engine behind
    the QAP prover's "FFT-based" interpolation (§A.3) when the sigma_j are
    an arbitrary arithmetic progression rather than roots of unity. *)

open Fieldlib

type tree

val build : Fp.ctx -> Fp.el array -> tree
(** Product tree over (x - s_i); points need not be distinct, but
    interpolation requires distinctness. *)

val root_poly : Fp.ctx -> tree -> Poly.t
(** prod_i (x - s_i) — e.g. the divisor D(t) over sigma_1..sigma_|C|. *)

val eval_all : Fp.ctx -> Poly.t -> tree -> Fp.el array
(** Remainder-tree multipoint evaluation, in point order. *)

val interpolate : Fp.ctx -> tree -> Fp.el array -> Poly.t
(** Unique polynomial of degree < n through (s_i, v_i). *)

val interpolate_points : Fp.ctx -> Fp.el array -> Fp.el array -> Poly.t

type interpolator
(** Precomputed tree + barycentric weights 1/M'(s_i); the QAP prover
    interpolates A, B and C over the same points, so this is built once. *)

val prepare : Fp.ctx -> Fp.el array -> interpolator
val interpolate_with : Fp.ctx -> interpolator -> Fp.el array -> Poly.t
