lib/poly/poly.ml: Array Chacha Fieldlib Format Fp Nat
