lib/poly/subproduct.mli: Fieldlib Fp Poly
