lib/poly/subproduct.ml: Array Fieldlib Fp List Poly
