lib/poly/ntt.ml: Array Fieldlib Fp Poly Primes
