lib/poly/ntt.mli: Fieldlib Fp Poly
