lib/poly/poly.mli: Chacha Fieldlib Format Fp
