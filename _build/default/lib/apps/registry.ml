(* The benchmark suite of §5.1-§5.2, with size ladders for the scalability
   experiment (Figure 8: "we double the input size twice"). Default sizes
   are scaled down from the paper's (see DESIGN.md §2 "Scale"); [scale]
   multiplies them back up towards paper scale. *)

let pam ~scale = Pam.app ~m:(3 * scale) ~d:4
let bisection ~scale = Bisection.app ~m:(3 * scale) ~l:4
let apsp ~scale = Apsp.app ~m:(3 * scale)
let fannkuch ~scale = Fannkuch.app ~m:scale ~n:4 ~bound:6
let lcs ~scale = Lcs.app ~m:(4 * scale)

(* One representative size per benchmark (Figures 4, 5, 7, 9). *)
let suite ?(scale = 1) () : App_def.t list =
  [ pam ~scale; bisection ~scale; apsp ~scale; fannkuch ~scale; lcs ~scale ]

(* Three sizes per benchmark, roughly doubling the running time each step
   (Figure 8). *)
let sweep ?(scale = 1) () : (string * App_def.t list) list =
  [
    ("PAM clustering", [ Pam.app ~m:(3 * scale) ~d:4; Pam.app ~m:(4 * scale) ~d:4; Pam.app ~m:(6 * scale) ~d:4 ]);
    ( "root finding by bisection",
      [ Bisection.app ~m:(3 * scale) ~l:4; Bisection.app ~m:(4 * scale) ~l:4; Bisection.app ~m:(6 * scale) ~l:4 ] );
    ("all-pairs shortest path", [ Apsp.app ~m:(3 * scale); Apsp.app ~m:(4 * scale); Apsp.app ~m:(5 * scale) ]);
    ( "Fannkuch benchmark",
      [ Fannkuch.app ~m:scale ~n:4 ~bound:6; Fannkuch.app ~m:(2 * scale) ~n:4 ~bound:6; Fannkuch.app ~m:(4 * scale) ~n:4 ~bound:6 ] );
    ("longest common subsequence", [ Lcs.app ~m:(4 * scale); Lcs.app ~m:(6 * scale); Lcs.app ~m:(8 * scale) ]);
  ]

let by_name name ~scale =
  match name with
  | "pam" -> pam ~scale
  | "bisection" -> bisection ~scale
  | "apsp" -> apsp ~scale
  | "fannkuch" -> fannkuch ~scale
  | "lcs" -> lcs ~scale
  | _ -> invalid_arg (Printf.sprintf "unknown benchmark %S (pam|bisection|apsp|fannkuch|lcs)" name)
