lib/apps/lcs.ml: App_def Array Buffer Chacha Printf
