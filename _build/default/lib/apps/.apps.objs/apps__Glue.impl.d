lib/apps/glue.ml: App_def Argsys Array Constr Fieldlib Fp Printf String Zlang
