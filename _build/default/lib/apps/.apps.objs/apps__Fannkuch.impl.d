lib/apps/fannkuch.ml: App_def Array Buffer Chacha List Printf
