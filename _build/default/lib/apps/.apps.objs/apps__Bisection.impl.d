lib/apps/bisection.ml: App_def Array Buffer Chacha Printf
