lib/apps/app_def.ml: Chacha
