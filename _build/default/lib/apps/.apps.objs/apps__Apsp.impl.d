lib/apps/apsp.ml: App_def Array Buffer Chacha Printf
