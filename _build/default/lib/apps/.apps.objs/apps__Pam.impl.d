lib/apps/pam.ml: App_def Array Buffer Chacha Printf
