lib/apps/registry.ml: App_def Apsp Bisection Fannkuch Lcs Pam Printf
