(* The Fannkuch benchmark (§5.1(d), citing [3]): for each of m input
   permutations of {1..n}, repeatedly reverse the prefix of length p[0]
   until p[0] = 1, counting flips; output the per-permutation counts and
   their maximum.

   The prefix length is data-dependent, so every flip costs n dynamic array
   reads — the "indirect memory accesses produce an excessive number of
   constraints" case of §5.4, on purpose. The flip loop is bounded by
   [bound] in both the circuit and the native reference (identical
   semantics; inputs are generated to terminate within the bound). *)

let source ~m ~n ~bound =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "computation fannkuch(input int8 p[%d], output int32 counts[%d], output int32 maxflips) {\n" (m * n) m;
  pf "  var int32 mx = 0;\n";
  pf "  for qq in 0..%d {\n" m;
  pf "    var int8 t[%d];\n" n;
  pf "    for i in 0..%d { t[i] = p[qq*%d+i]; }\n" n n;
  pf "    var int32 cnt = 0;\n";
  pf "    for s in 0..%d {\n" bound;
  pf "      if (t[0] != 1) {\n";
  pf "        cnt = cnt + 1;\n";
  pf "        var int32 k = t[0];\n";
  pf "        var int8 r[%d];\n" n;
  pf "        for i in 0..%d {\n" n;
  pf "          var int32 idx = k - 1 - i;\n";
  pf "          if (idx < 0) { idx = 0; }\n";
  pf "          if (i < k) { r[i] = t[idx]; } else { r[i] = t[i]; }\n";
  pf "        }\n";
  pf "        for i in 0..%d { t[i] = r[i]; }\n" n;
  pf "      }\n";
  pf "    }\n";
  pf "    counts[qq] = cnt;\n";
  pf "    if (cnt > mx) { mx = cnt; }\n";
  pf "  }\n";
  pf "  maxflips = mx;\n";
  pf "}\n";
  Buffer.contents b

(* Flip count for a single permutation, bounded; mirrors the circuit
   exactly. *)
let flips_bounded ~n ~bound (perm : int array) =
  let t = Array.copy perm in
  let cnt = ref 0 in
  for _ = 1 to bound do
    if t.(0) <> 1 then begin
      incr cnt;
      let k = t.(0) in
      let r =
        Array.init n (fun i ->
            let idx = max 0 (k - 1 - i) in
            if i < k then t.(idx) else t.(i))
      in
      Array.blit r 0 t 0 n
    end
  done;
  !cnt

let native ~m ~n ~bound inputs =
  let counts =
    Array.init m (fun q -> flips_bounded ~n ~bound (Array.sub inputs (q * n) n))
  in
  let mx = Array.fold_left max 0 counts in
  Array.append counts [| mx |]

let gen_inputs ~m ~n prg =
  let perm () =
    let a = Array.init n (fun i -> i + 1) in
    for i = n - 1 downto 1 do
      let j = Chacha.Prg.int_below prg (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    a
  in
  Array.concat (List.init m (fun _ -> perm ()))

let app ~m ~n ~bound : App_def.t =
  {
    App_def.name = "fannkuch";
    display = "Fannkuch benchmark";
    params_desc = Printf.sprintf "m=%d n=%d B=%d" m n bound;
    source = source ~m ~n ~bound;
    num_inputs = m * n;
    gen_inputs = gen_inputs ~m ~n;
    native = native ~m ~n ~bound;
    big_o = "O(m)";
  }
