(* Longest common subsequence (§5.1(e)): the O(m^2) dynamic program over
   two length-m strings, with an equality gadget and a max per cell. *)

let alphabet = 4 (* small alphabet so matches actually occur *)

let source ~m =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "computation lcs(input int8 a[%d], input int8 bb[%d], output int32 len) {\n" m m;
  pf "  var int32 prev[%d];\n" (m + 1);
  pf "  var int32 row[%d];\n" (m + 1);
  pf "  for j in 0..%d { prev[j] = 0; }\n" (m + 1);
  pf "  for i in 0..%d {\n" m;
  pf "    row[0] = 0;\n";
  pf "    for j in 0..%d {\n" m;
  pf "      if (a[i] == bb[j]) { row[j+1] = prev[j] + 1; }\n";
  pf "      else { if (prev[j+1] < row[j]) { row[j+1] = row[j]; } else { row[j+1] = prev[j+1]; } }\n";
  pf "    }\n";
  pf "    for j in 0..%d { prev[j] = row[j]; }\n" (m + 1);
  pf "  }\n";
  pf "  len = prev[%d];\n" m;
  pf "}\n";
  Buffer.contents b

let native ~m inputs =
  let a = Array.sub inputs 0 m and b = Array.sub inputs m m in
  let prev = Array.make (m + 1) 0 in
  let row = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    row.(0) <- 0;
    for j = 0 to m - 1 do
      if a.(i) = b.(j) then row.(j + 1) <- prev.(j) + 1
      else row.(j + 1) <- max prev.(j + 1) row.(j)
    done;
    Array.blit row 0 prev 0 (m + 1)
  done;
  [| prev.(m) |]

let gen_inputs ~m prg = Array.init (2 * m) (fun _ -> 1 + Chacha.Prg.int_below prg alphabet)

let app ~m : App_def.t =
  {
    App_def.name = "lcs";
    display = "longest common subsequence";
    params_desc = Printf.sprintf "m=%d" m;
    source = source ~m;
    num_inputs = 2 * m;
    gen_inputs = gen_inputs ~m;
    native = native ~m;
    big_o = "O(m^2)";
  }
