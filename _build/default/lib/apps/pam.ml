(* Partitioning Around Medoids (PAM) clustering into two groups (§5.1(a)):
   the BUILD phase for k = 2 over m points in d dimensions, O(m^2 d).

   - all-pairs squared Euclidean distances (the m^2 d hot loop);
   - first medoid: the point with minimum total distance;
   - second medoid: the point minimizing the summed min-distance, excluding
     the first medoid (a large constant penalty knocks it out);
   - outputs: both medoid indices and the 0/1 assignment vector.

   Argmin rows are tracked through conditional array updates, so the
   compiled code exercises comparison gadgets and wide mux merges. *)

let penalty = 1 lsl 26

let source ~m ~d =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "computation pam(input int8 x[%d], output int32 med1, output int32 med2, output int32 assign[%d]) {\n" (m * d) m;
  pf "  var int32 dist[%d];\n" (m * m);
  pf "  for i in 0..%d { for j in 0..%d {\n" m m;
  pf "    var int32 acc = 0;\n";
  pf "    for k in 0..%d { acc = acc + (x[i*%d+k] - x[j*%d+k]) * (x[i*%d+k] - x[j*%d+k]); }\n" d d d d d;
  pf "    dist[i*%d+j] = acc;\n" m;
  pf "  } }\n";
  (* first medoid *)
  pf "  var int32 best = 0;\n";
  pf "  var int32 bestcost = 0;\n";
  pf "  var int32 row1[%d];\n" m;
  pf "  for j in 0..%d { bestcost = bestcost + dist[j]; row1[j] = dist[j]; }\n" m;
  pf "  for i in 1..%d {\n" m;
  pf "    var int32 c = 0;\n";
  pf "    for j in 0..%d { c = c + dist[i*%d+j]; }\n" m m;
  pf "    if (c < bestcost) {\n";
  pf "      bestcost = c; best = i;\n";
  pf "      for j in 0..%d { row1[j] = dist[i*%d+j]; }\n" m m;
  pf "    }\n";
  pf "  }\n";
  pf "  med1 = best;\n";
  (* second medoid: min over i of sum_j min(dist[i][j], row1[j]), i != med1 *)
  pf "  var int32 best2 = 0;\n";
  pf "  var int32 bestcost2 = %d;\n" penalty;
  pf "  var int32 row2[%d];\n" m;
  pf "  for j in 0..%d { row2[j] = row1[j]; }\n" m;
  pf "  for i in 0..%d {\n" m;
  pf "    var int32 c = 0;\n";
  pf "    for j in 0..%d {\n" m;
  pf "      if (dist[i*%d+j] < row1[j]) { c = c + dist[i*%d+j]; } else { c = c + row1[j]; }\n" m m;
  pf "    }\n";
  pf "    if (i == best) { c = c + %d; }\n" penalty;
  pf "    if (c < bestcost2) {\n";
  pf "      bestcost2 = c; best2 = i;\n";
  pf "      for j in 0..%d { row2[j] = dist[i*%d+j]; }\n" m m;
  pf "    }\n";
  pf "  }\n";
  pf "  med2 = best2;\n";
  pf "  for j in 0..%d { if (row2[j] < row1[j]) { assign[j] = 1; } else { assign[j] = 0; } }\n" m;
  pf "}\n";
  Buffer.contents b

let native ~m ~d inputs =
  let x i k = inputs.((i * d) + k) in
  let dist = Array.make (m * m) 0 in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      let acc = ref 0 in
      for k = 0 to d - 1 do
        let dd = x i k - x j k in
        acc := !acc + (dd * dd)
      done;
      dist.((i * m) + j) <- !acc
    done
  done;
  let best = ref 0 and bestcost = ref 0 in
  let row1 = Array.make m 0 in
  for j = 0 to m - 1 do
    bestcost := !bestcost + dist.(j);
    row1.(j) <- dist.(j)
  done;
  for i = 1 to m - 1 do
    let c = ref 0 in
    for j = 0 to m - 1 do
      c := !c + dist.((i * m) + j)
    done;
    if !c < !bestcost then begin
      bestcost := !c;
      best := i;
      for j = 0 to m - 1 do
        row1.(j) <- dist.((i * m) + j)
      done
    end
  done;
  let best2 = ref 0 and bestcost2 = ref penalty in
  let row2 = Array.copy row1 in
  for i = 0 to m - 1 do
    let c = ref 0 in
    for j = 0 to m - 1 do
      c := !c + min dist.((i * m) + j) row1.(j)
    done;
    if i = !best then c := !c + penalty;
    if !c < !bestcost2 then begin
      bestcost2 := !c;
      best2 := i;
      for j = 0 to m - 1 do
        row2.(j) <- dist.((i * m) + j)
      done
    end
  done;
  let assign = Array.init m (fun j -> if row2.(j) < row1.(j) then 1 else 0) in
  Array.append [| !best; !best2 |] assign

let app ~m ~d : App_def.t =
  {
    App_def.name = "pam";
    display = "PAM clustering";
    params_desc = Printf.sprintf "m=%d d=%d" m d;
    source = source ~m ~d;
    num_inputs = m * d;
    gen_inputs = (fun prg -> Array.init (m * d) (fun _ -> Chacha.Prg.int_below prg 100));
    native = native ~m ~d;
    big_o = "O(m^2 d)";
  }
