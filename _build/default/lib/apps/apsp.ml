(* Floyd-Warshall all-pairs shortest paths (§5.1(c)): the classic O(m^3)
   triple loop; every relaxation is a comparison gadget plus a mux. *)

let inf = 1 lsl 14 (* "no edge" marker; path sums stay below 2^20 *)

let source ~m =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "computation apsp(input int16 adj[%d], output int32 dst[%d]) {\n" (m * m) (m * m);
  pf "  var int32 d[%d];\n" (m * m);
  pf "  for i in 0..%d { d[i] = adj[i]; }\n" (m * m);
  pf "  for k in 0..%d { for i in 0..%d { for j in 0..%d {\n" m m m;
  pf "    var int32 alt = d[i*%d+k] + d[k*%d+j];\n" m m;
  pf "    if (alt < d[i*%d+j]) { d[i*%d+j] = alt; }\n" m m;
  pf "  } } }\n";
  pf "  for i in 0..%d { dst[i] = d[i]; }\n" (m * m);
  pf "}\n";
  Buffer.contents b

let native ~m inputs =
  let d = Array.copy inputs in
  for k = 0 to m - 1 do
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        let alt = d.((i * m) + k) + d.((k * m) + j) in
        if alt < d.((i * m) + j) then d.((i * m) + j) <- alt
      done
    done
  done;
  d

let gen_inputs ~m prg =
  Array.init (m * m) (fun idx ->
      let i = idx / m and j = idx mod m in
      if i = j then 0
      else if Chacha.Prg.int_below prg 100 < 40 then 1 + Chacha.Prg.int_below prg 100
      else inf)

let app ~m : App_def.t =
  {
    App_def.name = "apsp";
    display = "all-pairs shortest path";
    params_desc = Printf.sprintf "m=%d" m;
    source = source ~m;
    num_inputs = m * m;
    gen_inputs = gen_inputs ~m;
    native = native ~m;
    big_o = "O(m^3)";
  }
