(* Glue between the compiler, the benchmark apps and the argument system:
   compile a ZL source, wrap the Zaatar system as an Argument.computation,
   and convert integer IO to and from field elements. *)

open Fieldlib

let compile ctx (app : App_def.t) : Zlang.Compile.compiled =
  Zlang.Compile.compile ~ctx app.App_def.source

let computation_of (c : Zlang.Compile.compiled) : Argsys.Argument.computation =
  {
    Argsys.Argument.r1cs = Zlang.Compile.zaatar_r1cs c;
    num_inputs = c.Zlang.Compile.num_inputs;
    num_outputs = c.Zlang.Compile.num_outputs;
    solve = c.Zlang.Compile.solve_zaatar;
  }

let field_inputs ctx (ints : int array) = Array.map (Fp.of_int ctx) ints

let int_outputs ctx (els : Fp.el array) =
  Array.map
    (fun e ->
      match Fp.to_signed_int ctx e with
      | Some n -> n
      | None -> failwith "output does not fit a native integer")
    els

(* Compile once and check the compiled circuit against the native reference
   on [trials] random inputs — the differential-testing harness used by the
   test-suite and by `zaatar selftest`. *)
let differential_check ?(trials = 5) ctx (app : App_def.t) prg =
  let c = compile ctx app in
  for _ = 1 to trials do
    let ints = app.App_def.gen_inputs prg in
    let expected = app.App_def.native ints in
    let w = c.Zlang.Compile.solve_zaatar (field_inputs ctx ints) in
    let r1cs = Zlang.Compile.zaatar_r1cs c in
    if not (Constr.R1cs.satisfied ctx r1cs w) then
      failwith (Printf.sprintf "%s: compiled constraints unsatisfied" app.App_def.name);
    let got = int_outputs ctx (Zlang.Compile.outputs_zaatar c w) in
    if got <> expected then
      failwith
        (Printf.sprintf "%s: output mismatch (native %s, circuit %s)" app.App_def.name
           (String.concat "," (Array.to_list (Array.map string_of_int expected)))
           (String.concat "," (Array.to_list (Array.map string_of_int got))))
  done;
  c
