(* Root finding via bisection (§5.1(b)): L bisection iterations, each
   evaluating a dense degree-2 polynomial in m variables at the current
   point of a line x = a + t*b.

   F(t) = sum_ij Q_ij x_i x_j + M*t, with M large enough to make F strictly
   increasing in t over [0, 2^L); the circuit binary-searches the largest t
   with F(t) <= target. Inputs are generated so that target = F(r) for a
   random r, whose recovery is the correctness check.

   This is the paper's near-degenerate case for Zaatar: every iteration
   contributes ~m^2 distinct degree-2 terms but only ~2m fresh variables, so
   K2 is large relative to |Z_ginger| and the Ginger encoding is unusually
   concise (Figure 9's m^2 L vs 2mL; discussed in §4 and §5.2). *)

(* Monotonicity slack: |quad part| <= m^2 * 127 * (127 + 2^L*127)^2; for the
   sizes we run (m <= 16, L <= 10) 2^52 is a safe dominating slope. *)
let m_const = 1 lsl 52

let source ~m ~l =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "computation bisect(input int8 q[%d], input int8 a[%d], input int8 bb[%d], input int64 target, output int64 root) {\n" (m * m) m m;
  pf "  var int64 t = 0;\n";
  for k = l - 1 downto 0 do
    (* Names are suffixed per unrolled iteration (ZL has no bare blocks). *)
    pf "  var int64 tc%d = t + %d;\n" k (1 lsl k);
    pf "  var int64 f%d = %d * tc%d;\n" k m_const k;
    pf "  var int64 xx%d[%d];\n" k m;
    pf "  for i in 0..%d { xx%d[i] = a[i] + tc%d * bb[i]; }\n" m k k;
    pf "  for i in 0..%d { for j in 0..%d { f%d = f%d + q[i*%d+j] * xx%d[i] * xx%d[j]; } }\n" m m k k m k k;
    pf "  if (f%d <= target) { t = tc%d; }\n" k k
  done;
  pf "  root = t;\n";
  pf "}\n";
  Buffer.contents b

let eval_f ~m q a bb t =
  let f = ref (m_const * t) in
  let x = Array.init m (fun i -> a.(i) + (t * bb.(i))) in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      f := !f + (q.((i * m) + j) * x.(i) * x.(j))
    done
  done;
  !f

let native ~m ~l inputs =
  let q = Array.sub inputs 0 (m * m) in
  let a = Array.sub inputs (m * m) m in
  let bb = Array.sub inputs ((m * m) + m) m in
  let target = inputs.((m * m) + (2 * m)) in
  let t = ref 0 in
  for k = l - 1 downto 0 do
    let tc = !t + (1 lsl k) in
    if eval_f ~m q a bb tc <= target then t := tc
  done;
  [| !t |]

let gen_inputs ~m ~l prg =
  let signed range = Chacha.Prg.int_below prg (2 * range) - range in
  let q = Array.init (m * m) (fun _ -> signed 100) in
  let a = Array.init m (fun _ -> signed 100) in
  let bb = Array.init m (fun _ -> signed 100) in
  let r = Chacha.Prg.int_below prg (1 lsl l) in
  let target = eval_f ~m q a bb r in
  Array.concat [ q; a; bb; [| target |] ]

let app ~m ~l : App_def.t =
  {
    App_def.name = "bisection";
    display = "root finding by bisection";
    params_desc = Printf.sprintf "m=%d L=%d" m l;
    source = source ~m ~l;
    num_inputs = (m * m) + (2 * m) + 1;
    gen_inputs = gen_inputs ~m ~l;
    native = native ~m ~l;
    big_o = "O(m^2 L)";
  }
