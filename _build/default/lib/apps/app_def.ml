(* A benchmark computation (§5.1): a size-parameterized ZL source, an input
   generator, and a native OCaml reference implementation. The native code
   is both the differential-testing oracle and the "local execution"
   baseline the evaluation compares against (Figures 5 and 7). *)

type t = {
  name : string; (* e.g. "pam" *)
  display : string; (* e.g. "PAM clustering" *)
  params_desc : string; (* e.g. "m=6 d=4" *)
  source : string; (* ZL program *)
  num_inputs : int;
  gen_inputs : Chacha.Prg.t -> int array;
  native : int array -> int array;
  big_o : string; (* the O(.) column of Figure 9 *)
}

let run_native app prg =
  let inputs = app.gen_inputs prg in
  (inputs, app.native inputs)
