(* ChaCha20 stream cipher core (RFC 7539 / RFC 8439), used as the system's
   pseudorandom generator exactly as in the paper (§5.1, citing [13]).

   Implemented on native ints with explicit 32-bit masking; OCaml ints are 63
   bits so a 32-bit add never overflows before the mask. *)

let mask32 = 0xFFFFFFFF

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let quarter_round st a b c d =
  let open Array in
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7;
  ignore (length st)

let sigma = [| 0x61707865; 0x3320646e; 0x79622d32; 0x6b206574 |]

type key = int array (* 8 words *)
type nonce = int array (* 3 words *)

let word_of_bytes b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let key_of_bytes b =
  if Bytes.length b <> 32 then invalid_arg "Chacha20.key_of_bytes: need 32 bytes";
  Array.init 8 (fun i -> word_of_bytes b (4 * i))

let nonce_of_bytes b =
  if Bytes.length b <> 12 then invalid_arg "Chacha20.nonce_of_bytes: need 12 bytes";
  Array.init 3 (fun i -> word_of_bytes b (4 * i))

let key_of_string s = key_of_bytes (Bytes.of_string s)

(* One 64-byte keystream block for a given 32-bit counter. *)
let block key nonce counter =
  let init = Array.make 16 0 in
  Array.blit sigma 0 init 0 4;
  Array.blit key 0 init 4 8;
  init.(12) <- counter land mask32;
  Array.blit nonce 0 init 13 3;
  let st = Array.copy init in
  for _ = 1 to 10 do
    (* column rounds *)
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    (* diagonal rounds *)
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let w = (st.(i) + init.(i)) land mask32 in
    Bytes.set out (4 * i) (Char.chr (w land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((w lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((w lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr ((w lsr 24) land 0xff))
  done;
  out
