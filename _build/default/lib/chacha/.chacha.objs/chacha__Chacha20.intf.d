lib/chacha/chacha20.mli:
