lib/chacha/chacha20.ml: Array Bytes Char
