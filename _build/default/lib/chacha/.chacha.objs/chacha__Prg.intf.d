lib/chacha/prg.mli: Chacha20 Fieldlib
