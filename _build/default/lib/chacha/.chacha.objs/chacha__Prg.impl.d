lib/chacha/prg.ml: Array Bytes Chacha20 Char Fieldlib String
