(** ChaCha20 stream cipher core (RFC 7539 / RFC 8439): the system's
    pseudorandom generator, exactly as the paper uses ChaCha (§5.1).
    Verified against the RFC keystream test vector in the test-suite. *)

type key = int array (* 8 32-bit words *)
type nonce = int array (* 3 32-bit words *)

val key_of_bytes : bytes -> key
(** Exactly 32 bytes, little-endian words. *)

val key_of_string : string -> key

val nonce_of_bytes : bytes -> nonce
(** Exactly 12 bytes. *)

val block : key -> nonce -> int -> bytes
(** [block key nonce counter] is the 64-byte keystream block for a 32-bit
    block counter. *)
