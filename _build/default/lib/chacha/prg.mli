(** Pseudorandom generator over the ChaCha20 keystream.

    Both parties derive the PCP queries pseudorandomly from a short seed
    ([53, Apdx A.3]); the verifier additionally uses the PRG for its secret
    randomness. A [t] is a buffered keystream position; [split] derives an
    independent stream (fresh nonce) so that sub-protocols cannot consume
    each other's randomness. *)

type t

val create : ?nonce:int -> seed:string -> unit -> t
(** [seed] is hashed/padded to the 32-byte ChaCha key. *)

val of_key : Chacha20.key -> nonce:int -> t

val split : t -> t
(** A fresh, independent stream derived from this one. *)

val bytes : t -> int -> bytes
(** Next [n] keystream bytes. *)

val byte : t -> int
val bits64 : t -> int
(** 62 uniform bits as a non-negative int. *)

val int_below : t -> int -> int
(** Uniform in [0, n), n > 0, by rejection. *)

val bool : t -> bool

val field : Fieldlib.Fp.ctx -> t -> Fieldlib.Fp.el
(** Uniform field element by rejection sampling; the paper's cost [c]. *)

val field_nonzero : Fieldlib.Fp.ctx -> t -> Fieldlib.Fp.el
val field_array : Fieldlib.Fp.ctx -> t -> int -> Fieldlib.Fp.el array
