lib/commit/commit.mli: Chacha Elgamal Fieldlib Fp Group Zcrypto
