lib/commit/commit.ml: Array Chacha Elgamal Fieldlib Fp Group List Zcrypto
