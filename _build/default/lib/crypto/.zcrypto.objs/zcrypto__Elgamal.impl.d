lib/crypto/elgamal.ml: Array Chacha Fieldlib Fp Group Nat
