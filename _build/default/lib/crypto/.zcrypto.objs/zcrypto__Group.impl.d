lib/crypto/group.ml: Chacha Fieldlib Fp Hashtbl Montgomery Nat Primes Printf
