lib/crypto/elgamal.mli: Chacha Fieldlib Fp Group Nat
