lib/crypto/group.mli: Fieldlib Fp Montgomery Nat
