(** Schnorr-group parameters for the commitment's ElGamal encryption (§2.2
    footnote 3; §5.1 uses 1024-bit keys).

    The commitment computes with plaintexts in the exponent, so the
    plaintext space is Z_q for q the subgroup order. Following
    Pepper/Ginger, the PCP field *is* Z_q: [generate] takes the field
    modulus as the subgroup order and searches for a prime
    p = q*m + 1 of the requested size, so exponent arithmetic coincides
    with field arithmetic. *)

open Fieldlib

type t = {
  p : Nat.t; (** group modulus *)
  q : Nat.t; (** subgroup (and PCP field) order *)
  g : Fp.el; (** generator of the order-q subgroup, as a mod-p residue *)
  modp : Fp.ctx;
  mont : Montgomery.ctx; (** exponentiation ladder *)
}

type element = Fp.el

val pow : t -> element -> Nat.t -> element
(** Montgomery-ladder exponentiation (see the ablation bench). *)

val pow_barrett : t -> element -> Nat.t -> element
(** The Barrett-reduction ladder, kept for the ablation. *)

val mul : t -> element -> element -> element
val inv : t -> element -> element
val equal : element -> element -> bool

val generate : ?seed:string -> field_order:Nat.t -> p_bits:int -> unit -> t
(** Deterministic given [seed]; candidates are screened with
    {!Primes.probably_prime} and the final p confirmed with
    {!Primes.is_prime}. *)

val cached : field_order:Nat.t -> p_bits:int -> unit -> t
(** Memoized {!generate}: parameter search costs seconds at 1024 bits. *)
