(* Abstract syntax of ZL, the high-level input language (standing in for
   the SFDL front-end of Ginger's compiler, §5.1). Feature set per §2.2:
   field ops [+ - x], if/then/else, logical tests and connectives, order
   comparisons, equality/inequality, bounded loops, fixed-size arrays with
   arbitrary (data-dependent) index expressions. *)

type typ = { bits : int } (* intN: signed values in (-2^(N-1), 2^(N-1)) *)

type unop = Neg | Not

type binop = Add | Sub | Mul | Shr | Shl | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Decl of typ * string * int option * expr option (* var t name[len] = init *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list (* bounds must be compile-time constants *)

type dir = Input | Output

type param = { pname : string; ptyp : typ; plen : int option; pdir : dir }

type program = { name : string; params : param list; body : stmt list }

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
