(* Recursive-descent parser for ZL.

   computation NAME ( (input|output) intN name [ "[" INT "]" ] , ... ) {
     var intN x = e;  x = e;  a[e] = e;
     if (e) { ... } else { ... }
     for i in e0 .. e1 { ... }      // bounds constant-foldable
   }

   Operator precedence, loosest first: || , && , comparisons , + - , * ,
   unary (- !). *)

open Ast

type st = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect_punct st s =
  match peek st with
  | Lexer.PUNCT p when p = s -> advance st
  | t -> error "expected %S, found %s" s (match t with
      | Lexer.IDENT i -> "identifier " ^ i
      | Lexer.INT n -> string_of_int n
      | Lexer.KW k -> "keyword " ^ k
      | Lexer.PUNCT p -> Printf.sprintf "%S" p
      | Lexer.EOF -> "end of input")

let expect_kw st s =
  match peek st with
  | Lexer.KW k when k = s -> advance st
  | _ -> error "expected keyword %S" s

let expect_ident st =
  match peek st with
  | Lexer.IDENT i ->
    advance st;
    i
  | _ -> error "expected identifier"

let expect_int st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    n
  | _ -> error "expected integer literal"

let parse_type st =
  let name = expect_ident st in
  if String.length name > 3 && String.sub name 0 3 = "int" then begin
    match int_of_string_opt (String.sub name 3 (String.length name - 3)) with
    | Some bits when bits >= 2 && bits <= 64 -> { bits }
    | _ -> error "bad integer type %S (use int2..int64)" name
  end
  else if name = "bool" then { bits = 2 }
  else error "unknown type %S" name

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Lexer.PUNCT "||" ->
    advance st;
    Binop (Or, lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | Lexer.PUNCT "&&" ->
    advance st;
    Binop (And, lhs, parse_and st)
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_shift st in
  match peek st with
  | Lexer.PUNCT (("<" | "<=" | ">" | ">=" | "==" | "!=") as op) ->
    advance st;
    let rhs = parse_shift st in
    let b =
      match op with
      | "<" -> Lt
      | "<=" -> Le
      | ">" -> Gt
      | ">=" -> Ge
      | "==" -> Eq
      | _ -> Ne
    in
    Binop (b, lhs, rhs)
  | _ -> lhs

and parse_shift st =
  let rec go lhs =
    match peek st with
    | Lexer.PUNCT ">>" ->
      advance st;
      go (Binop (Shr, lhs, parse_add st))
    | Lexer.PUNCT "<<" ->
      advance st;
      go (Binop (Shl, lhs, parse_add st))
    | _ -> lhs
  in
  go (parse_add st)

and parse_add st =
  let rec go lhs =
    match peek st with
    | Lexer.PUNCT "+" ->
      advance st;
      go (Binop (Add, lhs, parse_mul st))
    | Lexer.PUNCT "-" ->
      advance st;
      go (Binop (Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Lexer.PUNCT "*" ->
      advance st;
      go (Binop (Mul, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    Unop (Neg, parse_unary st)
  | Lexer.PUNCT "!" ->
    advance st;
    Unop (Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Int n
  | Lexer.KW "true" ->
    advance st;
    Int 1
  | Lexer.KW "false" ->
    advance st;
    Int 0
  | Lexer.IDENT name ->
    advance st;
    (match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      Index (name, idx)
    | _ -> Var name)
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | _ -> error "expected expression"

let rec parse_stmt st : stmt =
  match peek st with
  | Lexer.KW "var" ->
    advance st;
    let t = parse_type st in
    let name = expect_ident st in
    let len =
      match peek st with
      | Lexer.PUNCT "[" ->
        advance st;
        let n = expect_int st in
        expect_punct st "]";
        Some n
      | _ -> None
    in
    let init =
      match peek st with
      | Lexer.PUNCT "=" ->
        advance st;
        Some (parse_expr st)
      | _ -> None
    in
    expect_punct st ";";
    Decl (t, name, len, init)
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_b = parse_block st in
    let else_b =
      match peek st with
      | Lexer.KW "else" ->
        advance st;
        (match peek st with
        | Lexer.KW "if" -> [ parse_stmt st ]
        | _ -> parse_block st)
      | _ -> []
    in
    If (cond, then_b, else_b)
  | Lexer.KW "for" ->
    advance st;
    let v = expect_ident st in
    expect_kw st "in";
    let lo = parse_expr st in
    expect_punct st "..";
    let hi = parse_expr st in
    let body = parse_block st in
    For (v, lo, hi, body)
  | Lexer.IDENT name ->
    advance st;
    (match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      Assign (Lindex (name, idx), e)
    | Lexer.PUNCT "=" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ";";
      Assign (Lvar name, e)
    | _ -> error "expected assignment to %S" name)
  | _ -> error "expected statement"

and parse_block st : stmt list =
  expect_punct st "{";
  let rec go acc =
    match peek st with
    | Lexer.PUNCT "}" ->
      advance st;
      List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

let parse_param st =
  let pdir =
    match peek st with
    | Lexer.KW "input" ->
      advance st;
      Input
    | Lexer.KW "output" ->
      advance st;
      Output
    | _ -> error "expected input or output parameter"
  in
  let ptyp = parse_type st in
  let pname = expect_ident st in
  let plen =
    match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let n = expect_int st in
      expect_punct st "]";
      Some n
    | _ -> None
  in
  { pname; ptyp; plen; pdir }

let parse_program src : program =
  let st = { toks = Lexer.tokenize src } in
  expect_kw st "computation";
  let name = expect_ident st in
  expect_punct st "(";
  let rec params acc =
    match peek st with
    | Lexer.PUNCT ")" ->
      advance st;
      List.rev acc
    | Lexer.PUNCT "," ->
      advance st;
      params acc
    | _ -> params (parse_param st :: acc)
  in
  let params = params [] in
  let body = parse_block st in
  (match peek st with
  | Lexer.EOF -> ()
  | _ -> error "trailing tokens after computation body");
  { name; params; body }
