(* The constraint builder: the back half of the compiler.

   Values are symbolic degree-<=2 polynomials over constraint variables
   (Quad.qpoly), carried together with an integer magnitude bound
   (|v| < 2^width) and a kind (number or boolean). Purely linear arithmetic
   stays symbolic and free; a multiplication of two non-constant values
   forces its operands down to linear combinations (materializing a fresh
   variable and one defining constraint when an operand is already
   quadratic). This reproduces Ginger's encoding behaviour: a dot product
   compiles to a single constraint with many degree-2 terms (large K2),
   which is precisely what the §4 transform then pulls apart.

   Pseudoconstraint gadgets (§2.2, §5.4):
   - order comparisons: O(width) constraints by bit decomposition;
   - == / !=: the inverse trick {qc*m = 1-t, t*qc = 0};
   - data-dependent array access: one-hot indicator muxing, "an excessive
     number of constraints" as the paper warns.

   Every fresh variable carries a witness-generation step, so the prover
   can solve the constraints by a single forward pass (Figure 1, step 2). *)

open Fieldlib
open Constr

type kind = Knum | Kbool

type value = { qp : Quad.qpoly; width : int; kind : kind }

type wstep =
  | W_input of int * int (* var <- inputs.(i) *)
  | W_qpoly of int * Quad.qpoly
  | W_bits of int array * Quad.qpoly (* little-endian bits of a non-negative value *)
  | W_inv_or_zero of int * Quad.qpoly
  | W_is_zero of int * Quad.qpoly

type t = {
  ctx : Fp.ctx;
  mutable next_var : int;
  mutable constraints : Quad.qpoly list; (* reversed *)
  mutable num_constraints : int;
  mutable wsteps : wstep list; (* reversed *)
  mutable input_vars : int list; (* reversed *)
  mutable output_vars : int list; (* reversed *)
  max_width : int;
}

let create ctx =
  {
    ctx;
    next_var = 1;
    constraints = [];
    num_constraints = 0;
    wsteps = [];
    input_vars = [];
    output_vars = [];
    max_width = Fp.bits ctx - 3;
  }

let fresh b =
  let v = b.next_var in
  b.next_var <- v + 1;
  v

let add_constraint b q =
  b.constraints <- q :: b.constraints;
  b.num_constraints <- b.num_constraints + 1

let push_wstep b s = b.wsteps <- s :: b.wsteps

(* ---- value constructors ---- *)

let width_of_int n =
  let n = abs n in
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let const b n =
  {
    qp = Quad.qpoly_of_lincomb (Lincomb.of_const (Fp.of_int b.ctx n));
    width = width_of_int n;
    kind = (if n = 0 || n = 1 then Kbool else Knum);
  }

let of_var _b v ~width ~kind = { qp = Quad.qpoly_of_lincomb (Lincomb.of_var v); width; kind }

let input b ~index ~width =
  let v = fresh b in
  b.input_vars <- v :: b.input_vars;
  push_wstep b (W_input (v, index));
  of_var b v ~width ~kind:Knum

let as_const (v : value) : Fp.el option =
  if Quad.qpoly_is_linear v.qp then Lincomb.as_const v.qp.Quad.lin else None

let as_const_int b (v : value) : int option =
  match as_const v with Some e -> Fp.to_signed_int b.ctx e | None -> None

(* A fresh variable equal to the given polynomial. *)
let materialize_qp b qp ~width ~kind =
  let v = fresh b in
  push_wstep b (W_qpoly (v, qp));
  (* constraint: qp - v = 0 *)
  add_constraint b
    (Quad.qpoly_add b.ctx qp
       (Quad.qpoly_of_lincomb (Lincomb.scale b.ctx (Fp.of_int b.ctx (-1)) (Lincomb.of_var v))));
  of_var b v ~width ~kind

(* Reduce a value to a linear combination, materializing if quadratic. *)
let linearize b (v : value) : Lincomb.t * value =
  if Quad.qpoly_is_linear v.qp then (v.qp.Quad.lin, v)
  else begin
    let v' = materialize_qp b v.qp ~width:v.width ~kind:v.kind in
    (v'.qp.Quad.lin, v')
  end

(* ---- arithmetic ---- *)

let add b x y =
  { qp = Quad.qpoly_add b.ctx x.qp y.qp; width = 1 + max x.width y.width; kind = Knum }

let neg b x =
  { qp = Quad.qpoly_scale b.ctx (Fp.of_int b.ctx (-1)) x.qp; width = x.width; kind = Knum }

let sub b x y = add b x (neg b y)

let check_width b w what =
  if w > b.max_width then
    Ast.error "%s exceeds the field capacity (width %d > max %d); use a larger field" what w b.max_width

let mul b x y =
  match (as_const x, as_const y) with
  | Some c, _ ->
    { qp = Quad.qpoly_scale b.ctx c y.qp; width = x.width + y.width; kind = Knum }
  | _, Some c ->
    { qp = Quad.qpoly_scale b.ctx c x.qp; width = x.width + y.width; kind = Knum }
  | None, None ->
    let lx, _ = linearize b x in
    let ly, _ = linearize b y in
    let w = x.width + y.width in
    check_width b w "product";
    { qp = Quad.qpoly_mul_lin b.ctx lx ly; width = w; kind = Knum }

let assert_zero b (v : value) = add_constraint b v.qp

(* ---- gadgets ---- *)

(* Bit-decompose a non-negative polynomial value < 2^nbits. Returns the bit
   variables, little-endian. Cost: nbits+1 constraints, nbits variables —
   the O(log |F|) expansion of §2.2. *)
let decompose b qp nbits =
  let ctx = b.ctx in
  let bits = Array.init nbits (fun _ -> fresh b) in
  push_wstep b (W_bits (bits, qp));
  Array.iter
    (fun v ->
      (* v^2 - v = 0 *)
      let q =
        Quad.qpoly_add ctx
          (Quad.qpoly_mul_lin ctx (Lincomb.of_var v) (Lincomb.of_var v))
          (Quad.qpoly_of_lincomb (Lincomb.scale ctx (Fp.of_int ctx (-1)) (Lincomb.of_var v)))
      in
      add_constraint b q)
    bits;
  (* sum_i 2^i b_i - value = 0 *)
  let sum =
    Array.to_list bits
    |> List.mapi (fun i v -> (i, v))
    |> List.fold_left
         (fun acc (i, v) -> Lincomb.add_term ctx acc v (Fp.pow_int ctx (Fp.of_int ctx 2) i))
         Lincomb.zero
  in
  let q = Quad.qpoly_add ctx (Quad.qpoly_of_lincomb sum) (Quad.qpoly_scale ctx (Fp.of_int ctx (-1)) qp) in
  add_constraint b q;
  bits

(* ge x y: boolean, 1 iff x >= y (as signed bounded integers). *)
let ge b x y =
  match (as_const_int b x, as_const_int b y) with
  | Some cx, Some cy -> const b (if cx >= cy then 1 else 0)
  | _ ->
    let w = max x.width y.width in
    check_width b (w + 2) "comparison operand";
    (* s = x - y + 2^(w+1) is in (0, 2^(w+2)); its top bit is 1 iff x >= y. *)
    let shift = const b 0 in
    let shift =
      { shift with qp = Quad.qpoly_of_lincomb (Lincomb.of_const (Fp.pow_int b.ctx (Fp.of_int b.ctx 2) (w + 1))) }
    in
    let s = Quad.qpoly_add b.ctx (sub b x y).qp shift.qp in
    let bits = decompose b s (w + 2) in
    of_var b bits.(w + 1) ~width:1 ~kind:Kbool

let bool_not b x =
  match as_const_int b x with
  | Some c -> const b (if c = 0 then 1 else 0)
  | None ->
    {
      qp =
        Quad.qpoly_add b.ctx
          (Quad.qpoly_of_lincomb (Lincomb.of_const Fp.one))
          (Quad.qpoly_scale b.ctx (Fp.of_int b.ctx (-1)) x.qp);
      width = 1;
      kind = Kbool;
    }

let lt b x y = bool_not b (ge b x y)
let le b x y = ge b y x
let gt b x y = bool_not b (ge b y x)

(* is_zero v: the inverse trick. t = 1 iff v = 0, via auxiliary m:
     v * m = 1 - t       t * v = 0
   The prover sets m = v^-1 (or 0) and t = [v = 0]. *)
let is_zero b (x : value) =
  match as_const x with
  | Some c -> const b (if Fp.is_zero c then 1 else 0)
  | None ->
    let ctx = b.ctx in
    let lx, _ = linearize b x in
    let m = fresh b in
    push_wstep b (W_inv_or_zero (m, Quad.qpoly_of_lincomb lx));
    let t = fresh b in
    push_wstep b (W_is_zero (t, Quad.qpoly_of_lincomb lx));
    (* v*m - (1 - t) = 0 *)
    add_constraint b
      (Quad.qpoly_add ctx
         (Quad.qpoly_mul_lin ctx lx (Lincomb.of_var m))
         (Quad.qpoly_of_lincomb
            (Lincomb.add_term ctx (Lincomb.of_const (Fp.of_int ctx (-1))) t Fp.one)));
    (* t*v = 0 *)
    add_constraint b (Quad.qpoly_mul_lin ctx (Lincomb.of_var t) lx);
    of_var b t ~width:1 ~kind:Kbool

let eq b x y = is_zero b (sub b x y)
let ne b x y = bool_not b (eq b x y)

(* Arithmetic right shift by a constant: y = floor(x / 2^k) with floor
   semantics on signed values. This is the truncation gadget that makes
   fixed-point arithmetic expressible (the paper handles rationals by a
   field embedding [54]; we expose explicit binary scaling instead — see
   DESIGN.md substitutions). With s = x + 2^w decomposed into w+1 bits,
   floor(x / 2^k) = sum_{i>=k} 2^{i-k} b_i - 2^{w-k}; for k > w the result
   collapses to the sign: b_w - 1. Costs one bit decomposition. *)
let shr b x k =
  if k < 0 then Ast.error ">> requires a non-negative constant shift";
  if k = 0 then x
  else begin
    let ctx = b.ctx in
    match as_const_int b x with
    | Some c ->
      (* floor division for constants, consistent with the gadget *)
      let q = if c >= 0 then c lsr k else -(((-c) + (1 lsl k) - 1) lsr k) in
      const b q
    | None ->
      let w = x.width in
      check_width b (w + 2) "shift operand";
      let shift_qp =
        Quad.qpoly_of_lincomb (Lincomb.of_const (Fp.pow_int ctx (Fp.of_int ctx 2) w))
      in
      let s = Quad.qpoly_add ctx x.qp shift_qp in
      let bits = decompose b s (w + 1) in
      if k > w then begin
        (* y = b_w - 1 *)
        let lc = Lincomb.add_term ctx (Lincomb.of_const (Fp.of_int ctx (-1))) bits.(w) Fp.one in
        { qp = Quad.qpoly_of_lincomb lc; width = 1; kind = Knum }
      end
      else begin
        let lc = ref (Lincomb.of_const (Fp.neg ctx (Fp.pow_int ctx (Fp.of_int ctx 2) (w - k)))) in
        for i = k to w do
          lc := Lincomb.add_term ctx !lc bits.(i) (Fp.pow_int ctx (Fp.of_int ctx 2) (i - k))
        done;
        { qp = Quad.qpoly_of_lincomb !lc; width = w - k + 1; kind = Knum }
      end
  end

(* Left shift by a constant: exact multiplication by 2^k. *)
let shl b x k =
  if k < 0 then Ast.error "<< requires a non-negative constant shift";
  let c = { (const b 0) with qp = Quad.qpoly_of_lincomb (Lincomb.of_const (Fp.pow_int b.ctx (Fp.of_int b.ctx 2) k)) } in
  let r = mul b x { c with width = k } in
  { r with width = x.width + k }

let require_bool what (v : value) =
  match v.kind with Kbool -> () | Knum -> Ast.error "%s requires a boolean operand" what

let band b x y =
  require_bool "&&" x;
  require_bool "&&" y;
  { (mul b x y) with width = 1; kind = Kbool }

let bor b x y =
  require_bool "||" x;
  require_bool "||" y;
  (* x + y - xy *)
  let xy = mul b x y in
  { (sub b (add b x y) xy) with width = 1; kind = Kbool }

(* mux c a b = c*(a - b) + b; c boolean. Width is the max of the branches
   (the multiplication by a 0/1 value does not grow magnitudes). *)
let mux b c x y =
  require_bool "conditional" c;
  match as_const_int b c with
  | Some 1 -> x
  | Some 0 -> y
  | Some _ -> Ast.error "conditional: non-boolean constant"
  | None ->
    let diff = sub b x y in
    let prod = mul b c diff in
    let r = add b prod y in
    { r with width = max x.width y.width; kind = (if x.kind = Kbool && y.kind = Kbool then Kbool else Knum) }

(* Data-dependent array read: one-hot indicators t_i = [idx = i], the range
   check sum t_i = 1, and the selection sum t_i * elem_i (a single
   constraint with |arr| degree-2 terms — a K2 hot spot, deliberately). *)
let dyn_read b (idx : value) (elems : value array) =
  let ctx = b.ctx in
  let n = Array.length elems in
  if n = 0 then Ast.error "read from empty array";
  let indicators = Array.init n (fun i -> is_zero b (sub b idx (const b i))) in
  (* range check: sum of indicators = 1 *)
  let sum =
    Array.fold_left (fun acc t -> Quad.qpoly_add ctx acc t.qp) Quad.qpoly_zero indicators
  in
  add_constraint b
    (Quad.qpoly_add ctx sum (Quad.qpoly_of_lincomb (Lincomb.of_const (Fp.of_int ctx (-1)))));
  let result = ref (const b 0) in
  let width = Array.fold_left (fun acc e -> max acc e.width) 0 elems in
  Array.iteri
    (fun i t ->
      let term = mul b t elems.(i) in
      result := add b !result term)
    indicators;
  ({ !result with width; kind = Knum }, indicators)

(* Data-dependent array write: arr'_i = mux(t_i, v, arr_i). Shares the
   indicators with a paired read when available. *)
let dyn_write b ?indicators (idx : value) (elems : value array) (v : value) =
  let n = Array.length elems in
  if n = 0 then Ast.error "write to empty array";
  let indicators =
    match indicators with
    | Some ts -> ts
    | None ->
      let ts = Array.init n (fun i -> is_zero b (sub b idx (const b i))) in
      let ctx = b.ctx in
      let sum = Array.fold_left (fun acc t -> Quad.qpoly_add ctx acc t.qp) Quad.qpoly_zero ts in
      add_constraint b
        (Quad.qpoly_add ctx sum (Quad.qpoly_of_lincomb (Lincomb.of_const (Fp.of_int ctx (-1)))));
      ts
  in
  Array.mapi (fun i e -> mux b indicators.(i) v e) elems

(* ---- outputs and finalization ---- *)

let bind_output b (v : value) =
  let ctx = b.ctx in
  let y = fresh b in
  b.output_vars <- y :: b.output_vars;
  push_wstep b (W_qpoly (y, v.qp));
  add_constraint b
    (Quad.qpoly_add ctx v.qp
       (Quad.qpoly_of_lincomb (Lincomb.scale ctx (Fp.of_int ctx (-1)) (Lincomb.of_var y))))

(* Canonicalize variable order to the system convention: Z first (original
   creation order), then inputs, then outputs. Returns the Ginger system
   and the original->canonical permutation. *)
let finalize b : Quad.system * int array =
  let n = b.next_var - 1 in
  let inputs = List.rev b.input_vars and outputs = List.rev b.output_vars in
  let is_io = Array.make (n + 1) false in
  List.iter (fun v -> is_io.(v) <- true) inputs;
  List.iter (fun v -> is_io.(v) <- true) outputs;
  let perm = Array.make (n + 1) 0 in
  let next = ref 1 in
  for v = 1 to n do
    if not is_io.(v) then begin
      perm.(v) <- !next;
      incr next
    end
  done;
  let num_z = !next - 1 in
  List.iter
    (fun v ->
      perm.(v) <- !next;
      incr next)
    (inputs @ outputs);
  let constraints =
    Array.of_list (List.rev_map (Quad.qpoly_map_vars (fun v -> perm.(v))) b.constraints)
  in
  ({ Quad.field = b.ctx; num_vars = n; num_z; constraints }, perm)

(* ---- witness generation ---- *)

exception Unsatisfiable of string

(* Execute the recorded steps over concrete inputs, producing the
   original-order assignment (slot 0 = 1). *)
let solve_original b (inputs : Fp.el array) : Fp.el array =
  let ctx = b.ctx in
  let w = Array.make b.next_var Fp.zero in
  w.(0) <- Fp.one;
  let steps = List.rev b.wsteps in
  List.iter
    (fun step ->
      match step with
      | W_input (v, i) ->
        if i >= Array.length inputs then raise (Unsatisfiable "missing input");
        w.(v) <- inputs.(i)
      | W_qpoly (v, qp) -> w.(v) <- Quad.qpoly_eval ctx qp w
      | W_bits (vars, qp) ->
        let s = Quad.qpoly_eval ctx qp w in
        let nat = Fp.to_nat s in
        if Nat.num_bits nat > Array.length vars then
          raise (Unsatisfiable "bit decomposition out of range (input exceeds declared width?)");
        Array.iteri (fun k v -> w.(v) <- (if Nat.testbit nat k then Fp.one else Fp.zero)) vars
      | W_inv_or_zero (v, qp) ->
        let e = Quad.qpoly_eval ctx qp w in
        w.(v) <- (if Fp.is_zero e then Fp.zero else Fp.inv ctx e)
      | W_is_zero (v, qp) ->
        let e = Quad.qpoly_eval ctx qp w in
        w.(v) <- (if Fp.is_zero e then Fp.one else Fp.zero))
    steps;
  w
