(** The compiler driver: ZL source -> Ginger constraints -> (via the §4
    transform) Zaatar quadratic-form constraints, plus witness solvers for
    both encodings.

    Flattening semantics: loops unroll (constant bounds); conditionals on
    non-constant booleans execute both branches and merge every differing
    binding through a mux gadget; constant conditions select statically;
    constant array indices are free, data-dependent ones use the one-hot
    gadget. *)

open Fieldlib
open Constr

type compiled = {
  name : string;
  ctx : Fp.ctx;
  ginger : Quad.system;
  transform : Transform.t;
  num_inputs : int;
  num_outputs : int;
  solve_ginger : Fp.el array -> Fp.el array;
      (** inputs -> canonical Ginger assignment (Figure 1 step 2); raises
          {!Builder.Unsatisfiable} on out-of-range inputs *)
  solve_zaatar : Fp.el array -> Fp.el array;
}

val compile : ctx:Fp.ctx -> string -> compiled
(** Raises {!Ast.Error} on syntax or semantic errors. *)

val zaatar_r1cs : compiled -> R1cs.system

val outputs_ginger : compiled -> Fp.el array -> Fp.el array
(** Extract the output values from a canonical assignment. *)

val outputs_zaatar : compiled -> Fp.el array -> Fp.el array

(** Encoding-size statistics: the raw material of Figure 9 and the cost
    model. *)
type stats = {
  z_ginger : int;
  c_ginger : int;
  z_zaatar : int;
  c_zaatar : int;
  k : int; (** additive terms K *)
  k2 : int; (** distinct degree-2 terms K2 *)
  u_ginger : int; (** |Z| + |Z|^2 *)
  u_zaatar : int; (** |Z| + |C| + 1 *)
}

val stats : compiled -> stats
