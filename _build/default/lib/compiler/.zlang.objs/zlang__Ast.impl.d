lib/compiler/ast.ml: Printf
