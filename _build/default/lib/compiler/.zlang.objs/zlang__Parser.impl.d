lib/compiler/parser.ml: Ast Lexer List Printf String
