lib/compiler/compile.ml: Array Ast Builder Constr Fieldlib Fp List Map Parser Quad R1cs String Transform
