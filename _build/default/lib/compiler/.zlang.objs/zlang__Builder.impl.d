lib/compiler/builder.ml: Array Ast Constr Fieldlib Fp Lincomb List Nat Quad
