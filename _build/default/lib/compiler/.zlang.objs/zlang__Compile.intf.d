lib/compiler/compile.mli: Constr Fieldlib Fp Quad R1cs Transform
