lib/compiler/lexer.ml: Ast List String
