lib/parallel/pool.ml: Array Atomic Domain Unix
