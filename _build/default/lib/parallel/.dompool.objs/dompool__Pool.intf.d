lib/parallel/pool.mli:
