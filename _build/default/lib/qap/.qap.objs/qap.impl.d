lib/qap/qap.ml: Array Constr Fieldlib Fp Lazy Lincomb List Nat Polylib R1cs
