lib/qap/qap.mli: Constr Fieldlib Fp Lazy Lincomb Polylib R1cs
