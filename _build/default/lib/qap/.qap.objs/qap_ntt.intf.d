lib/qap/qap_ntt.mli: Constr Fieldlib Fp Polylib R1cs
