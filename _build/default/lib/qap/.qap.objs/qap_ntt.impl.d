lib/qap/qap_ntt.ml: Array Constr Fieldlib Fp Lincomb List Polylib R1cs
