(** The QAP encoding of a quadratic-form constraint set (Appendix A.1).

    Fix distinguished points sigma_0 = 0, sigma_j = j (the arithmetic
    progression of §A.3). Define by interpolation degree-|C| polynomials
    with A_i(sigma_j) = a_ij, A_i(0) = 0 (likewise B, C), the divisor
    D(t) = prod_j (t - sigma_j), and

      P(t, W) = (sum_i W_i A_i(t)) (sum_i W_i B_i(t)) - sum_i W_i C_i(t).

    Claim A.1: D(t) divides P_w(t) iff the z part of w satisfies
    C(X=x, Y=y). The prover computes H = P_w / D (interpolate, multiply,
    divide — §A.3); the verifier evaluates every A_i, B_i, C_i and D at a
    random tau through barycentric Lagrange weights. Neither party ever
    materializes P(t, W). *)

open Fieldlib
open Constr

type t = {
  ctx : Fp.ctx;
  sys : R1cs.system;
  nc : int; (** |C| *)
  divisor : Polylib.Poly.t Lazy.t; (** prover side only *)
  interp : Polylib.Subproduct.interpolator Lazy.t; (** prover side only *)
}

exception Tau_collision
(** The random tau hit one of the sigma_j (probability (|C|+1)/|F|); the
    caller resamples. *)

val of_r1cs : R1cs.system -> t
(** Raises [Invalid_argument] if the system is empty or the field has
    fewer than |C|+1 elements (the sigma_j must be distinct). *)

val interpolated_abc : t -> Fp.el array -> Polylib.Poly.t * Polylib.Poly.t * Polylib.Poly.t
(** The polynomials A(t), B(t), C(t) for a full assignment [w]. *)

val pw_poly : t -> Fp.el array -> Polylib.Poly.t
(** P_w(t) = A(t)B(t) - C(t). *)

val prover_h : t -> Fp.el array -> Fp.el array
(** Coefficients of H = P_w / D, padded to length |C|+1. Raises [Failure]
    if [w] does not satisfy the constraints (non-zero remainder). *)

val prover_h_forced : t -> Fp.el array -> Fp.el array
(** What a cheating prover would do with an unsatisfying assignment:
    divide and silently drop the remainder. Used by the adversarial tests
    and the soundness bench. *)

type queries = {
  tau : Fp.el;
  d_tau : Fp.el;
  a_tau : Fp.el array;
      (** evaluations A_i(tau) indexed by variable 0..n; the slice 1..num_z
          is the oracle query q_a, index 0 and the IO indices feed L_a *)
  b_tau : Fp.el array;
  c_tau : Fp.el array;
  qd : Fp.el array; (** (1, tau, ..., tau^{|C|}) *)
}

val queries : t -> tau:Fp.el -> queries
(** Barycentric evaluation of all A_i, B_i, C_i and D at tau, per §A.3:
    factorial-based weights (the two-operation recurrence), batch-inverted
    (tau - sigma_j). Raises {!Tau_collision} if tau lies on a sigma_j. *)

val z_slice : t -> Fp.el array -> Fp.el array
(** The Z-region of an evaluation vector: what is sent to the pi_z
    oracle. *)

val io_contribution : t -> Fp.el array -> Fp.el array -> Fp.el
(** [io_contribution qap evals io] is A'(tau) = A_0(tau) + sum_{i in IO}
    w_i A_i(tau) — three field operations per input/output element
    (§A.3). *)

val eval_rows : Fp.ctx -> (R1cs.constr -> Lincomb.t) -> R1cs.system -> int -> Fp.el array -> Fp.el array
(** Exposed for the test-suite. *)
