lib/argument/argument_ginger.mli: Chacha Constr Fieldlib Fp Metrics Pcp Quad
