lib/argument/metrics.mli: Format
