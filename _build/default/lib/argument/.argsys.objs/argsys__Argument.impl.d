lib/argument/argument.ml: Array Chacha Commitment Constr Fieldlib Fp Group Metrics Pcp Qap R1cs Unix Zcrypto
