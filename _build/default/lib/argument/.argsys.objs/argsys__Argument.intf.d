lib/argument/argument.mli: Chacha Constr Fieldlib Fp Metrics Pcp R1cs
