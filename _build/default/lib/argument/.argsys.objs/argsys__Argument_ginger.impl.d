lib/argument/argument_ginger.ml: Array Chacha Commitment Constr Fieldlib Fp Group Metrics Pcp Quad Unix Zcrypto
