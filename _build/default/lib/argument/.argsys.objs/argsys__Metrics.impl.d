lib/argument/metrics.ml: Format List Unix
