(** Montgomery-form modular arithmetic: the multiplication-heavy
    alternative to {!Fp}'s Barrett reduction, used where long chains of
    multiplications dominate (group exponentiation in the commitment's
    ElGamal, §5.1's e/d/h costs).

    Elements live in Montgomery representation (xR mod p, R = 2^(31k));
    convert at the boundary with {!to_mont}/{!of_mont}. The ablation bench
    compares a Barrett and a Montgomery exponentiation ladder. *)

open Nat

type ctx

type el
(** An element in Montgomery representation. *)

val create : t -> ctx
(** Modulus must be odd and >= 3. *)

val modulus : ctx -> t

val to_mont : ctx -> t -> el
(** Input must be reduced (< p). *)

val of_mont : ctx -> el -> t

val one : ctx -> el
val zero : ctx -> el

val mul : ctx -> el -> el -> el
val sqr : ctx -> el -> el
val add : ctx -> el -> el -> el
val sub : ctx -> el -> el -> el

val pow : ctx -> el -> t -> el
(** Square-and-multiply entirely inside Montgomery form. *)

val pow_nat : ctx -> t -> t -> t
(** [pow_nat ctx b e]: convenience [b^e mod p] over plain naturals
    (converts in and out). *)

val equal : el -> el -> bool
