(** Arbitrary-precision natural numbers.

    The substrate the paper gets from GMP [2]; built from scratch here because
    the container has no bignum library. Values are immutable once returned.
    Representation: little-endian arrays of base-2^31 limbs, canonical (no
    high zero limbs); [zero] is the empty array. All arithmetic stays within
    OCaml's 63-bit native ints: a limb product plus carries is at most
    [2^62 - 1]. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative [n]. Raises [Invalid_argument] on
    negative input. *)

val to_int : t -> int
(** Raises [Failure] if the value exceeds [max_int]. *)

val to_int_opt : t -> int option

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val num_limbs : t -> int
val num_bits : t -> int
(** [num_bits zero = 0]; otherwise the index of the highest set bit plus 1. *)

val testbit : t -> int -> bool
val is_even : t -> bool

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val sub_int : t -> int -> t

val mul : t -> t -> t
(** Schoolbook below [karatsuba_threshold] limbs, Karatsuba above. *)

val mul_int : t -> int -> t
(** Multiplier must lie in [0, 2^31). *)

val sqr : t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = b*q + r] and [0 <= r < b] (Knuth TAOCP
    vol. 2 Algorithm D). Raises [Division_by_zero] if [b] is zero. *)

val divmod_int : t -> int -> t * int
(** Divisor must lie in [1, 2^31). *)

val pow_int : t -> int -> t
(** [pow_int b e] for small exponents; no modular reduction. *)

(* Limb-level helpers used by Barrett reduction. *)

val shift_right_limbs : t -> int -> t
(** Drop the [k] low limbs (divide by [2^(31k)]). *)

val truncate_limbs : t -> int -> t
(** Keep only the [k] low limbs (reduce modulo [2^(31k)]). *)

val of_hex : string -> t
val to_hex : t -> string
val of_decimal : string -> t
val to_decimal : t -> string

val of_bytes_le : bytes -> t
val to_bytes_le : t -> int -> bytes
(** [to_bytes_le n len] zero-pads to exactly [len] bytes; raises
    [Invalid_argument] if [n] does not fit. *)

val pp : Format.formatter -> t -> unit
