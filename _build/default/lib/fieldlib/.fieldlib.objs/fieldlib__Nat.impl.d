lib/fieldlib/nat.ml: Array Buffer Bytes Char Format List Printf Stdlib String
