lib/fieldlib/nat.mli: Format
