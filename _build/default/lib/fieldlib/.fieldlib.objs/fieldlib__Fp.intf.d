lib/fieldlib/fp.mli: Format Nat
