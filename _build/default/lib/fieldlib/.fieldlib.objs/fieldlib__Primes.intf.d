lib/fieldlib/primes.mli: Fp Nat
