lib/fieldlib/montgomery.ml: Nat
