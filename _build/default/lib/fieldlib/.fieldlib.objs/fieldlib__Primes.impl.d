lib/fieldlib/primes.ml: Bytes Char Fp Hashtbl List Nat
