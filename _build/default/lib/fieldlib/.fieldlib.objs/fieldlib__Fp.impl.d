lib/fieldlib/fp.ml: Array Bytes Char Format Nat
