lib/fieldlib/montgomery.mli: Nat
