(* Textual serialization of quadratic-form systems and assignments, so
   compiled computations can be exported, archived and re-verified without
   recompiling (CLI: `zaatar compile --emit ...`).

   Format (line-oriented, hex field elements):

     r1cs v=<num_vars> z=<num_z> c=<num_constraints> p=<modulus-hex>
     # one constraint = three rows
     A <var>:<coef> <var>:<coef> ...
     B ...
     C ...
     ...

     witness n=<len> p=<modulus-hex>
     <el>
     ... *)

open Fieldlib

let row_to_string prefix (lc : Lincomb.t) =
  let b = Buffer.create 64 in
  Buffer.add_string b prefix;
  List.iter
    (fun (v, c) ->
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ':';
      Buffer.add_string b (Nat.to_hex (Fp.to_nat c)))
    (Lincomb.terms lc);
  Buffer.contents b

let system_to_string (sys : R1cs.system) =
  let b = Buffer.create 4096 in
  Printf.bprintf b "r1cs v=%d z=%d c=%d p=%s\n" sys.R1cs.num_vars sys.R1cs.num_z
    (R1cs.num_constraints sys)
    (Nat.to_hex (Fp.modulus sys.R1cs.field));
  Array.iter
    (fun (k : R1cs.constr) ->
      Buffer.add_string b (row_to_string "A" k.R1cs.a);
      Buffer.add_char b '\n';
      Buffer.add_string b (row_to_string "B" k.R1cs.b);
      Buffer.add_char b '\n';
      Buffer.add_string b (row_to_string "C" k.R1cs.c);
      Buffer.add_char b '\n')
    sys.R1cs.constraints;
  Buffer.contents b

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let split_ws s = String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_kv line expected_key =
  match String.split_on_char '=' line with
  | [ k; v ] when k = expected_key -> v
  | _ -> parse_error "expected %s=<value>, got %S" expected_key line

let parse_row ctx prefix line =
  match split_ws line with
  | p :: terms when p = prefix ->
    List.fold_left
      (fun acc term ->
        match String.index_opt term ':' with
        | None -> parse_error "bad term %S" term
        | Some i ->
          let v = int_of_string (String.sub term 0 i) in
          let c = Fp.of_nat ctx (Nat.of_hex (String.sub term (i + 1) (String.length term - i - 1))) in
          Lincomb.add_term ctx acc v c)
      Lincomb.zero terms
  | _ -> parse_error "expected row %S, got %S" prefix line

let system_of_string (s : string) : R1cs.system =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l ->
           let t = String.trim l in
           t <> "" && t.[0] <> '#')
  in
  match lines with
  | [] -> parse_error "empty input"
  | header :: rest ->
    let fields = split_ws header in
    (match fields with
    | [ "r1cs"; v; z; c; p ] ->
      let num_vars = int_of_string (parse_kv v "v") in
      let num_z = int_of_string (parse_kv z "z") in
      let nc = int_of_string (parse_kv c "c") in
      let modulus = Nat.of_hex (parse_kv p "p") in
      let ctx = Fp.create modulus in
      let rest = Array.of_list rest in
      if Array.length rest <> 3 * nc then
        parse_error "expected %d rows, found %d" (3 * nc) (Array.length rest);
      let constraints =
        Array.init nc (fun j ->
            {
              R1cs.a = parse_row ctx "A" rest.(3 * j);
              b = parse_row ctx "B" rest.((3 * j) + 1);
              c = parse_row ctx "C" rest.((3 * j) + 2);
            })
      in
      let sys = { R1cs.field = ctx; num_vars; num_z; constraints } in
      R1cs.check_wellformed sys;
      sys
    | _ -> parse_error "bad header %S" header)

let assignment_to_string ctx (w : Fp.el array) =
  let b = Buffer.create 1024 in
  Printf.bprintf b "witness n=%d p=%s\n" (Array.length w) (Nat.to_hex (Fp.modulus ctx));
  Array.iter
    (fun e ->
      Buffer.add_string b (Nat.to_hex (Fp.to_nat e));
      Buffer.add_char b '\n')
    w;
  Buffer.contents b

let assignment_of_string (s : string) : Fp.ctx * Fp.el array =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> parse_error "empty witness"
  | header :: rest ->
    (match split_ws header with
    | [ "witness"; n; p ] ->
      let len = int_of_string (parse_kv n "n") in
      let ctx = Fp.create (Nat.of_hex (parse_kv p "p")) in
      if List.length rest <> len then parse_error "expected %d elements" len;
      (ctx, Array.of_list (List.map (fun l -> Fp.of_nat ctx (Nat.of_hex (String.trim l))) rest))
    | _ -> parse_error "bad witness header %S" header)
