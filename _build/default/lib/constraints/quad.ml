(* Ginger's constraint formalism (§2.2): degree-2 polynomials over F set to
   zero. Each constraint is a sum of degree-2 monomials, a linear
   combination, and a constant. Monomial keys (i, j) are normalized with
   i <= j and i, j >= 1 (the constant-one variable never appears inside a
   quadratic monomial). *)

open Fieldlib

module MMap = Map.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

type qpoly = {
  lin : Lincomb.t; (* includes the constant via variable 0 *)
  quad : Fp.el MMap.t;
}

type system = {
  field : Fp.ctx;
  num_vars : int; (* n: total variables, excluding the constant w0 *)
  num_z : int; (* n': unbound variables; IO variables are n'+1 .. n *)
  constraints : qpoly array;
}

let qpoly_zero = { lin = Lincomb.zero; quad = MMap.empty }

let norm_key i j = if i <= j then (i, j) else (j, i)

let quad_add_term ctx q (i, j) c =
  if Fp.is_zero c then q
  else begin
    if i < 1 || j < 1 then invalid_arg "Quad: monomial with constant variable";
    MMap.update (norm_key i j)
      (function
        | None -> Some c
        | Some c0 ->
          let s = Fp.add ctx c0 c in
          if Fp.is_zero s then None else Some s)
      q
  end

let qpoly_add ctx a b =
  {
    lin = Lincomb.add ctx a.lin b.lin;
    quad = MMap.fold (fun k c acc -> quad_add_term ctx acc k c) b.quad a.quad;
  }

let qpoly_scale ctx c a =
  if Fp.is_zero c then qpoly_zero
  else { lin = Lincomb.scale ctx c a.lin; quad = MMap.map (Fp.mul ctx c) a.quad }

let qpoly_neg ctx a = qpoly_scale ctx (Fp.neg ctx Fp.one) a
let qpoly_sub ctx a b = qpoly_add ctx a (qpoly_neg ctx b)
let qpoly_of_lincomb lc = { lin = lc; quad = MMap.empty }
let qpoly_is_linear q = MMap.is_empty q.quad

(* Product of two linear combinations, expanded to monomials. Degree > 2 is
   impossible here by typing; the compiler materializes variables before
   multiplying anything quadratic. *)
let qpoly_mul_lin ctx (a : Lincomb.t) (b : Lincomb.t) =
  let acc = ref qpoly_zero in
  List.iter
    (fun (va, ca) ->
      List.iter
        (fun (vb, cb) ->
          let c = Fp.mul ctx ca cb in
          if va = 0 && vb = 0 then
            acc := { !acc with lin = Lincomb.add_term ctx !acc.lin 0 c }
          else if va = 0 then acc := { !acc with lin = Lincomb.add_term ctx !acc.lin vb c }
          else if vb = 0 then acc := { !acc with lin = Lincomb.add_term ctx !acc.lin va c }
          else acc := { !acc with quad = quad_add_term ctx !acc.quad (va, vb) c })
        (Lincomb.terms b))
    (Lincomb.terms a);
  !acc

let qpoly_eval ctx q (w : Fp.el array) =
  let lin = Lincomb.eval ctx q.lin w in
  MMap.fold
    (fun (i, j) c acc -> Fp.add ctx acc (Fp.mul ctx c (Fp.mul ctx w.(i) w.(j))))
    q.quad lin

let satisfied ctx sys (w : Fp.el array) =
  if Array.length w <> sys.num_vars + 1 then invalid_arg "Quad.satisfied: bad assignment length";
  if not (Fp.equal w.(0) Fp.one) then invalid_arg "Quad.satisfied: w0 must be 1";
  Array.for_all (fun q -> Fp.is_zero (qpoly_eval ctx q w)) sys.constraints

let first_violation ctx sys (w : Fp.el array) =
  let n = Array.length sys.constraints in
  let rec go j =
    if j >= n then None
    else if Fp.is_zero (qpoly_eval ctx sys.constraints.(j) w) then go (j + 1)
    else Some j
  in
  go 0

(* Statistics used throughout §4's cost analysis. *)

let num_constraints sys = Array.length sys.constraints

(* K: total number of additive terms across all constraints. *)
let additive_terms sys =
  Array.fold_left
    (fun acc q -> acc + Lincomb.num_terms q.lin + MMap.cardinal q.quad)
    0 sys.constraints

(* K2: number of *distinct* degree-2 monomials appearing anywhere in the
   system (§4: |Z_zaatar| = |Z_ginger| + K2). *)
let distinct_quadratic_terms sys =
  let seen = ref MMap.empty in
  Array.iter
    (fun q -> MMap.iter (fun k _ -> seen := MMap.add k () !seen) q.quad)
    sys.constraints;
  MMap.cardinal !seen

let qpoly_map_vars f q =
  {
    lin = Lincomb.map_vars (fun v -> if v = 0 then 0 else f v) q.lin;
    quad =
      MMap.fold (fun (i, j) c acc -> MMap.add (norm_key (f i) (f j)) c acc) q.quad MMap.empty;
  }

let qpoly_equal a b = Lincomb.equal a.lin b.lin && MMap.equal Fp.equal a.quad b.quad

(* Bind the input/output variables to concrete values, producing the system
   C(X=x, Y=y) over the unbound variables Z only (§2.1). IO variables are
   num_z+1 .. num_vars; [io] lists their values in order. *)
let bind_io ctx sys (io : Fp.el array) =
  if Array.length io <> sys.num_vars - sys.num_z then invalid_arg "Quad.bind_io: bad io length";
  let value v = io.(v - sys.num_z - 1) in
  let is_io v = v > sys.num_z in
  let bind_lc lc =
    List.fold_left
      (fun acc (v, c) ->
        if v <> 0 && is_io v then Lincomb.add_term ctx acc 0 (Fp.mul ctx c (value v))
        else Lincomb.add_term ctx acc v c)
      Lincomb.zero (Lincomb.terms lc)
  in
  let bind_qpoly q =
    let base = { lin = bind_lc q.lin; quad = MMap.empty } in
    MMap.fold
      (fun (i, j) c acc ->
        match (is_io i, is_io j) with
        | false, false -> { acc with quad = quad_add_term ctx acc.quad (i, j) c }
        | false, true -> { acc with lin = Lincomb.add_term ctx acc.lin i (Fp.mul ctx c (value j)) }
        | true, false -> { acc with lin = Lincomb.add_term ctx acc.lin j (Fp.mul ctx c (value i)) }
        | true, true ->
          { acc with lin = Lincomb.add_term ctx acc.lin 0 (Fp.mul ctx c (Fp.mul ctx (value i) (value j))) })
      q.quad base
  in
  {
    field = ctx;
    num_vars = sys.num_z;
    num_z = sys.num_z;
    constraints = Array.map bind_qpoly sys.constraints;
  }

let distinct_quadratic_monomials sys =
  let seen = ref MMap.empty in
  Array.iter
    (fun q -> MMap.iter (fun k _ -> seen := MMap.add k () !seen) q.quad)
    sys.constraints;
  List.map fst (MMap.bindings !seen)
