(** Ginger's constraint formalism (paper §2.2): degree-2 polynomials over a
    finite field, each set to zero. A system additionally distinguishes the
    input/output variables (the X, Y of §2.1) from the unbound variables Z.

    Monomial keys [(i, j)] are normalized with [i <= j] and [i, j >= 1]:
    the constant-one variable never appears inside a quadratic monomial. *)

open Fieldlib

module MMap : Map.S with type key = int * int

type qpoly = {
  lin : Lincomb.t; (** linear part, constant included via variable 0 *)
  quad : Fp.el MMap.t; (** degree-2 monomials *)
}

type system = {
  field : Fp.ctx;
  num_vars : int; (** n: total variables, excluding the constant w0 *)
  num_z : int; (** n': unbound variables; IO variables are n'+1 .. n *)
  constraints : qpoly array;
}

val qpoly_zero : qpoly
val qpoly_add : Fp.ctx -> qpoly -> qpoly -> qpoly
val qpoly_scale : Fp.ctx -> Fp.el -> qpoly -> qpoly
val qpoly_neg : Fp.ctx -> qpoly -> qpoly
val qpoly_sub : Fp.ctx -> qpoly -> qpoly -> qpoly
val qpoly_of_lincomb : Lincomb.t -> qpoly
val qpoly_is_linear : qpoly -> bool

val quad_add_term : Fp.ctx -> Fp.el MMap.t -> int * int -> Fp.el -> Fp.el MMap.t

val qpoly_mul_lin : Fp.ctx -> Lincomb.t -> Lincomb.t -> qpoly
(** Product of two linear combinations, expanded to monomials. *)

val qpoly_eval : Fp.ctx -> qpoly -> Fp.el array -> Fp.el
val qpoly_map_vars : (int -> int) -> qpoly -> qpoly
val qpoly_equal : qpoly -> qpoly -> bool

val satisfied : Fp.ctx -> system -> Fp.el array -> bool
(** Does the assignment (slot 0 = 1) satisfy every constraint? *)

val first_violation : Fp.ctx -> system -> Fp.el array -> int option

val bind_io : Fp.ctx -> system -> Fp.el array -> system
(** [bind_io ctx sys io] substitutes concrete values for the IO variables,
    producing the system C(X=x, Y=y) over Z only (§2.1). *)

val num_constraints : system -> int

val additive_terms : system -> int
(** K: total number of additive terms across all constraints (Figure 3). *)

val distinct_quadratic_terms : system -> int
(** K2: distinct degree-2 monomials appearing anywhere in the system;
    the pivot of the §4 cost comparison. *)

val distinct_quadratic_monomials : system -> (int * int) list
