(* Sparse linear combinations over constraint variables.

   Variable indexing convention used across the whole system: index 0 is the
   constant-one pseudo-variable w_0 (Appendix A.1), real variables are
   1..n. An assignment is an array of length n+1 whose slot 0 holds 1. *)

open Fieldlib

module IMap = Map.Make (Int)

type t = Fp.el IMap.t
(* No zero coefficients stored. The constant term is the coefficient of
   variable 0. *)

let zero : t = IMap.empty
let is_zero (t : t) = IMap.is_empty t

let of_var v = IMap.singleton v Fp.one
let of_const c = if Fp.is_zero c then IMap.empty else IMap.singleton 0 c
let const_part (t : t) = match IMap.find_opt 0 t with Some c -> c | None -> Fp.zero

let coeff (t : t) v = match IMap.find_opt v t with Some c -> c | None -> Fp.zero

let add_term ctx (t : t) v c =
  if Fp.is_zero c then t
  else
    IMap.update v
      (function
        | None -> Some c
        | Some c0 ->
          let s = Fp.add ctx c0 c in
          if Fp.is_zero s then None else Some s)
      t

let add ctx (a : t) (b : t) : t = IMap.fold (fun v c acc -> add_term ctx acc v c) b a

let scale ctx c (a : t) : t =
  if Fp.is_zero c then zero else IMap.map (fun x -> Fp.mul ctx c x) a

let neg ctx (a : t) : t = IMap.map (Fp.neg ctx) a
let sub ctx (a : t) (b : t) : t = add ctx a (neg ctx b)

let is_const (t : t) = IMap.for_all (fun v _ -> v = 0) t

let as_const (t : t) = if is_const t then Some (const_part t) else None

let terms (t : t) = IMap.bindings t
(* Sorted by variable index; includes the index-0 constant if present. *)

let num_terms (t : t) = IMap.cardinal t

let eval ctx (t : t) (w : Fp.el array) =
  IMap.fold (fun v c acc -> Fp.add ctx acc (Fp.mul ctx c w.(v))) t Fp.zero

let map_vars f (t : t) : t =
  IMap.fold (fun v c acc -> IMap.add (f v) c acc) t IMap.empty

let max_var (t : t) = IMap.fold (fun v _ acc -> max v acc) t 0

let equal (a : t) (b : t) = IMap.equal Fp.equal a b

let pp fmt (t : t) =
  if is_zero t then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    IMap.iter
      (fun v c ->
        if not !first then Format.pp_print_string fmt " + ";
        first := false;
        if v = 0 then Fp.pp fmt c else Format.fprintf fmt "%a*w%d" Fp.pp c v)
      t
  end
