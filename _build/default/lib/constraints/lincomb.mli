(** Sparse linear combinations over constraint variables.

    Variable indexing convention used across the whole system: index [0] is
    the constant-one pseudo-variable w_0 (Appendix A.1); real variables are
    [1..n]. An assignment is an array of length [n+1] whose slot 0 holds
    [1], so evaluation is a sparse dot product against it. *)

open Fieldlib

type t

val zero : t
val is_zero : t -> bool

val of_var : int -> t
(** The combination [1 * w_v]. *)

val of_const : Fp.el -> t
(** A constant, stored as a coefficient of variable 0. *)

val const_part : t -> Fp.el
val coeff : t -> int -> Fp.el

val add_term : Fp.ctx -> t -> int -> Fp.el -> t
(** [add_term ctx t v c] adds [c * w_v]; cancelled terms are dropped so the
    representation stays canonical. *)

val add : Fp.ctx -> t -> t -> t
val scale : Fp.ctx -> Fp.el -> t -> t
val neg : Fp.ctx -> t -> t
val sub : Fp.ctx -> t -> t -> t

val is_const : t -> bool
val as_const : t -> Fp.el option

val terms : t -> (int * Fp.el) list
(** Sorted by variable index; includes the index-0 constant if present. *)

val num_terms : t -> int

val eval : Fp.ctx -> t -> Fp.el array -> Fp.el
(** Evaluate under an assignment (slot 0 must hold 1). *)

val map_vars : (int -> int) -> t -> t
(** Renumber variables; the mapping must be injective on the support. *)

val max_var : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
