lib/constraints/serialize.mli: Fieldlib Fp R1cs
