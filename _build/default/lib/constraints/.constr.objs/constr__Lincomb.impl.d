lib/constraints/lincomb.ml: Array Fieldlib Format Fp Int Map
