lib/constraints/transform.mli: Fieldlib Fp Quad R1cs
