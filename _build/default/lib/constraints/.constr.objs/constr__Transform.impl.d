lib/constraints/transform.ml: Array Fieldlib Fp Hashtbl Lincomb Quad R1cs
