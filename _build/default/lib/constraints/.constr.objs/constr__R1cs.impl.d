lib/constraints/r1cs.ml: Array Fieldlib Fp Lincomb List
