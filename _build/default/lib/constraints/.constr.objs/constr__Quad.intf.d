lib/constraints/quad.mli: Fieldlib Fp Lincomb Map
