lib/constraints/quad.ml: Array Fieldlib Fp Lincomb List Map Stdlib
