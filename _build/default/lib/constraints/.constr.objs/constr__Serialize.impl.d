lib/constraints/serialize.ml: Array Buffer Fieldlib Fp Lincomb List Nat Printf R1cs String
