lib/constraints/lincomb.mli: Fieldlib Format Fp
