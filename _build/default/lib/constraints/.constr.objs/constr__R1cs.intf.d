lib/constraints/r1cs.mli: Fieldlib Fp Lincomb
