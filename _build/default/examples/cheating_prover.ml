(* What the verifier's tests actually catch: run the same batch against the
   gallery of cheating provers from the adversarial suite and show which
   test fires (linearity, divisibility correction, or the commitment's
   consistency check).

     dune exec examples/cheating_prover.exe *)

open Fieldlib

let source =
  {|
computation payroll(input int32 hours[4], input int32 rate, output int32 total) {
  var int32 acc = 0;
  for i in 0..4 {
    var int32 h = hours[i];
    if (h > 40) { h = 40 + (h - 40) * 2; }   // overtime at double pay
    acc = acc + h * rate;
  }
  total = acc;
}
|}

let describe (inst : Argsys.Argument.instance_result) =
  if inst.Argsys.Argument.accepted then "ACCEPTED"
  else if not inst.Argsys.Argument.commit_ok then "rejected: commitment consistency check"
  else
    match inst.Argsys.Argument.pcp_verdict with
    | Pcp.Pcp_zaatar.Accept -> "rejected: (commitment only)"
    | Pcp.Pcp_zaatar.Reject_linearity k -> Printf.sprintf "rejected: linearity test (repetition %d)" k
    | Pcp.Pcp_zaatar.Reject_divisibility k ->
      Printf.sprintf "rejected: divisibility correction test (repetition %d)" k

let () =
  let ctx = Fp.create Primes.p127 in
  let compiled = Zlang.Compile.compile ~ctx source in
  let comp = Apps.Glue.computation_of compiled in
  Printf.printf "== A gallery of cheating provers ==\n\n";
  Printf.printf "computation: weekly payroll with overtime (4 employees)\n\n";
  let strategies =
    [
      (Argsys.Argument.Honest, "honest prover");
      (Argsys.Argument.Wrong_output, "claims a wrong total");
      (Argsys.Argument.Corrupt_witness, "corrupts the satisfying assignment");
      (Argsys.Argument.Corrupt_h, "corrupts the quotient polynomial H");
      (Argsys.Argument.Equivocate, "answers queries from a different proof than committed");
      (Argsys.Argument.Nonlinear, "simulates a non-linear proof oracle");
    ]
  in
  let ok = ref true in
  List.iter
    (fun (strategy, label) ->
      let prg = Chacha.Prg.create ~seed:("cheat " ^ label) () in
      let inputs = [| Apps.Glue.field_inputs ctx [| 38; 45; 40; 52; 31 |] |] in
      let config =
        {
          Argsys.Argument.test_config with
          Argsys.Argument.strategy;
          params = { Pcp.Pcp_zaatar.rho = 2; rho_lin = 5 };
        }
      in
      let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
      let inst = result.Argsys.Argument.instances.(0) in
      Printf.printf "%-55s %s\n" label (describe inst);
      let should_accept = strategy = Argsys.Argument.Honest in
      if inst.Argsys.Argument.accepted <> should_accept then ok := false)
    strategies;
  print_newline ();
  if !ok then print_endline "Every cheat was caught; the honest prover was accepted."
  else begin
    print_endline "UNEXPECTED verdict above!";
    exit 1
  end
