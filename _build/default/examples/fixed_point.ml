(* Verified fixed-point computation: an exponential moving average over a
   Q8.8 price series.

     dune exec examples/fixed_point.exe

   The paper's benchmarks (b) and (c) take rational-number inputs, which
   Ginger's compiler supports through a field embedding [54]; this
   reproduction exposes explicit binary scaling instead (DESIGN.md,
   substitutions). The `>>` operator compiles to the truncation gadget: a
   bit decomposition proving y = floor(x / 2^k), so the server cannot fudge
   the rounding. *)

open Fieldlib

let n = 8 (* series length *)
let fbits = 8 (* Q8.8 *)

let source =
  Printf.sprintf
    {|
computation ema(input int16 price[%d], input int16 alpha, output int32 smooth[%d]) {
  // smooth[t] = (alpha * price[t] + (256 - alpha) * smooth[t-1]) >> %d
  var int32 s = price[0];
  smooth[0] = s;
  for t in 1..%d {
    s = (alpha * price[t] + (256 - alpha) * s) >> %d;
    smooth[t] = s;
  }
}
|}
    n n fbits n fbits

let to_q88 x = int_of_float (x *. 256.0)
let of_q88 v = float_of_int v /. 256.0

let () =
  let ctx = Fp.create Primes.p127 in
  Printf.printf "== Verified fixed-point EMA (Q8.8, alpha = 0.25) ==\n\n";
  let compiled = Zlang.Compile.compile ~ctx source in
  let stats = Zlang.Compile.stats compiled in
  Printf.printf "constraints: %d Zaatar (each >> costs one bit decomposition)\n\n"
    stats.Zlang.Compile.c_zaatar;
  let prices = [| 101.5; 102.25; 101.75; 103.0; 104.5; 104.0; 105.25; 106.0 |] in
  let alpha = to_q88 0.25 in
  let raw = Array.append (Array.map to_q88 prices) [| alpha |] in
  let comp = Apps.Glue.computation_of compiled in
  let prg = Chacha.Prg.create ~seed:"fixed point example" () in
  let config =
    { Argsys.Argument.test_config with Argsys.Argument.params = { Pcp.Pcp_zaatar.rho = 2; rho_lin = 5 } }
  in
  let result =
    Argsys.Argument.run_batch ~config comp ~prg ~inputs:[| Apps.Glue.field_inputs ctx raw |]
  in
  let inst = result.Argsys.Argument.instances.(0) in
  if not inst.Argsys.Argument.accepted then begin
    print_endline "verification failed!";
    exit 1
  end;
  let out = Apps.Glue.int_outputs ctx inst.Argsys.Argument.claimed_output in
  Printf.printf "%-8s %10s %14s\n" "t" "price" "EMA (verified)";
  Array.iteri
    (fun t p -> Printf.printf "%-8d %10.2f %14.4f\n" t p (of_q88 out.(t)))
    prices;
  (* Native reference with identical floor semantics. *)
  let expect = Array.make n 0 in
  expect.(0) <- raw.(0);
  for t = 1 to n - 1 do
    let v = (alpha * raw.(t)) + ((256 - alpha) * expect.(t - 1)) in
    expect.(t) <- v asr fbits
  done;
  assert (expect = out);
  print_endline "\n(EMA verified; matches the native fixed-point reference bit for bit)"
