(* Outsourcing all-pairs shortest paths (the paper's benchmark (c)).

     dune exec examples/shortest_paths.exe

   A client holds a batch of road-network snapshots and outsources
   Floyd-Warshall to an untrusted server; the batch amortizes the
   verifier's query setup (§2.2). The example prints the verified distance
   matrix of the first instance and the measured break-even batch size
   implied by the run. *)

open Fieldlib

let m = 4 (* nodes *)
let batch = 4

let () =
  let ctx = Fp.create Primes.p127 in
  let app = Apps.Apsp.app ~m in
  Printf.printf "== Verified all-pairs shortest paths (m = %d nodes, batch = %d) ==\n\n" m batch;
  let compiled = Apps.Glue.compile ctx app in
  let comp = Apps.Glue.computation_of compiled in
  let prg = Chacha.Prg.create ~seed:"shortest paths example" () in
  let raw = Array.init batch (fun _ -> app.Apps.App_def.gen_inputs prg) in
  let inputs = Array.map (Apps.Glue.field_inputs ctx) raw in
  let config =
    { Argsys.Argument.test_config with Argsys.Argument.params = { Pcp.Pcp_zaatar.rho = 2; rho_lin = 5 } }
  in
  let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
  if not (Argsys.Argument.all_accepted result) then begin
    print_endline "verification failed!";
    exit 1
  end;
  (* Show the first verified distance matrix. *)
  let out = Apps.Glue.int_outputs ctx result.Argsys.Argument.instances.(0).Argsys.Argument.claimed_output in
  Printf.printf "verified distance matrix of instance 0:\n";
  for i = 0 to m - 1 do
    Printf.printf "  ";
    for j = 0 to m - 1 do
      let d = out.((i * m) + j) in
      if d >= Apps.Apsp.inf then Printf.printf "   ." else Printf.printf "%4d" d
    done;
    print_newline ()
  done;
  (* Check against local execution, then report the amortization story. *)
  let local = app.Apps.App_def.native raw.(0) in
  assert (local = out);
  Printf.printf "\n(matches local execution)\n\n";
  let t0 = Unix.gettimeofday () in
  let iters = 2000 in
  for i = 1 to iters do
    ignore (app.Apps.App_def.native raw.(i mod batch))
  done;
  let t_local = (Unix.gettimeofday () -. t0) /. float_of_int iters in
  let setup = result.Argsys.Argument.verifier_setup_s in
  let per = result.Argsys.Argument.verifier_per_instance_s /. float_of_int batch in
  Printf.printf "local execution:          %.2e s/instance\n" t_local;
  Printf.printf "verifier setup (batch):   %.2e s\n" setup;
  Printf.printf "verifier per instance:    %.2e s\n" per;
  if t_local > per then
    Printf.printf "measured break-even batch size: %.0f instances\n" (ceil (setup /. (t_local -. per)))
  else
    Printf.printf
      "at this toy size verification costs more than local execution per instance,\n\
       so no batch size breaks even (the paper's Figure 7 regime needs larger inputs).\n"
