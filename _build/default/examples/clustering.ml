(* Verified PAM clustering (the paper's benchmark (a)): a client outsources
   medoid selection over a small point set and checks the result.

     dune exec examples/clustering.exe *)

open Fieldlib

let m = 5 (* points *)
let d = 2 (* dimensions *)

let () =
  let ctx = Fp.create Primes.p127 in
  let app = Apps.Pam.app ~m ~d in
  Printf.printf "== Verified PAM clustering (m = %d points, d = %d) ==\n\n" m d;
  let compiled = Apps.Glue.compile ctx app in
  let stats = Zlang.Compile.stats compiled in
  Printf.printf "constraint encoding: Ginger |C| = %d, Zaatar |C| = %d, K2 = %d\n"
    stats.Zlang.Compile.c_ginger stats.Zlang.Compile.c_zaatar stats.Zlang.Compile.k2;
  Printf.printf "proof vectors: Ginger %d vs Zaatar %d entries\n\n" stats.Zlang.Compile.u_ginger
    stats.Zlang.Compile.u_zaatar;
  let comp = Apps.Glue.computation_of compiled in
  let prg = Chacha.Prg.create ~seed:"clustering example" () in
  let raw = app.Apps.App_def.gen_inputs prg in
  Printf.printf "points:\n";
  for i = 0 to m - 1 do
    Printf.printf "  p%d = (%d, %d)\n" i raw.((i * d)) raw.((i * d) + 1)
  done;
  let config =
    { Argsys.Argument.test_config with Argsys.Argument.params = { Pcp.Pcp_zaatar.rho = 2; rho_lin = 5 } }
  in
  let result =
    Argsys.Argument.run_batch ~config comp ~prg ~inputs:[| Apps.Glue.field_inputs ctx raw |]
  in
  let inst = result.Argsys.Argument.instances.(0) in
  if not inst.Argsys.Argument.accepted then begin
    print_endline "verification failed!";
    exit 1
  end;
  let out = Apps.Glue.int_outputs ctx inst.Argsys.Argument.claimed_output in
  Printf.printf "\nverified result: medoids p%d and p%d\n" out.(0) out.(1);
  for i = 0 to m - 1 do
    Printf.printf "  p%d -> cluster %d\n" i out.(2 + i)
  done;
  let expected = app.Apps.App_def.native raw in
  assert (expected = out);
  print_endline "\n(the server's answer matches local recomputation, and the proof verified)"
