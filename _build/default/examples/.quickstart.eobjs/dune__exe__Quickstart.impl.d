examples/quickstart.ml: Apps Argsys Array Chacha Fieldlib Format Fp Pcp Primes Printf Zlang
