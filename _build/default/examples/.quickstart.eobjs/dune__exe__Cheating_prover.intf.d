examples/cheating_prover.mli:
