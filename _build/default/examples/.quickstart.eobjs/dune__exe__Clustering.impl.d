examples/clustering.ml: Apps Argsys Array Chacha Fieldlib Fp Pcp Primes Printf Zlang
