examples/cheating_prover.ml: Apps Argsys Array Chacha Fieldlib Fp List Pcp Primes Printf Zlang
