examples/clustering.mli:
