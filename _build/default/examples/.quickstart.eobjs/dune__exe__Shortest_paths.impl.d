examples/shortest_paths.ml: Apps Argsys Array Chacha Fieldlib Fp Pcp Primes Printf Unix
