examples/quickstart.mli:
