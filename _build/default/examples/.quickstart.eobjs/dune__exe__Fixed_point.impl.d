examples/fixed_point.ml: Apps Argsys Array Chacha Fieldlib Fp Pcp Primes Printf Zlang
