examples/fixed_point.mli:
