examples/shortest_paths.mli:
