(* Quickstart: compile a small computation, outsource a batch of instances
   to the prover, and verify the results.

     dune exec examples/quickstart.exe

   The computation is written in ZL, compiled to quadratic-form constraints
   (through Ginger constraints and the section-4 transform), proved with the
   QAP-based linear PCP of Figure 10, and checked under the linear
   commitment protocol. *)

open Fieldlib

let source =
  {|
computation quickstart(input int32 a, input int32 b, output int32 y) {
  // y = max(a*a, b*b) + 7
  var int32 sa = a * a;
  var int32 sb = b * b;
  if (sa > sb) { y = sa + 7; } else { y = sb + 7; }
}
|}

let () =
  let ctx = Fp.create Primes.p127 in
  Printf.printf "== Zaatar quickstart ==\n";
  Printf.printf "field: 127-bit prime (2^127 - 1)\n\n";
  (* 1. Compile. *)
  let compiled = Zlang.Compile.compile ~ctx source in
  let stats = Zlang.Compile.stats compiled in
  Printf.printf "compiled %S:\n" compiled.Zlang.Compile.name;
  Printf.printf "  Ginger encoding: |Z| = %d, |C| = %d (proof vector %d)\n"
    stats.Zlang.Compile.z_ginger stats.Zlang.Compile.c_ginger stats.Zlang.Compile.u_ginger;
  Printf.printf "  Zaatar encoding: |Z| = %d, |C| = %d (proof vector %d), K2 = %d\n\n"
    stats.Zlang.Compile.z_zaatar stats.Zlang.Compile.c_zaatar stats.Zlang.Compile.u_zaatar
    stats.Zlang.Compile.k2;
  (* 2. Run a batch through the argument system. *)
  let comp = Apps.Glue.computation_of compiled in
  let prg = Chacha.Prg.create ~seed:"quickstart" () in
  let raw_inputs = [| [| 3; 5 |]; [| 10; 2 |]; [| -7; 6 |] |] in
  let inputs = Array.map (fun xs -> Array.map (Fp.of_int ctx) xs) raw_inputs in
  let config =
    { Argsys.Argument.test_config with Argsys.Argument.params = { Pcp.Pcp_zaatar.rho = 2; rho_lin = 5 } }
  in
  let result = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
  (* 3. Inspect. *)
  Array.iteri
    (fun i (inst : Argsys.Argument.instance_result) ->
      let y =
        match Fp.to_signed_int ctx inst.Argsys.Argument.claimed_output.(0) with
        | Some v -> v
        | None -> assert false
      in
      Printf.printf "instance %d: inputs (%3d, %3d) -> output %4d   [%s]\n" i
        raw_inputs.(i).(0) raw_inputs.(i).(1) y
        (if inst.Argsys.Argument.accepted then "verified" else "REJECTED"))
    result.Argsys.Argument.instances;
  Printf.printf "\nprover phases:\n%s" (Format.asprintf "%a" Argsys.Metrics.pp result.Argsys.Argument.prover);
  Printf.printf "verifier: setup %.3fs (amortized over the batch), per-instance total %.3fs\n"
    result.Argsys.Argument.verifier_setup_s result.Argsys.Argument.verifier_per_instance_s;
  if Argsys.Argument.all_accepted result then print_endline "\nAll outputs verified."
  else (print_endline "\nVERIFICATION FAILED"; exit 1)
