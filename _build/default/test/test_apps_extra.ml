open Fieldlib
open Apps

(* Additional benchmark coverage at sizes and shapes the main differential
   suite does not hit. *)

let ctx = Fp.create Primes.p127

let unit_tests =
  [
    Alcotest.test_case "fannkuch with n=5 and deep flips" `Slow (fun () ->
        let prg = Chacha.Prg.create ~seed:"fk5" () in
        ignore (Glue.differential_check ~trials:2 ctx (Fannkuch.app ~m:1 ~n:5 ~bound:8) prg));
    Alcotest.test_case "apsp with a disconnected graph" `Quick (fun () ->
        (* Two components: distances across stay at the inf marker. *)
        let m = 4 in
        let i = Apsp.inf in
        let adj =
          [| 0; 1; i; i;
             1; 0; i; i;
             i; i; 0; 2;
             i; i; 2; 0 |]
        in
        let out = (Apsp.app ~m).App_def.native adj in
        Alcotest.(check bool) "cross-component distance still >= inf" true (out.(2) >= i);
        Alcotest.(check int) "within-component" 1 out.(1));
    Alcotest.test_case "apsp circuit agrees on the disconnected graph" `Slow (fun () ->
        let m = 4 in
        let i = Apsp.inf in
        let adj =
          [| 0; 1; i; i;
             1; 0; i; i;
             i; i; 0; 2;
             i; i; 2; 0 |]
        in
        let app = Apsp.app ~m in
        let c = Glue.compile ctx app in
        let w = c.Zlang.Compile.solve_zaatar (Glue.field_inputs ctx adj) in
        Alcotest.(check bool) "satisfied" true
          (Constr.R1cs.satisfied ctx (Zlang.Compile.zaatar_r1cs c) w);
        let got = Glue.int_outputs ctx (Zlang.Compile.outputs_zaatar c w) in
        Alcotest.(check (array int)) "same" (app.App_def.native adj) got);
    Alcotest.test_case "lcs of identical strings is their length" `Quick (fun () ->
        let m = 5 in
        let s = [| 1; 2; 3; 4; 1 |] in
        let out = (Lcs.app ~m).App_def.native (Array.append s s) in
        Alcotest.(check (array int)) "full" [| m |] out);
    Alcotest.test_case "lcs of disjoint alphabets is zero" `Quick (fun () ->
        let out = (Lcs.app ~m:4).App_def.native [| 1; 1; 1; 1; 2; 2; 2; 2 |] in
        Alcotest.(check (array int)) "zero" [| 0 |] out);
    Alcotest.test_case "bisection recovers every plantable root" `Quick (fun () ->
        (* Exhaustively check all 2^L roots for a small instance. *)
        let m = 2 and l = 4 in
        let app0 = Bisection.app ~m ~l in
        let prg = Chacha.Prg.create ~seed:"bisect exhaustive" () in
        let base = app0.App_def.gen_inputs prg in
        let q = Array.sub base 0 (m * m) in
        let a = Array.sub base (m * m) m in
        let bb = Array.sub base ((m * m) + m) m in
        for r = 0 to (1 lsl l) - 1 do
          let target = Bisection.eval_f ~m q a bb r in
          let inputs = Array.concat [ q; a; bb; [| target |] ] in
          let out = app0.App_def.native inputs in
          Alcotest.(check (array int)) (Printf.sprintf "root %d" r) [| r |] out
        done);
    Alcotest.test_case "pam assignment is consistent with medoids" `Quick (fun () ->
        let m = 6 and d = 3 in
        let prg = Chacha.Prg.create ~seed:"pam check" () in
        let app = Pam.app ~m ~d in
        for _ = 1 to 5 do
          let inputs = app.App_def.gen_inputs prg in
          let out = app.App_def.native inputs in
          let med1 = out.(0) and med2 = out.(1) in
          Alcotest.(check bool) "distinct medoids" true (med1 <> med2);
          (* each point's assignment points at the closer medoid *)
          let dist p q =
            let acc = ref 0 in
            for k = 0 to d - 1 do
              let dd = inputs.((p * d) + k) - inputs.((q * d) + k) in
              acc := !acc + (dd * dd)
            done;
            !acc
          in
          for p = 0 to m - 1 do
            let a = out.(2 + p) in
            let d1 = dist p med1 and d2 = dist p med2 in
            if a = 1 then Alcotest.(check bool) "closer to med2" true (d2 < d1)
            else Alcotest.(check bool) "not strictly closer to med2" true (d2 >= d1)
          done
        done);
    Alcotest.test_case "registry lookup and sweep shapes" `Quick (fun () ->
        Alcotest.(check int) "suite size" 5 (List.length (Registry.suite ()));
        List.iter
          (fun (_, apps) -> Alcotest.(check int) "three sizes" 3 (List.length apps))
          (Registry.sweep ());
        Alcotest.(check bool) "unknown benchmark raises" true
          (try
             ignore (Registry.by_name "nope" ~scale:1);
             false
           with Invalid_argument _ -> true));
  ]

let suite = unit_tests
