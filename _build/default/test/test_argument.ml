open Fieldlib
open Constr
open Argsys

let ctx = Fp.create Primes.p61
let fi = Fp.of_int ctx

(* y = x^2 + 3. Variables: 1 = z1 (= x^2), 2 = x (input), 3 = y (output). *)
let square_plus_3 : Argument.computation =
  let c1 = { R1cs.a = Lincomb.of_var 2; b = Lincomb.of_var 2; c = Lincomb.of_var 1 } in
  let c2 =
    {
      R1cs.a = Lincomb.add ctx (Lincomb.of_var 1) (Lincomb.of_const (fi 3));
      b = Lincomb.of_const Fp.one;
      c = Lincomb.of_var 3;
    }
  in
  let r1cs = { R1cs.field = ctx; num_vars = 3; num_z = 1; constraints = [| c1; c2 |] } in
  let solve x =
    let x0 = x.(0) in
    let sq = Fp.mul ctx x0 x0 in
    [| Fp.one; sq; x0; Fp.add ctx sq (fi 3) |]
  in
  { Argument.r1cs; num_inputs = 1; num_outputs = 1; solve }

let config = Argument.test_config

let run strategy inputs seed =
  let prg = Chacha.Prg.create ~seed () in
  Argument.run_batch ~config:{ config with Argument.strategy } square_plus_3 ~prg
    ~inputs:(Array.map (fun x -> [| fi x |]) inputs)

let count_rejected r =
  Array.fold_left (fun n (i : Argument.instance_result) -> if i.accepted then n else n + 1) 0
    r.Argument.instances

let unit_tests =
  [
    Alcotest.test_case "honest batch accepted with correct outputs" `Quick (fun () ->
        let r = run Argument.Honest [| 2; 5; 11; 100 |] "arg honest" in
        Alcotest.(check bool) "all accepted" true (Argument.all_accepted r);
        let outs =
          Array.map (fun (i : Argument.instance_result) -> Fp.to_int_opt i.claimed_output.(0)) r.Argument.instances
        in
        Alcotest.(check (array (option int))) "outputs" [| Some 7; Some 28; Some 124; Some 10003 |] outs);
    Alcotest.test_case "wrong output rejected" `Quick (fun () ->
        let r = run Argument.Wrong_output [| 3; 4; 9; 12; 20 |] "arg wrong" in
        Alcotest.(check bool) "none accepted" true (Argument.none_accepted r));
    Alcotest.test_case "corrupt witness rejected" `Quick (fun () ->
        let r = run Argument.Corrupt_witness [| 3; 4; 9; 12; 20 |] "arg cw" in
        Alcotest.(check bool) "none accepted" true (Argument.none_accepted r));
    Alcotest.test_case "corrupt h rejected" `Quick (fun () ->
        let r = run Argument.Corrupt_h [| 3; 4; 9 |] "arg ch" in
        Alcotest.(check bool) "none accepted" true (Argument.none_accepted r));
    Alcotest.test_case "equivocating prover rejected by commitment" `Quick (fun () ->
        let r = run Argument.Equivocate [| 3; 4; 9 |] "arg eq" in
        Alcotest.(check bool) "none accepted" true (Argument.none_accepted r);
        Array.iter
          (fun (i : Argument.instance_result) -> Alcotest.(check bool) "commit failed" false i.commit_ok)
          r.Argument.instances);
    Alcotest.test_case "nonlinear prover rejected" `Quick (fun () ->
        let r = run Argument.Nonlinear [| 3; 4; 9 |] "arg nl" in
        Alcotest.(check bool) "none accepted" true (Argument.none_accepted r));
    Alcotest.test_case "prover metrics populated" `Quick (fun () ->
        let r = run Argument.Honest [| 2; 3 |] "arg metrics" in
        List.iter
          (fun phase ->
            Alcotest.(check bool) phase true (List.mem_assoc phase (Metrics.to_list r.Argument.prover)))
          [ "solve_constraints"; "construct_u"; "crypto_ops"; "answer_queries" ]);
    Alcotest.test_case "verifier setup dominates per-instance (batchable)" `Quick (fun () ->
        let r = run Argument.Honest [| 2; 3; 4; 5 |] "arg timing" in
        Alcotest.(check bool) "setup > 0" true (r.Argument.verifier_setup_s > 0.0);
        Alcotest.(check bool) "per-instance > 0" true (r.Argument.verifier_per_instance_s > 0.0));
    Alcotest.test_case "metrics accumulate and reset" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.add m "a" 1.0;
        Metrics.add m "a" 2.0;
        Metrics.add m "b" 0.5;
        Alcotest.(check (float 1e-9)) "a" 3.0 (Metrics.get m "a");
        Alcotest.(check (float 1e-9)) "total" 3.5 (Metrics.total m);
        Metrics.reset m;
        Alcotest.(check (float 1e-9)) "after reset" 0.0 (Metrics.total m));
  ]

let suite = unit_tests
