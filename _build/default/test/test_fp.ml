open Fieldlib

let ctx61 = Fp.create Primes.p61
let ctx127 = Fp.create Primes.p127

let el c = Alcotest.testable Fp.pp Fp.equal |> fun t -> ignore c; t

(* Deterministic pseudo-random field elements for property tests. *)
let gen_el ctx =
  QCheck.Gen.(
    list_size (return 8) (int_range 0 ((1 lsl 30) - 1)) >|= fun limbs ->
    Fp.of_nat ctx
      (List.fold_left (fun acc l -> Nat.add_int (Nat.shift_left acc 30) l) Nat.zero limbs))

let arb_el ctx = QCheck.make ~print:Fp.to_string (gen_el ctx)

let arb_nonzero ctx =
  QCheck.make ~print:Fp.to_string
    QCheck.Gen.(gen_el ctx >|= fun x -> if Fp.is_zero x then Fp.one else x)

let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let field_laws name ctx =
  [
    qtest (name ^ ": add assoc") 200
      (QCheck.triple (arb_el ctx) (arb_el ctx) (arb_el ctx))
      (fun (a, b, c) -> Fp.equal (Fp.add ctx (Fp.add ctx a b) c) (Fp.add ctx a (Fp.add ctx b c)));
    qtest (name ^ ": mul assoc") 200
      (QCheck.triple (arb_el ctx) (arb_el ctx) (arb_el ctx))
      (fun (a, b, c) -> Fp.equal (Fp.mul ctx (Fp.mul ctx a b) c) (Fp.mul ctx a (Fp.mul ctx b c)));
    qtest (name ^ ": distributivity") 200
      (QCheck.triple (arb_el ctx) (arb_el ctx) (arb_el ctx))
      (fun (a, b, c) ->
        Fp.equal (Fp.mul ctx a (Fp.add ctx b c)) (Fp.add ctx (Fp.mul ctx a b) (Fp.mul ctx a c)));
    qtest (name ^ ": sub inverse of add") 200
      (QCheck.pair (arb_el ctx) (arb_el ctx))
      (fun (a, b) -> Fp.equal a (Fp.sub ctx (Fp.add ctx a b) b));
    qtest (name ^ ": neg") 200 (arb_el ctx) (fun a -> Fp.is_zero (Fp.add ctx a (Fp.neg ctx a)));
    qtest (name ^ ": inv") 200 (arb_nonzero ctx) (fun a ->
        Fp.equal Fp.one (Fp.mul ctx a (Fp.inv ctx a)));
    qtest (name ^ ": inv matches fermat") 100 (arb_nonzero ctx) (fun a ->
        Fp.equal (Fp.inv ctx a) (Fp.inv_fermat ctx a));
    qtest (name ^ ": fermat little theorem") 50 (arb_nonzero ctx) (fun a ->
        Fp.equal Fp.one (Fp.pow ctx a (Nat.sub (Fp.modulus ctx) Nat.one)));
    qtest (name ^ ": reduce idempotent under of_nat") 200 (arb_el ctx) (fun a ->
        Fp.equal a (Fp.of_nat ctx (Fp.to_nat a)));
  ]

let unit_tests =
  [
    Alcotest.test_case "of_int negative" `Quick (fun () ->
        let m1 = Fp.of_int ctx61 (-1) in
        Alcotest.check (el ctx61) "p-1" (Fp.sub ctx61 Fp.zero Fp.one) m1);
    Alcotest.test_case "to_signed_int" `Quick (fun () ->
        Alcotest.(check (option int)) "neg" (Some (-42)) (Fp.to_signed_int ctx61 (Fp.of_int ctx61 (-42)));
        Alcotest.(check (option int)) "pos" (Some 42) (Fp.to_signed_int ctx61 (Fp.of_int ctx61 42)));
    Alcotest.test_case "batch_inv" `Quick (fun () ->
        let xs = Array.init 17 (fun i -> Fp.of_int ctx127 (i + 3)) in
        let invs = Fp.batch_inv ctx127 xs in
        Array.iteri
          (fun i x -> Alcotest.check (el ctx127) "inv" (Fp.inv ctx127 x) invs.(i))
          xs);
    Alcotest.test_case "batch_inv rejects zero" `Quick (fun () ->
        Alcotest.check_raises "zero" Division_by_zero (fun () ->
            ignore (Fp.batch_inv ctx61 [| Fp.one; Fp.zero |])));
    Alcotest.test_case "dot product" `Quick (fun () ->
        let a = Array.init 100 (fun i -> Fp.of_int ctx127 (i + 1)) in
        let b = Array.init 100 (fun i -> Fp.of_int ctx127 (2 * i)) in
        let expect = ref Fp.zero in
        for i = 0 to 99 do
          expect := Fp.add ctx127 !expect (Fp.mul ctx127 a.(i) b.(i))
        done;
        Alcotest.check (el ctx127) "dot" !expect (Fp.dot ctx127 a b));
    Alcotest.test_case "dot with zeros is sparse-safe" `Quick (fun () ->
        let a = [| Fp.zero; Fp.one; Fp.zero; Fp.of_int ctx61 5 |] in
        let b = [| Fp.of_int ctx61 9; Fp.of_int ctx61 7; Fp.one; Fp.zero |] in
        Alcotest.check (el ctx61) "dot" (Fp.of_int ctx61 7) (Fp.dot ctx61 a b));
    Alcotest.test_case "sample below modulus" `Quick (fun () ->
        let counter = ref 0 in
        let fake n =
          incr counter;
          Bytes.init n (fun i -> Char.chr ((i * 37 + !counter * 11) land 0xff))
        in
        for _ = 1 to 50 do
          let x = Fp.sample ctx127 fake in
          Alcotest.(check bool) "in range" true (Nat.compare (Fp.to_nat x) (Fp.modulus ctx127) < 0)
        done);
    Alcotest.test_case "known prime moduli" `Slow (fun () ->
        Alcotest.(check bool) "p61" true (Primes.is_prime Primes.p61);
        Alcotest.(check bool) "p89" true (Primes.is_prime Primes.p89);
        Alcotest.(check bool) "p127" true (Primes.is_prime Primes.p127);
        Alcotest.(check bool) "bls fr" true (Primes.is_prime Primes.bls12_381_fr);
        Alcotest.(check int) "bls 2-adicity" 32 (Primes.two_adicity Primes.bls12_381_fr));
    Alcotest.test_case "p128/p220 generation" `Slow (fun () ->
        let p128 = Primes.p128 () in
        Alcotest.(check int) "bits" 128 (Nat.num_bits p128);
        Alcotest.(check bool) "prime" true (Primes.is_prime p128);
        let p220 = Primes.p220 () in
        Alcotest.(check int) "bits" 220 (Nat.num_bits p220);
        Alcotest.(check bool) "prime" true (Primes.is_prime p220));
    Alcotest.test_case "miller-rabin rejects composites" `Quick (fun () ->
        List.iter
          (fun n -> Alcotest.(check bool) (string_of_int n) false (Primes.is_prime (Nat.of_int n)))
          [ 0; 1; 4; 9; 15; 21; 25; 27; 33; 91; 561; 1105; 41041; 825265 ];
        (* Carmichael-adjacent large composite: product of two primes. *)
        let c = Nat.mul Primes.p61 Primes.p89 in
        Alcotest.(check bool) "p61*p89" false (Primes.is_prime c));
    Alcotest.test_case "miller-rabin accepts small primes" `Quick (fun () ->
        List.iter
          (fun n -> Alcotest.(check bool) (string_of_int n) true (Primes.is_prime (Nat.of_int n)))
          [ 2; 3; 5; 7; 97; 101; 65537; 2147483647 ]);
    Alcotest.test_case "root of unity generator (NTT field)" `Quick (fun () ->
        let ctx = Fp.create Primes.bls12_381_fr in
        let w = Primes.find_generator_of_two_power_subgroup ctx in
        (* w has order exactly 2^32: w^(2^32) = 1 and w^(2^31) <> 1. *)
        let sq n x = let r = ref x in for _ = 1 to n do r := Fp.sqr ctx !r done; !r in
        let w31 = sq 31 w in
        Alcotest.(check bool) "w^(2^31) <> 1" false (Fp.equal w31 Fp.one);
        Alcotest.(check bool) "w^(2^32) = 1" true (Fp.equal (Fp.sqr ctx w31) Fp.one));
  ]

let suite = unit_tests @ field_laws "F_p61" ctx61 @ field_laws "F_p127" ctx127

(* --- Montgomery-form arithmetic (lib/fieldlib/montgomery.ml) --- *)

let mont_tests =
  let mctx = Montgomery.create Primes.p127 in
  let byte_src seed =
    let p = Chacha.Prg.create ~seed () in
    fun n -> Chacha.Prg.bytes p n
  in
  let sample src = Fp.sample ctx127 src in
  [
    Alcotest.test_case "montgomery roundtrip" `Quick (fun () ->
        let src = byte_src "mont rt" in
        for _ = 1 to 50 do
          let x = Fp.to_nat (sample src) in
          let m = Montgomery.to_mont mctx x in
          Alcotest.(check bool) "rt" true (Nat.equal (Montgomery.of_mont mctx m) x)
        done);
    Alcotest.test_case "montgomery mul matches Fp" `Quick (fun () ->
        let src = byte_src "mont mul" in
        for _ = 1 to 50 do
          let a = sample src and b = sample src in
          let ma = Montgomery.to_mont mctx (Fp.to_nat a) in
          let mb = Montgomery.to_mont mctx (Fp.to_nat b) in
          let prod = Montgomery.of_mont mctx (Montgomery.mul mctx ma mb) in
          Alcotest.(check bool) "mul" true (Nat.equal prod (Fp.to_nat (Fp.mul ctx127 a b)))
        done);
    Alcotest.test_case "montgomery add/sub match Fp" `Quick (fun () ->
        let src = byte_src "mont addsub" in
        for _ = 1 to 50 do
          let a = sample src and b = sample src in
          let ma = Montgomery.to_mont mctx (Fp.to_nat a) in
          let mb = Montgomery.to_mont mctx (Fp.to_nat b) in
          let s = Montgomery.of_mont mctx (Montgomery.add mctx ma mb) in
          let d = Montgomery.of_mont mctx (Montgomery.sub mctx ma mb) in
          Alcotest.(check bool) "add" true (Nat.equal s (Fp.to_nat (Fp.add ctx127 a b)));
          Alcotest.(check bool) "sub" true (Nat.equal d (Fp.to_nat (Fp.sub ctx127 a b)))
        done);
    Alcotest.test_case "montgomery pow matches Fp.pow" `Quick (fun () ->
        let src = byte_src "mont pow" in
        for _ = 1 to 10 do
          let b = sample src in
          let e = Fp.to_nat (sample src) in
          let got = Montgomery.pow_nat mctx (Fp.to_nat b) e in
          Alcotest.(check bool) "pow" true (Nat.equal got (Fp.to_nat (Fp.pow ctx127 b e)))
        done);
    Alcotest.test_case "montgomery one/zero" `Quick (fun () ->
        Alcotest.(check bool) "one" true (Nat.is_one (Montgomery.of_mont mctx (Montgomery.one mctx)));
        Alcotest.(check bool) "zero" true (Nat.is_zero (Montgomery.of_mont mctx (Montgomery.zero mctx))));
    Alcotest.test_case "montgomery rejects even modulus" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try ignore (Montgomery.create (Nat.of_int 8)); false with Invalid_argument _ -> true));
  ]

let suite = suite @ mont_tests
