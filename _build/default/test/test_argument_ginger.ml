open Fieldlib
open Argsys

let ctx = Fp.create Primes.p61
let fi = Fp.of_int ctx

(* Reuse the y = x^2 + 3 system from the constraint tests, wrapped for the
   Ginger argument driver. Canonical variables: 1 = z1, 2 = x, 3 = y. *)
let square_plus_3 : Argument_ginger.computation =
  {
    Argument_ginger.ginger = Test_constr.ginger_sys;
    num_inputs = 1;
    num_outputs = 1;
    solve =
      (fun x ->
        let x0 = x.(0) in
        let sq = Fp.mul ctx x0 x0 in
        [| Fp.one; sq; x0; Fp.add ctx sq (fi 3) |]);
  }

let unit_tests =
  [
    Alcotest.test_case "ginger argument accepts honest prover" `Quick (fun () ->
        let prg = Chacha.Prg.create ~seed:"garg ok" () in
        let r = Argument_ginger.run_instance square_plus_3 ~prg ~x:[| fi 6 |] in
        Alcotest.(check bool) "accepted" true r.Argument_ginger.accepted;
        Alcotest.(check (option int)) "output" (Some 39)
          (Fp.to_int_opt r.Argument_ginger.claimed_output.(0)));
    Alcotest.test_case "ginger argument rejects cheating prover (whp)" `Quick (fun () ->
        let rejections = ref 0 in
        for i = 0 to 9 do
          let prg = Chacha.Prg.create ~seed:(Printf.sprintf "garg cheat %d" i) () in
          let config = { Argument_ginger.test_config with Argument_ginger.cheat = true } in
          let r = Argument_ginger.run_instance ~config square_plus_3 ~prg ~x:[| fi 6 |] in
          if not r.Argument_ginger.accepted then incr rejections
        done;
        Alcotest.(check bool) "mostly rejected" true (!rejections >= 9));
    Alcotest.test_case "ginger argument on a compiled program" `Slow (fun () ->
        (* A compiled tiny computation, proved under the Ginger (quadratic
           proof vector) protocol end to end. *)
        let ctx = Fp.create Primes.p61 in
        let compiled =
          Zlang.Compile.compile ~ctx
            "computation g(input int8 a, input int8 b, output int32 y) { y = a * b + a; }"
        in
        let comp =
          {
            Argument_ginger.ginger = compiled.Zlang.Compile.ginger;
            num_inputs = compiled.Zlang.Compile.num_inputs;
            num_outputs = compiled.Zlang.Compile.num_outputs;
            solve = compiled.Zlang.Compile.solve_ginger;
          }
        in
        let prg = Chacha.Prg.create ~seed:"garg compiled" () in
        let r = Argument_ginger.run_instance comp ~prg ~x:[| fi 7; fi 5 |] in
        Alcotest.(check bool) "accepted" true r.Argument_ginger.accepted;
        Alcotest.(check (option int)) "output" (Some 42)
          (Fp.to_int_opt r.Argument_ginger.claimed_output.(0)));
    Alcotest.test_case "ginger prover metrics populated" `Quick (fun () ->
        let prg = Chacha.Prg.create ~seed:"garg metrics" () in
        let r = Argument_ginger.run_instance square_plus_3 ~prg ~x:[| fi 2 |] in
        List.iter
          (fun phase ->
            Alcotest.(check bool) phase true
              (List.mem_assoc phase (Metrics.to_list r.Argument_ginger.prover)))
          [ "solve_constraints"; "construct_u"; "crypto_ops"; "answer_queries" ]);
  ]

let suite = unit_tests
