open Fieldlib
open Constr
open Zlang

let ctx = Fp.create Primes.p127

(* Compile, solve on given int inputs, check both systems are satisfied, and
   return the signed-int outputs. *)
let run_program src inputs =
  let c = Compile.compile ~ctx src in
  let xs = Array.map (Fp.of_int ctx) (Array.of_list inputs) in
  if Array.length xs <> c.Compile.num_inputs then
    Alcotest.failf "bad input arity: %d vs %d" (Array.length xs) c.Compile.num_inputs;
  let wg = c.Compile.solve_ginger xs in
  if not (Quad.satisfied ctx c.Compile.ginger wg) then Alcotest.fail "ginger not satisfied";
  let wz = c.Compile.solve_zaatar xs in
  if not (R1cs.satisfied ctx (Compile.zaatar_r1cs c) wz) then Alcotest.fail "zaatar not satisfied";
  let out_g = Compile.outputs_ginger c wg in
  let out_z = Compile.outputs_zaatar c wz in
  Array.iteri
    (fun i v ->
      if not (Fp.equal v out_z.(i)) then Alcotest.fail "ginger/zaatar outputs disagree")
    out_g;
  Array.map
    (fun v -> match Fp.to_signed_int ctx v with Some n -> n | None -> Alcotest.fail "output overflow")
    out_g
  |> Array.to_list

let check_outputs name src inputs expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list int)) "outputs" expected (run_program src inputs))

let basic_tests =
  [
    check_outputs "decrement by 3 (paper's example)"
      "computation dec3(input int32 x, output int32 y) { y = x - 3; }"
      [ 10 ] [ 7 ];
    check_outputs "negative results"
      "computation dec3(input int32 x, output int32 y) { y = x - 3; }"
      [ 1 ] [ -2 ];
    check_outputs "arithmetic and precedence"
      "computation arith(input int32 a, input int32 b, output int32 y) { y = a + b * b - 2 * a; }"
      [ 5; 3 ] [ 4 ];
    check_outputs "x != z via inverse trick (section 2.2)"
      "computation neq(input int32 x, input int32 z, output int32 y) { if (x != z) { y = 1; } else { y = 0; } }"
      [ 4; 4 ] [ 0 ];
    check_outputs "order comparison true"
      "computation cmp(input int32 a, input int32 b, output int32 y) { if (a < b) { y = 10; } else { y = 20; } }"
      [ 3; 7 ] [ 10 ];
    check_outputs "order comparison false"
      "computation cmp(input int32 a, input int32 b, output int32 y) { if (a < b) { y = 10; } else { y = 20; } }"
      [ 7; 3 ] [ 20 ];
    check_outputs "comparison with negatives"
      "computation cmp(input int32 a, input int32 b, output int32 y) { if (a <= b) { y = 1; } else { y = 0 - 1; } }"
      [ -5; -5 ] [ 1 ];
    check_outputs "logical connectives"
      "computation logic(input int32 a, input int32 b, output int32 y) {\n\
      \  if ((a < b && b < 10) || a == 42) { y = 1; } else { y = 0; }\n\
       }"
      [ 42; 0 ] [ 1 ];
    check_outputs "unary not"
      "computation notx(input int32 a, output int32 y) { if (!(a > 3)) { y = 1; } else { y = 2; } }"
      [ 2 ] [ 1 ];
    check_outputs "loops unroll"
      "computation sum(input int32 a[5], output int32 s) {\n\
      \  var int32 acc = 0;\n\
      \  for i in 0..5 { acc = acc + a[i]; }\n\
      \  s = acc;\n\
       }"
      [ 1; 2; 3; 4; 5 ] [ 15 ];
    check_outputs "nested loops and constant folding"
      "computation mat(input int32 a[4], input int32 b[4], output int32 c[4]) {\n\
      \  for i in 0..2 { for j in 0..2 {\n\
      \    var int32 acc = 0;\n\
      \    for k in 0..2 { acc = acc + a[2*i+k] * b[2*k+j]; }\n\
      \    c[2*i+j] = acc;\n\
      \  } }\n\
       }"
      [ 1; 2; 3; 4; 5; 6; 7; 8 ] [ 19; 22; 43; 50 ];
    check_outputs "dynamic array read"
      "computation pick(input int32 a[4], input int32 i, output int32 y) { y = a[i]; }"
      [ 10; 20; 30; 40; 2 ] [ 30 ];
    check_outputs "dynamic array write"
      "computation put(input int32 i, input int32 v, output int32 a[3]) {\n\
      \  var int32 t[3];\n\
      \  t[0] = 1; t[1] = 2; t[2] = 3;\n\
      \  t[i] = v;\n\
      \  for k in 0..3 { a[k] = t[k]; }\n\
       }"
      [ 1; 99 ] [ 1; 99; 3 ];
    check_outputs "if over array state merges"
      "computation m(input int32 c, output int32 a[2]) {\n\
      \  var int32 t[2];\n\
      \  t[0] = 1; t[1] = 2;\n\
      \  if (c > 0) { t[0] = 5; } else { t[1] = 6; }\n\
      \  a[0] = t[0]; a[1] = t[1];\n\
       }"
      [ 1 ] [ 5; 2 ];
    check_outputs "min via conditional (Floyd-Warshall kernel)"
      "computation mn(input int32 a, input int32 b, output int32 y) {\n\
      \  if (a < b) { y = a; } else { y = b; }\n\
       }"
      [ -3; 2 ] [ -3 ];
    check_outputs "multiplication chain widths"
      "computation chain(input int8 a, output int64 y) { y = a * a * a * a; }"
      [ 3 ] [ 81 ];
    check_outputs "static conditional folds"
      "computation s(input int32 x, output int32 y) {\n\
      \  for i in 0..4 { if (i == 2) { y = y + x; } }\n\
       }"
      [ 7 ] [ 7 ];
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let error_case name src msg_fragment =
  Alcotest.test_case name `Quick (fun () ->
      match Compile.compile ~ctx src with
      | exception Ast.Error m ->
        if not (contains m msg_fragment) then
          Alcotest.failf "expected error mentioning %S, got %S" msg_fragment m
      | _ -> Alcotest.fail "expected a compile error")

let error_tests =
  [
    error_case "undefined variable" "computation e(output int32 y) { y = q; }" "undefined";
    error_case "non-constant loop bound"
      "computation e(input int32 n, output int32 y) { for i in 0..n { y = y + 1; } }"
      "constant";
    error_case "shadowing rejected"
      "computation e(input int32 x, output int32 y) { var int32 x = 1; y = x; }"
      "shadowing";
    error_case "if on non-boolean"
      "computation e(input int32 x, output int32 y) { if (x) { y = 1; } }"
      "boolean";
    error_case "constant index out of bounds"
      "computation e(input int32 a[3], output int32 y) { y = a[5]; }"
      "out of bounds";
    error_case "array used as scalar"
      "computation e(input int32 a[3], output int32 y) { y = a + 1; }"
      "scalar";
  ]

(* Witness-level behaviour of the dynamic access gadget: an out-of-range
   runtime index must make the constraints unsatisfiable. *)
let gadget_tests =
  [
    Alcotest.test_case "dynamic index out of range is unsatisfiable" `Quick (fun () ->
        let c =
          Compile.compile ~ctx
            "computation pick(input int32 a[3], input int32 i, output int32 y) { y = a[i]; }"
        in
        let xs = Array.map (Fp.of_int ctx) [| 1; 2; 3; 7 |] in
        let w = c.Compile.solve_ginger xs in
        Alcotest.(check bool) "unsatisfied" false (Quad.satisfied ctx c.Compile.ginger w));
    Alcotest.test_case "stats are consistent (Figure 9 invariants)" `Quick (fun () ->
        let c =
          Compile.compile ~ctx
            "computation dot(input int32 a[8], input int32 b[8], output int32 y) {\n\
            \  var int64 acc = 0;\n\
            \  for i in 0..8 { acc = acc + a[i] * b[i]; }\n\
            \  y = acc;\n\
             }"
        in
        let s = Compile.stats c in
        Alcotest.(check int) "|Z_zaatar| = |Z_ginger| + K2" s.Compile.z_zaatar
          (s.Compile.z_ginger + s.Compile.k2);
        Alcotest.(check int) "|C_zaatar| = |C_ginger| + K2" s.Compile.c_zaatar
          (s.Compile.c_ginger + s.Compile.k2);
        (* The dot product keeps all 8 products in one constraint: K2 = 8. *)
        Alcotest.(check int) "K2 = 8" 8 s.Compile.k2;
        Alcotest.(check bool) "u_zaatar far smaller than u_ginger for nontrivial |Z|"
          true (s.Compile.u_zaatar < s.Compile.u_ginger || s.Compile.z_ginger <= 2));
    Alcotest.test_case "comparison cost is O(width) constraints" `Quick (fun () ->
        let compile_bits bits =
          let src =
            Printf.sprintf
              "computation c(input int%d a, input int%d b, output int32 y) { if (a < b) { y = 1; } }"
              bits bits
          in
          Quad.num_constraints (Compile.compile ~ctx src).Compile.ginger
        in
        let c8 = compile_bits 8 and c32 = compile_bits 32 in
        Alcotest.(check bool) "wider types cost more constraints" true (c32 > c8);
        Alcotest.(check bool) "growth is roughly linear" true (c32 - c8 <= 2 * (32 - 8)));
  ]

let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* Differential test: random straight-line programs evaluated both natively
   and through the full compile/solve pipeline. *)
let property_tests =
  [
    qtest "random expressions match native evaluation" 60
      (QCheck.make
         ~print:(fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c)
         QCheck.Gen.(triple (int_range (-1000) 1000) (int_range (-1000) 1000) (int_range (-1000) 1000)))
      (fun (a, bv, cv) ->
        let src =
          "computation f(input int32 a, input int32 b, input int32 c, output int64 y) {\n\
          \  var int64 t = a * b + c;\n\
          \  if (t > c) { t = t - a; } else { t = t + b; }\n\
          \  if (a == b || c < 0) { t = t * 2; }\n\
          \  y = t;\n\
           }"
        in
        let native =
          let t = (a * bv) + cv in
          let t = if t > cv then t - a else t + bv in
          let t = if a = bv || cv < 0 then t * 2 else t in
          t
        in
        run_program src [ a; bv; cv ] = [ native ]);
    qtest "random dynamic accesses match native" 40
      (QCheck.make
         ~print:(fun (i, v) -> Printf.sprintf "(%d,%d)" i v)
         QCheck.Gen.(pair (int_range 0 4) (int_range (-50) 50)))
      (fun (i, v) ->
        let src =
          "computation g(input int32 a[5], input int32 i, input int32 v, output int32 y) {\n\
          \  a[i] = a[i] + v;\n\
          \  var int32 s = 0;\n\
          \  for k in 0..5 { s = s + a[k]; }\n\
          \  y = s;\n\
           }"
        in
        let base = [ 3; 1; 4; 1; 5 ] in
        let native = List.fold_left ( + ) 0 base + v in
        run_program src (base @ [ i; v ]) = [ native ]);
  ]

let suite = basic_tests @ error_tests @ gadget_tests @ property_tests

(* --- shift operators and the fixed-point truncation gadget --- *)

let shift_tests =
  [
    check_outputs "right shift positive"
      "computation s(input int32 x, output int32 y) { y = x >> 3; }"
      [ 100 ] [ 12 ];
    check_outputs "right shift negative uses floor semantics"
      "computation s(input int32 x, output int32 y) { y = x >> 3; }"
      [ -100 ] [ -13 ];
    check_outputs "right shift by more than the width"
      "computation s(input int8 x, output int32 y) { y = x >> 20; }"
      [ -5 ] [ -1 ];
    check_outputs "right shift by more than the width, nonnegative"
      "computation s(input int8 x, output int32 y) { y = x >> 20; }"
      [ 5 ] [ 0 ];
    check_outputs "left shift"
      "computation s(input int16 x, output int32 y) { y = x << 4; }"
      [ -3 ] [ -48 ];
    check_outputs "fixed-point multiply (Q8.8)"
      (* 1.5 * 2.25 = 3.375 -> 864 in Q8.8 *)
      "computation fx(input int16 a, input int16 b, output int32 y) { y = (a * b) >> 8; }"
      [ 384; 576 ] [ 864 ];
    check_outputs "fixed-point running average"
      "computation avg(input int16 x[4], output int32 y) {\n\
      \  var int32 acc = 0;\n\
      \  for i in 0..4 { acc = acc + x[i]; }\n\
      \  y = acc >> 2;\n\
       }"
      [ 256; 512; 256; 512 ] [ 384 ];
    check_outputs "shift of a constant folds"
      "computation s(input int32 x, output int32 y) { y = x + (1024 >> 4); }"
      [ 0 ] [ 64 ];
    error_case "shift by non-constant"
      "computation s(input int32 x, input int32 k, output int32 y) { y = x >> k; }"
      "constant";
  ]

let shift_property_tests =
  [
    qtest "random shifts match OCaml floor division" 80
      (QCheck.make
         ~print:(fun (x, k) -> Printf.sprintf "(%d,%d)" x k)
         QCheck.Gen.(pair (int_range (-100000) 100000) (int_range 1 10)))
      (fun (x, k) ->
        let src =
          Printf.sprintf "computation s(input int32 x, output int32 y) { y = x >> %d; }" k
        in
        (* floor(x / 2^k) *)
        let expected =
          if x >= 0 then x lsr k else -(((-x) + (1 lsl k) - 1) lsr k)
        in
        run_program src [ x ] = [ expected ]);
  ]

let suite = suite @ shift_tests @ shift_property_tests

(* Parser robustness: malformed inputs must raise Ast.Error, never crash or
   loop. *)
let parser_fuzz_tests =
  [
    Alcotest.test_case "malformed programs raise Ast.Error" `Quick (fun () ->
        let cases =
          [
            "";
            "computation";
            "computation f";
            "computation f()";
            "computation f() {";
            "computation f() { y = ; }";
            "computation f(input int32 x) { x = 1 }";
            "computation f(inputs int32 x, output int32 y) { y = x; }";
            "computation f(input int32 x, output int32 y) { y = x +; }";
            "computation f(input int32 x, output int32 y) { y = (x; }";
            "computation f(input int32 x, output int32 y) { for i in x { } }";
            "computation f(input int32 x, output int32 y) { y = x; } trailing";
            "computation f(input int999 x, output int32 y) { y = x; }";
            "computation f(input int32 x[], output int32 y) { y = 0; }";
            "computation f(input int32 x, output int32 y) { y = x @ 3; }";
            "computation f(input int32 x, output int32 y) { if x > 1 { y = 1; } }";
            "computation f(input int32 x, output int32 y) { var bool2 t; y = 0; }";
            "computation f(input int32 x, output int32 y) /* unterminated";
          ]
        in
        List.iter
          (fun src ->
            match Compile.compile ~ctx src with
            | exception Ast.Error _ -> ()
            | exception e ->
              Alcotest.failf "unexpected exception %s for %S" (Printexc.to_string e) src
            | _ -> Alcotest.failf "expected a parse/compile error for %S" src)
          cases);
    Alcotest.test_case "random token soup does not crash" `Quick (fun () ->
        let pieces =
          [| "computation"; "input"; "output"; "var"; "if"; "else"; "for"; "in"; "int32"; "x";
             "y"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "="; "=="; "<"; "+"; "-"; "*"; "!";
             "&&"; "0"; "42"; ".."; ">>" |]
        in
        let prg = Chacha.Prg.create ~seed:"fuzz" () in
        for _ = 1 to 200 do
          let n = 1 + Chacha.Prg.int_below prg 30 in
          let src =
            String.concat " "
              (List.init n (fun _ -> pieces.(Chacha.Prg.int_below prg (Array.length pieces))))
          in
          match Compile.compile ~ctx src with
          | exception Ast.Error _ -> ()
          | exception e ->
            Alcotest.failf "unexpected exception %s for %S" (Printexc.to_string e) src
          | _ -> () (* a random valid program is fine too *)
        done);
  ]

let suite = suite @ parser_fuzz_tests
