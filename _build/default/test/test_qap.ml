open Fieldlib
open Constr
open Polylib

let ctx = Fp.create Primes.p61
let fi = Fp.of_int ctx

(* Reuse the random satisfiable-system generator from the constraint
   tests. *)
let random_sys seed = Test_constr.random_satisfiable_r1cs seed

let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* The divisibility-correction equation checked directly from the proof
   vector (z, h), without the PCP blinding: D(tau) * <qd, h> must equal
   (<qa,z> + La)(<qb,z> + Lb) - (<qc,z> + Lc). *)
let divisibility_holds qap (w : Fp.el array) (h : Fp.el array) tau =
  let q = Qap.queries qap ~tau in
  let sys = qap.Qap.sys in
  let z = Array.sub w 1 sys.R1cs.num_z in
  let io = Array.sub w (sys.R1cs.num_z + 1) (R1cs.num_io sys) in
  let la = Qap.io_contribution qap q.Qap.a_tau io in
  let lb = Qap.io_contribution qap q.Qap.b_tau io in
  let lc = Qap.io_contribution qap q.Qap.c_tau io in
  let az = Fp.add ctx (Fp.dot ctx (Qap.z_slice qap q.Qap.a_tau) z) la in
  let bz = Fp.add ctx (Fp.dot ctx (Qap.z_slice qap q.Qap.b_tau) z) lb in
  let cz = Fp.add ctx (Fp.dot ctx (Qap.z_slice qap q.Qap.c_tau) z) lc in
  let lhs = Fp.mul ctx q.Qap.d_tau (Fp.dot ctx q.Qap.qd h) in
  let rhs = Fp.sub ctx (Fp.mul ctx az bz) cz in
  Fp.equal lhs rhs

let unit_tests =
  [
    Alcotest.test_case "claim A.1: satisfied => divisible" `Quick (fun () ->
        let sys, w = random_sys 7 in
        let qap = Qap.of_r1cs sys in
        let p = Qap.pw_poly qap w in
        let _, r = Poly.div_rem_fast ctx p (Lazy.force qap.Qap.divisor) in
        Alcotest.(check bool) "remainder zero" true (Poly.is_zero r));
    Alcotest.test_case "claim A.1: unsatisfied => not divisible" `Quick (fun () ->
        let sys, w = random_sys 8 in
        let qap = Qap.of_r1cs sys in
        let w' = Array.copy w in
        w'.(1) <- Fp.add ctx w'.(1) Fp.one;
        if not (R1cs.satisfied ctx sys w') then begin
          let p = Qap.pw_poly qap w' in
          let _, r = Poly.div_rem_fast ctx p (Lazy.force qap.Qap.divisor) in
          Alcotest.(check bool) "remainder nonzero" false (Poly.is_zero r)
        end);
    Alcotest.test_case "P_w(sigma_j) equals constraint residual" `Quick (fun () ->
        (* For any assignment (satisfying or not), P_w(sigma_j) =
           <a_j,w><b_j,w> - <c_j,w>. *)
        let sys, w = random_sys 21 in
        let qap = Qap.of_r1cs sys in
        let w' = Array.copy w in
        w'.(1) <- Fp.sub ctx w'.(1) (fi 17);
        let p = Qap.pw_poly qap w' in
        Array.iteri
          (fun j k ->
            let expected = R1cs.eval_constr ctx k w' in
            let got = Poly.eval ctx p (fi (j + 1)) in
            Alcotest.(check bool) "match" true (Fp.equal got expected))
          sys.R1cs.constraints);
    Alcotest.test_case "P_w(0) = 0 (A_i(0)=B_i(0)=C_i(0)=0)" `Quick (fun () ->
        let sys, w = random_sys 31 in
        let qap = Qap.of_r1cs sys in
        let p = Qap.pw_poly qap w in
        Alcotest.(check bool) "zero at 0" true (Fp.is_zero (Poly.eval ctx p Fp.zero)));
    Alcotest.test_case "queries match direct interpolation" `Quick (fun () ->
        (* Evaluate the interpolated per-variable polynomials directly and
           compare against the barycentric fast path. *)
        let sys, _ = random_sys 5 in
        let qap = Qap.of_r1cs sys in
        let nc = R1cs.num_constraints sys in
        let n = sys.R1cs.num_vars in
        let tau = fi 987654321 in
        let q = Qap.queries qap ~tau in
        let points = Array.init (nc + 1) (fun j -> fi j) in
        let check_side row (evals : Fp.el array) =
          for i = 0 to n do
            let vals =
              Array.init (nc + 1) (fun j ->
                  if j = 0 then Fp.zero
                  else Lincomb.coeff (row sys.R1cs.constraints.(j - 1)) i)
            in
            let poly = Subproduct.interpolate_points ctx points vals in
            Alcotest.(check bool) "eval agrees" true (Fp.equal (Poly.eval ctx poly tau) evals.(i))
          done
        in
        check_side (fun (k : R1cs.constr) -> k.R1cs.a) q.Qap.a_tau;
        check_side (fun (k : R1cs.constr) -> k.R1cs.b) q.Qap.b_tau;
        check_side (fun (k : R1cs.constr) -> k.R1cs.c) q.Qap.c_tau;
        (* D(tau) directly *)
        let d = Subproduct.(root_poly ctx (build ctx (Array.init nc (fun j -> fi (j + 1))))) in
        Alcotest.(check bool) "D(tau)" true (Fp.equal (Poly.eval ctx d tau) q.Qap.d_tau));
    Alcotest.test_case "tau collision raises" `Quick (fun () ->
        let sys, _ = random_sys 3 in
        let qap = Qap.of_r1cs sys in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Qap.queries qap ~tau:(fi 1));
             false
           with Qap.Tau_collision -> true));
    Alcotest.test_case "field too small for |C| rejected" `Quick (fun () ->
        let tiny = Fp.create (Nat.of_int 7) in
        let lc = Lincomb.of_var 1 in
        let sys =
          {
            R1cs.field = tiny;
            num_vars = 1;
            num_z = 1;
            constraints = Array.make 7 { R1cs.a = lc; b = lc; c = lc };
          }
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Qap.of_r1cs sys);
             false
           with Invalid_argument _ -> true));
  ]

let property_tests =
  [
    qtest "honest proof passes divisibility check" 60 QCheck.small_int (fun seed ->
        let sys, w = random_sys seed in
        let qap = Qap.of_r1cs sys in
        let h = Qap.prover_h qap w in
        let prg = Chacha.Prg.create ~seed:(Printf.sprintf "tau %d" seed) () in
        let tau = Chacha.Prg.field ctx prg in
        (try divisibility_holds qap w h tau with Qap.Tau_collision -> true));
    qtest "forced proof for bad assignment fails (whp)" 60 QCheck.small_int (fun seed ->
        let sys, w = random_sys seed in
        let qap = Qap.of_r1cs sys in
        let w' = Array.copy w in
        w'.(1) <- Fp.add ctx w'.(1) (fi 3);
        if R1cs.satisfied ctx sys w' then true
        else begin
          let h = Qap.prover_h_forced qap w' in
          let prg = Chacha.Prg.create ~seed:(Printf.sprintf "tau2 %d" seed) () in
          let tau = Chacha.Prg.field ctx prg in
          try not (divisibility_holds qap w' h tau) with Qap.Tau_collision -> true
        end);
    qtest "prover_h raises on unsatisfying assignment" 30 QCheck.small_int (fun seed ->
        let sys, w = random_sys seed in
        let qap = Qap.of_r1cs sys in
        let w' = Array.copy w in
        w'.(1) <- Fp.add ctx w'.(1) Fp.one;
        if R1cs.satisfied ctx sys w' then true
        else (try ignore (Qap.prover_h qap w'); false with Failure _ -> true));
  ]

let suite = unit_tests @ property_tests
