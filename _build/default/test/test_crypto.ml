open Fieldlib
open Zcrypto

(* Small parameters keep the unit tests fast; the bench exercises 1024-bit
   groups. *)
let field = Primes.p61
let ctx = Fp.create field
let grp = Group.cached ~field_order:field ~p_bits:192 ()

let prg seed = Chacha.Prg.create ~seed ()

let unit_tests =
  [
    Alcotest.test_case "group parameters" `Quick (fun () ->
        Alcotest.(check bool) "p prime" true (Primes.is_prime grp.Group.p);
        Alcotest.(check int) "p bits" 192 (Nat.num_bits grp.Group.p);
        (* g has order exactly q *)
        Alcotest.(check bool) "g^q = 1" true
          (Fp.equal (Group.pow grp grp.Group.g grp.Group.q) Fp.one);
        Alcotest.(check bool) "g <> 1" false (Fp.equal grp.Group.g Fp.one));
    Alcotest.test_case "elgamal roundtrip (to group encoding)" `Quick (fun () ->
        let p = prg "eg" in
        let sk, pk = Elgamal.keygen grp p in
        for i = 0 to 20 do
          let m = Fp.of_int ctx (i * 7919) in
          let c = Elgamal.encrypt pk p m in
          Alcotest.(check bool) "dec" true
            (Group.equal (Elgamal.decrypt_to_group sk c) (Elgamal.encode pk m))
        done);
    Alcotest.test_case "elgamal additive homomorphism" `Quick (fun () ->
        let p = prg "hom" in
        let sk, pk = Elgamal.keygen grp p in
        let a = Chacha.Prg.field ctx p and b = Chacha.Prg.field ctx p in
        let ca = Elgamal.encrypt pk p a and cb = Elgamal.encrypt pk p b in
        let sum = Elgamal.hom_add pk ca cb in
        Alcotest.(check bool) "add" true
          (Group.equal (Elgamal.decrypt_to_group sk sum) (Elgamal.encode pk (Fp.add ctx a b)));
        let s = Fp.of_int ctx 12345 in
        let scaled = Elgamal.hom_scale pk ca s in
        Alcotest.(check bool) "scale" true
          (Group.equal (Elgamal.decrypt_to_group sk scaled) (Elgamal.encode pk (Fp.mul ctx a s))));
    Alcotest.test_case "elgamal hom_dot = Enc(<u,r>)" `Quick (fun () ->
        let p = prg "dot" in
        let sk, pk = Elgamal.keygen grp p in
        let n = 12 in
        let r = Array.init n (fun _ -> Chacha.Prg.field ctx p) in
        let u = Array.init n (fun i -> if i mod 3 = 0 then Fp.zero else Chacha.Prg.field ctx p) in
        let enc_r = Array.map (Elgamal.encrypt pk p) r in
        let c = Elgamal.hom_dot pk enc_r u in
        Alcotest.(check bool) "dot" true
          (Group.equal (Elgamal.decrypt_to_group sk c) (Elgamal.encode pk (Fp.dot ctx u r))));
    Alcotest.test_case "ciphertexts are randomized" `Quick (fun () ->
        let p = prg "rand" in
        let _, pk = Elgamal.keygen grp p in
        let m = Fp.of_int ctx 42 in
        let c1 = Elgamal.encrypt pk p m and c2 = Elgamal.encrypt pk p m in
        Alcotest.(check bool) "differ" false
          (Group.equal c1.Elgamal.c1 c2.Elgamal.c1 && Group.equal c1.Elgamal.c2 c2.Elgamal.c2));
  ]

let commit_tests =
  [
    Alcotest.test_case "commitment accepts honest prover" `Quick (fun () ->
        let p = prg "commit ok" in
        let u = Array.init 10 (fun i -> Fp.of_int ctx (i + 1)) in
        let req, vs = Commitment.Commit.commit_request ctx grp p ~len:10 in
        let com = Commitment.Commit.prover_commit req u in
        let queries = Array.init 5 (fun _ -> Array.init 10 (fun _ -> Chacha.Prg.field ctx p)) in
        let ch = Commitment.Commit.decommit_challenge ctx vs p queries in
        let ans = Commitment.Commit.prover_answer ctx u queries ch.Commitment.Commit.t in
        Alcotest.(check bool) "accept" true
          (Commitment.Commit.consistency_check vs ch ~commitment:com ans));
    Alcotest.test_case "commitment rejects inconsistent answers" `Quick (fun () ->
        let p = prg "commit bad" in
        let u = Array.init 10 (fun i -> Fp.of_int ctx (i + 1)) in
        let req, vs = Commitment.Commit.commit_request ctx grp p ~len:10 in
        let com = Commitment.Commit.prover_commit req u in
        let queries = Array.init 5 (fun _ -> Array.init 10 (fun _ -> Chacha.Prg.field ctx p)) in
        let ch = Commitment.Commit.decommit_challenge ctx vs p queries in
        let ans = Commitment.Commit.prover_answer ctx u queries ch.Commitment.Commit.t in
        (* Tamper with one PCP answer after committing. *)
        let tampered = { ans with Commitment.Commit.a = Array.copy ans.Commitment.Commit.a } in
        tampered.Commitment.Commit.a.(2) <- Fp.add ctx tampered.Commitment.Commit.a.(2) Fp.one;
        Alcotest.(check bool) "reject" false
          (Commitment.Commit.consistency_check vs ch ~commitment:com tampered));
    Alcotest.test_case "commitment rejects equivocation (different u for t)" `Quick (fun () ->
        let p = prg "commit equiv" in
        let u = Array.init 8 (fun i -> Fp.of_int ctx (i + 2)) in
        let u' = Array.init 8 (fun i -> Fp.of_int ctx (i + 3)) in
        let req, vs = Commitment.Commit.commit_request ctx grp p ~len:8 in
        let com = Commitment.Commit.prover_commit req u in
        let queries = Array.init 3 (fun _ -> Array.init 8 (fun _ -> Chacha.Prg.field ctx p)) in
        let ch = Commitment.Commit.decommit_challenge ctx vs p queries in
        (* Answer queries with u' while having committed to u. *)
        let ans = Commitment.Commit.prover_answer ctx u' queries ch.Commitment.Commit.t in
        Alcotest.(check bool) "reject" false
          (Commitment.Commit.consistency_check vs ch ~commitment:com ans));
  ]

let suite = unit_tests @ commit_tests

(* Regression: group generation must terminate for field orders just above
   a power of two (p220 = first prime >= 2^219), where a fixed multiplier
   bit-length leaves an almost-empty window for p_bits-bit primes. *)
let regression_tests =
  [
    Alcotest.test_case "group generation over p220-style field orders" `Slow (fun () ->
        let q = Primes.p220 () in
        let g = Group.generate ~seed:"regression 220" ~field_order:q ~p_bits:320 () in
        Alcotest.(check int) "p bits" 320 (Nat.num_bits g.Group.p);
        Alcotest.(check bool) "p prime" true (Primes.is_prime g.Group.p);
        Alcotest.(check bool) "g order q" true (Fp.equal (Group.pow g g.Group.g q) Fp.one));
    Alcotest.test_case "group generation over p61 still works" `Quick (fun () ->
        let g = Group.generate ~seed:"regression 61" ~field_order:Primes.p61 ~p_bits:128 () in
        Alcotest.(check int) "p bits" 128 (Nat.num_bits g.Group.p);
        Alcotest.(check bool) "g <> 1" false (Fp.equal g.Group.g Fp.one));
  ]

let suite = suite @ regression_tests
