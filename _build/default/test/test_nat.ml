open Fieldlib

let nat = Alcotest.testable Nat.pp Nat.equal

(* Random generators kept within the range where int arithmetic is an exact
   reference. *)
let small_int = QCheck.Gen.int_range 0 ((1 lsl 30) - 1)
let arb_small = QCheck.make ~print:string_of_int small_int

let gen_big =
  QCheck.Gen.(
    list_size (int_range 1 12) (int_range 0 ((1 lsl 30) - 1)) >|= fun limbs ->
    List.fold_left (fun acc l -> Nat.add_int (Nat.shift_left acc 30) l) Nat.zero limbs)

let arb_big = QCheck.make ~print:Nat.to_decimal gen_big

let arb_big_pos =
  QCheck.make ~print:Nat.to_decimal QCheck.Gen.(gen_big >|= fun n -> Nat.add_int n 1)

let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let unit_tests =
  [
    Alcotest.test_case "of_int/to_int roundtrip" `Quick (fun () ->
        List.iter
          (fun n -> Alcotest.(check int) "roundtrip" n (Nat.to_int (Nat.of_int n)))
          [ 0; 1; 2; 42; (1 lsl 31) - 1; 1 lsl 31; 1 lsl 45; max_int ]);
    Alcotest.test_case "decimal roundtrip" `Quick (fun () ->
        let s = "123456789012345678901234567890123456789" in
        Alcotest.(check string) "decimal" s (Nat.to_decimal (Nat.of_decimal s)));
    Alcotest.test_case "hex roundtrip" `Quick (fun () ->
        let s = "deadbeefcafebabe0123456789abcdef" in
        Alcotest.(check string) "hex" s (Nat.to_hex (Nat.of_hex s)));
    Alcotest.test_case "hex accepts 0x prefix and underscores" `Quick (fun () ->
        Alcotest.check nat "same" (Nat.of_hex "0xff_ff") (Nat.of_int 65535));
    Alcotest.test_case "sub underflow raises" `Quick (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "Nat.sub: negative result") (fun () ->
            ignore (Nat.sub (Nat.of_int 3) (Nat.of_int 5))));
    Alcotest.test_case "divide by zero raises" `Quick (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Nat.divmod (Nat.of_int 3) Nat.zero)));
    Alcotest.test_case "shift identities" `Quick (fun () ->
        let a = Nat.of_decimal "987654321987654321987654321" in
        Alcotest.check nat "lr" a (Nat.shift_right (Nat.shift_left a 100) 100);
        Alcotest.check nat "mul2" (Nat.mul a Nat.two) (Nat.shift_left a 1));
    Alcotest.test_case "bytes roundtrip" `Quick (fun () ->
        let a = Nat.of_hex "0102030405060708090a0b0c" in
        Alcotest.check nat "bytes" a (Nat.of_bytes_le (Nat.to_bytes_le a 16)));
    Alcotest.test_case "karatsuba vs schoolbook cross" `Quick (fun () ->
        (* Large enough to trigger the Karatsuba path. *)
        let mk seed len =
          let st = ref seed in
          let limbs = List.init len (fun _ ->
              st := (!st * 442695040888963407 + 1442695040888963407) land max_int;
              !st land 0x3fffffff)
          in
          List.fold_left (fun acc l -> Nat.add_int (Nat.shift_left acc 30) l) Nat.zero limbs
        in
        let a = mk 1 100 and b = mk 2 80 in
        let ab = Nat.mul a b in
        (* (a+b)^2 = a^2 + 2ab + b^2 exercises consistency across paths. *)
        let lhs = Nat.sqr (Nat.add a b) in
        let rhs = Nat.add (Nat.add (Nat.sqr a) (Nat.shift_left ab 1)) (Nat.sqr b) in
        Alcotest.check nat "binomial" lhs rhs);
    Alcotest.test_case "num_bits/testbit" `Quick (fun () ->
        let a = Nat.shift_left Nat.one 100 in
        Alcotest.(check int) "bits" 101 (Nat.num_bits a);
        Alcotest.(check bool) "bit100" true (Nat.testbit a 100);
        Alcotest.(check bool) "bit99" false (Nat.testbit a 99));
    Alcotest.test_case "pow_int" `Quick (fun () ->
        Alcotest.check nat "2^100" (Nat.shift_left Nat.one 100) (Nat.pow_int Nat.two 100);
        Alcotest.check nat "x^0" Nat.one (Nat.pow_int (Nat.of_int 7) 0));
  ]

let property_tests =
  [
    qtest "add matches int" 500
      (QCheck.pair arb_small arb_small)
      (fun (a, b) -> Nat.to_int (Nat.add (Nat.of_int a) (Nat.of_int b)) = a + b);
    qtest "mul matches int" 500
      (QCheck.pair arb_small arb_small)
      (fun (a, b) -> Nat.to_int (Nat.mul (Nat.of_int a) (Nat.of_int b)) = a * b);
    qtest "add commutative" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a));
    qtest "mul commutative" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a));
    qtest "mul distributes over add" 300
      (QCheck.triple arb_big arb_big arb_big)
      (fun (a, b, c) ->
        Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
    qtest "add then sub roundtrip" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b));
    qtest "divmod invariant" 500
      (QCheck.pair arb_big arb_big_pos)
      (fun (a, b) ->
        let q, r = Nat.divmod a b in
        Nat.compare r b < 0 && Nat.equal a (Nat.add (Nat.mul q b) r));
    qtest "divmod exact on products" 300
      (QCheck.pair arb_big arb_big_pos)
      (fun (a, b) ->
        let q, r = Nat.divmod (Nat.mul a b) b in
        Nat.is_zero r && Nat.equal q a);
    qtest "decimal roundtrip" 200 arb_big (fun a -> Nat.equal a (Nat.of_decimal (Nat.to_decimal a)));
    qtest "hex roundtrip" 200 arb_big (fun a -> Nat.equal a (Nat.of_hex (Nat.to_hex a)));
    qtest "compare consistent with sub" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) ->
        match Nat.compare a b with
        | 0 -> Nat.equal a b
        | c when c > 0 -> Nat.equal (Nat.add (Nat.sub a b) b) a
        | _ -> Nat.equal (Nat.add (Nat.sub b a) a) b);
    qtest "shift_left is mul by power of two" 200
      (QCheck.pair arb_big (QCheck.make ~print:string_of_int (QCheck.Gen.int_range 0 70)))
      (fun (a, s) -> Nat.equal (Nat.shift_left a s) (Nat.mul a (Nat.pow_int Nat.two s)));
  ]

let suite = unit_tests @ property_tests

(* Regression: the Karatsuba split must return (high, low) even when one
   operand is shorter than the split point (an early bug produced wrong
   products for very unbalanced operands). *)
let regression_tests =
  [
    Alcotest.test_case "karatsuba with very unbalanced operands" `Quick (fun () ->
        let mk seed len =
          let st = ref seed in
          let limbs = List.init len (fun _ ->
              st := (!st * 442695040888963407 + 17) land max_int;
              !st land 0x3fffffff)
          in
          List.fold_left (fun acc l -> Nat.add_int (Nat.shift_left acc 30) l) Nat.zero limbs
        in
        (* lengths chosen so that k = (max+1)/2 exceeds the short operand *)
        List.iter
          (fun (la, lb) ->
            let a = mk 3 la and b = mk 4 lb in
            (* verify against a shift-and-add reference *)
            let reference =
              let acc = ref Nat.zero in
              for i = Nat.num_bits b - 1 downto 0 do
                acc := Nat.shift_left !acc 1;
                if Nat.testbit b i then acc := Nat.add !acc a
              done;
              !acc
            in
            Alcotest.check nat (Printf.sprintf "%dx%d" la lb) reference (Nat.mul a b))
          [ (120, 30); (30, 120); (100, 26); (64, 25) ]);
  ]

let suite = suite @ regression_tests
