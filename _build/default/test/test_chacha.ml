open Fieldlib
open Chacha

(* RFC 8439 section 2.3.2 test vector: key = 00 01 .. 1f, nonce =
   00:00:00:09:00:00:00:4a:00:00:00:00, block counter 1. *)
let rfc_key = Bytes.init 32 Char.chr

let rfc_nonce =
  Bytes.of_string "\x00\x00\x00\x09\x00\x00\x00\x4a\x00\x00\x00\x00"

let rfc_keystream_hex =
  "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
   d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"

let hex_of_bytes b =
  String.concat "" (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let unit_tests =
  [
    Alcotest.test_case "RFC 8439 block vector" `Quick (fun () ->
        let key = Chacha20.key_of_bytes rfc_key in
        let nonce = Chacha20.nonce_of_bytes rfc_nonce in
        let ks = Chacha20.block key nonce 1 in
        Alcotest.(check string) "keystream" rfc_keystream_hex (hex_of_bytes ks));
    Alcotest.test_case "deterministic streams" `Quick (fun () ->
        let a = Prg.create ~seed:"test seed" () in
        let b = Prg.create ~seed:"test seed" () in
        Alcotest.(check bytes) "same" (Prg.bytes a 100) (Prg.bytes b 100));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Prg.create ~seed:"seed one" () in
        let b = Prg.create ~seed:"seed two" () in
        Alcotest.(check bool) "differ" false (Prg.bytes a 32 = Prg.bytes b 32));
    Alcotest.test_case "split independence" `Quick (fun () ->
        let a = Prg.create ~seed:"parent" () in
        let c1 = Prg.split a in
        let c2 = Prg.split a in
        Alcotest.(check bool) "children differ" false (Prg.bytes c1 32 = Prg.bytes c2 32));
    Alcotest.test_case "int_below in range" `Quick (fun () ->
        let p = Prg.create ~seed:"ranges" () in
        for _ = 1 to 1000 do
          let n = 1 + Prg.int_below p 100 in
          let v = Prg.int_below p n in
          Alcotest.(check bool) "range" true (v >= 0 && v < n)
        done);
    Alcotest.test_case "field sampling uniform-ish" `Quick (fun () ->
        (* All samples in range; low-bit balance is a coarse sanity check. *)
        let ctx = Fp.create Primes.p61 in
        let p = Prg.create ~seed:"field" () in
        let ones = ref 0 in
        for _ = 1 to 500 do
          let x = Prg.field ctx p in
          Alcotest.(check bool) "in range" true (Nat.compare (Fp.to_nat x) (Fp.modulus ctx) < 0);
          if Nat.testbit (Fp.to_nat x) 0 then incr ones
        done;
        Alcotest.(check bool) "bit balance" true (!ones > 150 && !ones < 350));
    Alcotest.test_case "field_nonzero" `Quick (fun () ->
        let ctx = Fp.create (Nat.of_int 3) in
        let p = Prg.create ~seed:"nz" () in
        for _ = 1 to 100 do
          Alcotest.(check bool) "nonzero" false (Fp.is_zero (Prg.field_nonzero ctx p))
        done);
  ]

let suite = unit_tests
