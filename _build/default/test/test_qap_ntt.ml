open Fieldlib
open Constr

(* The roots-of-unity QAP (Qap_ntt) over the NTT-friendly BLS12-381 scalar
   field. *)

let fr = Fp.create Primes.bls12_381_fr

let random_satisfiable seed =
  let prg = Chacha.Prg.create ~seed:(Printf.sprintf "ntt r1cs %d" seed) () in
  let n = 4 + Chacha.Prg.int_below prg 12 in
  let num_z = 1 + Chacha.Prg.int_below prg (n - 1) in
  let nc = 2 + Chacha.Prg.int_below prg 20 in
  let w = Array.init (n + 1) (fun i -> if i = 0 then Fp.one else Chacha.Prg.field fr prg) in
  let random_row () =
    let t = ref Lincomb.zero in
    for _ = 0 to Chacha.Prg.int_below prg 4 do
      t := Lincomb.add_term fr !t (Chacha.Prg.int_below prg (n + 1)) (Chacha.Prg.field fr prg)
    done;
    !t
  in
  let constraints =
    Array.init nc (fun _ ->
        let a = random_row () and b = random_row () and c0 = random_row () in
        let target = Fp.mul fr (Lincomb.eval fr a w) (Lincomb.eval fr b w) in
        let fix = Fp.sub fr target (Lincomb.eval fr c0 w) in
        { R1cs.a; b; c = Lincomb.add_term fr c0 0 fix })
  in
  ({ R1cs.field = fr; num_vars = n; num_z; constraints }, w)

let divisibility_holds q (w : Fp.el array) (h : Fp.el array) tau =
  let qq = Qap_ntt.queries q ~tau in
  let sys = q.Qap_ntt.sys in
  let z = Array.sub w 1 sys.R1cs.num_z in
  let io = Array.sub w (sys.R1cs.num_z + 1) (R1cs.num_io sys) in
  let la = Qap_ntt.io_contribution q qq.Qap_ntt.a_tau io in
  let lb = Qap_ntt.io_contribution q qq.Qap_ntt.b_tau io in
  let lc = Qap_ntt.io_contribution q qq.Qap_ntt.c_tau io in
  let az = Fp.add fr (Fp.dot fr (Qap_ntt.z_slice q qq.Qap_ntt.a_tau) z) la in
  let bz = Fp.add fr (Fp.dot fr (Qap_ntt.z_slice q qq.Qap_ntt.b_tau) z) lb in
  let cz = Fp.add fr (Fp.dot fr (Qap_ntt.z_slice q qq.Qap_ntt.c_tau) z) lc in
  let lhs = Fp.mul fr qq.Qap_ntt.d_tau (Fp.dot fr qq.Qap_ntt.qd h) in
  let rhs = Fp.sub fr (Fp.mul fr az bz) cz in
  Fp.equal lhs rhs

let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let unit_tests =
  [
    Alcotest.test_case "domain is the full 2^k root-of-unity subgroup" `Quick (fun () ->
        let sys, _ = random_satisfiable 5 in
        let q = Qap_ntt.of_r1cs sys in
        Alcotest.(check bool) "pow2" true (q.Qap_ntt.n land (q.Qap_ntt.n - 1) = 0);
        (* omega^n = 1 and all domain points distinct *)
        Alcotest.(check bool) "omega^n" true
          (Fp.equal (Fp.pow_int fr q.Qap_ntt.omega q.Qap_ntt.n) Fp.one);
        let seen = Hashtbl.create 16 in
        Array.iter (fun d -> Hashtbl.replace seen (Fp.to_string d) ()) q.Qap_ntt.domain;
        Alcotest.(check int) "distinct" q.Qap_ntt.n (Hashtbl.length seen));
    Alcotest.test_case "P_w vanishes on the whole padded domain" `Quick (fun () ->
        let sys, w = random_satisfiable 7 in
        let q = Qap_ntt.of_r1cs sys in
        let p = Qap_ntt.pw_coeffs q w in
        Array.iter
          (fun d -> Alcotest.(check bool) "zero" true (Fp.is_zero (Polylib.Poly.eval fr p d)))
          q.Qap_ntt.domain);
    Alcotest.test_case "prover_h raises on bad witness" `Quick (fun () ->
        let sys, w = random_satisfiable 9 in
        let q = Qap_ntt.of_r1cs sys in
        let w' = Array.copy w in
        w'.(1) <- Fp.add fr w'.(1) Fp.one;
        if not (R1cs.satisfied fr sys w') then
          Alcotest.(check bool) "raises" true
            (try
               ignore (Qap_ntt.prover_h q w');
               false
             with Qap_ntt.Not_divisible -> true));
    Alcotest.test_case "tau on the domain raises" `Quick (fun () ->
        let sys, _ = random_satisfiable 11 in
        let q = Qap_ntt.of_r1cs sys in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Qap_ntt.queries q ~tau:q.Qap_ntt.domain.(1));
             false
           with Qap_ntt.Tau_collision -> true));
  ]

let property_tests =
  [
    qtest "honest NTT proof passes divisibility" 40 QCheck.small_int (fun seed ->
        let sys, w = random_satisfiable seed in
        let q = Qap_ntt.of_r1cs sys in
        let h = Qap_ntt.prover_h q w in
        let prg = Chacha.Prg.create ~seed:(Printf.sprintf "ntt tau %d" seed) () in
        let tau = Chacha.Prg.field fr prg in
        try divisibility_holds q w h tau with Qap_ntt.Tau_collision -> true);
    qtest "forced NTT proof for bad witness fails (whp)" 40 QCheck.small_int (fun seed ->
        let sys, w = random_satisfiable seed in
        let q = Qap_ntt.of_r1cs sys in
        let w' = Array.copy w in
        w'.(1) <- Fp.add fr w'.(1) (Fp.of_int fr 7) ;
        if R1cs.satisfied fr sys w' then true
        else begin
          let h = Qap_ntt.prover_h_forced q w' in
          let prg = Chacha.Prg.create ~seed:(Printf.sprintf "ntt tau2 %d" seed) () in
          let tau = Chacha.Prg.field fr prg in
          try not (divisibility_holds q w' h tau) with Qap_ntt.Tau_collision -> true
        end);
    qtest "NTT and subproduct QAP provers agree with constraint semantics" 20 QCheck.small_int
      (fun seed ->
        (* Both encodings must accept exactly the satisfying assignments. *)
        let sys, w = random_satisfiable seed in
        let q_ntt = Qap_ntt.of_r1cs sys in
        let q_cls = Qap.of_r1cs sys in
        let ok_ntt = (try ignore (Qap_ntt.prover_h q_ntt w); true with Qap_ntt.Not_divisible -> false) in
        let ok_cls = (try ignore (Qap.prover_h q_cls w); true with Failure _ -> false) in
        ok_ntt && ok_cls);
  ]

let suite = unit_tests @ property_tests
