open Fieldlib
open Apps

let ctx = Fp.create Primes.p127

(* Differential tests: every benchmark, compiled and solved, must match its
   native reference on random inputs, with both encodings satisfied. *)
let differential_test (app : App_def.t) =
  Alcotest.test_case (Printf.sprintf "%s (%s) matches native" app.App_def.name app.App_def.params_desc)
    `Quick (fun () ->
      let prg = Chacha.Prg.create ~seed:("apps " ^ app.App_def.name) () in
      ignore (Glue.differential_check ~trials:4 ctx app prg))

let apps_small =
  [
    Pam.app ~m:3 ~d:2;
    Pam.app ~m:4 ~d:3;
    Bisection.app ~m:2 ~l:3;
    Bisection.app ~m:3 ~l:4;
    Apsp.app ~m:3;
    Apsp.app ~m:4;
    Fannkuch.app ~m:1 ~n:4 ~bound:6;
    Fannkuch.app ~m:2 ~n:4 ~bound:6;
    Lcs.app ~m:4;
    Lcs.app ~m:6;
  ]

(* Spot-check the native implementations themselves on hand-computable
   cases, so the differential tests are anchored to ground truth. *)
let native_tests =
  [
    Alcotest.test_case "native lcs ground truth" `Quick (fun () ->
        (* a = 1,2,3,4 ; b = 2,4,3,4 -> LCS 2,3,4 of length 3 *)
        let out = (Lcs.app ~m:4).App_def.native [| 1; 2; 3; 4; 2; 4; 3; 4 |] in
        Alcotest.(check (array int)) "lcs" [| 3 |] out);
    Alcotest.test_case "native apsp ground truth" `Quick (fun () ->
        (* 3 nodes: 0->1 = 1, 1->2 = 1, 0->2 = 10 (and inf elsewhere) *)
        let i = Apsp.inf in
        let out = (Apsp.app ~m:3).App_def.native [| 0; 1; 10; i; 0; 1; i; i; 0 |] in
        Alcotest.(check int) "0->2 relaxed" 2 out.(2));
    Alcotest.test_case "native fannkuch ground truth" `Quick (fun () ->
        (* permutation (2 1 3 4): one flip of prefix 2 -> (1 2 3 4). *)
        let out = (Fannkuch.app ~m:1 ~n:4 ~bound:6).App_def.native [| 2; 1; 3; 4 |] in
        Alcotest.(check (array int)) "counts,max" [| 1; 1 |] out);
    Alcotest.test_case "native fannkuch known hard case" `Quick (fun () ->
        (* (3 1 2 4): flip3 -> (2 1 3 4); flip2 -> (1 2 3 4): 2 flips *)
        let out = (Fannkuch.app ~m:1 ~n:4 ~bound:6).App_def.native [| 3; 1; 2; 4 |] in
        Alcotest.(check (array int)) "counts,max" [| 2; 2 |] out);
    Alcotest.test_case "native pam picks central medoid" `Quick (fun () ->
        (* 3 points on a line at 0, 1, 10 (d=1): medoid 1 is central. *)
        let out = (Pam.app ~m:3 ~d:1).App_def.native [| 0; 1; 10 |] in
        Alcotest.(check int) "med1" 1 out.(0));
    Alcotest.test_case "native bisection recovers planted root" `Quick (fun () ->
        let app = Bisection.app ~m:3 ~l:5 in
        let prg = Chacha.Prg.create ~seed:"bisect plant" () in
        for _ = 1 to 10 do
          let inputs = app.App_def.gen_inputs prg in
          let out = app.App_def.native inputs in
          (* F monotone increasing and target = F(r): the search returns r. *)
          Alcotest.(check bool) "in range" true (out.(0) >= 0 && out.(0) < 32)
        done);
  ]

(* End-to-end: compile a benchmark and run the full batched argument. *)
let e2e_tests =
  [
    Alcotest.test_case "end-to-end: lcs through the argument system" `Slow (fun () ->
        let app = Lcs.app ~m:4 in
        let prg = Chacha.Prg.create ~seed:"e2e lcs" () in
        let compiled = Glue.compile ctx app in
        let comp = Glue.computation_of compiled in
        let inputs =
          Array.init 3 (fun _ -> Glue.field_inputs ctx (app.App_def.gen_inputs prg))
        in
        let r = Argsys.Argument.run_batch ~config:Argsys.Argument.test_config comp ~prg ~inputs in
        Alcotest.(check bool) "accepted" true (Argsys.Argument.all_accepted r));
    Alcotest.test_case "end-to-end: cheating prover on apsp rejected" `Slow (fun () ->
        let app = Apsp.app ~m:3 in
        let prg = Chacha.Prg.create ~seed:"e2e apsp cheat" () in
        let compiled = Glue.compile ctx app in
        let comp = Glue.computation_of compiled in
        let inputs = [| Glue.field_inputs ctx (app.App_def.gen_inputs prg) |] in
        let config = { Argsys.Argument.test_config with Argsys.Argument.strategy = Argsys.Argument.Wrong_output } in
        let r = Argsys.Argument.run_batch ~config comp ~prg ~inputs in
        Alcotest.(check bool) "rejected" true (Argsys.Argument.none_accepted r));
  ]

let suite = native_tests @ List.map differential_test apps_small @ e2e_tests
