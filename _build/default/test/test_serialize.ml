open Fieldlib
open Constr

let ctx = Fp.create Primes.p61

let roundtrip_system sys =
  let s = Serialize.system_to_string sys in
  let sys' = Serialize.system_of_string s in
  Alcotest.(check int) "num_vars" sys.R1cs.num_vars sys'.R1cs.num_vars;
  Alcotest.(check int) "num_z" sys.R1cs.num_z sys'.R1cs.num_z;
  Alcotest.(check int) "constraints" (R1cs.num_constraints sys) (R1cs.num_constraints sys');
  Array.iteri
    (fun j (k : R1cs.constr) ->
      let k' = sys'.R1cs.constraints.(j) in
      Alcotest.(check bool) "a" true (Lincomb.equal k.R1cs.a k'.R1cs.a);
      Alcotest.(check bool) "b" true (Lincomb.equal k.R1cs.b k'.R1cs.b);
      Alcotest.(check bool) "c" true (Lincomb.equal k.R1cs.c k'.R1cs.c))
    sys.R1cs.constraints

let unit_tests =
  [
    Alcotest.test_case "random system roundtrips" `Quick (fun () ->
        for seed = 0 to 10 do
          let sys, w = Test_constr.random_satisfiable_r1cs seed in
          roundtrip_system sys;
          (* A satisfying witness of the original satisfies the parsed
             system too. *)
          let sys' = Serialize.system_of_string (Serialize.system_to_string sys) in
          Alcotest.(check bool) "still satisfied" true (R1cs.satisfied ctx sys' w)
        done);
    Alcotest.test_case "compiled benchmark roundtrips" `Quick (fun () ->
        let ctx = Fp.create Primes.p127 in
        let app = Apps.Lcs.app ~m:4 in
        let c = Apps.Glue.compile ctx app in
        roundtrip_system (Zlang.Compile.zaatar_r1cs c));
    Alcotest.test_case "witness roundtrips" `Quick (fun () ->
        let prg = Chacha.Prg.create ~seed:"ser wit" () in
        let w = Array.init 33 (fun _ -> Chacha.Prg.field ctx prg) in
        let ctx', w' = Serialize.assignment_of_string (Serialize.assignment_to_string ctx w) in
        Alcotest.(check bool) "modulus" true (Nat.equal (Fp.modulus ctx') (Fp.modulus ctx));
        Array.iteri (fun i e -> Alcotest.(check bool) "el" true (Fp.equal e w'.(i))) w);
    Alcotest.test_case "comments and blank lines are skipped" `Quick (fun () ->
        let sys, _ = Test_constr.random_satisfiable_r1cs 3 in
        let s = Serialize.system_to_string sys in
        let s = "# header comment\n\n" ^ s ^ "\n# trailing\n" in
        roundtrip_system (Serialize.system_of_string s) |> ignore;
        ignore (Serialize.system_of_string s));
    Alcotest.test_case "garbage is rejected" `Quick (fun () ->
        List.iter
          (fun bad ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Serialize.system_of_string bad);
                 false
               with Serialize.Parse_error _ -> true))
          [ ""; "bogus header"; "r1cs v=1 z=1 c=1 p=3d\nA 1:1\nB 1:1" (* missing row *) ]);
    Alcotest.test_case "parsed system is wellformed-checked" `Quick (fun () ->
        let bad = "r1cs v=1 z=1 c=1 p=1fffffffffffffff\nA 9:1\nB 0:1\nC 0:0\n" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Serialize.system_of_string bad);
             false
           with Invalid_argument _ -> true));
  ]

let suite = unit_tests
