open Fieldlib

(* Domain pool and cost model. *)

let pool_tests =
  [
    Alcotest.test_case "pool map preserves order and values" `Quick (fun () ->
        let arr = Array.init 100 (fun i -> i) in
        let out = Dompool.Pool.map ~domains:4 (fun x -> x * x) arr in
        Alcotest.(check (array int)) "squares" (Array.map (fun x -> x * x) arr) out);
    Alcotest.test_case "pool with more domains than work" `Quick (fun () ->
        let out = Dompool.Pool.map ~domains:8 (fun x -> x + 1) [| 1; 2 |] in
        Alcotest.(check (array int)) "ok" [| 2; 3 |] out);
    Alcotest.test_case "pool on empty and singleton" `Quick (fun () ->
        Alcotest.(check (array int)) "empty" [||] (Dompool.Pool.map ~domains:4 (fun x -> x) [||]);
        Alcotest.(check (array int)) "one" [| 7 |] (Dompool.Pool.map ~domains:4 (fun x -> x) [| 7 |]));
    Alcotest.test_case "pool runs field work across domains" `Quick (fun () ->
        (* Shared immutable Fp context used from several domains. *)
        let ctx = Fp.create Primes.p127 in
        let xs = Array.init 64 (fun i -> Fp.of_int ctx (i + 1)) in
        let out = Dompool.Pool.map ~domains:4 (fun x -> Fp.mul ctx x x) xs in
        Array.iteri
          (fun i y -> Alcotest.(check bool) "sq" true (Fp.equal y (Fp.of_int ctx ((i + 1) * (i + 1)))))
          out);
  ]

let params : Costmodel.Params.t =
  (* A synthetic parameter set resembling the paper's table (§5.1),
     seconds. *)
  {
    Costmodel.Params.e = 65e-6;
    d = 170e-6;
    h = 91e-6;
    f_lazy = 68e-9;
    f = 210e-9;
    f_div = 2e-6;
    c = 160e-9;
    field_bits = 128;
    group_bits = 1024;
  }

let pp = { Costmodel.Model.rho = 8; rho_lin = 20 }

let sizes ~z ~k2 ~t_local : Costmodel.Model.sizes =
  {
    Costmodel.Model.z_ginger = z;
    c_ginger = z;
    z_zaatar = z + k2;
    c_zaatar = z + k2;
    k = 3 * z;
    k2;
    n_x = 32;
    n_y = 32;
    t_local;
  }

let model_tests =
  [
    Alcotest.test_case "proof vector: zaatar linear, ginger quadratic" `Quick (fun () ->
        let s = sizes ~z:1000 ~k2:500 ~t_local:1e-3 in
        Alcotest.(check int) "ginger" (1000 + (1000 * 1000)) (Costmodel.Model.u_ginger s);
        Alcotest.(check int) "zaatar" (1500 + 1500 + 1) (Costmodel.Model.u_zaatar s));
    Alcotest.test_case "zaatar prover beats ginger prover off the degenerate case" `Quick (fun () ->
        let s = sizes ~z:2000 ~k2:800 ~t_local:1e-3 in
        let zp = Costmodel.Model.zaatar_prover params pp s in
        let gp = Costmodel.Model.ginger_prover params pp s in
        Alcotest.(check bool) "orders of magnitude" true
          (gp.Costmodel.Model.total_p > 100.0 *. zp.Costmodel.Model.total_p));
    Alcotest.test_case "degenerate case: K2 ~ Z^2/2 makes zaatar comparable" `Quick (fun () ->
        (* §4: when K2 approaches K2* = (|Z|^2-|Z|)/2, |u_zaatar| ~ |u_ginger|. *)
        let z = 100 in
        let k2 = (z * z) - z in
        let k2 = k2 / 2 in
        let s = sizes ~z ~k2 ~t_local:1e-3 in
        let uz = Costmodel.Model.u_zaatar s and ug = Costmodel.Model.u_ginger s in
        Alcotest.(check bool) "within the (1 + 2/(|Z|+1)) bound" true
          (float_of_int uz <= float_of_int ug *. (1.0 +. 2.0 /. float_of_int (z + 1)) +. 3.0));
    Alcotest.test_case "breakeven batch sizes: zaatar far smaller (Figure 7)" `Quick (fun () ->
        let s = sizes ~z:2000 ~k2:500 ~t_local:5e-2 in
        match (Costmodel.Model.zaatar_breakeven params pp s, Costmodel.Model.ginger_breakeven params pp s) with
        | Some bz, Some bg ->
          Alcotest.(check bool) "smaller" true (bz < bg);
          Alcotest.(check bool) "orders of magnitude" true (bg / bz > 100)
        | _ -> Alcotest.fail "breakeven should exist when t_local is large");
    Alcotest.test_case "no breakeven when verification costs more than local" `Quick (fun () ->
        let s = sizes ~z:2000 ~k2:500 ~t_local:1e-9 in
        Alcotest.(check bool) "none" true (Costmodel.Model.zaatar_breakeven params pp s = None));
    Alcotest.test_case "measured microbenchmarks are sane" `Slow (fun () ->
        let ctx = Fp.create Primes.p61 in
        let grp = Zcrypto.Group.cached ~field_order:Primes.p61 ~p_bits:192 () in
        let m = Costmodel.Params.measure ~iters:100 ctx grp in
        Alcotest.(check bool) "f > 0" true (m.Costmodel.Params.f > 0.0);
        Alcotest.(check bool) "lazy cheaper than full mult" true
          (m.Costmodel.Params.f_lazy <= m.Costmodel.Params.f *. 1.5);
        Alcotest.(check bool) "crypto dwarfs field ops" true
          (m.Costmodel.Params.e > 10.0 *. m.Costmodel.Params.f));
  ]

let suite = pool_tests @ model_tests
