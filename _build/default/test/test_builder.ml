open Fieldlib
open Constr
open Zlang

(* Direct unit tests of the constraint-builder gadgets, below the language
   level: each gadget's constraints must be satisfied by the generated
   witness and must pin down the advertised value. *)

let ctx = Fp.create Primes.p61
let fi = Fp.of_int ctx

(* Build a tiny circuit with [k] inputs through [f], finish, solve on
   [inputs], and return (ginger system, witness, perm-applied output
   reader). [f] receives the builder and the input values and returns the
   output value to bind. *)
let run_gadget k f inputs =
  let b = Builder.create ctx in
  let ins = Array.init k (fun i -> Builder.input b ~index:i ~width:31) in
  let out = f b ins in
  Builder.bind_output b out;
  let sys, perm = Builder.finalize b in
  let worig = Builder.solve_original b (Array.map fi (Array.of_list inputs)) in
  let w = Array.make (sys.Quad.num_vars + 1) Fp.zero in
  w.(0) <- Fp.one;
  Array.iteri (fun v value -> if v > 0 then w.(perm.(v)) <- value) worig;
  let out_val = w.(sys.Quad.num_vars) (* outputs are last in canonical order *) in
  (sys, w, out_val)

let check_value name expected (sys, w, out) =
  Alcotest.(check bool) (name ^ ": satisfied") true (Quad.satisfied ctx sys w);
  Alcotest.(check (option int)) (name ^ ": value") (Some expected) (Fp.to_signed_int ctx out)

let unit_tests =
  [
    Alcotest.test_case "decompose pins the bits" `Quick (fun () ->
        let b = Builder.create ctx in
        let x = Builder.input b ~index:0 ~width:8 in
        let bits = Builder.decompose b x.Builder.qp 9 in
        Alcotest.(check int) "nine bits" 9 (Array.length bits);
        (* witness for x = 0b101101010 = 362 *)
        let w = Builder.solve_original b [| fi 362 |] in
        let got = Array.map (fun v -> Fp.to_int_opt w.(v)) bits in
        Alcotest.(check (array (option int))) "bits"
          [| Some 0; Some 1; Some 0; Some 1; Some 0; Some 1; Some 1; Some 0; Some 1 |] got);
    Alcotest.test_case "ge gadget across sign combinations" `Quick (fun () ->
        List.iter
          (fun (a, bb, expect) ->
            run_gadget 2 (fun b ins -> Builder.ge b ins.(0) ins.(1)) [ a; bb ]
            |> check_value (Printf.sprintf "%d >= %d" a bb) expect)
          [ (5, 3, 1); (3, 5, 0); (-5, 3, 0); (3, -5, 1); (-3, -5, 1); (-5, -3, 0); (4, 4, 1) ]);
    Alcotest.test_case "is_zero gadget" `Quick (fun () ->
        List.iter
          (fun (a, expect) ->
            run_gadget 1 (fun b ins -> Builder.is_zero b ins.(0)) [ a ]
            |> check_value (Printf.sprintf "is_zero %d" a) expect)
          [ (0, 1); (1, 0); (-7, 0); (123456, 0) ]);
    Alcotest.test_case "mux gadget selects" `Quick (fun () ->
        List.iter
          (fun (c, expect) ->
            run_gadget 3
              (fun b ins ->
                let cond = Builder.is_zero b ins.(0) in
                Builder.mux b cond ins.(1) ins.(2))
              [ c; 111; 222 ]
            |> check_value (Printf.sprintf "mux %d" c) expect)
          [ (0, 111); (5, 222) ]);
    Alcotest.test_case "dyn_read selects and range-checks" `Quick (fun () ->
        run_gadget 4
          (fun b ins ->
            let arr = [| ins.(0); ins.(1); ins.(2) |] in
            fst (Builder.dyn_read b ins.(3) arr))
          [ 10; 20; 30; 1 ]
        |> check_value "dyn_read" 20);
    Alcotest.test_case "dyn_write updates exactly one slot" `Quick (fun () ->
        let b = Builder.create ctx in
        let ins = Array.init 2 (fun i -> Builder.input b ~index:i ~width:31) in
        let arr = [| Builder.const b 7; Builder.const b 8; Builder.const b 9 |] in
        let arr' = Builder.dyn_write b ins.(0) arr ins.(1) in
        Array.iter (fun v -> Builder.bind_output b v) arr';
        let sys, perm = Builder.finalize b in
        let worig = Builder.solve_original b [| fi 2; fi 99 |] in
        let w = Array.make (sys.Quad.num_vars + 1) Fp.zero in
        w.(0) <- Fp.one;
        Array.iteri (fun v value -> if v > 0 then w.(perm.(v)) <- value) worig;
        Alcotest.(check bool) "satisfied" true (Quad.satisfied ctx sys w);
        let base = sys.Quad.num_vars - 2 in
        let outs = Array.init 3 (fun i -> Fp.to_int_opt w.(base + i)) in
        Alcotest.(check (array (option int))) "written" [| Some 7; Some 8; Some 99 |] outs);
    Alcotest.test_case "shr gadget floor semantics" `Quick (fun () ->
        List.iter
          (fun (x, k, expect) ->
            run_gadget 1 (fun b ins -> Builder.shr b ins.(0) k) [ x ]
            |> check_value (Printf.sprintf "%d >> %d" x k) expect)
          [ (37, 2, 9); (-37, 2, -10); (8, 3, 1); (-8, 3, -1); (0, 5, 0) ]);
    Alcotest.test_case "boolean connectives" `Quick (fun () ->
        List.iter
          (fun (x, y, expect) ->
            run_gadget 2
              (fun b ins ->
                let p = Builder.is_zero b ins.(0) in
                let q = Builder.is_zero b ins.(1) in
                Builder.bor b (Builder.band b p q) (Builder.bool_not b q))
              [ x; y ]
            |> check_value (Printf.sprintf "(x=0 && y=0) || !(y=0) for %d %d" x y) expect)
          [ (0, 0, 1); (1, 0, 0); (0, 1, 1); (1, 1, 1) ]);
    Alcotest.test_case "materialization count: linear code costs no constraints" `Quick (fun () ->
        let b = Builder.create ctx in
        let ins = Array.init 4 (fun i -> Builder.input b ~index:i ~width:20) in
        (* purely linear expression: stays symbolic *)
        let s = Array.fold_left (Builder.add b) (Builder.const b 0) ins in
        Builder.bind_output b s;
        let sys, _ = Builder.finalize b in
        (* only the output-binding constraint *)
        Alcotest.(check int) "one constraint" 1 (Quad.num_constraints sys));
    Alcotest.test_case "width tracking rejects oversized comparisons" `Quick (fun () ->
        let b = Builder.create ctx in
        let x = Builder.input b ~index:0 ~width:30 in
        (* squaring twice would need width 120 > p61's capacity of 58 *)
        Alcotest.(check bool) "raises" true
          (try
             let sq = Builder.mul b x x in
             ignore (Builder.mul b sq sq);
             false
           with Ast.Error _ -> true));
  ]

(* Property: the bind_io substitution agrees with direct evaluation. *)
let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:50 ~name:"bind_io agrees with substitution" QCheck.small_int
         (fun seed ->
           let prg = Chacha.Prg.create ~seed:(Printf.sprintf "bindio %d" seed) () in
           let sys = Test_constr.ginger_sys in
           let x = Chacha.Prg.field ctx prg in
           let y = Chacha.Prg.field ctx prg in
           let z1 = Chacha.Prg.field ctx prg in
           let bound = Quad.bind_io ctx sys [| x; y |] in
           let full = [| Fp.one; z1; x; y |] in
           let partial = [| Fp.one; z1 |] in
           Array.for_all2
             (fun q qb ->
               Fp.equal (Quad.qpoly_eval ctx q full) (Quad.qpoly_eval ctx qb partial))
             sys.Quad.constraints bound.Quad.constraints));
  ]

let suite = unit_tests @ property_tests
