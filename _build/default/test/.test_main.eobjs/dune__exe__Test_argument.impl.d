test/test_argument.ml: Alcotest Argsys Argument Array Chacha Constr Fieldlib Fp Lincomb List Metrics Primes R1cs
