test/test_crypto.ml: Alcotest Array Chacha Commitment Elgamal Fieldlib Fp Group Nat Primes Zcrypto
