test/test_apps.ml: Alcotest App_def Apps Apsp Argsys Array Bisection Chacha Fannkuch Fieldlib Fp Glue Lcs List Pam Primes Printf
