test/test_qap_ntt.ml: Alcotest Array Chacha Constr Fieldlib Fp Hashtbl Lincomb Polylib Primes Printf QCheck QCheck_alcotest Qap Qap_ntt R1cs
