test/test_builder.ml: Alcotest Array Ast Builder Chacha Constr Fieldlib Fp List Primes Printf QCheck QCheck_alcotest Quad Test_constr Zlang
