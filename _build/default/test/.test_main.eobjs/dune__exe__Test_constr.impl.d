test/test_constr.ml: Alcotest Array Chacha Constr Fieldlib Fp Lincomb List Primes Printf QCheck QCheck_alcotest Quad R1cs Transform
