test/test_poly.ml: Alcotest Array Chacha Fieldlib Format Fp Ntt Poly Polylib Primes Printf QCheck QCheck_alcotest Subproduct
