test/test_chacha.ml: Alcotest Bytes Chacha Chacha20 Char Fieldlib Fp List Nat Prg Primes Printf String
