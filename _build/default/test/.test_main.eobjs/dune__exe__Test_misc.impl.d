test/test_misc.ml: Alcotest Array Costmodel Dompool Fieldlib Fp Primes Zcrypto
