test/test_serialize.ml: Alcotest Apps Array Chacha Constr Fieldlib Fp Lincomb List Nat Primes R1cs Serialize Test_constr Zlang
