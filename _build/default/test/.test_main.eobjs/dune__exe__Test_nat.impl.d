test/test_nat.ml: Alcotest Fieldlib List Nat Printf QCheck QCheck_alcotest
