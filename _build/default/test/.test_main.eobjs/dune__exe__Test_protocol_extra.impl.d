test/test_protocol_extra.ml: Alcotest Argsys Array Chacha Constr Fieldlib Fp Nat Oracle Pcp Pcp_zaatar Primes Printf Qap R1cs Test_argument Test_constr
