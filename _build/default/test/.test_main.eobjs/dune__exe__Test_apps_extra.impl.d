test/test_apps_extra.ml: Alcotest App_def Apps Apsp Array Bisection Chacha Constr Fannkuch Fieldlib Fp Glue Lcs List Pam Primes Printf Registry Zlang
