test/test_fp.ml: Alcotest Array Bytes Chacha Char Fieldlib Fp List Montgomery Nat Primes QCheck QCheck_alcotest
