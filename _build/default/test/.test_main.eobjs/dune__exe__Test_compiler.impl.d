test/test_compiler.ml: Alcotest Array Ast Chacha Compile Constr Fieldlib Fp List Primes Printexc Printf QCheck QCheck_alcotest Quad R1cs String Zlang
