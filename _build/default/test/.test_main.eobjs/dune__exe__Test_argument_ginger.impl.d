test/test_argument_ginger.ml: Alcotest Argsys Argument_ginger Array Chacha Fieldlib Fp List Metrics Primes Printf Test_constr Zlang
