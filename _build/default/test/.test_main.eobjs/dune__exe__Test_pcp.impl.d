test/test_pcp.ml: Alcotest Array Chacha Constr Fieldlib Fp Lincomb List Oracle Pcp Pcp_ginger Pcp_zaatar Primes Printf QCheck QCheck_alcotest Qap Quad R1cs Test_constr
