test/test_qap.ml: Alcotest Array Chacha Constr Fieldlib Fp Lazy Lincomb Nat Poly Polylib Primes Printf QCheck QCheck_alcotest Qap R1cs Subproduct Test_constr
