open Fieldlib
open Polylib

let ctx = Fp.create Primes.p61
let ctx127 = Fp.create Primes.p127
let prg () = Chacha.Prg.create ~seed:"poly tests" ()

let poly_t c = Alcotest.testable (Poly.pp c) Poly.equal

let qtest name count arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* Generate random polynomials deterministically from an int seed so qcheck
   can shrink/print. *)
let gen_poly ctx =
  QCheck.Gen.(
    pair (int_range 0 40) int >|= fun (deg, seed) ->
    let p = Chacha.Prg.create ~seed:(Printf.sprintf "qpoly %d" seed) () in
    Poly.random ctx p deg)

let arb_poly c = QCheck.make ~print:(fun p -> Format.asprintf "%a" (Poly.pp c) p) (gen_poly c)

let arb_poly_nonzero c =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" (Poly.pp c) p)
    QCheck.Gen.(gen_poly c >|= fun p -> if Poly.is_zero p then Poly.one else p)

let unit_tests =
  [
    Alcotest.test_case "eval Horner" `Quick (fun () ->
        (* p(x) = 3 + 2x + x^2 at x = 5 -> 38 *)
        let p = Poly.of_coeffs [| Fp.of_int ctx 3; Fp.of_int ctx 2; Fp.one |] in
        Alcotest.(check bool) "38" true (Fp.equal (Poly.eval ctx p (Fp.of_int ctx 5)) (Fp.of_int ctx 38)));
    Alcotest.test_case "mul matches schoolbook on large inputs" `Quick (fun () ->
        let p = prg () in
        let a = Poly.random ctx p 150 and b = Poly.random ctx p 97 in
        Alcotest.check (poly_t ctx) "karatsuba" (Poly.mul_schoolbook ctx a b) (Poly.mul ctx a b));
    Alcotest.test_case "derivative product rule" `Quick (fun () ->
        let p = prg () in
        let a = Poly.random ctx p 20 and b = Poly.random ctx p 15 in
        let lhs = Poly.derivative ctx (Poly.mul ctx a b) in
        let rhs =
          Poly.add ctx
            (Poly.mul ctx (Poly.derivative ctx a) b)
            (Poly.mul ctx a (Poly.derivative ctx b))
        in
        Alcotest.check (poly_t ctx) "product rule" lhs rhs);
    Alcotest.test_case "div_rem_fast matches schoolbook" `Quick (fun () ->
        let p = prg () in
        for _ = 1 to 10 do
          let a = Poly.random ctx p 120 and b = Poly.random ctx p 37 in
          if not (Poly.is_zero b) then begin
            let q1, r1 = Poly.div_rem ctx a b in
            let q2, r2 = Poly.div_rem_fast ctx a b in
            Alcotest.check (poly_t ctx) "q" q1 q2;
            Alcotest.check (poly_t ctx) "r" r1 r2
          end
        done);
    Alcotest.test_case "inv_mod_xk" `Quick (fun () ->
        let p = prg () in
        let f = Poly.add ctx Poly.one (Poly.shift (Poly.random ctx p 30) 1) in
        let g = Poly.inv_mod_xk ctx f 50 in
        let fg = Poly.mul ctx f g in
        (* f*g = 1 mod x^50 *)
        Alcotest.(check bool) "const" true (Fp.equal (Poly.coeff fg 0) Fp.one);
        for i = 1 to 49 do
          Alcotest.(check bool) "zero" true (Fp.is_zero (Poly.coeff fg i))
        done);
    Alcotest.test_case "divide_exact guards remainder" `Quick (fun () ->
        let a = Poly.of_coeffs [| Fp.one; Fp.one |] in
        let b = Poly.of_coeffs [| Fp.of_int ctx 2; Fp.one |] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Poly.divide_exact ctx a b);
             false
           with Failure _ -> true));
    Alcotest.test_case "subproduct multipoint evaluation" `Quick (fun () ->
        let p = prg () in
        let f = Poly.random ctx p 40 in
        let points = Array.init 25 (fun i -> Fp.of_int ctx (i + 1)) in
        let tree = Subproduct.build ctx points in
        let vals = Subproduct.eval_all ctx f tree in
        Array.iteri
          (fun i v -> Alcotest.(check bool) "agree" true (Fp.equal v (Poly.eval ctx f points.(i))))
          vals);
    Alcotest.test_case "interpolation roundtrip" `Quick (fun () ->
        let p = prg () in
        let n = 33 in
        let f = Poly.random ctx127 p (n - 1) in
        let points = Array.init n (fun i -> Fp.of_int ctx127 i) in
        let values = Array.map (Poly.eval ctx127 f) points in
        let g = Subproduct.interpolate_points ctx127 points values in
        Alcotest.check (poly_t ctx127) "roundtrip" f g);
    Alcotest.test_case "interpolation through arbitrary values" `Quick (fun () ->
        let p = prg () in
        let n = 20 in
        let points = Array.init n (fun i -> Fp.of_int ctx (2 * i + 1)) in
        let values = Array.init n (fun _ -> Chacha.Prg.field ctx p) in
        let g = Subproduct.interpolate_points ctx points values in
        Alcotest.(check bool) "deg bound" true (Poly.degree g < n);
        Array.iteri
          (fun i pt -> Alcotest.(check bool) "hits" true (Fp.equal (Poly.eval ctx g pt) values.(i)))
          points);
    Alcotest.test_case "NTT forward/inverse roundtrip" `Quick (fun () ->
        let f = Fp.create Primes.bls12_381_fr in
        let t = Ntt.create f in
        let p = prg () in
        let a = Array.init 64 (fun _ -> Chacha.Prg.field f p) in
        let b = Ntt.inverse t (Ntt.forward t a) in
        Array.iteri (fun i x -> Alcotest.(check bool) "same" true (Fp.equal x b.(i))) a);
    Alcotest.test_case "NTT multiplication matches Karatsuba" `Quick (fun () ->
        let f = Fp.create Primes.bls12_381_fr in
        let t = Ntt.create f in
        let p = prg () in
        let a = Poly.random f p 50 and b = Poly.random f p 77 in
        Alcotest.check (poly_t f) "ntt mul" (Poly.mul f a b) (Ntt.mul t a b));
  ]

let property_tests =
  [
    qtest "mul commutative" 100
      (QCheck.pair (arb_poly ctx) (arb_poly ctx))
      (fun (a, b) -> Poly.equal (Poly.mul ctx a b) (Poly.mul ctx b a));
    qtest "mul distributes" 100
      (QCheck.triple (arb_poly ctx) (arb_poly ctx) (arb_poly ctx))
      (fun (a, b, c) ->
        Poly.equal (Poly.mul ctx a (Poly.add ctx b c))
          (Poly.add ctx (Poly.mul ctx a b) (Poly.mul ctx a c)));
    qtest "eval is a ring hom" 100
      (QCheck.pair (arb_poly ctx) (arb_poly ctx))
      (fun (a, b) ->
        let x = Fp.of_int ctx 12345 in
        Fp.equal (Poly.eval ctx (Poly.mul ctx a b) x) (Fp.mul ctx (Poly.eval ctx a x) (Poly.eval ctx b x)));
    qtest "div_rem invariant" 100
      (QCheck.pair (arb_poly ctx) (arb_poly_nonzero ctx))
      (fun (a, b) ->
        let q, r = Poly.div_rem_fast ctx a b in
        Poly.degree r < Poly.degree b && Poly.equal a (Poly.add ctx (Poly.mul ctx b q) r));
    qtest "degree of product" 100
      (QCheck.pair (arb_poly_nonzero ctx) (arb_poly_nonzero ctx))
      (fun (a, b) -> Poly.degree (Poly.mul ctx a b) = Poly.degree a + Poly.degree b);
  ]

let suite = unit_tests @ property_tests
