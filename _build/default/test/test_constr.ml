open Fieldlib
open Constr

let ctx = Fp.create Primes.p61
let fi = Fp.of_int ctx

(* The running example: y = x^2 + 3 with intermediate z1 = x^2.
   Variables: 1 = z1 (unbound), 2 = x (input), 3 = y (output).
   Ginger constraints: { x*x - z1 = 0, z1 + 3 - y = 0 }. *)
let ginger_sys =
  let c1 =
    Quad.qpoly_add ctx
      (Quad.qpoly_mul_lin ctx (Lincomb.of_var 2) (Lincomb.of_var 2))
      (Quad.qpoly_of_lincomb (Lincomb.scale ctx (fi (-1)) (Lincomb.of_var 1)))
  in
  let c2 =
    Quad.qpoly_of_lincomb
      (Lincomb.add ctx
         (Lincomb.add ctx (Lincomb.of_var 1) (Lincomb.of_const (fi 3)))
         (Lincomb.scale ctx (fi (-1)) (Lincomb.of_var 3)))
  in
  { Quad.field = ctx; num_vars = 3; num_z = 1; constraints = [| c1; c2 |] }

let good_w = [| Fp.one; fi 25; fi 5; fi 28 |] (* 1, z1, x, y *)
let bad_w = [| Fp.one; fi 24; fi 5; fi 28 |]

let unit_tests =
  [
    Alcotest.test_case "lincomb arithmetic" `Quick (fun () ->
        let a = Lincomb.add ctx (Lincomb.of_var 1) (Lincomb.scale ctx (fi 3) (Lincomb.of_var 2)) in
        let w = [| Fp.one; fi 10; fi 20 |] in
        Alcotest.(check bool) "eval" true (Fp.equal (Lincomb.eval ctx a w) (fi 70));
        let cancel = Lincomb.sub ctx a a in
        Alcotest.(check bool) "cancel" true (Lincomb.is_zero cancel));
    Alcotest.test_case "lincomb drops zero coefficients" `Quick (fun () ->
        let a = Lincomb.add_term ctx (Lincomb.of_var 5) 5 (fi (-1)) in
        Alcotest.(check bool) "empty" true (Lincomb.is_zero a);
        Alcotest.(check int) "terms" 0 (Lincomb.num_terms a));
    Alcotest.test_case "qpoly_mul_lin expands products" `Quick (fun () ->
        (* (w1 + 2)(w2 + 3) = w1w2 + 3w1 + 2w2 + 6 *)
        let a = Lincomb.add ctx (Lincomb.of_var 1) (Lincomb.of_const (fi 2)) in
        let b = Lincomb.add ctx (Lincomb.of_var 2) (Lincomb.of_const (fi 3)) in
        let q = Quad.qpoly_mul_lin ctx a b in
        let w = [| Fp.one; fi 7; fi 11 |] in
        Alcotest.(check bool) "eval" true (Fp.equal (Quad.qpoly_eval ctx q w) (fi (9 * 14))));
    Alcotest.test_case "ginger system satisfied" `Quick (fun () ->
        Alcotest.(check bool) "good" true (Quad.satisfied ctx ginger_sys good_w);
        Alcotest.(check bool) "bad" false (Quad.satisfied ctx ginger_sys bad_w);
        Alcotest.(check (option int)) "violation" (Some 0) (Quad.first_violation ctx ginger_sys bad_w));
    Alcotest.test_case "K and K2 statistics" `Quick (fun () ->
        Alcotest.(check int) "K2" 1 (Quad.distinct_quadratic_terms ginger_sys);
        Alcotest.(check int) "K" 5 (Quad.additive_terms ginger_sys));
    Alcotest.test_case "transform shapes (section 4)" `Quick (fun () ->
        let tr = Transform.apply ginger_sys in
        let r = tr.Transform.r1cs in
        Alcotest.(check int) "K2" 1 tr.Transform.k2;
        Alcotest.(check int) "|Z_zaatar| = |Z_ginger| + K2" 2 r.R1cs.num_z;
        Alcotest.(check int) "|C_zaatar| = |C_ginger| + K2" 3 (R1cs.num_constraints r);
        Alcotest.(check int) "num_vars" 4 r.R1cs.num_vars);
    Alcotest.test_case "transform preserves satisfiability" `Quick (fun () ->
        let tr = Transform.apply ginger_sys in
        let w' = Transform.extend_assignment tr ginger_sys good_w in
        Alcotest.(check bool) "sat" true (R1cs.satisfied ctx tr.Transform.r1cs w');
        let w_bad = Transform.extend_assignment tr ginger_sys bad_w in
        Alcotest.(check bool) "unsat" false (R1cs.satisfied ctx tr.Transform.r1cs w_bad));
    Alcotest.test_case "transform worst-case example from section 4" `Quick (fun () ->
        (* {3 Z1Z2 + 2 Z3Z4 + Z5 - Z6 = 0} -> 3 quadratic-form constraints *)
        let q =
          Quad.qpoly_add ctx
            (Quad.qpoly_add ctx
               (Quad.qpoly_scale ctx (fi 3) (Quad.qpoly_mul_lin ctx (Lincomb.of_var 1) (Lincomb.of_var 2)))
               (Quad.qpoly_scale ctx (fi 2) (Quad.qpoly_mul_lin ctx (Lincomb.of_var 3) (Lincomb.of_var 4))))
            (Quad.qpoly_of_lincomb (Lincomb.sub ctx (Lincomb.of_var 5) (Lincomb.of_var 6)))
        in
        let sys = { Quad.field = ctx; num_vars = 6; num_z = 6; constraints = [| q |] } in
        let tr = Transform.apply sys in
        Alcotest.(check int) "K2" 2 tr.Transform.k2;
        Alcotest.(check int) "constraints" 3 (R1cs.num_constraints tr.Transform.r1cs);
        (* z = (2, 3, 4, 5, 7, 6*2*3 + 2*4*5 + 7) *)
        let w = [| Fp.one; fi 2; fi 3; fi 4; fi 5; fi 7; fi 65 |] in
        Alcotest.(check bool) "ginger sat" true (Quad.satisfied ctx sys w);
        let w' = Transform.extend_assignment tr sys w in
        Alcotest.(check bool) "zaatar sat" true (R1cs.satisfied ctx tr.Transform.r1cs w'));
    Alcotest.test_case "r1cs rejects out-of-range variables" `Quick (fun () ->
        let bad =
          {
            R1cs.field = ctx;
            num_vars = 1;
            num_z = 1;
            constraints = [| { R1cs.a = Lincomb.of_var 5; b = Lincomb.of_const Fp.one; c = Lincomb.zero } |];
          }
        in
        Alcotest.(check bool) "raises" true
          (try
             R1cs.check_wellformed bad;
             false
           with Invalid_argument _ -> true));
  ]

(* Random satisfiable R1CS systems: draw an assignment, draw random a/b
   rows, then solve for the constant of the c row. *)
let random_satisfiable_r1cs seed =
  let prg = Chacha.Prg.create ~seed:(Printf.sprintf "r1cs %d" seed) () in
  let n = 3 + Chacha.Prg.int_below prg 10 in
  let num_z = 1 + Chacha.Prg.int_below prg (n - 1) in
  let nc = 1 + Chacha.Prg.int_below prg 12 in
  let w = Array.init (n + 1) (fun i -> if i = 0 then Fp.one else Chacha.Prg.field ctx prg) in
  let random_row () =
    let t = ref Lincomb.zero in
    for _ = 0 to Chacha.Prg.int_below prg 4 do
      t := Lincomb.add_term ctx !t (Chacha.Prg.int_below prg (n + 1)) (Chacha.Prg.field ctx prg)
    done;
    !t
  in
  let constraints =
    Array.init nc (fun _ ->
        let a = random_row () and b = random_row () and c0 = random_row () in
        let target = Fp.mul ctx (Lincomb.eval ctx a w) (Lincomb.eval ctx b w) in
        let fix = Fp.sub ctx target (Lincomb.eval ctx c0 w) in
        { R1cs.a; b; c = Lincomb.add_term ctx c0 0 fix })
  in
  ({ R1cs.field = ctx; num_vars = n; num_z; constraints }, w)

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100 ~name:"random satisfiable systems verify"
         QCheck.small_int (fun seed ->
           let sys, w = random_satisfiable_r1cs seed in
           R1cs.satisfied ctx sys w));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100 ~name:"perturbed assignments violate (whp)"
         QCheck.small_int (fun seed ->
           let sys, w = random_satisfiable_r1cs seed in
           let prg = Chacha.Prg.create ~seed:(Printf.sprintf "perturb %d" seed) () in
           let i = 1 + Chacha.Prg.int_below prg sys.R1cs.num_vars in
           let w' = Array.copy w in
           w'.(i) <- Fp.add ctx w'.(i) Fp.one;
           (* The perturbed variable might not appear in any constraint;
              accept either a violation or a provably-unused variable. *)
           (not (R1cs.satisfied ctx sys w'))
           || Array.for_all
                (fun (k : R1cs.constr) ->
                  List.for_all (fun (v, _) -> v <> i)
                    (Lincomb.terms k.R1cs.a @ Lincomb.terms k.R1cs.b @ Lincomb.terms k.R1cs.c))
                sys.R1cs.constraints));
  ]

let suite = unit_tests @ property_tests
