#!/bin/sh
# Repo CI: formatting gate, build, tests, and a bench smoke test that
# asserts the machine-readable run summary is emitted and parses back.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format check =="
  dune build @fmt
else
  echo "== format check skipped (ocamlformat not installed) =="
fi

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== lint (examples and fixtures) =="
# Every shipped example must be clean under both Zlint layers; every
# deliberately-broken fixture must keep firing its diagnostic, and the
# error-severity ones must exit with the documented code 2.
dune build bin/zaatar_cli.exe
dune exec bin/zaatar_cli.exe -- lint examples/*.zl \
  || { echo "shipped examples must lint clean" >&2; exit 1; }
for f in test/lint_fixtures/*; do
  case "$f" in
    # Error-severity fixtures: lint must exit 2 (not 0, not a crash).
    */zl000_*|*/zl001_*|*/zl003_*|*/zl006_*|*/zr001_*|*/zr002_*|*/zr007_*|*/fuzz_broken_*)
      if dune exec bin/zaatar_cli.exe -- lint "$f" > /dev/null 2>&1; then
        echo "lint did not fail on broken fixture $f" >&2; exit 1
      fi
      rc=0; dune exec bin/zaatar_cli.exe -- lint "$f" > /dev/null 2>&1 || rc=$?
      [ "$rc" -eq 2 ] || { echo "lint exited $rc (want 2) on $f" >&2; exit 1; }
      ;;
    # The unroll fixture only trips its budget when one is set.
    */zl004_*)
      out="$(dune exec bin/zaatar_cli.exe -- lint "$f" --unroll-budget 1000)" \
        || { echo "lint exited non-zero on warn-only fixture $f" >&2; exit 1; }
      echo "$out" | grep -q "ZL004" \
        || { echo "unroll budget finding missing for $f" >&2; exit 1; }
      ;;
    # Warn/info fixtures: must report at least one finding but exit 0.
    *)
      out="$(dune exec bin/zaatar_cli.exe -- lint "$f")" \
        || { echo "lint exited non-zero on warn-only fixture $f" >&2; exit 1; }
      echo "$out" | grep -q ": warn\|: info" \
        || { echo "no finding reported for fixture $f" >&2; exit 1; }
      ;;
  esac
done

echo "== exec smoke (interpreter vs compiled witnesses) =="
# The witness-solving interpreter must re-derive the compiled prover's
# witness bit-for-bit on every benchmark app from the inputs alone, and
# its outputs must match the native reference.
dune exec bin/zaatar_cli.exe -- exec --check \
  || { echo "interpreter disagreed with the compiled witness" >&2; exit 1; }

echo "== fuzz smoke (seed-pinned differential campaign) =="
# 50 random ZL programs through the differential oracle (native eval vs
# compiled witness vs interpreter solve, verdict sampling included); the
# campaign exits non-zero on any discrepancy.
dune exec bin/zaatar_cli.exe -- fuzz --seed 42 --count 50 \
  || { echo "differential fuzz campaign found discrepancies" >&2; exit 1; }

echo "== bench smoke (summary JSON) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
dune exec bench/main.exe -- micro --quick --json "$tmp/BENCH_run.json" | tee "$tmp/bench.out"
test -s "$tmp/BENCH_run.json" || { echo "BENCH_run.json missing or empty" >&2; exit 1; }
grep -q "parsed back OK" "$tmp/bench.out" || { echo "summary did not parse back" >&2; exit 1; }
grep -q '"schema":"zaatar-bench-run/1"' "$tmp/BENCH_run.json" || { echo "summary schema missing" >&2; exit 1; }

echo "== multiexp smoke (kernel vs naive ladder) =="
# The multiexp experiment cross-checks every exponentiation kernel
# (fixed-base window, Shamir, Pippenger, the parallel commit pipeline)
# against the generic ladder and exits non-zero on any divergence.
dune exec bench/main.exe -- multiexp --quick --json "$tmp/MULTIEXP_run.json" | tee "$tmp/multiexp.out"
grep -q "multiexp kernels agree" "$tmp/multiexp.out" || { echo "multiexp kernels diverged from the naive ladder" >&2; exit 1; }
grep -q '"multiexp"' "$tmp/MULTIEXP_run.json" || { echo "multiexp section missing from summary" >&2; exit 1; }
grep -q '"kernels_agree":true' "$tmp/MULTIEXP_run.json" || { echo "multiexp kernels_agree not recorded" >&2; exit 1; }

echo "== wire smoke (loopback byte accounting) =="
# The wire experiment runs a batch through the split V/P session machinery
# and exits non-zero if sent and received bytes do not balance.
dune exec bench/main.exe -- wire --quick --json "$tmp/WIRE_run.json" | tee "$tmp/wire.out"
grep -q "sent and received bytes balance" "$tmp/wire.out" || { echo "wire bytes did not balance" >&2; exit 1; }
grep -q '"network"' "$tmp/WIRE_run.json" || { echo "network section missing from summary" >&2; exit 1; }
grep -q '"balanced":true' "$tmp/WIRE_run.json" || { echo "network balance not recorded" >&2; exit 1; }

echo "== cost model gate (bench --check-model) =="
# The model experiment records predicted vs. measured prover seconds per
# phase into the summary; --check-model turns a total outside the band
# into a non-zero exit. Run it once expecting a pass, once with an absurd
# band expecting the breach to be fatal.
dune exec bench/main.exe -- model --quick --check-model --json "$tmp/MODEL_run.json" | tee "$tmp/model.out"
grep -q "cost model check OK" "$tmp/model.out" || { echo "check-model did not report OK" >&2; exit 1; }
grep -q '"model"' "$tmp/MODEL_run.json" || { echo "model section missing from summary" >&2; exit 1; }
grep -q '"delta"' "$tmp/MODEL_run.json" || { echo "model deltas missing from summary" >&2; exit 1; }
if dune exec bench/main.exe -- model --quick --check-model --model-band 1000:1001 \
    --json "$tmp/MODEL_fail.json" > "$tmp/model_fail.out" 2>&1; then
  echo "check-model did not exit non-zero on tolerance breach" >&2
  exit 1
fi
grep -q "cost model breach" "$tmp/model_fail.out" || { echo "breach message missing" >&2; cat "$tmp/model_fail.out" >&2; exit 1; }

echo "== ledger gate (bench --check-ledger) + history trend =="
# The profile experiment ledgers a deterministic argument run and audits
# its per-phase op counts against the Figure-3 op model; --check-ledger
# turns a gated row outside its documented band into a non-zero exit.
# Gated runs append one JSONL line to the history file; --trend prints it.
dune exec bench/main.exe -- alloc profile --quick --check-ledger \
  --json "$tmp/LEDGER_run.json" --history "$tmp/history.jsonl" | tee "$tmp/ledger.out"
grep -q -- "--check-ledger OK" "$tmp/ledger.out" || { echo "check-ledger did not report OK" >&2; exit 1; }
grep -q "words/op under ceilings" "$tmp/ledger.out" || { echo "allocation gate did not run" >&2; exit 1; }
grep -q '"ledger"' "$tmp/LEDGER_run.json" || { echo "ledger section missing from summary" >&2; exit 1; }
grep -q '"alloc"' "$tmp/LEDGER_run.json" || { echo "alloc section missing from summary" >&2; exit 1; }
grep -q '"overhead_ratio"' "$tmp/LEDGER_run.json" || { echo "instrumentation overhead not recorded" >&2; exit 1; }
test -s "$tmp/history.jsonl" || { echo "gated run did not append to the history file" >&2; exit 1; }
dune exec bench/main.exe -- --trend 5 --history "$tmp/history.jsonl" | tee "$tmp/trend.out"
grep -q "gated run(s)" "$tmp/trend.out" || { echo "--trend did not print the history tail" >&2; exit 1; }

echo "== ntt-vs-lagrange smoke (QAP backend differential) =="
# Runs a benchmark app end to end under both QAP backends: the verdicts
# must agree, the packed NTT H must equal the boxed subproduct-tree
# reference, and the wall/allocation ratios land in the summary. The
# experiment itself exits non-zero on any divergence.
dune exec bench/main.exe -- ntt-vs-lagrange --quick --json "$tmp/NTT_run.json" | tee "$tmp/ntt.out"
grep -q "verdicts ok" "$tmp/ntt.out" || { echo "backend verdicts diverged" >&2; exit 1; }
grep -q "H ok" "$tmp/ntt.out" || { echo "NTT H does not match the reference" >&2; exit 1; }
grep -q '"ntt_vs_lagrange"' "$tmp/NTT_run.json" || { echo "ntt_vs_lagrange section missing from summary" >&2; exit 1; }
grep -q '"verdicts_agree":true' "$tmp/NTT_run.json" || { echo "verdict agreement not recorded" >&2; exit 1; }
grep -q '"h_matches_reference":true' "$tmp/NTT_run.json" || { echo "H reference equality not recorded" >&2; exit 1; }

echo "== profile smoke (zaatar profile, folded stacks) =="
# The profile subcommand must pass its op audit on the shipped matmul
# example and emit non-empty, well-formed folded stacks ("path us" lines,
# the input format of flamegraph.pl).
dune exec bin/zaatar_cli.exe -- profile examples/matmul.zl --folded "$tmp/matmul.folded" \
  | tee "$tmp/profile.out"
grep -q "op audit OK" "$tmp/profile.out" || { echo "zaatar profile audit failed" >&2; exit 1; }
test -s "$tmp/matmul.folded" || { echo "folded stacks output missing or empty" >&2; exit 1; }
if grep -qvE '^[^ ]+ [0-9]+$' "$tmp/matmul.folded"; then
  echo "folded stacks output malformed" >&2; cat "$tmp/matmul.folded" >&2; exit 1
fi

echo "== socket smoke (zaatar serve / run --connect, metrics + traces) =="
# Start a one-shot sequential prover on an ephemeral port with the live
# metrics endpoint and per-connection trace sidecars, scrape the endpoint
# with `zaatar stats`, verify a traced batch against it over TCP, and merge
# the two Chrome traces into one two-pid view. --sequential is explicit:
# --trace-dir no longer implies the sequential loop (the farm has its own
# flight-recorder sidecars, exercised by the farm smoke below).
dune build bin/zaatar_cli.exe
mkdir -p "$tmp/traces"
: > "$tmp/serve.log"
dune exec bin/zaatar_cli.exe -- serve examples/payroll.zl --listen 127.0.0.1:0 --once \
  --sequential \
  --metrics-listen 127.0.0.1:0 --trace "$tmp/prover_proc.json" --trace-dir "$tmp/traces" \
  --log-json "$tmp/serve_log.jsonl" \
  > "$tmp/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^listening on //p' "$tmp/serve.log")"
  [ -n "$addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "prover never reported its address; server log:" >&2
  cat "$tmp/serve.log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
maddr="$(sed -n 's/^metrics on //p' "$tmp/serve.log")"
[ -n "$maddr" ] || { echo "prover never reported its metrics address" >&2; cat "$tmp/serve.log" >&2; exit 1; }
dune exec bin/zaatar_cli.exe -- stats "$maddr" | tee "$tmp/stats.out"
grep -q "accepted" "$tmp/stats.out" || { echo "stats scrape missing server counters" >&2; exit 1; }
dune exec bin/zaatar_cli.exe -- stats "$maddr" --raw | tee "$tmp/stats_raw.out"
grep -q "zaatar_server_connections_accepted_total" "$tmp/stats_raw.out" \
  || { echo "Prometheus exposition missing accepted counter" >&2; exit 1; }
if ! dune exec bin/zaatar_cli.exe -- run examples/payroll.zl -i 38,45,40,52,31 \
    --connect "$addr" --trace "$tmp/verifier.json" | tee "$tmp/remote.out"; then
  echo "remote verification failed; server log:" >&2
  cat "$tmp/serve.log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
grep -q "verified" "$tmp/remote.out" || { echo "remote run did not verify" >&2; cat "$tmp/serve.log" >&2; exit 1; }
grep -q "trace id " "$tmp/remote.out" || { echo "verifier did not mint a trace id" >&2; exit 1; }
wait "$serve_pid" || { echo "prover exited non-zero; server log:" >&2; cat "$tmp/serve.log" >&2; exit 1; }
grep -q "session complete" "$tmp/serve.log" || { echo "prover did not complete the session" >&2; cat "$tmp/serve.log" >&2; exit 1; }
grep -q '"peer"' "$tmp/serve_log.jsonl" || { echo "structured log lines missing peer field" >&2; exit 1; }
test -s "$tmp/traces/prover_conn0.json" || { echo "prover trace sidecar missing" >&2; exit 1; }
dune exec bin/zaatar_cli.exe -- trace-merge "$tmp/verifier.json" "$tmp/traces/prover_conn0.json" \
  -o "$tmp/merged.json"
grep -q '"pid":0' "$tmp/merged.json" || { echo "merged trace missing verifier pid" >&2; exit 1; }
grep -q '"pid":1' "$tmp/merged.json" || { echo "merged trace missing prover pid" >&2; exit 1; }
grep -q '"producer":"zobs-merge"' "$tmp/merged.json" || { echo "merged trace malformed" >&2; exit 1; }

echo "== farm smoke (concurrent prover farm) =="
# The default serve path is the Zfarm event loop: run 8 concurrent
# verifier clients against one farm (--max-sessions 4 keeps half of them
# parked in the accept queue until a slot frees), expect every verdict to
# pass and the Prometheus endpoint to report at least one setup-cache hit
# (7 of the 8 same-digest sessions reuse the cached QAP). The clients
# invoke the built binary directly so they don't contend on the dune lock.
dune build bin/zaatar_cli.exe
zcli="_build/default/bin/zaatar_cli.exe"
mkdir -p "$tmp/farm_traces"
: > "$tmp/farm.log"
# --trace-dir turns on the per-session flight recorder (Chrome-trace
# sidecar per connection); --slow-session-ms 1 forces every session over
# the slow threshold so forensic JSONL bundles are dumped too.
"$zcli" serve examples/payroll.zl --listen 127.0.0.1:0 --max-sessions 4 \
  --metrics-listen 127.0.0.1:0 --trace-dir "$tmp/farm_traces" \
  --slow-session-ms 1 > "$tmp/farm.log" 2>&1 &
farm_pid=$!
faddr=""
for _ in $(seq 1 100); do
  faddr="$(sed -n 's/^listening on //p' "$tmp/farm.log")"
  [ -n "$faddr" ] && break
  kill -0 "$farm_pid" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$faddr" ]; then
  echo "farm never reported its address; server log:" >&2
  cat "$tmp/farm.log" >&2
  kill "$farm_pid" 2>/dev/null || true
  exit 1
fi
fmaddr="$(sed -n 's/^metrics on //p' "$tmp/farm.log")"
[ -n "$fmaddr" ] || { echo "farm never reported its metrics address" >&2; cat "$tmp/farm.log" >&2; exit 1; }
# Readiness: poll /healthz until the event loop reports ok (200), the way
# an orchestrator's startup probe would, instead of trusting the log line.
healthz_ok=""
for _ in $(seq 1 100); do
  if python3 -c "
import sys, urllib.request
try:
    body = urllib.request.urlopen('http://$fmaddr/healthz', timeout=1).read()
except Exception:
    sys.exit(1)
sys.exit(0 if body.strip() == b'ok' else 1)
" 2>/dev/null; then healthz_ok=yes; break; fi
  kill -0 "$farm_pid" 2>/dev/null || break
  sleep 0.1
done
[ -n "$healthz_ok" ] || { echo "/healthz never reported ok" >&2; cat "$tmp/farm.log" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
client_pids=""
for i in $(seq 1 8); do
  "$zcli" run examples/payroll.zl -i 38,45,40,52,31 --connect "$faddr" \
    > "$tmp/farm_client_$i.out" 2>&1 &
  client_pids="$client_pids $!"
done
client_rc=0
for pid in $client_pids; do
  wait "$pid" || client_rc=$?
done
for i in $(seq 1 8); do
  grep -q "verified" "$tmp/farm_client_$i.out" || {
    echo "farm client $i did not verify:" >&2
    cat "$tmp/farm_client_$i.out" >&2
    echo "server log:" >&2; cat "$tmp/farm.log" >&2
    kill "$farm_pid" 2>/dev/null || true
    exit 1
  }
done
[ "$client_rc" -eq 0 ] || { echo "a farm client exited non-zero" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
"$zcli" stats "$fmaddr" --raw | tee "$tmp/farm_stats.out"
hits="$(awk '/^zaatar_server_setup_cache_hits_total/ {print $2}' "$tmp/farm_stats.out")"
[ -n "$hits" ] || { echo "setup cache hit counter missing from Prometheus exposition" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
[ "$hits" -ge 1 ] || { echo "farm served 8 same-digest sessions with zero cache hits" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
completed="$(grep -c "session complete" "$tmp/farm.log" || true)"
[ "$completed" -eq 8 ] || { echo "farm completed $completed/8 sessions" >&2; cat "$tmp/farm.log" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
# `zaatar top --once` must render one frame of the live view from /json.
"$zcli" top --once "$fmaddr" | tee "$tmp/farm_top.out"
grep -q "zaatar top" "$tmp/farm_top.out" || { echo "zaatar top --once did not render" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
grep -q "sessions" "$tmp/farm_top.out" || { echo "zaatar top --once missing sessions line" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
# Flight-recorder sidecar: the farm dumps one Chrome trace per session and
# trace-merge must accept it (trace id is minted by the verifier client and
# carried through Hello into the farm's sidecar).
test -s "$tmp/farm_traces/prover_conn0.json" || { echo "farm flight-recorder sidecar missing" >&2; ls "$tmp/farm_traces" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
"$zcli" trace-merge "$tmp/farm_traces/prover_conn0.json" -o "$tmp/farm_merged.json" \
  || { echo "trace-merge rejected the farm sidecar" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
grep -q '"producer":"zobs-merge"' "$tmp/farm_merged.json" || { echo "merged farm trace malformed" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
# Forensic bundle: --slow-session-ms 1 forces a dump; every line must be
# valid JSON and the header must carry the slow outcome.
forensic="$(ls "$tmp"/farm_traces/forensic_conn*.jsonl 2>/dev/null | head -n 1)"
[ -n "$forensic" ] || { echo "no forensic bundle despite --slow-session-ms 1" >&2; ls "$tmp/farm_traces" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
python3 -c "
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, 'forensic bundle is empty'
recs = [json.loads(l) for l in lines]
head = recs[0]
assert head['kind'] == 'session', head
assert head['outcome'] in ('slow', 'error'), head
assert all(r['kind'] == 'event' for r in recs[1:]), 'non-event line in bundle'
" "$forensic" || { echo "forensic bundle failed to parse: $forensic" >&2; kill "$farm_pid" 2>/dev/null || true; exit 1; }
kill "$farm_pid"
farm_rc=0
wait "$farm_pid" 2>/dev/null || farm_rc=$?
# 143 = SIGTERM: the farm runs until told to stop.
[ "$farm_rc" -eq 143 ] || [ "$farm_rc" -eq 0 ] || { echo "farm exited $farm_rc on shutdown" >&2; cat "$tmp/farm.log" >&2; exit 1; }

echo "== ci OK =="
