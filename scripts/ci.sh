#!/bin/sh
# Repo CI: formatting gate, build, tests, and a bench smoke test that
# asserts the machine-readable run summary is emitted and parses back.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format check =="
  dune build @fmt
else
  echo "== format check skipped (ocamlformat not installed) =="
fi

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== bench smoke (summary JSON) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
dune exec bench/main.exe -- micro --quick --json "$tmp/BENCH_run.json" | tee "$tmp/bench.out"
test -s "$tmp/BENCH_run.json" || { echo "BENCH_run.json missing or empty" >&2; exit 1; }
grep -q "parsed back OK" "$tmp/bench.out" || { echo "summary did not parse back" >&2; exit 1; }
grep -q '"schema":"zaatar-bench-run/1"' "$tmp/BENCH_run.json" || { echo "summary schema missing" >&2; exit 1; }

echo "== multiexp smoke (kernel vs naive ladder) =="
# The multiexp experiment cross-checks every exponentiation kernel
# (fixed-base window, Shamir, Pippenger, the parallel commit pipeline)
# against the generic ladder and exits non-zero on any divergence.
dune exec bench/main.exe -- multiexp --quick --json "$tmp/MULTIEXP_run.json" | tee "$tmp/multiexp.out"
grep -q "multiexp kernels agree" "$tmp/multiexp.out" || { echo "multiexp kernels diverged from the naive ladder" >&2; exit 1; }
grep -q '"multiexp"' "$tmp/MULTIEXP_run.json" || { echo "multiexp section missing from summary" >&2; exit 1; }
grep -q '"kernels_agree":true' "$tmp/MULTIEXP_run.json" || { echo "multiexp kernels_agree not recorded" >&2; exit 1; }

echo "== ci OK =="
