(* Seeded random ZL program generator.

   The generator is type- and width-aware: it mirrors the builder's
   magnitude accounting (lib/compiler/builder.ml) so that every emitted
   program compiles — widths stay far under the field capacity check — and
   every value fits a native OCaml int, which is what lets the native
   evaluator (eval.ml) serve as the reference leg of the differential
   oracle. Boolean positions (&&, ||, !, if conditions) only ever receive
   expressions the builder will kind as Kbool; dynamic array indices are
   in-bounds by construction (c + b*d with b boolean and c + d < len), so
   the one-hot gadget's range check can never fail on any input.

   Width safety is enforced in two layers: local caps while generating, and
   a whole-program inference pass ([max_width]) replaying the builder's
   width rules — including loop unrolling, where accumulator patterns grow
   per iteration — with the program regenerated when the bound exceeds
   [width_cap]. The pass over-approximates (no constant folding), so
   passing it implies the builder's own checks pass. *)

open Zlang.Ast

type kind = Num | Bool

type scalar = { kind : kind; width : int }

type arr = { len : int; width : int }

type info = Sc of scalar | Arr of arr

type env = (string * info) list

let width_of_int n =
  let n = abs n in
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* ---- the builder's width/kind rules, replayed over the AST ---- *)

exception Infer_error of string

let scalar_of env name =
  match List.assoc_opt name env with
  | Some (Sc s) -> s
  | _ -> raise (Infer_error ("not a scalar: " ^ name))

let array_of env name =
  match List.assoc_opt name env with
  | Some (Arr a) -> a
  | _ -> raise (Infer_error ("not an array: " ^ name))

let rec infer_expr ~maxw env (e : expr) : scalar =
  let note (s : scalar) =
    if s.width > !maxw then maxw := s.width;
    s
  in
  match e.e with
  | Int n -> note { kind = (if n = 0 || n = 1 then Bool else Num); width = width_of_int n }
  | Var x -> note (scalar_of env x)
  | Index (a, idx) ->
    ignore (infer_expr ~maxw env idx);
    note { kind = Num; width = (array_of env a).width }
  | Unop (Neg, e1) -> note { kind = Num; width = (infer_expr ~maxw env e1).width }
  | Unop (Not, e1) ->
    ignore (infer_expr ~maxw env e1);
    note { kind = Bool; width = 1 }
  | Binop ((Add | Sub), l, r) ->
    let wl = (infer_expr ~maxw env l).width and wr = (infer_expr ~maxw env r).width in
    note { kind = Num; width = 1 + max wl wr }
  | Binop (Mul, l, r) ->
    let wl = (infer_expr ~maxw env l).width and wr = (infer_expr ~maxw env r).width in
    note { kind = Num; width = wl + wr }
  | Binop (Shr, l, r) ->
    let wl = (infer_expr ~maxw env l).width in
    let k = match r.e with Int k -> k | _ -> 0 in
    (* the gadget decomposes w+2 bits *)
    maxw := max !maxw (wl + 2);
    note { kind = Num; width = max 1 (wl - k + 1) }
  | Binop (Shl, l, r) ->
    let wl = (infer_expr ~maxw env l).width in
    let k = match r.e with Int k -> k | _ -> 0 in
    note { kind = Num; width = wl + k }
  | Binop ((Lt | Le | Gt | Ge), l, r) ->
    let wl = (infer_expr ~maxw env l).width and wr = (infer_expr ~maxw env r).width in
    maxw := max !maxw (max wl wr + 2);
    note { kind = Bool; width = 1 }
  | Binop ((Eq | Ne), l, r) ->
    ignore (infer_expr ~maxw env l);
    ignore (infer_expr ~maxw env r);
    note { kind = Bool; width = 1 }
  | Binop ((And | Or), l, r) ->
    ignore (infer_expr ~maxw env l);
    ignore (infer_expr ~maxw env r);
    note { kind = Bool; width = 1 }

(* Statement-level replay of compile.ml's symbolic execution: block-local
   declarations vanish, branch merges take the width max (kind stays Bool
   only when both sides are Bool, the mux rule), loops replay their body
   once per unrolled iteration. *)
let rec infer_stmt ~maxw env (s : stmt) : env =
  match s.s with
  | Decl (_, name, None, None) -> (name, Sc { kind = Bool; width = 0 }) :: env
  | Decl (_, name, None, Some e) -> (name, Sc (infer_expr ~maxw env e)) :: env
  | Decl (_, name, Some n, None) -> (name, Arr { len = n; width = 0 }) :: env
  | Decl (_, _, Some _, Some _) -> raise (Infer_error "array initializer")
  | Assign (Lvar name, e) ->
    let s' = infer_expr ~maxw env e in
    (name, Sc s') :: List.remove_assoc name env
  | Assign (Lindex (name, idx), e) ->
    ignore (infer_expr ~maxw env idx);
    let v = infer_expr ~maxw env e in
    let a = array_of env name in
    (name, Arr { a with width = max a.width v.width }) :: List.remove_assoc name env
  | If (cond, then_b, else_b) ->
    ignore (infer_expr ~maxw env cond);
    let env_t = infer_block ~maxw env then_b in
    let env_e = infer_block ~maxw env else_b in
    List.map
      (fun (name, _) ->
        match (List.assoc name env_t, List.assoc name env_e) with
        | Sc a, Sc b ->
          ( name,
            Sc
              {
                kind = (if a.kind = Bool && b.kind = Bool then Bool else Num);
                width = max a.width b.width;
              } )
        | Arr a, Arr b -> (name, Arr { a with width = max a.width b.width })
        | _ -> raise (Infer_error "shape change across branches"))
      env
  | For (v, lo, hi, body) ->
    let lo = match lo.e with Int n -> n | _ -> raise (Infer_error "loop bound") in
    let hi = match hi.e with Int n -> n | _ -> raise (Infer_error "loop bound") in
    let env' = ref env in
    for i = lo to hi - 1 do
      let inner = (v, Sc { kind = Num; width = width_of_int i }) :: !env' in
      let after = infer_stmts ~maxw inner body in
      env' := List.filter (fun (name, _) -> List.mem_assoc name !env') after
    done;
    !env'

and infer_stmts ~maxw env stmts = List.fold_left (infer_stmt ~maxw) env stmts

and infer_block ~maxw env stmts =
  let after = infer_stmts ~maxw env stmts in
  List.filter (fun (name, _) -> List.mem_assoc name env) after

let initial_env (prog : program) : env =
  List.fold_left
    (fun env (p : param) ->
      let w = p.ptyp.bits - 1 in
      match (p.pdir, p.plen) with
      | Input, None -> (p.pname, Sc { kind = Num; width = w }) :: env
      | Input, Some n -> (p.pname, Arr { len = n; width = w }) :: env
      | Output, None -> (p.pname, Sc { kind = Bool; width = 0 }) :: env
      | Output, Some n -> (p.pname, Arr { len = n; width = 0 }) :: env)
    [] prog.params

(* The largest width the builder can see anywhere in the program. *)
let max_width (prog : program) : int =
  let maxw = ref 0 in
  ignore (infer_stmts ~maxw (initial_env prog) prog.body);
  !maxw

(* Keeping every inferred width at or below this keeps the builder's
   capacity checks (against Fp.bits - 3, 124 for the production field) far
   out of reach and every concrete value inside OCaml's 62-bit native
   ints. *)
let width_cap = 56

(* ---- generation ---- *)

type st = { prg : Chacha.Prg.t; mutable fresh : int }

let fresh_name st prefix =
  let n = st.fresh in
  st.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let mk e = { e; eloc = no_pos }
let mks s = { s; sloc = no_pos }

let int_lit n = if n < 0 then mk (Unop (Neg, mk (Int (-n)))) else mk (Int n)

let pick st l = List.nth l (Chacha.Prg.int_below st.prg (List.length l))

let width_of env e =
  let maxw = ref 0 in
  (infer_expr ~maxw env e).width

(* Scalars usable in numeric position under the width cap; loop counters
   (the "i" namespace) are included — they are ordinary bindings. *)
let num_candidates env ~cap =
  List.filter_map
    (fun (name, i) -> match i with Sc s when s.width <= cap -> Some name | _ -> None)
    env

let bool_candidates env =
  List.filter_map
    (fun (name, i) -> match i with Sc { kind = Bool; _ } -> Some name | _ -> None)
    env

let arrays env = List.filter_map (fun (name, i) -> match i with Arr a -> Some (name, a) | _ -> None) env

let rec gen_num st env ~depth ~cap : expr =
  let cap = max cap 4 in
  let leaf () =
    let vars = num_candidates env ~cap in
    let choice = Chacha.Prg.int_below st.prg 10 in
    if choice < 4 && vars <> [] then mk (Var (pick st vars))
    else if choice < 6 && arrays env <> [] then begin
      let name, a = pick st (arrays env) in
      if a.width <= cap then mk (Index (name, int_lit (Chacha.Prg.int_below st.prg a.len)))
      else int_lit (Chacha.Prg.int_below st.prg 17 - 8)
    end
    else int_lit (Chacha.Prg.int_below st.prg 17 - 8)
  in
  if depth <= 0 then leaf ()
  else
    match Chacha.Prg.int_below st.prg 12 with
    | 0 | 1 | 2 -> leaf ()
    | 3 | 4 ->
      let l = gen_num st env ~depth:(depth - 1) ~cap:(cap - 1) in
      let r = gen_num st env ~depth:(depth - 1) ~cap:(cap - 1) in
      mk (Binop ((if Chacha.Prg.bool st.prg then Add else Sub), l, r))
    | 5 ->
      let l = gen_num st env ~depth:(depth - 1) ~cap:(cap / 2) in
      let wl = width_of env l in
      let r = gen_num st env ~depth:(depth - 1) ~cap:(cap - wl) in
      mk (Binop (Mul, l, r))
    | 6 -> mk (Unop (Neg, gen_num st env ~depth:(depth - 1) ~cap))
    | 7 ->
      let k = 1 + Chacha.Prg.int_below st.prg 3 in
      mk (Binop (Shr, gen_num st env ~depth:(depth - 1) ~cap, mk (Int k)))
    | 8 when cap > 6 ->
      let k = 1 + Chacha.Prg.int_below st.prg 2 in
      mk (Binop (Shl, gen_num st env ~depth:(depth - 1) ~cap:(cap - k), mk (Int k)))
    | 9 -> gen_bool st env ~depth:(depth - 1)
    | 10 when arrays env <> [] ->
      let name, a = pick st (arrays env) in
      if a.width <= cap then mk (Index (name, safe_index st env ~depth:(depth - 1) ~len:a.len))
      else leaf ()
    | _ -> leaf ()

and gen_bool st env ~depth : expr =
  let leaf () =
    let bools = bool_candidates env in
    if bools <> [] && Chacha.Prg.bool st.prg then mk (Var (pick st bools))
    else mk (Int (Chacha.Prg.int_below st.prg 2))
  in
  if depth <= 0 then leaf ()
  else
    match Chacha.Prg.int_below st.prg 9 with
    | 0 -> leaf ()
    | 1 | 2 | 3 ->
      let op = pick st [ Lt; Le; Gt; Ge ] in
      let l = gen_num st env ~depth:(depth - 1) ~cap:16 in
      let r = gen_num st env ~depth:(depth - 1) ~cap:16 in
      mk (Binop (op, l, r))
    | 4 | 5 ->
      let op = if Chacha.Prg.bool st.prg then Eq else Ne in
      let l = gen_num st env ~depth:(depth - 1) ~cap:16 in
      let r = gen_num st env ~depth:(depth - 1) ~cap:16 in
      mk (Binop (op, l, r))
    | 6 ->
      mk
        (Binop
           (And, gen_bool st env ~depth:(depth - 1), gen_bool st env ~depth:(depth - 1)))
    | 7 ->
      mk (Binop (Or, gen_bool st env ~depth:(depth - 1), gen_bool st env ~depth:(depth - 1)))
    | _ -> mk (Unop (Not, gen_bool st env ~depth:(depth - 1)))

(* An index expression whose value lies in [0, len) for every input:
   c + b*d with b boolean, c in [0, len), c + d <= len - 1. *)
and safe_index st env ~depth ~len : expr =
  let c = Chacha.Prg.int_below st.prg len in
  let dmax = len - 1 - c in
  let d = if dmax = 0 then 0 else 1 + Chacha.Prg.int_below st.prg dmax in
  if d = 0 then mk (Int c)
  else
    let b = gen_bool st env ~depth in
    mk (Binop (Add, mk (Int c), mk (Binop (Mul, b, mk (Int d)))))

(* Names in the "i" namespace are loop counters: reads are fine, but the
   generator never assigns them. *)
let assignable env =
  List.filter_map
    (fun (name, i) -> match i with Sc _ when name.[0] <> 'i' -> Some name | _ -> None)
    env

let dummy = ref 0

let rec gen_stmts st env ~depth ~budget : stmt list * env =
  if budget <= 0 then ([], env)
  else begin
    let stmt_and_env =
      match Chacha.Prg.int_below st.prg 10 with
      | 0 | 1 | 2 when assignable env <> [] ->
        let name = pick st (assignable env) in
        let e =
          if Chacha.Prg.int_below st.prg 4 = 0 then gen_bool st env ~depth:2
          else gen_num st env ~depth:2 ~cap:20
        in
        let s = mks (Assign (Lvar name, e)) in
        Some (s, infer_stmt ~maxw:dummy env s)
      | 3 | 4 ->
        let name = fresh_name st "x" in
        let e =
          if Chacha.Prg.int_below st.prg 4 = 0 then gen_bool st env ~depth:2
          else gen_num st env ~depth:2 ~cap:20
        in
        let s = mks (Decl ({ bits = 32 }, name, None, Some e)) in
        Some (s, infer_stmt ~maxw:dummy env s)
      | 5 when List.length (arrays env) < 3 ->
        let name = fresh_name st "a" in
        let len = 2 + Chacha.Prg.int_below st.prg 3 in
        let s = mks (Decl ({ bits = 32 }, name, Some len, None)) in
        Some (s, infer_stmt ~maxw:dummy env s)
      | 5 | 6 when arrays env <> [] ->
        let name, a = pick st (arrays env) in
        let idx =
          if Chacha.Prg.bool st.prg then int_lit (Chacha.Prg.int_below st.prg a.len)
          else safe_index st env ~depth:1 ~len:a.len
        in
        let e = gen_num st env ~depth:2 ~cap:20 in
        let s = mks (Assign (Lindex (name, idx), e)) in
        Some (s, infer_stmt ~maxw:dummy env s)
      | 7 | 8 when depth > 0 ->
        let cond = gen_bool st env ~depth:2 in
        let then_b, _ = gen_stmts st env ~depth:(depth - 1) ~budget:(1 + Chacha.Prg.int_below st.prg 3) in
        let else_b, _ =
          if Chacha.Prg.bool st.prg then
            gen_stmts st env ~depth:(depth - 1) ~budget:(1 + Chacha.Prg.int_below st.prg 2)
          else ([], env)
        in
        let s = mks (If (cond, then_b, else_b)) in
        Some (s, infer_stmt ~maxw:dummy env s)
      | 9 when depth > 0 ->
        let v = fresh_name st "i" in
        let lo = Chacha.Prg.int_below st.prg 2 in
        let hi = lo + 1 + Chacha.Prg.int_below st.prg 3 in
        let inner = (v, Sc { kind = Num; width = 3 }) :: env in
        let body, _ = gen_stmts st inner ~depth:(depth - 1) ~budget:(1 + Chacha.Prg.int_below st.prg 3) in
        if body = [] then None
        else begin
          let s = mks (For (v, mk (Int lo), mk (Int hi), body)) in
          Some (s, infer_stmt ~maxw:dummy env s)
        end
      | _ -> None
    in
    match stmt_and_env with
    | None -> gen_stmts st env ~depth ~budget:(budget - 1)
    | Some (s, env') ->
      let rest, env'' = gen_stmts st env' ~depth ~budget:(budget - 1) in
      (s :: rest, env'')
  end

let gen_params st =
  let params = ref [] in
  let nscalars = 1 + Chacha.Prg.int_below st.prg 3 in
  for _ = 1 to nscalars do
    let bits = 5 + Chacha.Prg.int_below st.prg 5 in
    params :=
      { pname = fresh_name st "x"; ptyp = { bits }; plen = None; pdir = Input; ploc = no_pos }
      :: !params
  done;
  if Chacha.Prg.bool st.prg then begin
    let bits = 5 + Chacha.Prg.int_below st.prg 3 in
    let len = 2 + Chacha.Prg.int_below st.prg 3 in
    params :=
      { pname = fresh_name st "a"; ptyp = { bits }; plen = Some len; pdir = Input; ploc = no_pos }
      :: !params
  end;
  let nouts = 1 + Chacha.Prg.int_below st.prg 2 in
  for _ = 1 to nouts do
    let plen = if Chacha.Prg.int_below st.prg 4 = 0 then Some (2 + Chacha.Prg.int_below st.prg 2) else None in
    params :=
      { pname = fresh_name st "x"; ptyp = { bits = 32 }; plen; pdir = Output; ploc = no_pos }
      :: !params
  done;
  List.rev !params

(* One candidate program; may exceed the width cap (the caller retries). *)
let attempt st : program =
  let params = gen_params st in
  let prog0 = { name = "fuzzed"; params; body = [] } in
  let env = initial_env prog0 in
  let body, env' = gen_stmts st env ~depth:2 ~budget:(4 + Chacha.Prg.int_below st.prg 5) in
  (* Every output gets a final top-level assignment so the program's
     observable behaviour exercises the generated dataflow. *)
  let finals =
    List.concat_map
      (fun (p : param) ->
        if p.pdir <> Output then []
        else
          match p.plen with
          | None -> [ mks (Assign (Lvar p.pname, gen_num st env' ~depth:2 ~cap:24)) ]
          | Some len ->
            List.init len (fun i ->
                mks (Assign (Lindex (p.pname, int_lit i), gen_num st env' ~depth:1 ~cap:24))))
      params
  in
  { prog0 with body = body @ finals }

(* Deterministic in [prg]: drawing more randomness from the same stream on
   a width rejection keeps the retry loop reproducible. *)
let program (prg : Chacha.Prg.t) : program =
  let st = { prg; fresh = 0 } in
  let rec go n =
    if n = 0 then failwith "Zfuzz.Gen.program: width cap exceeded on every attempt"
    else
      let p = attempt st in
      if max_width p <= width_cap then p else go (n - 1)
  in
  go 50

(* Inputs within each parameter's declared range: |v| < 2^(bits-1). *)
let inputs (prg : Chacha.Prg.t) (prog : program) : int array =
  let draw bits =
    let bound = (1 lsl (bits - 1)) - 1 in
    Chacha.Prg.int_below prg ((2 * bound) + 1) - bound
  in
  List.concat_map
    (fun (p : param) ->
      if p.pdir <> Input then []
      else
        match p.plen with
        | None -> [ draw p.ptyp.bits ]
        | Some len -> List.init len (fun _ -> draw p.ptyp.bits))
    prog.params
  |> Array.of_list
