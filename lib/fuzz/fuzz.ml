(* The differential fuzzing campaign against the ZL -> R1CS compiler
   (DESIGN.md §16): seeded random programs (gen.ml) are run through a
   three-way oracle — the native evaluator (eval.ml), the compiler's own
   witness solver, and the Zexec interpreter re-solving the compiled
   system from inputs alone — with the printer round-trip checked on the
   way in and, on a sample of programs, the full argument pipeline's
   verdict checked on the way out. Any disagreement is a discrepancy; the
   shrinker minimizes the offending program while the discrepancy (same
   oracle stage) persists.

   Determinism: program i of a campaign draws from
   Prg.create ~seed:"zfuzz-<seed>" ~nonce:i, so any discrepancy is
   reproducible from (seed, index) alone. *)

open Fieldlib
open Zlang.Ast

(* ---- the oracle ---- *)

type discrepancy = {
  index : int;  (** program index within the campaign *)
  stage : string;  (** the oracle leg that disagreed *)
  detail : string;
  source : string;  (** ZL source of the offending program *)
  inputs : int array;
}

type report = {
  programs : int;  (** programs generated and checked *)
  verdicts : int;  (** of which ran the full argument pipeline *)
  discrepancies : discrepancy list;
}

let ints_str a = "[" ^ String.concat " " (Array.to_list (Array.map string_of_int a)) ^ "]"

let int_outputs ctx els =
  Array.map
    (fun e ->
      match Fp.to_signed_int ctx e with Some n -> n | None -> max_int)
    els

let witness_diff w1 w2 =
  if Array.length w1 <> Array.length w2 then Some (-1)
  else begin
    let bad = ref None in
    Array.iteri (fun v x -> if !bad = None && not (Fp.equal x w2.(v)) then bad := Some v) w1;
    !bad
  end

(* Run one program through every oracle leg. [None] means all legs agree;
   [Some (stage, detail)] names the first leg that did not. *)
let oracle ~ctx ?(verdict = false) (prog : program) (ints : int array) : (string * string) option
    =
  let fail stage fmt = Printf.ksprintf (fun d -> Some (stage, d)) fmt in
  let src = Zlang.Printer.to_source prog in
  match Zlang.Parser.parse_program src with
  | exception Error m -> fail "reparse" "printed source does not parse: %s" m
  | reparsed -> (
    if Zlang.Printer.to_source reparsed <> src then
      fail "print-fixpoint" "print (parse (print p)) differs from print p"
    else
      match Zlang.Compile.compile ~ctx src with
      | exception Error m -> fail "compile" "%s" m
      | c -> (
        match Eval.run prog ints with
        | exception Eval.Eval_error m -> fail "eval" "%s" m
        | native -> (
          let finputs = Array.map (Fp.of_int ctx) ints in
          match c.Zlang.Compile.solve_zaatar finputs with
          | exception Zlang.Builder.Unsatisfiable m -> fail "solve" "compiled solver: %s" m
          | w -> (
            let sys = Zlang.Compile.zaatar_r1cs c in
            match Constr.R1cs.first_violation ctx sys w with
            | Some row -> fail "satisfy" "compiled witness violates row %d" row
            | None -> (
              let outs = int_outputs ctx (Zlang.Compile.outputs_zaatar c w) in
              if outs <> native then
                fail "outputs" "compiled %s, native %s" (ints_str outs) (ints_str native)
              else
                match Zexec.Exec.solve sys ~inputs:finputs with
                | Error e -> fail "exec" "%s" (Zexec.Exec.error_to_text e)
                | Ok (w2, _) -> (
                  match witness_diff w w2 with
                  | Some (-1) -> fail "exec-witness" "witness length mismatch"
                  | Some v ->
                    fail "exec-witness" "w%d: compiled %s, interpreter %s" v
                      (Fp.to_string w.(v)) (Fp.to_string w2.(v))
                  | None ->
                    if not verdict then None
                    else begin
                      let comp =
                        {
                          Argsys.Argument.r1cs = sys;
                          num_inputs = c.Zlang.Compile.num_inputs;
                          num_outputs = c.Zlang.Compile.num_outputs;
                          solve = c.Zlang.Compile.solve_zaatar;
                        }
                      in
                      let prg = Chacha.Prg.create ~seed:"zfuzz-verdict" () in
                      let br =
                        Argsys.Argument.run_batch ~config:Argsys.Argument.test_config comp ~prg
                          ~inputs:[| finputs |]
                      in
                      if not (Argsys.Argument.all_accepted br) then
                        fail "verdict" "argument pipeline rejected an honest proof"
                      else
                        let claimed =
                          int_outputs ctx br.Argsys.Argument.instances.(0).Argsys.Argument.claimed_output
                        in
                        if claimed <> native then
                          fail "verdict" "claimed %s, native %s" (ints_str claimed)
                            (ints_str native)
                        else None
                    end))))))

(* ---- the campaign ---- *)

let case_prg ~seed i = Chacha.Prg.create ~seed:(Printf.sprintf "zfuzz-%d" seed) ~nonce:i ()

(* Generate program [i] of campaign [seed] together with its inputs. *)
let case ~seed i : program * int array =
  let prg = case_prg ~seed i in
  let prog = Gen.program prg in
  (prog, Gen.inputs prg prog)

let campaign ?(verdict_every = 16) ?on_case ~ctx ~seed ~count () : report =
  let discrepancies = ref [] in
  let verdicts = ref 0 in
  for i = 0 to count - 1 do
    let prog, ints = case ~seed i in
    let verdict = verdict_every > 0 && i mod verdict_every = 0 in
    if verdict then incr verdicts;
    (match oracle ~ctx ~verdict prog ints with
    | None -> ()
    | Some (stage, detail) ->
      discrepancies :=
        { index = i; stage; detail; source = Zlang.Printer.to_source prog; inputs = ints }
        :: !discrepancies);
    match on_case with Some f -> f i | None -> ()
  done;
  { programs = count; verdicts = !verdicts; discrepancies = List.rev !discrepancies }

(* ---- the shrinker ---- *)

let mk e = { e; eloc = no_pos }
let mks s = { s; sloc = no_pos }

let rec size_e (e : expr) =
  1
  +
  match e.e with
  | Int _ | Var _ -> 0
  | Index (_, i) -> size_e i
  | Unop (_, a) -> size_e a
  | Binop (_, a, b) -> size_e a + size_e b

let rec size_s (s : stmt) =
  1
  +
  match s.s with
  | Decl (_, _, _, Some e) -> size_e e
  | Decl _ -> 0
  | Assign (Lvar _, e) -> size_e e
  | Assign (Lindex (_, i), e) -> size_e i + size_e e
  | If (c, t, e) -> size_e c + size_ss t + size_ss e
  | For (_, lo, hi, b) -> size_e lo + size_e hi + size_ss b

and size_ss ss = List.fold_left (fun acc s -> acc + size_s s) 0 ss

let size (p : program) = size_ss p.body

(* Candidate replacements for an expression, smallest first. A candidate
   may be ill-kinded or ill-scoped in context — the validity predicate
   (recompiling through the oracle) rejects those, so the shrinker only
   proposes, never proves. Int 0 / Int 1 are the universal donors: the
   builder kinds them Kbool, so they fit numeric and boolean positions
   alike. *)
let rec shrink_expr (e : expr) : expr list =
  let atoms =
    match e.e with Int (0 | 1) | Var _ -> [] | _ -> [ mk (Int 0); mk (Int 1) ]
  in
  let children =
    match e.e with
    | Int _ | Var _ | Index _ -> []
    | Unop (_, a) -> [ a ]
    | Binop (_, a, b) -> [ a; b ]
  in
  let rebuilt =
    match e.e with
    | Int n when n > 1 -> [ mk (Int (n / 2)) ]
    | Int _ | Var _ -> []
    | Index (name, i) -> List.map (fun i' -> mk (Index (name, i'))) (shrink_expr i)
    | Unop (op, a) -> List.map (fun a' -> mk (Unop (op, a'))) (shrink_expr a)
    | Binop (op, a, b) ->
      List.map (fun a' -> mk (Binop (op, a', b))) (shrink_expr a)
      @ List.map (fun b' -> mk (Binop (op, a, b'))) (shrink_expr b)
  in
  atoms @ children @ rebuilt

(* Candidates for one statement: each is the (possibly empty or plural)
   statement list that replaces it. Removal itself lives at the list
   level. *)
let rec shrink_stmt (s : stmt) : stmt list list =
  match s.s with
  | Decl (t, n, len, Some e) ->
    List.map (fun e' -> [ mks (Decl (t, n, len, Some e')) ]) (shrink_expr e)
  | Decl _ -> []
  | Assign (lv, e) ->
    List.map (fun e' -> [ mks (Assign (lv, e')) ]) (shrink_expr e)
    @ (match lv with
      | Lindex (n, i) -> List.map (fun i' -> [ mks (Assign (Lindex (n, i'), e)) ]) (shrink_expr i)
      | Lvar _ -> [])
  | If (c, t, e) ->
    (* splice a branch in place of the whole conditional *)
    [ t ] @ (if e <> [] then [ e; [ mks (If (c, t, [])) ] ] else [])
    @ List.map (fun c' -> [ mks (If (c', t, e)) ]) (shrink_expr c)
    @ List.map (fun t' -> [ mks (If (c, t', e)) ]) (shrink_stmts t)
    @ List.map (fun e' -> [ mks (If (c, t, e')) ]) (shrink_stmts e)
  | For (v, lo, hi, b) ->
    (match (lo.e, hi.e) with
    | Int l, Int h when h > l + 1 -> [ [ mks (For (v, lo, mk (Int (l + 1)), b)) ] ]
    | _ -> [])
    @ List.map (fun b' -> [ mks (For (v, lo, hi, b')) ]) (shrink_stmts b)

(* Candidates for a statement list: drop each element, or replace it by
   one of its own candidates (spliced). *)
and shrink_stmts (ss : stmt list) : stmt list list =
  let arr = Array.of_list ss in
  let n = Array.length arr in
  let drop i = List.filteri (fun j _ -> j <> i) ss in
  let replace i cand =
    List.concat (List.mapi (fun j s -> if j = i then cand else [ s ]) ss)
  in
  List.concat
    (List.init n (fun i -> drop i :: List.map (replace i) (shrink_stmt arr.(i))))

(* Greedy first-improvement minimization: repeatedly take the first
   strictly smaller body for which [valid] still holds, until no candidate
   qualifies or the step budget runs out. Parameters are never shrunk, so
   a program's inputs stay valid throughout. *)
let shrink ?(max_checks = 400) (valid : program -> bool) (prog : program) : program =
  let checks = ref 0 in
  let rec go prog =
    let cur = size prog in
    let rec first = function
      | [] -> None
      | body :: rest ->
        let cand = { prog with body } in
        if size cand >= cur || !checks >= max_checks then first rest
        else begin
          incr checks;
          if valid cand then Some cand else first rest
        end
    in
    if !checks >= max_checks then prog
    else match first (shrink_stmts prog.body) with Some better -> go better | None -> prog
  in
  go prog

(* Shrink while a discrepancy at the same oracle stage persists. *)
let shrink_discrepancy ~ctx ~stage (prog : program) (ints : int array) : program =
  shrink
    (fun p -> match oracle ~ctx p ints with Some (s, _) -> s = stage | None -> false)
    prog

(* ---- the intentionally broken Transform ---- *)

(* Delete the last product-definition row (z_i * z_j = m) from a compiled
   system: the §4 Transform "forgot" to constrain one product variable —
   exactly the bug class ZR002 exists to catch. Returns [None] when the
   system has no def rows to break. *)
let drop_last_def_row (sys : Constr.R1cs.system) : Constr.R1cs.system option =
  let st = Zlint.Propagate.build sys in
  let last = ref (-1) in
  Array.iteri (fun j d -> if d then last := j) st.Zlint.Propagate.is_def_row;
  if !last < 0 then None
  else
    Some
      {
        sys with
        Constr.R1cs.constraints =
          Array.of_list
            (List.filteri (fun j _ -> j <> !last) (Array.to_list sys.Constr.R1cs.constraints));
      }

(* Does the toolchain catch the broken system? Static detection is a ZR002
   (or worse) from the backend linter; dynamic detection is the Zexec
   interpreter failing to solve or disagreeing with the compiled witness. *)
let mutation_detected (broken : Constr.R1cs.system) ~io ~inputs ~witness : bool =
  let static_hit =
    List.exists
      (fun (d : Zlint.Diagnostic.t) -> d.Zlint.Diagnostic.code = "ZR002")
      (Zlint.Backend.analyze ~io broken)
  in
  static_hit
  ||
  match Zexec.Exec.solve broken ~inputs with
  | Error _ -> true
  | Ok (w2, _) -> witness_diff witness w2 <> None

type broken_case = {
  bt_index : int;  (** campaign index the program came from *)
  bt_source : string;  (** shrunk ZL source *)
  bt_system : Constr.R1cs.system;  (** the mutated (broken) system *)
  bt_findings : Zlint.Diagnostic.t list;  (** linter findings on it *)
}

(* Campaign mode --break-transform: find a generated program whose broken
   compilation the linter flags with ZR002, shrink the program while the
   detection persists, and hand back the minimal broken system (the
   committed regression fixture test/lint_fixtures/fuzz_broken_transform.r1cs
   comes from here). *)
let break_transform ~ctx ~seed ~count () : broken_case option =
  let io_of (c : Zlang.Compile.compiled) =
    {
      Zlint.Backend.num_inputs = c.Zlang.Compile.num_inputs;
      num_outputs = c.Zlang.Compile.num_outputs;
    }
  in
  (* Detection via ZR002 alone here: the fixture must fail *lint*. *)
  let zr002_fires (p : program) =
    match Zlang.Compile.compile ~ctx (Zlang.Printer.to_source p) with
    | exception Error _ -> false
    | c -> (
      match drop_last_def_row (Zlang.Compile.zaatar_r1cs c) with
      | None -> false
      | Some broken ->
        List.exists
          (fun (d : Zlint.Diagnostic.t) -> d.Zlint.Diagnostic.code = "ZR002")
          (Zlint.Backend.analyze ~io:(io_of c) broken))
  in
  let rec search i =
    if i >= count then None
    else
      let prog, _ints = case ~seed i in
      if not (zr002_fires prog) then search (i + 1)
      else begin
        let small = shrink zr002_fires prog in
        let c = Zlang.Compile.compile ~ctx (Zlang.Printer.to_source small) in
        match drop_last_def_row (Zlang.Compile.zaatar_r1cs c) with
        | None -> search (i + 1)
        | Some broken ->
          Some
            {
              bt_index = i;
              bt_source = Zlang.Printer.to_source small;
              bt_system = broken;
              bt_findings = Zlint.Backend.analyze ~io:(io_of c) broken;
            }
      end
  in
  search 0
