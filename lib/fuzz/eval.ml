(* Native reference evaluator for ZL: direct signed-integer execution of
   the AST, with semantics matching the compiler's gadgets exactly —
   comparisons are signed compares, == is exact equality, >> is an
   arithmetic (floor) shift, booleans are 0/1 and &&, ||, ! are their
   arithmetic encodings. The generator's width discipline (gen.ml)
   guarantees every intermediate fits a native int.

   This is the first leg of the differential oracle: what the compiled
   circuit and the Zexec interpreter produce must agree with what the
   program plainly computes. *)

open Zlang.Ast
module SMap = Map.Make (String)

type value = Vint of int | Varr of int array

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let as_int = function Vint n -> n | Varr _ -> err "array used as scalar"
let as_arr = function Varr a -> a | Vint _ -> err "scalar used as array"

let lookup env name =
  match SMap.find_opt name env with Some v -> v | None -> err "undefined variable %s" name

let rec eval_expr env (e : expr) : int =
  match e.e with
  | Int n -> n
  | Var x -> as_int (lookup env x)
  | Index (a, idx) ->
    let arr = as_arr (lookup env a) in
    let i = eval_expr env idx in
    if i < 0 || i >= Array.length arr then err "index %d out of bounds for %s" i a;
    arr.(i)
  | Unop (Neg, e1) -> -eval_expr env e1
  | Unop (Not, e1) -> 1 - eval_expr env e1
  | Binop (op, l, r) -> (
    let a = eval_expr env l in
    let b () = eval_expr env r in
    match op with
    | Add -> a + b ()
    | Sub -> a - b ()
    | Mul -> a * b ()
    | Shr -> a asr min (b ()) 62
    | Shl -> a lsl b ()
    | Lt -> if a < b () then 1 else 0
    | Le -> if a <= b () then 1 else 0
    | Gt -> if a > b () then 1 else 0
    | Ge -> if a >= b () then 1 else 0
    | Eq -> if a = b () then 1 else 0
    | Ne -> if a <> b () then 1 else 0
    | And -> a * b ()
    | Or ->
      let bv = b () in
      a + bv - (a * bv))

let rec exec_stmt env (s : stmt) : value SMap.t =
  match s.s with
  | Decl (_, name, None, init) ->
    SMap.add name (Vint (match init with Some e -> eval_expr env e | None -> 0)) env
  | Decl (_, name, Some n, None) -> SMap.add name (Varr (Array.make n 0)) env
  | Decl (_, _, Some _, Some _) -> err "array declarations cannot have initializers"
  | Assign (Lvar name, e) ->
    (match lookup env name with Varr _ -> err "assigning scalar to array %s" name | Vint _ -> ());
    SMap.add name (Vint (eval_expr env e)) env
  | Assign (Lindex (name, idx), e) ->
    let arr = Array.copy (as_arr (lookup env name)) in
    let i = eval_expr env idx in
    if i < 0 || i >= Array.length arr then err "index %d out of bounds for %s" i name;
    arr.(i) <- eval_expr env e;
    SMap.add name (Varr arr) env
  | If (cond, then_b, else_b) ->
    if eval_expr env cond <> 0 then exec_block env then_b else exec_block env else_b
  | For (v, lo, hi, body) ->
    let lo = eval_expr env lo and hi = eval_expr env hi in
    let env' = ref env in
    for i = lo to hi - 1 do
      let inner = SMap.add v (Vint i) !env' in
      let after = List.fold_left exec_stmt inner body in
      env' := SMap.filter (fun name _ -> SMap.mem name !env') after
    done;
    !env'

(* Block scoping mirrors the compiler: local declarations vanish, updates
   to outer bindings persist. *)
and exec_block env stmts =
  let after = List.fold_left exec_stmt env stmts in
  SMap.filter (fun name _ -> SMap.mem name env) after

(* Run a program on flat inputs (parameter declaration order, arrays
   element-wise) and return the flat outputs in the same convention as
   Compile.outputs_zaatar. *)
let run (prog : program) (inputs : int array) : int array =
  let pos = ref 0 in
  let take () =
    if !pos >= Array.length inputs then err "not enough inputs";
    let v = inputs.(!pos) in
    incr pos;
    v
  in
  let env = ref SMap.empty in
  List.iter
    (fun (p : param) ->
      let v =
        match (p.pdir, p.plen) with
        | Input, None -> Vint (take ())
        | Input, Some n -> Varr (Array.init n (fun _ -> take ()))
        | Output, None -> Vint 0
        | Output, Some n -> Varr (Array.make n 0)
      in
      env := SMap.add p.pname v !env)
    prog.params;
  let final = List.fold_left exec_stmt !env prog.body in
  List.concat_map
    (fun (p : param) ->
      if p.pdir <> Output then []
      else
        match SMap.find p.pname final with
        | Vint n -> [ n ]
        | Varr a -> Array.to_list a)
    prog.params
  |> Array.of_list
