(* The QAP-based linear PCP of Figure 10.

   A correct proof oracle encodes (z, h) where z satisfies C(X=x, Y=y) and
   h holds the coefficients of H = P_w / D. Per repetition the verifier
   runs rho_lin linearity-test iterations against each oracle, then a
   divisibility correction test whose queries q_a, q_b, q_c, q_d are
   blinded by self-correction (q1 = qa + q5, ..., q4 = qd + q8).

   Queries are generated as explicit vectors so that the argument layer
   (lib/argument) can push the very same vectors through the commitment
   protocol; [decide] then consumes the prover's responses. *)

open Fieldlib
open Constr

type params = { rho : int; rho_lin : int }

(* §A.2: delta = 0.0294, rho_lin = 20, kappa = 0.177, rho = 8 gives
   soundness error kappa^rho < 9.6e-7. *)
let paper_params = { rho = 8; rho_lin = 20 }

(* Cheap parameters for tests that only exercise completeness or want a
   single-repetition rejection probability. *)
let test_params = { rho = 1; rho_lin = 2 }

let num_queries p = p.rho * ((6 * p.rho_lin) + 4)

(* One repetition's queries. Linearity triples index into the query arrays;
   the divisibility queries remember their blinds. *)
type repetition = {
  lin_z : (int * int * int) array; (* (i5, i6, i7): check pi(q5)+pi(q6)=pi(q7) *)
  lin_h : (int * int * int) array;
  iq1 : int;
  iq2 : int;
  iq3 : int; (* into z queries; blinded by q5 = first lin_z component *)
  iq4 : int; (* into h queries; blinded by q8 = first lin_h component *)
  iblind_z : int; (* q5 *)
  iblind_h : int; (* q8 *)
  qap_q : Qapb.queries;
}

type queries = {
  z_queries : Fp.el array array;
  h_queries : Fp.el array array;
  reps : repetition array;
}

let add_vec ctx a b = Array.init (Array.length a) (fun i -> Fp.add ctx a.(i) b.(i))

(* Commit/decommit-side query volumes: what the batch amortizes (§2.2). *)
let c_queries_z = Zobs.Counter.make "pcp.queries_z"
let c_queries_h = Zobs.Counter.make "pcp.queries_h"

let fresh_tau ctx qap prg =
  let rec go () =
    let tau = Chacha.Prg.field ctx prg in
    match Qapb.queries qap ~tau with
    | q -> q
    | exception Qapb.Tau_collision -> go ()
  in
  go ()

let gen_queries ?(params = paper_params) (qap : Qapb.t) (prg : Chacha.Prg.t) : queries =
  Zobs.Span.with_ ~name:"pcp.gen_queries"
    ~attrs:[ ("rho", string_of_int params.rho); ("rho_lin", string_of_int params.rho_lin) ]
  @@ fun () ->
  let ctx = Qapb.ctx qap in
  let n' = (Qapb.sys qap).R1cs.num_z in
  let hl = Qapb.h_len qap in
  let zq = ref [] and hq = ref [] and nz = ref 0 and nh = ref 0 in
  let push_z q =
    zq := q :: !zq;
    incr nz;
    !nz - 1
  in
  let push_h q =
    hq := q :: !hq;
    incr nh;
    !nh - 1
  in
  let rand_vec len = Array.init len (fun _ -> Chacha.Prg.field ctx prg) in
  let repetition () =
    let lin_triple push len =
      let q5 = rand_vec len and q6 = rand_vec len in
      let q7 = add_vec ctx q5 q6 in
      let i5 = push q5 in
      let i6 = push q6 in
      let i7 = push q7 in
      (i5, i6, i7)
    in
    let lin_z = Array.init params.rho_lin (fun _ -> lin_triple push_z n') in
    let lin_h = Array.init params.rho_lin (fun _ -> lin_triple push_h hl) in
    let iblind_z, _, _ = lin_z.(0) in
    let iblind_h, _, _ = lin_h.(0) in
    let q5 = (List.nth !zq (!nz - 1 - iblind_z) : Fp.el array) in
    let q8 = List.nth !hq (!nh - 1 - iblind_h) in
    let qap_q = fresh_tau ctx qap prg in
    let qa = Qapb.z_slice qap qap_q.Qapb.a_tau in
    let qb = Qapb.z_slice qap qap_q.Qapb.b_tau in
    let qc = Qapb.z_slice qap qap_q.Qapb.c_tau in
    let iq1 = push_z (add_vec ctx qa q5) in
    let iq2 = push_z (add_vec ctx qb q5) in
    let iq3 = push_z (add_vec ctx qc q5) in
    let iq4 = push_h (add_vec ctx qap_q.Qapb.qd q8) in
    { lin_z; lin_h; iq1; iq2; iq3; iq4; iblind_z; iblind_h; qap_q }
  in
  let reps = Array.init params.rho (fun _ -> repetition ()) in
  let q =
    {
      z_queries = Array.of_list (List.rev !zq);
      h_queries = Array.of_list (List.rev !hq);
      reps;
    }
  in
  Zobs.Counter.add c_queries_z (Array.length q.z_queries);
  Zobs.Counter.add c_queries_h (Array.length q.h_queries);
  q

(* Responses: one field element per query, in query order. *)
type responses = { z_resp : Fp.el array; h_resp : Fp.el array }

let answer (oracle : Oracle.t) (q : queries) : responses =
  Zobs.Span.with_ ~name:"pcp.answer" (fun () ->
      {
        z_resp = Array.map oracle.Oracle.query_z q.z_queries;
        h_resp = Array.map oracle.Oracle.query_h q.h_queries;
      })

type verdict = Accept | Reject_linearity of int | Reject_divisibility of int

(* [io] holds the bound input/output values (variables n'+1 .. n in
   order). *)
let decide (qap : Qapb.t) (q : queries) (r : responses) ~(io : Fp.el array) : verdict =
  Zobs.Span.with_ ~name:"pcp.decide" @@ fun () ->
  let ctx = Qapb.ctx qap in
  let rz = r.z_resp and rh = r.h_resp in
  let rec check_reps k =
    if k >= Array.length q.reps then Accept
    else begin
      let rep = q.reps.(k) in
      let lin_ok =
        Array.for_all
          (fun (i5, i6, i7) -> Fp.equal (Fp.add ctx rz.(i5) rz.(i6)) rz.(i7))
          rep.lin_z
        && Array.for_all
             (fun (i5, i6, i7) -> Fp.equal (Fp.add ctx rh.(i5) rh.(i6)) rh.(i7))
             rep.lin_h
      in
      if not lin_ok then Reject_linearity k
      else begin
        let qq = rep.qap_q in
        let la = Qapb.io_contribution qap qq.Qapb.a_tau io in
        let lb = Qapb.io_contribution qap qq.Qapb.b_tau io in
        let lc = Qapb.io_contribution qap qq.Qapb.c_tau io in
        let a_tau = Fp.add ctx (Fp.sub ctx rz.(rep.iq1) rz.(rep.iblind_z)) la in
        let b_tau = Fp.add ctx (Fp.sub ctx rz.(rep.iq2) rz.(rep.iblind_z)) lb in
        let c_tau = Fp.add ctx (Fp.sub ctx rz.(rep.iq3) rz.(rep.iblind_z)) lc in
        let h_tau = Fp.sub ctx rh.(rep.iq4) rh.(rep.iblind_h) in
        let lhs = Fp.mul ctx qq.Qapb.d_tau h_tau in
        let rhs = Fp.sub ctx (Fp.mul ctx a_tau b_tau) c_tau in
        if Fp.equal lhs rhs then check_reps (k + 1) else Reject_divisibility k
      end
    end
  in
  check_reps 0

let accepts v = match v with Accept -> true | Reject_linearity _ | Reject_divisibility _ -> false

(* Convenience end-to-end run against an oracle. *)
let run ?(params = paper_params) qap prg oracle ~io =
  let q = gen_queries ~params qap prg in
  let r = answer oracle q in
  decide qap q r ~io
