(** The QAP-based linear PCP of Figure 10.

    A correct proof oracle encodes (z, h), where z satisfies C(X=x, Y=y)
    and h holds the coefficients of H = P_w / D. Per repetition the
    verifier runs rho_lin linearity-test iterations against each of the two
    oracles, then the divisibility correction test, whose evaluation
    queries q_a, q_b, q_c, q_d are blinded by self-correction
    (q1 = q_a + q5, ..., q4 = q_d + q8).

    Queries are explicit vectors so the argument layer can push the very
    same vectors through the commitment protocol; {!decide} then consumes
    the prover's responses. *)

open Fieldlib

type params = { rho : int; rho_lin : int }

val paper_params : params
(** §A.2: rho_lin = 20, rho = 8 — soundness error kappa^rho < 9.6e-7 with
    kappa = 0.177. *)

val test_params : params
(** rho = 1, rho_lin = 2: cheap parameters for completeness tests and
    per-repetition rejection measurements. *)

val num_queries : params -> int
(** rho * (6 rho_lin + 4): the paper's rho * l'. *)

type repetition = {
  lin_z : (int * int * int) array;
  lin_h : (int * int * int) array;
  iq1 : int;
  iq2 : int;
  iq3 : int;
  iq4 : int;
  iblind_z : int;
  iblind_h : int;
  qap_q : Qapb.queries;
}

type queries = {
  z_queries : Fp.el array array; (** each of length n' *)
  h_queries : Fp.el array array; (** each of length |C|+1 *)
  reps : repetition array;
}

val gen_queries : ?params:params -> Qapb.t -> Chacha.Prg.t -> queries
(** Verifier side; resamples tau internally on {!Qapb.Tau_collision}. *)

type responses = { z_resp : Fp.el array; h_resp : Fp.el array }

val answer : Oracle.t -> queries -> responses
(** Prover side: one field element per query, in query order. *)

type verdict = Accept | Reject_linearity of int | Reject_divisibility of int

val decide : Qapb.t -> queries -> responses -> io:Fp.el array -> verdict
(** [io] holds the claimed input/output values (variables n'+1 .. n in
    order); the verifier folds them into L_a, L_b, L_c itself. *)

val accepts : verdict -> bool

val run : ?params:params -> Qapb.t -> Chacha.Prg.t -> Oracle.t -> io:Fp.el array -> verdict
(** Convenience end-to-end run against an oracle (no commitment layer). *)
