(* The baseline linear PCP of Ginger (§2.2), built on Arora et al.'s
   construction: the proof vector is u = (z, z (x) z), |u| = |Z| + |Z|^2.

   The verifier draws v in F^|C| and forms the degree-2 polynomial
   Q(v, Z) = sum_j v_j g_j(Z) over the *bound* constraints g_j of
   C(X=x, Y=y); with Q(v, Z) = <gamma2, Z(x)Z> + <gamma1, Z> + gamma0 it
   checks pi2(gamma2) + pi1(gamma1) + gamma0 = 0, alongside linearity tests
   and the quadratic correction test pi2(a (x) b) = pi1(a) pi1(b). All
   evaluation queries are self-corrected against fresh blinds.

   This module exists as the paper's baseline: Figure 3's left column, the
   quadratic proof-vector size, and the small-scale end-to-end comparison in
   the benches. *)

open Fieldlib
open Constr

type params = { rho : int; rho_lin : int }

let paper_params = { rho = 8; rho_lin = 20 }
let test_params = { rho = 1; rho_lin = 2 }

(* Proof vector for an assignment z over the bound system: (z, z(x)z)
   row-major. *)
let proof_vector ctx (z : Fp.el array) =
  let n = Array.length z in
  let zz = Array.make (n * n) Fp.zero in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      zz.((i * n) + j) <- Fp.mul ctx z.(i) z.(j)
    done
  done;
  (z, zz)

let outer ctx (a : Fp.el array) (b : Fp.el array) =
  let n = Array.length a in
  let r = Array.make (n * n) Fp.zero in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      r.((i * n) + j) <- Fp.mul ctx a.(i) b.(j)
    done
  done;
  r

(* Circuit-query coefficients of Q(v, Z) for a bound system. *)
let circuit_coeffs ctx (bound : Quad.system) (v : Fp.el array) =
  let n = bound.Quad.num_z in
  let gamma0 = ref Fp.zero in
  let gamma1 = Array.make n Fp.zero in
  let gamma2 = Array.make (n * n) Fp.zero in
  Array.iteri
    (fun j (q : Quad.qpoly) ->
      let vj = v.(j) in
      List.iter
        (fun (var, c) ->
          let cv = Fp.mul ctx vj c in
          if var = 0 then gamma0 := Fp.add ctx !gamma0 cv
          else gamma1.(var - 1) <- Fp.add ctx gamma1.(var - 1) cv)
        (Lincomb.terms q.Quad.lin);
      Quad.MMap.iter
        (fun (a, b) c ->
          let cell = ((a - 1) * n) + (b - 1) in
          gamma2.(cell) <- Fp.add ctx gamma2.(cell) (Fp.mul ctx v.(j) c))
        q.Quad.quad)
    bound.Quad.constraints;
  (!gamma0, gamma1, gamma2)

type repetition = {
  lin_1 : (int * int * int) array; (* indices into pi1 queries *)
  lin_2 : (int * int * int) array; (* indices into pi2 queries *)
  (* quadratic correction: ((ia, ib), iab) with blinds *)
  iqa : int;
  iqb : int;
  iqab : int;
  iblind1 : int; (* q5 of lin_1.(0) *)
  iblind1' : int; (* q6 of lin_1.(0), used to blind b *)
  iblind2 : int; (* q5 of lin_2.(0) *)
  (* circuit test *)
  ig1 : int;
  ig2 : int;
  iblind1c : int; (* q5 of lin_1.(1) *)
  iblind2c : int; (* q5 of lin_2.(1) *)
  gamma0 : Fp.el;
}

type queries = {
  q1 : Fp.el array array; (* to pi1, length |Z| each *)
  q2 : Fp.el array array; (* to pi2, length |Z|^2 each *)
  reps : repetition array;
}

let add_vec ctx a b = Array.init (Array.length a) (fun i -> Fp.add ctx a.(i) b.(i))

let c_queries_1 = Zobs.Counter.make "pcp_ginger.queries_1"
let c_queries_2 = Zobs.Counter.make "pcp_ginger.queries_2"

let gen_queries ?(params = paper_params) ctx (bound : Quad.system) (prg : Chacha.Prg.t) : queries =
  Zobs.Span.with_ ~name:"pcp_ginger.gen_queries" @@ fun () ->
  if params.rho_lin < 2 then invalid_arg "Pcp_ginger: rho_lin must be >= 2";
  let n = bound.Quad.num_z in
  let nc = Quad.num_constraints bound in
  let q1 = ref [] and q2 = ref [] and n1 = ref 0 and n2 = ref 0 in
  let push1 q = q1 := q :: !q1; incr n1; !n1 - 1 in
  let push2 q = q2 := q :: !q2; incr n2; !n2 - 1 in
  let get1 i = List.nth !q1 (!n1 - 1 - i) in
  let get2 i = List.nth !q2 (!n2 - 1 - i) in
  let rand_vec len = Array.init len (fun _ -> Chacha.Prg.field ctx prg) in
  let repetition () =
    let triple push len =
      let a = rand_vec len and b = rand_vec len in
      let c = add_vec ctx a b in
      let ia = push a in
      let ib = push b in
      let ic = push c in
      (ia, ib, ic)
    in
    let lin_1 = Array.init params.rho_lin (fun _ -> triple push1 n) in
    let lin_2 = Array.init params.rho_lin (fun _ -> triple push2 (n * n)) in
    let iblind1, iblind1', _ = lin_1.(0) in
    let iblind2, _, _ = lin_2.(0) in
    let iblind1c, _, _ = lin_1.(1) in
    let iblind2c, _, _ = lin_2.(1) in
    (* quadratic correction *)
    let a = rand_vec n and b = rand_vec n in
    let iqa = push1 (add_vec ctx a (get1 iblind1)) in
    let iqb = push1 (add_vec ctx b (get1 iblind1')) in
    let iqab = push2 (add_vec ctx (outer ctx a b) (get2 iblind2)) in
    (* circuit test *)
    let v = rand_vec nc in
    let gamma0, gamma1, gamma2 = circuit_coeffs ctx bound v in
    let ig1 = push1 (add_vec ctx gamma1 (get1 iblind1c)) in
    let ig2 = push2 (add_vec ctx gamma2 (get2 iblind2c)) in
    { lin_1; lin_2; iqa; iqb; iqab; iblind1; iblind1'; iblind2; ig1; ig2; iblind1c; iblind2c; gamma0 }
  in
  let reps = Array.init params.rho (fun _ -> repetition ()) in
  let q = { q1 = Array.of_list (List.rev !q1); q2 = Array.of_list (List.rev !q2); reps } in
  Zobs.Counter.add c_queries_1 (Array.length q.q1);
  Zobs.Counter.add c_queries_2 (Array.length q.q2);
  q

type responses = { r1 : Fp.el array; r2 : Fp.el array }

let answer (oracle : Oracle.t) (q : queries) : responses =
  Zobs.Span.with_ ~name:"pcp_ginger.answer" (fun () ->
      { r1 = Array.map oracle.Oracle.query_z q.q1; r2 = Array.map oracle.Oracle.query_h q.q2 })

type verdict = Accept | Reject_linearity of int | Reject_quad_correction of int | Reject_circuit of int

let decide ctx (q : queries) (r : responses) : verdict =
  let r1 = r.r1 and r2 = r.r2 in
  let rec go k =
    if k >= Array.length q.reps then Accept
    else begin
      let rep = q.reps.(k) in
      let lin_ok =
        Array.for_all (fun (i5, i6, i7) -> Fp.equal (Fp.add ctx r1.(i5) r1.(i6)) r1.(i7)) rep.lin_1
        && Array.for_all (fun (i5, i6, i7) -> Fp.equal (Fp.add ctx r2.(i5) r2.(i6)) r2.(i7)) rep.lin_2
      in
      if not lin_ok then Reject_linearity k
      else begin
        let p1a = Fp.sub ctx r1.(rep.iqa) r1.(rep.iblind1) in
        let p1b = Fp.sub ctx r1.(rep.iqb) r1.(rep.iblind1') in
        let p2ab = Fp.sub ctx r2.(rep.iqab) r2.(rep.iblind2) in
        if not (Fp.equal (Fp.mul ctx p1a p1b) p2ab) then Reject_quad_correction k
        else begin
          let g1 = Fp.sub ctx r1.(rep.ig1) r1.(rep.iblind1c) in
          let g2 = Fp.sub ctx r2.(rep.ig2) r2.(rep.iblind2c) in
          let total = Fp.add ctx (Fp.add ctx g2 g1) rep.gamma0 in
          if Fp.is_zero total then go (k + 1) else Reject_circuit k
        end
      end
    end
  in
  go 0

let accepts = function Accept -> true | _ -> false

let run ?(params = paper_params) ctx bound prg oracle =
  let q = gen_queries ~params ctx bound prg in
  let r = answer oracle q in
  decide ctx q r
