(* Number-theoretic transform over fields with high 2-adicity.

   The paper's field is chosen only for size, so its prover uses
   arbitrary-point algorithms (our Subproduct). Modern QAP systems instead
   pick sigma_j as 2^k-th roots of unity so that interpolation is an inverse
   NTT and D(t) = t^n - 1. We implement that path as an ablation
   (bench `ablation`); see DESIGN.md §2. *)

open Fieldlib

(* Per-size packed transform plan: stage-major twiddle tables (stage [len]
   occupies indices [len/2 - 1, len - 2], entry j holding w_len^j) plus the
   packed 1/n. Built once per (ctx, log_n) under the plan lock and then
   read-only, so concurrent domains can share one ctx. *)
type plan = {
  fwd_tw : Fp.Vec.t;
  inv_tw : Fp.Vec.t;
  n_inv : Fp.Vec.t; (* one slot *)
}

type ctx = {
  field : Fp.ctx;
  max_log : int; (* 2-adicity *)
  root : Fp.el; (* generator of the 2^max_log-order subgroup *)
  plans : (int, plan) Hashtbl.t;
  plans_lock : Mutex.t;
}

let create field =
  let max_log = Primes.two_adicity (Fp.modulus field) in
  let root = Primes.find_generator_of_two_power_subgroup field in
  { field; max_log; root; plans = Hashtbl.create 8; plans_lock = Mutex.create () }

let root_of_order t log_n =
  if log_n > t.max_log then invalid_arg "Ntt.root_of_order: order too large";
  let w = ref t.root in
  for _ = 1 to t.max_log - log_n do
    w := Fp.sqr t.field !w
  done;
  !w

let bit_reverse_permute (a : Fp.el array) =
  let n = Array.length a in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tmp = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- tmp
    end;
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit
  done

let h_size = Zobs.Histogram.make "ntt.size"
let c_butterfly = Zobs.Counter.make "ntt.butterfly"

let rec log2_floor n = if n <= 1 then 0 else 1 + log2_floor (n lsr 1)

(* In-place iterative radix-2 Cooley-Tukey. [a] must have power-of-two
   length. *)
let transform t (a : Fp.el array) w =
  let f = t.field in
  let n = Array.length a in
  Zobs.Histogram.observe h_size n;
  Zobs.Counter.add c_butterfly (n / 2 * log2_floor n);
  bit_reverse_permute a;
  let len = ref 2 in
  while !len <= n do
    (* w_len = w^(n / len) *)
    let wlen = ref w in
    let m = ref n in
    while !m > !len do
      wlen := Fp.sqr f !wlen;
      m := !m / 2
    done;
    let half = !len / 2 in
    let i = ref 0 in
    while !i < n do
      let wp = ref Fp.one in
      for k = 0 to half - 1 do
        let u = a.(!i + k) in
        let v = Fp.mul f a.(!i + k + half) !wp in
        a.(!i + k) <- Fp.add f u v;
        a.(!i + k + half) <- Fp.sub f u v;
        wp := Fp.mul f !wp !wlen
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let log2_exact n =
  let rec go n l = if n = 1 then l else if n land 1 = 1 then invalid_arg "Ntt: size not a power of two" else go (n lsr 1) (l + 1) in
  go n 0

(* ------------------------------------------------------------------ *)
(* Packed transforms (the production prover path)                       *)
(* ------------------------------------------------------------------ *)

let build_plan t log_n =
  let f = t.field in
  let n = 1 lsl log_n in
  let mk root =
    let tw = Fp.Vec.create f (max 1 (n - 1)) in
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      (* w_len = root^(n / len) *)
      let wlen = ref root in
      let m = ref n in
      while !m > !len do
        wlen := Fp.sqr f !wlen;
        m := !m / 2
      done;
      let wp = ref Fp.one in
      for j = 0 to half - 1 do
        Fp.Vec.set tw (half - 1 + j) !wp;
        wp := Fp.mul f !wp !wlen
      done;
      len := !len * 2
    done;
    tw
  in
  let w = root_of_order t log_n in
  let n_inv = Fp.Vec.create f 1 in
  Fp.Vec.set n_inv 0 (Fp.inv f (Fp.of_int f n));
  { fwd_tw = mk w; inv_tw = mk (Fp.inv f w); n_inv }

let plan_for t log_n =
  Mutex.lock t.plans_lock;
  let plan =
    match Hashtbl.find_opt t.plans log_n with
    | Some p -> p
    | None ->
      let p = build_plan t log_n in
      Hashtbl.add t.plans log_n p;
      p
  in
  Mutex.unlock t.plans_lock;
  plan

(* In-place packed radix-2 Cooley-Tukey over precomputed stage-major
   twiddles: one fused butterfly (a single counted mul, no allocation) per
   inner step, scratch from the calling domain's arena. *)
let prewarm t log_n = ignore (plan_for t log_n)

let transform_vec t (v : Fp.Vec.t) (tw : Fp.Vec.t) =
  let f = t.field in
  let sc = Fp.scratch_for f in
  let n = Fp.Vec.length v in
  Zobs.Histogram.observe h_size n;
  Zobs.Counter.add c_butterfly (n / 2 * log2_floor n);
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then Fp.Vec.swap sc v i !j;
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let tbase = half - 1 in
    let i = ref 0 in
    while !i < n do
      for k = 0 to half - 1 do
        Fp.Vec.butterfly f sc v (!i + k) (!i + k + half) tw (tbase + k)
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let forward_vec t (v : Fp.Vec.t) =
  let log_n = log2_exact (Fp.Vec.length v) in
  transform_vec t v (plan_for t log_n).fwd_tw

let inverse_vec t (v : Fp.Vec.t) =
  let log_n = log2_exact (Fp.Vec.length v) in
  let plan = plan_for t log_n in
  transform_vec t v plan.inv_tw;
  Fp.Vec.scale_all t.field (Fp.scratch_for t.field) v plan.n_inv 0

let forward t (a : Fp.el array) =
  let a = Array.copy a in
  let log_n = log2_exact (Array.length a) in
  transform t a (root_of_order t log_n);
  a

let inverse t (a : Fp.el array) =
  let a = Array.copy a in
  let n = Array.length a in
  let log_n = log2_exact n in
  let w = root_of_order t log_n in
  transform t a (Fp.inv t.field w);
  let n_inv = Fp.inv t.field (Fp.of_int t.field n) in
  Array.map (Fp.mul t.field n_inv) a

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* Polynomial multiplication by pointwise product in the evaluation
   domain. *)
let mul t (p : Poly.t) (q : Poly.t) : Poly.t =
  if Poly.is_zero p || Poly.is_zero q then Poly.zero
  else begin
    let dn = Poly.degree p + Poly.degree q + 1 in
    let n = next_pow2 dn in
    let pad (x : Poly.t) =
      let a = Array.make n Fp.zero in
      Array.blit (Poly.coeffs x) 0 a 0 (Poly.degree x + 1);
      a
    in
    let fa = forward t (pad p) and fb = forward t (pad q) in
    let prod = Array.init n (fun i -> Fp.mul t.field fa.(i) fb.(i)) in
    Poly.of_coeffs (inverse t prod)
  end
