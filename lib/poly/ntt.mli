(** Number-theoretic transform over fields whose multiplicative group has
    high 2-adicity. The paper's field is chosen only for size, so its
    prover uses arbitrary-point algorithms ({!Subproduct}); this module
    implements the modern alternative (roots of unity as interpolation
    points) used by the ablation bench and {!Qap_ntt}. *)

open Fieldlib

type ctx

val create : Fp.ctx -> ctx
(** The field's 2-adicity bounds the largest transform size. *)

val root_of_order : ctx -> int -> Fp.el
(** A primitive 2^log_n-th root of unity; raises [Invalid_argument] beyond
    the field's 2-adicity. *)

val forward : ctx -> Fp.el array -> Fp.el array
(** In natural order; length must be a power of two. Boxed reference
    implementation (differential baseline for the packed path). *)

val inverse : ctx -> Fp.el array -> Fp.el array

val prewarm : ctx -> int -> unit
(** [prewarm t log_n] builds and caches the size-2^log_n twiddle plan so a
    later timed [forward_vec]/[inverse_vec] pays no one-time setup. *)

val forward_vec : ctx -> Fp.Vec.t -> unit
(** In-place packed transform over precomputed stage-major twiddle tables
    (cached per size in the ctx, thread-safe): one counted field mul per
    butterfly, no per-element allocation. The production prover path. *)

val inverse_vec : ctx -> Fp.Vec.t -> unit
(** In-place packed inverse, including the 1/n scaling. *)

val mul : ctx -> Poly.t -> Poly.t -> Poly.t
(** Polynomial product by pointwise multiplication in the evaluation
    domain. *)

val next_pow2 : int -> int
