(* The R1CS witness-solving interpreter. See the .mli for the rule set and
   DESIGN.md §16 for the design discussion; the propagation *structure*
   (row supports, incidence lists, monomial map) is shared with Zlint's
   ZR002/ZR008 analysis via Zlint.Propagate — this module adds the
   value-level rules the static analysis can only approximate. *)

open Fieldlib
open Constr
module Propagate = Zlint.Propagate

type stats = { pinned : int; defaulted : int; ambiguous_rows : int; row_visits : int }

type error =
  | Unsat of { row : int; detail : string }
  | Stuck of { vars : int list; rows : int list }

exception Fail of error

let error_to_text ?file e =
  let prefix = match file with Some f -> f ^ ": " | None -> "" in
  match e with
  | Unsat { row; detail } -> Printf.sprintf "%srow %d: unsatisfiable: %s" prefix row detail
  | Stuck { vars; rows } ->
    let show l = String.concat "," (List.map string_of_int l) in
    Printf.sprintf
      "%sstuck: variables w{%s} not pinned by propagation and zero-defaulting violates row(s) %s \
       (under-determined for value-level solving; see lint ZR008)"
      prefix (show vars) (show rows)

(* Tonelli–Shanks. The p ≡ 3 (mod 4) moduli take the a^((p+1)/4) shortcut;
   the general case walks the 2-Sylow subgroup. *)
let sqrt ctx a =
  if Fp.is_zero a then Some Fp.zero
  else begin
    let p = Fp.modulus ctx in
    let pm1 = Nat.sub p Nat.one in
    let half = Nat.shift_right pm1 1 in
    let legendre x = Fp.pow ctx x half in
    if not (Fp.equal (legendre a) Fp.one) then None
    else begin
      let s = ref 0 and q = ref pm1 in
      while Nat.is_even !q do
        incr s;
        q := Nat.shift_right !q 1
      done;
      if !s = 1 then Some (Fp.pow ctx a (Nat.shift_right (Nat.add p Nat.one) 2))
      else begin
        let z = ref (Fp.of_int ctx 2) in
        while Fp.equal (legendre !z) Fp.one do
          z := Fp.add ctx !z Fp.one
        done;
        let m = ref !s in
        let c = ref (Fp.pow ctx !z !q) in
        let t = ref (Fp.pow ctx a !q) in
        let r = ref (Fp.pow ctx a (Nat.shift_right (Nat.add !q Nat.one) 1)) in
        while not (Fp.equal !t Fp.one) do
          let i = ref 0 and t2 = ref !t in
          while not (Fp.equal !t2 Fp.one) do
            t2 := Fp.sqr ctx !t2;
            incr i
          done;
          let b = ref !c in
          for _ = 1 to !m - !i - 1 do
            b := Fp.sqr ctx !b
          done;
          m := !i;
          c := Fp.sqr ctx !b;
          t := Fp.mul ctx !t !c;
          r := Fp.mul ctx !r !b
        done;
        Some !r
      end
    end
  end

let outputs (sys : R1cs.system) ~num_inputs w =
  let nz = sys.R1cs.num_z in
  Array.sub w (nz + 1 + num_inputs) (sys.R1cs.num_vars - nz - num_inputs)

let solve ?(check = true) (sys : R1cs.system) ~inputs =
  let ctx = sys.R1cs.field in
  let st = Propagate.build sys in
  let n = st.Propagate.nvars and nz = st.Propagate.nz and nc = st.Propagate.nc in
  if Array.length inputs > n - nz then
    invalid_arg
      (Printf.sprintf "Exec.solve: %d inputs for a system with %d IO variables"
         (Array.length inputs) (n - nz));
  let bl = Propagate.booleans sys st in
  let value = Array.make (n + 1) Fp.zero in
  let known = Array.make (n + 1) false in
  value.(0) <- Fp.one;
  known.(0) <- true;
  Array.iteri
    (fun i x ->
      value.(nz + 1 + i) <- x;
      known.(nz + 1 + i) <- true)
    inputs;
  (* Power-of-two recognition for the bit rule, keyed on the canonical
     string form (Fp.el is an opaque natural). Powers can wrap back onto
     earlier ones — 2^127 = 1 mod the Mersenne prime — so the smallest
     exponent must win: decomposition gadgets only ever use small ones. *)
  let pow2 = Hashtbl.create 256 in
  let x = ref Fp.one in
  for e = 0 to Fp.bits ctx do
    let key = Fp.to_string !x in
    if not (Hashtbl.mem pow2 key) then Hashtbl.add pow2 key e;
    x := Fp.add ctx !x !x
  done;
  let exponent_of c = Hashtbl.find_opt pow2 (Fp.to_string c) in
  let in_queue = Array.make nc false in
  let rowq = Queue.create () in
  let enqueue j =
    if not in_queue.(j) then begin
      in_queue.(j) <- true;
      Queue.add j rowq
    end
  in
  let pinned = ref 0 and row_visits = ref 0 in
  let ambiguous = Array.make nc false in
  let pin ~row v x =
    if known.(v) then begin
      if not (Fp.equal value.(v) x) then
        raise
          (Fail
             (Unsat { row; detail = Printf.sprintf "conflicting forced values for variable w%d" v }))
    end
    else begin
      value.(v) <- x;
      known.(v) <- true;
      incr pinned;
      List.iter enqueue st.Propagate.var_rows.(v);
      List.iter
        (fun m -> List.iter enqueue st.Propagate.var_rows.(m))
        (Hashtbl.find_all st.Propagate.monomial_users v)
    end
  in
  let constrs = sys.R1cs.constraints in
  (* Partial evaluation of one linear combination: the known sum plus the
     still-unknown terms in ascending variable order. *)
  let part lc =
    List.fold_left
      (fun (ksum, unk) (v, c) ->
        if known.(v) then (Fp.add ctx ksum (Fp.mul ctx c value.(v)), unk)
        else (ksum, (v, c) :: unk))
      (Fp.zero, []) (Lincomb.terms lc)
    |> fun (ksum, unk) -> (ksum, List.rev unk)
  in
  let unsat row detail = raise (Fail (Unsat { row; detail })) in
  (* The bit-decomposition rule: all unknowns boolean with distinct
     power-of-two effective coefficients against a fully-known non-zero B;
     they are then the bits of the known residue. *)
  let try_bits j ka ua kb kc uc =
    let merge tbl sign (v, c) =
      let prev = try Hashtbl.find tbl v with Not_found -> Fp.zero in
      Hashtbl.replace tbl v (Fp.add ctx prev (sign c))
    in
    let eff = Hashtbl.create 16 in
    List.iter (merge eff (fun c -> Fp.mul ctx kb c)) ua;
    List.iter (merge eff (fun c -> Fp.neg ctx c)) uc;
    let us = Hashtbl.fold (fun v _ acc -> v :: acc) eff [] |> List.sort compare in
    if us = [] || not (List.for_all (fun v -> bl.(v)) us) then false
    else begin
      let exps sign =
        let rec go acc = function
          | [] -> Some (List.rev acc)
          | v :: rest -> (
            match exponent_of (sign (Hashtbl.find eff v)) with
            | Some e -> go ((v, e) :: acc) rest
            | None -> None)
        in
        go [] us
      in
      let signed =
        match exps (fun c -> c) with
        | Some e -> Some (e, true)
        | None -> ( match exps (Fp.neg ctx) with Some e -> Some (e, false) | None -> None)
      in
      match signed with
      | Some (es, positive)
        when List.length (List.sort_uniq compare (List.map snd es)) = List.length es ->
        (* rest + Σ s·2^e_v·v = 0  ⇒  Σ 2^e_v·v = r *)
        let rest = Fp.sub ctx (Fp.mul ctx kb ka) kc in
        let r = if positive then Fp.neg ctx rest else rest in
        let rn = Fp.to_nat r in
        let covered =
          List.fold_left
            (fun acc (_, e) -> if Nat.testbit rn e then Nat.add acc (Nat.shift_left Nat.one e) else acc)
            Nat.zero es
        in
        if not (Nat.equal covered rn) then
          unsat j "bit-decomposition residue has bits outside the decomposed positions";
        List.iter (fun (v, e) -> pin ~row:j v (if Nat.testbit rn e then Fp.one else Fp.zero)) es;
        true
      | _ -> false
    end
  in
  (* Univariate collapse: substitute known values into each side, reducing
     it to a sparse polynomial over the still-unknown *base* variables
     (product variables contribute their known base values as runtime
     coefficients). Cancellation matters: an equality gadget's
     w26*(a - b) term vanishes outright when a = b at runtime, leaving a
     row that is genuinely linear in a different variable — so the
     support test runs on the substituted coefficients, not on the
     symbolic expansion. A side with <= 1 surviving base variable is a
     univariate polynomial; when all three sides agree on that variable,
     solve the residual if its degree allows a unique root. Unsound on a
     definition row (m = z_i z_j collapses to 0 = 0), so those are
     excluded. *)
  let try_univariate j (k : R1cs.constr) _unknowns =
    if st.Propagate.is_def_row.(j) then ()
    else begin
      (* (const, deg-1 coeffs by base, deg-2 coeffs by base) — or None when
         a bilinear term over two distinct unknown bases survives. *)
      let side_poly lc =
        let cst = ref Fp.zero in
        let d1 = Hashtbl.create 8 and d2 = Hashtbl.create 4 in
        let bump tbl v c =
          let prev = try Hashtbl.find tbl v with Not_found -> Fp.zero in
          Hashtbl.replace tbl v (Fp.add ctx prev c)
        in
        let bilinear = ref false in
        List.iter
          (fun (u, c) ->
            if known.(u) then cst := Fp.add ctx !cst (Fp.mul ctx c value.(u))
            else
              match Hashtbl.find_opt st.Propagate.monomial_of u with
              | None -> bump d1 u c
              | Some (i, j') ->
                if known.(i) && known.(j') then
                  cst := Fp.add ctx !cst (Fp.mul ctx c (Fp.mul ctx value.(i) value.(j')))
                else if known.(i) then bump d1 j' (Fp.mul ctx c value.(i))
                else if known.(j') then bump d1 i (Fp.mul ctx c value.(j'))
                else if i = j' then bump d2 i c
                else bilinear := true)
          (Lincomb.terms lc);
        if !bilinear then None
        else begin
          let support tbl acc =
            Hashtbl.fold (fun v c acc -> if Fp.is_zero c then acc else v :: acc) tbl acc
          in
          Some (!cst, d1, d2, List.sort_uniq compare (support d1 (support d2 [])))
        end
      in
      match (side_poly k.R1cs.a, side_poly k.R1cs.b, side_poly k.R1cs.c) with
      | Some (ca, d1a, d2a, sa), Some (cb, d1b, d2b, sb), Some (cc, d1c, d2c, sc) -> (
        (* A side that substitutes to identically zero annihilates the
           product, so the other factor's unknowns cannot influence the
           row. *)
        let zero_side c s = Fp.is_zero c && s = [] in
        let prod_support =
          if zero_side ca sa || zero_side cb sb then [] else sa @ sb
        in
        match List.sort_uniq compare (prod_support @ sc) with
        | [] | [ _ ] as s -> (
        let v = match s with [ v ] -> v | _ -> -1 in
        let poly3 (cst, d1, d2) =
          let get tbl = try Hashtbl.find tbl v with Not_found -> Fp.zero in
          [| cst; get d1; get d2 |]
        in
        let a = poly3 (ca, d1a, d2a)
        and b = poly3 (cb, d1b, d2b)
        and c = poly3 (cc, d1c, d2c) in
        let r = Array.make 5 Fp.zero in
        for i = 0 to 2 do
          for j' = 0 to 2 do
            r.(i + j') <- Fp.add ctx r.(i + j') (Fp.mul ctx a.(i) b.(j'))
          done
        done;
        for i = 0 to 2 do
          r.(i) <- Fp.sub ctx r.(i) c.(i)
        done;
        let deg = ref (-1) in
        Array.iteri (fun i x -> if not (Fp.is_zero x) then deg := i) r;
        match !deg with
        | -1 -> ()
        | 0 -> unsat j "residual is a non-zero constant"
        | 1 -> pin ~row:j v (Fp.neg ctx (Fp.div ctx r.(0) r.(1)))
        | 2 -> (
          let disc =
            Fp.sub ctx (Fp.sqr ctx r.(1)) (Fp.mul ctx (Fp.of_int ctx 4) (Fp.mul ctx r.(2) r.(0)))
          in
          match sqrt ctx disc with
          | None -> unsat j "quadratic residual has no root in the field"
          | Some s when Fp.is_zero s ->
            pin ~row:j v (Fp.neg ctx (Fp.div ctx r.(1) (Fp.add ctx r.(2) r.(2))))
          | Some _ ->
            (* Two distinct roots: refusing to guess is what keeps solved
               witnesses canonical. Zlint's ZR008 is the static warning. *)
            ambiguous.(j) <- true)
        | _ -> ambiguous.(j) <- true)
        | _ -> ())
      | _ -> ()
    end
  in
  let process j =
    incr row_visits;
    let k = constrs.(j) in
    let ka, ua = part k.R1cs.a in
    let kb, ub = part k.R1cs.b in
    let kc, uc = part k.R1cs.c in
    match (ua, ub, uc) with
    | [], [], [] ->
      if not (Fp.is_zero (Fp.sub ctx (Fp.mul ctx ka kb) kc)) then
        unsat j "constants do not satisfy the row"
    | [], [], [ (v, c) ] -> pin ~row:j v (Fp.div ctx (Fp.sub ctx (Fp.mul ctx ka kb) kc) c)
    | [], _, _ when Fp.is_zero ka -> (
      (* Zero factor: A is fully known and zero, so A*B = 0 whatever B
         holds — C must vanish on its own. This is what executes the
         compiler's is_zero gadget when its argument is zero. *)
      match uc with
      | [] -> if not (Fp.is_zero kc) then unsat j "known-zero A side against a non-zero C"
      | [ (v, c) ] -> pin ~row:j v (Fp.neg ctx (Fp.div ctx kc c))
      | _ -> if not (try_bits j ka ua Fp.zero kc uc) then try_univariate j k (List.map fst uc))
    | _, [], _ when Fp.is_zero kb -> (
      match uc with
      | [] -> if not (Fp.is_zero kc) then unsat j "known-zero B side against a non-zero C"
      | [ (v, c) ] -> pin ~row:j v (Fp.neg ctx (Fp.div ctx kc c))
      | _ ->
        let unknowns = List.sort_uniq compare (List.map fst ua @ List.map fst uc) in
        try_univariate j k unknowns)
    | [], [ (v, c) ], [] when not (Fp.is_zero ka) ->
      pin ~row:j v (Fp.div ctx (Fp.sub ctx (Fp.div ctx kc ka) kb) c)
    | [ (v, c) ], [], [] when not (Fp.is_zero kb) ->
      pin ~row:j v (Fp.div ctx (Fp.sub ctx (Fp.div ctx kc kb) ka) c)
    | _ ->
      let unknowns =
        List.sort_uniq compare (List.map fst ua @ List.map fst ub @ List.map fst uc)
      in
      let bits_done = ub = [] && (not (Fp.is_zero kb)) && try_bits j ka ua kb kc uc in
      if not bits_done then try_univariate j k unknowns
  in
  match
    for j = 0 to nc - 1 do
      enqueue j
    done;
    while not (Queue.is_empty rowq) do
      let j = Queue.take rowq in
      in_queue.(j) <- false;
      process j
    done
  with
  | exception Fail e -> Error e
  | () ->
    let remaining = ref [] in
    for v = n downto 1 do
      if not known.(v) then remaining := v :: !remaining
    done;
    let defaulted = List.length !remaining in
    (* Free variables default to zero — the compiler's own W_inv_or_zero
       convention — and the final whole-system check below decides whether
       that was legitimate. *)
    let ambiguous_rows = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 ambiguous in
    let stats = { pinned = !pinned; defaulted; ambiguous_rows; row_visits = !row_visits } in
    if not check then Ok (value, stats)
    else begin
      let violated = ref [] in
      R1cs.iteri
        (fun j k -> if not (Fp.is_zero (R1cs.eval_constr ctx k value)) then violated := j :: !violated)
        sys;
      match List.rev !violated with
      | [] -> Ok (value, stats)
      | j :: _ when defaulted = 0 && ambiguous_rows = 0 ->
        Error (Unsat { row = j; detail = "constraint violated by the fully-pinned assignment" })
      | rows ->
        let cap n l = List.filteri (fun i _ -> i < n) l in
        Error (Stuck { vars = cap 16 !remaining; rows = cap 16 rows })
    end
