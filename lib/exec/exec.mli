(** Zexec: an R1CS witness-solving interpreter (DESIGN.md §16).

    Given a quadratic-form system and input values, solve for a full
    satisfying assignment by value-level constraint propagation from
    [{w0} U inputs] — the runtime counterpart of Zlint's ZR002 analysis
    (lib/lint/propagate.ml supplies the shared structure: row supports,
    incidence lists, the product-variable monomial map). Any compiled or
    deserialized system executes without its ZL source; `zaatar exec` is
    the CLI face, and the differential fuzzer (lib/fuzz) uses this as one
    leg of its three-way oracle.

    Solver rules, applied to a worklist of rows until fixpoint:
    - fully-known sides: residual check, or a single linear unknown pinned
      by division;
    - zero-factor: a known-zero A or B forces the product to zero whatever
      the other side holds, so C propagates on its own;
    - eager monomials: a product variable with both base values in hand is
      pinned through its definition row;
    - univariate collapse: unknowns that expand onto one base variable
      yield a polynomial; degree 1 pins, degree 2 pins when the
      discriminant's square root ({!sqrt}, Tonelli–Shanks) is unique, and
      a two-root row is left ambiguous rather than guessed;
    - bit decomposition: unknowns that are all boolean with distinct
      power-of-two coefficients against a known non-zero B side are the
      bits of the known residue.

    Variables still free at fixpoint default to zero — matching the
    compiler's witness convention (W_inv_or_zero assigns 0 when the
    inverse does not exist), so on compiler output the solved witness is
    *identical* to the compiled one — and the full system is then checked,
    so a bad default can never smuggle an unsatisfied row through. *)

open Fieldlib
open Constr

type stats = {
  pinned : int;  (** variables pinned by propagation (seeds excluded) *)
  defaulted : int;  (** free variables defaulted to zero at fixpoint *)
  ambiguous_rows : int;  (** rows skipped as multi-root quadratics *)
  row_visits : int;  (** total row examinations (throughput accounting) *)
}

type error =
  | Unsat of { row : int; detail : string }
      (** Constraint [row] cannot hold under the forced assignment. *)
  | Stuck of { vars : int list; rows : int list }
      (** Propagation reached fixpoint with these variables unpinned, and
          zero-defaulting them violates the system: under-determined for
          value-level solving (Zlint's ZR008 is the static warning). *)

val error_to_text : ?file:string -> error -> string
(** One-line report with row provenance, e.g.
    ["app.r1cs: row 12: unsatisfiable: ..."]. *)

val solve :
  ?check:bool -> R1cs.system -> inputs:Fp.el array -> (Fp.el array * stats, error) result
(** [solve sys ~inputs] seeds IO variables [nz+1 .. nz+Array.length inputs]
    and returns the full assignment (slot 0 = 1) with solver statistics.
    [check] (default true) re-validates every constraint before returning.
    Raises [Invalid_argument] if more inputs are supplied than the system
    has IO variables. *)

val outputs : R1cs.system -> num_inputs:int -> Fp.el array -> Fp.el array
(** The IO slots after the first [num_inputs] — the output block of a
    solved assignment, under the repo's inputs-then-outputs convention. *)

val sqrt : Fp.ctx -> Fp.el -> Fp.el option
(** A square root in F_p by Tonelli–Shanks ([None] for non-residues);
    exposed for the univariate rule and its tests. The modulus must be an
    odd prime. *)
