type t = {
  key : Chacha20.key;
  nonce : Chacha20.nonce;
  mutable counter : int;
  mutable buf : bytes;
  mutable pos : int;
}

(* Pad or fold an arbitrary seed string into 32 key bytes. We have no hash
   substrate and need none: seeds are operator-chosen labels, not secrets
   adversaries pick, so simple folding suffices. *)
let key_bytes_of_seed seed =
  let b = Bytes.make 32 '\000' in
  String.iteri
    (fun i c ->
      let j = i mod 32 in
      Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor Char.code c lxor (i land 0xff))))
    seed;
  b

let of_key key ~nonce =
  {
    key;
    nonce = [| nonce land 0xFFFFFFFF; (nonce lsr 32) land 0x3FFFFFFF; 0 |];
    counter = 0;
    buf = Bytes.create 0;
    pos = 0;
  }

let create ?(nonce = 0) ~seed () = of_key (Chacha20.key_of_bytes (key_bytes_of_seed seed)) ~nonce

let c_bytes = Zobs.Counter.make "prg.bytes"

let refill t =
  t.buf <- Chacha20.block t.key t.nonce t.counter;
  Zobs.Counter.add c_bytes (Bytes.length t.buf);
  t.counter <- t.counter + 1;
  t.pos <- 0

let byte t =
  if t.pos >= Bytes.length t.buf then refill t;
  let b = Char.code (Bytes.get t.buf t.pos) in
  t.pos <- t.pos + 1;
  b

let bytes t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (byte t))
  done;
  out

let split t =
  (* Derive a fresh key and bump the nonce lane so streams are disjoint. *)
  let kb = bytes t 32 in
  let child = of_key (Chacha20.key_of_bytes kb) ~nonce:0 in
  child

let bits64 t =
  let b = bytes t 8 in
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  !v land max_int

let rec int_below t n =
  if n <= 0 then invalid_arg "Prg.int_below";
  (* Rejection against the largest multiple of n below 2^62. *)
  let limit = max_int - (max_int mod n) in
  let v = bits64 t in
  if v < limit then v mod n else int_below t n

let bool t = byte t land 1 = 1

(* The paper's c row: pseudorandomly generate a field element (§5.1). Each
   draw counts once however many rejection rounds it takes; field_nonzero
   retries count per draw, matching what the verifier actually consumes. *)
let c_field = Zobs.Counter.make "prg.field"

let field ctx t =
  Zobs.Counter.incr c_field;
  Fieldlib.Fp.sample ctx (fun n -> bytes t n)

let rec field_nonzero ctx t =
  let x = field ctx t in
  if Fieldlib.Fp.is_zero x then field_nonzero ctx t else x

let field_array ctx t n = Array.init n (fun _ -> field ctx t)
