(* Metrics_http: a deliberately minimal HTTP/1.0 server for the
   `--metrics-listen` endpoint, plus the matching one-shot GET client used
   by `zaatar stats` and the tests. Text responses only, one request per
   connection, no keep-alive, no external dependencies — the whole point is
   that a Prometheus scraper, curl, or the bundled client can read the
   prover's counters while a batch is in flight.

   The server runs in its own Domain so the blocking argument serve loop
   keeps the main thread; [stop] shuts the listening socket down, which
   pops the accept loop out of its syscall. *)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "Metrics_http: bad address %s (expected HOST:PORT)" s)
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found | Invalid_argument _ ->
            invalid_arg (Printf.sprintf "Metrics_http: cannot resolve %s" host))
      in
      Unix.ADDR_INET (addr, p)
    | _ -> invalid_arg (Printf.sprintf "Metrics_http: bad port in %s" s))

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

type t = {
  sfd : Unix.file_descr;
  addr : string;
  stopping : bool Atomic.t;
  mutable worker : unit Domain.t option;
}

let bound_addr t = t.addr

(* Read until the blank line ending the request head, bounded so a hostile
   client cannot grow the buffer without limit. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 256 in
  let rec go () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with Unix.Unix_error _ -> 0 in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let have_terminator i sub = i + String.length sub <= String.length s
            && String.sub s i (String.length sub) = sub in
        let rec find i =
          if i >= String.length s then false
          else if have_terminator i "\r\n\r\n" || have_terminator i "\n\n" then true
          else find (i + 1)
        in
        if find 0 then s else go ()
      end
  in
  go ()

let request_path head =
  match String.index_opt head '\n' with
  | None -> None
  | Some i ->
    let line = String.trim (String.sub head 0 i) in
    (match String.split_on_char ' ' line with
    | meth :: path :: _ when String.uppercase_ascii meth = "GET" -> Some path
    | _ -> None)

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status content_type (String.length body)
  in
  let payload = Bytes.of_string (head ^ body) in
  let len = Bytes.length payload in
  let off = ref 0 in
  try
    while !off < len do
      match Unix.write fd payload !off (len - !off) with
      | 0 -> off := len
      | n -> off := !off + n
    done
  with Unix.Unix_error _ -> ()

let handle ~healthz render fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0 with Unix.Unix_error _ -> ());
  (match request_path (read_head fd) with
  | None -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"
  (* Readiness, answered before the render callback: load balancers and
     ci.sh poll this instead of sleeping. 200 "ok" once the serving loop
     is live, 503 while it is still warming up. *)
  | Some "/healthz" ->
    if healthz () then respond fd ~status:"200 OK" ~content_type:"text/plain" "ok\n"
    else respond fd ~status:"503 Service Unavailable" ~content_type:"text/plain" "starting\n"
  | Some path -> (
    match render path with
    | Some (content_type, body) -> respond fd ~status:"200 OK" ~content_type body
    | None -> respond fd ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t ~healthz render =
  let rec go () =
    match Unix.accept t.sfd with
    | fd, _ ->
      if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
      else handle ~healthz render fd;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> () (* listening socket closed: exit *)
  in
  go ()

(* [render path] returns [(content_type, body)] for the paths the caller
   serves, [None] for anything else (a 404). [healthz] backs the built-in
   /healthz route; the default — always ready — fits servers that only
   start the endpoint once they can serve. *)
let start ?(healthz = fun () -> true) ~render addr =
  let sa = parse_addr addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sa;
     Unix.listen fd 16
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     invalid_arg (Printf.sprintf "Metrics_http: listen %s: %s" addr (Unix.error_message e)));
  let t =
    {
      sfd = fd;
      addr = string_of_sockaddr (Unix.getsockname fd);
      stopping = Atomic.make false;
      worker = None;
    }
  in
  t.worker <- Some (Domain.spawn (fun () -> accept_loop t ~healthz render));
  t

let stop t =
  Atomic.set t.stopping true;
  (try Unix.shutdown t.sfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.sfd with Unix.Unix_error _ -> ());
  match t.worker with
  | Some d ->
    Domain.join d;
    t.worker <- None
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

(* One-shot GET. Returns [(status_code, body)]; raises [Failure] on
   connect/parse problems so callers surface a readable message. *)
let get addr path =
  let sa = parse_addr addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.connect fd sa
       with Unix.Unix_error (e, _, _) ->
         failwith (Printf.sprintf "connect %s: %s" addr (Unix.error_message e)));
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0 with Unix.Unix_error _ -> ());
      let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" path addr in
      let rb = Bytes.of_string req in
      let len = Bytes.length rb in
      let off = ref 0 in
      while !off < len do
        match Unix.write fd rb !off (len - !off) with
        | 0 -> failwith "short write"
        | n -> off := !off + n
      done;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          failwith ("timed out reading from " ^ addr)
      in
      drain ();
      let s = Buffer.contents buf in
      let code =
        match String.index_opt s ' ' with
        | Some i when String.length s >= i + 4 -> (
          match int_of_string_opt (String.sub s (i + 1) 3) with
          | Some c -> c
          | None -> failwith "malformed HTTP status line")
        | _ -> failwith "malformed HTTP response"
      in
      let body =
        let rec find i =
          if i + 4 > String.length s then None
          else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
          else find (i + 1)
        in
        match find 0 with
        | Some i -> String.sub s i (String.length s - i)
        | None -> ""
      in
      (code, body))
