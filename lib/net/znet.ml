(* Znet: blocking TCP transport with length-prefixed framing, connect/read
   timeouts and bounded retry. See znet.mli for the contract; DESIGN.md §9
   for how the argument layer drives it. *)

module Svcstats = Svcstats
module Metrics_http = Metrics_http

type error =
  | Timeout of string
  | Refused of string
  | Closed of string
  | Bad_addr of string
  | Frame_too_large of int

exception Net_error of error

let error_to_string = function
  | Timeout what -> Printf.sprintf "timed out %s" what
  | Refused what -> Printf.sprintf "connection failed: %s" what
  | Closed what -> Printf.sprintf "connection closed: %s" what
  | Bad_addr what -> Printf.sprintf "bad address %s (expected HOST:PORT)" what
  | Frame_too_large n -> Printf.sprintf "frame length %d exceeds the limit" n

let fail e = raise (Net_error e)

(* A write to a dead peer must surface as Net_error Closed (EPIPE), not
   kill the process. *)
let () = if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> fail (Bad_addr s)
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found | Invalid_argument _ -> fail (Bad_addr s))
      in
      Unix.ADDR_INET (addr, p)
    | _ -> fail (Bad_addr s))

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

type conn = { fd : Unix.file_descr; mutable peer : string }

let of_fd fd = { fd; peer = "fd" }
let peer conn = conn.peer

let set_timeout conn ms =
  let s = float_of_int ms /. 1000.0 in
  (try Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO s with Unix.Unix_error _ -> ());
  try Unix.setsockopt_float conn.fd Unix.SO_SNDTIMEO s with Unix.Unix_error _ -> ()

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* One bounded-time connect attempt: non-blocking connect + select. *)
let connect_once sa ~timeout_ms =
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (try
     Unix.set_nonblock fd;
     (try Unix.connect fd sa with
     | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ()
     | Unix.Unix_error (e, _, _) -> fail (Refused (Unix.error_message e)));
     let _, w, _ = Unix.select [] [ fd ] [] (float_of_int timeout_ms /. 1000.0) in
     if w = [] then fail (Timeout "connecting");
     (match Unix.getsockopt_error fd with
     | Some e -> fail (Refused (Unix.error_message e))
     | None -> ());
     Unix.clear_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let transient = function
  | Refused _ -> true (* ECONNREFUSED, EHOSTUNREACH, ... : the peer may just be starting *)
  | Timeout _ | Closed _ | Bad_addr _ | Frame_too_large _ -> false

let connect ?(timeout_ms = 5000) ?(retries = 5) ?(backoff_ms = 50) addr =
  let sa = parse_addr addr in
  (match sa with
  | Unix.ADDR_INET (_, 0) -> fail (Bad_addr (addr ^ " (port 0 is listen-only)"))
  | _ -> ());
  let rec attempt n backoff =
    match connect_once sa ~timeout_ms with
    | fd ->
      let conn = { fd; peer = addr } in
      set_timeout conn timeout_ms;
      conn
    | exception Net_error e when transient e && n < retries ->
      Zobs.Log.warn
        ~fields:
          [
            Zobs.Log.str "peer" addr;
            Zobs.Log.int "attempt" (n + 1);
            Zobs.Log.int "backoff_ms" backoff;
            Zobs.Log.str "cause" (error_to_string e);
          ]
        "connect retry";
      Unix.sleepf (float_of_int backoff /. 1000.0);
      attempt (n + 1) (backoff * 2)
    | exception Net_error e ->
      fail (Refused (Printf.sprintf "%s after %d attempt(s): %s" addr (n + 1) (error_to_string e)))
    | exception Unix.Unix_error (e, _, _) ->
      fail (Refused (Printf.sprintf "%s: %s" addr (Unix.error_message e)))
  in
  attempt 0 backoff_ms

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let c_frames_sent = Zobs.Counter.make "net.frames.sent"
let c_frames_recv = Zobs.Counter.make "net.frames.recv"

let write_all conn buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    match Unix.write conn.fd buf !off (len - !off) with
    | 0 -> fail (Closed (conn.peer ^ " stopped accepting bytes"))
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      fail (Timeout ("writing to " ^ conn.peer))
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      fail (Closed (conn.peer ^ " went away mid-write (peer crash?)"))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let read_all conn buf ~what =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    match Unix.read conn.fd buf !off (len - !off) with
    | 0 ->
      if !off = 0 && what = `Header then fail (Closed (conn.peer ^ " closed the connection"))
      else fail (Closed (conn.peer ^ " went away mid-frame (peer crash?)"))
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      fail (Timeout ("reading from " ^ conn.peer))
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      fail (Closed (conn.peer ^ " reset the connection"))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send conn payload =
  let len = Bytes.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (len land 0xff);
  write_all conn hdr;
  write_all conn payload;
  Zobs.Counter.incr c_frames_sent

let recv ?(max_frame = 1 lsl 30) conn =
  let hdr = Bytes.create 4 in
  read_all conn hdr ~what:`Header;
  let len =
    (Bytes.get_uint8 hdr 0 lsl 24)
    lor (Bytes.get_uint8 hdr 1 lsl 16)
    lor (Bytes.get_uint8 hdr 2 lsl 8)
    lor Bytes.get_uint8 hdr 3
  in
  if len > max_frame then fail (Frame_too_large len);
  let payload = Bytes.create len in
  read_all conn payload ~what:`Payload;
  Zobs.Counter.incr c_frames_recv;
  payload

(* ------------------------------------------------------------------ *)
(* Servers                                                             *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Nonblocking additions (the farm's event loop)                       *)
(* ------------------------------------------------------------------ *)

let fd conn = conn.fd
let set_nonblocking conn = Unix.set_nonblock conn.fd

let frame payload =
  let len = Bytes.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set_uint8 b 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (len land 0xff);
  Bytes.blit payload 0 b 4 len;
  b

let write_some conn buf ~off =
  let len = Bytes.length buf - off in
  if len <= 0 then 0
  else
    match Unix.write conn.fd buf off len with
    | n ->
      if n > 0 && off + n = Bytes.length buf then Zobs.Counter.incr c_frames_sent;
      n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> 0
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      fail (Closed (conn.peer ^ " went away mid-write (peer crash?)"))

(* Resumable framed reads: the reader owns the partial-transfer state the
   blocking [recv] keeps on its stack, so a select loop can feed it
   whatever bytes the socket has and come back later. *)
module Frame_reader = struct
  type t = {
    max_frame : int;
    hdr : bytes;
    mutable hdr_off : int;
    mutable payload : bytes; (* length 0 until the header is complete *)
    mutable payload_off : int;
  }

  let create ?(max_frame = 1 lsl 30) () =
    { max_frame; hdr = Bytes.create 4; hdr_off = 0; payload = Bytes.empty; payload_off = 0 }

  let reset t =
    t.hdr_off <- 0;
    t.payload <- Bytes.empty;
    t.payload_off <- 0

  (* Read what the socket has; [`Frame p] resets the state for the next
     frame. EOF at a frame boundary is [`Eof]; EOF mid-frame raises
     [Closed] like the blocking reader. *)
  let step t conn =
    let read_into buf off len =
      match Unix.read conn.fd buf off len with
      | 0 ->
        if t.hdr_off = 0 && Bytes.length t.payload = 0 then `Eof
        else fail (Closed (conn.peer ^ " went away mid-frame (peer crash?)"))
      | n -> `Read n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        `Again
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        fail (Closed (conn.peer ^ " reset the connection"))
    in
    let rec go () =
      if t.hdr_off < 4 then
        match read_into t.hdr t.hdr_off (4 - t.hdr_off) with
        | `Eof -> `Eof
        | `Again -> `Awaiting
        | `Read n ->
          t.hdr_off <- t.hdr_off + n;
          if t.hdr_off = 4 then begin
            let len =
              (Bytes.get_uint8 t.hdr 0 lsl 24)
              lor (Bytes.get_uint8 t.hdr 1 lsl 16)
              lor (Bytes.get_uint8 t.hdr 2 lsl 8)
              lor Bytes.get_uint8 t.hdr 3
            in
            if len > t.max_frame then fail (Frame_too_large len);
            t.payload <- Bytes.create len;
            t.payload_off <- 0
          end;
          go ()
      else if t.payload_off < Bytes.length t.payload then
        match read_into t.payload t.payload_off (Bytes.length t.payload - t.payload_off) with
        | `Eof -> `Eof (* unreachable: read_into raises mid-frame *)
        | `Again -> `Awaiting
        | `Read n ->
          t.payload_off <- t.payload_off + n;
          go ()
      else begin
        let p = t.payload in
        reset t;
        Zobs.Counter.incr c_frames_recv;
        `Frame p
      end
    in
    go ()
end

type server = { sfd : Unix.file_descr; addr : string }

let listen ?(backlog = 16) addr =
  let sa = parse_addr addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sa;
     Unix.listen fd backlog
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail (Refused (Printf.sprintf "listen %s: %s" addr (Unix.error_message e))));
  { sfd = fd; addr = string_of_sockaddr (Unix.getsockname fd) }

let bound_addr s = s.addr

let accept s =
  let rec go () =
    match Unix.accept s.sfd with
    | fd, peer -> { fd; peer = string_of_sockaddr peer }
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let server_fd s = s.sfd
let set_server_nonblocking s = Unix.set_nonblock s.sfd

let accept_nonblock s =
  match Unix.accept s.sfd with
  | fd, peer -> Some { fd; peer = string_of_sockaddr peer }
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
    None

let close_server s = try Unix.close s.sfd with Unix.Unix_error _ -> ()
