(** Znet: blocking TCP transport for the split verifier/prover argument
    (DESIGN.md §9).

    Frames are length-prefixed (u32 BE length, then the payload — a full
    Zwire message); reads and writes loop over partial transfers.
    [connect] retries transient connection failures (refused, unreachable)
    with exponential backoff, and both directions honour a per-connection
    timeout. Every failure mode maps to a {!Net_error} with an explicit
    taxonomy — connection refused, peer crash mid-frame, timeout — rather
    than a raw [Unix.Unix_error]. *)

module Svcstats = Svcstats
(** Per-connection accounting for the serve path (always on, mutex
    protected); rendered by the [--metrics-listen] endpoint. *)

module Metrics_http = Metrics_http
(** Minimal HTTP/1.0 text server (own Domain) + one-shot GET client for
    the metrics endpoint and [zaatar stats]. *)

type error =
  | Timeout of string
  | Refused of string  (** connect failed after all retries *)
  | Closed of string  (** peer closed or crashed (EOF/reset, possibly mid-frame) *)
  | Bad_addr of string  (** malformed HOST:PORT *)
  | Frame_too_large of int

exception Net_error of error

val error_to_string : error -> string

val parse_addr : string -> Unix.sockaddr
(** ["HOST:PORT"] with a numeric or resolvable host; raises
    [Net_error (Bad_addr _)] on malformed input. *)

(** {1 Connections} *)

type conn

val of_fd : Unix.file_descr -> conn
(** Wrap an existing stream socket (tests, [accept]). *)

val peer : conn -> string
(** Peer name: the ["HOST:PORT"] given to {!connect}, the remote address
    for accepted connections, ["fd"] for {!of_fd}. *)

val connect : ?timeout_ms:int -> ?retries:int -> ?backoff_ms:int -> string -> conn
(** Connect to ["HOST:PORT"]. Each attempt is bounded by [timeout_ms]
    (default 5000); refused/unreachable attempts are retried [retries]
    times (default 5) with doubling [backoff_ms] (default 50) sleeps.
    Raises [Net_error (Refused _)] once the budget is exhausted. The
    timeout also applies to subsequent reads and writes. *)

val set_timeout : conn -> int -> unit
(** Set the read/write timeout (milliseconds) on an accepted connection. *)

val send : conn -> bytes -> unit
(** Write one frame. Raises [Net_error (Closed _)] if the peer went away,
    [Net_error (Timeout _)] if the write stalls past the timeout. *)

val recv : ?max_frame:int -> conn -> bytes
(** Read one frame (default [max_frame] 1 GiB guards the length prefix).
    Raises [Net_error (Closed _)] on EOF — including mid-frame peer
    crashes, which are reported distinctly — and [Net_error (Timeout _)]
    on an idle wire. *)

val close : conn -> unit

(** {1 Nonblocking mode}

    The farm's event loop multiplexes many connections over [select];
    these helpers expose the raw descriptor, a partial-write primitive and
    a resumable frame reader. The blocking {!send}/{!recv} API above stays
    the client-side contract. *)

val fd : conn -> Unix.file_descr
(** The raw descriptor, for [select] sets. *)

val set_nonblocking : conn -> unit
(** Switch the socket to nonblocking mode ([O_NONBLOCK]); after this,
    use {!write_some} and {!Frame_reader} rather than {!send}/{!recv}. *)

val frame : bytes -> bytes
(** Prepend the u32-BE length header: the on-wire bytes of one frame,
    ready for {!write_some}. *)

val write_some : conn -> bytes -> off:int -> int
(** Write as much of [buf] from [off] as the socket accepts; returns the
    byte count (0 when the socket is full — try again on writability).
    Raises [Net_error (Closed _)] if the peer went away. *)

(** Incremental framed reads for nonblocking sockets: the reader holds the
    partial-transfer state the blocking {!recv} keeps on its stack. *)
module Frame_reader : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** Fresh reader (default [max_frame] 1 GiB, as {!recv}). *)

  val step : t -> conn -> [ `Frame of bytes | `Awaiting | `Eof ]
  (** Consume whatever bytes the socket has: [`Frame p] when a full frame
      completed (the reader resets for the next one), [`Awaiting] when the
      socket drained mid-frame (call again on readability), [`Eof] on an
      orderly close at a frame boundary. Raises [Net_error (Closed _)] on
      EOF mid-frame and [Net_error (Frame_too_large _)] on an oversized
      length prefix. *)
end

(** {1 Servers} *)

type server

val listen : ?backlog:int -> string -> server
(** Bind and listen on ["HOST:PORT"]; port 0 picks an ephemeral port (read
    it back with {!bound_addr}). *)

val bound_addr : server -> string
(** The actual ["HOST:PORT"] after binding. *)

val accept : server -> conn

val server_fd : server -> Unix.file_descr
(** The listening descriptor, for [select] sets. *)

val set_server_nonblocking : server -> unit

val accept_nonblock : server -> conn option
(** One nonblocking accept: [None] when no connection is pending
    (EAGAIN/EWOULDBLOCK/ECONNABORTED), the accepted connection otherwise.
    Requires {!set_server_nonblocking}. *)

val close_server : server -> unit
