(* Svcstats: per-connection accounting for the serve path. Unlike the Zobs
   registry — process-global, gated by the tracing flag — these stats are
   always on (the server operator wants them regardless of tracing) and
   keyed by connection, so one scrape distinguishes a slow peer from a slow
   prover. The global Zobs counters keep the cumulative totals; this module
   adds the per-connection breakdown the `--metrics-listen` endpoint and
   `zaatar stats` expose.

   All state lives behind one mutex: the serve loop mutates from its
   accept thread while the metrics HTTP domain renders snapshots. *)

type phase_stats = {
  mutable p_sent : int; (* bytes *)
  mutable p_recv : int;
  mutable p_msgs : int;
  mutable p_seconds : float; (* wall time attributed to the phase *)
}

type conn = {
  id : int;
  peer : string;
  mutable digest : string; (* computation digest, once the Hello names it *)
  started : float;
  mutable finished : float option;
  mutable status : string; (* "active" | "ok" | "error" *)
  mutable error : string;
  mutable bytes_sent : int;
  mutable bytes_recv : int;
  mutable msgs : int;
  mutable phases : (string * phase_stats) list; (* insertion order *)
}

let mu = Mutex.create ()
let next_id = ref 0
let accepted = ref 0
let failed = ref 0
let completed = ref 0
let decode_errors = ref 0
let timeouts = ref 0

(* Farm-layer accounting: connections shed by admission control (distinct
   from decode errors — the peer did nothing wrong, the server was full),
   setup-cache traffic, and the current accept-queue depth gauge. *)
let shed = ref 0
let cache_hits = ref 0
let cache_misses = ref 0
let queue_depth = ref 0
let active : conn list ref = ref []
let recent : conn list ref = ref [] (* finished connections, newest first *)

(* Completed-connection ring capacity (--recent-cap). The ring feeds the
   latency percentiles and the per-connection series, so its depth trades
   scrape-payload size against percentile sample count. *)
let default_recent_cap = 64
let recent_cap = ref default_recent_cap

(* Event-loop health (Zscope, DESIGN.md §15): per-iteration accounting of
   the farm's select loop. Always on, like everything else here — the
   buckets reuse the Zobs power-of-two histogram layout so the renderers
   share [Zobs.Histogram.percentile_of_snapshot]. *)
let loop_iters = ref 0
let loop_busy_s = ref 0.0 (* seconds spent working between select returns *)
let loop_wait_s = ref 0.0 (* seconds parked inside select *)
let loop_ready_total = ref 0
let loop_iter_us_b = Array.make 63 0 (* whole-iteration duration, µs *)
let loop_ready_b = Array.make 63 0 (* fds ready per wakeup *)
let depth_trend : (float * int) list ref = ref [] (* (ts, queue depth), newest first *)
let depth_trend_cap = 120

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let trim_recent () =
  if List.length !recent > !recent_cap then
    recent := List.filteri (fun i _ -> i < !recent_cap) !recent

let set_recent_cap n =
  locked (fun () ->
      recent_cap := max 1 n;
      trim_recent ())

let reset () =
  locked (fun () ->
      next_id := 0;
      accepted := 0;
      failed := 0;
      completed := 0;
      decode_errors := 0;
      timeouts := 0;
      shed := 0;
      cache_hits := 0;
      cache_misses := 0;
      queue_depth := 0;
      active := [];
      recent := [];
      recent_cap := default_recent_cap;
      loop_iters := 0;
      loop_busy_s := 0.0;
      loop_wait_s := 0.0;
      loop_ready_total := 0;
      Array.fill loop_iter_us_b 0 (Array.length loop_iter_us_b) 0;
      Array.fill loop_ready_b 0 (Array.length loop_ready_b) 0;
      depth_trend := [])

let begin_conn ~peer =
  locked (fun () ->
      incr accepted;
      let c =
        {
          id = !next_id;
          peer;
          digest = "";
          started = Unix.gettimeofday ();
          finished = None;
          status = "active";
          error = "";
          bytes_sent = 0;
          bytes_recv = 0;
          msgs = 0;
          phases = [];
        }
      in
      incr next_id;
      active := c :: !active;
      c)

let phase_of c name =
  match List.assoc_opt name c.phases with
  | Some p -> p
  | None ->
    let p = { p_sent = 0; p_recv = 0; p_msgs = 0; p_seconds = 0.0 } in
    c.phases <- c.phases @ [ (name, p) ];
    p

let set_digest c d = locked (fun () -> c.digest <- d)

let record_sent c ~phase n =
  locked (fun () ->
      c.bytes_sent <- c.bytes_sent + n;
      c.msgs <- c.msgs + 1;
      let p = phase_of c phase in
      p.p_sent <- p.p_sent + n;
      p.p_msgs <- p.p_msgs + 1)

let record_recv c ~phase n =
  locked (fun () ->
      c.bytes_recv <- c.bytes_recv + n;
      let p = phase_of c phase in
      p.p_recv <- p.p_recv + n)

let record_phase_time c ~phase s =
  locked (fun () ->
      let p = phase_of c phase in
      p.p_seconds <- p.p_seconds +. s)

let record_decode_error () = locked (fun () -> incr decode_errors)
let record_timeout () = locked (fun () -> incr timeouts)
let record_shed () = locked (fun () -> incr shed)

(* One event-loop iteration: [wait_s] inside select, [busy_s] doing work
   after it, [ready] fds select reported. Also samples the current accept-
   queue depth into the bounded trend ring. *)
let record_loop_iter ~busy_s ~wait_s ~ready =
  locked (fun () ->
      incr loop_iters;
      loop_busy_s := !loop_busy_s +. busy_s;
      loop_wait_s := !loop_wait_s +. wait_s;
      loop_ready_total := !loop_ready_total + ready;
      let bump arr v =
        let i = Zobs.Histogram.bucket_of v in
        arr.(i) <- arr.(i) + 1
      in
      bump loop_iter_us_b (int_of_float ((busy_s +. wait_s) *. 1e6));
      bump loop_ready_b ready;
      depth_trend :=
        (Unix.gettimeofday (), !queue_depth)
        :: (if List.length !depth_trend >= depth_trend_cap then
              List.filteri (fun i _ -> i < depth_trend_cap - 1) !depth_trend
            else !depth_trend))

let bucket_snapshot arr =
  let out = ref [] in
  for i = Array.length arr - 1 downto 0 do
    if arr.(i) > 0 then out := (Zobs.Histogram.lower_bound i, arr.(i)) :: !out
  done;
  !out

let loop_utilization_unlocked () =
  let total = !loop_busy_s +. !loop_wait_s in
  if total <= 0.0 then 0.0 else !loop_busy_s /. total

(* (iterations, busy_s, wait_s, ready_total) — tests and the serve
   summary line. *)
let loop_totals () = locked (fun () -> (!loop_iters, !loop_busy_s, !loop_wait_s, !loop_ready_total))
let record_cache_hit () = locked (fun () -> incr cache_hits)
let record_cache_miss () = locked (fun () -> incr cache_misses)
let set_queue_depth n = locked (fun () -> queue_depth := n)

let end_conn c outcome =
  locked (fun () ->
      c.finished <- Some (Unix.gettimeofday ());
      (match outcome with
      | `Ok ->
        c.status <- "ok";
        incr completed
      | `Error msg ->
        c.status <- "error";
        c.error <- msg;
        incr failed);
      active := List.filter (fun x -> x.id <> c.id) !active;
      recent := c :: !recent;
      trim_recent ())

let duration_s c =
  match c.finished with Some t -> t -. c.started | None -> Unix.gettimeofday () -. c.started

(* Session-latency percentiles over the completed-connection ring: the
   always-on counterpart of the (tracing-gated) wire latency histograms.
   Nearest-rank on up to [recent_cap] samples. *)
let latency_ms_unlocked () =
  let ds =
    List.filter_map (fun c -> Option.map (fun t -> (t -. c.started) *. 1000.0) c.finished)
      !recent
    |> Array.of_list
  in
  Array.sort compare ds;
  let pct q =
    let n = Array.length ds in
    if n = 0 then 0.0
    else ds.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))
  in
  (pct 0.50, pct 0.95, pct 0.99)

let latency_ms () = locked latency_ms_unlocked

(* ------------------------------------------------------------------ *)
(* Renderers                                                           *)
(* ------------------------------------------------------------------ *)

(* Per-connection Prometheus series, labelled by connection id, peer,
   digest and phase. Prepended to the global Zobs exposition by the
   metrics endpoint via [Zobs.Prometheus.render ~extra]. *)
let prometheus () =
  locked (fun () ->
      let b = Buffer.create 2048 in
      let open Zobs.Prometheus in
      typ b "zaatar_server_connections_accepted_total" "counter";
      int_metric b ~name:"zaatar_server_connections_accepted_total" !accepted;
      typ b "zaatar_server_connections_active" "gauge";
      int_metric b ~name:"zaatar_server_connections_active" (List.length !active);
      typ b "zaatar_server_connections_completed_total" "counter";
      int_metric b ~name:"zaatar_server_connections_completed_total" !completed;
      typ b "zaatar_server_connections_failed_total" "counter";
      int_metric b ~name:"zaatar_server_connections_failed_total" !failed;
      typ b "zaatar_server_decode_errors_total" "counter";
      int_metric b ~name:"zaatar_server_decode_errors_total" !decode_errors;
      typ b "zaatar_server_timeouts_total" "counter";
      int_metric b ~name:"zaatar_server_timeouts_total" !timeouts;
      typ b "zaatar_server_connections_shed_total" "counter";
      int_metric b ~name:"zaatar_server_connections_shed_total" !shed;
      typ b "zaatar_server_setup_cache_hits_total" "counter";
      int_metric b ~name:"zaatar_server_setup_cache_hits_total" !cache_hits;
      typ b "zaatar_server_setup_cache_misses_total" "counter";
      int_metric b ~name:"zaatar_server_setup_cache_misses_total" !cache_misses;
      typ b "zaatar_server_queue_depth" "gauge";
      int_metric b ~name:"zaatar_server_queue_depth" !queue_depth;
      typ b "zaatar_loop_iterations_total" "counter";
      int_metric b ~name:"zaatar_loop_iterations_total" !loop_iters;
      typ b "zaatar_loop_busy_seconds_total" "counter";
      float_metric b ~name:"zaatar_loop_busy_seconds_total" !loop_busy_s;
      typ b "zaatar_loop_wait_seconds_total" "counter";
      float_metric b ~name:"zaatar_loop_wait_seconds_total" !loop_wait_s;
      typ b "zaatar_loop_utilization" "gauge";
      float_metric b ~name:"zaatar_loop_utilization" (loop_utilization_unlocked ());
      typ b "zaatar_loop_ready_fds_total" "counter";
      int_metric b ~name:"zaatar_loop_ready_fds_total" !loop_ready_total;
      (* Cumulative le-bucket expositions of the two loop histograms, plus
         approximate percentile gauges, in the Zobs renderer's shape. *)
      let histo name arr =
        let snap = bucket_snapshot arr in
        if snap <> [] then begin
          typ b name "histogram";
          let total =
            List.fold_left
              (fun acc (lo, c) ->
                let acc = acc + c in
                let le = if lo = 0 then "0" else string_of_int ((2 * lo) - 1) in
                int_metric b ~labels:[ ("le", le) ] ~name:(name ^ "_bucket") acc;
                acc)
              0 snap
          in
          int_metric b ~labels:[ ("le", "+Inf") ] ~name:(name ^ "_bucket") total;
          int_metric b ~name:(name ^ "_count") total;
          List.iter
            (fun (suffix, p) ->
              match Zobs.Histogram.percentile_of_snapshot snap p with
              | Some v -> int_metric b ~name:(name ^ "_" ^ suffix) v
              | None -> ())
            [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0) ]
        end
      in
      histo "zaatar_loop_iter_us" loop_iter_us_b;
      histo "zaatar_loop_ready_fds" loop_ready_b;
      let p50, p95, p99 = latency_ms_unlocked () in
      typ b "zaatar_server_session_latency_ms" "gauge";
      List.iter
        (fun (q, v) ->
          float_metric b ~labels:[ ("quantile", q) ] ~name:"zaatar_server_session_latency_ms" v)
        [ ("0.5", p50); ("0.95", p95); ("0.99", p99) ];
      let conns = !active @ !recent in
      if conns <> [] then begin
        List.iter
          (fun (n, k) -> typ b n k)
          [
            ("zaatar_conn_bytes_sent_total", "counter");
            ("zaatar_conn_bytes_recv_total", "counter");
            ("zaatar_conn_msgs_total", "counter");
            ("zaatar_conn_phase_seconds_total", "counter");
            ("zaatar_conn_duration_seconds", "gauge");
          ];
        List.iter
          (fun c ->
            let base =
              [ ("conn", string_of_int c.id); ("peer", c.peer); ("digest", c.digest) ]
            in
            float_metric b ~labels:(base @ [ ("status", c.status) ])
              ~name:"zaatar_conn_duration_seconds" (duration_s c);
            List.iter
              (fun (phase, p) ->
                let labels = base @ [ ("phase", phase) ] in
                int_metric b ~labels ~name:"zaatar_conn_bytes_sent_total" p.p_sent;
                int_metric b ~labels ~name:"zaatar_conn_bytes_recv_total" p.p_recv;
                int_metric b ~labels ~name:"zaatar_conn_msgs_total" p.p_msgs;
                float_metric b ~labels ~name:"zaatar_conn_phase_seconds_total" p.p_seconds)
              c.phases)
          conns
      end;
      Buffer.contents b)

(* The phase the connection is currently in: the last entry of the
   insertion-ordered phase list — what `zaatar top`'s per-session table
   shows. *)
let current_phase c =
  match List.rev c.phases with (name, _) :: _ -> name | [] -> ""

let conn_json c =
  let open Zobs.Json in
  Obj
    [
      ("id", Num (float_of_int c.id));
      ("peer", Str c.peer);
      ("digest", Str c.digest);
      ("status", Str c.status);
      ("phase", Str (current_phase c));
      ("error", Str c.error);
      ("started_s", Num c.started);
      ("duration_s", Num (duration_s c));
      ("bytes_sent", Num (float_of_int c.bytes_sent));
      ("bytes_recv", Num (float_of_int c.bytes_recv));
      ("msgs", Num (float_of_int c.msgs));
      ( "phases",
        Obj
          (List.map
             (fun (name, p) ->
               ( name,
                 Obj
                   [
                     ("sent", Num (float_of_int p.p_sent));
                     ("recv", Num (float_of_int p.p_recv));
                     ("msgs", Num (float_of_int p.p_msgs));
                     ("seconds", Num p.p_seconds);
                   ] ))
             c.phases) );
    ]

let json () =
  locked (fun () ->
      let open Zobs.Json in
      Obj
        [
          ( "server",
            Obj
              [
                ("accepted", Num (float_of_int !accepted));
                ("active", Num (float_of_int (List.length !active)));
                ("completed", Num (float_of_int !completed));
                ("failed", Num (float_of_int !failed));
                ("decode_errors", Num (float_of_int !decode_errors));
                ("timeouts", Num (float_of_int !timeouts));
                ("shed", Num (float_of_int !shed));
                ("cache_hits", Num (float_of_int !cache_hits));
                ("cache_misses", Num (float_of_int !cache_misses));
                ("queue_depth", Num (float_of_int !queue_depth));
                ( "latency_ms",
                  let p50, p95, p99 = latency_ms_unlocked () in
                  Obj [ ("p50", Num p50); ("p95", Num p95); ("p99", Num p99) ] );
              ] );
          ( "loop",
            let pcts arr =
              let snap = bucket_snapshot arr in
              let p q =
                match Zobs.Histogram.percentile_of_snapshot snap q with
                | Some v -> float_of_int v
                | None -> 0.0
              in
              Obj [ ("p50", Num (p 50.0)); ("p95", Num (p 95.0)); ("p99", Num (p 99.0)) ]
            in
            Obj
              [
                ("iterations", Num (float_of_int !loop_iters));
                ("busy_s", Num !loop_busy_s);
                ("wait_s", Num !loop_wait_s);
                ("utilization", Num (loop_utilization_unlocked ()));
                ( "ready_avg",
                  Num
                    (if !loop_iters = 0 then 0.0
                     else float_of_int !loop_ready_total /. float_of_int !loop_iters) );
                ("iter_us", pcts loop_iter_us_b);
                ("ready_fds", pcts loop_ready_b);
                ( "queue_depth_trend",
                  Arr (List.rev_map (fun (_, d) -> Num (float_of_int d)) !depth_trend) );
              ] );
          ("connections", Arr (List.map conn_json (!active @ !recent)));
        ])

(* Quick snapshot for tests and the serve summary line. *)
let totals () =
  locked (fun () ->
      (!accepted, List.length !active, !completed, !failed, !decode_errors, !timeouts))

(* Farm-layer snapshot: shed count, cache hits/misses, queue depth. *)
let farm_totals () = locked (fun () -> (!shed, !cache_hits, !cache_misses, !queue_depth))
