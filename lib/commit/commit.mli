(** The linear commitment protocol (Commit + MultiDecommit) of
    Pepper/Ginger [52, 53], strengthening Ishai et al. [33] — the machinery
    that turns a linear PCP oracle into an interactive argument (§2.2,
    Figure 2).

    Commit phase: the verifier sends Enc(r) for a secret random vector r;
    the prover replies with Enc(pi(r)), computable homomorphically, pinning
    it to one linear function. Decommit: the verifier sends the PCP queries
    plus t = r + sum_i alpha_i q_i (alpha secret); the prover answers in
    the clear; the verifier checks

      g^pi(t) = Dec(Enc(pi(r))) * prod_i (g^pi(q_i))^alpha_i

    in the group. Enc(r), the queries and t are generated once per batch;
    commitments, answers and checks are per instance — Figure 3's
    amortization. *)

open Fieldlib
open Zcrypto

type request = {
  pk : Elgamal.public_key;
  enc_r : Elgamal.ciphertext array; (** sent to the prover *)
}

type verifier_secret = { sk : Elgamal.secret_key; r : Fp.el array }

val commit_request :
  ?domains:int -> Fp.ctx -> Group.t -> Chacha.Prg.t -> len:int -> request * verifier_secret
(** One per batch; [len] is the proof-vector length. Enc(r) is computed in
    parallel over [domains]; the per-element randomness is pre-drawn
    sequentially, so the transcript is identical for every domain count. *)

val prover_commit : request -> Fp.el array -> Elgamal.ciphertext
(** Prover, per instance: Enc(<u, r>) by homomorphic evaluation. *)

type challenge = {
  t : Fp.el array; (** sent to the prover *)
  alpha : Fp.el array; (** secret *)
}

val decommit_challenge : Fp.ctx -> verifier_secret -> Chacha.Prg.t -> Fp.el array array -> challenge
(** One per batch, over the full query list. *)

type answers = {
  a : Fp.el array; (** pi(q_i), in query order *)
  a_t : Fp.el; (** pi(t) *)
}

val prover_answer : Fp.ctx -> Fp.el array -> Fp.el array array -> Fp.el array -> answers
(** [prover_answer ctx u queries t]. *)

val consistency_check : verifier_secret -> challenge -> commitment:Elgamal.ciphertext -> answers -> bool
(** Verifier, per instance. *)
