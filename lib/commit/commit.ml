(* The linear commitment protocol (Commit + MultiDecommit) of
   Pepper/Ginger [52, 53], strengthening Ishai et al. [33] — the machinery
   that turns a linear PCP oracle into an interactive argument (§2.2 and
   Figure 2).

   Commit phase:   V sends Enc(r) for a secret random vector r; P replies
                   with Enc(pi(r)), computable homomorphically, which pins P
                   to a fixed linear function pi.
   Decommit phase: V sends the PCP queries q_1..q_mu *and* the blinded
                   combination t = r + sum_i alpha_i q_i (alpha_i secret);
                   P answers pi(q_1)..pi(q_mu), pi(t) in the clear; V checks

                     g^{pi(t)}  =  Dec(Enc(pi(r))) * prod_i (g^{pi(q_i)})^{alpha_i}

                   in the group — possible because decryption recovers
                   g^{pi(r)} and exponent arithmetic is field arithmetic
                   (the field is Z_q; see lib/crypto/group.ml).

   Batching (§2.2): the commitment request Enc(r) and the queries are
   generated once per batch; each instance contributes its own Enc(pi(r))
   and response vector, so the verifier pays e-costs once and d-costs per
   instance — exactly the amortization in Figure 3. *)

open Fieldlib
open Zcrypto

type request = {
  pk : Elgamal.public_key;
  enc_r : Elgamal.ciphertext array; (* sent to the prover *)
}

type verifier_secret = {
  sk : Elgamal.secret_key;
  r : Fp.el array; (* never leaves the verifier *)
}

let c_enc_r = Zobs.Counter.make "commit.enc_r"
let c_decommit_queries = Zobs.Counter.make "commit.decommit_queries"
let c_checks = Zobs.Counter.make "commit.consistency_checks"

(* One per batch. [len] is the proof-vector length. Enc(r) is
   embarrassingly parallel once the per-element ElGamal randomness k_i is
   pre-drawn sequentially: the transcript (and hence the protocol run) is
   bit-identical for every [domains] count. *)
let commit_request ?(domains = 1) ctx grp prg ~len =
  Zobs.Span.with_ ~name:"commit.request"
    ~attrs:[ ("len", string_of_int len); ("domains", string_of_int domains) ]
  @@ fun () ->
  Zobs.Counter.add c_enc_r len;
  let sk, pk = Elgamal.keygen grp prg in
  let r = Array.init len (fun _ -> Chacha.Prg.field ctx prg) in
  let ks = Array.init len (fun _ -> Fp.to_nat (Chacha.Prg.field_nonzero grp.Group.modq prg)) in
  (* Force the fixed-base tables before fanning out: lazy forcing is not
     thread-safe across domains. *)
  Elgamal.precompute pk;
  let enc_r = Dompool.Pool.mapi ~domains (fun i ri -> Elgamal.encrypt_with_k pk ~k:ks.(i) ri) r in
  ({ pk; enc_r }, { sk; r })

(* Prover side, one per instance: commit to the linear function <., u>. *)
let prover_commit (req : request) (u : Fp.el array) : Elgamal.ciphertext =
  Zobs.Span.with_ ~name:"commit.prover_commit" (fun () -> Elgamal.hom_dot req.pk req.enc_r u)

(* Decommit challenge, one per batch: the consistency-test vector t and its
   secret coefficients. *)
type challenge = {
  t : Fp.el array; (* sent to the prover *)
  alpha : Fp.el array; (* secret *)
}

let decommit_challenge ctx (vs : verifier_secret) prg (queries : Fp.el array array) : challenge =
  Zobs.Span.with_ ~name:"commit.decommit_challenge" @@ fun () ->
  Zobs.Counter.add c_decommit_queries (Array.length queries);
  let len = Array.length vs.r in
  let alpha = Array.init (Array.length queries) (fun _ -> Chacha.Prg.field ctx prg) in
  let t = Array.copy vs.r in
  Array.iteri
    (fun i q ->
      if Array.length q <> len then invalid_arg "Commit.decommit_challenge: query length mismatch";
      for j = 0 to len - 1 do
        t.(j) <- Fp.add ctx t.(j) (Fp.mul ctx alpha.(i) q.(j))
      done)
    queries;
  { t; alpha }

(* Prover side, per instance: answer the queries and the test vector. *)
type answers = {
  a : Fp.el array; (* pi(q_i), in query order *)
  a_t : Fp.el; (* pi(t) *)
}

let prover_answer ctx (u : Fp.el array) (queries : Fp.el array array) (ch_t : Fp.el array) : answers =
  { a = Array.map (fun q -> Fp.dot ctx q u) queries; a_t = Fp.dot ctx ch_t u }

(* Verifier side, per instance: the consistency check

     g^{pi(t)} = Dec(Enc(pi(r))) * prod_i (g^{pi(q_i)})^{alpha_i}

   rearranged to one Shamir double exponentiation. The product collapses
   to g^{<alpha, a>} because exponent arithmetic is Z_q arithmetic, and
   moving the decryption's c1^{-x} to the other side gives the equivalent
   test   c2 = g^{a_t - <alpha, a>} * c1^{x}   — a single {!Group.pow2}
   against the mu+2 generic ladders of the unfused form. *)
let consistency_check (vs : verifier_secret) (ch : challenge) ~(commitment : Elgamal.ciphertext)
    (ans : answers) : bool =
  Zobs.Span.with_ ~name:"commit.consistency_check" @@ fun () ->
  Zobs.Counter.incr c_checks;
  let pk = vs.sk.Elgamal.pk in
  let grp = pk.Elgamal.grp in
  let qctx = grp.Group.modq in
  let s = Fp.dot qctx ch.alpha ans.a in
  let e_g = Fp.sub qctx ans.a_t s in
  let rhs =
    Group.pow2 grp grp.Group.g (Fp.to_nat e_g) commitment.Elgamal.c1 vs.sk.Elgamal.x
  in
  Group.equal commitment.Elgamal.c2 rhs
