(* Schnorr-group parameters for the linear commitment's ElGamal encryption
   (§2.2, footnote 3; §5.1 uses 1024-bit keys).

   The commitment protocol computes with plaintexts in the exponent, so the
   plaintext space is Z_q where q is the order of the subgroup. Following
   Pepper/Ginger, the PCP field *is* Z_q: we pick q = the field modulus and
   search for a prime p = q*m + 1 of the requested size. Exponent
   arithmetic then coincides with field arithmetic, which is what makes
   Enc(pi(r)) homomorphically computable from Enc(r). *)

open Fieldlib

type t = {
  p : Nat.t; (* group modulus *)
  q : Nat.t; (* subgroup (and PCP field) order *)
  g : Fp.el; (* generator of the order-q subgroup, as a mod-p residue *)
  modp : Fp.ctx; (* arithmetic mod p *)
  mont : Montgomery.ctx; (* exponentiation ladder (see the ablation bench) *)
}

type element = Fp.el (* residue mod p *)

(* Modular exponentiations: the dominant prover/verifier cost (§5.1's e, d
   and h rows all reduce to these). *)
let c_pow = Zobs.Counter.make "group.pow"

let pow t (base : element) (e : Nat.t) =
  Zobs.Counter.incr c_pow;
  Montgomery.pow_nat t.mont base e

let pow_barrett t (base : element) (e : Nat.t) =
  Zobs.Counter.incr c_pow;
  Fp.pow t.modp base e
let mul t a b = Fp.mul t.modp a b
let inv t a = Fp.inv t.modp a
let equal = Fp.equal

let generate ?(seed = "zaatar group") ~field_order ~p_bits () =
  let q = field_order in
  let q_bits = Nat.num_bits q in
  if p_bits < q_bits + 16 then invalid_arg "Group.generate: p_bits too small for field order";
  let prg = Chacha.Prg.create ~seed () in
  (* Sample m so that p = q*m + 1 has exactly p_bits bits: m must lie in
     [ceil(2^(p_bits-1)/q), (2^p_bits - 1)/q]. A fixed bit-length for m is
     NOT enough: when q sits just above a power of two the valid window is
     a vanishing sliver of any power-of-two range and the search would
     never terminate. *)
  let lo =
    let base = Nat.shift_left Nat.one (p_bits - 1) in
    let d, r = Nat.divmod base q in
    if Nat.is_zero r then d else Nat.add d Nat.one
  in
  let hi = fst (Nat.divmod (Nat.sub (Nat.shift_left Nat.one p_bits) Nat.one) q) in
  if Nat.compare lo hi >= 0 then invalid_arg "Group.generate: empty multiplier window";
  let window = Nat.sub hi lo in
  let window_bytes = (Nat.num_bits window + 7) / 8 in
  let rec find_p () =
    let raw = Nat.of_bytes_le (Chacha.Prg.bytes prg window_bytes) in
    let m = Nat.add lo (snd (Nat.divmod raw window)) in
    let m = if Nat.is_even m then m else Nat.add m Nat.one in
    let p = Nat.add (Nat.mul q m) Nat.one in
    if Nat.num_bits p <> p_bits then find_p ()
    else if Primes.probably_prime p then (p, m)
    else find_p ()
  in
  let p, m = find_p () in
  if not (Primes.is_prime p) then failwith "Group.generate: final primality check failed";
  let modp = Fp.create p in
  let mont = Montgomery.create p in
  let rec find_g h =
    let g = Fp.pow modp (Fp.of_int modp h) m in
    if Fp.equal g Fp.one then find_g (h + 1) else g
  in
  let g = find_g 2 in
  { p; q; g; modp; mont }

(* Cache of generated groups, keyed by (field bits, p bits): generation
   costs seconds at 1024 bits. *)
let cache : (string, t) Hashtbl.t = Hashtbl.create 4

let cached ~field_order ~p_bits () =
  let key = Printf.sprintf "%s/%d" (Nat.to_hex field_order) p_bits in
  match Hashtbl.find_opt cache key with
  | Some g -> g
  | None ->
    let g = generate ~field_order ~p_bits () in
    Hashtbl.add cache key g;
    g
