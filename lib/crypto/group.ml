(* Schnorr-group parameters for the linear commitment's ElGamal encryption
   (§2.2, footnote 3; §5.1 uses 1024-bit keys).

   The commitment protocol computes with plaintexts in the exponent, so the
   plaintext space is Z_q where q is the order of the subgroup. Following
   Pepper/Ginger, the PCP field *is* Z_q: we pick q = the field modulus and
   search for a prime p = q*m + 1 of the requested size. Exponent
   arithmetic then coincides with field arithmetic, which is what makes
   Enc(pi(r)) homomorphically computable from Enc(r). *)

open Fieldlib

type fb = Montgomery.fb

type t = {
  p : Nat.t; (* group modulus *)
  q : Nat.t; (* subgroup (and PCP field) order *)
  g : Fp.el; (* generator of the order-q subgroup, as a mod-p residue *)
  modp : Fp.ctx; (* arithmetic mod p *)
  modq : Fp.ctx; (* arithmetic mod q (exponents); cached, not rebuilt per call *)
  mont : Montgomery.ctx; (* exponentiation kernels (see the ablation bench) *)
  g_fb : fb Lazy.t; (* fixed-base window table for g, built on first use *)
}

type element = Fp.el (* residue mod p *)

(* Modular exponentiations: the dominant prover/verifier cost (§5.1's e, d
   and h rows all reduce to these). The counters distinguish the kernels so
   BENCH_run.json shows which path served each exponentiation: [group.pow]
   is the generic ladder, the rest are the DESIGN.md §8 kernels. *)
let c_pow = Zobs.Counter.make "group.pow"
let c_pow_fb = Zobs.Counter.make "group.pow.fixed_base"
let c_pow_shamir = Zobs.Counter.make "group.pow.shamir"
let c_multi = Zobs.Counter.make "group.multi_pow"
let c_multi_terms = Zobs.Counter.make "group.multi_pow.terms"

let pow t (base : element) (e : Nat.t) =
  Zobs.Counter.incr c_pow;
  Montgomery.pow_nat t.mont base e

let pow_barrett t (base : element) (e : Nat.t) =
  Zobs.Counter.incr c_pow;
  Fp.pow t.modp base e

let mul t a b = Fp.mul t.modp a b
let inv t a = Fp.inv t.modp a
let equal = Fp.equal
let one = Fp.one

(* ---- Exponentiation kernels (DESIGN.md §8) ---- *)

let fb_precompute ?window t (base : element) : fb =
  let m = t.mont in
  Montgomery.fb_precompute m ?window ~bits:(Nat.num_bits t.q) (Montgomery.to_mont m base)

let fb_g t = Lazy.force t.g_fb

let fb_pow t (tab : fb) (e : Nat.t) : element =
  (* Exponents live in Z_q and the tables cover num_bits q, so the generic
     fallback only triggers for out-of-range callers (reduce mod q first). *)
  if Nat.num_bits e > Montgomery.fb_bits tab then
    let base = Montgomery.of_mont t.mont (Montgomery.fb_pow t.mont tab Nat.one) in
    pow t base e
  else begin
    Zobs.Counter.incr c_pow_fb;
    Montgomery.of_mont t.mont (Montgomery.fb_pow t.mont tab e)
  end

let pow2 t (b1 : element) (e1 : Nat.t) (b2 : element) (e2 : Nat.t) : element =
  Zobs.Counter.incr c_pow_shamir;
  let m = t.mont in
  Montgomery.of_mont m (Montgomery.pow2 m (Montgomery.to_mont m b1) e1 (Montgomery.to_mont m b2) e2)

let multi_pow ?window t (bases : element array) (exps : Nat.t array) : element =
  Zobs.Counter.incr c_multi;
  Zobs.Counter.add c_multi_terms (Array.length bases);
  let m = t.mont in
  let mb = Array.map (Montgomery.to_mont m) bases in
  Montgomery.of_mont m (Montgomery.multi_pow m ?window mb exps)

let generate ?(seed = "zaatar group") ~field_order ~p_bits () =
  let q = field_order in
  let q_bits = Nat.num_bits q in
  if p_bits < q_bits + 16 then invalid_arg "Group.generate: p_bits too small for field order";
  let prg = Chacha.Prg.create ~seed () in
  (* Sample m so that p = q*m + 1 has exactly p_bits bits: m must lie in
     [ceil(2^(p_bits-1)/q), (2^p_bits - 1)/q]. A fixed bit-length for m is
     NOT enough: when q sits just above a power of two the valid window is
     a vanishing sliver of any power-of-two range and the search would
     never terminate. *)
  let lo =
    let base = Nat.shift_left Nat.one (p_bits - 1) in
    let d, r = Nat.divmod base q in
    if Nat.is_zero r then d else Nat.add d Nat.one
  in
  let hi = fst (Nat.divmod (Nat.sub (Nat.shift_left Nat.one p_bits) Nat.one) q) in
  if Nat.compare lo hi >= 0 then invalid_arg "Group.generate: empty multiplier window";
  let window = Nat.sub hi lo in
  let window_bytes = (Nat.num_bits window + 7) / 8 in
  let rec find_p () =
    let raw = Nat.of_bytes_le (Chacha.Prg.bytes prg window_bytes) in
    let m = Nat.add lo (snd (Nat.divmod raw window)) in
    let m = if Nat.is_even m then m else Nat.add m Nat.one in
    let p = Nat.add (Nat.mul q m) Nat.one in
    if Nat.num_bits p <> p_bits then find_p ()
    else if Primes.probably_prime p then (p, m)
    else find_p ()
  in
  let p, m = find_p () in
  if not (Primes.is_prime p) then failwith "Group.generate: final primality check failed";
  (* mod-p arithmetic is group arithmetic: tag it so its multiplications
     land in fp.*.group, not the Figure-3 field ledger. The exponent
     context modq IS the PCP field, so it keeps the default Field tag. *)
  let modp = Fp.create ~tag:Fp.Group p in
  let mont = Montgomery.create p in
  let rec find_g h =
    let g = Fp.pow modp (Fp.of_int modp h) m in
    if Fp.equal g Fp.one then find_g (h + 1) else g
  in
  let g = find_g 2 in
  let g_fb = lazy (Montgomery.fb_precompute mont ~bits:q_bits (Montgomery.to_mont mont g)) in
  { p; q; g; modp; modq = Fp.create q; mont; g_fb }

(* Codec hook (lib/wire): rebuild a group from transmitted (p, q, g). The
   prover must not trust the wire, so every structural property [generate]
   guarantees is re-checked here — q | p - 1, g != 1 and g^q = 1 — before
   any exponent arithmetic runs on the parameters. Primality of p and q is
   NOT re-verified (seconds at 1024 bits); a composite modulus degrades
   soundness for the verifier who chose it, not for the prover. *)
let of_params ~p ~q ~g =
  if Nat.compare p (Nat.of_int 3) < 0 || Nat.is_even p then
    invalid_arg "Group.of_params: p must be odd and >= 3";
  if Nat.compare q (Nat.of_int 3) < 0 || Nat.is_even q then
    invalid_arg "Group.of_params: q must be odd and >= 3";
  let _, r = Nat.divmod (Nat.sub p Nat.one) q in
  if not (Nat.is_zero r) then invalid_arg "Group.of_params: q does not divide p - 1";
  if Nat.is_zero g || Nat.compare g p >= 0 then invalid_arg "Group.of_params: g out of range";
  if Nat.equal g Nat.one then invalid_arg "Group.of_params: g = 1 generates nothing";
  let modp = Fp.create ~tag:Fp.Group p in
  if not (Fp.equal (Fp.pow modp g q) Fp.one) then
    invalid_arg "Group.of_params: g is not in the order-q subgroup";
  let mont = Montgomery.create p in
  let g_fb =
    lazy (Montgomery.fb_precompute mont ~bits:(Nat.num_bits q) (Montgomery.to_mont mont g))
  in
  { p; q; g; modp; modq = Fp.create q; mont; g_fb }

(* Cache of generated groups, keyed by (field bits, p bits): generation
   costs seconds at 1024 bits. *)
let cache : (string, t) Hashtbl.t = Hashtbl.create 4

let cached ~field_order ~p_bits () =
  let key = Printf.sprintf "%s/%d" (Nat.to_hex field_order) p_bits in
  match Hashtbl.find_opt cache key with
  | Some g -> g
  | None ->
    let g = generate ~field_order ~p_bits () in
    Hashtbl.add cache key g;
    g
