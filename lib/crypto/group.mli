(** Schnorr-group parameters for the commitment's ElGamal encryption (§2.2
    footnote 3; §5.1 uses 1024-bit keys).

    The commitment computes with plaintexts in the exponent, so the
    plaintext space is Z_q for q the subgroup order. Following
    Pepper/Ginger, the PCP field *is* Z_q: [generate] takes the field
    modulus as the subgroup order and searches for a prime
    p = q*m + 1 of the requested size, so exponent arithmetic coincides
    with field arithmetic.

    Exponentiations go through the DESIGN.md §8 kernel layer: a windowed
    generic ladder ({!pow}), fixed-base window tables ({!fb_pow}), Shamir
    simultaneous exponentiation ({!pow2}) and Pippenger bucket
    multi-exponentiation ({!multi_pow}). Zobs counters [group.pow],
    [group.pow.fixed_base], [group.pow.shamir] and [group.multi_pow]
    record which kernel served each exponentiation. *)

open Fieldlib

type fb
(** A fixed-base window table for one group element (kernel state). *)

type t = {
  p : Nat.t;  (** group modulus *)
  q : Nat.t;  (** subgroup (and PCP field) order *)
  g : Fp.el;  (** generator of the order-q subgroup, as a mod-p residue *)
  modp : Fp.ctx;
  modq : Fp.ctx;  (** Z_q arithmetic, cached here so per-call contexts are never rebuilt *)
  mont : Montgomery.ctx;  (** exponentiation kernels *)
  g_fb : fb Lazy.t;  (** fixed-base table for [g]; force via {!fb_g} before parallel use *)
}

type element = Fp.el

val pow : t -> element -> Nat.t -> element
(** Generic windowed Montgomery ladder (see the ablation bench). *)

val pow_barrett : t -> element -> Nat.t -> element
(** The Barrett-reduction ladder, kept for the ablation. *)

val mul : t -> element -> element -> element
val inv : t -> element -> element
val equal : element -> element -> bool

val one : element
(** The group identity. *)

val fb_precompute : ?window:int -> t -> element -> fb
(** Build a fixed-base window table covering exponents in Z_q. [window] in
    [1, 16], default 5. *)

val fb_g : t -> fb
(** The (lazily built, cached) table for the generator [g]. *)

val fb_pow : t -> fb -> Nat.t -> element
(** Table-driven exponentiation: one multiplication per nonzero window
    digit. Falls back to the generic ladder for exponents wider than the
    table (never the case for exponents in Z_q). *)

val pow2 : t -> element -> Nat.t -> element -> Nat.t -> element
(** [pow2 t b1 e1 b2 e2 = b1^e1 * b2^e2], Shamir/Straus simultaneous
    exponentiation in one shared squaring chain. *)

val multi_pow : ?window:int -> t -> element array -> Nat.t array -> element
(** [multi_pow t bases exps = prod_i bases.(i)^exps.(i)] by Pippenger
    bucket aggregation; [window] overrides the automatic bucket width
    (tests). *)

val generate : ?seed:string -> field_order:Nat.t -> p_bits:int -> unit -> t
(** Deterministic given [seed]; candidates are screened with
    {!Primes.probably_prime} and the final p confirmed with
    {!Primes.is_prime}. *)

val cached : field_order:Nat.t -> p_bits:int -> unit -> t
(** Memoized {!generate}: parameter search costs seconds at 1024 bits. *)

val of_params : p:Nat.t -> q:Nat.t -> g:element -> t
(** Rebuild a group from wire-transmitted parameters (the prover side of a
    Zwire [Commit_request]). Re-checks the structure [generate] guarantees
    — q | p - 1, 1 < g < p, g^q = 1 — and raises [Invalid_argument]
    otherwise; primality is not re-verified (a composite modulus only hurts
    the party who chose it). *)
