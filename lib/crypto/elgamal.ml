(* ElGamal over a Schnorr group with plaintexts in the exponent: the
   homomorphic (not fully homomorphic) encryption the commitment protocol
   needs (§2.2, footnote 3).

     Enc(m) = (g^k, g^m * y^k)        for k uniform in [1, q)
     Dec(c1, c2) = c2 * c1^(-x) = g^m

   Decryption recovers g^m, not m — and that is all the consistency test
   ever needs: it compares group elements whose exponents are linear
   combinations the verifier knows in the clear (see lib/commit).

   Homomorphism: Enc(a) * Enc(b) = Enc(a+b) componentwise, and
   Enc(a)^c = Enc(c*a); the prover evaluates Enc(<u, r>) from Enc(r)
   without ever seeing r. *)

open Fieldlib

type public_key = { grp : Group.t; y : Group.element }
type secret_key = { pk : public_key; x : Nat.t }
type ciphertext = { c1 : Group.element; c2 : Group.element }

let c_encrypt = Zobs.Counter.make "elgamal.encrypt"
let c_decrypt = Zobs.Counter.make "elgamal.decrypt"
let c_hom = Zobs.Counter.make "elgamal.hom_op"

let keygen (grp : Group.t) (prg : Chacha.Prg.t) =
  let qctx = Fp.create grp.Group.q in
  let x = Fp.to_nat (Chacha.Prg.field_nonzero qctx prg) in
  let y = Group.pow grp grp.Group.g x in
  let pk = { grp; y } in
  ({ pk; x }, pk)

(* Encrypt a field element (exponent encoding). *)
let encrypt (pk : public_key) (prg : Chacha.Prg.t) (m : Fp.el) : ciphertext =
  Zobs.Counter.incr c_encrypt;
  let grp = pk.grp in
  let qctx = Fp.create grp.Group.q in
  let k = Fp.to_nat (Chacha.Prg.field_nonzero qctx prg) in
  let gm = Group.pow grp grp.Group.g (Fp.to_nat m) in
  { c1 = Group.pow grp grp.Group.g k; c2 = Group.mul grp gm (Group.pow grp pk.y k) }

(* Decrypt to the group encoding g^m of the plaintext. *)
let decrypt_to_group (sk : secret_key) (c : ciphertext) : Group.element =
  Zobs.Counter.incr c_decrypt;
  let grp = sk.pk.grp in
  Group.mul grp c.c2 (Group.inv grp (Group.pow grp c.c1 sk.x))

(* g^m for a known m: what the verifier compares decryptions against. *)
let encode (pk : public_key) (m : Fp.el) : Group.element =
  Group.pow pk.grp pk.grp.Group.g (Fp.to_nat m)

(* Homomorphic operations. *)

let hom_add (pk : public_key) (a : ciphertext) (b : ciphertext) : ciphertext =
  Zobs.Counter.incr c_hom;
  { c1 = Group.mul pk.grp a.c1 b.c1; c2 = Group.mul pk.grp a.c2 b.c2 }

let hom_scale (pk : public_key) (c : ciphertext) (s : Fp.el) : ciphertext =
  Zobs.Counter.incr c_hom;
  { c1 = Group.pow pk.grp c.c1 (Fp.to_nat s); c2 = Group.pow pk.grp c.c2 (Fp.to_nat s) }

let hom_zero (pk : public_key) : ciphertext =
  (* Enc(0) with randomness 0: (1, 1) — only used as a fold seed, so the
     missing blinding is irrelevant. *)
  ignore pk;
  { c1 = Fp.one; c2 = Fp.one }

(* Enc(<u, r>) from Enc(r): the prover's commitment computation. Skips zero
   coefficients, matching the sparse proof vectors. *)
let hom_dot (pk : public_key) (enc_r : ciphertext array) (u : Fp.el array) : ciphertext =
  if Array.length enc_r <> Array.length u then invalid_arg "Elgamal.hom_dot: length mismatch";
  let acc = ref (hom_zero pk) in
  Array.iteri
    (fun i ui -> if not (Fp.is_zero ui) then acc := hom_add pk !acc (hom_scale pk enc_r.(i) ui))
    u;
  !acc
