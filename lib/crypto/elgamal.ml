(* ElGamal over a Schnorr group with plaintexts in the exponent: the
   homomorphic (not fully homomorphic) encryption the commitment protocol
   needs (§2.2, footnote 3).

     Enc(m) = (g^k, g^m * y^k)        for k uniform in [1, q)
     Dec(c1, c2) = c2 * c1^(-x) = g^m

   Decryption recovers g^m, not m — and that is all the consistency test
   ever needs: it compares group elements whose exponents are linear
   combinations the verifier knows in the clear (see lib/commit).

   Homomorphism: Enc(a) * Enc(b) = Enc(a+b) componentwise, and
   Enc(a)^c = Enc(c*a); the prover evaluates Enc(<u, r>) from Enc(r)
   without ever seeing r.

   Both fixed bases (g from the group, y from the key) carry fixed-base
   window tables, so encryption and encoding are table lookups plus
   multiplications rather than generic ladders; [hom_dot] is a Pippenger
   multi-exponentiation (DESIGN.md §8). *)

open Fieldlib

type public_key = {
  grp : Group.t;
  y : Group.element;
  y_fb : Group.fb Lazy.t; (* fixed-base table for y; force via [precompute] before parallel use *)
}

type secret_key = { pk : public_key; x : Nat.t }
type ciphertext = { c1 : Group.element; c2 : Group.element }

let c_encrypt = Zobs.Counter.make "elgamal.encrypt"
let c_decrypt = Zobs.Counter.make "elgamal.decrypt"
let c_hom = Zobs.Counter.make "elgamal.hom_op"

let keygen (grp : Group.t) (prg : Chacha.Prg.t) =
  let x = Fp.to_nat (Chacha.Prg.field_nonzero grp.Group.modq prg) in
  let y = Group.fb_pow grp (Group.fb_g grp) x in
  let pk = { grp; y; y_fb = lazy (Group.fb_precompute grp y) } in
  ({ pk; x }, pk)

(* Codec hook (lib/wire): rebuild a public key from a transmitted y. The
   table for y stays lazy — the prover's hom_dot path is all multi_pow and
   never forces it. *)
let public_key_of (grp : Group.t) ~(y : Group.element) =
  if Nat.is_zero y || Nat.compare y grp.Group.p >= 0 then
    invalid_arg "Elgamal.public_key_of: y out of range";
  { grp; y; y_fb = lazy (Group.fb_precompute grp y) }

let precompute (pk : public_key) =
  ignore (Group.fb_g pk.grp);
  ignore (Lazy.force pk.y_fb)

(* Encrypt with caller-supplied randomness k in [1, q): the deterministic
   core that the parallel commitment pipeline maps over after pre-drawing
   every k sequentially (transcripts must not depend on the domain count). *)
let encrypt_with_k (pk : public_key) ~(k : Nat.t) (m : Fp.el) : ciphertext =
  Zobs.Counter.incr c_encrypt;
  let grp = pk.grp in
  let gtab = Group.fb_g grp and ytab = Lazy.force pk.y_fb in
  let gm = Group.fb_pow grp gtab (Fp.to_nat m) in
  { c1 = Group.fb_pow grp gtab k; c2 = Group.mul grp gm (Group.fb_pow grp ytab k) }

(* Encrypt a field element (exponent encoding). *)
let encrypt (pk : public_key) (prg : Chacha.Prg.t) (m : Fp.el) : ciphertext =
  let k = Fp.to_nat (Chacha.Prg.field_nonzero pk.grp.Group.modq prg) in
  encrypt_with_k pk ~k m

(* Decrypt to the group encoding g^m of the plaintext. *)
let decrypt_to_group (sk : secret_key) (c : ciphertext) : Group.element =
  Zobs.Counter.incr c_decrypt;
  let grp = sk.pk.grp in
  Group.mul grp c.c2 (Group.inv grp (Group.pow grp c.c1 sk.x))

(* g^m for a known m: what the verifier compares decryptions against. *)
let encode (pk : public_key) (m : Fp.el) : Group.element =
  Group.fb_pow pk.grp (Group.fb_g pk.grp) (Fp.to_nat m)

(* Homomorphic operations. *)

let hom_add (pk : public_key) (a : ciphertext) (b : ciphertext) : ciphertext =
  Zobs.Counter.incr c_hom;
  { c1 = Group.mul pk.grp a.c1 b.c1; c2 = Group.mul pk.grp a.c2 b.c2 }

let hom_scale (pk : public_key) (c : ciphertext) (s : Fp.el) : ciphertext =
  Zobs.Counter.incr c_hom;
  { c1 = Group.pow pk.grp c.c1 (Fp.to_nat s); c2 = Group.pow pk.grp c.c2 (Fp.to_nat s) }

let hom_zero (pk : public_key) : ciphertext =
  (* Enc(0) with randomness 0: (1, 1) — only used as a fold seed, so the
     missing blinding is irrelevant. *)
  ignore pk;
  { c1 = Fp.one; c2 = Fp.one }

(* Enc(<u, r>) from Enc(r) as a fold of hom_scale/hom_add: the pre-kernel
   path, kept as the ablation/CI cross-check baseline for [hom_dot]. *)
let hom_dot_naive (pk : public_key) (enc_r : ciphertext array) (u : Fp.el array) : ciphertext =
  if Array.length enc_r <> Array.length u then invalid_arg "Elgamal.hom_dot: length mismatch";
  let acc = ref (hom_zero pk) in
  Array.iteri
    (fun i ui -> if not (Fp.is_zero ui) then acc := hom_add pk !acc (hom_scale pk enc_r.(i) ui))
    u;
  !acc

(* Enc(<u, r>) from Enc(r): the prover's commitment computation. Zero
   coefficients are skipped (sparse proof vectors), unit coefficients are a
   bare homomorphic add, and everything else feeds one Pippenger
   multi-exponentiation per ciphertext component. *)
let hom_dot (pk : public_key) (enc_r : ciphertext array) (u : Fp.el array) : ciphertext =
  let n = Array.length enc_r in
  if n <> Array.length u then invalid_arg "Elgamal.hom_dot: length mismatch";
  let grp = pk.grp in
  let ones1 = ref Group.one and ones2 = ref Group.one in
  let idx = ref [] and nidx = ref 0 in
  for i = n - 1 downto 0 do
    let ui = u.(i) in
    if Fp.is_zero ui then ()
    else if Fp.equal ui Fp.one then begin
      Zobs.Counter.incr c_hom;
      ones1 := Group.mul grp !ones1 enc_r.(i).c1;
      ones2 := Group.mul grp !ones2 enc_r.(i).c2
    end
    else begin
      idx := i :: !idx;
      incr nidx
    end
  done;
  if !nidx = 0 then { c1 = !ones1; c2 = !ones2 }
  else begin
    (* Each Pippenger term is one homomorphic accumulate step (the paper's
       h row), same as the hom_add/hom_scale pair it replaces. *)
    Zobs.Counter.add c_hom !nidx;
    let idx = Array.of_list !idx in
    let exps = Array.map (fun i -> Fp.to_nat u.(i)) idx in
    let b1 = Array.map (fun i -> enc_r.(i).c1) idx in
    let b2 = Array.map (fun i -> enc_r.(i).c2) idx in
    {
      c1 = Group.mul grp !ones1 (Group.multi_pow grp b1 exps);
      c2 = Group.mul grp !ones2 (Group.multi_pow grp b2 exps);
    }
  end
