(** ElGamal over a Schnorr group with plaintexts in the exponent: the
    homomorphic (not fully homomorphic) encryption the commitment protocol
    needs (§2.2, footnote 3).

      Enc(m) = (g^k, g^m y^k)        Dec(c1, c2) = c2 c1^{-x} = g^m

    Decryption recovers g^m, not m — all the consistency test needs, since
    it compares group elements whose exponents the verifier knows in the
    clear. [hom_add]/[hom_scale] give Enc(a+b) and Enc(c*a); {!hom_dot}
    evaluates Enc(<u, r>) from Enc(r) without the prover learning r.

    Encryption and encoding run on fixed-base window tables for g and y;
    {!hom_dot} is a Pippenger multi-exponentiation (DESIGN.md §8). *)

open Fieldlib

type public_key = {
  grp : Group.t;
  y : Group.element;
  y_fb : Group.fb Lazy.t;  (** fixed-base table for [y]; see {!precompute} *)
}

type secret_key = { pk : public_key; x : Nat.t }
type ciphertext = { c1 : Group.element; c2 : Group.element }

val keygen : Group.t -> Chacha.Prg.t -> secret_key * public_key

val public_key_of : Group.t -> y:Group.element -> public_key
(** Rebuild a public key from a wire-transmitted [y] (Zwire
    [Commit_request]); raises [Invalid_argument] unless [0 < y < p]. The
    fixed-base table for [y] is built lazily on first use. *)

val precompute : public_key -> unit
(** Force both fixed-base tables. Must be called before sharing the key
    across domains (lazy forcing is not thread-safe). *)

val encrypt : public_key -> Chacha.Prg.t -> Fp.el -> ciphertext

val encrypt_with_k : public_key -> k:Nat.t -> Fp.el -> ciphertext
(** Deterministic encryption with caller-supplied randomness [k] in
    [1, q): the core the parallel commitment pipeline maps over after
    pre-drawing every [k] sequentially. *)

val decrypt_to_group : secret_key -> ciphertext -> Group.element

val encode : public_key -> Fp.el -> Group.element
(** [g^m] for a known [m] — what decryptions are compared against. *)

val hom_add : public_key -> ciphertext -> ciphertext -> ciphertext
val hom_scale : public_key -> ciphertext -> Fp.el -> ciphertext
val hom_zero : public_key -> ciphertext

val hom_dot : public_key -> ciphertext array -> Fp.el array -> ciphertext
(** Skips zero coefficients, folds unit coefficients in with bare
    homomorphic adds, and serves the rest with Pippenger {!Group.multi_pow}
    (one per ciphertext component). *)

val hom_dot_naive : public_key -> ciphertext array -> Fp.el array -> ciphertext
(** The pre-kernel hom_scale/hom_add fold, kept as the ablation baseline
    and the CI divergence check for {!hom_dot}. *)
