(* Zscope sampling profiler (DESIGN.md §15): an always-on wall-clock
   profiler over every domain in the process. A ticker domain wakes
   [hz] times a second and snapshots each domain's live open-span stack
   (Span.live_stacks — maintained even with full tracing off, via
   Registry.enable_stacks), folding each sample into a
   `root;child;leaf count` table. The output is the flamegraph.pl /
   inferno folded-stacks format, served live at /profile and scraped by
   `zaatar profile --live`.

   Cost model: the mutators pay only the stacks-only span path (a DLS load
   and two conses per span); the sampler pays one hashtable upsert per
   non-idle domain per tick on its own domain. At the default 97 Hz that
   is invisible next to a single field multiplication batch — the
   obs-overhead bench experiment holds it (together with the flight
   recorder) under 3% of farm sessions/sec. 97 rather than 100 so the
   tick never phase-locks with millisecond-periodic work. *)

type t = {
  interval_s : float;
  mu : Mutex.t;
  samples : (string, int) Hashtbl.t;  (* folded stack -> samples *)
  mutable ticks : int;  (* total wakeups *)
  mutable busy : int;  (* wakeups that found at least one open span *)
  mutable started_at : float;
  stopping : bool Atomic.t;
  mutable ticker : unit Domain.t option;
}

let default_hz = 97

let make ?(hz = default_hz) () =
  {
    interval_s = 1.0 /. float_of_int (max 1 hz);
    mu = Mutex.create ();
    samples = Hashtbl.create 64;
    ticks = 0;
    busy = 0;
    started_at = 0.0;
    stopping = Atomic.make true;
    ticker = None;
  }

let sample_once t =
  let stacks = Span.live_stacks () in
  Mutex.lock t.mu;
  t.ticks <- t.ticks + 1;
  if stacks <> [] then begin
    t.busy <- t.busy + 1;
    List.iter
      (fun (_tid, names) ->
        let key = String.concat ";" names in
        Hashtbl.replace t.samples key
          (1 + match Hashtbl.find_opt t.samples key with Some v -> v | None -> 0))
      stacks
  end;
  Mutex.unlock t.mu

let running t = not (Atomic.get t.stopping)

(* Start the ticker domain (idempotent) and switch the span layer into
   stacks-only maintenance so there is something to sample even when full
   tracing is off. *)
let start t =
  if not (running t) then begin
    Registry.enable_stacks ();
    Atomic.set t.stopping false;
    t.started_at <- Unix.gettimeofday ();
    t.ticker <-
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get t.stopping) do
               sample_once t;
               Unix.sleepf t.interval_s
             done))
  end

let stop t =
  if running t then begin
    Atomic.set t.stopping true;
    match t.ticker with
    | Some d ->
      Domain.join d;
      t.ticker <- None
    | None -> ()
  end

let reset t =
  Mutex.lock t.mu;
  Hashtbl.reset t.samples;
  t.ticks <- 0;
  t.busy <- 0;
  t.started_at <- Unix.gettimeofday ();
  Mutex.unlock t.mu

type stats = { s_ticks : int; s_busy : int; s_distinct : int; s_elapsed : float }

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      s_ticks = t.ticks;
      s_busy = t.busy;
      s_distinct = Hashtbl.length t.samples;
      s_elapsed = (if t.started_at = 0.0 then 0.0 else Unix.gettimeofday () -. t.started_at);
    }
  in
  Mutex.unlock t.mu;
  s

(* flamegraph.pl input: `path;to;leaf <samples>` per line, sorted for
   stable output. Idle ticks (no open span anywhere) render as one
   "(idle)" line so sample totals — and therefore flame widths — reflect
   wall-clock utilization, not just busy time. *)
let folded t =
  Mutex.lock t.mu;
  let lines = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.samples [] in
  let idle = t.ticks - t.busy in
  Mutex.unlock t.mu;
  let lines = if idle > 0 then ("(idle)", idle) :: lines else lines in
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v) (List.sort compare lines))
