(* Leveled structured logging: one JSON object per line (JSONL), suitable
   for shipping to a log pipeline or grepping with jq. Sits next to the
   metric registry because the server paths (Remote, Znet) want the same
   per-connection fields — peer, digest, phase — on both their counters and
   their log lines.

   Disabled by default: with no sink configured a log call is one mutex-free
   load and a branch. Configure with [set_sink]/[set_level], or through the
   environment: ZAATAR_LOG=stderr|PATH enables JSONL output for the whole
   process, ZAATAR_LOG_LEVEL=debug|info|warn|error picks the threshold
   (default info). *)

type level = Debug | Info | Warn | Error

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type sink = [ `Off | `Channel of out_channel | `File of string ]

let mu = Mutex.create ()
let threshold = ref Info
let chan : out_channel option ref = ref None
let owns_chan = ref false (* close on replacement only if we opened it *)

(* Cheap enabled check outside the mutex: a [None] sink never logs. *)
let active = Atomic.make false

let set_level l =
  Mutex.lock mu;
  threshold := l;
  Mutex.unlock mu

let set_sink (s : sink) =
  Mutex.lock mu;
  (match !chan with
  | Some oc when !owns_chan -> ( try close_out oc with Sys_error _ -> ())
  | _ -> ());
  (match s with
  | `Off ->
    chan := None;
    owns_chan := false
  | `Channel oc ->
    chan := Some oc;
    owns_chan := false
  | `File path ->
    chan := Some (open_out_gen [ Open_append; Open_creat ] 0o644 path);
    owns_chan := true);
  Atomic.set active (!chan <> None);
  Mutex.unlock mu

let enabled l = Atomic.get active && rank l >= rank !threshold

(* Field helpers so call sites stay one line. *)
let str k v = (k, Json.Str v)
let int k v = (k, Json.Num (float_of_int v))
let float k v = (k, Json.Num v)
let bool k v = (k, Json.Bool v)

let log ?(fields = []) l msg =
  if enabled l then begin
    let line =
      Json.Obj
        ([
           ("ts", Json.Num (Unix.gettimeofday ()));
           ("level", Json.Str (level_name l));
           ("msg", Json.Str msg);
         ]
        @ fields)
    in
    Mutex.lock mu;
    (match !chan with
    | Some oc ->
      output_string oc (Json.to_string line);
      output_char oc '\n';
      flush oc
    | None -> ());
    Mutex.unlock mu
  end

let debug ?fields msg = log ?fields Debug msg
let info ?fields msg = log ?fields Info msg
let warn ?fields msg = log ?fields Warn msg
let error ?fields msg = log ?fields Error msg

let () =
  (match Sys.getenv_opt "ZAATAR_LOG_LEVEL" with
  | Some s -> ( match level_of_string s with Some l -> set_level l | None -> ())
  | None -> ());
  match Sys.getenv_opt "ZAATAR_LOG" with
  | Some "" | None -> ()
  | Some "stderr" -> set_sink (`Channel stderr)
  | Some "stdout" -> set_sink (`Channel stdout)
  | Some path -> set_sink (`File path)
