(* Output sinks: a human-readable table, a Chrome-trace-event JSON file
   (loadable in chrome://tracing or https://ui.perfetto.dev), and a
   JSON-lines dump of every metric for machine consumption. *)

let pp_table fmt () =
  let spans = Span.totals () in
  if spans <> [] then begin
    Format.fprintf fmt "spans:@.";
    Format.fprintf fmt "  %-32s %8s %12s %12s@." "name" "count" "total s" "excl s";
    List.iter
      (fun (name, (s : Span.stat)) ->
        Format.fprintf fmt "  %-32s %8d %12.4f %12.4f@." name s.Span.count s.Span.total
          s.Span.exclusive)
      spans
  end;
  let counters = List.filter (fun (_, v) -> v <> 0) (Registry.counter_values ()) in
  if counters <> [] then begin
    Format.fprintf fmt "counters:@.";
    List.iter (fun (name, v) -> Format.fprintf fmt "  %-32s %16d@." name v) counters
  end;
  let histograms = List.filter (fun (_, buckets) -> buckets <> []) (Registry.histogram_values ()) in
  if histograms <> [] then begin
    Format.fprintf fmt "histograms:@.";
    List.iter
      (fun (name, buckets) ->
        Format.fprintf fmt "  %-32s" name;
        List.iter (fun (lo, c) -> Format.fprintf fmt " [>=%d]:%d" lo c) buckets;
        Format.fprintf fmt "@.")
      histograms
  end;
  if Span.dropped_events () > 0 then
    Format.fprintf fmt "(%d span events dropped past the %s-event buffer)@." (Span.dropped_events ())
      "1M"

let chrome_trace () : Json.t =
  let evs = Span.events_snapshot () in
  let t0 = List.fold_left (fun acc (e : Span.event) -> Float.min acc e.Span.ts) infinity evs in
  let t0 = if evs = [] then 0.0 else t0 in
  let ev (e : Span.event) =
    Json.Obj
      [
        ("name", Json.Str e.Span.name);
        ("cat", Json.Str "zobs");
        ("ph", Json.Str "X");
        ("pid", Json.Num 0.0);
        ("tid", Json.Num (float_of_int e.Span.tid));
        ("ts", Json.Num ((e.Span.ts -. t0) *. 1e6));
        ("dur", Json.Num (e.Span.dur *. 1e6));
        ( "args",
          Json.Obj
            (("depth", Json.Num (float_of_int e.Span.depth))
            :: List.map (fun (k, v) -> (k, Json.Str v)) e.Span.attrs) );
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map ev evs));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("producer", Json.Str "zobs") ]);
    ]

let write_string path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let write_chrome_trace path = write_string path (Json.to_string (chrome_trace ()))

let jsonl_summary () =
  let b = Buffer.create 1024 in
  let line j =
    Buffer.add_string b (Json.to_string j);
    Buffer.add_char b '\n'
  in
  List.iter
    (fun (name, v) ->
      if v <> 0 then
        line (Json.Obj [ ("kind", Json.Str "counter"); ("name", Json.Str name); ("value", Json.Num (float_of_int v)) ]))
    (Registry.counter_values ());
  List.iter
    (fun (name, buckets) ->
      if buckets <> [] then
        line
          (Json.Obj
             [
               ("kind", Json.Str "histogram");
               ("name", Json.Str name);
               ( "buckets",
                 Json.Arr
                   (List.map
                      (fun (lo, c) -> Json.Arr [ Json.Num (float_of_int lo); Json.Num (float_of_int c) ])
                      buckets) );
             ]))
    (Registry.histogram_values ());
  List.iter
    (fun (name, (s : Span.stat)) ->
      line
        (Json.Obj
           [
             ("kind", Json.Str "span");
             ("name", Json.Str name);
             ("count", Json.Num (float_of_int s.Span.count));
             ("total_s", Json.Num s.Span.total);
             ("exclusive_s", Json.Num s.Span.exclusive);
           ]))
    (Span.totals ());
  Buffer.contents b

let write_jsonl path =
  let oc = open_out path in
  output_string oc (jsonl_summary ());
  close_out oc
