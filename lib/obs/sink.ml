(* Output sinks: a human-readable table, a Chrome-trace-event JSON file
   (loadable in chrome://tracing or https://ui.perfetto.dev), and a
   JSON-lines dump of every metric for machine consumption. *)

let pp_table fmt () =
  let spans = Span.totals () in
  if spans <> [] then begin
    Format.fprintf fmt "spans:@.";
    Format.fprintf fmt "  %-32s %8s %12s %12s@." "name" "count" "total s" "excl s";
    List.iter
      (fun (name, (s : Span.stat)) ->
        Format.fprintf fmt "  %-32s %8d %12.4f %12.4f@." name s.Span.count s.Span.total
          s.Span.exclusive)
      spans
  end;
  let counters = List.filter (fun (_, v) -> v <> 0) (Registry.counter_values ()) in
  if counters <> [] then begin
    Format.fprintf fmt "counters:@.";
    List.iter (fun (name, v) -> Format.fprintf fmt "  %-32s %16d@." name v) counters
  end;
  let histograms = List.filter (fun (_, buckets) -> buckets <> []) (Registry.histogram_values ()) in
  if histograms <> [] then begin
    Format.fprintf fmt "histograms:@.";
    List.iter
      (fun (name, buckets) ->
        Format.fprintf fmt "  %-32s" name;
        List.iter (fun (lo, c) -> Format.fprintf fmt " [>=%d]:%d" lo c) buckets;
        let p tag v =
          match Histogram.percentile_of_snapshot buckets v with
          | Some x -> Format.fprintf fmt " %s:%d" tag x
          | None -> ()
        in
        p "p50" 50.0;
        p "p95" 95.0;
        p "p99" 99.0;
        Format.fprintf fmt "@.")
      histograms
  end;
  if Span.dropped_events () > 0 then
    Format.fprintf fmt "(%d span events dropped past the %s-event buffer)@." (Span.dropped_events ())
      "1M"

(* Chrome-trace export. [pid]/[process_name] distinguish processes when
   verifier- and prover-side traces are merged into one Perfetto view;
   otherData records the distributed trace id and the absolute start time
   [t0_s] so [merge_chrome_trace_files] can rebase the files onto a common
   timeline (each file's event timestamps are relative to its own t0).
   [trace_id] overrides the process-global Registry id — the farm serves
   many concurrent sessions, each with the trace id its own Hello carried,
   so per-session sidecars cannot share one global. *)
let chrome_trace ?(pid = 0) ?(process_name = "zaatar") ?trace_id ?events () : Json.t =
  let evs = match events with Some evs -> evs | None -> Span.events_snapshot () in
  let t0 = List.fold_left (fun acc (e : Span.event) -> Float.min acc e.Span.ts) infinity evs in
  let t0 = if evs = [] then 0.0 else t0 in
  let fpid = float_of_int pid in
  let ev (e : Span.event) =
    Json.Obj
      [
        ("name", Json.Str e.Span.name);
        ("cat", Json.Str "zobs");
        ("ph", Json.Str "X");
        ("pid", Json.Num fpid);
        ("tid", Json.Num (float_of_int e.Span.tid));
        ("ts", Json.Num ((e.Span.ts -. t0) *. 1e6));
        ("dur", Json.Num (e.Span.dur *. 1e6));
        ( "args",
          Json.Obj
            (("depth", Json.Num (float_of_int e.Span.depth))
            :: List.map (fun (k, v) -> (k, Json.Str v)) e.Span.attrs) );
      ]
  in
  let name_meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num fpid);
        ("tid", Json.Num 0.0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (name_meta :: List.map ev evs));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.Str "zobs");
            ("process", Json.Str process_name);
            ( "trace_id",
              Json.Str (match trace_id with Some id -> id | None -> Registry.trace_id ()) );
            ("t0_s", Json.Num t0);
          ] );
    ]

let write_string path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let write_chrome_trace ?pid ?process_name ?trace_id ?events path =
  write_string path (Json.to_string (chrome_trace ?pid ?process_name ?trace_id ?events ()))

(* Folded-stacks export, the flamegraph.pl / inferno input format: one line
   per distinct span stack, `root;child;leaf <self-time-us>`. Stacks are
   reconstructed per domain by replaying the completed events in start-time
   order and truncating to each event's recorded nesting depth; the weight
   is the span's exclusive (self) time, so a flame graph built from this
   attributes every microsecond exactly once. *)
let folded_stacks ?events () =
  let evs = match events with Some evs -> evs | None -> Span.events_snapshot () in
  let by_tid : (int, Span.event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Span.event) ->
      match Hashtbl.find_opt by_tid e.Span.tid with
      | Some l -> l := e :: !l
      | None -> Hashtbl.add by_tid e.Span.tid (ref [ e ]))
    evs;
  let agg : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _tid l ->
      let evs =
        List.sort
          (fun (a : Span.event) (b : Span.event) ->
            match compare a.Span.ts b.Span.ts with
            | 0 -> compare a.Span.depth b.Span.depth
            | c -> c)
          !l
      in
      (* [stack] holds the open path, innermost first. An event at depth d
         replaces everything at depth >= d. *)
      let stack = ref [] in
      List.iter
        (fun (e : Span.event) ->
          let rec trunc s = if List.length s > e.Span.depth then trunc (List.tl s) else s in
          stack := e.Span.name :: trunc !stack;
          let key = String.concat ";" (List.rev !stack) in
          let us = int_of_float ((e.Span.excl *. 1e6) +. 0.5) in
          if us > 0 then
            Hashtbl.replace agg key (us + match Hashtbl.find_opt agg key with Some v -> v | None -> 0))
        evs)
    by_tid;
  let lines = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg []) in
  String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v) lines)

let write_folded ?events path =
  let oc = open_out path in
  output_string oc (folded_stacks ?events ());
  close_out oc

(* Merge per-process Chrome traces (verifier + prover sidecar) into one
   file: file i's events land under pid i, rebased from that file's t0_s
   onto the earliest t0 across all inputs, so the merged Perfetto view
   shows compute vs. network wait side by side on one timeline. All inputs
   carrying a non-empty trace id must agree on it. *)
let merge_chrome_trace_files ~out paths =
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (path, Json.parse s)
  in
  let files = List.map read paths in
  let t0_of j =
    match Option.bind (Json.member "otherData" j) (Json.member "t0_s") with
    | Some (Json.Num t) -> t
    | _ -> 0.0
  in
  let id_of j =
    match Option.bind (Json.member "otherData" j) (Json.member "trace_id") with
    | Some (Json.Str s) -> s
    | _ -> ""
  in
  let ids = List.filter (fun id -> id <> "") (List.map (fun (_, j) -> id_of j) files) in
  let trace_id =
    match ids with
    | [] -> ""
    | id :: rest ->
      if List.for_all (String.equal id) rest then id
      else invalid_arg "merge_chrome_trace_files: trace ids differ across inputs"
  in
  let base_t0 = List.fold_left (fun acc (_, j) -> Float.min acc (t0_of j)) infinity files in
  let base_t0 = if files = [] then 0.0 else base_t0 in
  let events =
    List.concat
      (List.mapi
         (fun i (path, j) ->
           let shift = (t0_of j -. base_t0) *. 1e6 in
           let evs =
             match Option.bind (Json.member "traceEvents" j) Json.to_arr with
             | Some evs -> evs
             | None -> invalid_arg (path ^ ": no traceEvents array")
           in
           List.map
             (fun ev ->
               match ev with
               | Json.Obj kvs ->
                 Json.Obj
                   (List.map
                      (fun (k, v) ->
                        match (k, v) with
                        | "pid", _ -> (k, Json.Num (float_of_int i))
                        | "ts", Json.Num t -> (k, Json.Num (t +. shift))
                        | kv -> kv)
                      kvs)
               | ev -> ev)
             evs)
         files)
  in
  write_string out
    (Json.to_string
       (Json.Obj
          [
            ("traceEvents", Json.Arr events);
            ("displayTimeUnit", Json.Str "ms");
            ( "otherData",
              Json.Obj
                [
                  ("producer", Json.Str "zobs-merge");
                  ("trace_id", Json.Str trace_id);
                  ("merged_from", Json.Arr (List.map (fun (p, _) -> Json.Str p) files));
                ] );
          ]))

let jsonl_summary () =
  let b = Buffer.create 1024 in
  let line j =
    Buffer.add_string b (Json.to_string j);
    Buffer.add_char b '\n'
  in
  List.iter
    (fun (name, v) ->
      if v <> 0 then
        line (Json.Obj [ ("kind", Json.Str "counter"); ("name", Json.Str name); ("value", Json.Num (float_of_int v)) ]))
    (Registry.counter_values ());
  List.iter
    (fun (name, buckets) ->
      if buckets <> [] then
        let pct tag p =
          match Histogram.percentile_of_snapshot buckets p with
          | Some v -> [ (tag, Json.Num (float_of_int v)) ]
          | None -> []
        in
        line
          (Json.Obj
             ([
                ("kind", Json.Str "histogram");
                ("name", Json.Str name);
                ( "buckets",
                  Json.Arr
                    (List.map
                       (fun (lo, c) -> Json.Arr [ Json.Num (float_of_int lo); Json.Num (float_of_int c) ])
                       buckets) );
              ]
             @ pct "p50" 50.0 @ pct "p95" 95.0 @ pct "p99" 99.0)))
    (Registry.histogram_values ());
  List.iter
    (fun (name, (s : Span.stat)) ->
      line
        (Json.Obj
           [
             ("kind", Json.Str "span");
             ("name", Json.Str name);
             ("count", Json.Num (float_of_int s.Span.count));
             ("total_s", Json.Num s.Span.total);
             ("exclusive_s", Json.Num s.Span.exclusive);
           ]))
    (Span.totals ());
  Buffer.contents b

let write_jsonl path =
  let oc = open_out path in
  output_string oc (jsonl_summary ());
  close_out oc
