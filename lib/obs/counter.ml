(* Named monotonic counters for semantic cost events (field multiplications,
   group exponentiations, PRG bytes, ...). Each domain increments a private
   cell reached through domain-local storage, so the per-op hot path is an
   unsynchronized load/store with no cache-line contention across Pool
   workers; [value] merges the cells deterministically, summing shards in
   ascending domain-id order on top of the flushed base. A Pool worker folds
   its cells into the base via [Registry.flush_domain] before its domain
   exits, so worker-side tallies survive the domain and the shard list stays
   bounded. The [Registry.on] check keeps the disabled path to one atomic
   load, as before. *)

type shard = { cell : int ref; mutable attached : bool }

type t = {
  name : string;
  base : int Atomic.t; (* tallies folded in from flushed (exited) domains *)
  mu : Mutex.t;
  shards : (int * shard) list ref; (* live (domain id, cell) pairs *)
  key : shard Domain.DLS.key;
}

let make name =
  let mu = Mutex.create () in
  let shards = ref [] in
  let base = Atomic.make 0 in
  let key = Domain.DLS.new_key (fun () -> { cell = ref 0; attached = false }) in
  let merged () =
    Mutex.lock mu;
    let l = List.sort (fun (a, _) (b, _) -> compare a b) !shards in
    let v = List.fold_left (fun acc (_, s) -> acc + !(s.cell)) (Atomic.get base) l in
    Mutex.unlock mu;
    v
  in
  let reset () =
    Atomic.set base 0;
    Mutex.lock mu;
    List.iter (fun (_, s) -> s.cell := 0) !shards;
    Mutex.unlock mu
  in
  (* Fold the calling domain's cell into the base and detach it: the next
     increment on this domain (if any) re-attaches the same DLS cell. *)
  let flush () =
    let s = Domain.DLS.get key in
    if s.attached then begin
      Mutex.lock mu;
      let id = (Domain.self () :> int) in
      Atomic.set base (Atomic.get base + !(s.cell));
      s.cell := 0;
      s.attached <- false;
      shards := List.filter (fun (i, _) -> i <> id) !shards;
      Mutex.unlock mu
    end
  in
  Registry.register_counter name merged reset;
  Registry.register_flusher flush;
  { name; base; mu; shards; key }

let attach c (s : shard) =
  Mutex.lock c.mu;
  if not s.attached then begin
    c.shards := ((Domain.self () :> int), s) :: !(c.shards);
    s.attached <- true
  end;
  Mutex.unlock c.mu

let incr c =
  if Registry.on () then begin
    let s = Domain.DLS.get c.key in
    if not s.attached then attach c s;
    s.cell := !(s.cell) + 1
  end

let add c n =
  if Registry.on () && n <> 0 then begin
    let s = Domain.DLS.get c.key in
    if not s.attached then attach c s;
    s.cell := !(s.cell) + n
  end

let value c =
  Mutex.lock c.mu;
  let l = List.sort (fun (a, _) (b, _) -> compare a b) !(c.shards) in
  let v = List.fold_left (fun acc (_, s) -> acc + !(s.cell)) (Atomic.get c.base) l in
  Mutex.unlock c.mu;
  v

let name c = c.name
