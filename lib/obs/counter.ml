(* Named monotonic counters for semantic cost events (field multiplications,
   group exponentiations, PRG bytes, ...). Increments go through
   [Atomic.fetch_and_add], so accumulation is exact under Dompool workers;
   the [Registry.on] check keeps the disabled path to one atomic load. *)

type t = { name : string; v : int Atomic.t }

let make name =
  let c = { name; v = Atomic.make 0 } in
  Registry.register_counter name (fun () -> Atomic.get c.v) (fun () -> Atomic.set c.v 0);
  c

let incr c = if Registry.on () then ignore (Atomic.fetch_and_add c.v 1)
let add c n = if Registry.on () && n <> 0 then ignore (Atomic.fetch_and_add c.v n)
let value c = Atomic.get c.v
let name c = c.name
