(* Zledger: self-auditing cost accounting. The third pillar of Zobs next to
   spans and counters — an op-level ledger of the paper's Figure 3
   primitives, attributed per protocol phase, together with GC/allocation
   deltas.

   The ledger does not maintain counters of its own: the op vector is a
   *view* over the named Zobs counters the substrate already increments on
   its hot paths (fp.mul, elgamal.encrypt, ...), so an op costs exactly one
   counter bump no matter how many consumers read it. The mapping to the
   paper's taxonomy:

     e       elgamal.encrypt        ElGamal encryptions (exponent encoding)
     d       elgamal.decrypt        decryptions, plus commit.consistency_checks:
             + consistency_checks   the argument never calls Dec directly — the
                                    check IS the decryption, rearranged into one
                                    Shamir double exponentiation (lib/commit)
     h       elgamal.hom_op         homomorphic accumulate steps (adds, scales
                                    and Pippenger terms in hom_dot)
     f       fp.mul                 field multiplications (PCP field only; the
                                    group modulus counts under fp.mul.group)
     f_lazy  fp.mul_lazy            multiplications without the final reduction
     f_div   fp.inv                 field inversions (div = inv + mul)
     c       prg.field              pseudorandom field elements (ChaCha +
                                    rejection)
     butterfly ntt.butterfly        NTT butterflies (fused mul+add+sub on the
                                    packed hot path; the mul is also counted
                                    under f)

   [with_phase] snapshots the merged counter view and [Gc.quick_stat] around
   a unit of work and accumulates the deltas into a global per-phase table.
   Phases are sequential on the calling domain and every [Pool] fan-out
   joins inside its phase, so the merged op deltas are exact under any
   [--domains] count; worker-domain GC (minor words are domain-local in
   OCaml 5) is folded in via [worker_scope], which Pool workers run in. *)

type ops = { e : int; d : int; h : int; f : int; f_lazy : int; f_div : int; c : int; butterfly : int }

let zero_ops = { e = 0; d = 0; h = 0; f = 0; f_lazy = 0; f_div = 0; c = 0; butterfly = 0 }

let add_ops a b =
  {
    e = a.e + b.e;
    d = a.d + b.d;
    h = a.h + b.h;
    f = a.f + b.f;
    f_lazy = a.f_lazy + b.f_lazy;
    f_div = a.f_div + b.f_div;
    c = a.c + b.c;
    butterfly = a.butterfly + b.butterfly;
  }

let sub_ops a b =
  {
    e = a.e - b.e;
    d = a.d - b.d;
    h = a.h - b.h;
    f = a.f - b.f;
    f_lazy = a.f_lazy - b.f_lazy;
    f_div = a.f_div - b.f_div;
    c = a.c - b.c;
    butterfly = a.butterfly - b.butterfly;
  }

(* (paper row, counter value) pairs, in Figure 3 order. *)
let ops_to_list o =
  [
    ("e", o.e); ("d", o.d); ("h", o.h); ("f", o.f); ("f_lazy", o.f_lazy); ("f_div", o.f_div);
    ("c", o.c); ("butterfly", o.butterfly);
  ]

let snapshot () =
  let v = Registry.counter_value in
  {
    e = v "elgamal.encrypt";
    d = v "elgamal.decrypt" + v "commit.consistency_checks";
    h = v "elgamal.hom_op";
    f = v "fp.mul";
    f_lazy = v "fp.mul_lazy";
    f_div = v "fp.inv";
    c = v "prg.field";
    butterfly = v "ntt.butterfly";
  }

(* ---- per-phase accounting ---- *)

type phase = { ops : ops; gc : Span.gc_stat; seconds : float; calls : int }

let mu = Mutex.create ()
let table : (string, phase) Hashtbl.t = Hashtbl.create 16

(* GC deltas reported by worker domains (Pool): accumulated here and folded
   into whichever phase is open on the spawning domain when the workers
   join — fan-outs always join inside their phase. *)
let worker_gc = ref Span.gc_zero

let note_worker_gc g =
  Mutex.lock mu;
  worker_gc := Span.gc_add !worker_gc g;
  Mutex.unlock mu

let read_worker_gc () =
  Mutex.lock mu;
  let g = !worker_gc in
  Mutex.unlock mu;
  g

(* Wrap a Pool worker's whole run: account the worker domain's GC to the
   enclosing phase and fold its counter shards into the shared base before
   the domain exits (Registry.flush_domain), so worker-side tallies are
   never dropped and the shard lists stay bounded. *)
let worker_scope f =
  if not (Registry.on ()) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    let finish () =
      note_worker_gc (Span.gc_delta g0 (Gc.quick_stat ()));
      Registry.flush_domain ()
    in
    Fun.protect ~finally:finish f
  end

let accumulate name ~ops ~gc ~seconds =
  Mutex.lock mu;
  let prev =
    match Hashtbl.find_opt table name with
    | Some p -> p
    | None -> { ops = zero_ops; gc = Span.gc_zero; seconds = 0.0; calls = 0 }
  in
  Hashtbl.replace table name
    {
      ops = add_ops prev.ops ops;
      gc = Span.gc_add prev.gc gc;
      seconds = prev.seconds +. seconds;
      calls = prev.calls + 1;
    };
  Mutex.unlock mu

let with_phase name f =
  if not (Registry.on ()) then f ()
  else begin
    let ops0 = snapshot () in
    let gc0 = Gc.quick_stat () in
    let wgc0 = read_worker_gc () in
    let t0 = Unix.gettimeofday () in
    let finish () =
      let seconds = Unix.gettimeofday () -. t0 in
      let gc = Span.gc_add (Span.gc_delta gc0 (Gc.quick_stat ())) (Span.gc_sub (read_worker_gc ()) wgc0) in
      accumulate name ~ops:(sub_ops (snapshot ()) ops0) ~gc ~seconds
    in
    Fun.protect ~finally:finish f
  end

let phases () =
  Mutex.lock mu;
  let l = Hashtbl.fold (fun name p acc -> (name, p) :: acc) table [] in
  Mutex.unlock mu;
  List.sort compare l

let phase name =
  Mutex.lock mu;
  let r = Hashtbl.find_opt table name in
  Mutex.unlock mu;
  r

(* Process-wide op totals since the last reset (phase-independent). *)
let total = snapshot

let reset () =
  Mutex.lock mu;
  Hashtbl.reset table;
  worker_gc := Span.gc_zero;
  Mutex.unlock mu

(* ---- rendering ---- *)

let pp_ops fmt o =
  Format.fprintf fmt "e=%d d=%d h=%d f=%d f_lazy=%d f_div=%d c=%d butterfly=%d" o.e o.d o.h o.f
    o.f_lazy o.f_div o.c o.butterfly

let pp_table fmt () =
  let ph = phases () in
  if ph <> [] then begin
    Format.fprintf fmt "ledger (per phase):@.";
    Format.fprintf fmt "  %-24s %10s %10s %10s %12s %12s %12s %12s %12s %12s@." "phase" "seconds"
      "e|d" "h" "f" "f_lazy" "f_div" "c" "butterfly" "minor words";
    List.iter
      (fun (name, p) ->
        Format.fprintf fmt "  %-24s %10.4f %10s %10d %12d %12d %12d %12d %12d %12.0f@." name
          p.seconds
          (Printf.sprintf "%d|%d" p.ops.e p.ops.d)
          p.ops.h p.ops.f p.ops.f_lazy p.ops.f_div p.ops.c p.ops.butterfly
          p.gc.Span.minor_words)
      ph
  end

let json_of_gc (g : Span.gc_stat) =
  Json.Obj
    [
      ("minor_words", Json.Num g.Span.minor_words);
      ("major_words", Json.Num g.Span.major_words);
      ("promoted_words", Json.Num g.Span.promoted_words);
      ("minor_collections", Json.Num (float_of_int g.Span.minor_collections));
      ("major_collections", Json.Num (float_of_int g.Span.major_collections));
      ("compactions", Json.Num (float_of_int g.Span.compactions));
    ]

let json_of_ops o =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (ops_to_list o))

let phases_json () =
  Json.Obj
    (List.map
       (fun (name, p) ->
         ( name,
           Json.Obj
             [
               ("seconds", Json.Num p.seconds);
               ("calls", Json.Num (float_of_int p.calls));
               ("ops", json_of_ops p.ops);
               ("gc", json_of_gc p.gc);
             ] ))
       (phases ()))
