(* Hierarchical timing spans. Each domain keeps its own open-span stack in
   domain-local storage, so worker domains trace independently; completed
   spans land in one mutex-protected event buffer together with a per-name
   aggregate (total / exclusive wall time and call count). Exclusive time is
   a span's duration minus the durations of its direct children — the
   quantity the Figure 5 phase table needs when phases nest. *)

type event = {
  name : string;
  attrs : (string * string) list;
  ts : float; (* absolute start, seconds *)
  dur : float; (* seconds *)
  excl : float; (* dur minus direct children: the span's self time *)
  tid : int; (* domain id *)
  depth : int; (* nesting depth at open time, per domain *)
}

type stat = { total : float; exclusive : float; count : int }

(* Per-name GC deltas, accumulated from [Gc.quick_stat] taken at span open
   and close. Word counts are floats because that is what Gc reports; minor
   words are domain-local in OCaml 5, so a span only sees the allocation of
   the domain it ran on (Pool workers account theirs via Ledger). *)
type gc_stat = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

let gc_zero =
  {
    minor_words = 0.0;
    major_words = 0.0;
    promoted_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
  }

let gc_add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    major_words = a.major_words +. b.major_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    compactions = a.compactions + b.compactions;
  }

let gc_sub a b =
  {
    minor_words = a.minor_words -. b.minor_words;
    major_words = a.major_words -. b.major_words;
    promoted_words = a.promoted_words -. b.promoted_words;
    minor_collections = a.minor_collections - b.minor_collections;
    major_collections = a.major_collections - b.major_collections;
    compactions = a.compactions - b.compactions;
  }

let gc_delta (g0 : Gc.stat) (g1 : Gc.stat) =
  {
    minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    major_words = g1.Gc.major_words -. g0.Gc.major_words;
    promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    compactions = g1.Gc.compactions - g0.Gc.compactions;
  }

type frame = {
  fname : string;
  fattrs : (string * string) list;
  start : float;
  gc0 : Gc.stat; (* GC state at open, for the per-name gc aggregates *)
  mutable child : float; (* accumulated duration of direct children *)
}

let mu = Mutex.create ()
let events : event list ref = ref []
let n_events = ref 0
let dropped = ref 0

(* Backstop against unbounded growth if someone puts a span on a per-field-op
   path: beyond this the aggregates keep accumulating but raw events drop. *)
let max_events = 1_000_000

let aggs : (string, float * float * int) Hashtbl.t = Hashtbl.create 32
let gc_aggs : (string, gc_stat) Hashtbl.t = Hashtbl.create 32

(* Live-stack registry: every domain that ever opens a span registers its
   DLS stack ref here (once, from the DLS initializer), so the sampling
   profiler's ticker domain can walk all open-span stacks without touching
   the recording path. Reading another domain's ref is a benign race in
   the OCaml 5 memory model — a single-word read observes some previously
   stored list spine, and spines are immutable — so the sampler sees a
   recent consistent stack with zero synchronization cost on the mutator.
   Only the table itself is mutex-protected. *)
let live_mu = Mutex.create ()
let live : (int, frame list ref) Hashtbl.t = Hashtbl.create 8

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r = ref [] in
      let tid = (Domain.self () :> int) in
      Mutex.lock live_mu;
      Hashtbl.replace live tid r;
      Mutex.unlock live_mu;
      r)

(* One sample of every domain's open-span path, outermost first; domains
   with no open span are omitted. *)
let live_stacks () =
  Mutex.lock live_mu;
  let l = Hashtbl.fold (fun tid r acc -> (tid, !r) :: acc) live [] in
  Mutex.unlock live_mu;
  List.filter_map
    (fun (tid, frames) ->
      match frames with
      | [] -> None
      | _ -> Some (tid, List.rev_map (fun f -> f.fname) frames))
    l

let now () = Unix.gettimeofday ()

let record ~name ~attrs ~start ~dur ~excl ~depth ~gc =
  let tid = (Domain.self () :> int) in
  Mutex.lock mu;
  if !n_events < max_events then begin
    events := { name; attrs; ts = start; dur; excl; tid; depth } :: !events;
    incr n_events
  end
  else incr dropped;
  let t, e, c = match Hashtbl.find_opt aggs name with Some s -> s | None -> (0.0, 0.0, 0) in
  Hashtbl.replace aggs name (t +. dur, e +. excl, c + 1);
  let g = match Hashtbl.find_opt gc_aggs name with Some g -> g | None -> gc_zero in
  Hashtbl.replace gc_aggs name (gc_add g gc);
  Mutex.unlock mu

(* Shared dummy for stacks-only frames: nothing reads their gc0/start, so
   one quick_stat taken at module init serves every frame. *)
let gc_dummy = Gc.quick_stat ()

(* Stacks-only span: push/pop the frame so [live_stacks] sees the path,
   skip timing, GC snapshots and the mutex-protected record. *)
let with_stack_only ~name ~attrs f =
  let stack = Domain.DLS.get stack_key in
  let fr = { fname = name; fattrs = attrs; start = 0.0; gc0 = gc_dummy; child = 0.0 } in
  stack := fr :: !stack;
  Fun.protect
    ~finally:(fun () ->
      let rec pop = function
        | top :: rest when top == fr -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      stack := pop !stack)
    f

let with_ ?(attrs = []) ~name f =
  if not (Registry.on ()) then
    if Registry.stacks_on () then with_stack_only ~name ~attrs f else f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let fr = { fname = name; fattrs = attrs; start = now (); gc0 = Gc.quick_stat (); child = 0.0 } in
    let depth = List.length !stack in
    stack := fr :: !stack;
    let finish () =
      let dur = now () -. fr.start in
      let gc = gc_delta fr.gc0 (Gc.quick_stat ()) in
      (* Pop down to (and including) our frame; intermediate frames can only
         appear if an exception skipped a finaliser, which Fun.protect
         prevents — but recover rather than corrupt the stack. *)
      let rec pop = function
        | top :: rest when top == fr -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      stack := pop !stack;
      (match !stack with parent :: _ -> parent.child <- parent.child +. dur | [] -> ());
      record ~name ~attrs:fr.fattrs ~start:fr.start ~dur ~excl:(Float.max 0.0 (dur -. fr.child))
        ~depth ~gc
    in
    Fun.protect ~finally:finish f
  end

let events_snapshot () =
  Mutex.lock mu;
  let l = List.rev !events in
  Mutex.unlock mu;
  l

(* Number of events recorded so far: a mark taken before a unit of work
   (one served connection) lets [events_since] slice out just that unit's
   spans for a per-connection sidecar trace. *)
let event_count () =
  Mutex.lock mu;
  let n = !n_events in
  Mutex.unlock mu;
  n

let events_since mark =
  let l = events_snapshot () in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  drop mark l

let totals () =
  Mutex.lock mu;
  let l =
    Hashtbl.fold (fun name (total, exclusive, count) acc -> (name, { total; exclusive; count }) :: acc) aggs []
  in
  Mutex.unlock mu;
  List.sort compare l

let stats name =
  Mutex.lock mu;
  let r = Hashtbl.find_opt aggs name in
  Mutex.unlock mu;
  Option.map (fun (total, exclusive, count) -> { total; exclusive; count }) r

let gc_totals () =
  Mutex.lock mu;
  let l = Hashtbl.fold (fun name g acc -> (name, g) :: acc) gc_aggs [] in
  Mutex.unlock mu;
  List.sort compare l

let gc_stats name =
  Mutex.lock mu;
  let r = Hashtbl.find_opt gc_aggs name in
  Mutex.unlock mu;
  r

let dropped_events () = !dropped

let reset () =
  Mutex.lock mu;
  events := [];
  n_events := 0;
  dropped := 0;
  Hashtbl.reset aggs;
  Hashtbl.reset gc_aggs;
  Mutex.unlock mu
