(* Zscope flight recorder (DESIGN.md §15): a bounded per-session event
   ring. The farm attaches one recorder to every Prover_session and feeds
   it lifecycle marks, frame read/write completions, state-machine phase
   timings, setup-cache traffic, ledger op deltas and timeout/shed events.
   The ring is tiny (hundreds of fixed-size entries), always on, and never
   allocates past its capacity — when a session goes wrong the last [cap]
   things it did are already in memory, ready to dump as a Chrome-trace
   sidecar (Perfetto/trace-merge compatible) plus a JSONL forensic bundle.

   Concurrency: a recorder is written either from the farm's event loop or
   from the Pool worker currently computing that session's frames — never
   both at once (Pool.map is a synchronous barrier), so no lock is taken
   on the record path. Readers (dumps) run on the loop after the session
   closed. *)

type kind =
  | Mark of string  (* lifecycle: "accepted", "finished", ... *)
  | Phase of string  (* one state-machine step, named by its wire phase *)
  | Read  (* a complete frame drained off the socket *)
  | Write  (* a framed reply fully flushed to the socket *)
  | Cache_hit
  | Cache_miss
  | Shed
  | Timeout
  | Ledger_delta of (string * int) list  (* Figure-3 op deltas, nonzero rows *)

type entry = {
  e_ts : float;  (* absolute seconds at record time *)
  e_dur : float;  (* seconds; 0 for instantaneous events *)
  e_kind : kind;
  e_detail : string;  (* phase name, digest, error cause, ... *)
  e_n : int;  (* byte/count payload; 0 when meaningless *)
}

type t = {
  cap : int;
  ring : entry array;  (* slot i holds entry number i mod cap *)
  mutable n : int;  (* entries ever recorded *)
}

let default_cap = 256

let dummy = { e_ts = 0.0; e_dur = 0.0; e_kind = Mark ""; e_detail = ""; e_n = 0 }

let create ?(cap = default_cap) () = { cap = max 1 cap; ring = Array.make (max 1 cap) dummy; n = 0 }

let record t ?(dur = 0.0) ?(detail = "") ?(n = 0) kind =
  t.ring.(t.n mod t.cap) <- { e_ts = Unix.gettimeofday (); e_dur = dur; e_kind = kind; e_detail = detail; e_n = n };
  t.n <- t.n + 1

let count t = t.n
let dropped t = max 0 (t.n - t.cap)

(* Oldest-first surviving entries. *)
let entries t =
  let kept = min t.n t.cap in
  List.init kept (fun i -> t.ring.((t.n - kept + i) mod t.cap))

let kind_label = function
  | Mark _ -> "mark"
  | Phase _ -> "phase"
  | Read -> "frame.read"
  | Write -> "frame.write"
  | Cache_hit -> "cache.hit"
  | Cache_miss -> "cache.miss"
  | Shed -> "shed"
  | Timeout -> "timeout"
  | Ledger_delta _ -> "ledger"

(* The event name shown on the trace timeline: phase steps get their wire
   phase ("phase.commit"), marks their label, everything else the kind. *)
let event_name e =
  match e.e_kind with
  | Mark m -> if m = "" then "mark" else "mark." ^ m
  | Phase p -> "phase." ^ p
  | k -> kind_label k

let attrs_of e =
  (if e.e_detail = "" then [] else [ ("detail", e.e_detail) ])
  @ (if e.e_n = 0 then [] else [ ("bytes", string_of_int e.e_n) ])
  @
  match e.e_kind with
  | Ledger_delta ops ->
    List.map (fun (op, v) -> ("op." ^ op, string_of_int v)) ops
  | _ -> []

(* Convert the ring to Span.events so the existing Chrome-trace writer
   renders the sidecar: one depth-0 "session" envelope spanning the whole
   recording, each entry a depth-1 child (duration events keep their
   measured dur; instants render as zero-width slices). *)
let to_span_events ?(tid = 0) t =
  match entries t with
  | [] -> []
  | es ->
    let t0 = (List.hd es).e_ts in
    let last = List.fold_left (fun _ e -> e) (List.hd es) es in
    let t1 = Float.max (last.e_ts +. last.e_dur) t0 in
    let session =
      {
        Span.name = "session";
        attrs = [ ("events", string_of_int (count t)); ("dropped", string_of_int (dropped t)) ];
        ts = t0;
        dur = t1 -. t0;
        excl = 0.0;
        tid;
        depth = 0;
      }
    in
    session
    :: List.map
         (fun e ->
           {
             Span.name = event_name e;
             attrs = attrs_of e;
             (* A phase step's duration is compute time that ended at
                record time; start it where the work started. *)
             ts = e.e_ts -. e.e_dur;
             dur = e.e_dur;
             excl = e.e_dur;
             tid;
             depth = 1;
           })
         es

(* JSONL forensic bundle: one header line (caller-supplied metadata plus
   ring totals), then one line per surviving entry, timestamps relative to
   the first entry. Every line is a standalone JSON object so `jq` and the
   CI assertions can stream it. *)
let jsonl ~header t =
  let b = Buffer.create 1024 in
  let line j =
    Buffer.add_string b (Json.to_string j);
    Buffer.add_char b '\n'
  in
  let es = entries t in
  let t0 = match es with [] -> 0.0 | e :: _ -> e.e_ts in
  line
    (Json.Obj
       (("kind", Json.Str "session")
       :: header
       @ [
           ("events", Json.Num (float_of_int (count t)));
           ("dropped", Json.Num (float_of_int (dropped t)));
           ("t0_s", Json.Num t0);
         ]));
  List.iter
    (fun e ->
      let extra =
        match e.e_kind with
        | Ledger_delta ops ->
          [ ("ops", Json.Obj (List.map (fun (op, v) -> (op, Json.Num (float_of_int v))) ops)) ]
        | _ -> []
      in
      line
        (Json.Obj
           ([
              ("kind", Json.Str "event");
              ("type", Json.Str (event_name e));
              ("ts_ms", Json.Num ((e.e_ts -. t0) *. 1000.0));
            ]
           @ (if e.e_dur > 0.0 then [ ("dur_ms", Json.Num (e.e_dur *. 1000.0)) ] else [])
           @ (if e.e_detail = "" then [] else [ ("detail", Json.Str e.e_detail) ])
           @ (if e.e_n = 0 then [] else [ ("bytes", Json.Num (float_of_int e.e_n)) ])
           @ extra)))
    es;
  Buffer.contents b

let write_jsonl ~header t path =
  let oc = open_out path in
  output_string oc (jsonl ~header t);
  close_out oc

(* The Perfetto-mergeable sidecar: same file shape as the sequential
   serve's per-connection traces, stamped with the session's own trace id
   (not the process-global one, which is meaningless under concurrency). *)
let write_sidecar ?(pid = 1) ?(process_name = "prover") ~trace_id t path =
  Sink.write_chrome_trace ~pid ~process_name ~trace_id ~events:(to_span_events t) path
