(* Zobs: hierarchical tracing, cost counters and machine-readable telemetry
   for the prover/verifier stack. See DESIGN.md §7 for the span taxonomy and
   counter names.

   Everything is gated by one atomic flag ([enable]/[disable]): with the
   flag off, instrumented hot paths cost a single atomic load. Setting the
   environment variable ZAATAR_TRACE=out.json enables tracing for the whole
   process and writes a Chrome-trace-event file at exit (load it in
   chrome://tracing or https://ui.perfetto.dev). *)

module Json = Json
module Registry = Registry
module Counter = Counter
module Histogram = Histogram
module Span = Span
module Sink = Sink

let enable = Registry.enable
let disable = Registry.disable
let enabled = Registry.on

(* Zero every counter/histogram and drop all recorded spans. *)
let reset () =
  Registry.reset ();
  Span.reset ()

let report fmt = Sink.pp_table fmt
let write_chrome_trace = Sink.write_chrome_trace
let write_jsonl = Sink.write_jsonl

let () =
  match Sys.getenv_opt "ZAATAR_TRACE" with
  | Some path when path <> "" ->
    enable ();
    at_exit (fun () -> Sink.write_chrome_trace path)
  | _ -> ()
