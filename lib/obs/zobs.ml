(* Zobs: hierarchical tracing, cost counters and machine-readable telemetry
   for the prover/verifier stack. See DESIGN.md §7 for the span taxonomy and
   counter names.

   Everything is gated by one atomic flag ([enable]/[disable]): with the
   flag off, instrumented hot paths cost a single atomic load. Setting the
   environment variable ZAATAR_TRACE=out.json enables tracing for the whole
   process and writes a Chrome-trace-event file at exit (load it in
   chrome://tracing or https://ui.perfetto.dev). *)

module Json = Json
module Registry = Registry
module Counter = Counter
module Histogram = Histogram
module Span = Span
module Ledger = Ledger
module Sink = Sink
module Flight = Flight
module Profiler = Profiler
module Log = Log
module Prometheus = Prometheus

let enable = Registry.enable
let disable = Registry.disable
let enabled = Registry.on

(* Zero every counter/histogram, drop all recorded spans and clear the
   per-phase ledger. *)
let reset () =
  Registry.reset ();
  Span.reset ();
  Ledger.reset ();
  Registry.set_trace_id ""

let report fmt () =
  Sink.pp_table fmt ();
  Ledger.pp_table fmt ()

let write_chrome_trace = Sink.write_chrome_trace
let write_jsonl = Sink.write_jsonl
let write_folded = Sink.write_folded

(* {2 Distributed trace ids}

   The verifier mints an id, carries it to the prover in the wire Hello,
   and both sides stamp their Chrome-trace exports with it; the merge step
   then produces one Perfetto view spanning both processes. *)

let set_trace_id = Registry.set_trace_id
let trace_id = Registry.trace_id

(* 16 hex chars from an FNV-1a 64 hash of wall clock + pid: unique enough
   to correlate one verifier run with its prover sidecar, and deliberately
   not drawn from any protocol PRG (transcripts must not shift). *)
let mint_trace_id () =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    for i = 0 to 7 do
      h := Int64.mul (Int64.logxor !h (Int64.of_int ((v lsr (8 * i)) land 0xff))) fnv_prime
    done
  in
  mix (int_of_float (Unix.gettimeofday () *. 1e6));
  mix (Unix.getpid ());
  Printf.sprintf "%016Lx" !h

let () =
  match Sys.getenv_opt "ZAATAR_TRACE" with
  | Some path when path <> "" ->
    enable ();
    at_exit (fun () -> Sink.write_chrome_trace path)
  | _ -> ()
