(* Prometheus text exposition (format 0.0.4) of the Zobs registry: every
   counter, histogram (with cumulative le-buckets and approximate
   p50/p95/p99 gauges) and span aggregate, rendered on demand by the
   `--metrics-listen` endpoint. Metric names are the Zobs dotted names with
   a `zaatar_` prefix and dots mapped to underscores, so
   `wire.bytes.sent.hello` scrapes as `zaatar_wire_bytes_sent_hello`. *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

(* Label values need backslash, double-quote and newline escaped per the
   exposition format. *)
let escape_label v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let metric b ?(labels = []) ~name v =
  Buffer.add_string b name;
  (match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, lv) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%s=\"%s\"" k (escape_label lv)))
      labels;
    Buffer.add_char b '}');
  Buffer.add_string b (Printf.sprintf " %s\n" v)

let typ b name kind = Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)

let int_metric b ?labels ~name v = metric b ?labels ~name (string_of_int v)
let float_metric b ?labels ~name v = metric b ?labels ~name (Printf.sprintf "%.9g" v)

let render_counters b =
  List.iter
    (fun (name, v) ->
      let n = "zaatar_" ^ sanitize name in
      typ b n "counter";
      int_metric b ~name:n v)
    (Registry.counter_values ())

(* Bucket i of a Zobs histogram counts values in [lo, 2*lo), so the
   inclusive upper bound Prometheus wants for `le` is 2*lo - 1 (and 0 for
   the v <= 0 bucket). *)
let render_histograms b =
  List.iter
    (fun (name, buckets) ->
      if buckets <> [] then begin
        let n = "zaatar_" ^ sanitize name in
        typ b n "histogram";
        let total =
          List.fold_left
            (fun acc (lo, c) ->
              let acc = acc + c in
              let le = if lo = 0 then "0" else string_of_int ((2 * lo) - 1) in
              int_metric b ~labels:[ ("le", le) ] ~name:(n ^ "_bucket") acc;
              acc)
            0 buckets
        in
        int_metric b ~labels:[ ("le", "+Inf") ] ~name:(n ^ "_bucket") total;
        int_metric b ~name:(n ^ "_count") total;
        List.iter
          (fun (suffix, p) ->
            match Histogram.percentile_of_snapshot buckets p with
            | Some v -> int_metric b ~name:(n ^ "_" ^ suffix) v
            | None -> ())
          [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0) ]
      end)
    (Registry.histogram_values ())

let render_spans b =
  let spans = Span.totals () in
  if spans <> [] then begin
    List.iter
      (fun (tname, kind) -> typ b tname kind)
      [
        ("zaatar_span_seconds_total", "counter");
        ("zaatar_span_exclusive_seconds_total", "counter");
        ("zaatar_span_calls_total", "counter");
      ];
    List.iter
      (fun (name, (s : Span.stat)) ->
        let labels = [ ("name", name) ] in
        float_metric b ~labels ~name:"zaatar_span_seconds_total" s.Span.total;
        float_metric b ~labels ~name:"zaatar_span_exclusive_seconds_total" s.Span.exclusive;
        int_metric b ~labels ~name:"zaatar_span_calls_total" s.Span.count)
      spans
  end

(* Ledger gauges: Figure-3 op totals since process start, plus the same op
   vector and GC deltas attributed per protocol phase — what a `serve`
   operator needs to see op rates and GC pressure per scrape. *)
let render_ledger b =
  let total = Ledger.total () in
  typ b "zaatar_ledger_ops_total" "counter";
  List.iter
    (fun (op, v) -> int_metric b ~labels:[ ("op", op) ] ~name:"zaatar_ledger_ops_total" v)
    (Ledger.ops_to_list total);
  let phases = Ledger.phases () in
  if phases <> [] then begin
    List.iter
      (fun (tname, kind) -> typ b tname kind)
      [
        ("zaatar_ledger_phase_ops_total", "counter");
        ("zaatar_ledger_phase_seconds_total", "counter");
        ("zaatar_ledger_phase_minor_words_total", "counter");
        ("zaatar_ledger_phase_major_words_total", "counter");
      ];
    List.iter
      (fun (phase, (p : Ledger.phase)) ->
        List.iter
          (fun (op, v) ->
            int_metric b
              ~labels:[ ("phase", phase); ("op", op) ]
              ~name:"zaatar_ledger_phase_ops_total" v)
          (Ledger.ops_to_list p.Ledger.ops);
        let labels = [ ("phase", phase) ] in
        float_metric b ~labels ~name:"zaatar_ledger_phase_seconds_total" p.Ledger.seconds;
        float_metric b ~labels ~name:"zaatar_ledger_phase_minor_words_total"
          p.Ledger.gc.Span.minor_words;
        float_metric b ~labels ~name:"zaatar_ledger_phase_major_words_total"
          p.Ledger.gc.Span.major_words)
      phases
  end

(* GC gauges: the live [Gc.quick_stat] of the scraped process. Counter-like
   fields (words, collections) are monotonic; heap sizes are point-in-time
   gauges. *)
let render_gc b =
  let g = Gc.quick_stat () in
  List.iter
    (fun (name, v) ->
      typ b name "counter";
      float_metric b ~name v)
    [
      ("zaatar_gc_minor_words_total", g.Gc.minor_words);
      ("zaatar_gc_major_words_total", g.Gc.major_words);
      ("zaatar_gc_promoted_words_total", g.Gc.promoted_words);
      ("zaatar_gc_minor_collections_total", float_of_int g.Gc.minor_collections);
      ("zaatar_gc_major_collections_total", float_of_int g.Gc.major_collections);
      ("zaatar_gc_compactions_total", float_of_int g.Gc.compactions);
    ];
  List.iter
    (fun (name, v) ->
      typ b name "gauge";
      float_metric b ~name v)
    [
      ("zaatar_gc_heap_words", float_of_int g.Gc.heap_words);
      ("zaatar_gc_top_heap_words", float_of_int g.Gc.top_heap_words);
    ]

(* [extra] lets a caller (the serve metrics endpoint) prepend its own
   already-rendered exposition lines — per-connection series the global
   registry does not know about. *)
let render ?(extra = "") () =
  let b = Buffer.create 4096 in
  Buffer.add_string b extra;
  render_counters b;
  render_histograms b;
  render_spans b;
  render_ledger b;
  render_gc b;
  Buffer.contents b
