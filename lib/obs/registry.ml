(* The global observability switchboard. One atomic [enabled] flag gates
   every counter increment, histogram observation and span: when tracing is
   off an instrumented hot path pays a single atomic load and a predictable
   branch, so production-mode cost is indistinguishable from uninstrumented
   code. All metric objects self-register here at module-init time so the
   sinks can enumerate them without a central name list. *)

let enabled = Atomic.make false

let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* A second, independent gate for the sampling profiler (Profiler): with
   [stacks] on and full tracing off, Span.with_ keeps each domain's
   open-span stack current — one DLS load and two list conses per span —
   without recording events, aggregates or GC deltas. That is the
   "always-on, low-overhead" mode the farm runs in production; enabling
   full tracing supersedes it (the traced path maintains the same stack). *)
let stacks = Atomic.make false

let stacks_on () = Atomic.get stacks
let enable_stacks () = Atomic.set stacks true
let disable_stacks () = Atomic.set stacks false

let mu = Mutex.create ()

(* The distributed trace id: minted by the verifier, carried to the prover
   in the wire Hello, stamped into every Chrome-trace export so the merge
   step (Sink.merge_chrome_trace_files) can correlate the two processes.
   Empty means "no distributed trace". *)
let trace_id_v = ref ""

let set_trace_id id =
  Mutex.lock mu;
  trace_id_v := id;
  Mutex.unlock mu

let trace_id () =
  Mutex.lock mu;
  let id = !trace_id_v in
  Mutex.unlock mu;
  id

(* (name, read, reset). Registration replaces an existing entry with the
   same name so re-created metrics (tests) don't shadow stale readers. *)
let counters : (string * (unit -> int) * (unit -> unit)) list ref = ref []
let histograms : (string * (unit -> (int * int) list) * (unit -> unit)) list ref = ref []

let register_counter name read reset =
  Mutex.lock mu;
  counters := (name, read, reset) :: List.filter (fun (n, _, _) -> n <> name) !counters;
  Mutex.unlock mu

let register_histogram name read reset =
  Mutex.lock mu;
  histograms := (name, read, reset) :: List.filter (fun (n, _, _) -> n <> name) !histograms;
  Mutex.unlock mu

let counter_values () =
  Mutex.lock mu;
  let l = List.map (fun (n, read, _) -> (n, read ())) !counters in
  Mutex.unlock mu;
  List.sort compare l

(* Current value of one named counter; 0 when no metric registered under
   that name (the library owning it may not be linked in). *)
let counter_value name =
  Mutex.lock mu;
  let r = List.find_opt (fun (n, _, _) -> n = name) !counters in
  Mutex.unlock mu;
  match r with Some (_, read, _) -> read () | None -> 0

(* Per-domain flush hooks: sharded counters register one so a Pool worker
   can fold its domain-local cells into the shared base before the domain
   exits. Called on the worker's own domain. *)
let flushers : (unit -> unit) list ref = ref []

let register_flusher f =
  Mutex.lock mu;
  flushers := f :: !flushers;
  Mutex.unlock mu

let flush_domain () =
  Mutex.lock mu;
  let fs = !flushers in
  Mutex.unlock mu;
  List.iter (fun f -> f ()) fs

let histogram_values () =
  Mutex.lock mu;
  let l = List.map (fun (n, read, _) -> (n, read ())) !histograms in
  Mutex.unlock mu;
  List.sort compare l

let reset () =
  Mutex.lock mu;
  List.iter (fun (_, _, r) -> r ()) !counters;
  List.iter (fun (_, _, r) -> r ()) !histograms;
  Mutex.unlock mu
