(* Power-of-two bucketed histograms for size-shaped quantities (NTT sizes,
   query-vector lengths). Bucket i >= 1 counts values v with
   2^(i-1) <= v < 2^i; bucket 0 counts v <= 0. Snapshots report buckets as
   (lower bound, count) pairs, omitting empty buckets. *)

type t = { name : string; buckets : int Atomic.t array }

let nbuckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (nbuckets - 1) (bits v 0)
  end

let lower_bound i = if i = 0 then 0 else 1 lsl (i - 1)

let snapshot h =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    let c = Atomic.get h.buckets.(i) in
    if c > 0 then out := (lower_bound i, c) :: !out
  done;
  !out

let make name =
  let h = { name; buckets = Array.init nbuckets (fun _ -> Atomic.make 0) } in
  Registry.register_histogram name
    (fun () -> snapshot h)
    (fun () -> Array.iter (fun a -> Atomic.set a 0) h.buckets);
  h

let observe h v = if Registry.on () then ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1)
let name h = h.name

let total h = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.buckets

(* Approximate percentile from a snapshot: the lower bound of the bucket
   holding the ceil(p% * total)-th sample, so the answer is exact up to the
   power-of-two bucket resolution. [None] on an empty histogram. Operating
   on snapshots keeps one read consistent across p50/p95/p99 and lets the
   sinks compute percentiles from registry values they already hold. *)
let percentile_of_snapshot (snap : (int * int) list) (p : float) : int option =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 snap in
  if total = 0 then None
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
    let rank = min total (max 1 rank) in
    let rec go acc = function
      | [] -> None
      | (lo, c) :: rest -> if acc + c >= rank then Some lo else go (acc + c) rest
    in
    go 0 snap
  end

let percentile h p = percentile_of_snapshot (snapshot h) p
