(* Minimal self-contained JSON: a writer for the trace/summary sinks and a
   parser so the tests and the bench can re-read what they emitted. Zobs
   sits below fieldlib, so no external JSON dependency is possible here. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> Buffer.add_string b (number_to_string x)
  | Str s -> escape_into b s
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_into b k;
        Buffer.add_char b ':';
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "bad escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let cp =
            match int_of_string_opt ("0x" ^ hex) with Some c -> c | None -> fail "bad \\u escape"
          in
          (* BMP code point to UTF-8. *)
          if cp < 0x80 then Buffer.add_char b (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (elems [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_arr = function Arr xs -> Some xs | _ -> None
let to_num = function Num x -> Some x | _ -> None
let to_str = function Str s -> Some s | _ -> None
