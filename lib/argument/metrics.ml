(* Phase-level CPU accounting. Figure 5 decomposes the prover's end-to-end
   time into: solve constraints, construct proof vector, crypto operations,
   answer queries; the verifier splits setup (amortized over the batch) from
   per-instance work. Timers accumulate across instances.

   This module is now a thin shim over Zobs: [time] additionally opens a
   Zobs span of the same name, so phase timings land in the Chrome trace and
   in Zobs.Span.totals alongside the local table. Prefer Zobs spans and
   counters for new instrumentation. *)

type t = { mutable entries : (string * float) list }

let create () = { entries = [] }

let add t name dt =
  let rec go = function
    | [] -> [ (name, dt) ]
    | (n, v) :: rest -> if n = name then (n, v +. dt) :: rest else (n, v) :: go rest
  in
  t.entries <- go t.entries

(* Phase timers are also ledger phases: each [time] snapshots the Figure-3
   op counters and GC state around the work, so every prover phase gets an
   exact op vector (Zobs.Ledger.phases) next to its seconds. *)
let time t name f =
  let t0 = Unix.gettimeofday () in
  let result = Zobs.Ledger.with_phase name (fun () -> Zobs.Span.with_ ~name f) in
  add t name (Unix.gettimeofday () -. t0);
  result

let get t name = match List.assoc_opt name t.entries with Some v -> v | None -> 0.0

let total t = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 t.entries

(* Sorted by key so table and trace output are stable across runs. *)
let to_list t = List.sort (fun (a, _) (b, _) -> String.compare a b) t.entries

let reset t = t.entries <- []

let pp fmt t =
  List.iter (fun (n, v) -> Format.fprintf fmt "  %-24s %10.4f s@." n v) (to_list t)
