(** The Ginger baseline (§2.2 PCP, u = (z, z (x) z)) as a *runnable*
    argument under the same linear commitment. The paper only estimates
    Ginger at evaluation sizes; this driver lets the `baseline` bench
    measure it end-to-end at tiny sizes and validate the Figure 3 Ginger
    column empirically.

    Instances are verified independently (no batch amortization): Ginger's
    circuit-query coefficients depend on the bound inputs/outputs, and for
    model validation the per-instance cost is the quantity of interest. *)

open Fieldlib
open Constr

type computation = {
  ginger : Quad.system;
  num_inputs : int;
  num_outputs : int;
  solve : Fp.el array -> Fp.el array; (** inputs -> full canonical assignment *)
}

type config = {
  params : Pcp.Pcp_ginger.params;
  p_bits : int;
  cheat : bool; (** perturb the witness before building the proof vector *)
  domains : int; (** Pool domains for Enc(r) generation *)
}

val test_config : config

type instance_result = {
  claimed_output : Fp.el array;
  accepted : bool;
  commit_ok : bool;
  pcp_verdict : Pcp.Pcp_ginger.verdict;
  prover : Metrics.t;
  verifier_s : float;
}

val run_instance : ?config:config -> computation -> prg:Chacha.Prg.t -> x:Fp.el array -> instance_result
