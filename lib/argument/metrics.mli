(** Phase-level CPU accounting for the Figure 5 decomposition (prover:
    solve constraints / construct u / crypto ops / answer queries; verifier:
    setup vs per-instance). Timers accumulate across instances.

    Deprecated as a standalone facility: [time] is now a shim that also
    opens a {!Zobs.Span} of the same name, and [to_list] returns entries
    sorted by key. New instrumentation should use [Zobs] spans and counters
    directly; this module remains only to feed the per-batch phase table. *)

type t

val create : unit -> t
val add : t -> string -> float -> unit
val time : t -> string -> (unit -> 'a) -> 'a
val get : t -> string -> float
val total : t -> float
val to_list : t -> (string * float) list
val reset : t -> unit
val pp : Format.formatter -> t -> unit
