(** The end-to-end batched argument system of Figure 2: the QAP-based
    linear PCP composed with the linear commitment, verifying beta
    instances of one computation against a (possibly cheating) prover.

    Batch amortization (§2.2): PCP queries, the Enc(r) commitment requests
    and the decommit challenges are generated once per batch; witnesses,
    proof vectors, commitments and responses are per instance. *)

open Fieldlib
open Constr

type computation = {
  r1cs : R1cs.system;
  num_inputs : int; (** X = variables num_z+1 .. num_z+num_inputs *)
  num_outputs : int; (** Y = the following variables *)
  solve : Fp.el array -> Fp.el array;
      (** input vector -> full satisfying assignment, slot 0 = 1 (the
          prover's "solve the constraints" step, Figure 1) *)
}

val io_of_w : computation -> Fp.el array -> Fp.el array
val outputs_of_w : computation -> Fp.el array -> Fp.el array

(** Prover strategies for the adversarial suite and the soundness bench. *)
type strategy =
  | Honest
  | Wrong_output (** report a wrong y, prove with the stale witness *)
  | Corrupt_witness (** perturb one z entry, divide-and-drop-remainder h *)
  | Corrupt_h (** honest z, perturbed h *)
  | Equivocate (** commit to u, answer queries from a different u' *)
  | Nonlinear (** answer z-queries through a non-linear function *)

type instance_result = {
  claimed_output : Fp.el array;
  accepted : bool;
  commit_ok : bool;
  pcp_verdict : Pcp.Pcp_zaatar.verdict;
}

type batch_result = {
  instances : instance_result array;
  verifier_setup_s : float; (** once per batch (amortized) *)
  verifier_per_instance_s : float; (** total across the batch *)
  prover : Metrics.t; (** Figure 5's phase decomposition, batch totals *)
}

type config = {
  params : Pcp.Pcp_zaatar.params;
  p_bits : int; (** ElGamal group size *)
  strategy : strategy;
  domains : int;
      (** Pool domains for the commitment pipeline: Enc(r) generation and
          the per-instance prover commitments. Transcripts are identical
          for every domain count (randomness is pre-drawn sequentially). *)
}

val default_config : config
(** Paper parameters: rho = 8, rho_lin = 20, 1024-bit group, 1 domain. *)

val test_config : config
(** rho = 1, rho_lin = 2, 192-bit group, 1 domain: for unit tests. *)

val run_batch :
  ?config:config -> computation -> prg:Chacha.Prg.t -> inputs:Fp.el array array -> batch_result

val all_accepted : batch_result -> bool
val none_accepted : batch_result -> bool
