(** The end-to-end batched argument system of Figure 2: the QAP-based
    linear PCP composed with the linear commitment, verifying beta
    instances of one computation against a (possibly cheating) prover.

    Batch amortization (§2.2): PCP queries, the Enc(r) commitment requests
    and the decommit challenges are generated once per batch; witnesses,
    proof vectors, commitments and responses are per instance. *)

open Fieldlib
open Constr

type computation = {
  r1cs : R1cs.system;
  num_inputs : int; (** X = variables num_z+1 .. num_z+num_inputs *)
  num_outputs : int; (** Y = the following variables *)
  solve : Fp.el array -> Fp.el array;
      (** input vector -> full satisfying assignment, slot 0 = 1 (the
          prover's "solve the constraints" step, Figure 1) *)
}

val io_of_w : computation -> Fp.el array -> Fp.el array
val outputs_of_w : computation -> Fp.el array -> Fp.el array

(** Prover strategies for the adversarial suite and the soundness bench. *)
type strategy =
  | Honest
  | Wrong_output (** report a wrong y, prove with the stale witness *)
  | Corrupt_witness (** perturb one z entry, divide-and-drop-remainder h *)
  | Corrupt_h (** honest z, perturbed h *)
  | Equivocate (** commit to u, answer queries from a different u' *)
  | Nonlinear (** answer z-queries through a non-linear function *)

type instance_result = {
  claimed_output : Fp.el array;
  accepted : bool;
  commit_ok : bool;
  pcp_verdict : Pcp.Pcp_zaatar.verdict;
}

type batch_result = {
  instances : instance_result array;
  verifier_setup_s : float; (** once per batch (amortized) *)
  verifier_per_instance_s : float; (** total across the batch *)
  prover : Metrics.t; (** Figure 5's phase decomposition, batch totals *)
}

type config = {
  params : Pcp.Pcp_zaatar.params;
  p_bits : int; (** ElGamal group size *)
  strategy : strategy;
  domains : int;
      (** Pool domains for the commitment pipeline: Enc(r) generation and
          the per-instance prover commitments. Transcripts are identical
          for every domain count (randomness is pre-drawn sequentially). *)
  qap_backend : Qapb.backend;
      (** QAP construction: [Auto] (the default) takes the NTT prover path
          whenever the field's 2-adicity covers the constraint count and
          falls back to the paper's Lagrange pipeline otherwise. Verifier
          and prover must agree (the backends are different proof
          systems); a mismatch fails with a session length error. *)
}

val default_config : config
(** Paper parameters: rho = 8, rho_lin = 20, 1024-bit group, 1 domain,
    [Auto] backend. *)

val test_config : config
(** rho = 1, rho_lin = 2, 192-bit group, 1 domain: for unit tests. *)

(** {1 Sessions}

    The protocol as two message-driven state machines exchanging only
    {!Zwire.msg} values (DESIGN.md §9):

    {v
    V: Hello            ->  P
    V  <-  Hello_ok         P   (digest echo)
    V: Commit_request   ->  P   (group params, public keys, Enc(r))
    V  <-  Commitments      P   ((com_z, com_h) per instance)
    V: Queries          ->  P   (PCP queries + decommit vectors)
    V  <-  Answers          P   (responses + pi(t) per instance)
    V: Verdicts         ->  P   (final; both sides close)
    v}

    A driver — the in-process loopback ({!run_batch}) or the socket pair in
    {!Remote} — owns the transport and pumps messages between the two. *)

exception Session_error of string
(** Protocol violation: unexpected message for the state, length or digest
    mismatch, or a peer's [Error_msg]. *)

val digest : computation -> string
(** {!Constr.Serialize.system_digest} of the constraint system: how Hello
    names the computation. *)

type step = [ `Send of Zwire.msg | `Finished of Zwire.msg option ]
(** What the driver does with a state machine's reply: forward a message
    and keep pumping, or forward the optional last message and stop. *)

module Verifier_session : sig
  type t

  val create :
    ?config:config ->
    ?trace_id:string ->
    computation ->
    prg:Chacha.Prg.t ->
    inputs:Fp.el array array ->
    t
  (** Draws all batch randomness (queries, Enc(r), decommit challenges) —
      in the transcript order of the original monolithic [run_batch].
      [trace_id] (default [""] = untraced) is carried to the prover in the
      Hello and stamped on both sides' Zobs exports; it is minted from wall
      clock ({!Zobs.mint_trace_id}), never from [prg], so transcripts do
      not shift. *)

  val initial : t -> Zwire.msg
  (** The opening [Hello]. *)

  val codec : t -> Zwire.codec
  (** Field and group context for {!Zwire.encode}/[decode]; fixed at
      creation on the verifier side. *)

  val on_msg : t -> Zwire.msg -> step
  (** Feed one prover message; raises {!Session_error} on violations. *)

  val result : ?prover:Metrics.t -> t -> batch_result
  (** After the final step; [prover] supplies the prover-side metrics when
      the driver has them (loopback). Raises {!Session_error} if the
      session has not finished. *)
end

module Prover_session : sig
  type t

  val create :
    ?config:config ->
    ?setup:(string -> computation -> Qapb.t) ->
    lookup:(string -> computation option) ->
    prg:Chacha.Prg.t ->
    unit ->
    t
  (** [lookup] resolves a Hello digest to a computation this prover is
      willing to serve; unknown digests are refused with an [Error_msg].
      [config] supplies the strategy (adversarial provers) and the domain
      count for the commitment pipeline. [setup], given the Hello digest
      and the resolved computation, supplies the QAP — the farm routes
      this through its per-digest setup cache; without it the session
      builds a fresh {!Qapb.of_r1cs} per connection. *)

  val codec : t -> Zwire.codec option
  (** [None] until the Hello established the field; the group modulus is
      added once the commit request arrives. *)

  val on_msg : t -> Zwire.msg -> step
  val metrics : t -> Metrics.t
end

val run_batch :
  ?config:config -> computation -> prg:Chacha.Prg.t -> inputs:Fp.el array array -> batch_result
(** The in-process loopback driver: both sessions in one process, every
    message still encoded and decoded through {!Zwire} (so wire.* counters
    account the full exchange), one shared PRG — transcripts are
    bit-identical to the historical monolithic implementation. *)

val all_accepted : batch_result -> bool
val none_accepted : batch_result -> bool
