(** Socket drivers for the split verifier/prover argument: the
    {!Argument.Verifier_session}/{!Argument.Prover_session} state machines
    pumped over a {!Znet} connection (DESIGN.md §9). The CLI's
    [zaatar serve] / [zaatar run --connect] are thin wrappers. *)

open Fieldlib

val run_conn :
  ?config:Argument.config ->
  Argument.computation ->
  prg:Chacha.Prg.t ->
  inputs:Fp.el array array ->
  Znet.conn ->
  Argument.batch_result
(** Drive a verifier session over an existing connection (tests use this
    with a socketpair). The prover-side metrics in the result are empty —
    they live in the remote process. *)

val run_connect :
  ?config:Argument.config ->
  ?timeout_ms:int ->
  addr:string ->
  Argument.computation ->
  prg:Chacha.Prg.t ->
  inputs:Fp.el array array ->
  Argument.batch_result
(** Connect to a prover at ["HOST:PORT"] and run the batch. The connection
    is closed on all paths. Raises [Znet.Net_error] on transport failure
    and {!Argument.Session_error} on protocol violations (including an
    [Error_msg] from the prover). *)

val handle_conn :
  ?config:Argument.config ->
  lookup:(string -> Argument.computation option) ->
  prg:Chacha.Prg.t ->
  Znet.conn ->
  unit
(** Serve one prover session to completion on an existing connection.
    Malformed input and protocol violations are reported to the peer as an
    [Error_msg], then re-raised as {!Argument.Session_error}. *)

type log = string -> unit

val serve :
  ?config:Argument.config ->
  lookup:(string -> Argument.computation option) ->
  ?seed:string ->
  ?once:bool ->
  ?timeout_ms:int ->
  ?log:log ->
  string ->
  unit
(** Accept loop: bind ["HOST:PORT"] (port 0 picks an ephemeral port), log
    ["listening on HOST:PORT"], and serve connections sequentially — one
    prover session each, with a fresh per-connection PRG derived from
    [seed]. [once] stops after the first connection (CI); [timeout_ms]
    bounds per-connection reads and writes. Session and connection errors
    are logged, not fatal to the loop. *)
