(** Socket drivers for the split verifier/prover argument: the
    {!Argument.Verifier_session}/{!Argument.Prover_session} state machines
    pumped over a {!Znet} connection (DESIGN.md §9). The CLI's
    [zaatar serve] / [zaatar run --connect] are thin wrappers.

    Wire operations run under [net.send]/[net.recv] Zobs spans and feed
    per-phase [wire.latency_us.<phase>] histograms; the serve path keeps
    always-on per-connection {!Znet.Svcstats}, optionally exposes them over
    a live HTTP metrics endpoint, and can write one prover-side
    Chrome-trace sidecar per connection (DESIGN.md §10). *)

open Fieldlib

val run_conn :
  ?config:Argument.config ->
  ?trace_id:string ->
  Argument.computation ->
  prg:Chacha.Prg.t ->
  inputs:Fp.el array array ->
  Znet.conn ->
  Argument.batch_result
(** Drive a verifier session over an existing connection (tests use this
    with a socketpair). The prover-side metrics in the result are empty —
    they live in the remote process. [trace_id] is carried to the prover
    in the Hello (see {!Argument.Verifier_session.create}). *)

val run_connect :
  ?config:Argument.config ->
  ?trace_id:string ->
  ?timeout_ms:int ->
  addr:string ->
  Argument.computation ->
  prg:Chacha.Prg.t ->
  inputs:Fp.el array array ->
  Argument.batch_result
(** Connect to a prover at ["HOST:PORT"] and run the batch. The connection
    is closed on all paths. Raises [Znet.Net_error] on transport failure
    and {!Argument.Session_error} on protocol violations (including an
    [Error_msg] from the prover). *)

val handle_conn :
  ?config:Argument.config ->
  ?stats:Znet.Svcstats.conn ->
  lookup:(string -> Argument.computation option) ->
  prg:Chacha.Prg.t ->
  Znet.conn ->
  unit
(** Serve one prover session to completion on an existing connection.
    Malformed input and protocol violations are reported to the peer as an
    [Error_msg], then re-raised as {!Argument.Session_error}. [stats]
    receives per-phase bytes, message counts and wall time. *)

(** {1 Metrics endpoint} *)

val metrics_render : unit -> string
(** Prometheus text exposition: per-connection Svcstats series followed by
    every global Zobs counter/histogram/span aggregate. *)

val metrics_json : unit -> string
(** JSON snapshot of the server + per-connection Svcstats. *)

val start_metrics :
  ?ready:(unit -> bool) -> ?profile:(unit -> string) -> string -> Znet.Metrics_http.t
(** Start the metrics HTTP server on ["HOST:PORT"] (port 0 picks an
    ephemeral port — read it back with {!Znet.Metrics_http.bound_addr}).
    Serves [/metrics] (Prometheus text, also at [/]), [/json], [/healthz]
    (readiness: 200 ["ok"] while [ready] — default always — holds, 503
    otherwise) and [/profile] (folded stacks: the live sampling profiler's
    when the server passes [profile], else the completed-span folding). *)

type log = string -> unit

val serve :
  ?config:Argument.config ->
  lookup:(string -> Argument.computation option) ->
  ?seed:string ->
  ?once:bool ->
  ?timeout_ms:int ->
  ?metrics_listen:string ->
  ?trace_dir:string ->
  ?log:log ->
  string ->
  unit
(** Accept loop: bind ["HOST:PORT"] (port 0 picks an ephemeral port), log
    ["listening on HOST:PORT"], and serve connections sequentially — one
    prover session each, with a fresh per-connection PRG derived from
    [seed]. [once] stops after the first connection (CI); [timeout_ms]
    bounds per-connection reads and writes. Session and connection errors
    are logged, not fatal to the loop.

    [metrics_listen] starts {!start_metrics} alongside the accept loop
    (logged as ["metrics on HOST:PORT"]). [trace_dir], when tracing is
    enabled, writes [prover_connN.json] — a Chrome-trace sidecar of just
    connection N's spans, stamped [pid 1]/["prover"] and with the
    verifier's trace id, ready for [zaatar trace-merge]. *)
