(* The end-to-end batched argument system of Figure 2: the QAP-based linear
   PCP (lib/pcp) composed with the linear commitment (lib/commit), verifying
   beta instances of one computation Psi against a (possibly cheating)
   prover.

   Batch amortization (§2.2): PCP queries, the Enc(r) commitment requests
   and the decommit challenges are generated once per batch; each instance
   contributes its own witness, proof vector, commitments and responses. *)

open Fieldlib
open Constr
open Zcrypto

(* A computation, as handed over by the compiler (or built by hand): the
   quadratic-form constraints plus a witness solver. Variables num_z+1 ..
   num_z+num_inputs are X, the following num_outputs are Y. [solve] maps an
   input vector to the full satisfying assignment (slot 0 = 1). *)
type computation = {
  r1cs : R1cs.system;
  num_inputs : int;
  num_outputs : int;
  solve : Fp.el array -> Fp.el array;
}

let io_of_w comp (w : Fp.el array) =
  Array.sub w (comp.r1cs.R1cs.num_z + 1) (comp.num_inputs + comp.num_outputs)

let outputs_of_w comp (w : Fp.el array) =
  Array.sub w (comp.r1cs.R1cs.num_z + 1 + comp.num_inputs) comp.num_outputs

(* Prover strategies for the adversarial test-suite and the soundness
   bench. All cheats are caught with the PCP/commitment's stated
   probability. *)
type strategy =
  | Honest
  | Wrong_output (* report a wrong y, prove with the stale witness *)
  | Corrupt_witness (* perturb one z entry, divide-and-drop-remainder h *)
  | Corrupt_h (* honest z, perturbed h *)
  | Equivocate (* commit to u, answer queries from a different u' *)
  | Nonlinear (* answer z-queries through a non-linear function *)

type instance_result = {
  claimed_output : Fp.el array;
  accepted : bool;
  commit_ok : bool;
  pcp_verdict : Pcp.Pcp_zaatar.verdict;
}

type batch_result = {
  instances : instance_result array;
  verifier_setup_s : float; (* amortized-over-batch costs *)
  verifier_per_instance_s : float; (* total across the batch *)
  prover : Metrics.t;
}

type config = {
  params : Pcp.Pcp_zaatar.params;
  p_bits : int; (* ElGamal group size *)
  strategy : strategy;
  domains : int; (* Pool domains for the commitment pipeline (Enc(r), prover commits) *)
  qap_backend : Qapb.backend; (* Auto picks NTT iff the field's 2-adicity allows *)
}

let default_config =
  { params = Pcp.Pcp_zaatar.paper_params; p_bits = 1024; strategy = Honest; domains = 1;
    qap_backend = Qapb.Auto }

let test_config =
  { params = Pcp.Pcp_zaatar.test_params; p_bits = 192; strategy = Honest; domains = 1;
    qap_backend = Qapb.Auto }

(* The prover's per-instance proof material. *)
type proof_parts = {
  u_z : Fp.el array; (* what is committed and answered for pi_z *)
  u_h : Fp.el array;
  answer_u_z : Fp.el array; (* what queries are answered with (equivocation) *)
  answer_u_h : Fp.el array;
  nonlinear : bool;
  claimed_io : Fp.el array;
  claimed_output : Fp.el array;
}

let build_proof_parts ctx comp (qap : Qapb.t) strategy prg (x : Fp.el array) (pm : Metrics.t) :
    proof_parts =
  let w = Metrics.time pm "solve_constraints" (fun () -> comp.solve x) in
  assert (R1cs.satisfied ctx comp.r1cs w);
  let num_z = comp.r1cs.R1cs.num_z in
  match strategy with
  | Honest ->
    let h = Metrics.time pm "construct_u" (fun () -> Qapb.prover_h qap w) in
    let z = Array.sub w 1 num_z in
    {
      u_z = z;
      u_h = h;
      answer_u_z = z;
      answer_u_h = h;
      nonlinear = false;
      claimed_io = io_of_w comp w;
      claimed_output = outputs_of_w comp w;
    }
  | Wrong_output ->
    let h = Metrics.time pm "construct_u" (fun () -> Qapb.prover_h qap w) in
    let z = Array.sub w 1 num_z in
    let io = io_of_w comp w in
    let out = outputs_of_w comp w in
    let io' = Array.copy io and out' = Array.copy out in
    let last_io = Array.length io' - 1 and last_out = Array.length out' - 1 in
    io'.(last_io) <- Fp.add ctx io'.(last_io) Fp.one;
    out'.(last_out) <- Fp.add ctx out'.(last_out) Fp.one;
    { u_z = z; u_h = h; answer_u_z = z; answer_u_h = h; nonlinear = false;
      claimed_io = io'; claimed_output = out' }
  | Corrupt_witness ->
    let w' = Array.copy w in
    w'.(1) <- Fp.add ctx w'.(1) (Chacha.Prg.field_nonzero ctx prg);
    let h = Metrics.time pm "construct_u" (fun () -> Qapb.prover_h_forced qap w') in
    let z = Array.sub w' 1 num_z in
    { u_z = z; u_h = h; answer_u_z = z; answer_u_h = h; nonlinear = false;
      claimed_io = io_of_w comp w'; claimed_output = outputs_of_w comp w' }
  | Corrupt_h ->
    let h = Metrics.time pm "construct_u" (fun () -> Qapb.prover_h qap w) in
    let h' = Array.copy h in
    h'.(0) <- Fp.add ctx h'.(0) Fp.one;
    let z = Array.sub w 1 num_z in
    { u_z = z; u_h = h'; answer_u_z = z; answer_u_h = h'; nonlinear = false;
      claimed_io = io_of_w comp w; claimed_output = outputs_of_w comp w }
  | Equivocate ->
    let h = Metrics.time pm "construct_u" (fun () -> Qapb.prover_h qap w) in
    let z = Array.sub w 1 num_z in
    let z' = Array.copy z in
    if Array.length z' > 0 then z'.(0) <- Fp.add ctx z'.(0) Fp.one;
    { u_z = z; u_h = h; answer_u_z = z'; answer_u_h = h; nonlinear = false;
      claimed_io = io_of_w comp w; claimed_output = outputs_of_w comp w }
  | Nonlinear ->
    let h = Metrics.time pm "construct_u" (fun () -> Qapb.prover_h qap w) in
    let z = Array.sub w 1 num_z in
    { u_z = z; u_h = h; answer_u_z = z; answer_u_h = h; nonlinear = true;
      claimed_io = io_of_w comp w; claimed_output = outputs_of_w comp w }

(* ------------------------------------------------------------------ *)
(* Sessions: the protocol as two message-driven state machines          *)
(* ------------------------------------------------------------------ *)

exception Session_error of string

let session_error fmt = Printf.ksprintf (fun s -> raise (Session_error s)) fmt

let digest comp = Serialize.system_digest comp.r1cs

(* Verifier phases mirror the prover's Metrics spans: setup is amortized
   over the batch, per-instance work is not (Figure 3's e vs d costs).
   Each phase is also a ledger phase, so the verifier's op vector is
   accounted under the same names (Zobs.Ledger.phases). *)
let timed acc name f =
  let t0 = Unix.gettimeofday () in
  let r = Zobs.Ledger.with_phase name (fun () -> Zobs.Span.with_ ~name f) in
  acc := !acc +. (Unix.gettimeofday () -. t0);
  r

(* Both sessions speak only Zwire messages; a [step] is what the driver —
   loopback or socket — does with the state machine's reply. *)
type step = [ `Send of Zwire.msg | `Finished of Zwire.msg option ]

module Verifier_session = struct
  type state =
    | Expect_hello_ok
    | Expect_commitments
    | Expect_answers of (Elgamal.ciphertext * Elgamal.ciphertext) array
    | Done of instance_result array

  type t = {
    config : config;
    comp : computation;
    qap : Qapb.t;
    ctx : Fp.ctx;
    digest : string;
    trace_id : string;
    inputs : Fp.el array array;
    grp : Group.t;
    queries : Pcp.Pcp_zaatar.queries;
    req_z : Commitment.Commit.request;
    vs_z : Commitment.Commit.verifier_secret;
    req_h : Commitment.Commit.request;
    vs_h : Commitment.Commit.verifier_secret;
    ch_z : Commitment.Commit.challenge;
    ch_h : Commitment.Commit.challenge;
    v_setup : float ref;
    v_per : float ref;
    mutable state : state;
  }

  (* All batch randomness is drawn here, in the exact order of the original
     monolithic run_batch (group, queries, Enc(r) x2, challenges x2), so a
     loopback run sharing one PRG with the prover replays the historical
     transcript bit for bit. *)
  (* [trace_id] never touches [prg]: minting it from wall clock keeps the
     protocol transcript bit-identical to an untraced run. *)
  let create ?(config = default_config) ?(trace_id = "") (comp : computation)
      ~(prg : Chacha.Prg.t) ~(inputs : Fp.el array array) : t =
    if trace_id <> "" then Zobs.set_trace_id trace_id;
    let ctx = comp.r1cs.R1cs.field in
    let qap = Qapb.of_r1cs ~backend:config.qap_backend comp.r1cs in
    let num_z = comp.r1cs.R1cs.num_z in
    let h_len = Qapb.h_len qap in
    let v_setup = ref 0.0 and v_per = ref 0.0 in
    let setup f = timed v_setup "verifier_setup" f in
    let grp =
      setup (fun () -> Group.cached ~field_order:(Fp.modulus ctx) ~p_bits:config.p_bits ())
    in
    let queries = setup (fun () -> Pcp.Pcp_zaatar.gen_queries ~params:config.params qap prg) in
    let req_z, vs_z =
      setup (fun () ->
          Commitment.Commit.commit_request ~domains:config.domains ctx grp prg ~len:num_z)
    in
    let req_h, vs_h =
      setup (fun () ->
          Commitment.Commit.commit_request ~domains:config.domains ctx grp prg ~len:h_len)
    in
    let ch_z =
      setup (fun () ->
          Commitment.Commit.decommit_challenge ctx vs_z prg queries.Pcp.Pcp_zaatar.z_queries)
    in
    let ch_h =
      setup (fun () ->
          Commitment.Commit.decommit_challenge ctx vs_h prg queries.Pcp.Pcp_zaatar.h_queries)
    in
    { config; comp; qap; ctx; digest = digest comp; trace_id; inputs; grp; queries; req_z;
      vs_z; req_h; vs_h; ch_z; ch_h; v_setup; v_per; state = Expect_hello_ok }

  let codec t = Zwire.codec ~group_p:t.grp.Group.p t.ctx

  let initial t =
    Zwire.Hello
      {
        Zwire.digest = t.digest;
        modulus = Fp.modulus t.ctx;
        rho = t.config.params.Pcp.Pcp_zaatar.rho;
        rho_lin = t.config.params.Pcp.Pcp_zaatar.rho_lin;
        p_bits = t.config.p_bits;
        inputs = t.inputs;
        trace_id = t.trace_id;
      }

  let check_answers t (a : Zwire.instance_answers) i =
    let nzq = Array.length t.queries.Pcp.Pcp_zaatar.z_queries in
    let nhq = Array.length t.queries.Pcp.Pcp_zaatar.h_queries in
    if Array.length a.Zwire.z_resp <> nzq || Array.length a.Zwire.h_resp <> nhq then
      session_error "instance %d: %d/%d responses, expected %d/%d" i
        (Array.length a.Zwire.z_resp) (Array.length a.Zwire.h_resp) nzq nhq;
    if Array.length a.Zwire.claimed_io <> t.comp.num_inputs + t.comp.num_outputs then
      session_error "instance %d: claimed io length %d, expected %d" i
        (Array.length a.Zwire.claimed_io) (t.comp.num_inputs + t.comp.num_outputs);
    if Array.length a.Zwire.claimed_output <> t.comp.num_outputs then
      session_error "instance %d: claimed output length %d, expected %d" i
        (Array.length a.Zwire.claimed_output) t.comp.num_outputs

  let on_msg t (msg : Zwire.msg) : step =
    match (t.state, msg) with
    | _, Zwire.Error_msg e -> session_error "prover error: %s" e
    | Expect_hello_ok, Zwire.Hello_ok d ->
      if d <> t.digest then
        session_error "prover acknowledged digest %s, expected %s" d t.digest;
      t.state <- Expect_commitments;
      `Send
        (Zwire.Commit_request
           {
             Zwire.group_p = t.grp.Group.p;
             group_q = t.grp.Group.q;
             group_g = t.grp.Group.g;
             y_z = t.req_z.Commitment.Commit.pk.Elgamal.y;
             y_h = t.req_h.Commitment.Commit.pk.Elgamal.y;
             enc_r_z = t.req_z.Commitment.Commit.enc_r;
             enc_r_h = t.req_h.Commitment.Commit.enc_r;
           })
    | Expect_commitments, Zwire.Commitments coms ->
      if Array.length coms <> Array.length t.inputs then
        session_error "%d commitment pairs for %d instances" (Array.length coms)
          (Array.length t.inputs);
      t.state <- Expect_answers coms;
      `Send
        (Zwire.Queries
           {
             Zwire.z_queries = t.queries.Pcp.Pcp_zaatar.z_queries;
             h_queries = t.queries.Pcp.Pcp_zaatar.h_queries;
             t_z = t.ch_z.Commitment.Commit.t;
             t_h = t.ch_h.Commitment.Commit.t;
           })
    | Expect_answers coms, Zwire.Answers answers ->
      if Array.length answers <> Array.length t.inputs then
        session_error "%d answer sets for %d instances" (Array.length answers)
          (Array.length t.inputs);
      let instances =
        Array.mapi
          (fun i (a : Zwire.instance_answers) ->
            check_answers t a i;
            let com_z, com_h = coms.(i) in
            let ans_z = { Commitment.Commit.a = a.Zwire.z_resp; a_t = a.Zwire.a_t_z } in
            let ans_h = { Commitment.Commit.a = a.Zwire.h_resp; a_t = a.Zwire.a_t_h } in
            (* Consistency then PCP tests — all the verifier ever sees of
               the prover is what came over the wire. *)
            let commit_ok =
              timed t.v_per "verifier_per_instance" (fun () ->
                  Commitment.Commit.consistency_check t.vs_z t.ch_z ~commitment:com_z ans_z
                  && Commitment.Commit.consistency_check t.vs_h t.ch_h ~commitment:com_h ans_h)
            in
            let responses =
              { Pcp.Pcp_zaatar.z_resp = a.Zwire.z_resp; h_resp = a.Zwire.h_resp }
            in
            let pcp_verdict =
              timed t.v_per "verifier_per_instance" (fun () ->
                  Pcp.Pcp_zaatar.decide t.qap t.queries responses ~io:a.Zwire.claimed_io)
            in
            {
              claimed_output = a.Zwire.claimed_output;
              accepted = commit_ok && Pcp.Pcp_zaatar.accepts pcp_verdict;
              commit_ok;
              pcp_verdict;
            })
          answers
      in
      t.state <- Done instances;
      `Finished (Some (Zwire.Verdicts (Array.map (fun r -> r.accepted) instances)))
    | _, m -> session_error "unexpected %s message from the prover" (Zwire.phase_of_msg m)

  let result ?(prover = Metrics.create ()) t =
    match t.state with
    | Done instances ->
      { instances; verifier_setup_s = !(t.v_setup); verifier_per_instance_s = !(t.v_per); prover }
    | _ -> session_error "verifier session is not finished"
end

module Prover_session = struct
  (* What the prover knows once the Hello named a computation it serves. *)
  type ready = { comp : computation; ctx : Fp.ctx; qap : Qapb.t; parts : proof_parts array }

  type state =
    | Expect_hello
    | Expect_commit_request of ready
    | Expect_queries of ready
    | Expect_verdicts
    | Closed

  type t = {
    config : config;
    lookup : string -> computation option;
    setup : (string -> computation -> Qapb.t) option;
    prg : Chacha.Prg.t;
    pm : Metrics.t;
    mutable codec : Zwire.codec option;
    mutable state : state;
  }

  let create ?(config = default_config) ?setup ~lookup ~(prg : Chacha.Prg.t) () =
    { config; lookup; setup; prg; pm = Metrics.create (); codec = None; state = Expect_hello }

  let metrics t = t.pm
  let codec t = t.codec

  let refuse t msg : step =
    t.state <- Closed;
    `Finished (Some (Zwire.Error_msg msg))

  let on_msg t (msg : Zwire.msg) : step =
    match (t.state, msg) with
    | _, Zwire.Error_msg e -> session_error "verifier error: %s" e
    | Expect_hello, Zwire.Hello h -> (
      match t.lookup h.Zwire.digest with
      | None -> refuse t (Printf.sprintf "unknown computation %s" h.Zwire.digest)
      | Some comp ->
        let ctx = comp.r1cs.R1cs.field in
        if not (Nat.equal h.Zwire.modulus (Fp.modulus ctx)) then
          refuse t "field modulus does not match the named computation"
        else if
          Array.exists (fun x -> Array.length x <> comp.num_inputs) h.Zwire.inputs
        then refuse t (Printf.sprintf "input vectors must have %d entries" comp.num_inputs)
        else begin
          (* Adopt the verifier's distributed trace id so both processes'
             Chrome-trace exports can be merged into one view. *)
          if h.Zwire.trace_id <> "" then Zobs.set_trace_id h.Zwire.trace_id;
          let qap =
            match t.setup with
            | Some f -> f h.Zwire.digest comp
            | None -> Qapb.of_r1cs ~backend:t.config.qap_backend comp.r1cs
          in
          (* Sequential on purpose: proof parts consume the transcript PRG
             (cheating strategies draw perturbations from it). *)
          let parts =
            Array.map (fun x -> build_proof_parts ctx comp qap t.config.strategy t.prg x t.pm)
              h.Zwire.inputs
          in
          t.codec <- Some (Zwire.codec ctx);
          t.state <- Expect_commit_request { comp; ctx; qap; parts };
          `Send (Zwire.Hello_ok h.Zwire.digest)
        end)
    | Expect_commit_request r, Zwire.Commit_request cr ->
      if not (Nat.equal cr.Zwire.group_q (Fp.modulus r.ctx)) then
        session_error "commit-request group order differs from the PCP field modulus";
      (* Wire parameters are untrusted: of_params/public_key_of re-validate
         the group structure before any exponentiation runs on them. *)
      let grp = Group.of_params ~p:cr.Zwire.group_p ~q:cr.Zwire.group_q ~g:cr.Zwire.group_g in
      let num_z = r.comp.r1cs.R1cs.num_z and h_len = Qapb.h_len r.qap in
      if Array.length cr.Zwire.enc_r_z <> num_z then
        session_error "Enc(r_z) has %d entries, proof vector has %d"
          (Array.length cr.Zwire.enc_r_z) num_z;
      if Array.length cr.Zwire.enc_r_h <> h_len then
        session_error "Enc(r_h) has %d entries, proof vector has %d"
          (Array.length cr.Zwire.enc_r_h) h_len;
      let req_z =
        { Commitment.Commit.pk = Elgamal.public_key_of grp ~y:cr.Zwire.y_z;
          enc_r = cr.Zwire.enc_r_z }
      in
      let req_h =
        { Commitment.Commit.pk = Elgamal.public_key_of grp ~y:cr.Zwire.y_h;
          enc_r = cr.Zwire.enc_r_h }
      in
      (* Commitments are pure functions of the request and the proof
         vectors, so they fan out across instances over the Pool domains
         (the paper's "crypto hardware" phase, §5.2). *)
      let commitments =
        Metrics.time t.pm "crypto_ops" (fun () ->
            Dompool.Pool.map ~domains:t.config.domains
              (fun (p : proof_parts) ->
                ( Commitment.Commit.prover_commit req_z p.u_z,
                  Commitment.Commit.prover_commit req_h p.u_h ))
              r.parts)
      in
      t.codec <- Some (Zwire.codec ~group_p:cr.Zwire.group_p r.ctx);
      t.state <- Expect_queries r;
      `Send (Zwire.Commitments commitments)
    | Expect_queries r, Zwire.Queries q ->
      let ctx = r.ctx in
      let num_z = r.comp.r1cs.R1cs.num_z and h_len = Qapb.h_len r.qap in
      if
        Array.exists (fun qv -> Array.length qv <> num_z) q.Zwire.z_queries
        || Array.length q.Zwire.t_z <> num_z
      then session_error "z-queries must have %d entries" num_z;
      if
        Array.exists (fun qv -> Array.length qv <> h_len) q.Zwire.h_queries
        || Array.length q.Zwire.t_h <> h_len
      then session_error "h-queries must have %d entries" h_len;
      let answers =
        Array.map
          (fun (parts : proof_parts) ->
            let oracle =
              let base = Pcp.Oracle.honest ctx parts.answer_u_z parts.answer_u_h in
              if parts.nonlinear then Pcp.Oracle.nonlinear ctx base else base
            in
            let responses =
              Metrics.time t.pm "answer_queries" (fun () ->
                  Pcp.Pcp_zaatar.answer oracle
                    {
                      Pcp.Pcp_zaatar.z_queries = q.Zwire.z_queries;
                      h_queries = q.Zwire.h_queries;
                      reps = [||];
                    })
            in
            Metrics.time t.pm "answer_queries" (fun () ->
                {
                  Zwire.claimed_io = parts.claimed_io;
                  claimed_output = parts.claimed_output;
                  z_resp = responses.Pcp.Pcp_zaatar.z_resp;
                  h_resp = responses.Pcp.Pcp_zaatar.h_resp;
                  a_t_z = Fp.dot ctx q.Zwire.t_z parts.answer_u_z;
                  a_t_h = Fp.dot ctx q.Zwire.t_h parts.answer_u_h;
                }))
          r.parts
      in
      t.state <- Expect_verdicts;
      `Send (Zwire.Answers answers)
    | Expect_verdicts, Zwire.Verdicts _ ->
      t.state <- Closed;
      `Finished None
    | _, m -> session_error "unexpected %s message from the verifier" (Zwire.phase_of_msg m)
end

(* ------------------------------------------------------------------ *)
(* Loopback driver                                                      *)
(* ------------------------------------------------------------------ *)

(* In-process V/P exchange. Every message still round-trips through the
   Zwire codec, so the loopback driver moves exactly the bytes the socket
   driver would and the wire.* counters account both directions. Sharing
   one PRG between the sessions reproduces the historical single-process
   transcript bit for bit. *)
let run_batch ?(config = default_config) (comp : computation) ~(prg : Chacha.Prg.t)
    ~(inputs : Fp.el array array) : batch_result =
  Zobs.Span.with_ ~name:"argument.run_batch"
    ~attrs:[ ("instances", string_of_int (Array.length inputs)) ]
  @@ fun () ->
  let vs = Verifier_session.create ~config comp ~prg ~inputs in
  let d = digest comp in
  let ps =
    Prover_session.create ~config
      ~lookup:(fun d' -> if d' = d then Some comp else None)
      ~prg ()
  in
  let vcodec = Verifier_session.codec vs in
  let v_to_p m = Zwire.decode ?codec:(Prover_session.codec ps) (Zwire.encode ~codec:vcodec m) in
  let p_to_v m = Zwire.decode ~codec:vcodec (Zwire.encode ?codec:(Prover_session.codec ps) m) in
  let rec pump m =
    match Prover_session.on_msg ps (v_to_p m) with
    | `Finished None -> ()
    | `Finished (Some reply) | `Send reply -> (
      match Verifier_session.on_msg vs (p_to_v reply) with
      | `Send next -> pump next
      | `Finished (Some last) -> (
        match Prover_session.on_msg ps (v_to_p last) with
        | `Finished _ -> ()
        | `Send _ -> session_error "protocol did not terminate")
      | `Finished None -> ())
  in
  pump (Verifier_session.initial vs);
  Verifier_session.result ~prover:(Prover_session.metrics ps) vs

let all_accepted r = Array.for_all (fun i -> i.accepted) r.instances
let none_accepted r = Array.for_all (fun i -> not i.accepted) r.instances
