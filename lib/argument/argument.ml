(* The end-to-end batched argument system of Figure 2: the QAP-based linear
   PCP (lib/pcp) composed with the linear commitment (lib/commit), verifying
   beta instances of one computation Psi against a (possibly cheating)
   prover.

   Batch amortization (§2.2): PCP queries, the Enc(r) commitment requests
   and the decommit challenges are generated once per batch; each instance
   contributes its own witness, proof vector, commitments and responses. *)

open Fieldlib
open Constr
open Zcrypto

(* A computation, as handed over by the compiler (or built by hand): the
   quadratic-form constraints plus a witness solver. Variables num_z+1 ..
   num_z+num_inputs are X, the following num_outputs are Y. [solve] maps an
   input vector to the full satisfying assignment (slot 0 = 1). *)
type computation = {
  r1cs : R1cs.system;
  num_inputs : int;
  num_outputs : int;
  solve : Fp.el array -> Fp.el array;
}

let io_of_w comp (w : Fp.el array) =
  Array.sub w (comp.r1cs.R1cs.num_z + 1) (comp.num_inputs + comp.num_outputs)

let outputs_of_w comp (w : Fp.el array) =
  Array.sub w (comp.r1cs.R1cs.num_z + 1 + comp.num_inputs) comp.num_outputs

(* Prover strategies for the adversarial test-suite and the soundness
   bench. All cheats are caught with the PCP/commitment's stated
   probability. *)
type strategy =
  | Honest
  | Wrong_output (* report a wrong y, prove with the stale witness *)
  | Corrupt_witness (* perturb one z entry, divide-and-drop-remainder h *)
  | Corrupt_h (* honest z, perturbed h *)
  | Equivocate (* commit to u, answer queries from a different u' *)
  | Nonlinear (* answer z-queries through a non-linear function *)

type instance_result = {
  claimed_output : Fp.el array;
  accepted : bool;
  commit_ok : bool;
  pcp_verdict : Pcp.Pcp_zaatar.verdict;
}

type batch_result = {
  instances : instance_result array;
  verifier_setup_s : float; (* amortized-over-batch costs *)
  verifier_per_instance_s : float; (* total across the batch *)
  prover : Metrics.t;
}

type config = {
  params : Pcp.Pcp_zaatar.params;
  p_bits : int; (* ElGamal group size *)
  strategy : strategy;
  domains : int; (* Pool domains for the commitment pipeline (Enc(r), prover commits) *)
}

let default_config =
  { params = Pcp.Pcp_zaatar.paper_params; p_bits = 1024; strategy = Honest; domains = 1 }

let test_config =
  { params = Pcp.Pcp_zaatar.test_params; p_bits = 192; strategy = Honest; domains = 1 }

(* The prover's per-instance proof material. *)
type proof_parts = {
  u_z : Fp.el array; (* what is committed and answered for pi_z *)
  u_h : Fp.el array;
  answer_u_z : Fp.el array; (* what queries are answered with (equivocation) *)
  answer_u_h : Fp.el array;
  nonlinear : bool;
  claimed_io : Fp.el array;
  claimed_output : Fp.el array;
}

let build_proof_parts ctx comp (qap : Qap.t) strategy prg (x : Fp.el array) (pm : Metrics.t) :
    proof_parts =
  let w = Metrics.time pm "solve_constraints" (fun () -> comp.solve x) in
  assert (R1cs.satisfied ctx comp.r1cs w);
  let num_z = comp.r1cs.R1cs.num_z in
  match strategy with
  | Honest ->
    let h = Metrics.time pm "construct_u" (fun () -> Qap.prover_h qap w) in
    let z = Array.sub w 1 num_z in
    {
      u_z = z;
      u_h = h;
      answer_u_z = z;
      answer_u_h = h;
      nonlinear = false;
      claimed_io = io_of_w comp w;
      claimed_output = outputs_of_w comp w;
    }
  | Wrong_output ->
    let h = Metrics.time pm "construct_u" (fun () -> Qap.prover_h qap w) in
    let z = Array.sub w 1 num_z in
    let io = io_of_w comp w in
    let out = outputs_of_w comp w in
    let io' = Array.copy io and out' = Array.copy out in
    let last_io = Array.length io' - 1 and last_out = Array.length out' - 1 in
    io'.(last_io) <- Fp.add ctx io'.(last_io) Fp.one;
    out'.(last_out) <- Fp.add ctx out'.(last_out) Fp.one;
    { u_z = z; u_h = h; answer_u_z = z; answer_u_h = h; nonlinear = false;
      claimed_io = io'; claimed_output = out' }
  | Corrupt_witness ->
    let w' = Array.copy w in
    w'.(1) <- Fp.add ctx w'.(1) (Chacha.Prg.field_nonzero ctx prg);
    let h = Metrics.time pm "construct_u" (fun () -> Qap.prover_h_forced qap w') in
    let z = Array.sub w' 1 num_z in
    { u_z = z; u_h = h; answer_u_z = z; answer_u_h = h; nonlinear = false;
      claimed_io = io_of_w comp w'; claimed_output = outputs_of_w comp w' }
  | Corrupt_h ->
    let h = Metrics.time pm "construct_u" (fun () -> Qap.prover_h qap w) in
    let h' = Array.copy h in
    h'.(0) <- Fp.add ctx h'.(0) Fp.one;
    let z = Array.sub w 1 num_z in
    { u_z = z; u_h = h'; answer_u_z = z; answer_u_h = h'; nonlinear = false;
      claimed_io = io_of_w comp w; claimed_output = outputs_of_w comp w }
  | Equivocate ->
    let h = Metrics.time pm "construct_u" (fun () -> Qap.prover_h qap w) in
    let z = Array.sub w 1 num_z in
    let z' = Array.copy z in
    if Array.length z' > 0 then z'.(0) <- Fp.add ctx z'.(0) Fp.one;
    { u_z = z; u_h = h; answer_u_z = z'; answer_u_h = h; nonlinear = false;
      claimed_io = io_of_w comp w; claimed_output = outputs_of_w comp w }
  | Nonlinear ->
    let h = Metrics.time pm "construct_u" (fun () -> Qap.prover_h qap w) in
    let z = Array.sub w 1 num_z in
    { u_z = z; u_h = h; answer_u_z = z; answer_u_h = h; nonlinear = true;
      claimed_io = io_of_w comp w; claimed_output = outputs_of_w comp w }

let run_batch ?(config = default_config) (comp : computation) ~(prg : Chacha.Prg.t)
    ~(inputs : Fp.el array array) : batch_result =
  Zobs.Span.with_ ~name:"argument.run_batch"
    ~attrs:[ ("instances", string_of_int (Array.length inputs)) ]
  @@ fun () ->
  let ctx = comp.r1cs.R1cs.field in
  let qap = Qap.of_r1cs comp.r1cs in
  let num_z = comp.r1cs.R1cs.num_z in
  let h_len = qap.Qap.nc + 1 in
  let pm = Metrics.create () in
  let v_setup = ref 0.0 and v_per = ref 0.0 in
  (* Verifier phases mirror the prover's Metrics spans: setup is amortized
     over the batch, per-instance work is not (Figure 3's e vs d costs). *)
  let timed acc name f =
    let t0 = Unix.gettimeofday () in
    let r = Zobs.Span.with_ ~name f in
    acc := !acc +. (Unix.gettimeofday () -. t0);
    r
  in
  let setup f = timed v_setup "verifier_setup" f in
  (* ---- Verifier batch setup ---- *)
  let grp = setup (fun () -> Group.cached ~field_order:(Fp.modulus ctx) ~p_bits:config.p_bits ()) in
  let queries = setup (fun () -> Pcp.Pcp_zaatar.gen_queries ~params:config.params qap prg) in
  let req_z, vs_z =
    setup (fun () -> Commitment.Commit.commit_request ~domains:config.domains ctx grp prg ~len:num_z)
  in
  let req_h, vs_h =
    setup (fun () -> Commitment.Commit.commit_request ~domains:config.domains ctx grp prg ~len:h_len)
  in
  let ch_z =
    setup (fun () ->
        Commitment.Commit.decommit_challenge ctx vs_z prg queries.Pcp.Pcp_zaatar.z_queries)
  in
  let ch_h =
    setup (fun () ->
        Commitment.Commit.decommit_challenge ctx vs_h prg queries.Pcp.Pcp_zaatar.h_queries)
  in
  (* ---- Per instance ---- *)
  (* Proof parts are built sequentially — they consume the transcript PRG,
     and the transcript must not depend on the domain count. The
     commitments are pure functions of the request and the proof vectors,
     so they fan out across instances over the Pool domains (the paper's
     "crypto hardware" phase, §5.2). *)
  let parts =
    Array.map (fun x -> build_proof_parts ctx comp qap config.strategy prg x pm) inputs
  in
  let commitments =
    Metrics.time pm "crypto_ops" (fun () ->
        Dompool.Pool.map ~domains:config.domains
          (fun (p : proof_parts) ->
            ( Commitment.Commit.prover_commit req_z p.u_z,
              Commitment.Commit.prover_commit req_h p.u_h ))
          parts)
  in
  let run_instance i (parts : proof_parts) =
    let com_z, com_h = commitments.(i) in
    (* Prover: answer the PCP queries and the consistency vectors. *)
    let oracle =
      let base = Pcp.Oracle.honest ctx parts.answer_u_z parts.answer_u_h in
      if parts.nonlinear then Pcp.Oracle.nonlinear ctx base else base
    in
    let responses =
      Metrics.time pm "answer_queries" (fun () -> Pcp.Pcp_zaatar.answer oracle queries)
    in
    let ans_z =
      Metrics.time pm "answer_queries" (fun () ->
          {
            Commitment.Commit.a = responses.Pcp.Pcp_zaatar.z_resp;
            a_t = Fp.dot ctx ch_z.Commitment.Commit.t parts.answer_u_z;
          })
    in
    let ans_h =
      Metrics.time pm "answer_queries" (fun () ->
          {
            Commitment.Commit.a = responses.Pcp.Pcp_zaatar.h_resp;
            a_t = Fp.dot ctx ch_h.Commitment.Commit.t parts.answer_u_h;
          })
    in
    (* Verifier: consistency then PCP tests. *)
    let commit_ok =
      timed v_per "verifier_per_instance" (fun () ->
          Commitment.Commit.consistency_check vs_z ch_z ~commitment:com_z ans_z
          && Commitment.Commit.consistency_check vs_h ch_h ~commitment:com_h ans_h)
    in
    let pcp_verdict =
      timed v_per "verifier_per_instance" (fun () ->
          Pcp.Pcp_zaatar.decide qap queries responses ~io:parts.claimed_io)
    in
    {
      claimed_output = parts.claimed_output;
      accepted = commit_ok && Pcp.Pcp_zaatar.accepts pcp_verdict;
      commit_ok;
      pcp_verdict;
    }
  in
  let instances = Array.mapi run_instance parts in
  { instances; verifier_setup_s = !v_setup; verifier_per_instance_s = !v_per; prover = pm }

let all_accepted r = Array.for_all (fun i -> i.accepted) r.instances
let none_accepted r = Array.for_all (fun i -> not i.accepted) r.instances
