(* The Ginger baseline as a full argument: the §2.2 linear PCP
   (u = (z, z (x) z)) under the same linear commitment. The paper never
   runs Ginger at evaluation sizes (quadratic proof vectors make that
   infeasible) and neither do we — this driver exists so the benches can
   *measure* Ginger end-to-end at tiny sizes and validate the Figure 3
   Ginger column that all the estimated comparisons rely on.

   Unlike the Zaatar driver, instances are verified independently: Ginger's
   circuit-query coefficients depend on the bound inputs/outputs, so the
   full query set is per-instance here (the original system shares the
   computation-oblivious queries across a batch; for model validation the
   per-instance cost is what matters). *)

open Fieldlib
open Constr
open Zcrypto

type computation = {
  ginger : Quad.system;
  num_inputs : int;
  num_outputs : int;
  solve : Fp.el array -> Fp.el array; (* inputs -> full canonical assignment *)
}

type config = {
  params : Pcp.Pcp_ginger.params;
  p_bits : int;
  cheat : bool;
  domains : int; (* Pool domains for Enc(r) generation (the quadratic proof vector dominates) *)
}

let test_config = { params = Pcp.Pcp_ginger.test_params; p_bits = 192; cheat = false; domains = 1 }

type instance_result = {
  claimed_output : Fp.el array;
  accepted : bool;
  commit_ok : bool;
  pcp_verdict : Pcp.Pcp_ginger.verdict;
  prover : Metrics.t;
  verifier_s : float;
}

let run_instance ?(config = test_config) (comp : computation) ~(prg : Chacha.Prg.t)
    ~(x : Fp.el array) : instance_result =
  Zobs.Span.with_ ~name:"argument_ginger.run_instance" @@ fun () ->
  let ctx = comp.ginger.Quad.field in
  let pm = Metrics.create () in
  let v_time = ref 0.0 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = Zobs.Span.with_ ~name:"ginger_verifier" f in
    v_time := !v_time +. (Unix.gettimeofday () -. t0);
    r
  in
  let w = Metrics.time pm "solve_constraints" (fun () -> comp.solve x) in
  assert (Quad.satisfied ctx comp.ginger w);
  let num_z = comp.ginger.Quad.num_z in
  let io = Array.sub w (num_z + 1) (comp.num_inputs + comp.num_outputs) in
  let outputs = Array.sub w (num_z + 1 + comp.num_inputs) comp.num_outputs in
  let z = Array.sub w 1 num_z in
  (* Prover: the quadratic proof vector. *)
  let z_for_proof =
    if config.cheat then begin
      let z' = Array.copy z in
      if Array.length z' > 0 then z'.(0) <- Fp.add ctx z'.(0) Fp.one;
      z'
    end
    else z
  in
  let u1, u2 = Metrics.time pm "construct_u" (fun () -> Pcp.Pcp_ginger.proof_vector ctx z_for_proof) in
  (* Verifier: commitment requests and queries. *)
  let grp = timed (fun () -> Group.cached ~field_order:(Fp.modulus ctx) ~p_bits:config.p_bits ()) in
  let req1, vs1 =
    timed (fun () ->
        Commitment.Commit.commit_request ~domains:config.domains ctx grp prg ~len:(Array.length u1))
  in
  let req2, vs2 =
    timed (fun () ->
        Commitment.Commit.commit_request ~domains:config.domains ctx grp prg ~len:(Array.length u2))
  in
  let com1 = Metrics.time pm "crypto_ops" (fun () -> Commitment.Commit.prover_commit req1 u1) in
  let com2 = Metrics.time pm "crypto_ops" (fun () -> Commitment.Commit.prover_commit req2 u2) in
  let bound = timed (fun () -> Quad.bind_io ctx comp.ginger io) in
  let queries = timed (fun () -> Pcp.Pcp_ginger.gen_queries ~params:config.params ctx bound prg) in
  let ch1 = timed (fun () -> Commitment.Commit.decommit_challenge ctx vs1 prg queries.Pcp.Pcp_ginger.q1) in
  let ch2 = timed (fun () -> Commitment.Commit.decommit_challenge ctx vs2 prg queries.Pcp.Pcp_ginger.q2) in
  (* Prover: responses. *)
  let oracle = Pcp.Oracle.honest ctx u1 u2 in
  let responses = Metrics.time pm "answer_queries" (fun () -> Pcp.Pcp_ginger.answer oracle queries) in
  let ans1 =
    Metrics.time pm "answer_queries" (fun () ->
        { Commitment.Commit.a = responses.Pcp.Pcp_ginger.r1; a_t = Fp.dot ctx ch1.Commitment.Commit.t u1 })
  in
  let ans2 =
    Metrics.time pm "answer_queries" (fun () ->
        { Commitment.Commit.a = responses.Pcp.Pcp_ginger.r2; a_t = Fp.dot ctx ch2.Commitment.Commit.t u2 })
  in
  (* Verifier: checks. *)
  let commit_ok =
    timed (fun () ->
        Commitment.Commit.consistency_check vs1 ch1 ~commitment:com1 ans1
        && Commitment.Commit.consistency_check vs2 ch2 ~commitment:com2 ans2)
  in
  let pcp_verdict = timed (fun () -> Pcp.Pcp_ginger.decide ctx queries responses) in
  {
    claimed_output = outputs;
    accepted = commit_ok && Pcp.Pcp_ginger.accepts pcp_verdict;
    commit_ok;
    pcp_verdict;
    prover = pm;
    verifier_s = !v_time;
  }
