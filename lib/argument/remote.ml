(* Socket drivers for the split verifier/prover argument: the same
   Verifier_session/Prover_session state machines as the in-process
   loopback, pumped over a Znet connection instead of a function call.
   `zaatar serve` wraps [serve]; `zaatar run --connect` wraps
   [run_connect]. *)

open Fieldlib
open Argument

let send conn codec msg = Znet.send conn (Zwire.encode ?codec msg)

(* ---- Verifier (client) side ---- *)

let run_conn ?(config = default_config) (comp : computation) ~(prg : Chacha.Prg.t)
    ~(inputs : Fp.el array array) (conn : Znet.conn) : batch_result =
  Zobs.Span.with_ ~name:"argument.run_remote"
    ~attrs:[ ("instances", string_of_int (Array.length inputs)) ]
  @@ fun () ->
  let vs = Verifier_session.create ~config comp ~prg ~inputs in
  let codec = Some (Verifier_session.codec vs) in
  let recv () = Zwire.decode ?codec (Znet.recv conn) in
  send conn codec (Verifier_session.initial vs);
  let rec pump () =
    match Verifier_session.on_msg vs (recv ()) with
    | `Send m ->
      send conn codec m;
      pump ()
    | `Finished (Some m) -> send conn codec m
    | `Finished None -> ()
  in
  pump ();
  Verifier_session.result vs

let run_connect ?config ?timeout_ms ~addr (comp : computation) ~prg ~inputs : batch_result =
  let conn = Znet.connect ?timeout_ms addr in
  Fun.protect
    ~finally:(fun () -> Znet.close conn)
    (fun () -> run_conn ?config comp ~prg ~inputs conn)

(* ---- Prover (server) side ---- *)

(* Serve one connection to completion. Anything the wire or the session
   objects to — malformed frames, protocol violations, invalid group
   parameters — is reported to the peer as an Error_msg before giving up;
   transport failures (peer already gone) are swallowed, there is nobody
   left to tell. *)
let handle_conn ?(config = default_config) ~lookup ~(prg : Chacha.Prg.t) (conn : Znet.conn) :
    unit =
  let ps = Prover_session.create ~config ~lookup ~prg () in
  let step () =
    match Prover_session.on_msg ps (Zwire.decode ?codec:(Prover_session.codec ps) (Znet.recv conn)) with
    | `Send m ->
      (* Fetch the codec after on_msg: the transition may have extended it
         (Hello fixes the field, Commit_request the group). *)
      send conn (Prover_session.codec ps) m;
      true
    | `Finished (Some m) ->
      send conn (Prover_session.codec ps) m;
      false
    | `Finished None -> false
  in
  let report msg =
    try send conn (Prover_session.codec ps) (Zwire.Error_msg msg) with Znet.Net_error _ -> ()
  in
  try
    while step () do
      ()
    done
  with
  | Session_error m ->
    report m;
    raise (Session_error m)
  | Zwire.Decode_error e ->
    let m = "malformed message: " ^ Zwire.error_to_string e in
    report m;
    raise (Session_error m)
  | Invalid_argument m ->
    let m = "invalid parameters: " ^ m in
    report m;
    raise (Session_error m)

type log = string -> unit

let serve ?(config = default_config) ~lookup ?(seed = "zaatar prover") ?(once = false)
    ?timeout_ms ?(log : log = prerr_endline) (addr : string) : unit =
  let srv = Znet.listen addr in
  log (Printf.sprintf "listening on %s" (Znet.bound_addr srv));
  let serve_one () =
    let conn = Znet.accept srv in
    (match timeout_ms with Some ms -> Znet.set_timeout conn ms | None -> ());
    (* A fresh PRG per connection: only adversarial strategies draw from
       it, and each session's transcript must not depend on its
       predecessors. *)
    let prg = Chacha.Prg.create ~seed () in
    (try
       handle_conn ~config ~lookup ~prg conn;
       log "session complete"
     with
    | Session_error m -> log ("session error: " ^ m)
    | Znet.Net_error e -> log ("connection error: " ^ Znet.error_to_string e));
    Znet.close conn
  in
  Fun.protect
    ~finally:(fun () -> Znet.close_server srv)
    (fun () ->
      serve_one ();
      while not once do
        serve_one ()
      done)
