(* Socket drivers for the split verifier/prover argument: the same
   Verifier_session/Prover_session state machines as the in-process
   loopback, pumped over a Znet connection instead of a function call.
   `zaatar serve` wraps [serve]; `zaatar run --connect` wraps
   [run_connect].

   Observability: every wire operation runs under a net.send/net.recv Zobs
   span; receive waits also feed per-phase wire.latency_us histograms. The
   serve path additionally keeps always-on per-connection Svcstats
   (rendered by the --metrics-listen endpoint), emits structured log lines
   with peer/digest/phase fields, and — when tracing is on — writes one
   prover-side Chrome-trace sidecar per connection, stamped with the
   verifier's trace id so the two files merge into one Perfetto view. *)

open Fieldlib
open Argument

let phases = [ "hello"; "commit"; "query"; "answer"; "verdict" ]

let h_latency =
  List.map (fun ph -> (ph, Zobs.Histogram.make ("wire.latency_us." ^ ph))) phases

let observe_latency phase us =
  match List.assoc_opt phase h_latency with
  | Some h -> Zobs.Histogram.observe h us
  | None -> ()

let send ?stats conn codec msg =
  let b = Zwire.encode ?codec msg in
  let phase = Zwire.phase_of_msg msg in
  Zobs.Span.with_ ~name:"net.send" ~attrs:[ ("phase", phase) ] (fun () -> Znet.send conn b);
  match stats with
  | Some c -> Znet.Svcstats.record_sent c ~phase (Bytes.length b)
  | None -> ()

(* One framed receive + decode. The latency histogram sees the whole wait —
   peer think time plus network — which is exactly what a stalled phase
   looks like from this side of the wire. *)
let recv ?stats conn codec =
  let t0 = Unix.gettimeofday () in
  let raw = Zobs.Span.with_ ~name:"net.recv" (fun () -> Znet.recv conn) in
  let m = Zwire.decode ?codec raw in
  let phase = Zwire.phase_of_msg m in
  observe_latency phase (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  (match stats with
  | Some c -> Znet.Svcstats.record_recv c ~phase (Bytes.length raw)
  | None -> ());
  m

(* ---- Verifier (client) side ---- *)

let run_conn ?(config = default_config) ?trace_id (comp : computation) ~(prg : Chacha.Prg.t)
    ~(inputs : Fp.el array array) (conn : Znet.conn) : batch_result =
  Zobs.Span.with_ ~name:"argument.run_remote"
    ~attrs:[ ("instances", string_of_int (Array.length inputs)) ]
  @@ fun () ->
  let vs = Verifier_session.create ~config ?trace_id comp ~prg ~inputs in
  let codec = Some (Verifier_session.codec vs) in
  send conn codec (Verifier_session.initial vs);
  let rec pump () =
    match Verifier_session.on_msg vs (recv conn codec) with
    | `Send m ->
      send conn codec m;
      pump ()
    | `Finished (Some m) -> send conn codec m
    | `Finished None -> ()
  in
  pump ();
  Verifier_session.result vs

let run_connect ?config ?trace_id ?timeout_ms ~addr (comp : computation) ~prg ~inputs :
    batch_result =
  let conn = Znet.connect ?timeout_ms addr in
  Fun.protect
    ~finally:(fun () -> Znet.close conn)
    (fun () -> run_conn ?config ?trace_id comp ~prg ~inputs conn)

(* ---- Prover (server) side ---- *)

(* Serve one connection to completion. Anything the wire or the session
   objects to — malformed frames, protocol violations, invalid group
   parameters — is reported to the peer as an Error_msg before giving up;
   transport failures (peer already gone) are swallowed, there is nobody
   left to tell. *)
let handle_conn ?(config = default_config) ?stats ~lookup ~(prg : Chacha.Prg.t)
    (conn : Znet.conn) : unit =
  let ps = Prover_session.create ~config ~lookup ~prg () in
  let step () =
    let m = recv ?stats conn (Prover_session.codec ps) in
    let phase = Zwire.phase_of_msg m in
    let t0 = Unix.gettimeofday () in
    (match (m, stats) with
    | Zwire.Hello h, Some c -> Znet.Svcstats.set_digest c h.Zwire.digest
    | _ -> ());
    let finish r =
      (match stats with
      | Some c -> Znet.Svcstats.record_phase_time c ~phase (Unix.gettimeofday () -. t0)
      | None -> ());
      r
    in
    match Prover_session.on_msg ps m with
    | `Send reply ->
      (* Fetch the codec after on_msg: the transition may have extended it
         (Hello fixes the field, Commit_request the group). *)
      send ?stats conn (Prover_session.codec ps) reply;
      finish true
    | `Finished (Some reply) ->
      send ?stats conn (Prover_session.codec ps) reply;
      finish false
    | `Finished None -> finish false
  in
  let report msg =
    try send ?stats conn (Prover_session.codec ps) (Zwire.Error_msg msg)
    with Znet.Net_error _ -> ()
  in
  try
    while step () do
      ()
    done
  with
  | Session_error m ->
    report m;
    raise (Session_error m)
  | Zwire.Decode_error e ->
    Znet.Svcstats.record_decode_error ();
    let m = "malformed message: " ^ Zwire.error_to_string e in
    report m;
    raise (Session_error m)
  | Invalid_argument m ->
    let m = "invalid parameters: " ^ m in
    report m;
    raise (Session_error m)

(* ---- Metrics endpoint ---- *)

let metrics_render () = Zobs.Prometheus.render ~extra:(Znet.Svcstats.prometheus ()) ()
let metrics_json () = Zobs.Json.to_string (Znet.Svcstats.json ())

(* Routes: /metrics (Prometheus text, also served at /), /json, /healthz
   (built into Metrics_http; [ready] gates it — the farm flips it once its
   accept loop is live), and /profile (folded stacks from the sampling
   profiler when the server runs one, else the completed-span folding —
   the latter is only meaningful on the sequential path). *)
let start_metrics ?ready ?profile addr =
  let profile_body () =
    match profile with Some f -> f () | None -> Zobs.Sink.folded_stacks ()
  in
  Znet.Metrics_http.start ?healthz:ready addr ~render:(fun path ->
      match path with
      | "/metrics" | "/" -> Some ("text/plain; version=0.0.4", metrics_render ())
      | "/json" -> Some ("application/json", metrics_json ())
      | "/profile" -> Some ("text/plain", profile_body ())
      | _ -> None)

type log = string -> unit

let serve ?(config = default_config) ~lookup ?(seed = "zaatar prover") ?(once = false)
    ?timeout_ms ?metrics_listen ?trace_dir ?(log : log = prerr_endline) (addr : string) : unit
    =
  let srv = Znet.listen addr in
  log (Printf.sprintf "listening on %s" (Znet.bound_addr srv));
  let metrics = Option.map start_metrics metrics_listen in
  (match metrics with
  | Some m -> log (Printf.sprintf "metrics on %s" (Znet.Metrics_http.bound_addr m))
  | None -> ());
  let serve_one () =
    let conn = Znet.accept srv in
    (match timeout_ms with Some ms -> Znet.set_timeout conn ms | None -> ());
    let stats = Znet.Svcstats.begin_conn ~peer:(Znet.peer conn) in
    let cid = stats.Znet.Svcstats.id in
    let conn_fields more =
      Zobs.Log.int "conn" cid :: Zobs.Log.str "peer" (Znet.peer conn) :: more
    in
    Zobs.Log.info ~fields:(conn_fields []) "connection accepted";
    (* Mark the span buffer so the sidecar trace holds only this
       connection's events. *)
    let mark = Zobs.Span.event_count () in
    (* A fresh PRG per connection: only adversarial strategies draw from
       it, and each session's transcript must not depend on its
       predecessors. *)
    let prg = Chacha.Prg.create ~seed () in
    (try
       handle_conn ~config ~stats ~lookup ~prg conn;
       Znet.Svcstats.end_conn stats `Ok;
       Zobs.Log.info
         ~fields:(conn_fields [ Zobs.Log.str "digest" stats.Znet.Svcstats.digest ])
         "session complete";
       log "session complete"
     with
    | Session_error m ->
      Znet.Svcstats.end_conn stats (`Error m);
      Zobs.Log.error
        ~fields:(conn_fields [ Zobs.Log.str "digest" stats.Znet.Svcstats.digest;
                               Zobs.Log.str "cause" m ])
        "session error";
      log ("session error: " ^ m)
    | Znet.Net_error e ->
      (match e with Znet.Timeout _ -> Znet.Svcstats.record_timeout () | _ -> ());
      let m = Znet.error_to_string e in
      Znet.Svcstats.end_conn stats (`Error m);
      Zobs.Log.error ~fields:(conn_fields [ Zobs.Log.str "cause" m ]) "connection error";
      log ("connection error: " ^ m));
    Znet.close conn;
    match trace_dir with
    | Some dir when Zobs.enabled () ->
      let path = Filename.concat dir (Printf.sprintf "prover_conn%d.json" cid) in
      Zobs.Sink.write_chrome_trace ~pid:1 ~process_name:"prover"
        ~events:(Zobs.Span.events_since mark) path;
      log (Printf.sprintf "trace written to %s" path)
    | _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      Znet.close_server srv;
      match metrics with Some m -> Znet.Metrics_http.stop m | None -> ())
    (fun () ->
      serve_one ();
      while not once do
        serve_one ()
      done)
