(* Zwire: versioned, length-prefixed binary codec for the split V/P
   argument protocol (DESIGN.md §9). Explicit encode/decode per message —
   no Marshal — with a Decode_error taxonomy so a hostile or corrupted
   peer produces a diagnosable error, never a crash or a silently reduced
   element.

   Frame layout:   "ZW" | version u8 | tag u8 | payload length u32 BE | payload
   Naturals:       u16 byte count | little-endian bytes
   Field/group el: fixed-width little-endian, width = bytes of the modulus,
                   decoded with a strict < modulus range check
   Vectors:        u32 BE count | elements *)

open Fieldlib
open Zcrypto

let magic = "ZW"

(* Version 2 extends Hello with the distributed trace id. Version 1 frames
   are still accepted (the Hello payload just lacks the trailing trace_id
   field, decoded as ""), so old verifiers interoperate with new provers;
   anything newer than [version] is rejected with Bad_version, which the
   serve path reports to the peer as an Error_msg before closing. *)
let version = 2
let min_version = 1

type error =
  | Truncated of string
  | Bad_magic
  | Bad_version of int
  | Bad_tag of int
  | Out_of_range of string
  | Trailing_bytes of int
  | Missing_context of string

exception Decode_error of error

let error_to_string = function
  | Truncated what -> Printf.sprintf "truncated while reading %s" what
  | Bad_magic -> "bad magic (expected \"ZW\")"
  | Bad_version v -> Printf.sprintf "unsupported wire version %d (speak version %d)" v version
  | Bad_tag t -> Printf.sprintf "unknown message tag %d" t
  | Out_of_range what -> Printf.sprintf "out-of-range %s" what
  | Trailing_bytes n -> Printf.sprintf "%d trailing byte(s) after message" n
  | Missing_context what -> Printf.sprintf "decoder is missing context: %s" what

let fail e = raise (Decode_error e)

type hello = {
  digest : string;
  modulus : Nat.t;
  rho : int;
  rho_lin : int;
  p_bits : int;
  inputs : Fp.el array array;
  trace_id : string; (* v2+: distributed trace id; "" = no trace *)
}

type commit_request = {
  group_p : Nat.t;
  group_q : Nat.t;
  group_g : Group.element;
  y_z : Group.element;
  y_h : Group.element;
  enc_r_z : Elgamal.ciphertext array;
  enc_r_h : Elgamal.ciphertext array;
}

type queries = {
  z_queries : Fp.el array array;
  h_queries : Fp.el array array;
  t_z : Fp.el array;
  t_h : Fp.el array;
}

type instance_answers = {
  claimed_io : Fp.el array;
  claimed_output : Fp.el array;
  z_resp : Fp.el array;
  h_resp : Fp.el array;
  a_t_z : Fp.el;
  a_t_h : Fp.el;
}

type msg =
  | Hello of hello
  | Hello_ok of string
  | Commit_request of commit_request
  | Commitments of (Elgamal.ciphertext * Elgamal.ciphertext) array
  | Queries of queries
  | Answers of instance_answers array
  | Verdicts of bool array
  | Error_msg of string

let tag_of_msg = function
  | Hello _ -> 1
  | Hello_ok _ -> 2
  | Commit_request _ -> 3
  | Commitments _ -> 4
  | Queries _ -> 5
  | Answers _ -> 6
  | Verdicts _ -> 7
  | Error_msg _ -> 8

let phase_of_tag = function
  | 1 | 2 -> "hello"
  | 3 | 4 -> "commit"
  | 5 -> "query"
  | 6 -> "answer"
  | 7 -> "verdict"
  | _ -> "hello" (* Error_msg and unknowns: accounted with session setup *)

let phase_of_msg m = phase_of_tag (tag_of_msg m)

type codec = { field : Fp.ctx; group_p : Nat.t option }

let codec ?group_p field = { field; group_p }

(* ------------------------------------------------------------------ *)
(* Byte accounting (Zobs)                                              *)
(* ------------------------------------------------------------------ *)

let phases = [ "hello"; "commit"; "query"; "answer"; "verdict" ]
let c_sent = Zobs.Counter.make "wire.bytes.sent"
let c_recv = Zobs.Counter.make "wire.bytes.recv"
let c_msgs = Zobs.Counter.make "wire.msgs"

let per_phase prefix =
  List.map (fun ph -> (ph, Zobs.Counter.make (prefix ^ "." ^ ph))) phases

let c_sent_phase = per_phase "wire.bytes.sent"
let c_recv_phase = per_phase "wire.bytes.recv"
let c_msgs_phase = per_phase "wire.msgs"

let count table phase n =
  match List.assoc_opt phase table with Some c -> Zobs.Counter.add c n | None -> ()

let count_sent phase n =
  Zobs.Counter.add c_sent n;
  Zobs.Counter.incr c_msgs;
  count c_sent_phase phase n;
  count c_msgs_phase phase 1

let count_recv phase n =
  Zobs.Counter.add c_recv n;
  count c_recv_phase phase n

(* ------------------------------------------------------------------ *)
(* Primitive writers                                                   *)
(* ------------------------------------------------------------------ *)

let nat_bytes n = max 1 ((Nat.num_bits n + 7) / 8)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  if v < 0 || v > 0xffff then invalid_arg "Zwire: u16 out of range";
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Zwire: u32 out of range";
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_str b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

let put_nat b n =
  let len = nat_bytes n in
  put_u16 b len;
  Buffer.add_bytes b (Nat.to_bytes_le n len)

(* Fixed-width element; the caller guarantees el < modulus (always true for
   canonical Fp/group residues). *)
let put_el b ~width (e : Fp.el) = Buffer.add_bytes b (Nat.to_bytes_le (Fp.to_nat e) width)

let put_vec b ~width (v : Fp.el array) =
  put_u32 b (Array.length v);
  Array.iter (put_el b ~width) v

let put_vecs b ~width (vs : Fp.el array array) =
  put_u32 b (Array.length vs);
  Array.iter (put_vec b ~width) vs

let put_ct b ~width (ct : Elgamal.ciphertext) =
  put_el b ~width ct.Elgamal.c1;
  put_el b ~width ct.Elgamal.c2

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                   *)
(* ------------------------------------------------------------------ *)

type reader = { buf : bytes; mutable pos : int; stop : int }

let remaining r = r.stop - r.pos

let need r n what = if remaining r < n then fail (Truncated what)

let get_u8 r what =
  need r 1 what;
  let v = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u16 r what =
  let hi = get_u8 r what in
  let lo = get_u8 r what in
  (hi lsl 8) lor lo

let get_u32 r what =
  let a = get_u16 r what in
  let b = get_u16 r what in
  (a lsl 16) lor b

let get_bytes r n what =
  need r n what;
  let b = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  b

let get_str r what =
  let len = get_u16 r what in
  Bytes.to_string (get_bytes r len what)

let get_nat r what =
  let len = get_u16 r what in
  Nat.of_bytes_le (get_bytes r len what)

(* A count about to drive an [Array.init]: bound it by the bytes actually
   left in the payload so a corrupted length can never force a huge
   allocation. [min_size] is the smallest possible encoding of one item. *)
let get_count r ~min_size what =
  let n = get_u32 r what in
  if min_size > 0 && n > remaining r / min_size then fail (Truncated what);
  n

(* Element decoding goes through Fp.of_nat_opt: a transmitted residue at or
   above the modulus is rejected (Out_of_range), never silently reduced.
   Group elements carry a bare modulus (no Fp.ctx at hand), checked with
   the same strictness. *)
let get_el r ~width ~ctx what =
  let n = Nat.of_bytes_le (get_bytes r width what) in
  match Fp.of_nat_opt ctx n with Some e -> e | None -> fail (Out_of_range what)

let get_gel r ~width ~modulus what =
  let n = Nat.of_bytes_le (get_bytes r width what) in
  if Nat.compare n modulus >= 0 then fail (Out_of_range what);
  (n : Fp.el)

let get_vec r ~width ~ctx what =
  let n = get_count r ~min_size:width what in
  Array.init n (fun _ -> get_el r ~width ~ctx what)

let get_vecs r ~width ~ctx what =
  let n = get_count r ~min_size:4 what in
  Array.init n (fun _ -> get_vec r ~width ~ctx what)

let get_ct r ~width ~modulus what =
  let c1 = get_gel r ~width ~modulus what in
  let c2 = get_gel r ~width ~modulus what in
  { Elgamal.c1; c2 }

(* ------------------------------------------------------------------ *)
(* Message payloads                                                    *)
(* ------------------------------------------------------------------ *)

let field_width codec what =
  match codec with
  | Some c -> (Fp.num_bytes c.field, c.field)
  | None -> fail (Missing_context what)

let group_width codec what =
  match codec with
  | Some { group_p = Some p; _ } -> (nat_bytes p, p)
  | _ -> fail (Missing_context what)

let encode_payload ?codec ~version:v b = function
  | Hello h ->
    let width = nat_bytes h.modulus in
    put_str b h.digest;
    put_nat b h.modulus;
    put_u16 b h.rho;
    put_u16 b h.rho_lin;
    put_u16 b h.p_bits;
    put_vecs b ~width h.inputs;
    if v >= 2 then put_str b h.trace_id
  | Hello_ok digest -> put_str b digest
  | Commit_request cr ->
    let width = nat_bytes cr.group_p in
    put_nat b cr.group_p;
    put_nat b cr.group_q;
    put_el b ~width cr.group_g;
    put_el b ~width cr.y_z;
    put_el b ~width cr.y_h;
    put_u32 b (Array.length cr.enc_r_z);
    Array.iter (put_ct b ~width) cr.enc_r_z;
    put_u32 b (Array.length cr.enc_r_h);
    Array.iter (put_ct b ~width) cr.enc_r_h
  | Commitments coms ->
    let width =
      match codec with
      | Some { group_p = Some p; _ } -> nat_bytes p
      | _ -> invalid_arg "Zwire.encode: Commitments needs a codec with group_p"
    in
    put_u32 b (Array.length coms);
    Array.iter
      (fun (cz, ch) ->
        put_ct b ~width cz;
        put_ct b ~width ch)
      coms
  | Queries q ->
    let width =
      match codec with
      | Some c -> Fp.num_bytes c.field
      | None -> invalid_arg "Zwire.encode: Queries needs a codec with the field"
    in
    put_vecs b ~width q.z_queries;
    put_vecs b ~width q.h_queries;
    put_vec b ~width q.t_z;
    put_vec b ~width q.t_h
  | Answers insts ->
    let width =
      match codec with
      | Some c -> Fp.num_bytes c.field
      | None -> invalid_arg "Zwire.encode: Answers needs a codec with the field"
    in
    put_u32 b (Array.length insts);
    Array.iter
      (fun a ->
        put_vec b ~width a.claimed_io;
        put_vec b ~width a.claimed_output;
        put_vec b ~width a.z_resp;
        put_vec b ~width a.h_resp;
        put_el b ~width a.a_t_z;
        put_el b ~width a.a_t_h)
      insts
  | Verdicts vs ->
    put_u32 b (Array.length vs);
    Array.iter (fun v -> put_u8 b (if v then 1 else 0)) vs
  | Error_msg s ->
    let s = if String.length s > 0xffff then String.sub s 0 0xffff else s in
    put_str b s

let decode_payload ?codec ~version:v r tag =
  match tag with
  | 1 ->
    let digest = get_str r "hello.digest" in
    let modulus = get_nat r "hello.modulus" in
    let ctx =
      if Nat.compare modulus (Nat.of_int 3) < 0 || Nat.is_even modulus then
        fail (Out_of_range "hello.modulus")
      else try Fp.create modulus with Invalid_argument _ -> fail (Out_of_range "hello.modulus")
    in
    let rho = get_u16 r "hello.rho" in
    let rho_lin = get_u16 r "hello.rho_lin" in
    let p_bits = get_u16 r "hello.p_bits" in
    let inputs = get_vecs r ~width:(nat_bytes modulus) ~ctx "hello.inputs" in
    let trace_id = if v >= 2 then get_str r "hello.trace_id" else "" in
    Hello { digest; modulus; rho; rho_lin; p_bits; inputs; trace_id }
  | 2 -> Hello_ok (get_str r "hello_ok.digest")
  | 3 ->
    let group_p = get_nat r "commit.group_p" in
    if Nat.compare group_p (Nat.of_int 3) < 0 then fail (Out_of_range "commit.group_p");
    let group_q = get_nat r "commit.group_q" in
    let width = nat_bytes group_p in
    let modulus = group_p in
    let group_g = get_gel r ~width ~modulus "commit.group_g" in
    let y_z = get_gel r ~width ~modulus "commit.y_z" in
    let y_h = get_gel r ~width ~modulus "commit.y_h" in
    let nz = get_count r ~min_size:(2 * width) "commit.enc_r_z" in
    let enc_r_z = Array.init nz (fun _ -> get_ct r ~width ~modulus "commit.enc_r_z") in
    let nh = get_count r ~min_size:(2 * width) "commit.enc_r_h" in
    let enc_r_h = Array.init nh (fun _ -> get_ct r ~width ~modulus "commit.enc_r_h") in
    Commit_request { group_p; group_q; group_g; y_z; y_h; enc_r_z; enc_r_h }
  | 4 ->
    let width, modulus = group_width codec "commitments (group parameters)" in
    let n = get_count r ~min_size:(4 * width) "commitments" in
    Commitments
      (Array.init n (fun _ ->
           let cz = get_ct r ~width ~modulus "commitments.com_z" in
           let ch = get_ct r ~width ~modulus "commitments.com_h" in
           (cz, ch)))
  | 5 ->
    let width, ctx = field_width codec "queries (field modulus)" in
    let z_queries = get_vecs r ~width ~ctx "queries.z" in
    let h_queries = get_vecs r ~width ~ctx "queries.h" in
    let t_z = get_vec r ~width ~ctx "queries.t_z" in
    let t_h = get_vec r ~width ~ctx "queries.t_h" in
    Queries { z_queries; h_queries; t_z; t_h }
  | 6 ->
    let width, ctx = field_width codec "answers (field modulus)" in
    let n = get_count r ~min_size:(16 + (2 * width)) "answers" in
    Answers
      (Array.init n (fun _ ->
           let claimed_io = get_vec r ~width ~ctx "answers.claimed_io" in
           let claimed_output = get_vec r ~width ~ctx "answers.claimed_output" in
           let z_resp = get_vec r ~width ~ctx "answers.z_resp" in
           let h_resp = get_vec r ~width ~ctx "answers.h_resp" in
           let a_t_z = get_el r ~width ~ctx "answers.a_t_z" in
           let a_t_h = get_el r ~width ~ctx "answers.a_t_h" in
           { claimed_io; claimed_output; z_resp; h_resp; a_t_z; a_t_h }))
  | 7 ->
    let n = get_count r ~min_size:1 "verdicts" in
    Verdicts
      (Array.init n (fun _ ->
           match get_u8 r "verdicts" with
           | 0 -> false
           | 1 -> true
           | _ -> fail (Out_of_range "verdicts (not 0/1)")))
  | 8 -> Error_msg (get_str r "error message")
  | t -> fail (Bad_tag t)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let header_len = 2 + 1 + 1 + 4

let encode ?codec ?(version = version) m =
  if version < min_version || version > 2 then
    invalid_arg (Printf.sprintf "Zwire.encode: cannot speak version %d" version);
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  put_u8 b version;
  put_u8 b (tag_of_msg m);
  put_u32 b 0 (* payload length backpatched below *);
  encode_payload ?codec ~version b m;
  let out = Buffer.to_bytes b in
  let plen = Bytes.length out - header_len in
  Bytes.set_uint8 out 4 ((plen lsr 24) land 0xff);
  Bytes.set_uint8 out 5 ((plen lsr 16) land 0xff);
  Bytes.set_uint8 out 6 ((plen lsr 8) land 0xff);
  Bytes.set_uint8 out 7 (plen land 0xff);
  count_sent (phase_of_msg m) (Bytes.length out);
  out

let decode ?codec (buf : bytes) =
  let r = { buf; pos = 0; stop = Bytes.length buf } in
  need r 2 "magic";
  if Bytes.get r.buf 0 <> magic.[0] || Bytes.get r.buf 1 <> magic.[1] then fail Bad_magic;
  r.pos <- 2;
  let v = get_u8 r "version" in
  if v < min_version || v > version then fail (Bad_version v);
  let tag = get_u8 r "tag" in
  let plen = get_u32 r "payload length" in
  if plen > remaining r then fail (Truncated "payload");
  let stop = r.pos + plen in
  if Bytes.length buf > stop then fail (Trailing_bytes (Bytes.length buf - stop));
  let r = { r with stop } in
  let m = decode_payload ?codec ~version:v r tag in
  if remaining r <> 0 then fail (Trailing_bytes (remaining r));
  count_recv (phase_of_tag tag) (Bytes.length buf);
  m

(* ------------------------------------------------------------------ *)
(* Busy / retry-after convention                                       *)
(* ------------------------------------------------------------------ *)

(* Load shedding rides on Error_msg rather than a new tag: version-2 peers
   already decode it, and bumping the protocol version would change every
   frame's version byte and break the digest-pinned transcripts. The
   payload is machine-parsable by prefix. *)

let busy_prefix = "busy retry-after-ms="

let busy_msg ~retry_after_ms =
  Error_msg (Printf.sprintf "%s%d" busy_prefix (max 0 retry_after_ms))

let retry_after_of_error s =
  let k = String.length busy_prefix in
  if String.length s > k && String.sub s 0 k = busy_prefix then
    int_of_string_opt (String.sub s k (String.length s - k))
  else None

let is_busy = function Error_msg s -> retry_after_of_error s <> None | _ -> false

(* ------------------------------------------------------------------ *)
(* Structural equality (tests)                                         *)
(* ------------------------------------------------------------------ *)

let arr_eq eq a b = Array.length a = Array.length b && Array.for_all2 eq a b
let el_eq = Fp.equal
let vec_eq = arr_eq el_eq
let vecs_eq = arr_eq vec_eq

let ct_eq (a : Elgamal.ciphertext) (b : Elgamal.ciphertext) =
  el_eq a.Elgamal.c1 b.Elgamal.c1 && el_eq a.Elgamal.c2 b.Elgamal.c2

let msg_equal a b =
  match (a, b) with
  | Hello x, Hello y ->
    x.digest = y.digest && Nat.equal x.modulus y.modulus && x.rho = y.rho
    && x.rho_lin = y.rho_lin && x.p_bits = y.p_bits && vecs_eq x.inputs y.inputs
    && x.trace_id = y.trace_id
  | Hello_ok x, Hello_ok y -> x = y
  | Commit_request x, Commit_request y ->
    Nat.equal x.group_p y.group_p && Nat.equal x.group_q y.group_q
    && el_eq x.group_g y.group_g && el_eq x.y_z y.y_z && el_eq x.y_h y.y_h
    && arr_eq ct_eq x.enc_r_z y.enc_r_z
    && arr_eq ct_eq x.enc_r_h y.enc_r_h
  | Commitments x, Commitments y ->
    arr_eq (fun (a1, a2) (b1, b2) -> ct_eq a1 b1 && ct_eq a2 b2) x y
  | Queries x, Queries y ->
    vecs_eq x.z_queries y.z_queries && vecs_eq x.h_queries y.h_queries && vec_eq x.t_z y.t_z
    && vec_eq x.t_h y.t_h
  | Answers x, Answers y ->
    arr_eq
      (fun (p : instance_answers) (q : instance_answers) ->
        vec_eq p.claimed_io q.claimed_io
        && vec_eq p.claimed_output q.claimed_output
        && vec_eq p.z_resp q.z_resp && vec_eq p.h_resp q.h_resp && el_eq p.a_t_z q.a_t_z
        && el_eq p.a_t_h q.a_t_h)
      x y
  | Verdicts x, Verdicts y -> x = y
  | Error_msg x, Error_msg y -> x = y
  | _ -> false
