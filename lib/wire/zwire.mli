(** Zwire: the versioned binary wire format for the split verifier/prover
    argument (DESIGN.md §9).

    Every message is a self-delimiting frame

    {v
    "ZW" | version (1 byte) | tag (1 byte) | payload length (u32 BE) | payload
    v}

    carrying one protocol message: the verifier's hello (computation
    identified by R1CS digest, plus the batch inputs), the commitment
    request Enc(r), the prover's commitments, the PCP queries + decommit
    vectors, the prover's decommit answers, and the final verdicts. Field
    and group elements travel as fixed-width little-endian naturals whose
    width is derived from the relevant modulus; decoding rejects
    out-of-range elements instead of reducing them. Malformed input raises
    {!Decode_error} with an explicit taxonomy — never [Marshal], never a
    bare exception.

    Byte and message counts are recorded on the Zobs counters
    [wire.bytes.sent], [wire.bytes.recv] and [wire.msgs], each with a
    [.<phase>] breakdown (hello/commit/query/answer/verdict). *)

open Fieldlib
open Zcrypto

val magic : string
(** ["ZW"] — the two header magic bytes. *)

val version : int
(** Current wire version (2). Version 2 extends Hello with a distributed
    trace id; frames from [min_version] up are still decoded. *)

val min_version : int
(** Oldest wire version this peer still decodes (1). A frame whose version
    byte is below [min_version] or above [version] raises
    [Decode_error (Bad_version _)]. *)

(** {1 Decode errors} *)

type error =
  | Truncated of string  (** ran out of bytes while reading the named item *)
  | Bad_magic
  | Bad_version of int
  | Bad_tag of int
  | Out_of_range of string  (** element or count outside its valid range *)
  | Trailing_bytes of int  (** well-formed message followed by junk *)
  | Missing_context of string  (** decoding needed a codec the caller did not supply *)

exception Decode_error of error

val error_to_string : error -> string

(** {1 Messages} *)

type hello = {
  digest : string;  (** R1CS digest identifying the computation (Serialize.system_digest) *)
  modulus : Nat.t;  (** PCP field modulus; fixes the element width downstream *)
  rho : int;
  rho_lin : int;
  p_bits : int;
  inputs : Fp.el array array;  (** one input vector per batch instance *)
  trace_id : string;
      (** v2+: distributed trace id minted by the verifier; [""] = no trace.
          Absent on the wire in version-1 frames (decoded as [""]). *)
}

type commit_request = {
  group_p : Nat.t;  (** ElGamal group modulus; fixes the group-element width *)
  group_q : Nat.t;  (** subgroup order (= the PCP field modulus) *)
  group_g : Group.element;
  y_z : Group.element;  (** public key for the pi_z commitment *)
  y_h : Group.element;  (** public key for the pi_h commitment *)
  enc_r_z : Elgamal.ciphertext array;
  enc_r_h : Elgamal.ciphertext array;
}

type queries = {
  z_queries : Fp.el array array;
  h_queries : Fp.el array array;
  t_z : Fp.el array;  (** decommit vector for pi_z *)
  t_h : Fp.el array;  (** decommit vector for pi_h *)
}

type instance_answers = {
  claimed_io : Fp.el array;
  claimed_output : Fp.el array;
  z_resp : Fp.el array;
  h_resp : Fp.el array;
  a_t_z : Fp.el;
  a_t_h : Fp.el;
}

type msg =
  | Hello of hello  (** V -> P *)
  | Hello_ok of string  (** P -> V: digest echo *)
  | Commit_request of commit_request  (** V -> P *)
  | Commitments of (Elgamal.ciphertext * Elgamal.ciphertext) array
      (** P -> V: (com_z, com_h) per instance *)
  | Queries of queries  (** V -> P *)
  | Answers of instance_answers array  (** P -> V *)
  | Verdicts of bool array  (** V -> P: accept/reject per instance *)
  | Error_msg of string  (** either direction; the session then closes *)

val tag_of_msg : msg -> int
val phase_of_msg : msg -> string
(** hello | commit | query | answer | verdict. *)

(** {1 Codec} *)

type codec = {
  field : Fp.ctx;  (** established by the Hello message *)
  group_p : Nat.t option;  (** established by the Commit_request message *)
}

val codec : ?group_p:Nat.t -> Fp.ctx -> codec

val encode : ?codec:codec -> ?version:int -> msg -> bytes
(** Encode one framed message. [Hello], [Hello_ok], [Commit_request],
    [Verdicts] and [Error_msg] are self-contained; [Queries] and [Answers]
    need [codec.field], [Commitments] needs [codec.group_p]. Raises
    [Invalid_argument] when the needed context is missing (a programming
    error on the sending side), or when [version] is outside
    [[min_version, version]] (useful in tests to emit downlevel frames).
    Records [wire.bytes.sent]. *)

val decode : ?codec:codec -> bytes -> msg
(** Decode one framed message; raises {!Decode_error} on malformed input
    and [Decode_error (Missing_context _)] when the message class needs a
    codec that was not supplied. Records [wire.bytes.recv]. *)

val msg_equal : msg -> msg -> bool
(** Structural message equality (round-trip tests). *)

(** {1 Busy / retry-after}

    Load shedding uses a machine-parsable [Error_msg] payload
    (["busy retry-after-ms=N"]) instead of a new message tag, so
    version-2 peers decode it unchanged and framed transcripts keep their
    pinned digests. *)

val busy_msg : retry_after_ms:int -> msg
(** The shedding reply: an [Error_msg] carrying the retry hint
    (milliseconds, clamped to >= 0). *)

val retry_after_of_error : string -> int option
(** Parse an [Error_msg] payload back into the retry-after hint; [None]
    for ordinary error text. *)

val is_busy : msg -> bool
(** Is this message a {!busy_msg}? *)
