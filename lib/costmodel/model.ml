(* Figure 3, executable: the closed-form CPU cost model for both Zaatar and
   Ginger, parameterized by the measured microbenchmarks (Params.t) and the
   encoding statistics produced by the compiler.

   The paper uses this model two ways, and so do we:
   (1) to *estimate* Ginger's costs at scales where running it is
       infeasible (|u_ginger| is quadratic; §5.1: "we use estimates, rather
       than empirics, because the computations would be too expensive under
       Ginger");
   (2) to validate Zaatar empirics ("the empirical CPU costs are 5-15%
       larger than the model's predictions").  *)

type sizes = {
  z_ginger : int; (* |Z_ginger| *)
  c_ginger : int; (* |C_ginger| *)
  z_zaatar : int;
  c_zaatar : int;
  k : int; (* additive terms in C_ginger *)
  k2 : int; (* distinct degree-2 terms *)
  n_x : int; (* |x| *)
  n_y : int; (* |y| *)
  t_local : float; (* T: running time of Psi, seconds *)
}

type protocol_params = { rho : int; rho_lin : int }

let log2 x = log (float_of_int (max 2 x)) /. log 2.0

let fi = float_of_int

(* ---- proof vector sizes (first rows of Figure 3) ---- *)

let u_ginger s = s.z_ginger + (s.z_ginger * s.z_ginger)
let u_zaatar s = s.z_zaatar + s.c_zaatar + 1

(* NTT-backend sizes (DESIGN.md §13): the constraints are padded to the
   power-of-two domain n, so the h vector has n coefficients (vs |C|+1)
   and the proof vector is |Z| + n. [h_len]/[u_len] abstract over the
   backend: [ntt_domain = Some n] is the roots-of-unity pipeline,
   [None] the paper's arithmetic-progression pipeline. *)
let log2i n =
  let rec go acc m = if m <= 1 then acc else go (acc + 1) (m lsr 1) in
  go 0 n

let h_len ~ntt_domain s =
  match ntt_domain with Some n -> n | None -> s.c_zaatar + 1

let u_len ~ntt_domain s = s.z_zaatar + h_len ~ntt_domain s

(* Exact butterfly count of the packed prover_h pipeline: three size-n
   inverse NTTs (interpolation) plus three size-2n transforms (product),
   each size-m transform performing (m/2) log2 m butterflies. *)
let ntt_butterflies n = (3 * (n / 2) * log2i n) + (3 * n * (log2i n + 1))

(* Field multiplications of the same pipeline: one per butterfly, plus the
   1/m scaling of each inverse (3n + 2n) and the 2n pointwise products. *)
let ntt_muls n = ntt_butterflies n + (7 * n)

(* ---- prover ---- *)

type prover_costs = { construct_u : float; issue_responses : float; total_p : float }

(* The commit/answer pipeline does not pay [h] once per proof-vector
   term: the DESIGN.md §8 kernels (fixed-base windows, Shamir,
   Pippenger bucketing) share one squaring chain across the whole
   vector. Model the effect as the op-count ratio of an n-term
   multi-exponentiation with b-bit exponents — independent ladders cost
   1.5*n*b group multiplications, bucket aggregation (b/c)*(n + 2^c)
   with c ~ log2 n — the same arithmetic [Montgomery.multi_pow]
   implements and the multiexp experiment measures (~5-10x at bench
   sizes). *)
let multiexp_speedup ~bits n =
  let c = max 1 (log2i (max 2 n)) in
  let ladder = 1.5 *. fi n *. fi bits in
  let bucketed = fi bits /. fi c *. (fi n +. fi (1 lsl c)) in
  Float.max 1.0 (ladder /. bucketed)

let zaatar_prover ?(ntt_domain : int option) ?(exp_bits = 127) (p : Params.t)
    (pp : protocol_params) s =
  let ell' = (6 * pp.rho_lin) + 4 in
  let construct_u =
    match ntt_domain with
    | None ->
      (* Subproduct-tree interpolate-multiply-divide: O(|C| log^2 |C|). *)
      s.t_local +. (3.0 *. p.Params.f *. fi s.c_zaatar *. (log2 s.c_zaatar ** 2.0))
    | Some n ->
      (* NTT pipeline: ~4.5 n log n + 10 n multiplications (see ntt_muls). *)
      s.t_local +. (p.Params.f *. fi (ntt_muls n))
  in
  let u = u_len ~ntt_domain s in
  let issue_responses =
    ((p.Params.h /. multiexp_speedup ~bits:exp_bits u)
    +. ((fi (pp.rho * ell') +. 1.0) *. p.Params.f))
    *. fi u
  in
  { construct_u; issue_responses; total_p = construct_u +. issue_responses }

let ginger_prover (p : Params.t) (pp : protocol_params) s =
  let ell = (3 * pp.rho_lin) + 2 in
  let construct_u = s.t_local +. (p.Params.f *. fi (s.z_ginger * s.z_ginger)) in
  let issue_responses =
    (p.Params.h +. ((fi (pp.rho * ell) +. 1.0) *. p.Params.f)) *. fi (u_ginger s)
  in
  { construct_u; issue_responses; total_p = construct_u +. issue_responses }

(* ---- verifier ---- *)

type verifier_costs = {
  specific_per_batch : float; (* computation-specific query construction *)
  oblivious_per_batch : float; (* computation-oblivious query construction *)
  process_per_instance : float;
}

let zaatar_verifier (p : Params.t) (pp : protocol_params) s =
  let ell' = (6 * pp.rho_lin) + 4 in
  let specific =
    fi pp.rho
    *. (p.Params.c
       +. ((p.Params.f_div +. (5.0 *. p.Params.f)) *. fi s.c_zaatar)
       +. (p.Params.f *. fi s.k)
       +. (3.0 *. p.Params.f *. fi s.k2))
  in
  let oblivious =
    (p.Params.e +. (2.0 *. p.Params.c)
    +. (fi pp.rho *. ((2.0 *. fi pp.rho_lin *. p.Params.c) +. (fi ell' *. p.Params.f))))
    *. fi (u_zaatar s)
  in
  let process =
    p.Params.d +. (fi pp.rho *. fi (ell' + (3 * s.n_x) + (3 * s.n_y)) *. p.Params.f)
  in
  { specific_per_batch = specific; oblivious_per_batch = oblivious; process_per_instance = process }

let ginger_verifier (p : Params.t) (pp : protocol_params) s =
  let ell = (3 * pp.rho_lin) + 2 in
  let specific =
    fi pp.rho *. ((p.Params.c *. fi s.c_ginger) +. (p.Params.f *. fi s.k))
  in
  let oblivious =
    (p.Params.e +. (2.0 *. p.Params.c)
    +. (fi pp.rho *. ((2.0 *. fi pp.rho_lin *. p.Params.c) +. (fi (ell + 1) *. p.Params.f))))
    *. fi (u_ginger s)
  in
  let process =
    p.Params.d +. (fi pp.rho *. fi ((2 * ell) + s.n_x + s.n_y) *. p.Params.f)
  in
  { specific_per_batch = specific; oblivious_per_batch = oblivious; process_per_instance = process }

(* ---- break-even batch size (§2.2): the smallest beta at which verifying
   the batch beats executing it locally. ---- *)

let breakeven (v : verifier_costs) ~t_local : int option =
  let setup = v.specific_per_batch +. v.oblivious_per_batch in
  let margin = t_local -. v.process_per_instance in
  if margin <= 0.0 then None else Some (max 1 (int_of_float (ceil (setup /. margin))))

let zaatar_breakeven p pp s = breakeven (zaatar_verifier p pp s) ~t_local:s.t_local
let ginger_breakeven p pp s = breakeven (ginger_verifier p pp s) ~t_local:s.t_local

(* ---- op-level audit (Zledger) ----

   Figure 3 written as *counts* instead of seconds: closed-form predictions
   for how many of each primitive operation every protocol phase performs,
   cross-checked against the live op ledger (Zobs.Ledger). This is the
   paper's 5-15% claim pushed down one level — where a wall-clock delta can
   hide compensating errors, an op-count delta cannot.

   Structural counts (e per batch, d per instance, c draws) follow exactly
   from the protocol shape, so their bands are tight. f-rows get wider
   documented bands: the model's closed forms are asymptotic (construct_u's
   3|C|log^2|C|) while the implementation has concrete constants, and some
   kernels intentionally beat the model (batch_inv folds the predicted
   rho*|C| divisions per repetition into one inversion — kept as an
   ungated informational row). DESIGN.md §12 documents every band. *)

type audit_row = {
  phase : string;
  op : string;
  predicted : float;
  ledgered : int;
  ratio : float; (* ledgered / predicted; 1.0 when both are zero *)
  lo : float;
  hi : float; (* documented acceptance band on [ratio] *)
  gated : bool; (* false = informational, never fails the audit *)
  pass : bool;
  note : string;
}

let row ~phase ~op ~predicted ~ledgered ~band:(lo, hi) ~gated ~note =
  let ratio =
    if predicted = 0.0 then if ledgered = 0 then 1.0 else infinity
    else float_of_int ledgered /. predicted
  in
  { phase; op; predicted; ledgered; ratio; lo; hi; gated; pass = ratio >= lo && ratio <= hi; note }

(* Commit-phase op counts, per batch of [beta] instances: the verifier
   encrypts r once per proof-vector element (e = |u| exactly), the prover
   answers with one homomorphic accumulate step per nonzero u entry
   (h <= beta * |u|, with equality for dense u). Pure crypto: the
   commit phase performs no PCP-field multiplications at all. *)
type commit_ops = { e_count : int; h_count : int; f_count : int }

let commit_phase_ops s ~beta =
  let u = u_zaatar s in
  { e_count = u; h_count = beta * u; f_count = 0 }

let zaatar_op_audit ?(ntt_domain : int option) (pp : protocol_params) s ~beta
    ~(ledger : string -> Zobs.Ledger.phase option) : audit_row list =
  let n' = s.z_zaatar in
  let hl = h_len ~ntt_domain s in
  let u = u_len ~ntt_domain s in
  let ell' = (6 * pp.rho_lin) + 4 in
  let nzq = pp.rho * ((3 * pp.rho_lin) + 3) in
  let nhq = pp.rho * ((3 * pp.rho_lin) + 1) in
  let ops name =
    match ledger name with Some p -> p.Zobs.Ledger.ops | None -> Zobs.Ledger.zero_ops
  in
  let setup = ops "verifier_setup" in
  let per = ops "verifier_per_instance" in
  let construct = ops "construct_u" in
  let crypto = ops "crypto_ops" in
  let answer = ops "answer_queries" in
  [
    (* Verifier setup, amortized over the batch (Figure 3 "issue queries"). *)
    row ~phase:"verifier_setup" ~op:"e" ~predicted:(fi u) ~ledgered:setup.Zobs.Ledger.e
      ~band:(1.0, 1.0) ~gated:true ~note:"Enc(r): one encryption per proof-vector element";
    row ~phase:"verifier_setup" ~op:"c"
      ~predicted:(fi (2 + (2 * u) + (2 * pp.rho * pp.rho_lin * u) + pp.rho + (pp.rho * ell')))
      ~ledgered:setup.Zobs.Ledger.c ~band:(1.0, 1.01) ~gated:true
      ~note:"keygen + r,k draws + linearity queries + tau + alpha (retries add <1%)";
    row ~phase:"verifier_setup" ~op:"f"
      ~predicted:
        (fi ((nzq * n') + (nhq * hl))
        +.
        match ntt_domain with
        | None -> fi pp.rho *. fi ((5 * s.c_zaatar) + s.k + (3 * s.k2))
        | Some n ->
          (* collapsed barycentric weights: batch_inv (~3n) + weights (2n)
             + qd powers (n) + per-term accumulation (~3|C|) *)
          fi pp.rho *. fi ((6 * n) + (3 * s.c_zaatar)))
      ~ledgered:setup.Zobs.Ledger.f ~band:(0.2, 3.0) ~gated:true
      ~note:"t = r + sum alpha_i q_i accumulation + query construction (model constants)";
    row ~phase:"verifier_setup" ~op:"f_div" ~predicted:(fi (pp.rho * s.c_zaatar))
      ~ledgered:setup.Zobs.Ledger.f_div ~band:(0.0, 1.0) ~gated:false
      ~note:"batch_inv folds the model's rho*|C| divisions into ~1 inversion per repetition";
    (* Verifier per-instance processing. *)
    row ~phase:"verifier_per_instance" ~op:"d" ~predicted:(fi (2 * beta))
      ~ledgered:per.Zobs.Ledger.d ~band:(1.0, 1.0) ~gated:true
      ~note:"two consistency checks (= rearranged decryptions) per instance";
    row ~phase:"verifier_per_instance" ~op:"f_lazy" ~predicted:(fi (beta * (nzq + nhq)))
      ~ledgered:per.Zobs.Ledger.f_lazy ~band:(0.9, 1.0) ~gated:true
      ~note:"<alpha, a> dots; zero answers only remove terms";
    row ~phase:"verifier_per_instance" ~op:"f"
      ~predicted:(fi (beta * pp.rho * (2 + (3 * (s.n_x + s.n_y)))))
      ~ledgered:per.Zobs.Ledger.f ~band:(0.2, 3.0) ~gated:true
      ~note:"divisibility test + io contributions (model: rho(ell'+3nx+3ny) per instance)";
    (* Prover: construct the proof vector. On the Lagrange pipeline the
       closed form is asymptotic while the implementation is concrete (the
       known Figure-5 outlier, ROADMAP item 3), so its band is wide. The
       NTT pipeline's op count is near-exact (4.5 n log n + 10 n counted
       multiplications plus the sparse row evaluations), so its band is an
       order of magnitude tighter. *)
    (match ntt_domain with
    | None ->
      row ~phase:"construct_u" ~op:"f"
        ~predicted:(fi beta *. 3.0 *. fi s.c_zaatar *. (log2 s.c_zaatar ** 2.0))
        ~ledgered:(construct.Zobs.Ledger.f + construct.Zobs.Ledger.f_lazy) ~band:(0.02, 20.0)
        ~gated:true
        ~note:"H(t) interpolation vs 3|C|log^2|C|: the Figure-5 outlier, now visible in ops"
    | Some n ->
      row ~phase:"construct_u" ~op:"f"
        ~predicted:(fi (beta * ntt_muls n))
        ~ledgered:(construct.Zobs.Ledger.f + construct.Zobs.Ledger.f_lazy) ~band:(0.2, 3.0)
        ~gated:true
        ~note:"packed NTT prover_h: 4.5 n log n + 10 n muls plus sparse row evaluations");
    (* NTT butterflies are bulk-counted per transform, so this row is
       exact; the Lagrange pipeline must perform none at all. *)
    row ~phase:"construct_u" ~op:"butterfly"
      ~predicted:(match ntt_domain with None -> 0.0 | Some n -> fi (beta * ntt_butterflies n))
      ~ledgered:construct.Zobs.Ledger.butterfly ~band:(1.0, 1.0) ~gated:true
      ~note:
        (match ntt_domain with
        | None -> "the Lagrange pipeline performs no NTT butterflies"
        | Some _ -> "3 size-n inverse + 3 size-2n transforms, (m/2) log2 m butterflies each");
    (* Prover: commit (the crypto phase). *)
    row ~phase:"crypto_ops" ~op:"h" ~predicted:(fi (2 * beta * u)) ~ledgered:crypto.Zobs.Ledger.h
      ~band:(0.2, 1.0) ~gated:true
      ~note:"one accumulate per nonzero u entry, two commitments per instance; sparsity only shrinks it";
    row ~phase:"crypto_ops" ~op:"f" ~predicted:0.0 ~ledgered:crypto.Zobs.Ledger.f
      ~band:(1.0, 1.0) ~gated:true ~note:"the commit phase performs no PCP-field multiplications";
    (* Prover: answer the queries. *)
    row ~phase:"answer_queries" ~op:"f_lazy"
      ~predicted:(fi (beta * (((nzq + 1) * n') + ((nhq + 1) * hl))))
      ~ledgered:answer.Zobs.Ledger.f_lazy ~band:(0.2, 1.01) ~gated:true
      ~note:"pi(q) = <q, u> dots over dense queries; zero u entries only remove terms";
  ]

let audit_pass rows = List.for_all (fun r -> (not r.gated) || r.pass) rows

(* Sizes from a compiled computation plus a measured local time. *)
let sizes_of_stats (st : Zlang.Compile.stats) ~n_x ~n_y ~t_local =
  {
    z_ginger = st.Zlang.Compile.z_ginger;
    c_ginger = st.Zlang.Compile.c_ginger;
    z_zaatar = st.Zlang.Compile.z_zaatar;
    c_zaatar = st.Zlang.Compile.c_zaatar;
    k = st.Zlang.Compile.k;
    k2 = st.Zlang.Compile.k2;
    n_x;
    n_y;
    t_local;
  }
