(** Figure 3, executable: closed-form CPU cost models for the Zaatar and
    Ginger protocols, parameterized by measured microbenchmarks
    ({!Params.t}) and the compiler's encoding statistics.

    Used exactly as the paper uses its model: to estimate Ginger at sizes
    where running it is infeasible, and to validate measured Zaatar runs
    (paper: empirics within 5-15% of the model). *)

type sizes = {
  z_ginger : int;
  c_ginger : int;
  z_zaatar : int;
  c_zaatar : int;
  k : int; (** additive terms in C_ginger *)
  k2 : int; (** distinct degree-2 terms *)
  n_x : int;
  n_y : int;
  t_local : float; (** T: running time of Psi, seconds *)
}

type protocol_params = { rho : int; rho_lin : int }

val u_ginger : sizes -> int
(** |Z| + |Z|^2 *)

val u_zaatar : sizes -> int
(** |Z| + |C| + 1 *)

type prover_costs = { construct_u : float; issue_responses : float; total_p : float }

val zaatar_prover :
  ?ntt_domain:int -> ?exp_bits:int -> Params.t -> protocol_params -> sizes -> prover_costs
(** [ntt_domain = Some n] prices the roots-of-unity prover (padded domain
    n, ~4.5 n log n + 10 n multiplications for H); [None] (default) the
    paper's subproduct-tree pipeline at 3|C|log^2|C|. The homomorphic
    term is discounted by the Pippenger multi-exponentiation op ratio
    for [exp_bits]-bit exponents (default 127, the shipped field width)
    — the production commit path batches the whole proof vector through
    one bucket-aggregated multi-exp rather than per-term ladders. *)

val ginger_prover : Params.t -> protocol_params -> sizes -> prover_costs

type verifier_costs = {
  specific_per_batch : float; (** computation-specific query construction *)
  oblivious_per_batch : float; (** computation-oblivious query construction *)
  process_per_instance : float;
}

val zaatar_verifier : Params.t -> protocol_params -> sizes -> verifier_costs
val ginger_verifier : Params.t -> protocol_params -> sizes -> verifier_costs

val breakeven : verifier_costs -> t_local:float -> int option
(** Smallest batch size at which verifying beats local execution (§2.2);
    [None] if per-instance verification alone exceeds local execution. *)

val zaatar_breakeven : Params.t -> protocol_params -> sizes -> int option
val ginger_breakeven : Params.t -> protocol_params -> sizes -> int option

(** {2 Op-level audit (Zledger)}

    Figure 3 as counts instead of seconds: closed-form predictions of each
    phase's primitive-op counts, compared against the live op ledger.
    Structural rows (e, d, c draws) carry tight bands; f-rows carry wider
    documented bands (see DESIGN.md §12); rows with [gated = false] are
    informational and never fail the audit. *)

type audit_row = {
  phase : string;
  op : string;
  predicted : float;
  ledgered : int;
  ratio : float;  (** ledgered / predicted; 1.0 when both are zero *)
  lo : float;
  hi : float;  (** documented acceptance band on [ratio] *)
  gated : bool;  (** false = informational *)
  pass : bool;
  note : string;
}

type commit_ops = { e_count : int; h_count : int; f_count : int }

val commit_phase_ops : sizes -> beta:int -> commit_ops
(** Exact commit-phase op counts for a batch of [beta] instances with dense
    proof vectors: e = |u|, h = beta * |u|, f = 0. *)

val zaatar_op_audit :
  ?ntt_domain:int ->
  protocol_params ->
  sizes ->
  beta:int ->
  ledger:(string -> Zobs.Ledger.phase option) ->
  audit_row list
(** Audit a ledgered run: [ledger] is normally [Zobs.Ledger.phase].
    [ntt_domain = Some n] audits against the NTT prover pipeline's op
    counts (near-exact, so construct_u carries the tight [0.2, 3.0] band
    and an exact butterfly row); [None] against the paper's Lagrange
    pipeline (wide [0.02, 20.0] construct_u band, zero butterflies). *)

val audit_pass : audit_row list -> bool
(** All gated rows inside their bands. *)

val sizes_of_stats : Zlang.Compile.stats -> n_x:int -> n_y:int -> t_local:float -> sizes
