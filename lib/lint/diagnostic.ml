(* Zlint findings: a stable code, a severity, a location and a message.

   Code taxonomy (DESIGN.md §11):
     ZL0xx — front-end (ZL source) diagnostics
       ZL000 error  front-end rejected the program (parse/compile error)
       ZL001 error  read of a possibly-uninitialized variable
       ZL002 warn   unused variable / never-read input / never-assigned output
       ZL003 error  shadowing declaration (the compiler rejects these too)
       ZL004 warn   loop nest unrolls past the configured budget
       ZL005 info   constant condition: the mux discards a branch entirely
       ZL006 error  reference to an undefined variable
     ZR0xx — back-end (compiled R1CS) diagnostics
       ZR001 error/warn  variable appears in no constraint (unconstrained
                         witness or output: error; never-used input: warn)
       ZR002 error  variable not pinned by constraint propagation from the
                    inputs (under-determined witness; heuristic, see §11)
       ZR003 warn   duplicate constraint row
       ZR004 warn   trivially-satisfied row (A*B - C syntactically zero)
       ZR005 warn   degree-2 monomial defined by multiple product rows
                    (K2 dedup accounting failure)
       ZR006 warn   output unreachable from the inputs in the constraint
                    dependency graph
       ZR007 error  constant row that can never be satisfied
       ZR008 info   variable pinned only up to multiple roots: the system
                    is satisfiable but the Zexec witness solver's
                    propagation cannot uniquely determine it (§16)

   Each reported finding bumps the Zobs counter lint.findings.<code>, so
   lint volumes flow through the existing metrics pipeline. *)

type severity = Error | Warn | Info

type location =
  | Nowhere
  | Source of Zlang.Ast.pos (* ZL source position *)
  | Row of int (* constraint row index *)
  | Variable of int (* constraint variable index *)
  | Var_in_row of int * int
    (* variable index plus the lowest constraint row mentioning it —
       provenance for deserialized systems with no source mapping *)

type t = { code : string; severity : severity; location : location; message : string }

let severity_to_string = function Error -> "error" | Warn -> "warn" | Info -> "info"

let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

let location_to_string = function
  | Nowhere -> ""
  | Source p -> Zlang.Ast.pos_to_string p
  | Row j -> Printf.sprintf "row %d" j
  | Variable v -> Printf.sprintf "var w%d" v
  | Var_in_row (v, j) -> Printf.sprintf "var w%d (row %d)" v j

(* Stable report order: severity first, then code, then location. *)
let compare_for_report a b =
  let loc_key = function
    | Nowhere -> (0, 0, 0)
    | Source p -> (1, p.Zlang.Ast.line, p.Zlang.Ast.col)
    | Row j -> (2, j, 0)
    | Variable v -> (3, v, 0)
    | Var_in_row (v, j) -> (3, v, j)
  in
  compare
    (severity_rank a.severity, a.code, loc_key a.location, a.message)
    (severity_rank b.severity, b.code, loc_key b.location, b.message)

(* lint.findings.<code> counters, created on first use; Counter.make
   re-registers idempotently so repeated lint runs share one counter. *)
let counters : (string, Zobs.Counter.t) Hashtbl.t = Hashtbl.create 16

let count d =
  let c =
    match Hashtbl.find_opt counters d.code with
    | Some c -> c
    | None ->
      let c = Zobs.Counter.make ("lint.findings." ^ d.code) in
      Hashtbl.replace counters d.code c;
      c
  in
  Zobs.Counter.incr c

let make ~code ~severity ?(location = Nowhere) fmt =
  Printf.ksprintf
    (fun message ->
      let d = { code; severity; location; message } in
      count d;
      d)
    fmt

let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let count_severity sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

(* Cap per-code verbosity: keep the first [limit] findings of each code (in
   report order) and fold the overflow into one Info line per code, so a
   badly broken large system cannot flood the report. *)
let truncate ?(limit = 20) ds =
  let ds = List.stable_sort compare_for_report ds in
  let seen = Hashtbl.create 8 in
  let kept, dropped =
    List.partition
      (fun d ->
        let n = try Hashtbl.find seen d.code with Not_found -> 0 in
        Hashtbl.replace seen d.code (n + 1);
        n < limit)
      ds
  in
  let overflow = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let n = try Hashtbl.find overflow d.code with Not_found -> 0 in
      Hashtbl.replace overflow d.code (n + 1))
    dropped;
  kept
  @ (Hashtbl.fold (fun code n acc -> (code, n) :: acc) overflow []
    |> List.sort compare
    |> List.map (fun (code, n) ->
           {
             code;
             severity = Info;
             location = Nowhere;
             message = Printf.sprintf "%d more %s finding(s) suppressed" n code;
           }))

let to_text ?file d =
  let parts =
    (match file with Some f -> [ f ] | None -> [])
    @ (match location_to_string d.location with "" -> [] | l -> [ l ])
  in
  Printf.sprintf "%s: %s %s: %s"
    (match parts with [] -> "-" | _ -> String.concat ", " parts)
    (severity_to_string d.severity) d.code d.message

let to_json d : Zobs.Json.t =
  let open Zobs.Json in
  let loc =
    match d.location with
    | Nowhere -> []
    | Source p ->
      [ ("line", Num (float_of_int p.Zlang.Ast.line)); ("col", Num (float_of_int p.Zlang.Ast.col)) ]
    | Row j -> [ ("row", Num (float_of_int j)) ]
    | Variable v -> [ ("var", Num (float_of_int v)) ]
    | Var_in_row (v, j) -> [ ("var", Num (float_of_int v)); ("row", Num (float_of_int j)) ]
  in
  Obj
    ([ ("code", Str d.code); ("severity", Str (severity_to_string d.severity)) ]
    @ loc
    @ [ ("message", Str d.message) ])
