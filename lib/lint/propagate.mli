(** Monomial-aware determination propagation over a quadratic-form system.

    This is the engine behind two consumers with different stakes:

    - Zlint's ZR002 check ({!determined}): starting from [{w0} U seeds],
      a row with exactly one undetermined variable pins it *up to finitely
      many roots* — good enough to certify "this variable is constrained",
      not good enough to compute its value.
    - the Zexec witness solver (lib/exec), which reuses {!structure} (row
      supports, incidence lists, the product-variable monomial map) but
      applies value-level rules, and {!statically_solvable}, the static
      under-approximation of what those value-level rules can pin. The gap
      between {!determined} and {!statically_solvable} is Zlint's ZR008:
      satisfiable but unsolvable by propagation.

    Variable indexing follows the repo convention: index 0 is the constant
    one, witness variables are [1..nz], IO variables [nz+1..nvars]. *)

open Constr

type structure = {
  nvars : int;
  nz : int;
  nc : int;
  occ : int array;  (** occurrence count per variable, index [0..nvars] *)
  row_vars : int list array;  (** per-row distinct variables (>= 1), ascending *)
  var_rows : int list array;  (** rows mentioning each variable, descending *)
  monomial_of : (int, int * int) Hashtbl.t;
      (** product variable m -> (i, j), from its first definition row *)
  monomial_users : (int, int) Hashtbl.t;
      (** base variable -> product variables built on it (find_all) *)
  is_def_row : bool array;  (** rows that define a product variable *)
}

val product_shape : R1cs.constr -> ((int * int) * int) option
(** A row whose A, B and C are all single bare variables with coefficient
    one: a product definition [z_i * z_j = m] as emitted by the transform.
    Returns [((min i j, max i j), m)]. *)

val build : R1cs.system -> structure
(** One pass over the system: occurrence counts, row supports, incidence
    lists and the product-variable monomial map. *)

val first_row_of : structure -> int -> int option
(** Lowest-index row mentioning the variable — diagnostic provenance for
    systems with no source mapping (deserialized [.r1cs] files). *)

val determined : structure -> seeds:int array -> bool array
(** The ZR002 fixpoint: repeatedly mark a variable determined when some
    row has exactly one undetermined variable, where a product variable
    "expands" to its undetermined base variables (so a row whose unknowns
    collapse onto a single base variable is univariate and pins it).
    Result is indexed [0..nvars]; slot 0 is always true. *)

val booleans : R1cs.system -> structure -> bool array
(** Variables [v] forced into [{0, 1}] by some row whose residual is
    [c * (v^2 - v)] — either directly ([v * v = v], raw Ginger shape) or
    through the transform's factored pair (linear row over [{v, m}] with
    [m] the product variable of [v * v]). *)

val statically_solvable : R1cs.system -> structure -> seeds:int array -> bool array
(** Static under-approximation of the witness solver: a variable is marked
    only when propagation pins it to a *unique* value for every seed
    assignment — single unknowns appearing linearly (not on both A and B),
    and bit-decomposition rows (all unknowns boolean with distinct
    power-of-two coefficients against a constant B side). Multi-root
    univariate pins, which {!determined} accepts, are excluded. *)
