(* The ZL front-end linter: a flow-sensitive pass over the parsed AST that
   runs *without* building constraints, so it can analyze programs the
   compiler would reject and programs too large to want compiled twice.

   Checks (codes in Diagnostic):
   - ZL001: read of a scalar `var` declared without an initializer before
     any assignment on some path (definite-assignment analysis: a branch
     join keeps the intersection of the branches' assigned sets; a loop
     body's assignments only count when the constant bounds guarantee at
     least one iteration).
   - ZL002: variables/arrays never read, input parameters never read,
     output parameters never assigned.
   - ZL003: declarations (or loop variables) shadowing an existing binding.
   - ZL004: a loop nest whose full unrolling exceeds the configured budget
     (bounds are const-folded; bounds that depend on outer loop variables
     are evaluated at the outer loop's last iteration, a worst case).
   - ZL005: conditionals whose condition const-folds, so the compiled mux
     discards one branch entirely.
   - ZL006: reference to a name that is not in scope. *)

open Zlang.Ast
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type cfg = { unroll_budget : int }

let default_cfg = { unroll_budget = 1_000_000 }

type vkind = Kvar | Kinput | Koutput | Kloop

type vinfo = {
  vloc : pos;
  vkind : vkind;
  varray : bool;
  vinit_at_decl : bool; (* had an initializer (or is an array / input) *)
  mutable vread : bool;
  mutable vassigned : bool;
  mutable vuninit_reported : bool;
}

type st = {
  cfg : cfg;
  mutable findings : Diagnostic.t list;
  mutable budget_reported : bool; (* report the outermost offending loop only *)
}

let report st ~code ~severity ~loc fmt =
  Printf.ksprintf
    (fun msg ->
      st.findings <-
        Diagnostic.make ~code ~severity ~location:(Diagnostic.Source loc) "%s" msg :: st.findings)
    fmt

(* Constant folding over the lint value domain: literals, the arithmetic
   and logical operators, and loop variables bound in [env]. Anything else
   is non-constant. Mirrors the compiler's folding closely enough for
   budget estimation and ZL005; >> uses the same floor semantics. *)
let rec const_eval env (e : expr) : int option =
  match e.e with
  | Int n -> Some n
  | Var v -> SMap.find_opt v env
  | Index _ -> None
  | Unop (Neg, a) -> Option.map (fun n -> -n) (const_eval env a)
  | Unop (Not, a) -> Option.map (fun n -> if n = 0 then 1 else 0) (const_eval env a)
  | Binop (op, a, b) -> (
    match (const_eval env a, const_eval env b) with
    | Some x, Some y ->
      let bool b = if b then 1 else 0 in
      (match op with
      | Add -> Some (x + y)
      | Sub -> Some (x - y)
      | Mul -> Some (x * y)
      | Shl -> if y >= 0 && y < 62 then Some (x lsl y) else None
      | Shr ->
        if y >= 0 && y < 62 then
          Some (if x >= 0 then x lsr y else -(((-x) + (1 lsl y) - 1) lsr y))
        else None
      | Lt -> Some (bool (x < y))
      | Le -> Some (bool (x <= y))
      | Gt -> Some (bool (x > y))
      | Ge -> Some (bool (x >= y))
      | Eq -> Some (bool (x = y))
      | Ne -> Some (bool (x <> y))
      | And -> Some (bool (x <> 0 && y <> 0))
      | Or -> Some (bool (x <> 0 || y <> 0)))
    | _ -> None)

(* ---- unroll-budget estimation (ZL004) ---- *)

(* Weight of a statement list under full unrolling: statements count 1
   each, loops multiply by their (worst-case) constant trip count. [cenv]
   maps loop variables to the largest value they take. *)
let rec unroll_weight st cenv stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s.s with
      | Decl _ | Assign _ -> 1
      | If (_, tb, eb) -> 1 + unroll_weight st cenv tb + unroll_weight st cenv eb
      | For (v, lo, hi, body) ->
        let iters =
          match (const_eval cenv lo, const_eval cenv hi) with
          | Some l, Some h -> max 0 (h - l)
          | _ -> 1 (* non-constant bounds: the compiler rejects these later *)
        in
        let cenv' =
          match const_eval cenv hi with
          | Some h -> SMap.add v (h - 1) cenv
          | None -> cenv
        in
        let w = iters * (1 + unroll_weight st cenv' body) in
        if w > st.cfg.unroll_budget && not st.budget_reported then begin
          st.budget_reported <- true;
          report st ~code:"ZL004" ~severity:Diagnostic.Warn ~loc:s.sloc
            "loop nest unrolls to ~%d statements, past the budget of %d" w st.cfg.unroll_budget
        end;
        w)
    0 stmts

(* Names assigned (or redeclared) anywhere in a subtree: used to
   invalidate constant-tracking entries after a conditional or loop, whose
   body runs zero, one or many times. *)
let rec assigned_names acc stmts =
  List.fold_left
    (fun acc s ->
      match s.s with
      | Decl (_, name, _, _) -> SSet.add name acc
      | Assign (Lvar name, _) | Assign (Lindex (name, _), _) -> SSet.add name acc
      | If (_, tb, eb) -> assigned_names (assigned_names acc tb) eb
      | For (v, _, _, body) -> assigned_names (SSet.add v acc) body)
    acc stmts

let invalidate_assigned cenv stmts =
  SSet.fold SMap.remove (assigned_names SSet.empty stmts) cenv

(* ---- scope / definite-assignment walk ---- *)

let use st scope init name loc ~reading =
  match SMap.find_opt name scope with
  | None ->
    report st ~code:"ZL006" ~severity:Diagnostic.Error ~loc "reference to undefined variable %S" name
  | Some vi ->
    if reading then begin
      vi.vread <- true;
      if
        vi.vkind = Kvar && (not vi.varray) && (not vi.vinit_at_decl)
        && (not (SSet.mem name init))
        && not vi.vuninit_reported
      then begin
        vi.vuninit_reported <- true;
        report st ~code:"ZL001" ~severity:Diagnostic.Error ~loc
          "%S may be read before it is assigned (declared without initializer at %s)" name
          (pos_to_string vi.vloc)
      end
    end
    else vi.vassigned <- true

let rec check_expr st scope init (e : expr) =
  match e.e with
  | Int _ -> ()
  | Var name -> use st scope init name e.eloc ~reading:true
  | Index (name, idx) ->
    use st scope init name e.eloc ~reading:true;
    check_expr st scope init idx
  | Unop (_, a) -> check_expr st scope init a
  | Binop (_, a, b) ->
    check_expr st scope init a;
    check_expr st scope init b

(* Returns (scope', init', cenv'): cenv tracks compile-time-constant scalar
   bindings so loop bounds like `for j in 0..i` and ZL005 conditions fold. *)
let rec check_stmt st (scope, init, cenv) (s : stmt) =
  match s.s with
  | Decl (_, name, len, initexpr) ->
    Option.iter (check_expr st scope init) initexpr;
    (match SMap.find_opt name scope with
    | Some prev ->
      report st ~code:"ZL003" ~severity:Diagnostic.Error ~loc:s.sloc
        "declaration of %S shadows the binding from %s" name (pos_to_string prev.vloc)
    | None -> ());
    let varray = len <> None in
    let vinit_at_decl = varray || initexpr <> None in
    let vi =
      {
        vloc = s.sloc;
        vkind = Kvar;
        varray;
        vinit_at_decl;
        vread = false;
        vassigned = initexpr <> None;
        vuninit_reported = false;
      }
    in
    let cenv =
      match (initexpr, varray) with
      | Some e, false -> (
        match const_eval cenv e with Some n -> SMap.add name n cenv | None -> SMap.remove name cenv)
      | _ -> SMap.remove name cenv
    in
    (SMap.add name vi scope, (if vinit_at_decl then SSet.add name init else SSet.remove name init), cenv)
  | Assign (Lvar name, e) ->
    check_expr st scope init e;
    use st scope init name s.sloc ~reading:false;
    let cenv =
      match const_eval cenv e with Some n -> SMap.add name n cenv | None -> SMap.remove name cenv
    in
    (scope, SSet.add name init, cenv)
  | Assign (Lindex (name, idx), e) ->
    check_expr st scope init idx;
    check_expr st scope init e;
    use st scope init name s.sloc ~reading:false;
    (scope, SSet.add name init, cenv)
  | If (cond, then_b, else_b) ->
    check_expr st scope init cond;
    (match const_eval cenv cond with
    | Some v ->
      report st ~code:"ZL005" ~severity:Diagnostic.Info ~loc:s.sloc
        "condition is constant (%s); the %s branch is discarded at compile time"
        (if v = 0 then "false" else "true")
        (if v = 0 then "then" else "else")
    | None -> ());
    let init_t = check_block st (scope, init, cenv) then_b in
    let init_e = check_block st (scope, init, cenv) else_b in
    (* Definitely assigned after the conditional: assigned on both paths
       (or, for a constant condition, on the surviving path). *)
    let init' =
      match const_eval cenv cond with
      | Some 0 -> init_e
      | Some _ -> init_t
      | None -> SSet.union init (SSet.inter init_t init_e)
    in
    (scope, init', invalidate_assigned cenv (then_b @ else_b))
  | For (v, lo, hi, body) ->
    check_expr st scope init lo;
    check_expr st scope init hi;
    (match SMap.find_opt v scope with
    | Some prev ->
      report st ~code:"ZL003" ~severity:Diagnostic.Error ~loc:s.sloc
        "loop variable %S shadows the binding from %s" v (pos_to_string prev.vloc)
    | None -> ());
    ignore (unroll_weight st cenv [ s ]);
    let vi =
      {
        vloc = s.sloc;
        vkind = Kloop;
        varray = false;
        vinit_at_decl = true;
        vread = true; (* `for i in 0..n` without using i is a repeat loop: fine *)
        vassigned = true;
        vuninit_reported = false;
      }
    in
    let scope' = SMap.add v vi scope in
    let cenv' =
      (* The loop variable is constant per unrolled iteration but takes
         many values: treat it as non-constant for ZL005, worst-case for
         budgets (handled inside unroll_weight). *)
      SMap.remove v cenv
    in
    let init_body = check_block st (scope', SSet.add v init, cenv') body in
    let runs_at_least_once =
      match (const_eval cenv lo, const_eval cenv hi) with
      | Some l, Some h -> h > l
      | _ -> false
    in
    (scope, (if runs_at_least_once then SSet.remove v init_body else init), invalidate_assigned cenv body)

(* A block scope: declarations inside disappear at the end (reporting
   unused ones); assignments to outer bindings persist. Returns the
   definitely-assigned set restricted to the outer scope's names. *)
and check_block st (scope, init, cenv) stmts =
  let scope', init', _ =
    List.fold_left (fun acc s -> check_stmt st acc s) (scope, init, cenv) stmts
  in
  SMap.iter
    (fun name vi ->
      if (not (SMap.mem name scope)) && vi.vkind = Kvar && not vi.vread then
        report st ~code:"ZL002" ~severity:Diagnostic.Warn ~loc:vi.vloc
          "%s %S is never read" (if vi.varray then "array" else "variable") name)
    scope';
  SSet.filter (fun n -> SMap.mem n scope) init'

let check_program cfg (prog : program) : Diagnostic.t list =
  let st = { cfg; findings = []; budget_reported = false } in
  let scope =
    List.fold_left
      (fun scope p ->
        (match SMap.find_opt p.pname scope with
        | Some prev ->
          report st ~code:"ZL003" ~severity:Diagnostic.Error ~loc:p.ploc
            "duplicate parameter %S (first declared at %s)" p.pname (pos_to_string prev.vloc)
        | None -> ());
        let vi =
          {
            vloc = p.ploc;
            vkind = (if p.pdir = Input then Kinput else Koutput);
            varray = p.plen <> None;
            vinit_at_decl = true;
            vread = false;
            vassigned = false;
            vuninit_reported = false;
          }
        in
        SMap.add p.pname vi scope)
      SMap.empty prog.params
  in
  ignore (check_block st (scope, SSet.empty, SMap.empty) prog.body);
  (* check_block only reports block-local `var`s; parameters are ours. *)
  SMap.iter
    (fun name vi ->
      match vi.vkind with
      | Kinput ->
        if not vi.vread then
          report st ~code:"ZL002" ~severity:Diagnostic.Warn ~loc:vi.vloc
            "input parameter %S is never read" name
      | Koutput ->
        if not vi.vassigned then
          report st ~code:"ZL002" ~severity:Diagnostic.Warn ~loc:vi.vloc
            "output parameter %S is never assigned (it stays 0)" name
      | _ -> ())
    scope;
  List.rev st.findings

(* Parse-and-check: a source that fails to parse yields one ZL000 finding
   carrying the parser's positioned message. *)
let check_source ?(cfg = default_cfg) (src : string) : Diagnostic.t list =
  match Zlang.Parser.parse_program src with
  | prog -> check_program cfg prog
  | exception Zlang.Ast.Error msg ->
    [ Diagnostic.make ~code:"ZL000" ~severity:Diagnostic.Error "%s" msg ]
