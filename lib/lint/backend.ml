(* The constraint-system soundness analyzer: static checks over a compiled
   (or deserialized) R1CS, plus Transform-aware cross-checks when the
   Ginger→Zaatar transform output is available.

   The classic failure mode these hunt is the *underconstrained* circuit:
   witness variables the constraints do not pin down, so the system admits
   assignments the program never produces and the "proof" proves nothing.

   Checks (codes in Diagnostic):
   - ZR001: a variable that appears in no constraint at all. A witness or
     output variable in this state is completely unconstrained (error); an
     input is merely unused (warn).
   - ZR002: determination propagation (the Propagate engine, shared with
     the Zexec witness solver). Starting from w0 and the inputs,
     repeatedly mark a variable determined when some constraint row
     contains exactly one undetermined variable (such a row pins it, up to
     finitely many roots). Variables never reached are under-determined.
     This is a sound-for-reporting heuristic: it can miss underconstraint
     (a row with a single unknown pins it only up to a quadratic), but on
     systems produced by our compiler it converges to "everything
     determined", so any residue is a real red flag. See DESIGN.md §11 for
     the false-negative discussion (propagation vs. full SMT).
   - ZR003: duplicate rows (same A*B = C up to A/B commutation).
   - ZR004: trivially-satisfied rows (A*B - C syntactically zero).
   - ZR005: one degree-2 monomial defined by several product rows — the
     K2 dedup accounting of the §4 transform failed.
   - ZR006: outputs unreachable from any input in the constraint
     dependency graph (vars are adjacent when they share a row).
   - ZR007: a row with no variables at all whose constants don't satisfy
     it: the system is unsatisfiable for every input.
   - ZR008: a variable the analysis fixpoint pins only up to multiple
     roots — satisfiable, but the Zexec witness solver's value-level
     propagation cannot uniquely solve it (info; see DESIGN.md §16). *)

open Fieldlib
open Constr

type io = { num_inputs : int; num_outputs : int }

let product_shape = Propagate.product_shape

let row_key (k : R1cs.constr) =
  let s lc =
    String.concat ","
      (List.map (fun (v, c) -> Printf.sprintf "%d:%s" v (Fp.to_string c)) (Lincomb.terms lc))
  in
  let a = s k.R1cs.a and b = s k.R1cs.b in
  Printf.sprintf "%s|%s|%s" (min a b) (max a b) (s k.R1cs.c)

let analyze ?io ?transform (sys : R1cs.system) : Diagnostic.t list =
  let ctx = sys.R1cs.field in
  let n = sys.R1cs.num_vars and nz = sys.R1cs.num_z in
  let nc = R1cs.num_constraints sys in
  let findings = ref [] in
  let report ~code ~severity ~location fmt =
    Printf.ksprintf
      (fun msg -> findings := Diagnostic.make ~code ~severity ~location "%s" msg :: !findings)
      fmt
  in
  let inputs, outputs =
    match io with
    | Some { num_inputs; num_outputs = _ } ->
      ( Array.init num_inputs (fun i -> nz + 1 + i),
        Array.init (n - nz - num_inputs) (fun i -> nz + 1 + num_inputs + i) )
    | None ->
      (* Raw systems don't record the input/output split: seed from the
         whole IO block and skip the output-specific checks. *)
      (Array.init (n - nz) (fun i -> nz + 1 + i), [||])
  in
  let is_output = Array.make (n + 1) false in
  Array.iter (fun v -> is_output.(v) <- true) outputs;
  let describe_var v =
    if v <= nz then "witness variable"
    else if is_output.(v) then "output variable"
    else "input variable"
  in

  (* Occurrence counts, row supports, incidence lists, monomial map. *)
  let st = Propagate.build sys in
  let occ = st.Propagate.occ and row_vars = st.Propagate.row_vars in
  (* Provenance: deserialized systems have no source mapping, so point at
     the lowest constraint row mentioning the variable. *)
  let var_loc v =
    match Propagate.first_row_of st v with
    | Some j -> Diagnostic.Var_in_row (v, j)
    | None -> Diagnostic.Variable v
  in

  (* ZR001: variables in no row. *)
  for v = 1 to n do
    if occ.(v) = 0 then
      if v <= nz || is_output.(v) then
        report ~code:"ZR001" ~severity:Diagnostic.Error ~location:(Diagnostic.Variable v)
          "%s w%d appears in no constraint: its value is completely unconstrained" (describe_var v)
          v
      else
        report ~code:"ZR001" ~severity:Diagnostic.Warn ~location:(Diagnostic.Variable v)
          "input variable w%d appears in no constraint (unused input)" v
  done;

  (* ZR003 / ZR004 / ZR005 / ZR007: row-shape checks. *)
  let seen_rows = Hashtbl.create (max 16 nc) in
  let monomial_rows : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  R1cs.iteri
    (fun j k ->
      if row_vars.(j) = [] then begin
        (* Constant-only row: either says nothing or can never hold. *)
        let residue =
          Fp.sub ctx
            (Fp.mul ctx (Lincomb.const_part k.R1cs.a) (Lincomb.const_part k.R1cs.b))
            (Lincomb.const_part k.R1cs.c)
        in
        if Fp.is_zero residue then
          report ~code:"ZR004" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row j)
            "constant row is trivially satisfied (dead constraint)"
        else
          report ~code:"ZR007" ~severity:Diagnostic.Error ~location:(Diagnostic.Row j)
            "constant row can never be satisfied: the system is unsatisfiable"
      end
      else if R1cs.constr_is_trivial k then
        report ~code:"ZR004" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row j)
          "row is trivially satisfied: A*B - C is syntactically zero"
      else begin
        let key = row_key k in
        (match Hashtbl.find_opt seen_rows key with
        | Some j0 ->
          report ~code:"ZR003" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row j)
            "duplicate of constraint row %d" j0
        | None -> Hashtbl.add seen_rows key j);
        match product_shape k with
        | Some (m, _) -> (
          match Hashtbl.find_opt monomial_rows m with
          | Some j0 ->
            report ~code:"ZR005" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row j)
              "degree-2 monomial w%d*w%d already defined by product row %d (K2 dedup failure)"
              (fst m) (snd m) j0
          | None -> Hashtbl.add monomial_rows m j)
        | None -> ()
      end)
    sys;

  (* Transform hook: the K2 accounting promises distinct monomials. *)
  (match transform with
  | None -> ()
  | Some tr ->
    let seen = Hashtbl.create 64 in
    List.iter
      (fun (row, (i, j)) ->
        match Hashtbl.find_opt seen (i, j) with
        | Some row0 ->
          report ~code:"ZR005" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row row)
            "transform emitted monomial z%d*z%d twice (rows %d and %d): K2 overcounted" i j row0
            row
        | None -> Hashtbl.add seen (i, j) row)
      (Transform.product_rows tr));

  (* ZR002: determination propagation from {w0} ∪ inputs. *)
  let det = Propagate.determined st ~seeds:inputs in
  for v = 1 to n do
    if (not det.(v)) && occ.(v) > 0 then
      report ~code:"ZR002" ~severity:Diagnostic.Error ~location:(var_loc v)
        "%s w%d is not pinned by constraint propagation from the inputs (under-determined)"
        (describe_var v) v
  done;

  (* ZR008: pinned by the analysis fixpoint, but only up to multiple roots
     — the witness solver's value-level rules cannot uniquely solve it. *)
  let solvable = Propagate.statically_solvable sys st ~seeds:inputs in
  for v = 1 to n do
    if det.(v) && (not solvable.(v)) && occ.(v) > 0 then
      report ~code:"ZR008" ~severity:Diagnostic.Info ~location:(var_loc v)
        "%s w%d is pinned only up to multiple roots: satisfiable, but witness solving by \
         propagation cannot determine it (zaatar exec will not solve this system)"
        (describe_var v) v
  done;

  (* ZR006: output reachability over the shared-row adjacency. *)
  if Array.length outputs > 0 then begin
    let reached = Array.make (n + 1) false in
    let row_seen = Array.make nc false in
    let q = Queue.create () in
    Array.iter
      (fun v ->
        reached.(v) <- true;
        Queue.add v q)
      inputs;
    while not (Queue.is_empty q) do
      let v = Queue.take q in
      List.iter
        (fun j ->
          if not row_seen.(j) then begin
            row_seen.(j) <- true;
            List.iter
              (fun v' ->
                if not reached.(v') then begin
                  reached.(v') <- true;
                  Queue.add v' q
                end)
              row_vars.(j)
          end)
        st.Propagate.var_rows.(v)
    done;
    Array.iter
      (fun v ->
        if (not reached.(v)) && occ.(v) > 0 then
          report ~code:"ZR006" ~severity:Diagnostic.Warn ~location:(Diagnostic.Variable v)
            "output variable w%d does not depend on any input (unreachable in the constraint graph)"
            v)
      outputs
  end;

  List.rev !findings
