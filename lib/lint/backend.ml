(* The constraint-system soundness analyzer: static checks over a compiled
   (or deserialized) R1CS, plus Transform-aware cross-checks when the
   Ginger→Zaatar transform output is available.

   The classic failure mode these hunt is the *underconstrained* circuit:
   witness variables the constraints do not pin down, so the system admits
   assignments the program never produces and the "proof" proves nothing.

   Checks (codes in Diagnostic):
   - ZR001: a variable that appears in no constraint at all. A witness or
     output variable in this state is completely unconstrained (error); an
     input is merely unused (warn).
   - ZR002: determination propagation. Starting from w0 and the inputs,
     repeatedly mark a variable determined when some constraint row
     contains exactly one undetermined variable (such a row pins it, up to
     finitely many roots). Variables never reached are under-determined.
     This is a sound-for-reporting heuristic: it can miss underconstraint
     (a row with a single unknown pins it only up to a quadratic), but on
     systems produced by our compiler it converges to "everything
     determined", so any residue is a real red flag. See DESIGN.md §11 for
     the false-negative discussion (propagation vs. full SMT).
   - ZR003: duplicate rows (same A*B = C up to A/B commutation).
   - ZR004: trivially-satisfied rows (A*B - C syntactically zero).
   - ZR005: one degree-2 monomial defined by several product rows — the
     K2 dedup accounting of the §4 transform failed.
   - ZR006: outputs unreachable from any input in the constraint
     dependency graph (vars are adjacent when they share a row).
   - ZR007: a row with no variables at all whose constants don't satisfy
     it: the system is unsatisfiable for every input. *)

open Fieldlib
open Constr

type io = { num_inputs : int; num_outputs : int }

(* A row whose A, B and C are all single bare variables: a product
   definition z_i * z_j = m as emitted by the transform. *)
let product_shape (k : R1cs.constr) =
  let single lc =
    match Lincomb.terms lc with [ (v, c) ] when v > 0 && Fp.equal c Fp.one -> Some v | _ -> None
  in
  match (single k.R1cs.a, single k.R1cs.b, single k.R1cs.c) with
  | Some i, Some j, Some m -> Some ((min i j, max i j), m)
  | _ -> None

let row_key (k : R1cs.constr) =
  let s lc =
    String.concat ","
      (List.map (fun (v, c) -> Printf.sprintf "%d:%s" v (Fp.to_string c)) (Lincomb.terms lc))
  in
  let a = s k.R1cs.a and b = s k.R1cs.b in
  Printf.sprintf "%s|%s|%s" (min a b) (max a b) (s k.R1cs.c)

let analyze ?io ?transform (sys : R1cs.system) : Diagnostic.t list =
  let ctx = sys.R1cs.field in
  let n = sys.R1cs.num_vars and nz = sys.R1cs.num_z in
  let nc = R1cs.num_constraints sys in
  let findings = ref [] in
  let report ~code ~severity ~location fmt =
    Printf.ksprintf
      (fun msg -> findings := Diagnostic.make ~code ~severity ~location "%s" msg :: !findings)
      fmt
  in
  let inputs, outputs =
    match io with
    | Some { num_inputs; num_outputs = _ } ->
      ( Array.init num_inputs (fun i -> nz + 1 + i),
        Array.init (n - nz - num_inputs) (fun i -> nz + 1 + num_inputs + i) )
    | None ->
      (* Raw systems don't record the input/output split: seed from the
         whole IO block and skip the output-specific checks. *)
      (Array.init (n - nz) (fun i -> nz + 1 + i), [||])
  in
  let is_output = Array.make (n + 1) false in
  Array.iter (fun v -> is_output.(v) <- true) outputs;
  let describe_var v =
    if v <= nz then "witness variable"
    else if is_output.(v) then "output variable"
    else "input variable"
  in

  (* One pass: occurrence counts, per-row supports, incidence lists. *)
  let occ = Array.make (n + 1) 0 in
  let row_vars = Array.make nc [] in
  let var_rows = Array.make (n + 1) [] in
  R1cs.iteri
    (fun j k ->
      let vs = R1cs.constr_vars k in
      row_vars.(j) <- vs;
      List.iter
        (fun v ->
          occ.(v) <- occ.(v) + 1;
          var_rows.(v) <- j :: var_rows.(v))
        vs)
    sys;

  (* ZR001: variables in no row. *)
  for v = 1 to n do
    if occ.(v) = 0 then
      if v <= nz || is_output.(v) then
        report ~code:"ZR001" ~severity:Diagnostic.Error ~location:(Diagnostic.Variable v)
          "%s w%d appears in no constraint: its value is completely unconstrained" (describe_var v)
          v
      else
        report ~code:"ZR001" ~severity:Diagnostic.Warn ~location:(Diagnostic.Variable v)
          "input variable w%d appears in no constraint (unused input)" v
  done;

  (* ZR003 / ZR004 / ZR005 / ZR007: row-shape checks. *)
  let seen_rows = Hashtbl.create (max 16 nc) in
  let monomial_rows : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  R1cs.iteri
    (fun j k ->
      if row_vars.(j) = [] then begin
        (* Constant-only row: either says nothing or can never hold. *)
        let residue =
          Fp.sub ctx
            (Fp.mul ctx (Lincomb.const_part k.R1cs.a) (Lincomb.const_part k.R1cs.b))
            (Lincomb.const_part k.R1cs.c)
        in
        if Fp.is_zero residue then
          report ~code:"ZR004" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row j)
            "constant row is trivially satisfied (dead constraint)"
        else
          report ~code:"ZR007" ~severity:Diagnostic.Error ~location:(Diagnostic.Row j)
            "constant row can never be satisfied: the system is unsatisfiable"
      end
      else if R1cs.constr_is_trivial k then
        report ~code:"ZR004" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row j)
          "row is trivially satisfied: A*B - C is syntactically zero"
      else begin
        let key = row_key k in
        (match Hashtbl.find_opt seen_rows key with
        | Some j0 ->
          report ~code:"ZR003" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row j)
            "duplicate of constraint row %d" j0
        | None -> Hashtbl.add seen_rows key j);
        match product_shape k with
        | Some (m, _) -> (
          match Hashtbl.find_opt monomial_rows m with
          | Some j0 ->
            report ~code:"ZR005" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row j)
              "degree-2 monomial w%d*w%d already defined by product row %d (K2 dedup failure)"
              (fst m) (snd m) j0
          | None -> Hashtbl.add monomial_rows m j)
        | None -> ()
      end)
    sys;

  (* Transform hook: the K2 accounting promises distinct monomials. *)
  (match transform with
  | None -> ()
  | Some tr ->
    let seen = Hashtbl.create 64 in
    List.iter
      (fun (row, (i, j)) ->
        match Hashtbl.find_opt seen (i, j) with
        | Some row0 ->
          report ~code:"ZR005" ~severity:Diagnostic.Warn ~location:(Diagnostic.Row row)
            "transform emitted monomial z%d*z%d twice (rows %d and %d): K2 overcounted" i j row0
            row
        | None -> Hashtbl.add seen (i, j) row)
      (Transform.product_rows tr));

  (* ZR002: determination propagation from {w0} ∪ inputs.

     The base rule: a row with exactly one undetermined variable pins it
     (up to finitely many roots). That alone is blind to the transform's
     factored quadratics — after §4, a Ginger bit-constraint b*b = b is a
     linear row {m, b} plus a product row b*b = m, each with two unknowns.
     So the rule is monomial-aware: a product variable m with monomial
     (i, j) "expands" to its undetermined base variables, and a row whose
     undetermined variables all expand into a single base variable v is a
     univariate polynomial in v, which pins v. A product variable whose
     base variables are both determined is itself determined. *)
  let monomial_of : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let monomial_users : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let is_def_row = Array.make nc false in
  R1cs.iteri
    (fun row k ->
      match product_shape k with
      | Some ((i, j), m) ->
        if not (Hashtbl.mem monomial_of m) then begin
          Hashtbl.add monomial_of m (i, j);
          Hashtbl.add monomial_users i m;
          if j <> i then Hashtbl.add monomial_users j m;
          is_def_row.(row) <- true
        end
      | None -> ())
    sys;
  let determined = Array.make (n + 1) false in
  determined.(0) <- true;
  let unknown = Array.make nc 0 in
  let events = Queue.create () in
  let settle v =
    if not determined.(v) then begin
      determined.(v) <- true;
      Queue.add v events
    end
  in
  Array.iter settle inputs;
  Array.iteri
    (fun j vs -> unknown.(j) <- List.length (List.filter (fun v -> not determined.(v)) vs))
    row_vars;
  (* Expand an undetermined row variable to its undetermined base vars. *)
  let expand v =
    match Hashtbl.find_opt monomial_of v with
    | Some (i, j) ->
      let base = if determined.(i) then [] else [ i ] in
      if determined.(j) || j = i then base else j :: base
    | None -> [ v ]
  in
  let resolve j =
    if unknown.(j) >= 1 && unknown.(j) <= 3 then
      match List.filter (fun v -> not determined.(v)) row_vars.(j) with
      | [ v ] -> settle v
      | us when not is_def_row.(j) -> (
        (* Expansion is justified by the *other* row defining each m; on
           the definition row itself, substituting m = z_i z_j collapses
           it to 0 = 0 and would pin nothing soundly. *)
        match List.sort_uniq compare (List.concat_map expand us) with
        | [ v ] ->
          (* Univariate in v: pin v; its dependent product vars follow
             through the event loop below. *)
          settle v
        | _ -> ())
      | _ -> ()
  in
  let touch_rows v = List.iter resolve var_rows.(v) in
  for j = 0 to nc - 1 do
    resolve j
  done;
  while not (Queue.is_empty events) do
    let v = Queue.take events in
    List.iter
      (fun j ->
        unknown.(j) <- unknown.(j) - 1;
        resolve j)
      var_rows.(v);
    (* Product variables riding on v: either both base vars are now
       determined (so m is), or rows mentioning m deserve a fresh look
       with the shrunken expansion. *)
    List.iter
      (fun m ->
        if not determined.(m) then
          match Hashtbl.find_opt monomial_of m with
          | Some (i, j) -> if determined.(i) && determined.(j) then settle m else touch_rows m
          | None -> ())
      (Hashtbl.find_all monomial_users v)
  done;
  for v = 1 to n do
    if (not determined.(v)) && occ.(v) > 0 then
      report ~code:"ZR002" ~severity:Diagnostic.Error ~location:(Diagnostic.Variable v)
        "%s w%d is not pinned by constraint propagation from the inputs (under-determined)"
        (describe_var v) v
  done;

  (* ZR006: output reachability over the shared-row adjacency. *)
  if Array.length outputs > 0 then begin
    let reached = Array.make (n + 1) false in
    let row_seen = Array.make nc false in
    let q = Queue.create () in
    Array.iter
      (fun v ->
        reached.(v) <- true;
        Queue.add v q)
      inputs;
    while not (Queue.is_empty q) do
      let v = Queue.take q in
      List.iter
        (fun j ->
          if not row_seen.(j) then begin
            row_seen.(j) <- true;
            List.iter
              (fun v' ->
                if not reached.(v') then begin
                  reached.(v') <- true;
                  Queue.add v' q
                end)
              row_vars.(j)
          end)
        var_rows.(v)
    done;
    Array.iter
      (fun v ->
        if (not reached.(v)) && occ.(v) > 0 then
          report ~code:"ZR006" ~severity:Diagnostic.Warn ~location:(Diagnostic.Variable v)
            "output variable w%d does not depend on any input (unreachable in the constraint graph)"
            v)
      outputs
  end;

  List.rev !findings
