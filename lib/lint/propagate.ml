(* Determination propagation shared by Zlint's ZR002/ZR008 checks and the
   Zexec witness solver. See the .mli for the two-consumer story; DESIGN.md
   §11 discusses the soundness of the analysis fixpoint, §16 the solver. *)

open Fieldlib
open Constr

type structure = {
  nvars : int;
  nz : int;
  nc : int;
  occ : int array;
  row_vars : int list array;
  var_rows : int list array;
  monomial_of : (int, int * int) Hashtbl.t;
  monomial_users : (int, int) Hashtbl.t;
  is_def_row : bool array;
}

(* A row whose A, B and C are all single bare variables: a product
   definition z_i * z_j = m as emitted by the transform. *)
let product_shape (k : R1cs.constr) =
  let single lc =
    match Lincomb.terms lc with [ (v, c) ] when v > 0 && Fp.equal c Fp.one -> Some v | _ -> None
  in
  match (single k.R1cs.a, single k.R1cs.b, single k.R1cs.c) with
  | Some i, Some j, Some m -> Some ((min i j, max i j), m)
  | _ -> None

let build (sys : R1cs.system) : structure =
  let n = sys.R1cs.num_vars in
  let nc = R1cs.num_constraints sys in
  (* One pass: occurrence counts, per-row supports, incidence lists. *)
  let occ = Array.make (n + 1) 0 in
  let row_vars = Array.make nc [] in
  let var_rows = Array.make (n + 1) [] in
  R1cs.iteri
    (fun j k ->
      let vs = R1cs.constr_vars k in
      row_vars.(j) <- vs;
      List.iter
        (fun v ->
          occ.(v) <- occ.(v) + 1;
          var_rows.(v) <- j :: var_rows.(v))
        vs)
    sys;
  (* The monomial map: the *first* definition row of each product variable
     wins (duplicates are ZR005's business, not ours). *)
  let monomial_of : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let monomial_users : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let is_def_row = Array.make nc false in
  R1cs.iteri
    (fun row k ->
      match product_shape k with
      | Some ((i, j), m) ->
        if not (Hashtbl.mem monomial_of m) then begin
          Hashtbl.add monomial_of m (i, j);
          Hashtbl.add monomial_users i m;
          if j <> i then Hashtbl.add monomial_users j m;
          is_def_row.(row) <- true
        end
      | None -> ())
    sys;
  {
    nvars = n;
    nz = sys.R1cs.num_z;
    nc;
    occ;
    row_vars;
    var_rows;
    monomial_of;
    monomial_users;
    is_def_row;
  }

let first_row_of st v =
  match st.var_rows.(v) with
  | [] -> None
  | rows -> Some (List.fold_left min max_int rows)

(* The ZR002 fixpoint.

   The base rule: a row with exactly one undetermined variable pins it
   (up to finitely many roots). That alone is blind to the transform's
   factored quadratics — after §4, a Ginger bit-constraint b*b = b is a
   linear row {m, b} plus a product row b*b = m, each with two unknowns.
   So the rule is monomial-aware: a product variable m with monomial
   (i, j) "expands" to its undetermined base variables, and a row whose
   undetermined variables all expand into a single base variable v is a
   univariate polynomial in v, which pins v. A product variable whose
   base variables are both determined is itself determined. *)
let determined st ~seeds =
  let determined = Array.make (st.nvars + 1) false in
  determined.(0) <- true;
  let unknown = Array.make st.nc 0 in
  let events = Queue.create () in
  let settle v =
    if not determined.(v) then begin
      determined.(v) <- true;
      Queue.add v events
    end
  in
  Array.iter settle seeds;
  Array.iteri
    (fun j vs -> unknown.(j) <- List.length (List.filter (fun v -> not determined.(v)) vs))
    st.row_vars;
  (* Expand an undetermined row variable to its undetermined base vars. *)
  let expand v =
    match Hashtbl.find_opt st.monomial_of v with
    | Some (i, j) ->
      let base = if determined.(i) then [] else [ i ] in
      if determined.(j) || j = i then base else j :: base
    | None -> [ v ]
  in
  let resolve j =
    if unknown.(j) >= 1 && unknown.(j) <= 3 then
      match List.filter (fun v -> not determined.(v)) st.row_vars.(j) with
      | [ v ] -> settle v
      | us when not st.is_def_row.(j) -> (
        (* Expansion is justified by the *other* row defining each m; on
           the definition row itself, substituting m = z_i z_j collapses
           it to 0 = 0 and would pin nothing soundly. *)
        match List.sort_uniq compare (List.concat_map expand us) with
        | [ v ] ->
          (* Univariate in v: pin v; its dependent product vars follow
             through the event loop below. *)
          settle v
        | _ -> ())
      | _ -> ()
  in
  let touch_rows v = List.iter resolve st.var_rows.(v) in
  for j = 0 to st.nc - 1 do
    resolve j
  done;
  while not (Queue.is_empty events) do
    let v = Queue.take events in
    List.iter
      (fun j ->
        unknown.(j) <- unknown.(j) - 1;
        resolve j)
      st.var_rows.(v);
    (* Product variables riding on v: either both base vars are now
       determined (so m is), or rows mentioning m deserve a fresh look
       with the shrunken expansion. *)
    List.iter
      (fun m ->
        if not determined.(m) then
          match Hashtbl.find_opt st.monomial_of m with
          | Some (i, j) -> if determined.(i) && determined.(j) then settle m else touch_rows m
          | None -> ())
      (Hashtbl.find_all st.monomial_users v)
  done;
  determined

(* The residual A(v)*B(v) - C(v) of a row as a univariate polynomial in v,
   where the product variable [m] (if >= 0) stands for v^2. Only valid when
   the row's support is contained in {v, m}; callers check that. Returns
   coefficients p.(0) .. p.(4) of 1, v, ..., v^4. *)
let residual_poly ctx (k : R1cs.constr) ~v ~m =
  let side lc =
    [|
      Lincomb.const_part lc;
      Lincomb.coeff lc v;
      (if m >= 0 then Lincomb.coeff lc m else Fp.zero);
    |]
  in
  let a = side k.R1cs.a and b = side k.R1cs.b and c = side k.R1cs.c in
  let p = Array.make 5 Fp.zero in
  for i = 0 to 2 do
    for j = 0 to 2 do
      p.(i + j) <- Fp.add ctx p.(i + j) (Fp.mul ctx a.(i) b.(j))
    done
  done;
  for i = 0 to 2 do
    p.(i) <- Fp.sub ctx p.(i) c.(i)
  done;
  p

(* c * (v^2 - v) with c <> 0: the shape that forces v into {0, 1}. *)
let boolean_shape ctx p =
  Fp.is_zero p.(0) && Fp.is_zero p.(3) && Fp.is_zero p.(4)
  && (not (Fp.is_zero p.(2)))
  && Fp.equal p.(1) (Fp.neg ctx p.(2))

let booleans (sys : R1cs.system) st =
  let ctx = sys.R1cs.field in
  let bl = Array.make (st.nvars + 1) false in
  R1cs.iteri
    (fun j k ->
      match st.row_vars.(j) with
      | [ v ] ->
        (* Raw Ginger shape: the whole row is univariate in v. *)
        if boolean_shape ctx (residual_poly ctx k ~v ~m:(-1)) then bl.(v) <- true
      | [ x; y ] when not st.is_def_row.(j) ->
        (* Transform shape: a row over {v, m} with m defined elsewhere as
           v * v. Substituting m = v^2 is justified by that other row. *)
        let try_pair v m =
          match Hashtbl.find_opt st.monomial_of m with
          | Some (i, i') when i = v && i' = v ->
            if boolean_shape ctx (residual_poly ctx k ~v ~m) then bl.(v) <- true
          | _ -> ()
        in
        try_pair x y;
        try_pair y x
      | _ -> ())
    sys;
  bl

let statically_solvable (sys : R1cs.system) st ~seeds =
  let ctx = sys.R1cs.field in
  let bl = booleans sys st in
  let det = Array.make (st.nvars + 1) false in
  det.(0) <- true;
  let q = Queue.create () in
  let settle v =
    if not det.(v) then begin
      det.(v) <- true;
      Queue.add v q
    end
  in
  Array.iter settle seeds;
  (* Power-of-two recognition keyed on the canonical string form: Fp.el is
     an opaque natural, not a hashable scalar. *)
  let pow2 = Hashtbl.create 256 in
  let x = ref Fp.one in
  for e = 0 to Fp.bits ctx do
    Hashtbl.replace pow2 (Fp.to_string !x) e;
    x := Fp.add ctx !x !x
  done;
  let exponent_of c = Hashtbl.find_opt pow2 (Fp.to_string c) in
  let constrs = sys.R1cs.constraints in
  let examine j =
    let k = constrs.(j) in
    match List.filter (fun v -> not det.(v)) st.row_vars.(j) with
    | [] -> ()
    | [ v ] ->
      (* Linear in v: pinned to a unique value. On both A and B the row is
         a genuine quadratic — up to two roots, so not solvable. *)
      let in_a = not (Fp.is_zero (Lincomb.coeff k.R1cs.a v)) in
      let in_b = not (Fp.is_zero (Lincomb.coeff k.R1cs.b v)) in
      if not (in_a && in_b) then settle v
    | us ->
      (* Runtime-linear collapse: every unknown expands (product variable
         m -> its undetermined base variables, with determined bases
         contributing known factors at solve time) onto one base variable
         v, and the substituted residual has degree <= 1 in v — so the
         solver faces a plain linear equation once input values are in
         hand. Degree-2 collapses (x*x rows) are exactly the multi-root
         pins this pass refuses. Unsound on a definition row, where
         substituting m = z_i z_j collapses it to 0 = 0. *)
      let collapsed =
        if st.is_def_row.(j) then None
        else
          (* base variables (with degrees) each unknown expands to *)
          let deg_of u =
            match Hashtbl.find_opt st.monomial_of u with
            | Some (i, i') -> (
              match List.filter (fun b -> not det.(b)) (if i = i' then [ i ] else [ i; i' ]) with
              | [] -> Some (None, 0)
              | [ b ] -> Some (Some b, if i = i' then 2 else 1)
              | _ -> None)
            | None -> Some (Some u, 1)
          in
          let rec bases acc = function
            | [] -> Some acc
            | u :: rest -> (
              match deg_of u with
              | None -> None
              | Some entry -> bases ((u, entry) :: acc) rest)
          in
          match bases [] us with
          | None -> None
          | Some entries -> (
            match
              List.sort_uniq compare
                (List.filter_map (fun (_, (b, _)) -> b) entries)
            with
            | [ v ] ->
              let deg_term u =
                match List.assoc_opt u entries with Some (_, d) -> d | None -> 0
              in
              let side_deg lc =
                List.fold_left
                  (fun acc (u, _) -> max acc (if u > 0 && not det.(u) then deg_term u else 0))
                  0 (Lincomb.terms lc)
              in
              if
                side_deg k.R1cs.a + side_deg k.R1cs.b <= 1
                && side_deg k.R1cs.c <= 1
              then Some v
              else None
            | _ -> None)
      in
      (match collapsed with Some v -> settle v | None -> ());
      (* Bit-decomposition rule: against a constant non-zero B, unknowns
         that are all boolean with distinct power-of-two effective
         coefficients (a global sign is allowed) are each pinned to one
         bit of the known residue. *)
      if Lincomb.is_const k.R1cs.b then begin
        let kappa = Lincomb.const_part k.R1cs.b in
        if (not (Fp.is_zero kappa)) && List.for_all (fun v -> bl.(v)) us then begin
          let eff v =
            Fp.sub ctx (Fp.mul ctx kappa (Lincomb.coeff k.R1cs.a v)) (Lincomb.coeff k.R1cs.c v)
          in
          let exps sign =
            let rec go acc = function
              | [] -> Some (List.rev acc)
              | v :: rest -> (
                match exponent_of (sign (eff v)) with
                | Some e -> go (e :: acc) rest
                | None -> None)
            in
            go [] us
          in
          match
            match exps (fun c -> c) with Some e -> Some e | None -> exps (Fp.neg ctx)
          with
          | Some es when List.length (List.sort_uniq compare es) = List.length es ->
            List.iter settle us
          | _ -> ()
        end
      end
  in
  for j = 0 to st.nc - 1 do
    examine j
  done;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    List.iter examine st.var_rows.(v);
    List.iter
      (fun m -> if not det.(m) then List.iter examine st.var_rows.(m))
      (Hashtbl.find_all st.monomial_users v)
  done;
  det
