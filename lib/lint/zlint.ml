(* Zlint: the two-layer soundness analyzer (DESIGN.md §11).

   Layer 1 ([Frontend]) lints the ZL AST: uninitialized reads, unused
   variables, shadowing, unroll-budget overruns, constant conditions.
   Layer 2 ([Backend]) audits a compiled (or deserialized) quadratic-form
   constraint system for the bugs that make verification vacuous:
   unconstrained and under-determined variables, dead/duplicate rows,
   K2 dedup failures, outputs disconnected from the inputs.

   This module is the library face: per-file drivers that pick the right
   layers, plus the text and JSON report renderers used by `zaatar lint`. *)

module Diagnostic = Diagnostic
module Frontend = Frontend
module Backend = Backend
module Propagate = Propagate

let schema = "zaatar-lint/1"

(* Findings for one lint target (a .zl source or a serialized .r1cs). *)
type report = { file : string; findings : Diagnostic.t list }

(* Source layer only: parse + AST checks. *)
let lint_source ?cfg src = Frontend.check_source ?cfg src

(* Both layers for a ZL source we can also compile: AST checks, then the
   backend over the compiled Zaatar system with the true IO split and the
   transform's product-row map. A source the compiler rejects still gets
   its frontend findings (which include the ZL000 for the failure). *)
let lint_compiled (c : Zlang.Compile.compiled) =
  Backend.analyze
    ~io:{ Backend.num_inputs = c.Zlang.Compile.num_inputs; num_outputs = c.Zlang.Compile.num_outputs }
    ~transform:c.Zlang.Compile.transform
    (Zlang.Compile.zaatar_r1cs c)

let lint_zl ?cfg ~ctx src =
  let front = Frontend.check_source ?cfg src in
  if Diagnostic.has_errors front then front
  else
    match Zlang.Compile.compile ~ctx src with
    | c -> front @ lint_compiled c
    | exception Zlang.Ast.Error msg ->
      front @ [ Diagnostic.make ~code:"ZL000" ~severity:Diagnostic.Error "%s" msg ]

(* Backend layer only, for raw systems with no recorded IO split. *)
let lint_system ?io sys = Backend.analyze ?io sys

let summarize reports =
  let all = List.concat_map (fun r -> r.findings) reports in
  ( Diagnostic.count_severity Diagnostic.Error all,
    Diagnostic.count_severity Diagnostic.Warn all,
    Diagnostic.count_severity Diagnostic.Info all )

(* Exit-code contract (README): 0 clean, 2 when any error-severity finding
   exists. Operational failures (unreadable file, ...) are the CLI's 1. *)
let exit_code reports =
  if List.exists (fun r -> Diagnostic.has_errors r.findings) reports then 2 else 0

let render_text ?limit reports =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      List.iter
        (fun d -> Buffer.add_string buf (Diagnostic.to_text ~file:r.file d ^ "\n"))
        (Diagnostic.truncate ?limit r.findings))
    reports;
  let errors, warns, infos = summarize reports in
  Buffer.add_string buf
    (Printf.sprintf "%d file(s): %d error(s), %d warning(s), %d info\n" (List.length reports)
       errors warns infos);
  Buffer.contents buf

let render_json ?limit reports : Zobs.Json.t =
  let open Zobs.Json in
  let errors, warns, infos = summarize reports in
  Obj
    [
      ("schema", Str schema);
      ( "files",
        Arr
          (List.map
             (fun r ->
               Obj
                 [
                   ("file", Str r.file);
                   ( "findings",
                     Arr (List.map Diagnostic.to_json (Diagnostic.truncate ?limit r.findings)) );
                 ])
             reports) );
      ( "totals",
        Obj
          [
            ("errors", Num (float_of_int errors));
            ("warnings", Num (float_of_int warns));
            ("info", Num (float_of_int infos));
          ] );
      ("exit_code", Num (float_of_int (exit_code reports)));
    ]
