(** Prime fields F_p with Barrett reduction.

    The PCP protocols, the QAP construction and the commitment all work over
    a large prime field (§5.1 of the paper uses 128-bit and 220-bit prime
    moduli). A [ctx] carries the modulus and the precomputed Barrett
    constant; elements are canonical naturals in [0, p). *)

type ctx

type tag = Field | Group
(** Which cost ledger a context's operations land in: [Field] contexts bump
    the Figure-3 [fp.mul] / [fp.mul_lazy] / [fp.inv] counters, [Group]
    contexts (the ElGamal group modulus) bump the [fp.*.group] variants so
    group-side residue arithmetic never pollutes the field-op ledger. *)

type el = Nat.t
(** Always reduced: [0 <= el < modulus ctx]. *)

val create : ?tag:tag -> Nat.t -> ctx
(** [create p] builds a context for modulus [p]. [p] must be odd and at
    least 3; primality is the caller's responsibility (see {!Primes}).
    [tag] defaults to [Field]. *)

val modulus : ctx -> Nat.t
val bits : ctx -> int
(** Bit length of the modulus. *)

val num_bytes : ctx -> int
(** Bytes needed to hold any canonical element — the fixed element width of
    the Zwire codec. *)

val zero : el
val one : el
val two : ctx -> el

val of_nat : ctx -> Nat.t -> el
(** Reduce an arbitrary natural modulo p. *)

val of_int : ctx -> int -> el
(** Accepts negative integers (mapped to [p - |n| mod p]). *)

val of_nat_opt : ctx -> Nat.t -> el option
(** [None] unless [n] is already a canonical residue in [0, p). The wire
    codec's range check: transmitted elements are rejected, never reduced. *)

val to_nat : el -> Nat.t
val to_int_opt : el -> int option

val to_signed_int : ctx -> el -> int option
(** Interpret elements in [(p/2, p)] as negative; [None] if out of native
    range. Used to read back integer outputs of compiled computations. *)

val equal : el -> el -> bool
val is_zero : el -> bool

val add : ctx -> el -> el -> el
val sub : ctx -> el -> el -> el
val neg : ctx -> el -> el
val mul : ctx -> el -> el -> el
val sqr : ctx -> el -> el
val mul_lazy : ctx -> el -> el -> Nat.t
(** Product without the final reduction; the paper's [f_lazy]
    microbenchmark. Combine with {!reduce}. *)

val reduce : ctx -> Nat.t -> el
(** Barrett-reduce a value < p^2 (more generally < 2^(62k) for a k-limb p). *)

val inv : ctx -> el -> el
(** Modular inverse by the extended Euclidean algorithm. Raises
    [Division_by_zero] on zero. *)

val inv_fermat : ctx -> el -> el
(** Inverse as [a^(p-2)]; kept as an ablation/cross-check of {!inv}. *)

val div : ctx -> el -> el -> el

val batch_inv : ctx -> el array -> el array
(** Montgomery's trick: n inverses for one [inv] and 3(n-1) multiplications.
    Raises [Division_by_zero] if any element is zero. *)

val pow : ctx -> el -> Nat.t -> el
val pow_int : ctx -> el -> int -> el

val dot : ctx -> el array -> el array -> el
(** Inner product with lazy reduction: one reduction per partial-sum
    overflow window rather than per term. The prover's query-answering
    primitive (π(q) = <q, u>). *)

val sample : ctx -> (int -> bytes) -> el
(** [sample ctx random_bytes] draws a uniform element by rejection, pulling
    [random_bytes n] for fresh entropy. *)

val to_string : el -> string
val pp : Format.formatter -> el -> unit

(** {2 Packed elements}

    Zero-allocation kernels over flat {!Limb} arenas. A {!scratch} holds
    the modulus/Barrett constants as limb slices plus preallocated
    temporaries for one reduction; every packed operation threads one
    through explicitly. Ownership discipline: a scratch belongs to exactly
    one domain — obtain it via {!scratch_for} (domain-local, cached per
    context) rather than sharing a {!scratch_create} result across
    [Dompool] workers. See DESIGN.md §13. *)

type scratch

val scratch_create : ctx -> scratch
(** A fresh arena; prefer {!scratch_for} unless you are managing domains
    yourself. *)

val scratch_for : ctx -> scratch
(** The calling domain's cached arena for this context (created on first
    use; keyed by context physical identity). *)

module Vec : sig
  (** A packed vector of canonical residues: slot [i] occupies limbs
      [i*k, (i+1)*k) of one off-heap buffer, where [k] is the limb count
      of the modulus. *)

  type t = { n : int; k : int; buf : Limb.a }

  val create : ctx -> int -> t
  (** All slots zero. *)

  val length : t -> int
  val get : t -> int -> el
  val set : t -> int -> el -> unit
  val of_array : ctx -> el array -> t
  val to_array : t -> el array
  val is_zero : t -> int -> bool
  val blit : t -> int -> t -> int -> int -> unit
  val clear : t -> int -> int -> unit
  val swap : scratch -> t -> int -> int -> unit

  val mul : ctx -> scratch -> t -> int -> t -> int -> t -> int -> unit
  (** [mul ctx sc dst di a ai b bi]: slot [di] of [dst] gets
      [a.(ai) * b.(bi)]; counted as one [fp.mul]. Any slots may alias. *)

  val add : ctx -> scratch -> t -> int -> t -> int -> t -> int -> unit
  val sub : ctx -> scratch -> t -> int -> t -> int -> t -> int -> unit

  val butterfly : ctx -> scratch -> t -> int -> int -> t -> int -> unit
  (** [butterfly ctx sc data i j tw ti]: the fused Cooley-Tukey step
      [t = data.(j) * tw.(ti); data.(j) <- data.(i) - t;
      data.(i) <- data.(i) + t]. One counted field mul, no allocation. *)

  val scale_all : ctx -> scratch -> t -> t -> int -> unit
  (** Multiply every slot of the vector by slot [ci] of [c]. *)
end
