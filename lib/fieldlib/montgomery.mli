(** Montgomery-form modular arithmetic: the multiplication-heavy
    alternative to {!Fp}'s Barrett reduction, used where long chains of
    multiplications dominate (group exponentiation in the commitment's
    ElGamal, §5.1's e/d/h costs).

    Elements live in Montgomery representation (xR mod p, R = 2^(31k));
    convert at the boundary with {!to_mont}/{!of_mont}. The ablation bench
    compares a Barrett and a Montgomery exponentiation ladder. *)

open Nat

type ctx

type el
(** An element in Montgomery representation. *)

val create : t -> ctx
(** Modulus must be odd and >= 3. *)

val modulus : ctx -> t

val to_mont : ctx -> t -> el
(** Input must be reduced (< p). *)

val of_mont : ctx -> el -> t

val one : ctx -> el
val zero : ctx -> el

val mul : ctx -> el -> el -> el
val sqr : ctx -> el -> el
val add : ctx -> el -> el -> el
val sub : ctx -> el -> el -> el

val pow : ctx -> el -> t -> el
(** Plain square-and-multiply entirely inside Montgomery form (kept as the
    ablation baseline; production paths use the kernels below). *)

val pow_window : ctx -> el -> t -> el
(** Sliding-window square-and-multiply: a table of odd powers up to
    [2^w - 1] cuts multiplications from [bits/2] to roughly [bits/(w+1)].
    The window width adapts to the exponent size. *)

(** {2 Exponentiation kernels (DESIGN.md §8)} *)

type fb
(** A fixed-base window table: precomputed powers [b^(j * 2^(w*i))] so any
    exponent below the table width costs one multiplication per nonzero
    base-[2^w] digit — no squarings. *)

val fb_precompute : ctx -> ?window:int -> bits:int -> el -> fb
(** [fb_precompute ctx ~window ~bits b] builds the table covering exponents
    of up to [bits] bits. [window] in [1, 16], default 5. Costs about
    [(bits/window) * 2^window] multiplications. *)

val fb_bits : fb -> int
(** Widest supported exponent, in bits. *)

val fb_pow : ctx -> fb -> t -> el
(** Raises [Invalid_argument] if the exponent is wider than the table. *)

val pow2 : ctx -> el -> t -> el -> t -> el
(** [pow2 ctx b1 e1 b2 e2 = b1^e1 * b2^e2] by Shamir/Straus simultaneous
    exponentiation: one shared squaring chain, about half the cost of two
    independent ladders. *)

val multi_pow : ctx -> ?window:int -> el array -> t array -> el
(** [multi_pow ctx bases exps = prod_i bases.(i)^exps.(i)] by Pippenger
    bucket aggregation: about [(bits/c) * (n + 2^c)] multiplications for
    [c ~ log2 n], against [1.5 * n * bits] for independent ladders.
    [window] overrides the automatic choice of [c] (used by tests). The
    bucket arena is packed ({!Limb.a} slices + [mul_into]), so the inner
    loop allocates nothing on the OCaml heap. *)

(** {2 Packed kernels}

    REDC on {!Limb.a} slices. A {!scratch} is owned by one domain —
    obtain it with {!scratch_for} (domain-local, cached per context); see
    DESIGN.md §13 for the ownership discipline. *)

type scratch

val scratch_create : ctx -> scratch
val scratch_for : ctx -> scratch

val mul_into : ctx -> scratch -> Limb.a -> int -> Limb.a -> int -> Limb.a -> int -> unit
(** [mul_into ctx sc dst dso a ao b bo]: the k-limb slice of [dst] at
    [dso] gets [REDC(a * b)] of the k-limb input slices (all Montgomery
    form). [dst] may alias either input slice. One counted [mont.mul]. *)

val pow_nat : ctx -> t -> t -> t
(** [pow_nat ctx b e]: convenience [b^e mod p] over plain naturals
    (converts in and out; windowed ladder). *)

val equal : el -> el -> bool
