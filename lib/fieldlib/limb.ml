(* Packed limb buffers: the zero-allocation substrate of the hot loops.

   A [Limb.a] is one flat off-heap Bigarray of base-2^31 limbs holding many
   fixed-width numbers side by side (NTT vectors, Pippenger buckets,
   Barrett/REDC scratch). The GC sees a single custom block instead of one
   boxed [int array] per element, which is where the construct_u minor-word
   reduction comes from. All kernels are offset/width-addressed so callers
   can slice without allocating views; the same carry discipline as [Nat]
   applies (limb * limb + limb + limb fits 62 bits). *)

type a = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let base_bits = 31
let base = 1 lsl base_bits
let mask = base - 1

let create n : a =
  let b = Bigarray.Array1.create Bigarray.Int Bigarray.c_layout n in
  Bigarray.Array1.fill b 0;
  b

let length (b : a) = Bigarray.Array1.dim b

external get : a -> int -> int = "%caml_ba_unsafe_ref_1"
external set : a -> int -> int -> unit = "%caml_ba_unsafe_set_1"

let fill (b : a) off w v =
  for i = off to off + w - 1 do
    set b i v
  done

let clear b off w = fill b off w 0

let blit (src : a) so (dst : a) dso w =
  if dso <= so then
    for i = 0 to w - 1 do
      set dst (dso + i) (get src (so + i))
    done
  else
    for i = w - 1 downto 0 do
      set dst (dso + i) (get src (so + i))
    done

(* Plain loops, not inner recursive functions: a [let rec] here closes
   over the slice arguments and costs a 7-word closure per call, which
   dominates the butterfly's allocation profile. *)
let cmp (x : a) xo (y : a) yo w =
  let r = ref 0 and i = ref (w - 1) in
  while !r = 0 && !i >= 0 do
    let a = get x (xo + !i) and b = get y (yo + !i) in
    if a < b then r := -1 else if a > b then r := 1;
    decr i
  done;
  !r

let is_zero_slice (x : a) xo w =
  let z = ref true and i = ref 0 in
  while !z && !i < w do
    if get x (xo + !i) <> 0 then z := false;
    incr i
  done;
  !z

(* dst <- x + y over [w] limbs; returns the carry out. Index-synchronous,
   so [dst] may alias either input. *)
let add (dst : a) dso (x : a) xo (y : a) yo w =
  let carry = ref 0 in
  for i = 0 to w - 1 do
    let s = get x (xo + i) + get y (yo + i) + !carry in
    set dst (dso + i) (s land mask);
    carry := s lsr base_bits
  done;
  !carry

(* dst <- x - y mod 2^(31w); returns the borrow out. Aliasing as [add]. *)
let sub (dst : a) dso (x : a) xo (y : a) yo w =
  let borrow = ref 0 in
  for i = 0 to w - 1 do
    let s = get x (xo + i) - get y (yo + i) - !borrow in
    if s < 0 then begin
      set dst (dso + i) (s + base);
      borrow := 1
    end else begin
      set dst (dso + i) s;
      borrow := 0
    end
  done;
  !borrow

(* Full schoolbook product: dst[0..wa+wb-1] <- x * y. The destination slice
   must not overlap either input slice. *)
let mul (dst : a) dso (x : a) xo wa (y : a) yo wb =
  clear dst dso (wa + wb);
  for i = 0 to wa - 1 do
    let xi = get x (xo + i) in
    if xi <> 0 then begin
      let carry = ref 0 in
      for j = 0 to wb - 1 do
        let p = get dst (dso + i + j) + (xi * get y (yo + j)) + !carry in
        set dst (dso + i + j) (p land mask);
        carry := p lsr base_bits
      done;
      let k = ref (dso + i + wb) in
      while !carry <> 0 do
        let s = get dst !k + !carry in
        set dst !k (s land mask);
        carry := s lsr base_bits;
        incr k
      done
    end
  done

(* Low limbs only: dst[0..wout-1] <- (x * y) mod 2^(31*wout). Same overlap
   rule as [mul]. *)
let mul_low (dst : a) dso (x : a) xo wa (y : a) yo wb wout =
  clear dst dso wout;
  let wa = min wa wout in
  for i = 0 to wa - 1 do
    let xi = get x (xo + i) in
    if xi <> 0 then begin
      let jmax = min (wb - 1) (wout - 1 - i) in
      let carry = ref 0 in
      for j = 0 to jmax do
        let p = get dst (dso + i + j) + (xi * get y (yo + j)) + !carry in
        set dst (dso + i + j) (p land mask);
        carry := p lsr base_bits
      done;
      let k = ref (i + jmax + 1) in
      while !carry <> 0 && !k < wout do
        let s = get dst (dso + !k) + !carry in
        set dst (dso + !k) (s land mask);
        carry := s lsr base_bits;
        incr k
      done
    end
  done

(* Boundary codecs: boxed <-> packed. Only these two allocate. *)

let of_nat (n : Nat.t) (dst : a) off w =
  let l = Nat.to_limbs ~width:w n in
  for i = 0 to w - 1 do
    set dst (off + i) l.(i)
  done

let to_nat (src : a) off w =
  let l = Array.init w (fun i -> get src (off + i)) in
  Nat.of_limbs l
