(* A context is tagged by what its modulus is: [Field] for the PCP field
   (the paper's f / f_lazy / f_div rows), [Group] for the ElGamal group
   modulus p. The tag only selects which cost counters the context bumps —
   group-side residue multiplications land in fp.*.group so they never
   pollute the Figure-3 field-op ledger (a mod-p mul at 512-1024 bits is
   not an f op at 128-220 bits). *)
type tag = Field | Group

type ctx = {
  p : Nat.t;
  k : int; (* limbs of p *)
  mu : Nat.t; (* floor(B^2k / p) for Barrett reduction *)
  p_bits : int;
  p_minus_2 : Nat.t;
  sample_bytes : int;
  sample_mask : int; (* mask for the top sampled byte *)
  dot_window : int; (* lazy products that can be accumulated before reduction *)
  cnt_mul : Zobs.Counter.t;
  cnt_mul_lazy : Zobs.Counter.t;
  cnt_inv : Zobs.Counter.t;
}

type el = Nat.t

(* Semantic cost counters (the paper's §5.1 f / f_div rows). Gated inside
   Zobs by the global flag: one atomic load when tracing is off. *)
let c_mul = Zobs.Counter.make "fp.mul"
let c_mul_lazy = Zobs.Counter.make "fp.mul_lazy"
let c_inv = Zobs.Counter.make "fp.inv"
let c_mul_g = Zobs.Counter.make "fp.mul.group"
let c_mul_lazy_g = Zobs.Counter.make "fp.mul_lazy.group"
let c_inv_g = Zobs.Counter.make "fp.inv.group"

let create ?(tag = Field) p =
  if Nat.compare p (Nat.of_int 3) < 0 then invalid_arg "Fp.create: modulus too small";
  if Nat.is_even p then invalid_arg "Fp.create: modulus must be odd";
  let k = Nat.num_limbs p in
  let b2k = Nat.shift_left Nat.one (31 * 2 * k) in
  let mu, _ = Nat.divmod b2k p in
  let p_bits = Nat.num_bits p in
  let psq = Nat.sqr p in
  let window, _ = Nat.divmod b2k psq in
  let dot_window = match Nat.to_int_opt window with Some w -> max 1 (min (w - 1) 1024) | None -> 1024 in
  let cnt_mul, cnt_mul_lazy, cnt_inv =
    match tag with Field -> (c_mul, c_mul_lazy, c_inv) | Group -> (c_mul_g, c_mul_lazy_g, c_inv_g)
  in
  {
    p;
    k;
    mu;
    p_bits;
    p_minus_2 = Nat.sub p Nat.two;
    sample_bytes = (p_bits + 7) / 8;
    sample_mask = (1 lsl (((p_bits - 1) mod 8) + 1)) - 1;
    dot_window;
    cnt_mul;
    cnt_mul_lazy;
    cnt_inv;
  }

let modulus ctx = ctx.p
let bits ctx = ctx.p_bits
let num_bytes ctx = (ctx.p_bits + 7) / 8
let zero = Nat.zero
let one = Nat.one
let equal = Nat.equal
let is_zero = Nat.is_zero
let to_nat (x : el) : Nat.t = x
let to_int_opt = Nat.to_int_opt

(* Barrett reduction of x < B^2k into [0, p). *)
let reduce ctx x =
  if Nat.compare x ctx.p < 0 then x
  else begin
    let q1 = Nat.shift_right_limbs x (ctx.k - 1) in
    let q2 = Nat.mul q1 ctx.mu in
    let q3 = Nat.shift_right_limbs q2 (ctx.k + 1) in
    let r1 = Nat.truncate_limbs x (ctx.k + 1) in
    let r2 = Nat.truncate_limbs (Nat.mul q3 ctx.p) (ctx.k + 1) in
    let r =
      if Nat.compare r1 r2 >= 0 then Nat.sub r1 r2
      else Nat.sub (Nat.add r1 (Nat.shift_left Nat.one (31 * (ctx.k + 1)))) r2
    in
    let r = ref r in
    while Nat.compare !r ctx.p >= 0 do
      r := Nat.sub !r ctx.p
    done;
    !r
  end

let of_nat ctx n =
  if Nat.num_limbs n <= 2 * ctx.k then reduce ctx n
  else snd (Nat.divmod n ctx.p)

(* Codec hook (lib/wire): accept only canonical residues — a transmitted
   element at or above the modulus is a protocol violation, not something
   to reduce silently. *)
let of_nat_opt ctx n = if Nat.compare n ctx.p < 0 then Some n else None

let of_int ctx n =
  if n >= 0 then of_nat ctx (Nat.of_int n)
  else begin
    let m = of_nat ctx (Nat.of_int (-n)) in
    if Nat.is_zero m then Nat.zero else Nat.sub ctx.p m
  end

let two ctx = of_int ctx 2

let to_signed_int ctx x =
  let half = Nat.shift_right ctx.p 1 in
  if Nat.compare x half <= 0 then Nat.to_int_opt x
  else
    match Nat.to_int_opt (Nat.sub ctx.p x) with
    | Some m -> Some (-m)
    | None -> None

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.p >= 0 then Nat.sub s ctx.p else s

let sub ctx a b = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a ctx.p) b
let neg ctx a = if Nat.is_zero a then Nat.zero else Nat.sub ctx.p a
let mul ctx a b =
  Zobs.Counter.incr ctx.cnt_mul;
  reduce ctx (Nat.mul a b)

let sqr ctx a =
  Zobs.Counter.incr ctx.cnt_mul;
  reduce ctx (Nat.sqr a)

let mul_lazy ctx a b =
  Zobs.Counter.incr ctx.cnt_mul_lazy;
  Nat.mul a b

let pow ctx b e =
  let nbits = Nat.num_bits e in
  let acc = ref Nat.one in
  for i = nbits - 1 downto 0 do
    acc := sqr ctx !acc;
    if Nat.testbit e i then acc := mul ctx !acc b
  done;
  !acc

let pow_int ctx b e =
  if e < 0 then invalid_arg "Fp.pow_int: negative exponent";
  pow ctx b (Nat.of_int e)

let inv_fermat ctx a =
  if Nat.is_zero a then raise Division_by_zero;
  Zobs.Counter.incr ctx.cnt_inv;
  pow ctx a ctx.p_minus_2

(* Extended Euclid with sign-tracked Bezout coefficient for a.
   Invariant: t_i * a = r_i (mod p). *)
let inv ctx a =
  if Nat.is_zero a then raise Division_by_zero;
  Zobs.Counter.incr ctx.cnt_inv;
  let sadd (s1, m1) (s2, m2) =
    if s1 = s2 then (s1, Nat.add m1 m2)
    else if Nat.compare m1 m2 >= 0 then (s1, Nat.sub m1 m2)
    else (s2, Nat.sub m2 m1)
  in
  let rec go r0 r1 t0 t1 =
    if Nat.is_zero r1 then begin
      if not (Nat.is_one r0) then raise Division_by_zero;
      let s, m = t0 in
      let m = if Nat.compare m ctx.p >= 0 then snd (Nat.divmod m ctx.p) else m in
      if s && not (Nat.is_zero m) then Nat.sub ctx.p m else m
    end else begin
      let q, r2 = Nat.divmod r0 r1 in
      let s1, m1 = t1 in
      let t2 = sadd t0 (not s1, Nat.mul q m1) in
      go r1 r2 t1 t2
    end
  in
  go ctx.p a (false, Nat.zero) (false, Nat.one)

let div ctx a b = mul ctx a (inv ctx b)

let batch_inv ctx xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let prefix = Array.make n Nat.one in
    let acc = ref Nat.one in
    for i = 0 to n - 1 do
      prefix.(i) <- !acc;
      if Nat.is_zero xs.(i) then raise Division_by_zero;
      acc := mul ctx !acc xs.(i)
    done;
    let inv_all = ref (inv ctx !acc) in
    let out = Array.make n Nat.zero in
    for i = n - 1 downto 0 do
      out.(i) <- mul ctx !inv_all prefix.(i);
      inv_all := mul ctx !inv_all xs.(i)
    done;
    out
  end

let dot ctx a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Fp.dot: length mismatch";
  let acc = ref Nat.zero in
  let pending = ref 0 in
  let nmul = ref 0 in
  for i = 0 to n - 1 do
    if not (Nat.is_zero a.(i) || Nat.is_zero b.(i)) then begin
      if !pending >= ctx.dot_window then begin
        acc := reduce ctx !acc;
        pending := 0
      end;
      acc := Nat.add !acc (Nat.mul a.(i) b.(i));
      incr pending;
      incr nmul
    end
  done;
  Zobs.Counter.add ctx.cnt_mul_lazy !nmul;
  reduce ctx !acc

let sample ctx random_bytes =
  let rec draw () =
    let b = random_bytes ctx.sample_bytes in
    if Bytes.length b <> ctx.sample_bytes then invalid_arg "Fp.sample: bad byte source";
    let top = Char.code (Bytes.get b (ctx.sample_bytes - 1)) land ctx.sample_mask in
    Bytes.set b (ctx.sample_bytes - 1) (Char.chr top);
    let x = Nat.of_bytes_le b in
    if Nat.compare x ctx.p < 0 then x else draw ()
  in
  draw ()

let to_string = Nat.to_decimal
let pp fmt x = Format.pp_print_string fmt (to_string x)
