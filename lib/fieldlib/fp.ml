(* A context is tagged by what its modulus is: [Field] for the PCP field
   (the paper's f / f_lazy / f_div rows), [Group] for the ElGamal group
   modulus p. The tag only selects which cost counters the context bumps —
   group-side residue multiplications land in fp.*.group so they never
   pollute the Figure-3 field-op ledger (a mod-p mul at 512-1024 bits is
   not an f op at 128-220 bits). *)
type tag = Field | Group

type ctx = {
  p : Nat.t;
  k : int; (* limbs of p *)
  mu : Nat.t; (* floor(B^2k / p) for Barrett reduction *)
  p_bits : int;
  p_minus_2 : Nat.t;
  sample_bytes : int;
  sample_mask : int; (* mask for the top sampled byte *)
  dot_window : int; (* lazy products that can be accumulated before reduction *)
  cnt_mul : Zobs.Counter.t;
  cnt_mul_lazy : Zobs.Counter.t;
  cnt_inv : Zobs.Counter.t;
}

type el = Nat.t

(* Semantic cost counters (the paper's §5.1 f / f_div rows). Gated inside
   Zobs by the global flag: one atomic load when tracing is off. *)
let c_mul = Zobs.Counter.make "fp.mul"
let c_mul_lazy = Zobs.Counter.make "fp.mul_lazy"
let c_inv = Zobs.Counter.make "fp.inv"
let c_mul_g = Zobs.Counter.make "fp.mul.group"
let c_mul_lazy_g = Zobs.Counter.make "fp.mul_lazy.group"
let c_inv_g = Zobs.Counter.make "fp.inv.group"

let create ?(tag = Field) p =
  if Nat.compare p (Nat.of_int 3) < 0 then invalid_arg "Fp.create: modulus too small";
  if Nat.is_even p then invalid_arg "Fp.create: modulus must be odd";
  let k = Nat.num_limbs p in
  let b2k = Nat.shift_left Nat.one (31 * 2 * k) in
  let mu, _ = Nat.divmod b2k p in
  let p_bits = Nat.num_bits p in
  let psq = Nat.sqr p in
  let window, _ = Nat.divmod b2k psq in
  let dot_window = match Nat.to_int_opt window with Some w -> max 1 (min (w - 1) 1024) | None -> 1024 in
  let cnt_mul, cnt_mul_lazy, cnt_inv =
    match tag with Field -> (c_mul, c_mul_lazy, c_inv) | Group -> (c_mul_g, c_mul_lazy_g, c_inv_g)
  in
  {
    p;
    k;
    mu;
    p_bits;
    p_minus_2 = Nat.sub p Nat.two;
    sample_bytes = (p_bits + 7) / 8;
    sample_mask = (1 lsl (((p_bits - 1) mod 8) + 1)) - 1;
    dot_window;
    cnt_mul;
    cnt_mul_lazy;
    cnt_inv;
  }

let modulus ctx = ctx.p
let bits ctx = ctx.p_bits
let num_bytes ctx = (ctx.p_bits + 7) / 8
let zero = Nat.zero
let one = Nat.one
let equal = Nat.equal
let is_zero = Nat.is_zero
let to_nat (x : el) : Nat.t = x
let to_int_opt = Nat.to_int_opt

(* Barrett reduction of x < B^2k into [0, p). *)
let reduce ctx x =
  if Nat.compare x ctx.p < 0 then x
  else begin
    let q1 = Nat.shift_right_limbs x (ctx.k - 1) in
    let q2 = Nat.mul q1 ctx.mu in
    let q3 = Nat.shift_right_limbs q2 (ctx.k + 1) in
    let r1 = Nat.truncate_limbs x (ctx.k + 1) in
    let r2 = Nat.truncate_limbs (Nat.mul q3 ctx.p) (ctx.k + 1) in
    let r =
      if Nat.compare r1 r2 >= 0 then Nat.sub r1 r2
      else Nat.sub (Nat.add r1 (Nat.shift_left Nat.one (31 * (ctx.k + 1)))) r2
    in
    let r = ref r in
    while Nat.compare !r ctx.p >= 0 do
      r := Nat.sub !r ctx.p
    done;
    !r
  end

let of_nat ctx n =
  if Nat.num_limbs n <= 2 * ctx.k then reduce ctx n
  else snd (Nat.divmod n ctx.p)

(* Codec hook (lib/wire): accept only canonical residues — a transmitted
   element at or above the modulus is a protocol violation, not something
   to reduce silently. *)
let of_nat_opt ctx n = if Nat.compare n ctx.p < 0 then Some n else None

let of_int ctx n =
  if n >= 0 then of_nat ctx (Nat.of_int n)
  else begin
    let m = of_nat ctx (Nat.of_int (-n)) in
    if Nat.is_zero m then Nat.zero else Nat.sub ctx.p m
  end

let two ctx = of_int ctx 2

let to_signed_int ctx x =
  let half = Nat.shift_right ctx.p 1 in
  if Nat.compare x half <= 0 then Nat.to_int_opt x
  else
    match Nat.to_int_opt (Nat.sub ctx.p x) with
    | Some m -> Some (-m)
    | None -> None

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.p >= 0 then Nat.sub s ctx.p else s

let sub ctx a b = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a ctx.p) b
let neg ctx a = if Nat.is_zero a then Nat.zero else Nat.sub ctx.p a
let mul ctx a b =
  Zobs.Counter.incr ctx.cnt_mul;
  reduce ctx (Nat.mul a b)

let sqr ctx a =
  Zobs.Counter.incr ctx.cnt_mul;
  reduce ctx (Nat.sqr a)

let mul_lazy ctx a b =
  Zobs.Counter.incr ctx.cnt_mul_lazy;
  Nat.mul a b

let pow ctx b e =
  let nbits = Nat.num_bits e in
  let acc = ref Nat.one in
  for i = nbits - 1 downto 0 do
    acc := sqr ctx !acc;
    if Nat.testbit e i then acc := mul ctx !acc b
  done;
  !acc

let pow_int ctx b e =
  if e < 0 then invalid_arg "Fp.pow_int: negative exponent";
  pow ctx b (Nat.of_int e)

let inv_fermat ctx a =
  if Nat.is_zero a then raise Division_by_zero;
  Zobs.Counter.incr ctx.cnt_inv;
  pow ctx a ctx.p_minus_2

(* Extended Euclid with sign-tracked Bezout coefficient for a.
   Invariant: t_i * a = r_i (mod p). *)
let inv ctx a =
  if Nat.is_zero a then raise Division_by_zero;
  Zobs.Counter.incr ctx.cnt_inv;
  let sadd (s1, m1) (s2, m2) =
    if s1 = s2 then (s1, Nat.add m1 m2)
    else if Nat.compare m1 m2 >= 0 then (s1, Nat.sub m1 m2)
    else (s2, Nat.sub m2 m1)
  in
  let rec go r0 r1 t0 t1 =
    if Nat.is_zero r1 then begin
      if not (Nat.is_one r0) then raise Division_by_zero;
      let s, m = t0 in
      let m = if Nat.compare m ctx.p >= 0 then snd (Nat.divmod m ctx.p) else m in
      if s && not (Nat.is_zero m) then Nat.sub ctx.p m else m
    end else begin
      let q, r2 = Nat.divmod r0 r1 in
      let s1, m1 = t1 in
      let t2 = sadd t0 (not s1, Nat.mul q m1) in
      go r1 r2 t1 t2
    end
  in
  go ctx.p a (false, Nat.zero) (false, Nat.one)

let div ctx a b = mul ctx a (inv ctx b)

let batch_inv ctx xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let prefix = Array.make n Nat.one in
    let acc = ref Nat.one in
    for i = 0 to n - 1 do
      prefix.(i) <- !acc;
      if Nat.is_zero xs.(i) then raise Division_by_zero;
      acc := mul ctx !acc xs.(i)
    done;
    let inv_all = ref (inv ctx !acc) in
    let out = Array.make n Nat.zero in
    for i = n - 1 downto 0 do
      out.(i) <- mul ctx !inv_all prefix.(i);
      inv_all := mul ctx !inv_all xs.(i)
    done;
    out
  end

let dot ctx a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Fp.dot: length mismatch";
  let acc = ref Nat.zero in
  let pending = ref 0 in
  let nmul = ref 0 in
  for i = 0 to n - 1 do
    if not (Nat.is_zero a.(i) || Nat.is_zero b.(i)) then begin
      if !pending >= ctx.dot_window then begin
        acc := reduce ctx !acc;
        pending := 0
      end;
      acc := Nat.add !acc (Nat.mul a.(i) b.(i));
      incr pending;
      incr nmul
    end
  done;
  Zobs.Counter.add ctx.cnt_mul_lazy !nmul;
  reduce ctx !acc

let sample ctx random_bytes =
  let rec draw () =
    let b = random_bytes ctx.sample_bytes in
    if Bytes.length b <> ctx.sample_bytes then invalid_arg "Fp.sample: bad byte source";
    let top = Char.code (Bytes.get b (ctx.sample_bytes - 1)) land ctx.sample_mask in
    Bytes.set b (ctx.sample_bytes - 1) (Char.chr top);
    let x = Nat.of_bytes_le b in
    if Nat.compare x ctx.p < 0 then x else draw ()
  in
  draw ()

let to_string = Nat.to_decimal
let pp fmt x = Format.pp_print_string fmt (to_string x)

(* ------------------------------------------------------------------ *)
(* Packed elements: scratch arenas and element vectors                  *)
(* ------------------------------------------------------------------ *)

(* Per-context scratch arena for the packed kernels: the modulus and the
   Barrett constant as limb slices plus one temporary area sized for a
   full Barrett reduction, a double-width product and two element slots.
   Layout of [tmp] (k = limbs of p):
     [0, 2k+2)        q2 = q1 * mu
     [2k+2, 3k+3)     r2 = (q3 * p) mod B^(k+1)
     [3k+3, 4k+4)     r  = r1 - r2, then the conditional subtractions
     [4k+4, 6k+4)     product a*b awaiting reduction
     [6k+4, 7k+4)     butterfly slot t
     [7k+4, 8k+4)     butterfly slot u
   A scratch is owned by exactly one domain (see [scratch_for]); nothing
   here is safe to share across domains. *)
type scratch = {
  sk : int; (* limbs of p *)
  p_l : Limb.a; (* k+1 limbs, p zero-padded *)
  mu_l : Limb.a; (* k+1 limbs *)
  tmp : Limb.a; (* 8k+8 limbs *)
}

let scratch_create ctx =
  let k = ctx.k in
  let p_l = Limb.create (k + 1) in
  Limb.of_nat ctx.p p_l 0 (k + 1);
  let mu_l = Limb.create (k + 1) in
  Limb.of_nat ctx.mu mu_l 0 (k + 1);
  { sk = k; p_l; mu_l; tmp = Limb.create ((8 * k) + 8) }

(* One scratch per (domain, context): domain-local storage keyed by context
   physical identity, so arena-backed code is safe under Dompool without
   any locking and timing is independent of the domain count. *)
let scratch_dls : (ctx * scratch) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let scratch_for ctx =
  let cache = Domain.DLS.get scratch_dls in
  match List.find_opt (fun (c, _) -> c == ctx) !cache with
  | Some (_, sc) -> sc
  | None ->
    let sc = scratch_create ctx in
    cache := (ctx, sc) :: !cache;
    sc

(* Barrett reduction of the 2k-limb slice [x@xo] into the k-limb slice
   [dst@dso], mirroring [reduce] above limb for limb. [x] may live inside
   [sc.tmp] at offset 4k+4 (the product area); nothing below 4k+4 is read
   from it. *)
let reduce_slice sc (dst : Limb.a) dso (x : Limb.a) xo =
  let k = sc.sk in
  let t = sc.tmp in
  let off_q2 = 0 and off_r2 = (2 * k) + 2 and off_r = (3 * k) + 3 in
  (* q1 = x >> (k-1) limbs (k+1 limbs); q2 = q1 * mu. *)
  Limb.mul t off_q2 x (xo + k - 1) (k + 1) sc.mu_l 0 (k + 1);
  (* q3 = q2 >> (k+1) limbs lives at t[off_q2 + k + 1], width k+1. *)
  Limb.mul_low t off_r2 t (off_q2 + k + 1) (k + 1) sc.p_l 0 (k + 1) (k + 1);
  (* r = (x mod B^(k+1)) - r2 mod B^(k+1); the true value is >= 0. *)
  ignore (Limb.sub t off_r x xo t off_r2 (k + 1));
  while Limb.cmp t off_r sc.p_l 0 (k + 1) >= 0 do
    ignore (Limb.sub t off_r t off_r sc.p_l 0 (k + 1))
  done;
  Limb.blit t off_r dst dso k

(* Modular add/sub on k-limb slices; dst may alias either input. *)
let add_slice sc (dst : Limb.a) dso (a : Limb.a) ao (b : Limb.a) bo =
  let k = sc.sk in
  let c = Limb.add dst dso a ao b bo k in
  if c = 1 || Limb.cmp dst dso sc.p_l 0 k >= 0 then
    ignore (Limb.sub dst dso dst dso sc.p_l 0 k)

let sub_slice sc (dst : Limb.a) dso (a : Limb.a) ao (b : Limb.a) bo =
  let k = sc.sk in
  let bw = Limb.sub dst dso a ao b bo k in
  if bw = 1 then ignore (Limb.add dst dso dst dso sc.p_l 0 k)

let mul_slice ctx sc (dst : Limb.a) dso (a : Limb.a) ao (b : Limb.a) bo =
  Zobs.Counter.incr ctx.cnt_mul;
  let k = sc.sk in
  let off_prod = (4 * k) + 4 in
  Limb.mul sc.tmp off_prod a ao k b bo k;
  reduce_slice sc dst dso sc.tmp off_prod

(* Vectors of packed canonical residues: slot [i] of a vector over a k-limb
   modulus occupies limbs [i*k, (i+1)*k). *)
module Vec = struct
  type t = { n : int; k : int; buf : Limb.a }

  let create (ctx : ctx) n = { n; k = ctx.k; buf = Limb.create (n * ctx.k) }
  let length v = v.n
  let get (v : t) i : el = Limb.to_nat v.buf (i * v.k) v.k
  let set (v : t) i (x : el) = Limb.of_nat x v.buf (i * v.k) v.k

  let of_array ctx (a : el array) =
    let v = create ctx (Array.length a) in
    Array.iteri (fun i x -> set v i x) a;
    v

  let to_array (v : t) = Array.init v.n (get v)
  let is_zero (v : t) i = Limb.is_zero_slice v.buf (i * v.k) v.k
  let blit src si dst di len = Limb.blit src.buf (si * src.k) dst.buf (di * dst.k) (len * src.k)
  let clear v i len = Limb.clear v.buf (i * v.k) (len * v.k)

  let swap sc (v : t) i j =
    let k = v.k in
    let off_t = (6 * k) + 4 in
    Limb.blit v.buf (i * k) sc.tmp off_t k;
    Limb.blit v.buf (j * k) v.buf (i * k) k;
    Limb.blit sc.tmp off_t v.buf (j * k) k

  let mul ctx sc (dst : t) di (a : t) ai (b : t) bi =
    mul_slice ctx sc dst.buf (di * dst.k) a.buf (ai * a.k) b.buf (bi * b.k)

  let add _ctx sc (dst : t) di (a : t) ai (b : t) bi =
    add_slice sc dst.buf (di * dst.k) a.buf (ai * a.k) b.buf (bi * b.k)

  let sub _ctx sc (dst : t) di (a : t) ai (b : t) bi =
    sub_slice sc dst.buf (di * dst.k) a.buf (ai * a.k) b.buf (bi * b.k)

  (* Fused CT butterfly: t = data[j] * tw[ti]; data[j] <- data[i] - t;
     data[i] <- data[i] + t. One counted field mul, zero allocations. *)
  let butterfly ctx sc (data : t) i j (tw : t) ti =
    Zobs.Counter.incr ctx.cnt_mul;
    let k = sc.sk in
    let off_prod = (4 * k) + 4 and off_t = (6 * k) + 4 and off_u = (7 * k) + 4 in
    Limb.mul sc.tmp off_prod data.buf (j * k) k tw.buf (ti * k) k;
    reduce_slice sc sc.tmp off_t sc.tmp off_prod;
    Limb.blit data.buf (i * k) sc.tmp off_u k;
    add_slice sc data.buf (i * k) sc.tmp off_u sc.tmp off_t;
    sub_slice sc data.buf (j * k) sc.tmp off_u sc.tmp off_t

  (* Multiply every slot of [v] by slot [ci] of [c]. *)
  let scale_all ctx sc (v : t) (c : t) ci =
    for i = 0 to v.n - 1 do
      mul ctx sc v i v i c ci
    done
end
