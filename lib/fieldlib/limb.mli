(** Packed limb buffers: flat off-heap [Bigarray] arenas of base-2^31 limbs
    holding many fixed-width numbers side by side. The substrate of the
    zero-allocation field kernels ({!Fp.Vec}, the packed NTT butterflies,
    the Pippenger bucket arena): the GC sees one custom block instead of a
    boxed [int array] per element. All kernels are offset/width-addressed
    and allocation-free; only the {!of_nat}/{!to_nat} boundary codecs
    allocate. *)

type a = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> a
(** Zero-filled buffer of [n] limbs. *)

val length : a -> int
val get : a -> int -> int
val set : a -> int -> int -> unit
val fill : a -> int -> int -> int -> unit
(** [fill b off w v] sets [b.(off .. off+w-1)] to [v]. *)

val clear : a -> int -> int -> unit

val blit : a -> int -> a -> int -> int -> unit
(** [blit src so dst dso w]; handles overlapping slices of one buffer. *)

val cmp : a -> int -> a -> int -> int -> int
(** Compare two [w]-limb slices as little-endian naturals. *)

val is_zero_slice : a -> int -> int -> bool

val add : a -> int -> a -> int -> a -> int -> int -> int
(** [add dst dso x xo y yo w] sets [dst <- x + y] over [w] limbs and
    returns the carry out. [dst] may alias either input slice. *)

val sub : a -> int -> a -> int -> a -> int -> int -> int
(** [sub dst dso x xo y yo w] sets [dst <- x - y mod 2^(31w)] and returns
    the borrow out. Aliasing as {!add}. *)

val mul : a -> int -> a -> int -> int -> a -> int -> int -> unit
(** [mul dst dso x xo wa y yo wb]: full schoolbook product into
    [dst.(dso .. dso+wa+wb-1)]. The destination slice must not overlap
    either input slice. *)

val mul_low : a -> int -> a -> int -> int -> a -> int -> int -> int -> unit
(** [mul_low dst dso x xo wa y yo wb wout]: only the low [wout] limbs of
    the product (the [mod B^k] steps of Barrett and REDC). Same overlap
    rule as {!mul}. *)

val of_nat : Nat.t -> a -> int -> int -> unit
(** Write a natural into a [w]-limb slice, zero-padded; raises if it does
    not fit. *)

val to_nat : a -> int -> int -> Nat.t
(** Read a [w]-limb slice back as a canonical natural. *)
