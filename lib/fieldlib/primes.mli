(** Primality testing and the named field moduli (§5.1 runs over 128-bit
    and 220-bit prime fields; Appendix A.2 quotes |F| = 2^192). *)

val is_prime : Nat.t -> bool
(** Miller–Rabin: deterministic witnesses below 78 bits, 64 extra
    fixed-seed rounds above (error < 4^-64). *)

val probably_prime : ?bases:int list -> Nat.t -> bool
(** Cheap screen for parameter-search loops: trial division plus a few
    strong-probable-prime rounds. Confirm final candidates with
    {!is_prime}. *)

val prime_ge : Nat.t -> Nat.t
(** Smallest prime at or above the argument. *)

val mersenne : int -> Nat.t
val first_prime_with_bits : int -> Nat.t

val p61 : Nat.t
(** 2^61 - 1 (Mersenne) — the fast test field. *)

val p89 : Nat.t
val p127 : Nat.t
(** 2^127 - 1 (Mersenne) — the default "128-bit" field. *)

val p128 : unit -> Nat.t
val p192 : unit -> Nat.t
val p220 : unit -> Nat.t

val bls12_381_fr : Nat.t
(** The BLS12-381 scalar field modulus (2-adicity 32) — NTT ablation
    only. *)

val p127_ntt : Nat.t
(** (2^64 + 11) * 2^62 + 1, a 127-bit prime with 2-adicity 62: the
    NTT-friendly counterpart of {!p127} used by the production
    roots-of-unity prover path (the bench default field). *)

val two_adicity : Nat.t -> int
val find_generator_of_two_power_subgroup : Fp.ctx -> Fp.el
(** A generator of the 2^s-torsion, s the 2-adicity of p-1. *)
