(* Primality testing and the named field moduli used across the system.

   The paper runs over "a 128-bit prime" and "a field modulus of 220 bits"
   (§5.1), and quotes |F| = 2^192 in Appendix A.2. We pin concrete moduli
   deterministically: Mersenne primes where available, otherwise the first
   prime at or above a power of two, found by Miller-Rabin. *)

(* Deterministic witnesses make [is_prime] exact below 3.3 * 10^24 (~81
   bits); above that we add rounds with pseudorandom bases from a fixed
   xorshift stream, giving error < 4^-64. *)
let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89; 97 ]

let deterministic_bases = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]
let extra_rounds = 64

let xorshift state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  state := x land max_int;
  !state

let miller_rabin_witness ctx n n_minus_1 d s a =
  (* true iff [a] witnesses compositeness of [n] *)
  let a = Fp.of_nat ctx a in
  if Fp.is_zero a || Fp.equal a Fp.one then false
  else begin
    let x = ref (Fp.pow ctx a d) in
    if Fp.equal !x Fp.one || Nat.equal !x n_minus_1 then false
    else begin
      let witness = ref true in
      (try
         for _ = 1 to s - 1 do
           x := Fp.sqr ctx !x;
           if Nat.equal !x n_minus_1 then begin
             witness := false;
             raise Exit
           end
         done
       with Exit -> ());
      ignore n;
      !witness
    end
  end

let is_prime n =
  if Nat.compare n Nat.two < 0 then false
  else if Nat.equal n Nat.two then true
  else if Nat.is_even n then false
  else begin
    let small = List.exists (fun p ->
        let p = Nat.of_int p in
        if Nat.compare n p = 0 then true
        else snd (Nat.divmod n p) |> Nat.is_zero)
        small_primes
    in
    if small then List.exists (fun p -> Nat.equal n (Nat.of_int p)) small_primes
    else begin
      (* Primality testing is parameter-search arithmetic (candidate group
         or field moduli), not Figure-3 field work: tag it Group so the
         Miller-Rabin exponentiations stay out of the fp.mul ledger. *)
      let ctx = Fp.create ~tag:Fp.Group n in
      let n_minus_1 = Nat.sub n Nat.one in
      (* n - 1 = 2^s * d with d odd *)
      let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n_minus_1 0 in
      let composite_by a = miller_rabin_witness ctx n n_minus_1 d s a in
      if List.exists (fun b -> composite_by (Nat.of_int b)) deterministic_bases then false
      else if Nat.num_bits n <= 78 then true
      else begin
        let rng = ref 0x1e3779b97f4a7c15 in
        let bytes_needed = (Nat.num_bits n + 7) / 8 in
        let random_base () =
          let b = Bytes.create bytes_needed in
          for i = 0 to bytes_needed - 1 do
            Bytes.set b i (Char.chr (xorshift rng land 0xff))
          done;
          Nat.of_bytes_le b
        in
        let rec rounds k = if k = 0 then true else if composite_by (random_base ()) then false else rounds (k - 1) in
        rounds extra_rounds
      end
    end
  end

(* Cheap screen for parameter-search loops (ElGamal group generation):
   small-prime trial division plus a few strong-probable-prime rounds.
   Callers confirm final candidates with [is_prime]. *)
let probably_prime ?(bases = [ 2; 3; 5; 7 ]) n =
  if Nat.compare n (Nat.of_int 2) < 0 then false
  else if Nat.is_even n then Nat.equal n Nat.two
  else begin
    let divisible =
      List.exists
        (fun p -> Nat.compare n (Nat.of_int p) > 0 && snd (Nat.divmod_int n p) = 0)
        small_primes
    in
    if divisible then false
    else begin
      let ctx = Fp.create ~tag:Fp.Group n in
      let n_minus_1 = Nat.sub n Nat.one in
      let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n_minus_1 0 in
      not (List.exists (fun b -> miller_rabin_witness ctx n n_minus_1 d s (Nat.of_int b)) bases)
    end
  end

let prime_ge start =
  let n = ref (if Nat.is_even start then Nat.add start Nat.one else start) in
  if Nat.compare !n Nat.two < 0 then n := Nat.two;
  while not (is_prime !n) do
    n := Nat.add !n Nat.two
  done;
  !n

let mersenne e = Nat.sub (Nat.shift_left Nat.one e) Nat.one

let memo : (int, Nat.t) Hashtbl.t = Hashtbl.create 8

let first_prime_with_bits bits =
  match Hashtbl.find_opt memo bits with
  | Some p -> p
  | None ->
    let p = prime_ge (Nat.shift_left Nat.one (bits - 1)) in
    Hashtbl.add memo bits p;
    p

(* Named moduli. [p61] and [p127] are the Mersenne primes 2^61-1 and
   2^127-1; [p128]/[p192]/[p220] are the first primes >= 2^127 / 2^191 /
   2^219, matching the paper's "128-bit", "|F| = 2^192" and "220-bit"
   moduli. [bls12_381_fr] is the scalar field of BLS12-381 (2-adicity 32),
   used only by the NTT ablation. *)
let p61 = mersenne 61
let p89 = mersenne 89
let p127 = mersenne 127
let p128 () = first_prime_with_bits 128
let p192 () = first_prime_with_bits 192
let p220 () = first_prime_with_bits 220

let bls12_381_fr =
  Nat.of_hex "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"

(* (2^64 + 11) * 2^62 + 1: a 127-bit prime with 2-adicity 62, the
   NTT-friendly stand-in for the Mersenne [p127] (whose p-1 has 2-adicity
   1, so it admits no useful power-of-two subgroup). The production prover
   selects the roots-of-unity QAP over this field; [p127] keeps the
   seed-identical Lagrange transcripts. *)
let p127_ntt = Nat.of_hex "4000000000000002c000000000000001"

(* 2-adicity of p-1 and a generator of the 2^s-th roots of unity, needed by
   the NTT ablation. *)
let two_adicity p =
  let rec go n s = if Nat.is_even n then go (Nat.shift_right n 1) (s + 1) else s in
  go (Nat.sub p Nat.one) 0

let find_generator_of_two_power_subgroup ctx =
  (* Find g not a quadratic residue, then w = g^((p-1)/2^s). *)
  let p = Fp.modulus ctx in
  let s = two_adicity p in
  let odd_part = Nat.shift_right (Nat.sub p Nat.one) s in
  let half = Nat.shift_right (Nat.sub p Nat.one) 1 in
  let rec find c =
    let g = Fp.of_int ctx c in
    if Fp.equal (Fp.pow ctx g half) Fp.one then find (c + 1)
    else Fp.pow ctx g odd_part
  in
  find 2
