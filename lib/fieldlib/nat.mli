(** Arbitrary-precision natural numbers.

    The substrate the paper gets from GMP [2]; built from scratch here because
    the container has no bignum library. Values are immutable once returned.
    Representation: little-endian arrays of base-2^31 limbs, canonical (no
    high zero limbs); [zero] is the empty array. All arithmetic stays within
    OCaml's 63-bit native ints: a limb product plus carries is at most
    [2^62 - 1]. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative [n]. Raises [Invalid_argument] on
    negative input. *)

val to_int : t -> int
(** Raises [Failure] if the value exceeds [max_int]. *)

val to_int_opt : t -> int option

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val num_limbs : t -> int
val num_bits : t -> int
(** [num_bits zero = 0]; otherwise the index of the highest set bit plus 1. *)

val testbit : t -> int -> bool
val is_even : t -> bool

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val sub_int : t -> int -> t

val mul : t -> t -> t
(** Schoolbook below [karatsuba_threshold] limbs, Karatsuba above. *)

val mul_int : t -> int -> t
(** Multiplier must lie in [0, 2^31). *)

val sqr : t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = b*q + r] and [0 <= r < b] (Knuth TAOCP
    vol. 2 Algorithm D). Raises [Division_by_zero] if [b] is zero. *)

val divmod_int : t -> int -> t * int
(** Divisor must lie in [1, 2^31). *)

val pow_int : t -> int -> t
(** [pow_int b e] for small exponents; no modular reduction. *)

(* Limb-level helpers used by Barrett reduction. *)

val shift_right_limbs : t -> int -> t
(** Drop the [k] low limbs (divide by [2^(31k)]). *)

val truncate_limbs : t -> int -> t
(** Keep only the [k] low limbs (reduce modulo [2^(31k)]). *)

val of_hex : string -> t
val to_hex : t -> string
val of_decimal : string -> t
val to_decimal : t -> string

val of_bytes_le : bytes -> t
val to_bytes_le : t -> int -> bytes
(** [to_bytes_le n len] zero-pads to exactly [len] bytes; raises
    [Invalid_argument] if [n] does not fit. *)

val pp : Format.formatter -> t -> unit

(** {2 Tuning} *)

val set_karatsuba_threshold : int -> unit
(** Set the schoolbook/Karatsuba crossover (in limbs, >= 2). Swept by the
    bench ablation harness; the shipped default is the sweep winner. *)

val get_karatsuba_threshold : unit -> int

(** {2 Fixed-width in-place kernels}

    Scalar mirror of the packed {!Limb} kernels: plain [int array] limb
    buffers of caller-chosen width, little-endian, non-canonical (high zero
    limbs allowed). None of these allocate. *)

val to_limbs : width:int -> t -> int array
(** Padded little-endian copy; raises [Invalid_argument] if [t] needs more
    than [width] limbs. *)

val of_limbs : int array -> t
(** Canonicalizing copy of a limb buffer. *)

val add_into : width:int -> int array -> int array -> int array -> int
(** [add_into ~width dst a b] sets [dst.(0..width-1) <- a + b] and returns
    the carry out (0 or 1). [dst] may alias [a] and/or [b]. *)

val sub_into : width:int -> int array -> int array -> int array -> int
(** [sub_into ~width dst a b] sets [dst.(0..width-1) <- a - b mod 2^(31w)]
    and returns the borrow out (0 or 1). Aliasing allowed as for
    {!add_into}. *)

val mul_into : width:int -> scratch:int array -> int array -> int array -> int array -> unit
(** [mul_into ~width ~scratch dst a b] sets [dst.(0..2*width-1)] to the full
    product of the [width]-limb inputs. [scratch] needs at least [2*width]
    limbs and must not alias [a] or [b]; [dst] may alias anything (including
    [scratch] itself). *)
