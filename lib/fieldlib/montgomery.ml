type ctx = {
  p : Nat.t;
  k : int; (* limbs of p; R = 2^(31k) *)
  r_mod_p : Nat.t; (* R mod p: the Montgomery form of 1 *)
  r2_mod_p : Nat.t; (* R^2 mod p: converts into Montgomery form *)
  p' : Nat.t; (* -p^{-1} mod R *)
}

type el = Nat.t

(* One count per REDC multiplication: the unit the exponentiation-ladder
   cost model is expressed in. *)
let c_mul = Zobs.Counter.make "mont.mul"

let modulus ctx = ctx.p
let equal = Nat.equal

(* p^{-1} mod 2^(31k) by Hensel lifting: x <- x (2 - p x) doubles the
   number of correct low bits each step. *)
let inv_mod_r p k =
  let r_bits = 31 * k in
  let two = Nat.two in
  let x = ref Nat.one in
  (* p odd => p^{-1} = 1 (mod 2) *)
  let prec = ref 1 in
  while !prec < r_bits do
    prec := min (2 * !prec) r_bits;
    let px = Nat.mul p !x in
    let px = Nat.truncate_limbs px (((!prec + 30) / 31) + 1) in
    (* x (2 - p x) mod 2^prec, computed as x*2 - x*p*x avoiding negatives:
       2 - px == 2 + (2^prec - px) mod 2^prec *)
    let modulus_prec = Nat.shift_left Nat.one !prec in
    let px_mod = snd (Nat.divmod px modulus_prec) in
    let t =
      if Nat.compare two px_mod >= 0 then Nat.sub two px_mod
      else Nat.sub (Nat.add modulus_prec two) px_mod
    in
    x := snd (Nat.divmod (Nat.mul !x t) modulus_prec)
  done;
  !x

let create p =
  if Nat.is_even p || Nat.compare p (Nat.of_int 3) < 0 then
    invalid_arg "Montgomery.create: modulus must be odd and >= 3";
  let k = Nat.num_limbs p in
  let r = Nat.shift_left Nat.one (31 * k) in
  let r_mod_p = snd (Nat.divmod r p) in
  let r2_mod_p = snd (Nat.divmod (Nat.sqr r_mod_p) p) in
  let r2_mod_p = r2_mod_p in
  let inv = inv_mod_r p k in
  let p' = Nat.sub r inv in
  { p; k; r_mod_p; r2_mod_p; p' }

(* REDC: given t < p*R, return t R^{-1} mod p. *)
let redc ctx t =
  let m = Nat.truncate_limbs (Nat.mul (Nat.truncate_limbs t ctx.k) ctx.p') ctx.k in
  let u = Nat.shift_right_limbs (Nat.add t (Nat.mul m ctx.p)) ctx.k in
  if Nat.compare u ctx.p >= 0 then Nat.sub u ctx.p else u

let mul ctx a b =
  Zobs.Counter.incr c_mul;
  redc ctx (Nat.mul a b)

let sqr ctx a =
  Zobs.Counter.incr c_mul;
  redc ctx (Nat.sqr a)

let to_mont ctx x =
  if Nat.compare x ctx.p >= 0 then invalid_arg "Montgomery.to_mont: input not reduced";
  redc ctx (Nat.mul x ctx.r2_mod_p)

let of_mont ctx x = redc ctx x

let one ctx = ctx.r_mod_p
let zero _ctx = Nat.zero

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.p >= 0 then Nat.sub s ctx.p else s

let sub ctx a b = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a ctx.p) b

let pow ctx b e =
  let nbits = Nat.num_bits e in
  let acc = ref (one ctx) in
  for i = nbits - 1 downto 0 do
    acc := sqr ctx !acc;
    if Nat.testbit e i then acc := mul ctx !acc b
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Exponentiation kernels (DESIGN.md §8)                               *)
(* ------------------------------------------------------------------ *)

(* Read bits [lo, lo+w) of e as an integer (w <= 30). *)
let digit e ~nbits ~lo ~w =
  let d = ref 0 in
  let hi = min (nbits - 1) (lo + w - 1) in
  for j = hi downto lo do
    d := (!d lsl 1) lor (if Nat.testbit e j then 1 else 0)
  done;
  !d

(* Sliding-window square-and-multiply: one table of odd powers
   b, b^3, ..., b^(2^w - 1), then ~nbits/(w+1) multiplications instead of
   nbits/2. Window width grows with the exponent size. *)
let pow_window ctx b e =
  let nbits = Nat.num_bits e in
  if nbits <= 8 then pow ctx b e
  else begin
    let w = if nbits < 80 then 3 else if nbits < 240 then 4 else 5 in
    let b2 = sqr ctx b in
    let tbl = Array.make (1 lsl (w - 1)) b in
    for i = 1 to Array.length tbl - 1 do
      tbl.(i) <- mul ctx tbl.(i - 1) b2
    done;
    let acc = ref (one ctx) in
    let i = ref (nbits - 1) in
    while !i >= 0 do
      if not (Nat.testbit e !i) then begin
        acc := sqr ctx !acc;
        decr i
      end
      else begin
        (* widest window [l, i] of <= w bits whose low bit is set *)
        let l = ref (max 0 (!i - w + 1)) in
        while not (Nat.testbit e !l) do
          incr l
        done;
        let width = !i - !l + 1 in
        let d = digit e ~nbits ~lo:!l ~w:width in
        for _ = 1 to width do
          acc := sqr ctx !acc
        done;
        acc := mul ctx !acc tbl.(d lsr 1);
        i := !l - 1
      end
    done;
    !acc
  end

(* Fixed-base windowed precomputation: tables.(i).(j-1) = b^(j * 2^(w*i)),
   so b^e is one multiplication per nonzero base-2^w digit of e — no
   squarings at all once the table exists. The table costs about
   (bits/w) * 2^w multiplications and pays for itself after a handful of
   exponentiations. *)
type fb = {
  fb_window : int;
  fb_digits : int;
  fb_tables : el array array;
}

let fb_precompute ctx ?(window = 5) ~bits b =
  if window < 1 || window > 16 then invalid_arg "Montgomery.fb_precompute: window out of range";
  if bits < 1 then invalid_arg "Montgomery.fb_precompute: bits must be positive";
  let digits = (bits + window - 1) / window in
  let m = (1 lsl window) - 1 in
  let base = ref b in
  let tables = Array.make digits [||] in
  for i = 0 to digits - 1 do
    let t = Array.make m !base in
    for j = 1 to m - 1 do
      t.(j) <- mul ctx t.(j - 1) !base
    done;
    tables.(i) <- t;
    if i < digits - 1 then
      for _ = 1 to window do
        base := sqr ctx !base
      done
  done;
  { fb_window = window; fb_digits = digits; fb_tables = tables }

let fb_bits fb = fb.fb_window * fb.fb_digits

let fb_pow ctx fb e =
  let nbits = Nat.num_bits e in
  if nbits > fb_bits fb then invalid_arg "Montgomery.fb_pow: exponent wider than the table";
  let acc = ref (one ctx) in
  let i = ref 0 in
  while !i * fb.fb_window < nbits do
    let d = digit e ~nbits ~lo:(!i * fb.fb_window) ~w:fb.fb_window in
    if d <> 0 then acc := mul ctx !acc fb.fb_tables.(!i).(d - 1);
    incr i
  done;
  !acc

(* Shamir/Straus simultaneous exponentiation: b1^e1 * b2^e2 in one shared
   squaring chain with a precomputed b1*b2 — about half the cost of two
   independent ladders. *)
let pow2 ctx b1 e1 b2 e2 =
  let n = max (Nat.num_bits e1) (Nat.num_bits e2) in
  if n = 0 then one ctx
  else begin
    let b12 = mul ctx b1 b2 in
    let acc = ref (one ctx) in
    for i = n - 1 downto 0 do
      acc := sqr ctx !acc;
      let x1 = Nat.testbit e1 i and x2 = Nat.testbit e2 i in
      if x1 && x2 then acc := mul ctx !acc b12
      else if x1 then acc := mul ctx !acc b1
      else if x2 then acc := mul ctx !acc b2
    done;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Packed REDC: limb-slice kernels and scratch arenas                   *)
(* ------------------------------------------------------------------ *)

(* Scratch for REDC on packed slices. Layout of [mtmp] (k limbs of p):
     [0, 2k)    t = a * b, then t + m*p
     [2k, 3k)   m = t * p' mod B^k
     [3k, 5k)   m * p
   Owned by one domain; obtain via [scratch_for]. *)
type scratch = {
  mk : int;
  mp_l : Limb.a; (* k limbs: p *)
  mp'_l : Limb.a; (* k limbs: p' *)
  mtmp : Limb.a; (* 5k limbs *)
}

let scratch_create ctx =
  let k = ctx.k in
  let mp_l = Limb.create k in
  Limb.of_nat ctx.p mp_l 0 k;
  let mp'_l = Limb.create k in
  Limb.of_nat ctx.p' mp'_l 0 k;
  { mk = k; mp_l; mp'_l; mtmp = Limb.create (5 * k) }

let scratch_dls : (ctx * scratch) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let scratch_for ctx =
  let cache = Domain.DLS.get scratch_dls in
  match List.find_opt (fun (c, _) -> c == ctx) !cache with
  | Some (_, sc) -> sc
  | None ->
    let sc = scratch_create ctx in
    cache := (ctx, sc) :: !cache;
    sc

(* dst <- REDC(a * b) on k-limb slices, everything in Montgomery form.
   [dst] may alias either input slice (inputs are consumed before [dst] is
   written). One counted [mont.mul], zero allocations. *)
let mul_into _ctx sc (dst : Limb.a) dso (a : Limb.a) ao (b : Limb.a) bo =
  Zobs.Counter.incr c_mul;
  let k = sc.mk in
  let t = sc.mtmp in
  Limb.mul t 0 a ao k b bo k;
  Limb.mul_low t (2 * k) t 0 k sc.mp'_l 0 k k;
  Limb.mul t (3 * k) t (2 * k) k sc.mp_l 0 k;
  let carry = Limb.add t 0 t 0 t (3 * k) (2 * k) in
  (* u = (t + m*p) / B^k: limbs [k, 2k) with a virtual top limb [carry];
     u < 2p, so one conditional subtraction suffices (the borrow cancels
     the virtual carry). *)
  if carry = 1 || Limb.cmp t k sc.mp_l 0 k >= 0 then
    ignore (Limb.sub dst dso t k sc.mp_l 0 k)
  else Limb.blit t k dst dso k

(* Pippenger bucket multi-exponentiation: prod_i bases.(i)^exps.(i).
   Exponents are scanned c bits at a time from the top; within a window
   each base is multiplied into the bucket of its digit, and the weighted
   bucket sum  sum_j j * bucket_j  is recovered with the running-suffix
   trick (two multiplications per nonempty-suffix bucket). Cost is about
   (bits/c) * (n + 2^c) multiplications + bits squarings, against
   n * 1.5 * bits for n independent ladders.

   The buckets live in one packed arena ([Limb.a] plus a bool occupancy
   vector) and the inner loop runs [mul_into] on slices: the historical
   boxed version allocated one option + several naturals per REDC, which
   dominated the commit pipeline's minor-heap traffic. Multiplication
   counts and results are unchanged (identity operands are still skipped
   via the occupancy flags, never multiplied). *)
let multi_pow ctx ?window (bases : el array) (exps : Nat.t array) =
  let n = Array.length bases in
  if n <> Array.length exps then invalid_arg "Montgomery.multi_pow: length mismatch";
  let maxbits = Array.fold_left (fun m e -> max m (Nat.num_bits e)) 0 exps in
  if n = 0 || maxbits = 0 then one ctx
  else begin
    let c =
      match window with
      | Some c ->
        if c < 1 || c > 16 then invalid_arg "Montgomery.multi_pow: window out of range";
        c
      | None ->
        (* ~log2 n, the classical optimum for (bits/c)*(n + 2^c) *)
        let rec lg k acc = if k <= 1 then acc else lg (k lsr 1) (acc + 1) in
        min 12 (max 1 (lg n 0 - 1))
    in
    let k = ctx.k in
    let sc = scratch_for ctx in
    let nbuckets = (1 lsl c) - 1 in
    let packed = Limb.create (n * k) in
    Array.iteri (fun i b -> Limb.of_nat b packed (i * k) k) bases;
    let buckets = Limb.create (nbuckets * k) in
    let occupied = Array.make nbuckets false in
    (* acc / running / wsum registers, one arena. *)
    let regs = Limb.create (3 * k) in
    let acc_o = 0 and run_o = k and wsum_o = 2 * k in
    let acc_set = ref false in
    let windows = (maxbits + c - 1) / c in
    for d = windows - 1 downto 0 do
      if !acc_set then
        for _ = 1 to c do
          mul_into ctx sc regs acc_o regs acc_o regs acc_o
        done;
      Array.fill occupied 0 nbuckets false;
      let lo = d * c in
      for i = 0 to n - 1 do
        let e = exps.(i) in
        let nbits = Nat.num_bits e in
        if lo < nbits then begin
          let dv = digit e ~nbits ~lo ~w:c in
          if dv <> 0 then begin
            let off = (dv - 1) * k in
            if occupied.(dv - 1) then mul_into ctx sc buckets off buckets off packed (i * k)
            else begin
              Limb.blit packed (i * k) buckets off k;
              occupied.(dv - 1) <- true
            end
          end
        end
      done;
      let run_set = ref false and wsum_set = ref false in
      for j = nbuckets - 1 downto 0 do
        if occupied.(j) then
          if !run_set then mul_into ctx sc regs run_o regs run_o buckets (j * k)
          else begin
            Limb.blit buckets (j * k) regs run_o k;
            run_set := true
          end;
        if !run_set then
          if !wsum_set then mul_into ctx sc regs wsum_o regs wsum_o regs run_o
          else begin
            Limb.blit regs run_o regs wsum_o k;
            wsum_set := true
          end
      done;
      if !wsum_set then
        if !acc_set then mul_into ctx sc regs acc_o regs acc_o regs wsum_o
        else begin
          Limb.blit regs wsum_o regs acc_o k;
          acc_set := true
        end
    done;
    if !acc_set then Limb.to_nat regs acc_o k else one ctx
  end

let pow_nat ctx b e =
  let b = snd (Nat.divmod b ctx.p) in
  of_mont ctx (pow_window ctx (to_mont ctx b) e)
