type ctx = {
  p : Nat.t;
  k : int; (* limbs of p; R = 2^(31k) *)
  r_mod_p : Nat.t; (* R mod p: the Montgomery form of 1 *)
  r2_mod_p : Nat.t; (* R^2 mod p: converts into Montgomery form *)
  p' : Nat.t; (* -p^{-1} mod R *)
}

type el = Nat.t

(* One count per REDC multiplication: the unit the exponentiation-ladder
   cost model is expressed in. *)
let c_mul = Zobs.Counter.make "mont.mul"

let modulus ctx = ctx.p
let equal = Nat.equal

(* p^{-1} mod 2^(31k) by Hensel lifting: x <- x (2 - p x) doubles the
   number of correct low bits each step. *)
let inv_mod_r p k =
  let r_bits = 31 * k in
  let two = Nat.two in
  let x = ref Nat.one in
  (* p odd => p^{-1} = 1 (mod 2) *)
  let prec = ref 1 in
  while !prec < r_bits do
    prec := min (2 * !prec) r_bits;
    let px = Nat.mul p !x in
    let px = Nat.truncate_limbs px (((!prec + 30) / 31) + 1) in
    (* x (2 - p x) mod 2^prec, computed as x*2 - x*p*x avoiding negatives:
       2 - px == 2 + (2^prec - px) mod 2^prec *)
    let modulus_prec = Nat.shift_left Nat.one !prec in
    let px_mod = snd (Nat.divmod px modulus_prec) in
    let t =
      if Nat.compare two px_mod >= 0 then Nat.sub two px_mod
      else Nat.sub (Nat.add modulus_prec two) px_mod
    in
    x := snd (Nat.divmod (Nat.mul !x t) modulus_prec)
  done;
  !x

let create p =
  if Nat.is_even p || Nat.compare p (Nat.of_int 3) < 0 then
    invalid_arg "Montgomery.create: modulus must be odd and >= 3";
  let k = Nat.num_limbs p in
  let r = Nat.shift_left Nat.one (31 * k) in
  let r_mod_p = snd (Nat.divmod r p) in
  let r2_mod_p = snd (Nat.divmod (Nat.sqr r_mod_p) p) in
  let r2_mod_p = r2_mod_p in
  let inv = inv_mod_r p k in
  let p' = Nat.sub r inv in
  { p; k; r_mod_p; r2_mod_p; p' }

(* REDC: given t < p*R, return t R^{-1} mod p. *)
let redc ctx t =
  let m = Nat.truncate_limbs (Nat.mul (Nat.truncate_limbs t ctx.k) ctx.p') ctx.k in
  let u = Nat.shift_right_limbs (Nat.add t (Nat.mul m ctx.p)) ctx.k in
  if Nat.compare u ctx.p >= 0 then Nat.sub u ctx.p else u

let mul ctx a b =
  Zobs.Counter.incr c_mul;
  redc ctx (Nat.mul a b)

let sqr ctx a =
  Zobs.Counter.incr c_mul;
  redc ctx (Nat.sqr a)

let to_mont ctx x =
  if Nat.compare x ctx.p >= 0 then invalid_arg "Montgomery.to_mont: input not reduced";
  redc ctx (Nat.mul x ctx.r2_mod_p)

let of_mont ctx x = redc ctx x

let one ctx = ctx.r_mod_p
let zero _ctx = Nat.zero

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.p >= 0 then Nat.sub s ctx.p else s

let sub ctx a b = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a ctx.p) b

let pow ctx b e =
  let nbits = Nat.num_bits e in
  let acc = ref (one ctx) in
  for i = nbits - 1 downto 0 do
    acc := sqr ctx !acc;
    if Nat.testbit e i then acc := mul ctx !acc b
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Exponentiation kernels (DESIGN.md §8)                               *)
(* ------------------------------------------------------------------ *)

(* Read bits [lo, lo+w) of e as an integer (w <= 30). *)
let digit e ~nbits ~lo ~w =
  let d = ref 0 in
  let hi = min (nbits - 1) (lo + w - 1) in
  for j = hi downto lo do
    d := (!d lsl 1) lor (if Nat.testbit e j then 1 else 0)
  done;
  !d

(* Sliding-window square-and-multiply: one table of odd powers
   b, b^3, ..., b^(2^w - 1), then ~nbits/(w+1) multiplications instead of
   nbits/2. Window width grows with the exponent size. *)
let pow_window ctx b e =
  let nbits = Nat.num_bits e in
  if nbits <= 8 then pow ctx b e
  else begin
    let w = if nbits < 80 then 3 else if nbits < 240 then 4 else 5 in
    let b2 = sqr ctx b in
    let tbl = Array.make (1 lsl (w - 1)) b in
    for i = 1 to Array.length tbl - 1 do
      tbl.(i) <- mul ctx tbl.(i - 1) b2
    done;
    let acc = ref (one ctx) in
    let i = ref (nbits - 1) in
    while !i >= 0 do
      if not (Nat.testbit e !i) then begin
        acc := sqr ctx !acc;
        decr i
      end
      else begin
        (* widest window [l, i] of <= w bits whose low bit is set *)
        let l = ref (max 0 (!i - w + 1)) in
        while not (Nat.testbit e !l) do
          incr l
        done;
        let width = !i - !l + 1 in
        let d = digit e ~nbits ~lo:!l ~w:width in
        for _ = 1 to width do
          acc := sqr ctx !acc
        done;
        acc := mul ctx !acc tbl.(d lsr 1);
        i := !l - 1
      end
    done;
    !acc
  end

(* Fixed-base windowed precomputation: tables.(i).(j-1) = b^(j * 2^(w*i)),
   so b^e is one multiplication per nonzero base-2^w digit of e — no
   squarings at all once the table exists. The table costs about
   (bits/w) * 2^w multiplications and pays for itself after a handful of
   exponentiations. *)
type fb = {
  fb_window : int;
  fb_digits : int;
  fb_tables : el array array;
}

let fb_precompute ctx ?(window = 5) ~bits b =
  if window < 1 || window > 16 then invalid_arg "Montgomery.fb_precompute: window out of range";
  if bits < 1 then invalid_arg "Montgomery.fb_precompute: bits must be positive";
  let digits = (bits + window - 1) / window in
  let m = (1 lsl window) - 1 in
  let base = ref b in
  let tables = Array.make digits [||] in
  for i = 0 to digits - 1 do
    let t = Array.make m !base in
    for j = 1 to m - 1 do
      t.(j) <- mul ctx t.(j - 1) !base
    done;
    tables.(i) <- t;
    if i < digits - 1 then
      for _ = 1 to window do
        base := sqr ctx !base
      done
  done;
  { fb_window = window; fb_digits = digits; fb_tables = tables }

let fb_bits fb = fb.fb_window * fb.fb_digits

let fb_pow ctx fb e =
  let nbits = Nat.num_bits e in
  if nbits > fb_bits fb then invalid_arg "Montgomery.fb_pow: exponent wider than the table";
  let acc = ref (one ctx) in
  let i = ref 0 in
  while !i * fb.fb_window < nbits do
    let d = digit e ~nbits ~lo:(!i * fb.fb_window) ~w:fb.fb_window in
    if d <> 0 then acc := mul ctx !acc fb.fb_tables.(!i).(d - 1);
    incr i
  done;
  !acc

(* Shamir/Straus simultaneous exponentiation: b1^e1 * b2^e2 in one shared
   squaring chain with a precomputed b1*b2 — about half the cost of two
   independent ladders. *)
let pow2 ctx b1 e1 b2 e2 =
  let n = max (Nat.num_bits e1) (Nat.num_bits e2) in
  if n = 0 then one ctx
  else begin
    let b12 = mul ctx b1 b2 in
    let acc = ref (one ctx) in
    for i = n - 1 downto 0 do
      acc := sqr ctx !acc;
      let x1 = Nat.testbit e1 i and x2 = Nat.testbit e2 i in
      if x1 && x2 then acc := mul ctx !acc b12
      else if x1 then acc := mul ctx !acc b1
      else if x2 then acc := mul ctx !acc b2
    done;
    !acc
  end

(* Pippenger bucket multi-exponentiation: prod_i bases.(i)^exps.(i).
   Exponents are scanned c bits at a time from the top; within a window
   each base is multiplied into the bucket of its digit, and the weighted
   bucket sum  sum_j j * bucket_j  is recovered with the running-suffix
   trick (two multiplications per nonempty-suffix bucket). Cost is about
   (bits/c) * (n + 2^c) multiplications + bits squarings, against
   n * 1.5 * bits for n independent ladders. *)
let multi_pow ctx ?window (bases : el array) (exps : Nat.t array) =
  let n = Array.length bases in
  if n <> Array.length exps then invalid_arg "Montgomery.multi_pow: length mismatch";
  let maxbits = Array.fold_left (fun m e -> max m (Nat.num_bits e)) 0 exps in
  if n = 0 || maxbits = 0 then one ctx
  else begin
    let c =
      match window with
      | Some c ->
        if c < 1 || c > 16 then invalid_arg "Montgomery.multi_pow: window out of range";
        c
      | None ->
        (* ~log2 n, the classical optimum for (bits/c)*(n + 2^c) *)
        let rec lg k acc = if k <= 1 then acc else lg (k lsr 1) (acc + 1) in
        min 12 (max 1 (lg n 0 - 1))
    in
    let nbuckets = (1 lsl c) - 1 in
    let buckets : el option array = Array.make nbuckets None in
    let windows = (maxbits + c - 1) / c in
    let acc = ref None in
    for d = windows - 1 downto 0 do
      (match !acc with
      | Some a ->
        let a = ref a in
        for _ = 1 to c do
          a := sqr ctx !a
        done;
        acc := Some !a
      | None -> ());
      Array.fill buckets 0 nbuckets None;
      let lo = d * c in
      for i = 0 to n - 1 do
        let e = exps.(i) in
        let nbits = Nat.num_bits e in
        if lo < nbits then begin
          let dv = digit e ~nbits ~lo ~w:c in
          if dv <> 0 then
            buckets.(dv - 1) <-
              Some
                (match buckets.(dv - 1) with
                | None -> bases.(i)
                | Some x -> mul ctx x bases.(i))
        end
      done;
      (* weighted sum of buckets: running = sum_{k >= j} bucket_k,
         wsum = sum_j running_j = sum_k k * bucket_k (digit value k = index+1) *)
      let running = ref None and wsum = ref None in
      for j = nbuckets - 1 downto 0 do
        (match buckets.(j) with
        | Some b -> running := Some (match !running with None -> b | Some r -> mul ctx r b)
        | None -> ());
        match !running with
        | Some r -> wsum := Some (match !wsum with None -> r | Some s -> mul ctx s r)
        | None -> ()
      done;
      match !wsum with
      | Some s -> acc := Some (match !acc with None -> s | Some a -> mul ctx a s)
      | None -> ()
    done;
    match !acc with None -> one ctx | Some a -> a
  end

let pow_nat ctx b e =
  let b = snd (Nat.divmod b ctx.p) in
  of_mont ctx (pow_window ctx (to_mont ctx b) e)
