type ctx = {
  p : Nat.t;
  k : int; (* limbs of p; R = 2^(31k) *)
  r_mod_p : Nat.t; (* R mod p: the Montgomery form of 1 *)
  r2_mod_p : Nat.t; (* R^2 mod p: converts into Montgomery form *)
  p' : Nat.t; (* -p^{-1} mod R *)
}

type el = Nat.t

(* One count per REDC multiplication: the unit the exponentiation-ladder
   cost model is expressed in. *)
let c_mul = Zobs.Counter.make "mont.mul"

let modulus ctx = ctx.p
let equal = Nat.equal

(* p^{-1} mod 2^(31k) by Hensel lifting: x <- x (2 - p x) doubles the
   number of correct low bits each step. *)
let inv_mod_r p k =
  let r_bits = 31 * k in
  let two = Nat.two in
  let x = ref Nat.one in
  (* p odd => p^{-1} = 1 (mod 2) *)
  let prec = ref 1 in
  while !prec < r_bits do
    prec := min (2 * !prec) r_bits;
    let px = Nat.mul p !x in
    let px = Nat.truncate_limbs px (((!prec + 30) / 31) + 1) in
    (* x (2 - p x) mod 2^prec, computed as x*2 - x*p*x avoiding negatives:
       2 - px == 2 + (2^prec - px) mod 2^prec *)
    let modulus_prec = Nat.shift_left Nat.one !prec in
    let px_mod = snd (Nat.divmod px modulus_prec) in
    let t =
      if Nat.compare two px_mod >= 0 then Nat.sub two px_mod
      else Nat.sub (Nat.add modulus_prec two) px_mod
    in
    x := snd (Nat.divmod (Nat.mul !x t) modulus_prec)
  done;
  !x

let create p =
  if Nat.is_even p || Nat.compare p (Nat.of_int 3) < 0 then
    invalid_arg "Montgomery.create: modulus must be odd and >= 3";
  let k = Nat.num_limbs p in
  let r = Nat.shift_left Nat.one (31 * k) in
  let r_mod_p = snd (Nat.divmod r p) in
  let r2_mod_p = snd (Nat.divmod (Nat.sqr r_mod_p) p) in
  let r2_mod_p = r2_mod_p in
  let inv = inv_mod_r p k in
  let p' = Nat.sub r inv in
  { p; k; r_mod_p; r2_mod_p; p' }

(* REDC: given t < p*R, return t R^{-1} mod p. *)
let redc ctx t =
  let m = Nat.truncate_limbs (Nat.mul (Nat.truncate_limbs t ctx.k) ctx.p') ctx.k in
  let u = Nat.shift_right_limbs (Nat.add t (Nat.mul m ctx.p)) ctx.k in
  if Nat.compare u ctx.p >= 0 then Nat.sub u ctx.p else u

let mul ctx a b =
  Zobs.Counter.incr c_mul;
  redc ctx (Nat.mul a b)

let sqr ctx a =
  Zobs.Counter.incr c_mul;
  redc ctx (Nat.sqr a)

let to_mont ctx x =
  if Nat.compare x ctx.p >= 0 then invalid_arg "Montgomery.to_mont: input not reduced";
  redc ctx (Nat.mul x ctx.r2_mod_p)

let of_mont ctx x = redc ctx x

let one ctx = ctx.r_mod_p
let zero _ctx = Nat.zero

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.p >= 0 then Nat.sub s ctx.p else s

let sub ctx a b = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a ctx.p) b

let pow ctx b e =
  let nbits = Nat.num_bits e in
  let acc = ref (one ctx) in
  for i = nbits - 1 downto 0 do
    acc := sqr ctx !acc;
    if Nat.testbit e i then acc := mul ctx !acc b
  done;
  !acc

let pow_nat ctx b e =
  let b = snd (Nat.divmod b ctx.p) in
  of_mont ctx (pow ctx (to_mont ctx b) e)
