type t = int array
(* Little-endian, base 2^31, canonical: highest limb non-zero; zero = [||].
   Invariant arithmetic bound: limb * limb + limb + limb <= 2^62 - 1, so all
   intermediate values fit in a 63-bit OCaml int. *)

let base_bits = 31
let base = 1 lsl base_bits
let mask = base - 1

(* Schoolbook/Karatsuba crossover in limbs. Retuned by the threshold sweep
   in the ablation bench (EXPERIMENTS.md): on this representation the
   crossover sits well above the old hard-coded 24 because row-wise
   schoolbook stays in one flat array while Karatsuba pays three
   allocations per split. 48 limbs (~1500 bits) won or tied at every
   measured width: field elements (5 limbs) and 512/1024-bit group
   arithmetic stay schoolbook; 2048-bit operands split once. *)
let karatsuba_threshold = ref 48

let set_karatsuba_threshold n =
  if n < 2 then invalid_arg "Nat.set_karatsuba_threshold";
  karatsuba_threshold := n

let get_karatsuba_threshold () = !karatsuba_threshold

let zero : t = [||]

let norm (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else if n < base then [| n |]
  else if n < base * base then [| n land mask; n lsr base_bits |]
  else [| n land mask; (n lsr base_bits) land mask; n lsr (2 * base_bits) |]

let one = of_int 1
let two = of_int 2
let is_zero a = Array.length a = 0
let is_one a = Array.length a = 1 && a.(0) = 1
let num_limbs = Array.length

let to_int_opt a =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some ((a.(1) lsl base_bits) lor a.(0))
  | 3 when a.(2) < 1 lsl (62 - 2 * base_bits) ->
    Some ((a.(2) lsl (2 * base_bits)) lor (a.(1) lsl base_bits) lor a.(0))
  | _ -> None

let to_int a =
  match to_int_opt a with
  | Some n -> n
  | None -> failwith "Nat.to_int: overflow"

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let num_bits a =
  let l = Array.length a in
  if l = 0 then 0
  else
    let top = a.(l - 1) in
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    ((l - 1) * base_bits) + bits top 0

let testbit a i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  norm r

let add_int a n = add a (of_int n)

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: negative result";
  norm r

let sub_int a n = sub a (of_int n)

let mul_int a m =
  if m < 0 || m >= base then invalid_arg "Nat.mul_int: multiplier out of range";
  if m = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * m) + !carry in
      r.(i) <- p land mask;
      carry := p lsr base_bits
    done;
    r.(la) <- !carry;
    norm r
  end

let mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr base_bits
        done;
        (* Propagate the final carry; it cannot overflow past the result. *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    norm r
  end

(* Karatsuba split at [k] limbs: a = a1*B^k + a0. *)
let split a k =
  let la = Array.length a in
  if la <= k then (zero, a)
  else (norm (Array.sub a k (la - k)), norm (Array.sub a 0 k))

let shift_left_limbs a k =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la < !karatsuba_threshold || lb < !karatsuba_threshold then mul_school a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a1, a0 = split a k and b1, b0 = split b k in
    let z2 = mul a1 b1 in
    let z0 = mul a0 b0 in
    let z1 = sub (mul (add a1 a0) (add b1 b0)) (add z2 z0) in
    add (add (shift_left_limbs z2 (2 * k)) (shift_left_limbs z1 k)) z0
  end

let sqr a = mul a a

let shift_left a n =
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- v land mask;
        carry := v lsr base_bits
      done;
      r.(la + limbs) <- !carry
    end;
    norm r
  end

let shift_right a n =
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      if bits = 0 then Array.blit a limbs r 0 lr
      else begin
        for i = 0 to lr - 1 do
          let lo = a.(i + limbs) lsr bits in
          let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (base_bits - bits)) land mask else 0 in
          r.(i) <- lo lor hi
        done
      end;
      norm r
    end
  end

let shift_right_limbs a k =
  let la = Array.length a in
  if k >= la then zero else norm (Array.sub a k (la - k))

let truncate_limbs a k =
  let la = Array.length a in
  if la <= k then a else norm (Array.sub a 0 k)

let divmod_int a d =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_int: divisor out of range";
  let la = Array.length a in
  if la = 0 then (zero, 0)
  else begin
    let q = Array.make la 0 in
    let rem = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!rem lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (norm q, !rem)
  end

(* Knuth TAOCP vol. 2, 4.3.1, Algorithm D, in base 2^31. *)
let divmod_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  (* Normalize: shift so the top limb of v has its bit 30 set. *)
  let s =
    let top = v.(n - 1) in
    let rec go b c = if b land (1 lsl (base_bits - 1 - c)) <> 0 then c else go b (c + 1) in
    go top 0
  in
  let vn =
    let shifted = shift_left v s in
    (* Shifting by s < 31 cannot grow v beyond n limbs by construction. *)
    assert (Array.length shifted = n);
    shifted
  in
  let un = Array.make (m + n + 1) 0 in
  (let shifted = shift_left u s in
   Array.blit shifted 0 un 0 (Array.length shifted));
  let q = Array.make (m + 1) 0 in
  let vtop = vn.(n - 1) in
  let vsecond = if n >= 2 then vn.(n - 2) else 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    let adjusting = ref true in
    while !adjusting do
      if !qhat >= base || !qhat * vsecond > (!rhat lsl base_bits) lor un.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then adjusting := false
      end else adjusting := false
    done;
    (* Multiply-subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr base_bits;
      let d = un.(j + i) - (p land mask) - !borrow in
      if d < 0 then begin
        un.(j + i) <- d + base;
        borrow := 1
      end else begin
        un.(j + i) <- d;
        borrow := 0
      end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add back. *)
      un.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = un.(j + i) + vn.(i) + !c in
        un.(j + i) <- s land mask;
        c := s lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land mask
    end else un.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = shift_right (norm (Array.sub un 0 n)) s in
  (norm q, r)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end else divmod_knuth a b

(* Special case needed when n >= 2 but un has index j+n-2 = -1? Impossible:
   j >= 0 and n >= 2 so j+n-2 >= 0. *)

let pow_int b e =
  if e < 0 then invalid_arg "Nat.pow_int: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (sqr b) (e lsr 1)
    end
  in
  go one b e

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Nat.of_hex: bad digit"

let of_hex s =
  let s = if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then String.sub s 2 (String.length s - 2) else s in
  let acc = ref zero in
  String.iter
    (fun c -> if c <> '_' then acc := add_int (shift_left !acc 4) (hex_digit c))
    s;
  !acc

let to_hex a =
  if is_zero a then "0"
  else begin
    let nibbles = (num_bits a + 3) / 4 in
    let buf = Buffer.create nibbles in
    for i = nibbles - 1 downto 0 do
      let limb = (i * 4) / base_bits and off = (i * 4) mod base_bits in
      let v =
        let lo = a.(limb) lsr off in
        let hi = if off > base_bits - 4 && limb + 1 < Array.length a then a.(limb + 1) lsl (base_bits - off) else 0 in
        (lo lor hi) land 0xf
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    Buffer.contents buf
  end

let of_decimal s =
  let acc = ref zero in
  String.iter
    (fun c ->
      if c <> '_' then begin
        if c < '0' || c > '9' then invalid_arg "Nat.of_decimal: bad digit";
        acc := add_int (mul_int !acc 10) (Char.code c - Char.code '0')
      end)
    s;
  !acc

let to_decimal a =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_int !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> assert false
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_bytes_le b =
  let acc = ref zero in
  for i = Bytes.length b - 1 downto 0 do
    acc := add_int (shift_left !acc 8) (Char.code (Bytes.get b i))
  done;
  !acc

let to_bytes_le a len =
  if num_bits a > len * 8 then invalid_arg "Nat.to_bytes_le: does not fit";
  let b = Bytes.make len '\000' in
  let bits = num_bits a in
  for i = 0 to ((bits + 7) / 8) - 1 do
    let byte = ref 0 in
    for k = 7 downto 0 do
      byte := (!byte lsl 1) lor (if testbit a ((i * 8) + k) then 1 else 0)
    done;
    Bytes.set b i (Char.chr !byte)
  done;
  b

(* ---- Fixed-width in-place kernels -------------------------------------
   These operate on plain [int array] limb buffers of a caller-chosen fixed
   width (non-canonical: high zero limbs are fine). They are the scalar
   mirror of the packed [Limb] kernels and exist so hot loops can reuse
   buffers instead of allocating one array per intermediate. *)

let to_limbs ~width (a : t) : int array =
  let la = Array.length a in
  if la > width then invalid_arg "Nat.to_limbs: width too small";
  let r = Array.make width 0 in
  Array.blit a 0 r 0 la;
  r

let of_limbs (l : int array) : t = norm (Array.copy l)

let add_into ~width (dst : int array) (a : int array) (b : int array) : int =
  let carry = ref 0 in
  for i = 0 to width - 1 do
    let s = a.(i) + b.(i) + !carry in
    dst.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  !carry

let sub_into ~width (dst : int array) (a : int array) (b : int array) : int =
  let borrow = ref 0 in
  for i = 0 to width - 1 do
    let s = a.(i) - b.(i) - !borrow in
    if s < 0 then begin
      dst.(i) <- s + base;
      borrow := 1
    end else begin
      dst.(i) <- s;
      borrow := 0
    end
  done;
  !borrow

(* Schoolbook product of [wa]-limb [a] and [wb]-limb [b] into
   [dst.(0 .. wa+wb-1)]. [dst] must not alias [a] or [b]. *)
let mul_limbs ~wa ~wb (dst : int array) (a : int array) (b : int array) : unit =
  Array.fill dst 0 (wa + wb) 0;
  for i = 0 to wa - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to wb - 1 do
        let p = dst.(i + j) + (ai * b.(j)) + !carry in
        dst.(i + j) <- p land mask;
        carry := p lsr base_bits
      done;
      let k = ref (i + wb) in
      while !carry <> 0 do
        let s = dst.(!k) + !carry in
        dst.(!k) <- s land mask;
        carry := s lsr base_bits;
        incr k
      done
    end
  done

let mul_into ~width ~scratch (dst : int array) (a : int array) (b : int array)
    : unit =
  if Array.length scratch < 2 * width then
    invalid_arg "Nat.mul_into: scratch shorter than 2*width";
  (* Compute into scratch so [dst] may alias [a] or [b]; [scratch] itself
     must not alias the inputs (it may alias or even be [dst]). *)
  mul_limbs ~wa:width ~wb:width scratch a b;
  if not (scratch == dst) then Array.blit scratch 0 dst 0 (2 * width)

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
