(* Work-stealing parallel map over OCaml 5 domains.

   This is the substitute for the paper's distributed prover and GPU
   offload (§5.2, Figure 6): batch instances are independent, so the prover
   parallelizes across them; "GPUs" become extra domains dedicated to the
   crypto phase (see DESIGN.md §2). All shared state reached from worker
   domains is immutable (field contexts, constraint systems, QAP trees), so
   plain Domain.spawn with an atomic work counter suffices. *)

let num_cores () =
  match Domain.recommended_domain_count () with n when n > 0 -> n | _ -> 1

let mapi ?(domains = 1) (f : int -> 'a -> 'b) (arr : 'a array) : 'b array =
  let n = Array.length arr in
  if domains <= 1 || n <= 1 then Array.mapi f arr
  else begin
    let nd = min domains n in
    let results : 'b option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f i arr.(i));
          go ()
        end
      in
      go ()
    in
    (* Spawned workers run under [Ledger.worker_scope]: their GC deltas are
       noted for the enclosing ledger phase (minor words are domain-local)
       and their counter shards are folded into the registry base before
       the domain exits, deterministically — so no [domains] count changes
       counter totals or drops worker-side tallies. The main domain's own
       worker call needs neither: its shards are read live and its GC is
       already in the phase's delta. *)
    let spawned =
      Array.init (nd - 1) (fun _ -> Domain.spawn (fun () -> Zobs.Ledger.worker_scope worker))
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?domains (f : 'a -> 'b) (arr : 'a array) : 'b array = mapi ?domains (fun _ x -> f x) arr

(* Wall-clock latency of a parallel map — what Figure 6 reports. *)
let timed_map ?domains f arr =
  let t0 = Unix.gettimeofday () in
  let r =
    Zobs.Span.with_ ~name:"pool.map"
      ~attrs:
        [
          ("domains", string_of_int (Option.value domains ~default:1));
          ("tasks", string_of_int (Array.length arr));
        ]
      (fun () -> map ?domains f arr)
  in
  (r, Unix.gettimeofday () -. t0)
