(** Work-stealing parallel map over OCaml 5 domains — the substitute for
    the paper's distributed prover and GPU offload (§5.2, Figure 6; see
    DESIGN.md §2). Batch instances are independent; everything shared is
    immutable, so an atomic work counter suffices. *)

val num_cores : unit -> int

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving. [domains <= 1] degrades to [Array.map]. The mapped
    function must not force shared lazy values (force them before). *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** {!map} with the element index, e.g. to pair each element with
    pre-drawn per-element randomness without allocating a zipped array. *)

val timed_map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array * float
(** Also returns the wall-clock latency — what Figure 6 reports. *)
