(** Byte-bounded LRU for per-digest setup artifacts (DESIGN.md §14).

    Same-digest sessions share one prewarmed QAP — the cross-connection
    counterpart of the paper's within-batch setup amortization. Generic
    over the value so the LRU/eviction policy is unit-testable; the farm
    instantiates it at [Qapb.t]. Mutex-protected: builds run under the
    lock, so a cold-cache race builds once and the loser hits. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; entries : int; bytes : int }

val create : bound_bytes:int -> 'a t
(** An entry whose estimated size exceeds [bound_bytes] is served but not
    retained. *)

val find : 'a t -> string -> (unit -> 'a * int) -> 'a * [ `Hit | `Miss ]
(** [find t key build] returns the cached value, or calls [build] (which
    also estimates the entry's resident bytes), inserts, and evicts
    least-recently-used entries until the byte bound holds again. *)

val stats : 'a t -> stats
val mem : 'a t -> string -> bool
