(* Zfarm: the concurrent multi-tenant prover farm behind `zaatar serve`
   (DESIGN.md §14).

   The sequential loop in Remote.serve holds every later verifier hostage
   to the current one: a peer that thinks for a second between messages
   costs the whole service a second. Here one event loop multiplexes many
   in-flight Prover_session state machines over select/nonblocking
   sockets — a session only occupies the CPU while a complete frame of its
   is being processed — and ready frames are grouped by computation digest
   and fanned out over the Pool domain workers, so same-program instances
   batch across connections exactly as the paper batches them within one
   verifier.

   Setup amortization across users: the compiled QAP (divisor polynomial,
   subproduct trees, NTT twiddle plans) is a pure function of the
   constraint-system digest, so it lives in a byte-bounded per-digest LRU
   ({!Setup_cache}) and is built (and prewarmed) once per program, not
   once per connection.

   Admission control: at most [max_sessions] sessions are in flight;
   [accept_queue] more connections park unread until a slot frees; beyond
   that — or when a parked connection outwaits the session timeout — the
   farm sheds load with a wire [busy retry-after] Error_msg instead of
   letting the kernel backlog time verifiers out silently. Everything is
   accounted in the always-on Svcstats (shed, cache hit/miss, queue depth,
   session-latency percentiles) and rendered by the Prometheus/JSON
   endpoint. *)

open Fieldlib
open Argsys

type config = {
  arg_config : Argument.config;
  max_sessions : int;
  accept_queue : int;  (* parked connections beyond [max_sessions] before shedding *)
  session_timeout_ms : int;
  setup_cache_bytes : int;  (* LRU bound; 0 disables the cache *)
  busy_retry_ms : int;  (* retry-after hint carried in the shed reply *)
  trace_dir : string option;  (* per-session sidecars + forensic bundles *)
  slow_session_ms : int;  (* forensic-dump latency threshold; 0 disables *)
  flight_cap : int;  (* flight-recorder ring entries per session; 0 disables *)
  profile_hz : int;  (* sampling-profiler tick rate; 0 disables *)
}

let default =
  {
    arg_config = Argument.default_config;
    max_sessions = 64;
    accept_queue = 128;
    session_timeout_ms = 30_000;
    setup_cache_bytes = 64 * 1024 * 1024;
    busy_retry_ms = 250;
    trace_dir = None;
    slow_session_ms = 0;
    flight_cap = Zobs.Flight.default_cap;
    profile_hz = Zobs.Profiler.default_hz;
  }

(* Resident-size estimate for one cached QAP: the NTT backend keeps the
   evaluation domain and padded scratch shapes (twiddle plans are
   process-global); Lagrange keeps the divisor and the O(nc log nc)
   subproduct/interpolation trees. Estimates only steer LRU eviction. *)
let approx_qap_bytes qap =
  let el_bytes = ((Nat.num_bits (Fp.modulus (Qapb.ctx qap)) + 7) / 8) + 32 in
  let nc = Qapb.nc qap in
  let log2 =
    let rec go p l = if p >= nc then l else go (2 * p) (l + 1) in
    go 1 0
  in
  match Qapb.backend qap with
  | Qapb.Ntt -> ((2 * Qapb.h_len qap) + nc) * el_bytes
  | Qapb.Lagrange | Qapb.Auto -> nc * (log2 + 6) * el_bytes

let c_sessions = Zobs.Counter.make "farm.sessions"
let c_shed = Zobs.Counter.make "farm.shed"
let c_setup_built = Zobs.Counter.make "farm.setup.built"
let h_session_ms = Zobs.Histogram.make "farm.session_ms"

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type session = {
  conn : Znet.conn;
  reader : Znet.Frame_reader.t;
  ps : Argument.Prover_session.t;
  stats : Znet.Svcstats.conn;
  sid : int;
  outq : (bytes * int ref) Queue.t;  (* framed bytes, write offset *)
  flight : Zobs.Flight.t option;  (* per-session event ring; None when disabled *)
  mutable digest : string;  (* batching key once the Hello named it *)
  mutable trace_id : string;  (* the id this session's Hello carried *)
  mutable deadline : float;
  mutable closing : [ `No | `Ok | `Err of string ];
  mutable inbox : bytes list;  (* complete frames awaiting compute, oldest first *)
}

(* Record into a session's flight ring (a no-op with the recorder off).
   Safe without a lock: the ring is touched either by the loop or by the
   one Pool worker computing this session, never both at once. *)
let frec s ?dur ?detail ?n kind =
  match s.flight with Some fl -> Zobs.Flight.record fl ?dur ?detail ?n kind | None -> ()

(* What one compute job did to its session; applied back on the loop. *)
type job_out = {
  j_replies : bytes list;  (* framed, send order *)
  j_final : [ `Open | `Done_ok | `Done_err of string ];
  j_decode_err : bool;
}

let serve ?(config = default) ~lookup ?(seed = "zaatar prover") ?max_conns
    ?(stop = fun () -> false) ?metrics_listen ?(log : string -> unit = prerr_endline)
    (addr : string) : unit =
  let srv = Znet.listen ~backlog:(config.max_sessions + config.accept_queue + 16) addr in
  Znet.set_server_nonblocking srv;
  log (Printf.sprintf "listening on %s" (Znet.bound_addr srv));
  (* Readiness for /healthz: flips once the event loop is about to run, so
     a 200 means the accept loop really is live, not just the socket
     bound. *)
  let live = Atomic.make false in
  (* The always-on sampling profiler: span stacks are maintained in the
     cheap stacks-only mode whenever the ticker runs (Profiler.start
     enables it), and /profile serves the folded stacks. *)
  let profiler =
    if config.profile_hz > 0 then Some (Zobs.Profiler.make ~hz:config.profile_hz ()) else None
  in
  (match profiler with Some p -> Zobs.Profiler.start p | None -> ());
  let metrics =
    Option.map
      (Remote.start_metrics
         ~ready:(fun () -> Atomic.get live)
         ?profile:(Option.map (fun p () -> Zobs.Profiler.folded p) profiler))
      metrics_listen
  in
  (match metrics with
  | Some m -> log (Printf.sprintf "metrics on %s" (Znet.Metrics_http.bound_addr m))
  | None -> ());
  let cache =
    if config.setup_cache_bytes > 0 then
      Some (Setup_cache.create ~bound_bytes:config.setup_cache_bytes)
    else None
  in
  (* The per-digest setup hook is built per session so cache outcomes land
     in that session's flight ring as well as the global Svcstats. *)
  let setup_for flight =
    Option.map
      (fun cache digest (comp : Argument.computation) ->
        let qap, outcome =
          Setup_cache.find cache digest (fun () ->
              let q =
                Qapb.of_r1cs ~backend:config.arg_config.Argument.qap_backend
                  comp.Argument.r1cs
              in
              Qapb.prewarm q;
              Zobs.Counter.incr c_setup_built;
              (q, approx_qap_bytes q))
        in
        (match outcome with
        | `Hit ->
          Znet.Svcstats.record_cache_hit ();
          Option.iter (fun fl -> Zobs.Flight.record fl ~detail:digest Zobs.Flight.Cache_hit) flight
        | `Miss ->
          Znet.Svcstats.record_cache_miss ();
          Option.iter (fun fl -> Zobs.Flight.record fl ~detail:digest Zobs.Flight.Cache_miss) flight);
        qap)
      cache
  in
  let sessions : (Unix.file_descr, session) Hashtbl.t = Hashtbl.create 64 in
  let parked : (Znet.conn * float) Queue.t = Queue.create () in
  let closed_count = ref 0 in
  let timeout_s = float_of_int config.session_timeout_ms /. 1000.0 in
  let now () = Unix.gettimeofday () in
  let set_queue_depth () = Znet.Svcstats.set_queue_depth (Queue.length parked) in
  let shed conn =
    Znet.Svcstats.record_shed ();
    Zobs.Counter.incr c_shed;
    let b = Znet.frame (Zwire.encode (Zwire.busy_msg ~retry_after_ms:config.busy_retry_ms)) in
    (* Best effort: a fresh socket's send buffer swallows the small frame;
       if the peer is already gone there is nobody to tell. *)
    (try ignore (Znet.write_some conn b ~off:0) with Znet.Net_error _ -> ());
    Znet.close conn;
    Zobs.Log.warn ~fields:[ Zobs.Log.str "peer" (Znet.peer conn) ] "connection shed";
    log "connection shed"
  in
  let admit conn =
    Znet.set_nonblocking conn;
    let stats = Znet.Svcstats.begin_conn ~peer:(Znet.peer conn) in
    Zobs.Counter.incr c_sessions;
    let flight =
      if config.flight_cap > 0 then Some (Zobs.Flight.create ~cap:config.flight_cap ())
      else None
    in
    let s =
      {
        conn;
        reader = Znet.Frame_reader.create ();
        ps =
          Argument.Prover_session.create ~config:config.arg_config ?setup:(setup_for flight)
            ~lookup
            (* A fresh PRG per session: only adversarial strategies draw
               from it, and no session's transcript may depend on its
               predecessors'. *)
            ~prg:(Chacha.Prg.create ~seed ())
            ();
        stats;
        sid = stats.Znet.Svcstats.id;
        outq = Queue.create ();
        flight;
        digest = "";
        trace_id = "";
        deadline = now () +. timeout_s;
        closing = `No;
        inbox = [];
      }
    in
    frec s ~detail:(Znet.peer conn) (Zobs.Flight.Mark "accepted");
    Hashtbl.replace sessions (Znet.fd conn) s;
    Zobs.Log.info
      ~fields:[ Zobs.Log.int "conn" s.sid; Zobs.Log.str "peer" (Znet.peer conn) ]
      "connection accepted"
  in
  (* Dump the flight ring: always a Chrome-trace sidecar (same
     prover_connN.json naming as the sequential path, so trace-merge picks
     it up unchanged), plus the JSONL forensic bundle when the session
     erred or outran --slow-session-ms. *)
  let dump_flight s ~duration_ms =
    match (config.trace_dir, s.flight) with
    | Some dir, Some fl when Zobs.Flight.count fl > 0 ->
      let sidecar = Filename.concat dir (Printf.sprintf "prover_conn%d.json" s.sid) in
      Zobs.Flight.write_sidecar ~pid:1 ~process_name:"prover" ~trace_id:s.trace_id fl sidecar;
      log (Printf.sprintf "trace written to %s" sidecar);
      let errored = match s.closing with `Err _ -> true | _ -> false in
      let slow = config.slow_session_ms > 0 && duration_ms >= float_of_int config.slow_session_ms in
      if errored || slow then begin
        let header =
          let open Zobs.Json in
          [
            ("sid", Num (float_of_int s.sid));
            ("peer", Str (Znet.peer s.conn));
            ("digest", Str s.digest);
            ("trace_id", Str s.trace_id);
            ("outcome", Str (if errored then "error" else "slow"));
            ("cause", Str (match s.closing with `Err m -> m | _ -> ""));
            ("duration_ms", Num duration_ms);
            ("slow_session_ms", Num (float_of_int config.slow_session_ms));
          ]
        in
        let path = Filename.concat dir (Printf.sprintf "forensic_conn%d.jsonl" s.sid) in
        Zobs.Flight.write_jsonl ~header fl path;
        Zobs.Log.warn
          ~fields:
            [
              Zobs.Log.int "conn" s.sid;
              Zobs.Log.str "outcome" (if errored then "error" else "slow");
              Zobs.Log.str "path" path;
            ]
          "forensic bundle written";
        log (Printf.sprintf "forensic written to %s" path)
      end
    | _ -> ()
  in
  let finish s =
    Hashtbl.remove sessions (Znet.fd s.conn);
    Znet.close s.conn;
    incr closed_count;
    let fields more =
      Zobs.Log.int "conn" s.sid
      :: Zobs.Log.str "peer" (Znet.peer s.conn)
      :: Zobs.Log.str "digest" s.digest
      :: more
    in
    (match s.closing with
    | `Ok | `No ->
      Znet.Svcstats.end_conn s.stats `Ok;
      Zobs.Log.info ~fields:(fields []) "session complete";
      log "session complete"
    | `Err m ->
      Znet.Svcstats.end_conn s.stats (`Error m);
      Zobs.Log.error ~fields:(fields [ Zobs.Log.str "cause" m ]) "session error";
      log ("session error: " ^ m));
    let duration_ms = Znet.Svcstats.duration_s s.stats *. 1000.0 in
    frec s
      ~detail:(match s.closing with `Err m -> m | _ -> "ok")
      (Zobs.Flight.Mark "finished");
    dump_flight s ~duration_ms;
    Zobs.Histogram.observe h_session_ms (int_of_float duration_ms)
  in
  let fail_session s msg = if s.closing = `No then s.closing <- `Err msg in
  (* Flush a session's out-queue as far as the socket allows. *)
  let flush s =
    try
      let progress = ref true in
      while !progress && not (Queue.is_empty s.outq) do
        let buf, off = Queue.peek s.outq in
        let n = Znet.write_some s.conn buf ~off:!off in
        if n = 0 then progress := false
        else begin
          off := !off + n;
          s.deadline <- now () +. timeout_s;
          if !off = Bytes.length buf then begin
            frec s ~n:(Bytes.length buf) Zobs.Flight.Write;
            ignore (Queue.pop s.outq)
          end
        end
      done
    with Znet.Net_error e ->
      Queue.clear s.outq;
      fail_session s (Znet.error_to_string e)
  in
  (* Drain readable bytes into complete frames; protocol work happens in
     the compute pass, not here. *)
  let drain_reads s =
    try
      let continue = ref (s.closing = `No) in
      while !continue do
        match Znet.Frame_reader.step s.reader s.conn with
        | `Frame payload ->
          s.deadline <- now () +. timeout_s;
          frec s ~n:(Bytes.length payload) Zobs.Flight.Read;
          s.inbox <- s.inbox @ [ payload ]
        | `Awaiting -> continue := false
        | `Eof ->
          continue := false;
          if s.inbox = [] && Queue.is_empty s.outq then
            fail_session s (Znet.error_to_string (Znet.Closed (Znet.peer s.conn ^ " closed the connection")))
      done
    with Znet.Net_error e ->
      (match e with Znet.Timeout _ -> Znet.Svcstats.record_timeout () | _ -> ());
      fail_session s (Znet.error_to_string e)
  in
  (* Run one session's queued frames through its state machine. Runs on a
     Pool worker: everything it touches is session-local (or the shared
     read-only cached QAP), and outcomes are applied back on the loop. *)
  let compute (s : session) : session * job_out =
    let replies = ref [] in
    let enqueue reply =
      let b = Zwire.encode ?codec:(Argument.Prover_session.codec s.ps) reply in
      Znet.Svcstats.record_sent s.stats ~phase:(Zwire.phase_of_msg reply) (Bytes.length b);
      replies := Znet.frame b :: !replies
    in
    let rec go inbox =
      match inbox with
      | [] -> { j_replies = List.rev !replies; j_final = `Open; j_decode_err = false }
      | raw :: rest -> (
        match
          let m = Zwire.decode ?codec:(Argument.Prover_session.codec s.ps) raw in
          let phase = Zwire.phase_of_msg m in
          Znet.Svcstats.record_recv s.stats ~phase (Bytes.length raw);
          (match m with
          | Zwire.Hello h ->
            s.digest <- h.Zwire.digest;
            (* Prover_session only sets the process-global trace id, which
               is meaningless with many sessions in flight — keep this
               session's own id for its sidecar. *)
            s.trace_id <- h.Zwire.trace_id;
            Znet.Svcstats.set_digest s.stats h.Zwire.digest
          | _ -> ());
          let t0 = Unix.gettimeofday () in
          let r = Argument.Prover_session.on_msg s.ps m in
          let dur = Unix.gettimeofday () -. t0 in
          Znet.Svcstats.record_phase_time s.stats ~phase dur;
          frec s ~dur ~detail:phase (Zobs.Flight.Phase phase);
          r
        with
        | `Send reply ->
          enqueue reply;
          go rest
        | `Finished (Some reply) ->
          enqueue reply;
          { j_replies = List.rev !replies; j_final = `Done_ok; j_decode_err = false }
        | `Finished None ->
          { j_replies = List.rev !replies; j_final = `Done_ok; j_decode_err = false }
        | exception Argument.Session_error m ->
          enqueue (Zwire.Error_msg m);
          { j_replies = List.rev !replies; j_final = `Done_err m; j_decode_err = false }
        | exception Zwire.Decode_error e ->
          let m = "malformed message: " ^ Zwire.error_to_string e in
          enqueue (Zwire.Error_msg m);
          { j_replies = List.rev !replies; j_final = `Done_err m; j_decode_err = true }
        | exception Invalid_argument m ->
          let m = "invalid parameters: " ^ m in
          enqueue (Zwire.Error_msg m);
          { j_replies = List.rev !replies; j_final = `Done_err m; j_decode_err = false })
    in
    (* Ledger op deltas over this frame batch, recorded to the flight ring.
       The counters are process-wide merged views, so under concurrent
       same-phase batches a delta can include a neighbour's ops — exact
       when one session computes at a time, indicative otherwise. Only
       live when tracing is on (the counters are gated). *)
    let ops0 = if Zobs.enabled () then Some (Zobs.Ledger.snapshot ()) else None in
    let out = go s.inbox in
    (match ops0 with
    | Some ops0 ->
      let d = Zobs.Ledger.sub_ops (Zobs.Ledger.snapshot ()) ops0 in
      let nz = List.filter (fun (_, v) -> v <> 0) (Zobs.Ledger.ops_to_list d) in
      if nz <> [] then frec s (Zobs.Flight.Ledger_delta nz)
    | None -> ());
    (s, out)
  in
  let apply_job (s, out) =
    s.inbox <- [];
    List.iter (fun b -> Queue.add (b, ref 0) s.outq) out.j_replies;
    if out.j_decode_err then Znet.Svcstats.record_decode_error ();
    (match out.j_final with
    | `Open -> ()
    | `Done_ok -> if s.closing = `No then s.closing <- `Ok
    | `Done_err m -> fail_session s m);
    flush s
  in
  (* Cross-connection batching: ready sessions grouped by digest, each
     group fanned out over the Pool domains in one map. *)
  let compute_pass () =
    let ready =
      Hashtbl.fold (fun _ s acc -> if s.inbox <> [] then s :: acc else acc) sessions []
      |> List.sort (fun a b -> compare a.sid b.sid)
    in
    if ready <> [] then begin
      let groups : (string, session list ref) Hashtbl.t = Hashtbl.create 4 in
      let order = ref [] in
      List.iter
        (fun s ->
          match Hashtbl.find_opt groups s.digest with
          | Some l -> l := s :: !l
          | None ->
            Hashtbl.replace groups s.digest (ref [ s ]);
            order := s.digest :: !order)
        ready;
      List.iter
        (fun d ->
          let group = Array.of_list (List.rev !(Hashtbl.find groups d)) in
          Dompool.Pool.map ~domains:config.arg_config.Argument.domains compute group
          |> Array.iter apply_job)
        (List.rev !order)
    end
  in
  let session_slots_free () = Hashtbl.length sessions < config.max_sessions in
  let promote_parked () =
    while session_slots_free () && not (Queue.is_empty parked) do
      let conn, _ = Queue.pop parked in
      admit conn
    done;
    set_queue_depth ()
  in
  let accept_pass () =
    let continue = ref true in
    while !continue do
      match Znet.accept_nonblock srv with
      | None -> continue := false
      | Some conn ->
        (* Parked connections keep FIFO priority over newcomers. *)
        if Queue.is_empty parked && session_slots_free () then admit conn
        else if Queue.length parked < config.accept_queue then begin
          Queue.add (conn, now ()) parked;
          set_queue_depth ()
        end
        else shed conn
    done
  in
  let expire () =
    let t = now () in
    (* Parked connections that outwaited the timeout are shed, not served. *)
    let keep = Queue.create () in
    Queue.iter
      (fun (conn, since) -> if t -. since > timeout_s then shed conn else Queue.add (conn, since) keep)
      parked;
    if Queue.length keep <> Queue.length parked then begin
      Queue.clear parked;
      Queue.transfer keep parked;
      set_queue_depth ()
    end;
    Hashtbl.fold (fun _ s acc -> if s.deadline < t then s :: acc else acc) sessions []
    |> List.iter (fun s ->
           Znet.Svcstats.record_timeout ();
           frec s Zobs.Flight.Timeout;
           fail_session s "session timeout";
           Queue.clear s.outq;
           finish s)
  in
  let reap_closed () =
    Hashtbl.fold
      (fun _ s acc -> if s.closing <> `No && Queue.is_empty s.outq then s :: acc else acc)
      sessions []
    |> List.iter finish
  in
  let done_serving () =
    stop ()
    || match max_conns with
       | Some n -> !closed_count >= n && Hashtbl.length sessions = 0 && Queue.is_empty parked
       | None -> false
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set live false;
      (match profiler with Some p -> Zobs.Profiler.stop p | None -> ());
      Hashtbl.iter (fun _ s -> Znet.close s.conn) sessions;
      Queue.iter (fun (c, _) -> Znet.close c) parked;
      Znet.close_server srv;
      match metrics with Some m -> Znet.Metrics_http.stop m | None -> ())
    (fun () ->
      Atomic.set live true;
      while not (done_serving ()) do
        let t = now () in
        let reads = ref [ Znet.server_fd srv ] in
        let writes = ref [] in
        let next_deadline = ref (t +. 0.25) in
        Hashtbl.iter
          (fun fd s ->
            if s.closing = `No then reads := fd :: !reads;
            if not (Queue.is_empty s.outq) then writes := fd :: !writes;
            if s.deadline < !next_deadline then next_deadline := s.deadline)
          sessions;
        Queue.iter
          (fun (_, since) ->
            let d = since +. timeout_s in
            if d < !next_deadline then next_deadline := d)
          parked;
        let timeout = Float.max 0.01 (!next_deadline -. t) in
        let rs, ws, _ =
          try Unix.select !reads !writes [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        let t_wake = now () in
        if List.mem (Znet.server_fd srv) rs then accept_pass ();
        List.iter
          (fun fd ->
            match Hashtbl.find_opt sessions fd with Some s -> drain_reads s | None -> ())
          rs;
        compute_pass ();
        List.iter
          (fun fd ->
            match Hashtbl.find_opt sessions fd with Some s -> flush s | None -> ())
          ws;
        reap_closed ();
        expire ();
        promote_parked ();
        (* Event-loop health: how long this iteration parked in select vs
           worked, and how many fds the wakeup brought. *)
        Znet.Svcstats.record_loop_iter ~busy_s:(now () -. t_wake) ~wait_s:(t_wake -. t)
          ~ready:(List.length rs + List.length ws)
      done)
