(* Setup_cache: a byte-bounded LRU keyed by computation digest.

   The protocol amortizes setup within one verifier's batch; this cache
   amortizes it across connections — the compiled QAP (divisor, subproduct
   trees, NTT domain) is a pure function of the constraint system, so any
   two sessions naming the same digest can share one prewarmed copy
   (DESIGN.md §14). Values are built under the lock: when two same-digest
   sessions race on a cold cache, the second blocks briefly and then hits,
   instead of both paying for construction.

   Generic over the value so the LRU policy is testable without building
   real QAPs; the farm instantiates it at [Qapb.t]. *)

type 'a entry = { value : 'a; bytes : int; mutable last_used : int }

type stats = { hits : int; misses : int; evictions : int; entries : int; bytes : int }

type 'a t = {
  mu : Mutex.t;
  bound_bytes : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int; (* logical time for LRU ordering *)
  mutable total_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~bound_bytes =
  {
    mu = Mutex.create ();
    bound_bytes;
    tbl = Hashtbl.create 16;
    clock = 0;
    total_bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let evict_lru t ~keep =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        if k = keep then acc
        else
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | _ -> Some (k, e))
      t.tbl None
  in
  match victim with
  | None -> false
  | Some (k, e) ->
    Hashtbl.remove t.tbl k;
    t.total_bytes <- t.total_bytes - e.bytes;
    t.evictions <- t.evictions + 1;
    true

let find t key build =
  locked t (fun () ->
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        e.last_used <- t.clock;
        t.hits <- t.hits + 1;
        (e.value, `Hit)
      | None ->
        let value, bytes = build () in
        t.misses <- t.misses + 1;
        if bytes <= t.bound_bytes then begin
          Hashtbl.replace t.tbl key { value; bytes; last_used = t.clock };
          t.total_bytes <- t.total_bytes + bytes;
          while t.total_bytes > t.bound_bytes && evict_lru t ~keep:key do
            ()
          done
        end;
        (value, `Miss))

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
        bytes = t.total_bytes;
      })

let mem t key = locked t (fun () -> Hashtbl.mem t.tbl key)
