(** Zfarm: the concurrent multi-tenant prover farm behind [zaatar serve]
    (DESIGN.md §14).

    One event loop multiplexes many in-flight {!Argsys.Argument.Prover_session}
    state machines over [select]/nonblocking sockets — slow verifiers never
    stall fast ones — while ready frames are grouped by computation digest
    and fanned out over the Pool domain workers. Per-digest setup (the
    compiled QAP with its divisor, subproduct trees and twiddle plans)
    lives in a byte-bounded LRU ({!Setup_cache}), amortizing the paper's
    per-batch setup across {i users}. Admission control parks up to
    [accept_queue] connections beyond [max_sessions] and sheds the rest
    with a wire [busy retry-after] reply ({!Zwire.busy_msg}).

    The sequential loop ({!Argsys.Remote.serve}) and the in-process
    loopback stay as the transcript-bit-identical reference paths; the
    farm pumps the same state machines over the same codec, so its
    per-session byte streams are identical too. *)

type config = {
  arg_config : Argsys.Argument.config;
  max_sessions : int;  (** in-flight session cap *)
  accept_queue : int;
      (** connections parked (accepted, unread) beyond [max_sessions]
          before shedding begins *)
  session_timeout_ms : int;  (** per-session inactivity deadline *)
  setup_cache_bytes : int;  (** LRU byte bound (--setup-cache-mb at the CLI); 0 disables the cache *)
  busy_retry_ms : int;  (** retry-after hint carried in the shed reply *)
  trace_dir : string option;
      (** write per-session Chrome-trace sidecars ([prover_connN.json],
          mergeable by [zaatar trace-merge]) and forensic JSONL bundles
          ([forensic_connN.jsonl]) here *)
  slow_session_ms : int;
      (** sessions lasting at least this long also get a forensic bundle
          (0 disables the slow-session trigger) *)
  flight_cap : int;
      (** per-session flight-recorder ring capacity (events); 0 disables
          the recorder entirely *)
  profile_hz : int;
      (** sampling wall-clock profiler tick rate backing [/profile] and
          [zaatar profile --live]; 0 disables the sampler *)
}

val default : config
(** 64 sessions, 128-deep accept queue, 30 s timeout, 64 MiB cache. *)

val approx_qap_bytes : Qapb.t -> int
(** The resident-size estimate steering LRU eviction. *)

val serve :
  ?config:config ->
  lookup:(string -> Argsys.Argument.computation option) ->
  ?seed:string ->
  ?max_conns:int ->
  ?stop:(unit -> bool) ->
  ?metrics_listen:string ->
  ?log:(string -> unit) ->
  string ->
  unit
(** Bind ["HOST:PORT"] (port 0 picks an ephemeral port), log
    ["listening on HOST:PORT"], and run the event loop until [stop]
    returns true or — when [max_conns] is given — that many sessions have
    closed and none remain in flight (the CLI maps [--once] to
    [max_conns:1]). A fresh per-session PRG derives from [seed]; session
    errors are logged and accounted, never fatal to the loop.
    [metrics_listen] starts the Prometheus/JSON endpoint
    ({!Argsys.Remote.start_metrics}) alongside, with [/healthz] turning
    200 once the event loop is live and [/profile] serving the sampling
    profiler's folded stacks.

    Each session carries a bounded flight recorder (phase transitions,
    frame reads/writes, cache hits/misses, ledger deltas, shed/timeout
    marks). With [config.trace_dir] set, every finished session dumps a
    Chrome-trace sidecar stamped with the verifier's trace id; sessions
    that error — or outlast [config.slow_session_ms] — additionally dump
    a JSONL forensic bundle. *)
