(* Textual serialization of quadratic-form systems and assignments, so
   compiled computations can be exported, archived and re-verified without
   recompiling (CLI: `zaatar compile --emit ...`).

   Format (line-oriented, hex field elements):

     r1cs v=<num_vars> z=<num_z> c=<num_constraints> p=<modulus-hex>
     # one constraint = three rows
     A <var>:<coef> <var>:<coef> ...
     B ...
     C ...
     ...

     witness n=<len> p=<modulus-hex>
     <el>
     ... *)

open Fieldlib

let row_to_string prefix (lc : Lincomb.t) =
  let b = Buffer.create 64 in
  Buffer.add_string b prefix;
  List.iter
    (fun (v, c) ->
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ':';
      Buffer.add_string b (Nat.to_hex (Fp.to_nat c)))
    (Lincomb.terms lc);
  Buffer.contents b

let system_to_string (sys : R1cs.system) =
  let b = Buffer.create 4096 in
  Printf.bprintf b "r1cs v=%d z=%d c=%d p=%s\n" sys.R1cs.num_vars sys.R1cs.num_z
    (R1cs.num_constraints sys)
    (Nat.to_hex (Fp.modulus sys.R1cs.field));
  Array.iter
    (fun (k : R1cs.constr) ->
      Buffer.add_string b (row_to_string "A" k.R1cs.a);
      Buffer.add_char b '\n';
      Buffer.add_string b (row_to_string "B" k.R1cs.b);
      Buffer.add_char b '\n';
      Buffer.add_string b (row_to_string "C" k.R1cs.c);
      Buffer.add_char b '\n')
    sys.R1cs.constraints;
  Buffer.contents b

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Split into (line_number, content) pairs, dropping blanks and comments.
   Each line is trimmed first, which both strips trailing whitespace and
   eats the '\r' of CRLF files — exported systems survive a round-trip
   through Windows editors and git autocrlf. Numbers are 1-based positions
   in the original input, so errors point at the real line. *)
let numbered_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let split_ws s = String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_int ~line what v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> parse_error "line %d: %s is not an integer: %S" line what v

let parse_hex ~line what v =
  try Nat.of_hex v
  with Invalid_argument _ -> parse_error "line %d: %s is not a hex value: %S" line what v

let parse_kv ~line field expected_key =
  match String.split_on_char '=' field with
  | [ k; v ] when k = expected_key -> v
  | _ -> parse_error "line %d: expected %s=<value>, got %S" line expected_key field

let parse_row ctx prefix (line, content) =
  match split_ws content with
  | p :: terms when p = prefix ->
    List.fold_left
      (fun acc term ->
        match String.index_opt term ':' with
        | None -> parse_error "line %d: bad term %S (expected <var>:<coef-hex>)" line term
        | Some i ->
          let v = parse_int ~line "variable index" (String.sub term 0 i) in
          let c =
            Fp.of_nat ctx
              (parse_hex ~line "coefficient" (String.sub term (i + 1) (String.length term - i - 1)))
          in
          Lincomb.add_term ctx acc v c)
      Lincomb.zero terms
  | _ -> parse_error "line %d: expected row %S, got %S" line prefix content

let system_of_string (s : string) : R1cs.system =
  match numbered_lines s with
  | [] -> parse_error "empty input"
  | (hline, header) :: rest ->
    (match split_ws header with
    | [ "r1cs"; v; z; c; p ] ->
      let num_vars = parse_int ~line:hline "v" (parse_kv ~line:hline v "v") in
      let num_z = parse_int ~line:hline "z" (parse_kv ~line:hline z "z") in
      let nc = parse_int ~line:hline "c" (parse_kv ~line:hline c "c") in
      let modulus = parse_hex ~line:hline "p" (parse_kv ~line:hline p "p") in
      let ctx = Fp.create modulus in
      let rest = Array.of_list rest in
      if Array.length rest <> 3 * nc then
        parse_error "expected %d rows, found %d" (3 * nc) (Array.length rest);
      let constraints =
        Array.init nc (fun j ->
            {
              R1cs.a = parse_row ctx "A" rest.(3 * j);
              b = parse_row ctx "B" rest.((3 * j) + 1);
              c = parse_row ctx "C" rest.((3 * j) + 2);
            })
      in
      let sys = { R1cs.field = ctx; num_vars; num_z; constraints } in
      R1cs.check_wellformed sys;
      sys
    | _ -> parse_error "line %d: bad header %S" hline header)

let assignment_to_string ctx (w : Fp.el array) =
  let b = Buffer.create 1024 in
  Printf.bprintf b "witness n=%d p=%s\n" (Array.length w) (Nat.to_hex (Fp.modulus ctx));
  Array.iter
    (fun e ->
      Buffer.add_string b (Nat.to_hex (Fp.to_nat e));
      Buffer.add_char b '\n')
    w;
  Buffer.contents b

let assignment_of_string (s : string) : Fp.ctx * Fp.el array =
  match numbered_lines s with
  | [] -> parse_error "empty witness"
  | (hline, header) :: rest ->
    (match split_ws header with
    | [ "witness"; n; p ] ->
      let len = parse_int ~line:hline "n" (parse_kv ~line:hline n "n") in
      let ctx = Fp.create (parse_hex ~line:hline "p" (parse_kv ~line:hline p "p")) in
      if List.length rest <> len then
        parse_error "expected %d elements, found %d" len (List.length rest);
      ( ctx,
        Array.of_list
          (List.map (fun (line, l) -> Fp.of_nat ctx (parse_hex ~line "element" l)) rest) )
    | _ -> parse_error "line %d: bad witness header %S" hline header)

(* FNV-1a over the canonical text form: a stable 64-bit identifier for a
   constraint system, used by the wire protocol's Hello so verifier and
   prover agree on *which* computation they are arguing about. This is
   identification, not collision resistance — a malicious prover gains
   nothing from a collision it could not get by simply lying in its
   answers, which the PCP checks catch. *)
let system_digest (sys : R1cs.system) : string =
  let s = system_to_string sys in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h
