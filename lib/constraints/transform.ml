(* The Ginger -> Zaatar constraint transformation of §4: keep degree-1
   terms, replace every *distinct* degree-2 monomial z_i z_j with a fresh
   variable m_ij defined by a new quadratic-form constraint z_i * z_j =
   m_ij. The fresh variables are unbound, so they extend the Z region:

     |Z_zaatar| = |Z_ginger| + K2      |C_zaatar| = |C_ginger| + K2

   Variable renumbering keeps the system convention (Z first, then IO):
   original z stays put, product variables take n'+1 .. n'+K2, original IO
   shifts up by K2. *)

open Fieldlib

type t = {
  r1cs : R1cs.system;
  monomials : (int * int) array; (* original-index monomials, in product-var order *)
  k2 : int;
  var_map : int -> int; (* original variable index -> new index *)
}

let apply (sys : Quad.system) : t =
  let ctx = sys.field in
  let monomials = Array.of_list (Quad.distinct_quadratic_monomials sys) in
  let k2 = Array.length monomials in
  let var_map v = if v <= sys.num_z then v else v + k2 in
  let prod_var =
    let tbl = Hashtbl.create (max 16 k2) in
    Array.iteri (fun idx m -> Hashtbl.add tbl m (sys.num_z + 1 + idx)) monomials;
    fun m -> Hashtbl.find tbl m
  in
  let remap_lc lc = Lincomb.map_vars var_map lc in
  let linear_constraints =
    Array.map
      (fun (q : Quad.qpoly) ->
        let lin = remap_lc q.Quad.lin in
        let with_prods =
          Quad.MMap.fold
            (fun m c acc -> Lincomb.add_term ctx acc (prod_var m) c)
            q.Quad.quad lin
        in
        { R1cs.a = with_prods; b = Lincomb.of_const Fp.one; c = Lincomb.zero })
      sys.constraints
  in
  let product_constraints =
    Array.mapi
      (fun idx (i, j) ->
        {
          R1cs.a = Lincomb.of_var (var_map i);
          b = Lincomb.of_var (var_map j);
          c = Lincomb.of_var (sys.num_z + 1 + idx);
        })
      monomials
  in
  let r1cs =
    {
      R1cs.field = ctx;
      num_vars = sys.num_vars + k2;
      num_z = sys.num_z + k2;
      constraints = Array.append linear_constraints product_constraints;
    }
  in
  R1cs.check_wellformed r1cs;
  { r1cs; monomials; k2; var_map }

(* Row-layout accessors for analyses over the transform output (Zlint):
   rows [0 .. linear_rows-1] are the remapped original constraints, rows
   [linear_rows .. linear_rows+k2-1] the product definitions, in monomial
   order. *)
let linear_rows tr = R1cs.num_constraints tr.r1cs - tr.k2

let product_rows tr =
  let base = linear_rows tr in
  Array.to_list (Array.mapi (fun idx m -> (base + idx, m)) tr.monomials)

(* Lift a satisfying assignment of the Ginger system to the Zaatar system by
   computing the product-variable values. *)
let extend_assignment (tr : t) (sys : Quad.system) (w : Fp.el array) : Fp.el array =
  let ctx = sys.field in
  let n' = tr.r1cs.R1cs.num_vars in
  let w' = Array.make (n' + 1) Fp.zero in
  w'.(0) <- Fp.one;
  for v = 1 to sys.num_vars do
    w'.(tr.var_map v) <- w.(v)
  done;
  Array.iteri
    (fun idx (i, j) -> w'.(sys.num_z + 1 + idx) <- Fp.mul ctx w.(i) w.(j))
    tr.monomials;
  w'
