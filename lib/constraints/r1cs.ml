(* Zaatar's quadratic-form constraints (§4): each constraint j is
   p_A(W) * p_B(W) = p_C(W) with degree-1 p_A, p_B, p_C. This is the shape
   the QAP encoding of Appendix A.1 consumes (and what later literature
   calls R1CS). Rows are sparse linear combinations over (w0=1, w1..wn). *)

open Fieldlib

type constr = { a : Lincomb.t; b : Lincomb.t; c : Lincomb.t }

type system = {
  field : Fp.ctx;
  num_vars : int; (* n *)
  num_z : int; (* n'; IO variables occupy n'+1 .. n *)
  constraints : constr array;
}

let num_constraints sys = Array.length sys.constraints
let num_io sys = sys.num_vars - sys.num_z

let check_wellformed sys =
  Array.iter
    (fun { a; b; c } ->
      List.iter
        (fun lc ->
          if Lincomb.max_var lc > sys.num_vars then invalid_arg "R1cs: variable out of range")
        [ a; b; c ])
    sys.constraints;
  if sys.num_z > sys.num_vars then invalid_arg "R1cs: num_z > num_vars"

let eval_constr ctx k (w : Fp.el array) =
  let va = Lincomb.eval ctx k.a w in
  let vb = Lincomb.eval ctx k.b w in
  let vc = Lincomb.eval ctx k.c w in
  Fp.sub ctx (Fp.mul ctx va vb) vc

let satisfied ctx sys (w : Fp.el array) =
  if Array.length w <> sys.num_vars + 1 then invalid_arg "R1cs.satisfied: bad assignment length";
  if not (Fp.equal w.(0) Fp.one) then invalid_arg "R1cs.satisfied: w0 must be 1";
  Array.for_all (fun k -> Fp.is_zero (eval_constr ctx k w)) sys.constraints

let first_violation ctx sys (w : Fp.el array) =
  let n = Array.length sys.constraints in
  let rec go j =
    if j >= n then None
    else if Fp.is_zero (eval_constr ctx sys.constraints.(j) w) then go (j + 1)
    else Some j
  in
  go 0

let iteri f sys = Array.iteri f sys.constraints

(* Distinct variables (>= 1; the constant w0 excluded) of one constraint,
   sorted ascending — the row's support in the constraint dependency graph
   that Zlint's backend analyses walk. *)
let constr_vars { a; b; c } =
  List.concat_map (fun lc -> List.filter_map (fun (v, _) -> if v > 0 then Some v else None) (Lincomb.terms lc)) [ a; b; c ]
  |> List.sort_uniq compare

(* A row that every assignment satisfies: A*B - C is syntactically zero.
   Detects the all-zero row and the zero-product forms (A or B zero with C
   zero); constant-only rows are the caller's business (they are either
   trivial or unsatisfiable depending on the constants). *)
let constr_is_trivial { a; b; c } =
  Lincomb.is_zero c && (Lincomb.is_zero a || Lincomb.is_zero b)

(* Total non-zero coefficients, the K + 3K2 bound of §A.3. *)
let num_nonzero sys =
  Array.fold_left
    (fun acc { a; b; c } ->
      acc + Lincomb.num_terms a + Lincomb.num_terms b + Lincomb.num_terms c)
    0 sys.constraints
