(** Textual serialization of quadratic-form systems and assignments, so
    compiled computations can be exported, archived and re-checked without
    recompiling (`zaatar compile --emit`, `zaatar run --emit-witness`,
    `zaatar check`).

    Line-oriented, hex field elements; `#` comments and blank lines are
    ignored, lines are trimmed (so CRLF endings and trailing whitespace
    parse cleanly) and {!Parse_error} messages carry 1-based line numbers:

    {v
    r1cs v=<num_vars> z=<num_z> c=<num_constraints> p=<modulus-hex>
    A <var>:<coef> <var>:<coef> ...
    B ...
    C ...
    v} *)

open Fieldlib

exception Parse_error of string

val system_to_string : R1cs.system -> string
val system_of_string : string -> R1cs.system
(** Raises {!Parse_error} on malformed input and [Invalid_argument] on
    systems with out-of-range variables. *)

val assignment_to_string : Fp.ctx -> Fp.el array -> string
val assignment_of_string : string -> Fp.ctx * Fp.el array

val system_digest : R1cs.system -> string
(** FNV-1a 64-bit hash of {!system_to_string}, as 16 hex digits: the
    computation identifier in the wire protocol's [Hello]. Identification
    only — no collision resistance is needed or claimed (see the
    implementation comment). *)
