(** The Ginger-to-Zaatar constraint transformation of §4: every *distinct*
    degree-2 monomial z_i z_j is replaced by a fresh variable m_ij defined
    by a new quadratic-form constraint z_i * z_j = m_ij, making every
    original constraint linear. Consequently

      |Z_zaatar| = |Z_ginger| + K2      |C_zaatar| = |C_ginger| + K2

    with K2 the number of distinct degree-2 monomials. Fresh variables are
    unbound, so they extend the Z region; original IO variables shift up by
    K2. *)

open Fieldlib

type t = {
  r1cs : R1cs.system;
  monomials : (int * int) array; (** original-index monomials, in product-variable order *)
  k2 : int;
  var_map : int -> int; (** original variable index -> new index *)
}

val apply : Quad.system -> t

val linear_rows : t -> int
(** Number of remapped original constraints; they occupy rows
    [0 .. linear_rows - 1] of the R1CS, the product definitions the rest. *)

val product_rows : t -> (int * (int * int)) list
(** [(row, (i, j))] for every product-definition row [z_i * z_j = m]:
    the Zlint backend's hook for auditing the K2 dedup accounting. *)

val extend_assignment : t -> Quad.system -> Fp.el array -> Fp.el array
(** Lift a satisfying assignment of the Ginger system to the Zaatar system
    by computing the product-variable values; preserves satisfiability in
    both directions. *)
