(** Zaatar's quadratic-form constraints (paper §4): each constraint j is

      p_A(W) * p_B(W) = p_C(W)

    with degree-1 [p_A], [p_B], [p_C] over (w0 = 1, w1 .. wn). This is the
    form the QAP encoding of Appendix A.1 consumes (later literature calls
    it R1CS). *)

open Fieldlib

type constr = { a : Lincomb.t; b : Lincomb.t; c : Lincomb.t }

type system = {
  field : Fp.ctx;
  num_vars : int; (** n *)
  num_z : int; (** n'; IO variables occupy n'+1 .. n *)
  constraints : constr array;
}

val num_constraints : system -> int
val num_io : system -> int

val check_wellformed : system -> unit
(** Raises [Invalid_argument] on out-of-range variables. *)

val eval_constr : Fp.ctx -> constr -> Fp.el array -> Fp.el
(** The residual [<a,w><b,w> - <c,w>]; zero iff the constraint holds. *)

val satisfied : Fp.ctx -> system -> Fp.el array -> bool
val first_violation : Fp.ctx -> system -> Fp.el array -> int option

val iteri : (int -> constr -> unit) -> system -> unit
(** Iterate over constraints with their row index. *)

val constr_vars : constr -> int list
(** Distinct variables ([>= 1]; the constant [w0] excluded) appearing in a
    row, sorted ascending. *)

val constr_is_trivial : constr -> bool
(** [true] when [A*B - C] is syntactically zero (all-zero row, or zero [A]
    or [B] with zero [C]): the row constrains nothing. *)

val num_nonzero : system -> int
(** Total non-zero coefficients — the K + 3K2 bound of §A.3 that governs
    the verifier's query-construction cost. *)
