(* Abstract syntax of ZL, the high-level input language (standing in for
   the SFDL front-end of Ginger's compiler, §5.1). Feature set per §2.2:
   field ops [+ - x], if/then/else, logical tests and connectives, order
   comparisons, equality/inequality, bounded loops, fixed-size arrays with
   arbitrary (data-dependent) index expressions.

   Every expression, statement and parameter carries the source position of
   its first token, so front-end diagnostics (compile errors and Zlint
   findings alike) can point at the exact line and column. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }
let pos_to_string p = Printf.sprintf "line %d, col %d" p.line p.col

type typ = { bits : int } (* intN: signed values in (-2^(N-1), 2^(N-1)) *)

type unop = Neg | Not

type binop = Add | Sub | Mul | Shr | Shl | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type expr = { e : edesc; eloc : pos }

and edesc =
  | Int of int
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr

type lvalue = Lvar of string | Lindex of string * expr

type stmt = { s : sdesc; sloc : pos }

and sdesc =
  | Decl of typ * string * int option * expr option (* var t name[len] = init *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list (* bounds must be compile-time constants *)

type dir = Input | Output

type param = { pname : string; ptyp : typ; plen : int option; pdir : dir; ploc : pos }

type program = { name : string; params : param list; body : stmt list }

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Positioned variant: prefixes the message with "line L, col C:" when the
   position is known (no_pos marks synthesized nodes). *)
let error_at pos fmt =
  Printf.ksprintf
    (fun s -> raise (Error (if pos = no_pos then s else Printf.sprintf "%s: %s" (pos_to_string pos) s)))
    fmt
