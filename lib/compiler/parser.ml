(* Recursive-descent parser for ZL.

   computation NAME ( (input|output) intN name [ "[" INT "]" ] , ... ) {
     var intN x = e;  x = e;  a[e] = e;
     if (e) { ... } else { ... }
     for i in e0 .. e1 { ... }      // bounds constant-foldable
   }

   Operator precedence, loosest first: || , && , comparisons , + - , * ,
   unary (- !).

   Every AST node records the position of its first token; parse errors
   report the position of the offending token. *)

open Ast

type st = { mutable toks : (Lexer.token * pos) list }

let peek st = match st.toks with [] -> Lexer.EOF | (t, _) :: _ -> t
let peek_pos st = match st.toks with [] -> no_pos | (_, p) :: _ -> p
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let describe = function
  | Lexer.IDENT i -> "identifier " ^ i
  | Lexer.INT n -> string_of_int n
  | Lexer.KW k -> "keyword " ^ k
  | Lexer.PUNCT p -> Printf.sprintf "%S" p
  | Lexer.EOF -> "end of input"

let expect_punct st s =
  match peek st with
  | Lexer.PUNCT p when p = s -> advance st
  | t -> error_at (peek_pos st) "expected %S, found %s" s (describe t)

let expect_kw st s =
  match peek st with
  | Lexer.KW k when k = s -> advance st
  | t -> error_at (peek_pos st) "expected keyword %S, found %s" s (describe t)

let expect_ident st =
  match peek st with
  | Lexer.IDENT i ->
    advance st;
    i
  | t -> error_at (peek_pos st) "expected identifier, found %s" (describe t)

let expect_int st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    n
  | t -> error_at (peek_pos st) "expected integer literal, found %s" (describe t)

let parse_type st =
  let tpos = peek_pos st in
  let name = expect_ident st in
  if String.length name > 3 && String.sub name 0 3 = "int" then begin
    match int_of_string_opt (String.sub name 3 (String.length name - 3)) with
    | Some bits when bits >= 2 && bits <= 64 -> { bits }
    | _ -> error_at tpos "bad integer type %S (use int2..int64)" name
  end
  else if name = "bool" then { bits = 2 }
  else error_at tpos "unknown type %S" name

let mk loc e = { e; eloc = loc }

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Lexer.PUNCT "||" ->
    advance st;
    mk lhs.eloc (Binop (Or, lhs, parse_or st))
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | Lexer.PUNCT "&&" ->
    advance st;
    mk lhs.eloc (Binop (And, lhs, parse_and st))
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_shift st in
  match peek st with
  | Lexer.PUNCT (("<" | "<=" | ">" | ">=" | "==" | "!=") as op) ->
    advance st;
    let rhs = parse_shift st in
    let b =
      match op with
      | "<" -> Lt
      | "<=" -> Le
      | ">" -> Gt
      | ">=" -> Ge
      | "==" -> Eq
      | _ -> Ne
    in
    mk lhs.eloc (Binop (b, lhs, rhs))
  | _ -> lhs

and parse_shift st =
  let rec go lhs =
    match peek st with
    | Lexer.PUNCT ">>" ->
      advance st;
      go (mk lhs.eloc (Binop (Shr, lhs, parse_add st)))
    | Lexer.PUNCT "<<" ->
      advance st;
      go (mk lhs.eloc (Binop (Shl, lhs, parse_add st)))
    | _ -> lhs
  in
  go (parse_add st)

and parse_add st =
  let rec go lhs =
    match peek st with
    | Lexer.PUNCT "+" ->
      advance st;
      go (mk lhs.eloc (Binop (Add, lhs, parse_mul st)))
    | Lexer.PUNCT "-" ->
      advance st;
      go (mk lhs.eloc (Binop (Sub, lhs, parse_mul st)))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Lexer.PUNCT "*" ->
      advance st;
      go (mk lhs.eloc (Binop (Mul, lhs, parse_unary st)))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  let pos = peek_pos st in
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    mk pos (Unop (Neg, parse_unary st))
  | Lexer.PUNCT "!" ->
    advance st;
    mk pos (Unop (Not, parse_unary st))
  | _ -> parse_primary st

and parse_primary st =
  let pos = peek_pos st in
  match peek st with
  | Lexer.INT n ->
    advance st;
    mk pos (Int n)
  | Lexer.KW "true" ->
    advance st;
    mk pos (Int 1)
  | Lexer.KW "false" ->
    advance st;
    mk pos (Int 0)
  | Lexer.IDENT name ->
    advance st;
    (match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      mk pos (Index (name, idx))
    | _ -> mk pos (Var name))
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | t -> error_at pos "expected expression, found %s" (describe t)

let mks loc s = { s; sloc = loc }

let rec parse_stmt st : stmt =
  let pos = peek_pos st in
  match peek st with
  | Lexer.KW "var" ->
    advance st;
    let t = parse_type st in
    let name = expect_ident st in
    let len =
      match peek st with
      | Lexer.PUNCT "[" ->
        advance st;
        let n = expect_int st in
        expect_punct st "]";
        Some n
      | _ -> None
    in
    let init =
      match peek st with
      | Lexer.PUNCT "=" ->
        advance st;
        Some (parse_expr st)
      | _ -> None
    in
    expect_punct st ";";
    mks pos (Decl (t, name, len, init))
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_b = parse_block st in
    let else_b =
      match peek st with
      | Lexer.KW "else" ->
        advance st;
        (match peek st with
        | Lexer.KW "if" -> [ parse_stmt st ]
        | _ -> parse_block st)
      | _ -> []
    in
    mks pos (If (cond, then_b, else_b))
  | Lexer.KW "for" ->
    advance st;
    let v = expect_ident st in
    expect_kw st "in";
    let lo = parse_expr st in
    expect_punct st "..";
    let hi = parse_expr st in
    let body = parse_block st in
    mks pos (For (v, lo, hi, body))
  | Lexer.IDENT name ->
    advance st;
    (match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      mks pos (Assign (Lindex (name, idx), e))
    | Lexer.PUNCT "=" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ";";
      mks pos (Assign (Lvar name, e))
    | t -> error_at (peek_pos st) "expected assignment to %S, found %s" name (describe t))
  | t -> error_at pos "expected statement, found %s" (describe t)

and parse_block st : stmt list =
  expect_punct st "{";
  let rec go acc =
    match peek st with
    | Lexer.PUNCT "}" ->
      advance st;
      List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

let parse_param st =
  let ploc = peek_pos st in
  let pdir =
    match peek st with
    | Lexer.KW "input" ->
      advance st;
      Input
    | Lexer.KW "output" ->
      advance st;
      Output
    | t -> error_at ploc "expected input or output parameter, found %s" (describe t)
  in
  let ptyp = parse_type st in
  let pname = expect_ident st in
  let plen =
    match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let n = expect_int st in
      expect_punct st "]";
      Some n
    | _ -> None
  in
  { pname; ptyp; plen; pdir; ploc }

let parse_program src : program =
  let st = { toks = Lexer.tokenize src } in
  expect_kw st "computation";
  let name = expect_ident st in
  expect_punct st "(";
  let rec params acc =
    match peek st with
    | Lexer.PUNCT ")" ->
      advance st;
      List.rev acc
    | Lexer.PUNCT "," ->
      advance st;
      params acc
    | _ -> params (parse_param st :: acc)
  in
  let params = params [] in
  let body = parse_block st in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> error_at (peek_pos st) "trailing tokens after computation body, found %s" (describe t));
  { name; params; body }
