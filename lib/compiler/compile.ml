(* The flattening pass: symbolic execution of the ZL AST against the
   constraint builder (the paper's compiler "turns a program into a list of
   assignment statements, then produces a constraint or pseudoconstraint for
   each statement", §2.2).

   - loops unroll (bounds are compile-time constants);
   - conditionals on non-constant booleans execute both branches and merge
     every differing binding through a mux gadget;
   - conditionals on constants select a branch statically;
   - array indexing uses direct access for constant indices and the one-hot
     gadget otherwise. *)

open Fieldlib
open Constr
module SMap = Map.Make (String)

type binding = Scalar of Builder.value | Arr of Builder.value array

type compiled = {
  name : string;
  ctx : Fp.ctx;
  ginger : Quad.system;
  transform : Transform.t;
  num_inputs : int;
  num_outputs : int;
  solve_ginger : Fp.el array -> Fp.el array; (* inputs -> canonical Ginger assignment *)
  solve_zaatar : Fp.el array -> Fp.el array; (* inputs -> canonical Zaatar assignment *)
}

let zaatar_r1cs c = c.transform.Transform.r1cs

let lookup ?(loc = Ast.no_pos) env name =
  match SMap.find_opt name env with
  | Some b -> b
  | None -> Ast.error_at loc "undefined variable %S" name

let rec eval_expr b env (e : Ast.expr) : Builder.value =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Int n -> Builder.const b n
  | Ast.Var name -> (
    match lookup ~loc env name with
    | Scalar v -> v
    | Arr _ -> Ast.error_at loc "array %S used as a scalar" name)
  | Ast.Index (name, idx) -> (
    match lookup ~loc env name with
    | Scalar _ -> Ast.error_at loc "scalar %S indexed as an array" name
    | Arr elems -> (
      let iv = eval_expr b env idx in
      match Builder.as_const_int b iv with
      | Some i ->
        if i < 0 || i >= Array.length elems then
          Ast.error_at loc "index %d out of bounds for %S (length %d)" i name (Array.length elems);
        elems.(i)
      | None -> fst (Builder.dyn_read b iv elems)))
  | Ast.Unop (Ast.Neg, e) -> Builder.neg b (eval_expr b env e)
  | Ast.Unop (Ast.Not, e) ->
    let v = eval_expr b env e in
    Builder.require_bool "!" v;
    Builder.bool_not b v
  | Ast.Binop (op, e1, e2) -> (
    let v1 = eval_expr b env e1 in
    let v2 = eval_expr b env e2 in
    match op with
    | Ast.Add -> Builder.add b v1 v2
    | Ast.Sub -> Builder.sub b v1 v2
    | Ast.Mul -> Builder.mul b v1 v2
    | Ast.Shr -> (
      match Builder.as_const_int b v2 with
      | Some k -> Builder.shr b v1 k
      | None -> Ast.error_at loc ">> requires a compile-time constant shift amount")
    | Ast.Shl -> (
      match Builder.as_const_int b v2 with
      | Some k -> Builder.shl b v1 k
      | None -> Ast.error_at loc "<< requires a compile-time constant shift amount")
    | Ast.Lt -> Builder.lt b v1 v2
    | Ast.Le -> Builder.le b v1 v2
    | Ast.Gt -> Builder.gt b v1 v2
    | Ast.Ge -> Builder.ge b v1 v2
    | Ast.Eq -> Builder.eq b v1 v2
    | Ast.Ne -> Builder.ne b v1 v2
    | Ast.And -> Builder.band b v1 v2
    | Ast.Or -> Builder.bor b v1 v2)

let const_int_expr b env (e : Ast.expr) what =
  match Builder.as_const_int b (eval_expr b env e) with
  | Some n -> n
  | None -> Ast.error_at e.Ast.eloc "%s must be a compile-time constant" what

(* Merge two post-branch environments under a boolean condition. Both must
   have the same domain as the pre-branch environment. *)
let merge_envs ~loc b cond base env_t env_e =
  SMap.mapi
    (fun name _ ->
      let bt = SMap.find name env_t and be = SMap.find name env_e in
      match (bt, be) with
      | Scalar vt, Scalar ve ->
        if Quad.qpoly_equal vt.Builder.qp ve.Builder.qp then bt
        else Scalar (Builder.mux b cond vt ve)
      | Arr at, Arr ae ->
        if Array.length at <> Array.length ae then
          Ast.error_at loc "array %S changed length across branches" name;
        Arr
          (Array.init (Array.length at) (fun i ->
               if Quad.qpoly_equal at.(i).Builder.qp ae.(i).Builder.qp then at.(i)
               else Builder.mux b cond at.(i) ae.(i)))
      | _ -> Ast.error_at loc "binding %S changed shape across branches" name)
    base

let rec exec_stmt b env (s : Ast.stmt) : binding SMap.t =
  let loc = s.Ast.sloc in
  match s.Ast.s with
  | Ast.Decl (t, name, len, init) ->
    if SMap.mem name env then Ast.error_at loc "shadowing declaration of %S" name;
    let width = t.Ast.bits - 1 in
    let bind =
      match (len, init) with
      | None, None -> Scalar (Builder.const b 0)
      | None, Some e ->
        (* The inferred magnitude bound is kept; the declared type only
           caps fresh inputs. *)
        ignore width;
        Scalar (eval_expr b env e)
      | Some n, None -> Arr (Array.make n (Builder.const b 0))
      | Some _, Some _ -> Ast.error_at loc "array declarations cannot have initializers"
    in
    SMap.add name bind env
  | Ast.Assign (Ast.Lvar name, e) -> (
    let v = eval_expr b env e in
    match lookup ~loc env name with
    | Scalar _ -> SMap.add name (Scalar v) env
    | Arr _ -> Ast.error_at loc "cannot assign a scalar to array %S" name)
  | Ast.Assign (Ast.Lindex (name, idx), e) -> (
    let v = eval_expr b env e in
    match lookup ~loc env name with
    | Scalar _ -> Ast.error_at loc "cannot index scalar %S" name
    | Arr elems -> (
      let iv = eval_expr b env idx in
      match Builder.as_const_int b iv with
      | Some i ->
        if i < 0 || i >= Array.length elems then
          Ast.error_at loc "index %d out of bounds for %S (length %d)" i name (Array.length elems);
        let elems' = Array.copy elems in
        elems'.(i) <- v;
        SMap.add name (Arr elems') env
      | None -> SMap.add name (Arr (Builder.dyn_write b iv elems v)) env))
  | Ast.If (cond, then_b, else_b) -> (
    let cv = eval_expr b env cond in
    Builder.require_bool "if condition" cv;
    match Builder.as_const_int b cv with
    | Some 0 -> exec_block b env else_b
    | Some _ -> exec_block b env then_b
    | None ->
      let env_t = exec_block b env then_b in
      let env_e = exec_block b env else_b in
      merge_envs ~loc b cv env env_t env_e)
  | Ast.For (v, lo, hi, body) ->
    let lo = const_int_expr b env lo "loop bound" in
    let hi = const_int_expr b env hi "loop bound" in
    if SMap.mem v env then Ast.error_at loc "loop variable %S shadows an existing binding" v;
    let env = ref env in
    for i = lo to hi - 1 do
      let inner = SMap.add v (Scalar (Builder.const b i)) !env in
      let after = exec_stmts b inner body in
      (* Drop the loop variable and any body-local declarations. *)
      env := SMap.filter (fun name _ -> SMap.mem name !env) after
    done;
    !env

and exec_stmts b env stmts = List.fold_left (exec_stmt b) env stmts

(* Block scoping: declarations inside the block disappear; updates to outer
   bindings persist. *)
and exec_block b env stmts =
  let after = exec_stmts b env stmts in
  SMap.filter (fun name _ -> SMap.mem name env) after

(* Per-pass output volumes: constraints and variables generated by the
   flattening front-end (Ginger form) and the §4 transform (Zaatar form). *)
let c_ginger_constraints = Zobs.Counter.make "compile.ginger_constraints"
let c_ginger_variables = Zobs.Counter.make "compile.ginger_variables"
let c_zaatar_constraints = Zobs.Counter.make "compile.zaatar_constraints"
let c_zaatar_variables = Zobs.Counter.make "compile.zaatar_variables"

let compile ~ctx (src : string) : compiled =
  Zobs.Span.with_ ~name:"compile" @@ fun () ->
  let prog = Parser.parse_program src in
  let b = Builder.create ctx in
  let env = ref SMap.empty in
  let num_inputs = ref 0 in
  (* Inputs bind to fresh distinguished variables, in declaration order. *)
  List.iter
    (fun (p : Ast.param) ->
      if p.Ast.pdir = Ast.Input then begin
        let width = p.Ast.ptyp.Ast.bits - 1 in
        let bind =
          match p.Ast.plen with
          | None ->
            let v = Builder.input b ~index:!num_inputs ~width in
            incr num_inputs;
            Scalar v
          | Some len ->
            Arr
              (Array.init len (fun _ ->
                   let v = Builder.input b ~index:!num_inputs ~width in
                   incr num_inputs;
                   v))
        in
        if SMap.mem p.Ast.pname !env then
          Ast.error_at p.Ast.ploc "duplicate parameter %S" p.Ast.pname;
        env := SMap.add p.Ast.pname bind !env
      end)
    prog.Ast.params;
  (* Outputs start as zero-initialized program variables. *)
  List.iter
    (fun (p : Ast.param) ->
      if p.Ast.pdir = Ast.Output then begin
        if SMap.mem p.Ast.pname !env then
          Ast.error_at p.Ast.ploc "duplicate parameter %S" p.Ast.pname;
        let bind =
          match p.Ast.plen with
          | None -> Scalar (Builder.const b 0)
          | Some len -> Arr (Array.make len (Builder.const b 0))
        in
        env := SMap.add p.Ast.pname bind !env
      end)
    prog.Ast.params;
  let env_final = exec_stmts b !env prog.Ast.body in
  (* Bind output variables, in declaration order. *)
  let num_outputs = ref 0 in
  List.iter
    (fun (p : Ast.param) ->
      if p.Ast.pdir = Ast.Output then begin
        match SMap.find p.Ast.pname env_final with
        | Scalar v ->
          Builder.bind_output b v;
          incr num_outputs
        | Arr elems ->
          Array.iter
            (fun v ->
              Builder.bind_output b v;
              incr num_outputs)
            elems
      end)
    prog.Ast.params;
  let ginger, perm = Builder.finalize b in
  let transform = Transform.apply ginger in
  Zobs.Counter.add c_ginger_constraints (Quad.num_constraints ginger);
  Zobs.Counter.add c_ginger_variables ginger.Quad.num_z;
  Zobs.Counter.add c_zaatar_constraints (R1cs.num_constraints transform.Transform.r1cs);
  Zobs.Counter.add c_zaatar_variables transform.Transform.r1cs.R1cs.num_z;
  let n = ginger.Quad.num_vars in
  let solve_ginger inputs =
    let worig = Builder.solve_original b inputs in
    let w = Array.make (n + 1) Fp.zero in
    w.(0) <- Fp.one;
    for v = 1 to n do
      w.(perm.(v)) <- worig.(v)
    done;
    w
  in
  let solve_zaatar inputs = Transform.extend_assignment transform ginger (solve_ginger inputs) in
  {
    name = prog.Ast.name;
    ctx;
    ginger;
    transform;
    num_inputs = !num_inputs;
    num_outputs = !num_outputs;
    solve_ginger;
    solve_zaatar;
  }

(* Read back the outputs from a canonical assignment of either system. *)
let outputs_ginger c (w : Fp.el array) =
  Array.sub w (c.ginger.Quad.num_z + 1 + c.num_inputs) c.num_outputs

let outputs_zaatar c (w : Fp.el array) =
  let r = zaatar_r1cs c in
  Array.sub w (r.R1cs.num_z + 1 + c.num_inputs) c.num_outputs

(* Encoding-size statistics for Figure 9. *)
type stats = {
  z_ginger : int; (* |Z_ginger| *)
  c_ginger : int; (* |C_ginger| *)
  z_zaatar : int;
  c_zaatar : int;
  k : int; (* additive terms K *)
  k2 : int; (* distinct degree-2 terms K2 *)
  u_ginger : int; (* |Z| + |Z|^2 *)
  u_zaatar : int; (* |Z| + |C| *)
}

let stats c =
  let zg = c.ginger.Quad.num_z in
  let cg = Quad.num_constraints c.ginger in
  let r = zaatar_r1cs c in
  let zz = r.R1cs.num_z in
  let cz = R1cs.num_constraints r in
  {
    z_ginger = zg;
    c_ginger = cg;
    z_zaatar = zz;
    c_zaatar = cz;
    k = Quad.additive_terms c.ginger;
    k2 = c.transform.Transform.k2;
    u_ginger = zg + (zg * zg);
    u_zaatar = zz + cz + 1;
  }
