(* AST -> ZL source. The inverse of the parser, up to whitespace and
   parenthesization: for every program [p], [parse (print p)] is [p] modulo
   positions and redundant parentheses, and printing is idempotent on the
   reparse ([print (parse (print p)) = print p]). The fuzzer (lib/fuzz)
   leans on this to turn generated ASTs into compilable sources and
   committed regression fixtures. *)

open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Shr -> ">>"
  | Shl -> "<<"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

(* Precedence levels, loosest first, mirroring the parser's ladder:
   || < && < comparisons < shifts < + - < * < unary < primary. *)
let level = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Shr | Shl -> 4
  | Add | Sub -> 5
  | Mul -> 6

let rec expr buf ctx_level (e : expr) =
  match e.e with
  | Int n ->
    (* Negative literals do not exist in the grammar; they reparse as a
       unary negation, which prints identically — still a fixpoint. *)
    Buffer.add_string buf (string_of_int n)
  | Var name -> Buffer.add_string buf name
  | Index (name, idx) ->
    Buffer.add_string buf name;
    Buffer.add_char buf '[';
    expr buf 0 idx;
    Buffer.add_char buf ']'
  | Unop (op, inner) ->
    let wrap = ctx_level > 7 in
    if wrap then Buffer.add_char buf '(';
    Buffer.add_string buf (match op with Neg -> "-" | Not -> "!");
    (* Parenthesize non-primary operands so "- -x" or "-x + y" cannot be
       mis-nested; a bare primary needs none. *)
    (match inner.e with
    | Int _ | Var _ | Index _ -> expr buf 8 inner
    | _ ->
      Buffer.add_char buf '(';
      expr buf 0 inner;
      Buffer.add_char buf ')');
    if wrap then Buffer.add_char buf ')'
  | Binop (op, l, r) ->
    let lv = level op in
    let wrap = ctx_level > lv in
    if wrap then Buffer.add_char buf '(';
    (* Associativity mirrors the parser: && and || recurse on the right,
       the arithmetic ladder on the left, comparisons not at all. *)
    let ll, rl =
      match op with
      | Or | And -> (lv + 1, lv)
      | Lt | Le | Gt | Ge | Eq | Ne -> (lv + 1, lv + 1)
      | _ -> (lv, lv + 1)
    in
    expr buf ll l;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (binop_str op);
    Buffer.add_char buf ' ';
    expr buf rl r;
    if wrap then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr buf 0 e;
  Buffer.contents buf

let typ_str (t : typ) = Printf.sprintf "int%d" t.bits

let rec stmt buf indent (s : stmt) =
  let pad () = Buffer.add_string buf (String.make indent ' ') in
  match s.s with
  | Decl (t, name, len, init) ->
    pad ();
    Buffer.add_string buf ("var " ^ typ_str t ^ " " ^ name);
    (match len with Some n -> Buffer.add_string buf (Printf.sprintf "[%d]" n) | None -> ());
    (match init with
    | Some e ->
      Buffer.add_string buf " = ";
      expr buf 0 e
    | None -> ());
    Buffer.add_string buf ";\n"
  | Assign (lv, e) ->
    pad ();
    (match lv with
    | Lvar name -> Buffer.add_string buf name
    | Lindex (name, idx) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '[';
      expr buf 0 idx;
      Buffer.add_char buf ']');
    Buffer.add_string buf " = ";
    expr buf 0 e;
    Buffer.add_string buf ";\n"
  | If (cond, then_b, else_b) ->
    pad ();
    Buffer.add_string buf "if (";
    expr buf 0 cond;
    Buffer.add_string buf ") {\n";
    List.iter (stmt buf (indent + 2)) then_b;
    pad ();
    Buffer.add_string buf "}";
    if else_b <> [] then begin
      Buffer.add_string buf " else {\n";
      List.iter (stmt buf (indent + 2)) else_b;
      pad ();
      Buffer.add_string buf "}"
    end;
    Buffer.add_string buf "\n"
  | For (v, lo, hi, body) ->
    pad ();
    Buffer.add_string buf ("for " ^ v ^ " in ");
    expr buf 0 lo;
    Buffer.add_string buf " .. ";
    expr buf 0 hi;
    Buffer.add_string buf " {\n";
    List.iter (stmt buf (indent + 2)) body;
    pad ();
    Buffer.add_string buf "}\n"

let param_str (p : param) =
  Printf.sprintf "%s %s %s%s"
    (match p.pdir with Input -> "input" | Output -> "output")
    (typ_str p.ptyp) p.pname
    (match p.plen with Some n -> Printf.sprintf "[%d]" n | None -> "")

let to_source (prog : program) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("computation " ^ prog.name ^ "(");
  Buffer.add_string buf (String.concat ", " (List.map param_str prog.params));
  Buffer.add_string buf ") {\n";
  List.iter (stmt buf 2) prog.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
