(* Hand-written lexer for ZL. Tokens are paired with the source position
   (1-based line and column) of their first character, which the parser
   threads into the AST. *)

type token =
  | IDENT of string
  | INT of int
  | KW of string (* computation input output var if else for in *)
  | PUNCT of string (* ( ) { } [ ] ; , = == != < <= > >= + - * && || ! .. >> << *)
  | EOF

type t = { src : string; mutable pos : int; mutable line : int; mutable bol : int }
(* [bol] is the offset of the first character of the current line, so the
   column of the character at [pos] is [pos - bol + 1]. *)

let keywords = [ "computation"; "input"; "output"; "var"; "if"; "else"; "for"; "in"; "true"; "false" ]

let create src = { src; pos = 0; line = 1; bol = 0 }

let position lx : Ast.pos = { Ast.line = lx.line; col = lx.pos - lx.bol + 1 }

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (if lx.pos < String.length lx.src && lx.src.[lx.pos] = '\n' then begin
     lx.line <- lx.line + 1;
     lx.bol <- lx.pos + 1
   end);
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
    advance lx;
    advance lx;
    let rec close () =
      match peek_char lx with
      | None -> Ast.error_at (position lx) "unterminated comment"
      | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        advance lx;
        advance lx
      | Some _ ->
        advance lx;
        close ()
    in
    close ();
    skip_ws lx
  | _ -> ()

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let next lx : token * Ast.pos =
  skip_ws lx;
  let start_pos = position lx in
  let tok =
    match peek_char lx with
    | None -> EOF
    | Some c when is_ident_start c ->
      let start = lx.pos in
      while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
        advance lx
      done;
      let s = String.sub lx.src start (lx.pos - start) in
      if List.mem s keywords then KW s else IDENT s
    | Some c when is_digit c ->
      let start = lx.pos in
      while (match peek_char lx with Some c -> is_digit c | None -> false) do
        advance lx
      done;
      INT (int_of_string (String.sub lx.src start (lx.pos - start)))
    | Some c ->
      let two =
        if lx.pos + 1 < String.length lx.src then Some (String.sub lx.src lx.pos 2) else None
      in
      (match two with
      | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||" | ".." | ">>" | "<<") as op) ->
        advance lx;
        advance lx;
        PUNCT op
      | _ ->
        (match c with
        | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '=' | '<' | '>' | '+' | '-' | '*' | '!' ->
          advance lx;
          PUNCT (String.make 1 c)
        | _ -> Ast.error_at start_pos "unexpected character %C" c))
  in
  (tok, start_pos)

let tokenize src : (token * Ast.pos) list =
  let lx = create src in
  let rec go acc =
    match next lx with (EOF, _) as t -> List.rev (t :: acc) | t -> go (t :: acc)
  in
  go []
