(** Backend dispatch for the QAP encoding: the paper's
    arithmetic-progression construction ({!Qap}, subproduct-tree prover)
    versus the roots-of-unity construction ({!Qap_ntt}, NTT prover).

    [Auto] — the production default — selects the NTT backend iff the
    field's 2-adicity covers the doubled padded domain
    2^(ceil(log2 |C|) + 1); otherwise it falls back to the Lagrange
    pipeline, keeping seed-identical transcripts on low-adicity fields.
    The backends are distinct proof systems (different interpolation
    points, divisor and h length), so verifier and prover must agree on
    the backend out of band; mismatches surface as session-level length
    errors. *)

open Fieldlib
open Constr

type backend = Auto | Ntt | Lagrange

val backend_to_string : backend -> string
val backend_of_string : string -> backend option

type t

exception Not_divisible
exception Tau_collision

val ntt_viable : Fp.ctx -> int -> bool
(** [ntt_viable field nc]: can the NTT backend host [nc] constraints over
    this field? *)

val of_r1cs : ?backend:backend -> R1cs.system -> t
(** Raises [Invalid_argument] when [Ntt] is forced on a field whose
    2-adicity cannot host the constraint count. Bumps the
    [qap.backend.ntt] / [qap.backend.lagrange] selection counters. *)

val backend : t -> backend
(** The resolved backend: [Ntt] or [Lagrange], never [Auto]. *)

val ctx : t -> Fp.ctx
val sys : t -> R1cs.system
val nc : t -> int

val h_len : t -> int
(** Length of the h proof vector: |C|+1 (Lagrange) or the padded
    power-of-two domain size n (NTT). *)

val prewarm : t -> unit
(** Force one-time lazy structure (subproduct trees, twiddle plans) so a
    timed section measures steady-state prover work. *)

val prover_h : t -> Fp.el array -> Fp.el array
(** Raises {!Not_divisible} (NTT) or [Failure] (Lagrange) on an
    unsatisfying witness. *)

val prover_h_forced : t -> Fp.el array -> Fp.el array

type queries = {
  tau : Fp.el;
  d_tau : Fp.el;
  a_tau : Fp.el array;
  b_tau : Fp.el array;
  c_tau : Fp.el array;
  qd : Fp.el array; (** (1, tau, ..., tau^(h_len - 1)) *)
}

val queries : t -> tau:Fp.el -> queries
(** Raises {!Tau_collision} (either backend) when tau hits an
    interpolation point; the caller resamples. *)

val z_slice : t -> Fp.el array -> Fp.el array
val io_contribution : t -> Fp.el array -> Fp.el array -> Fp.el
