(* The QAP encoding of a quadratic-form constraint set (Appendix A.1).

   Given an R1CS over variables w0=1, w1..wn with |C| constraints, fix the
   distinguished points sigma_0 = 0, sigma_j = j (an arithmetic progression,
   the "convenient choice" of §A.3). Define, by interpolation,

     A_i(sigma_j) = a_ij   B_i(sigma_j) = b_ij   C_i(sigma_j) = c_ij
     A_i(0) = B_i(0) = C_i(0) = 0

   the divisor D(t) = prod_{j=1..|C|} (t - sigma_j), and

     P(t,W) = (sum_i W_i A_i(t)) (sum_i W_i B_i(t)) - (sum_i W_i C_i(t)).

   Claim A.1: D(t) | P_w(t) iff the z part of w satisfies C(X=x, Y=y).

   The prover-side entry point is [prover_h] (coefficients of H = P_w / D,
   computed by interpolate-multiply-divide, §A.3 steps 1-3); the
   verifier-side entry point is [queries], which evaluates every A_i, B_i,
   C_i and D at a random tau via barycentric Lagrange weights
   (§A.3). Neither side ever materializes P(t, W). *)

open Fieldlib
open Constr

type t = {
  ctx : Fp.ctx;
  sys : R1cs.system;
  nc : int; (* |C| *)
  divisor : Polylib.Poly.t Lazy.t; (* prover side only *)
  interp : Polylib.Subproduct.interpolator Lazy.t; (* prover side only *)
}

exception Tau_collision
(* tau hit one of the sigma_j (probability (|C|+1)/|F|); the caller
   resamples. *)

let of_r1cs (sys : R1cs.system) =
  let ctx = sys.R1cs.field in
  let nc = R1cs.num_constraints sys in
  if nc = 0 then invalid_arg "Qap.of_r1cs: empty system";
  if Nat.compare (Nat.of_int (nc + 1)) (Fp.modulus ctx) >= 0 then
    invalid_arg "Qap.of_r1cs: field smaller than the number of constraints";
  let divisor =
    lazy
      (let pts = Array.init nc (fun j -> Fp.of_int ctx (j + 1)) in
       Polylib.Subproduct.(root_poly ctx (build ctx pts)))
  in
  let interp =
    lazy
      (let pts = Array.init (nc + 1) (fun j -> Fp.of_int ctx j) in
       Polylib.Subproduct.prepare ctx pts)
  in
  { ctx; sys; nc; divisor; interp }

(* ------------------------------------------------------------------ *)
(* Prover side                                                         *)
(* ------------------------------------------------------------------ *)

(* Evaluations of A(t) = sum_i w_i A_i(t) at sigma_0..sigma_nc: position 0
   is 0 by construction, position j is the sparse dot <a_j, w>. *)
let eval_rows ctx (rows : (R1cs.constr -> Lincomb.t)) sys nc (w : Fp.el array) =
  let out = Array.make (nc + 1) Fp.zero in
  Array.iteri
    (fun j k -> out.(j + 1) <- Lincomb.eval ctx (rows k) w)
    sys.R1cs.constraints;
  out

let interpolated_abc qap (w : Fp.el array) =
  let ctx = qap.ctx and sys = qap.sys and nc = qap.nc in
  let ip = Lazy.force qap.interp in
  let a = Polylib.Subproduct.interpolate_with ctx ip (eval_rows ctx (fun k -> k.R1cs.a) sys nc w) in
  let b = Polylib.Subproduct.interpolate_with ctx ip (eval_rows ctx (fun k -> k.R1cs.b) sys nc w) in
  let c = Polylib.Subproduct.interpolate_with ctx ip (eval_rows ctx (fun k -> k.R1cs.c) sys nc w) in
  (a, b, c)

(* P_w(t) = A(t)B(t) - C(t). *)
let pw_poly qap (w : Fp.el array) =
  let ctx = qap.ctx in
  let a, b, c = interpolated_abc qap w in
  Polylib.Poly.(sub ctx (mul ctx a b) c)

(* Coefficients of H = P_w / D, padded to length |C|+1. Raises [Failure] if
   w does not satisfy the constraints (non-zero remainder, Claim A.1). *)
let prover_h qap (w : Fp.el array) : Fp.el array =
  Zobs.Span.with_ ~name:"qap.prover_h" (fun () ->
      let ctx = qap.ctx in
      let p = pw_poly qap w in
      let h = Polylib.Poly.divide_exact ctx p (Lazy.force qap.divisor) in
      let out = Array.make (qap.nc + 1) Fp.zero in
      Array.blit (Polylib.Poly.coeffs h) 0 out 0 (Polylib.Poly.degree h + 1);
      out)

(* What a cheating prover would do with an unsatisfying assignment: divide
   and silently discard the remainder. Used by the adversarial test suite
   and the soundness bench. Span name deliberately distinct from
   [prover_h]'s: the bench's ntt-vs-lagrange experiment and ablation
   traces key off qap.prover_h being the honest pipeline only. *)
let prover_h_forced qap (w : Fp.el array) : Fp.el array =
  Zobs.Span.with_ ~name:"qap.prover_h_forced" (fun () ->
      let ctx = qap.ctx in
      let p = pw_poly qap w in
      let q, _r = Polylib.Poly.div_rem_fast ctx p (Lazy.force qap.divisor) in
      let out = Array.make (qap.nc + 1) Fp.zero in
      Array.blit (Polylib.Poly.coeffs q) 0 out 0 (min (Polylib.Poly.degree q + 1) (qap.nc + 1));
      out)

(* ------------------------------------------------------------------ *)
(* Verifier side                                                       *)
(* ------------------------------------------------------------------ *)

type queries = {
  tau : Fp.el;
  d_tau : Fp.el;
  (* Evaluations indexed by variable 0..n; slices [1..num_z] are the oracle
     queries q_a, q_b, q_c; index 0 and the IO indices feed La, Lb, Lc. *)
  a_tau : Fp.el array;
  b_tau : Fp.el array;
  c_tau : Fp.el array;
  qd : Fp.el array; (* (1, tau, ..., tau^|C|) *)
}

(* Barycentric evaluation of all A_i, B_i, C_i and D at tau (§A.3):
     A_i(tau) = l(tau) * sum_j a_ij * v_j / (tau - sigma_j)
   with l(t) = prod_{j=0..nc} (t - sigma_j) and
   1/v_j = prod_{k<>j} (sigma_j - sigma_k) = j! (nc-j)! (-1)^(nc-j). *)
let queries qap ~tau : queries =
  let ctx = qap.ctx and sys = qap.sys and nc = qap.nc in
  let n = sys.R1cs.num_vars in
  let diffs = Array.init (nc + 1) (fun j -> Fp.sub ctx tau (Fp.of_int ctx j)) in
  if Array.exists Fp.is_zero diffs then raise Tau_collision;
  let inv_diffs = Fp.batch_inv ctx diffs in
  let ell = Array.fold_left (Fp.mul ctx) Fp.one diffs in
  (* factorials 0!..nc! *)
  let fact = Array.make (nc + 1) Fp.one in
  for j = 1 to nc do
    fact.(j) <- Fp.mul ctx fact.(j - 1) (Fp.of_int ctx j)
  done;
  let inv_v =
    Array.init (nc + 1) (fun j ->
        let m = Fp.mul ctx fact.(j) fact.(nc - j) in
        if (nc - j) land 1 = 1 then Fp.neg ctx m else m)
  in
  let v = Fp.batch_inv ctx inv_v in
  let weight = Array.init (nc + 1) (fun j -> Fp.mul ctx ell (Fp.mul ctx v.(j) inv_diffs.(j))) in
  let a_tau = Array.make (n + 1) Fp.zero in
  let b_tau = Array.make (n + 1) Fp.zero in
  let c_tau = Array.make (n + 1) Fp.zero in
  Array.iteri
    (fun jm1 (k : R1cs.constr) ->
      let wj = weight.(jm1 + 1) in
      let accumulate dst lc =
        List.iter
          (fun (i, coef) -> dst.(i) <- Fp.add ctx dst.(i) (Fp.mul ctx coef wj))
          (Lincomb.terms lc)
      in
      accumulate a_tau k.R1cs.a;
      accumulate b_tau k.R1cs.b;
      accumulate c_tau k.R1cs.c)
    sys.R1cs.constraints;
  let d_tau = Fp.mul ctx ell inv_diffs.(0) in
  let qd = Array.make (nc + 1) Fp.one in
  for i = 1 to nc do
    qd.(i) <- Fp.mul ctx qd.(i - 1) tau
  done;
  { tau; d_tau; a_tau; b_tau; c_tau; qd }

(* Slice the Z-region of an evaluation vector: the part sent to the pi_z
   oracle. *)
let z_slice qap (evals : Fp.el array) = Array.sub evals 1 qap.sys.R1cs.num_z

(* The verifier-computed input/output contribution: A'(tau) = A_0(tau) +
   sum_{i in IO} w_i A_i(tau); [io] holds the bound values of variables
   n'+1 .. n in order. Three field operations per input/output element
   (§A.3). *)
let io_contribution qap (evals : Fp.el array) (io : Fp.el array) =
  let ctx = qap.ctx and sys = qap.sys in
  let nio = R1cs.num_io sys in
  if Array.length io <> nio then invalid_arg "Qap.io_contribution: bad io length";
  let acc = ref evals.(0) in
  for i = 0 to nio - 1 do
    acc := Fp.add ctx !acc (Fp.mul ctx io.(i) evals.(sys.R1cs.num_z + 1 + i))
  done;
  !acc
